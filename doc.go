// Package algossip is a from-scratch Go implementation of the protocols
// and analysis machinery of Avin, Borokhovich, Censor-Hillel and Lotker,
// "Order Optimal Information Spreading Using Algebraic Gossip" (PODC 2011).
//
// The library disseminates k messages to all n nodes of an arbitrary
// connected network using gossip with bounded message sizes:
//
//   - Uniform algebraic gossip: every transmission is a random linear
//     combination (RLNC over F_q) of the sender's packets; stopping time
//     O((k + log n + D)·Δ) on any graph and Θ(k + D) on constant-degree
//     graphs (Theorems 1 and 3).
//   - TAG (Tree-based Algebraic Gossip): interleaves a spanning-tree gossip
//     protocol S with algebraic gossip along the tree, stopping in
//     O(k + log n + d(S) + t(S)) rounds (Theorem 4). With the round-robin
//     broadcast B_RR it is Θ(n) for k = Ω(n) on any graph (Theorem 5); with
//     the IS protocol it is Θ(k) on graphs with large weak conductance
//     (Theorems 6–8).
//
// Two execution substrates share the protocol implementations:
//
//   - A deterministic discrete-event simulator (synchronous and
//     asynchronous time models) used by the experiment harness that
//     regenerates every table and figure of the paper — see EXPERIMENTS.md.
//   - A concurrent runtime (goroutine per node, in-memory or TCP
//     transports) for running the real coded protocol with payloads.
//
// # Quickstart
//
//	g := algossip.Grid(8, 8)
//	res, err := algossip.Run(algossip.Spec{
//		Graph: g, K: 32, Protocol: algossip.ProtocolTAGRR,
//	}, 42)
//
// See the examples/ directory for complete programs and DESIGN.md for the
// system inventory.
package algossip
