package algossip_test

import (
	"bytes"
	"testing"

	"algossip"
)

func TestRunAllProtocols(t *testing.T) {
	g := algossip.Barbell(16)
	protocols := []algossip.Protocol{
		algossip.ProtocolUniformAG,
		algossip.ProtocolTAGRR,
		algossip.ProtocolTAGUniform,
		algossip.ProtocolTAGIS,
		algossip.ProtocolUncoded,
	}
	for _, p := range protocols {
		res, err := algossip.Run(algossip.Spec{Graph: g, K: 8, Protocol: p}, 7)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if !res.Completed || res.Rounds <= 0 {
			t.Fatalf("%v: bad result %+v", p, res)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := algossip.Run(algossip.Spec{K: 3}, 1); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := algossip.Run(algossip.Spec{Graph: algossip.Line(4)}, 1); err == nil {
		t.Error("zero k accepted")
	}
	if _, err := algossip.Run(algossip.Spec{Graph: algossip.Line(4), K: 2, Protocol: 99}, 1); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestRunDeterminism(t *testing.T) {
	spec := algossip.Spec{Graph: algossip.Grid(4, 4), K: 8, Protocol: algossip.ProtocolTAGRR}
	a, err := algossip.Run(spec, 123)
	if err != nil {
		t.Fatal(err)
	}
	b, err := algossip.Run(spec, 123)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds {
		t.Fatalf("same seed gave %d and %d rounds", a.Rounds, b.Rounds)
	}
}

func TestDisseminateEndToEnd(t *testing.T) {
	g := algossip.Ring(10)
	msgs := algossip.RandomMessages(5, 8, 3)
	decoded, res, err := algossip.Disseminate(g, msgs, nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("not completed")
	}
	for i := range msgs {
		for j := range msgs[i].Payload {
			if decoded[i].Payload[j] != msgs[i].Payload[j] {
				t.Fatalf("decode mismatch at message %d symbol %d", i, j)
			}
		}
	}
}

func TestSplitJoinThroughFacade(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	msgs, err := algossip.SplitBytes(data, 6, 12)
	if err != nil {
		t.Fatal(err)
	}
	decoded, _, err := algossip.Disseminate(algossip.Complete(8), msgs, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := algossip.JoinBytes(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestParseProtocol(t *testing.T) {
	tests := []struct {
		in   string
		want algossip.Protocol
	}{
		{"ag", algossip.ProtocolUniformAG},
		{"tag", algossip.ProtocolTAGRR},
		{"tag-is", algossip.ProtocolTAGIS},
		{"tag-uniform", algossip.ProtocolTAGUniform},
		{"uncoded", algossip.ProtocolUncoded},
	}
	for _, tt := range tests {
		got, err := algossip.ParseProtocol(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("ParseProtocol(%q) = %v, %v", tt.in, got, err)
		}
	}
	if _, err := algossip.ParseProtocol("nope"); err == nil {
		t.Error("unknown protocol string accepted")
	}
	if algossip.ProtocolTAGRR.String() != "tag-brr" {
		t.Error("String() wrong")
	}
}

func TestTopologyConstructorsExported(t *testing.T) {
	rng := algossip.NewRand(1)
	graphs := []*algossip.Graph{
		algossip.Line(5), algossip.Ring(5), algossip.Grid(2, 3),
		algossip.Torus(3, 3), algossip.Complete(5), algossip.Star(5),
		algossip.BinaryTree(7), algossip.KAryTree(7, 3), algossip.Barbell(6),
		algossip.Lollipop(4, 2), algossip.CliqueChain(2, 3), algossip.Hypercube(3),
		algossip.ErdosRenyi(10, 0.4, rng), algossip.RandomRegular(10, 3, rng),
		algossip.WattsStrogatz(10, 4, 0.1, rng),
	}
	for _, g := range graphs {
		if !g.IsConnected() {
			t.Errorf("%s not connected", g.Name())
		}
	}
}

func TestRunDetailedAgreesWithRun(t *testing.T) {
	for _, proto := range []algossip.Protocol{
		algossip.ProtocolUniformAG, algossip.ProtocolTAGRR, algossip.ProtocolUncoded,
	} {
		spec := algossip.Spec{Graph: algossip.Barbell(16), K: 8, Protocol: proto}
		plain, err := algossip.Run(spec, 77)
		if err != nil {
			t.Fatal(err)
		}
		detailed, det, err := algossip.RunDetailed(spec, 77)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Rounds != detailed.Rounds {
			t.Errorf("%v: Run=%d rounds, RunDetailed=%d", proto, plain.Rounds, detailed.Rounds)
		}
		if len(det.NodeDoneRounds) != 16 {
			t.Errorf("%v: NodeDoneRounds length %d", proto, len(det.NodeDoneRounds))
		}
		for v, r := range det.NodeDoneRounds {
			if r < 0 || r > detailed.Rounds {
				t.Errorf("%v: node %d done round %d outside [0,%d]", proto, v, r, detailed.Rounds)
			}
		}
		if det.Traffic.Sent == 0 || det.Traffic.Helpful == 0 {
			t.Errorf("%v: empty traffic counters %+v", proto, det.Traffic)
		}
		if det.MessageBits <= 0 {
			t.Errorf("%v: message bits %d", proto, det.MessageBits)
		}
	}
}

func TestRunDetailedTAGTreeRounds(t *testing.T) {
	spec := algossip.Spec{Graph: algossip.Line(20), K: 10, Protocol: algossip.ProtocolTAGRR}
	res, det, err := algossip.RunDetailed(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if det.TreeRounds < 0 || det.TreeRounds > res.Rounds {
		t.Fatalf("TreeRounds = %d outside [0,%d]", det.TreeRounds, res.Rounds)
	}
}

func TestRunDetailedValidation(t *testing.T) {
	if _, _, err := algossip.RunDetailed(algossip.Spec{K: 2}, 1); err == nil {
		t.Error("nil graph accepted")
	}
	if _, _, err := algossip.RunDetailed(algossip.Spec{Graph: algossip.Line(3)}, 1); err == nil {
		t.Error("zero k accepted")
	}
	if _, _, err := algossip.RunDetailed(algossip.Spec{Graph: algossip.Line(3), K: 2, Protocol: 99}, 1); err == nil {
		t.Error("unknown protocol accepted")
	}
}
