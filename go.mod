module algossip

go 1.24
