package algossip_test

// Whole-simulation macro-benchmarks: while internal/gf and internal/rlnc
// pin the coding kernels, nothing below measures what an experiment
// actually pays per trial — protocol construction, emit/receive over every
// transmission, staged delivery, and completion tracking. Each benchmark
// op is one complete uniform-AG trial through harness.Execute (the single
// dispatch point all binaries share), so ns/op is trial latency and
// 1e9/ns-op is trials/sec. allocs/op is part of the CI gate
// (BENCH_SIM.json via cmd/benchdelta): the coded hot path is pooled and
// bit-packed, and an alloc crept back into send/receive is a regression
// even when ns/op noise hides it.
//
// The grid follows the experiment sweeps: complete/ring/random-regular at
// n ∈ {64, 256, 1024} over GF(2) (bit-packed backend), GF(16) and
// GF(256) (bit-sliced backend), k = min(n/2, 128) so the O(rank·k)
// elimination cost stays bounded at n=1024. Payload and dynamic-topology
// variants cover the other hot configurations: the GF(2) XOR payload
// path, the sliced payload path, and the per-round topology stepping.

import (
	"fmt"
	"testing"

	"algossip/internal/core"
	"algossip/internal/graph"
	"algossip/internal/harness"
)

// benchK caps k at 128 so large-n cells stay CI-sized: reduce cost grows
// as rank·k, and k=512 GF(256) trials would each take minutes.
func benchK(n int) int {
	if n/2 > 128 {
		return 128
	}
	return n / 2
}

// simGraph builds the benchmark topology from its family name with a
// fixed seed (stream 999, the harness graph-construction layout).
func simGraph(b *testing.B, family string, n int) *graph.Graph {
	b.Helper()
	g, err := graph.FromName(family, n, core.NewRand(core.SplitSeed(77, 999)))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// runSimTrials executes one full trial per iteration with per-iteration
// derived seeds, reporting the mean stopping time alongside the timing.
func runSimTrials(b *testing.B, spec harness.GossipSpec) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		o, err := harness.Execute(spec, harness.ProtocolUniformAG, core.SplitSeed(31, uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		total += o.Result.Rounds
	}
	b.ReportMetric(float64(total)/float64(b.N), "rounds")
}

// BenchmarkSimUniformAG is the headline macro-benchmark grid: one op is
// one complete uniform algebraic-gossip trial.
func BenchmarkSimUniformAG(b *testing.B) {
	for _, family := range []string{"complete", "ring", "randreg"} {
		for _, n := range []int{64, 256, 1024} {
			for _, q := range []int{2, 16, 256} {
				b.Run(fmt.Sprintf("%s/n=%d/gf=%d", family, n, q), func(b *testing.B) {
					// Built inside the sub-benchmark (then excluded via
					// ResetTimer in runSimTrials) so non-matching cells
					// don't pay for n=1024 graph construction.
					g := simGraph(b, family, n)
					runSimTrials(b, harness.GossipSpec{
						Graph: g, K: benchK(n), Q: q, Lean: true,
					})
				})
			}
		}
	}
}

// BenchmarkSimPayloadAG carries real payloads so the combine kernels run
// end to end: GF(2) exercises the word-wise XOR payload path of the
// bit-packed backend, GF(16) and GF(256) the bit-sliced plane kernels.
func BenchmarkSimPayloadAG(b *testing.B) {
	for _, q := range []int{2, 16, 256} {
		b.Run(fmt.Sprintf("complete/n=256/gf=%d/r=1024", q), func(b *testing.B) {
			g := simGraph(b, "complete", 256)
			runSimTrials(b, harness.GossipSpec{
				Graph: g, K: benchK(256), Q: q, PayloadLen: 1024, Lean: true,
			})
		})
	}
}

// BenchmarkSimGenerationAG runs generation-coded uniform AG (the web-scale
// mode of E16): ⌈k/g⌉ independent small decoders per node instead of one
// k-wide matrix, capping reduce cost at O(g·rank) per receive. The grid
// pins both the generation hot path (GenNode emit/receive dispatch,
// rank/nonEmpty caching) and its scaling against full-span coding: at
// n=1024/gf=256 the g=16 row should beat the matching BenchmarkSimUniformAG
// cell by roughly the k/g decode-cost ratio.
func BenchmarkSimGenerationAG(b *testing.B) {
	for _, family := range []string{"complete", "randreg"} {
		for _, n := range []int{256, 1024} {
			for _, q := range []int{2, 256} {
				b.Run(fmt.Sprintf("%s/n=%d/gf=%d/g=16", family, n, q), func(b *testing.B) {
					g := simGraph(b, family, n)
					runSimTrials(b, harness.GossipSpec{
						Graph: g, K: benchK(n), Q: q, GenSize: 16, Lean: true,
					})
				})
			}
		}
	}
}

// BenchmarkSimShardedAG runs the round-parallel sharded engine on the
// generation-coded configuration. shards=1 isolates the staging/commit
// overhead of sharded semantics against the classic serial engine (same
// trajectory family, different bookkeeping); shards=4 shows the speedup
// left after the serial commit phase (Amdahl-bound). The counts are
// pinned — not GOMAXPROCS — because the benchmark name feeds the
// benchdelta baseline, which fails on entries missing from a run; the
// trajectory is identical for any positive count, so oversharding a
// smaller box only costs idle workers.
func BenchmarkSimShardedAG(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("randreg/n=1024/gf=2/g=16/shards=%d", shards), func(b *testing.B) {
			g := simGraph(b, "randreg", 1024)
			runSimTrials(b, harness.GossipSpec{
				Graph: g, K: benchK(1024), Q: 2, GenSize: 16, Shards: shards, Lean: true,
			})
		})
	}
}

// BenchmarkSimDynamicAG runs uniform AG over a time-varying topology
// (i.i.d. per-round edge failures on a random-regular graph), covering
// the round-boundary topology stepping and staged-delivery filtering.
func BenchmarkSimDynamicAG(b *testing.B) {
	b.Run("randreg/n=256/gf=2/edge=0.1", func(b *testing.B) {
		g := simGraph(b, "randreg", 256)
		dyn, err := harness.ParseDynamics("edge:rate=0.1")
		if err != nil {
			b.Fatal(err)
		}
		runSimTrials(b, harness.GossipSpec{
			Graph: g, K: benchK(256), Q: 2, Dynamics: dyn, Lean: true,
		})
	})
}
