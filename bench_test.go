package algossip_test

// One benchmark per paper artifact, matching the experiment index in
// DESIGN.md (E1-E12, A1-A4). Each benchmark runs the core measurement of
// its experiment at a fixed representative size and reports the stopping
// time via the custom "rounds" metric (and "speedup"/"ratio" where the
// artifact is a comparison), so `go test -bench=.` regenerates the paper's
// quantitative story end to end.

import (
	"testing"

	"algossip/internal/core"
	"algossip/internal/experiments"
	"algossip/internal/gf"
	"algossip/internal/gossip/algebraic"
	"algossip/internal/graph"
	"algossip/internal/queueing"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
)

// reportMeanRounds runs fn b.N times and reports the mean stopping time.
func reportMeanRounds(b *testing.B, fn func(seed uint64) (int, error)) {
	b.Helper()
	total := 0
	for i := 0; i < b.N; i++ {
		r, err := fn(core.SplitSeed(7, uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		total += r
	}
	b.ReportMetric(float64(total)/float64(b.N), "rounds")
}

// BenchmarkTable1UniformAGAnyGraph (E1): uniform algebraic gossip on an
// arbitrary (bottlenecked) graph — Theorem 1's O((k+log n+D)Δ) regime.
func BenchmarkTable1UniformAGAnyGraph(b *testing.B) {
	g := graph.Barbell(64)
	reportMeanRounds(b, func(seed uint64) (int, error) {
		res, err := experiments.UniformAG(experiments.GossipSpec{Graph: g, K: 32}, seed)
		return res.Rounds, err
	})
}

// BenchmarkTable1ConstDegreeOptimal (E2): Θ(k+D) on a constant-degree
// graph (line, k = n/2); the reported rounds stay proportional to k+D.
func BenchmarkTable1ConstDegreeOptimal(b *testing.B) {
	g := graph.Line(128)
	b.ReportMetric(float64(64+g.Diameter()), "k+D")
	reportMeanRounds(b, func(seed uint64) (int, error) {
		res, err := experiments.UniformAG(experiments.GossipSpec{Graph: g, K: 64}, seed)
		return res.Rounds, err
	})
}

// BenchmarkTable1TAGGeneral (E3): TAG with a uniform broadcast tree on the
// barbell — Theorem 4's O(k + log n + d(S) + t(S)).
func BenchmarkTable1TAGGeneral(b *testing.B) {
	g := graph.Barbell(64)
	reportMeanRounds(b, func(seed uint64) (int, error) {
		res, err := experiments.TAG(experiments.GossipSpec{Graph: g, K: 64},
			experiments.TreeUniformB, seed)
		return res.Rounds, err
	})
}

// BenchmarkTable1TAGRoundRobin (E4): TAG+B_RR with k=n on the barbell —
// Theorem 5's Θ(n) on any graph.
func BenchmarkTable1TAGRoundRobin(b *testing.B) {
	g := graph.Barbell(96)
	reportMeanRounds(b, func(seed uint64) (int, error) {
		res, err := experiments.TAG(experiments.GossipSpec{Graph: g, K: 96},
			experiments.TreeBRR, seed)
		return res.Rounds, err
	})
}

// BenchmarkTable1TAGIS (E5): TAG+IS on a clique chain (large weak
// conductance) — Theorems 6-8's Θ(k).
func BenchmarkTable1TAGIS(b *testing.B) {
	g := graph.CliqueChain(4, 24)
	reportMeanRounds(b, func(seed uint64) (int, error) {
		res, err := experiments.TAG(experiments.GossipSpec{Graph: g, K: 2 * g.N()},
			experiments.TreeIS, seed)
		return res.Rounds, err
	})
}

// BenchmarkTable2Line (E6): uniform AG on the line — ours O(k+n) vs
// Haeupler's O(k + n log²n).
func BenchmarkTable2Line(b *testing.B) {
	g := graph.Line(128)
	reportMeanRounds(b, func(seed uint64) (int, error) {
		res, err := experiments.UniformAG(experiments.GossipSpec{Graph: g, K: 64}, seed)
		return res.Rounds, err
	})
}

// BenchmarkTable2Grid (E7): uniform AG on the √n x √n grid — ours O(k+√n).
func BenchmarkTable2Grid(b *testing.B) {
	g := graph.Grid(12, 12)
	reportMeanRounds(b, func(seed uint64) (int, error) {
		res, err := experiments.UniformAG(experiments.GossipSpec{Graph: g, K: 72}, seed)
		return res.Rounds, err
	})
}

// BenchmarkTable2BinaryTree (E8): uniform AG on the complete binary tree —
// ours O(k + log n), an Ω(n log n/k) improvement over O(k + n log²n).
func BenchmarkTable2BinaryTree(b *testing.B) {
	g := graph.BinaryTree(127)
	reportMeanRounds(b, func(seed uint64) (int, error) {
		res, err := experiments.UniformAG(experiments.GossipSpec{Graph: g, K: 64}, seed)
		return res.Rounds, err
	})
}

// BenchmarkFigure1QueueChain (E9): the Theorem 2 queueing system Q̂^line —
// k customers through lmax M/M/1 queues; reports the mean drain time.
func BenchmarkFigure1QueueChain(b *testing.B) {
	const k, lmax, mu = 100, 10, 1.0
	total := 0.0
	for i := 0; i < b.N; i++ {
		rng := core.NewRand(core.SplitSeed(9, uint64(i)))
		total += queueing.SimulateLineAllAtEnd(lmax, k, queueing.Exponential(mu), rng)
	}
	b.ReportMetric(total/float64(b.N), "drain-time")
}

// BenchmarkBarbellSpeedup (E10): the headline comparison — uniform AG vs
// TAG+B_RR on the barbell with k = n; reports the speedup ratio.
func BenchmarkBarbellSpeedup(b *testing.B) {
	g := graph.Barbell(64)
	var agSum, tagSum float64
	for i := 0; i < b.N; i++ {
		seed := core.SplitSeed(11, uint64(i))
		ag, err := experiments.UniformAG(experiments.GossipSpec{Graph: g, K: 64}, seed)
		if err != nil {
			b.Fatal(err)
		}
		tag, err := experiments.TAG(experiments.GossipSpec{Graph: g, K: 64},
			experiments.TreeBRR, seed)
		if err != nil {
			b.Fatal(err)
		}
		agSum += float64(ag.Rounds)
		tagSum += float64(tag.Rounds)
	}
	b.ReportMetric(agSum/float64(b.N), "uniform-rounds")
	b.ReportMetric(tagSum/float64(b.N), "tag-rounds")
	b.ReportMetric(agSum/tagSum, "speedup")
}

// BenchmarkLowerBoundFloor (E11): measured rounds against the Ω(k)
// information-theoretic floor k(n-1)/2n on the complete graph; reports the
// measured/floor ratio (always >= 1).
func BenchmarkLowerBoundFloor(b *testing.B) {
	g := graph.Complete(64)
	floor := float64(64*(g.N()-1)) / float64(2*g.N())
	total := 0.0
	for i := 0; i < b.N; i++ {
		res, err := experiments.UniformAG(experiments.GossipSpec{Graph: g, K: 64},
			core.SplitSeed(13, uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		total += float64(res.Rounds)
	}
	b.ReportMetric(total/float64(b.N), "rounds")
	b.ReportMetric(total/float64(b.N)/floor, "rounds-over-floor")
}

// BenchmarkCompleteGraphAG (E12): Deb et al.'s setting — complete graph,
// k = n, Θ(k) rounds; reports rounds/k.
func BenchmarkCompleteGraphAG(b *testing.B) {
	g := graph.Complete(128)
	total := 0.0
	for i := 0; i < b.N; i++ {
		res, err := experiments.UniformAG(experiments.GossipSpec{Graph: g, K: 128},
			core.SplitSeed(15, uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		total += float64(res.Rounds)
	}
	b.ReportMetric(total/float64(b.N), "rounds")
	b.ReportMetric(total/float64(b.N)/128, "rounds-per-k")
}

// BenchmarkAblationFieldSize (A1): q=256 vs the q=2 worst case the bounds
// assume; reports both round counts.
func BenchmarkAblationFieldSize(b *testing.B) {
	g := graph.Grid(8, 8)
	var q2, q256 float64
	for i := 0; i < b.N; i++ {
		seed := core.SplitSeed(17, uint64(i))
		a, err := experiments.UniformAG(experiments.GossipSpec{Graph: g, K: 32, Q: 2}, seed)
		if err != nil {
			b.Fatal(err)
		}
		c, err := experiments.UniformAG(experiments.GossipSpec{Graph: g, K: 32, Q: 256}, seed)
		if err != nil {
			b.Fatal(err)
		}
		q2 += float64(a.Rounds)
		q256 += float64(c.Rounds)
	}
	b.ReportMetric(q2/float64(b.N), "rounds-q2")
	b.ReportMetric(q256/float64(b.N), "rounds-q256")
}

// BenchmarkAblationAction (A2): EXCHANGE vs PUSH on the star graph, where
// the hub bottleneck separates the actions.
func BenchmarkAblationAction(b *testing.B) {
	g := graph.Star(64)
	var xchg, push float64
	for i := 0; i < b.N; i++ {
		seed := core.SplitSeed(19, uint64(i))
		x, err := experiments.UniformAG(experiments.GossipSpec{Graph: g, K: 32, Action: core.Exchange}, seed)
		if err != nil {
			b.Fatal(err)
		}
		p, err := experiments.UniformAG(experiments.GossipSpec{Graph: g, K: 32, Action: core.Push}, seed)
		if err != nil {
			b.Fatal(err)
		}
		xchg += float64(x.Rounds)
		push += float64(p.Rounds)
	}
	b.ReportMetric(xchg/float64(b.N), "rounds-exchange")
	b.ReportMetric(push/float64(b.N), "rounds-push")
}

// BenchmarkAblationUncoded (A3): RLNC vs store-and-forward on the complete
// graph with k = n; reports the coupon-collector penalty ratio.
func BenchmarkAblationUncoded(b *testing.B) {
	g := graph.Complete(64)
	var coded, plain float64
	for i := 0; i < b.N; i++ {
		seed := core.SplitSeed(21, uint64(i))
		c, err := experiments.UniformAG(experiments.GossipSpec{Graph: g, K: 64}, seed)
		if err != nil {
			b.Fatal(err)
		}
		u, err := experiments.Uncoded(experiments.GossipSpec{Graph: g, K: 64}, seed)
		if err != nil {
			b.Fatal(err)
		}
		coded += float64(c.Rounds)
		plain += float64(u.Rounds)
	}
	b.ReportMetric(coded/float64(b.N), "rounds-rlnc")
	b.ReportMetric(plain/float64(b.N), "rounds-uncoded")
	b.ReportMetric(plain/coded, "uncoded-penalty")
}

// BenchmarkAblationRankOnly (A4): the rank-only fast path vs the payload
// backend at q=256 — identical stopping times, different wall-clock cost;
// this benchmark times the fast path (compare with the payload decode cost
// implicit in BenchmarkAblationFieldSize's q256 leg).
func BenchmarkAblationRankOnly(b *testing.B) {
	g := graph.Grid(8, 8)
	reportMeanRounds(b, func(seed uint64) (int, error) {
		res, err := experiments.UniformAG(experiments.GossipSpec{Graph: g, K: 32, Q: 256}, seed)
		return res.Rounds, err
	})
}

// BenchmarkAblationSyncVsAsync (A5): the two time models on the grid;
// reports both round counts (Theorem 1 bounds them identically).
func BenchmarkAblationSyncVsAsync(b *testing.B) {
	g := graph.Grid(8, 8)
	var syncR, asyncR float64
	for i := 0; i < b.N; i++ {
		seed := core.SplitSeed(23, uint64(i))
		s, err := experiments.UniformAG(experiments.GossipSpec{Graph: g, K: 32, Model: core.Synchronous}, seed)
		if err != nil {
			b.Fatal(err)
		}
		a, err := experiments.UniformAG(experiments.GossipSpec{Graph: g, K: 32, Model: core.Asynchronous}, seed)
		if err != nil {
			b.Fatal(err)
		}
		syncR += float64(s.Rounds)
		asyncR += float64(a.Rounds)
	}
	b.ReportMetric(syncR/float64(b.N), "rounds-sync")
	b.ReportMetric(asyncR/float64(b.N), "rounds-async")
}

// BenchmarkAblationPacketLoss (A6): uniform AG under 30% i.i.d. packet
// loss; reports the slowdown vs the clean run (expected ~1/(1-p) = 1.43).
func BenchmarkAblationPacketLoss(b *testing.B) {
	g := graph.Grid(8, 8)
	var clean, lossy float64
	for i := 0; i < b.N; i++ {
		seed := core.SplitSeed(25, uint64(i))
		c, err := experiments.UniformAG(experiments.GossipSpec{Graph: g, K: 32}, seed)
		if err != nil {
			b.Fatal(err)
		}
		l, err := experiments.UniformAG(experiments.GossipSpec{Graph: g, K: 32, LossRate: 0.3}, seed)
		if err != nil {
			b.Fatal(err)
		}
		clean += float64(c.Rounds)
		lossy += float64(l.Rounds)
	}
	b.ReportMetric(clean/float64(b.N), "rounds-clean")
	b.ReportMetric(lossy/float64(b.N), "rounds-lossy")
	b.ReportMetric(lossy/clean, "loss-slowdown")
}

// BenchmarkAblationGenerations (A7): generation-coded gossip with an
// intermediate generation size vs the paper's single-generation protocol.
func BenchmarkAblationGenerations(b *testing.B) {
	g := graph.Complete(32)
	cfg := rlnc.GenConfig{
		Inner:   rlnc.Config{Field: gf.MustNew(2), RankOnly: true},
		K:       32,
		GenSize: 16,
	}
	total := 0.0
	for i := 0; i < b.N; i++ {
		seed := core.SplitSeed(27, uint64(i))
		p, err := algebraic.NewGen(g, core.Synchronous, sim.NewUniform(g), cfg,
			core.NewRand(core.SplitSeed(seed, 1)))
		if err != nil {
			b.Fatal(err)
		}
		if err := p.SeedAll(algebraic.RoundRobinAssign(32, g.N()), nil); err != nil {
			b.Fatal(err)
		}
		res, err := sim.New(g, core.Synchronous, p, core.SplitSeed(seed, 2)).Run()
		if err != nil {
			b.Fatal(err)
		}
		total += float64(res.Rounds)
	}
	b.ReportMetric(total/float64(b.N), "rounds")
	b.ReportMetric(float64(cfg.MessageBits()), "bits-per-packet")
}
