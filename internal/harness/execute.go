package harness

import (
	"fmt"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/gossip"
	"algossip/internal/gossip/algebraic"
	"algossip/internal/gossip/broadcast"
	"algossip/internal/gossip/ispread"
	"algossip/internal/gossip/tag"
	"algossip/internal/gossip/uncoded"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
)

// SelectorKind names a communication model.
type SelectorKind int

const (
	// SelUniform is uniform gossip (Definition 1).
	SelUniform SelectorKind = iota + 1
	// SelRoundRobin is round-robin / quasirandom gossip (Definition 2).
	SelRoundRobin
)

// String returns the selector name.
func (s SelectorKind) String() string {
	if s == SelRoundRobin {
		return "round-robin"
	}
	return "uniform"
}

func (s SelectorKind) build(g *graph.Graph) sim.PartnerSelector {
	if s == SelRoundRobin {
		return sim.NewRoundRobin(g)
	}
	return sim.NewUniform(g)
}

// TreeKind names a spanning-tree protocol for TAG's Phase 1.
type TreeKind int

const (
	// TreeBRR is the round-robin broadcast B_RR of Theorem 5.
	TreeBRR TreeKind = iota + 1
	// TreeUniformB is the uniform push broadcast.
	TreeUniformB
	// TreeIS is the information-spreading protocol of Section 6.
	TreeIS
)

// String returns the tree-protocol name.
func (t TreeKind) String() string {
	switch t {
	case TreeBRR:
		return "BRR"
	case TreeUniformB:
		return "uniform-B"
	case TreeIS:
		return "IS"
	default:
		return fmt.Sprintf("TreeKind(%d)", int(t))
	}
}

// protocol maps a Phase 1 tree protocol to the TAG Protocol that uses it.
func (t TreeKind) protocol() (Protocol, error) {
	switch t {
	case TreeBRR:
		return ProtocolTAGRR, nil
	case TreeUniformB:
		return ProtocolTAGUniform, nil
	case TreeIS:
		return ProtocolTAGIS, nil
	default:
		return 0, fmt.Errorf("harness: unknown tree kind %d", int(t))
	}
}

// GossipSpec declares one gossip measurement: the topology plus every
// protocol knob. Zero fields default to the paper's canonical
// configuration (synchronous time, EXCHANGE, GF(2), uniform selector).
type GossipSpec struct {
	// Graph is the topology.
	Graph *graph.Graph
	// Model is the time model (default Synchronous).
	Model core.TimeModel
	// K is the number of messages.
	K int
	// Q is the field order (default 2, which selects the fast bitset
	// backend; stopping-time behaviour only improves with larger q).
	Q int
	// Action is the contact direction (default Exchange).
	Action core.Action
	// Selector is the communication model (default uniform).
	Selector SelectorKind
	// SingleSource, when true, seeds all k messages at node 0 instead of
	// round-robin across nodes.
	SingleSource bool
	// PayloadLen, when positive, runs the simulation with real r-symbol
	// payloads (random contents drawn from a dedicated seed stream)
	// instead of rank-only coefficient tracking — the configuration that
	// exercises the bulk combine kernels end to end. Uniform AG only.
	PayloadLen int
	// LossRate drops each transmitted packet with this probability
	// (failure injection; uniform AG only).
	LossRate float64
	// GenSize, when positive, runs uniform AG with generation-based
	// coding (rlnc.GenConfig): the k messages are split into ⌈k/GenSize⌉
	// independently coded generations, capping per-packet coefficient
	// overhead and decode cost at the generation size — the configuration
	// that scales to n ≥ 10^5. Must not exceed K (typed error
	// rlnc.GenSizeError otherwise). Uniform AG, static topology, no loss.
	GenSize int
	// Shards, when positive, runs the trial through the sharded
	// round-parallel engine (sim.WithShards): node wakeups fan out over
	// this many workers inside one round, with per-node RNG streams and
	// an ordered commit keeping the trajectory byte-identical for every
	// positive shard count. The sharded trajectory differs from the
	// classic serial one (Shards == 0) for the same seed. Uniform AG,
	// synchronous model only.
	Shards int
	// Dynamics applies a time-varying topology schedule over Graph
	// (nil = static). Supported for uniform AG and the uncoded baseline;
	// tree-based protocols need a static topology.
	Dynamics *Dynamics
	// Adversary declares a Byzantine node population (nil = all honest).
	// Uniform AG on a static topology only, classic engine only: the
	// Byzantine set draws from seed stream 13 of the trial seed, and
	// initial messages are seeded round-robin across honest nodes (a
	// Byzantine node holding the only copy of a message would never
	// spread it).
	Adversary *Adversary
	// Classes declares heterogeneous node capabilities (nil = uniform).
	// Same support envelope as Adversary; class membership draws from
	// stream 14, straggler service times from stream 15.
	Classes *Classes
	// MaxRounds overrides the engine's round budget (default generous).
	MaxRounds int
	// Observer, when set, receives per-node completion events during the
	// run (algebraic and TAG protocols only). Observers must be safe for
	// the single simulation goroutine that invokes them; a fresh observer
	// per trial keeps parallel pools race-free.
	Observer sim.Observer
	// Lean skips the O(n) per-node completion detail in the Outcome —
	// for big sweeps that only read Rounds, it keeps ResultSets and
	// checkpoint lines a few dozen bytes per trial. Trajectories are
	// unaffected.
	Lean bool
}

// Normalize fills zero fields with the canonical defaults.
func (s GossipSpec) Normalize() GossipSpec {
	if s.Model == 0 {
		s.Model = core.Synchronous
	}
	if s.Q == 0 {
		s.Q = 2
	}
	if s.Action == 0 {
		s.Action = core.Exchange
	}
	if s.Selector == 0 {
		s.Selector = SelUniform
	}
	if s.MaxRounds == 0 {
		s.MaxRounds = 1 << 21
	}
	return s
}

// RLNCConfig returns the codec configuration for the spec: rank-only by
// default, payload-carrying when PayloadLen is set.
func (s GossipSpec) RLNCConfig() rlnc.Config {
	if s.PayloadLen > 0 {
		return rlnc.Config{Field: gf.MustNew(s.Q), K: s.K, PayloadLen: s.PayloadLen}
	}
	return rlnc.Config{Field: gf.MustNew(s.Q), K: s.K, RankOnly: true}
}

// Assign returns the initial message placement.
func (s GossipSpec) Assign() []core.NodeID {
	if s.SingleSource {
		return algebraic.SingleAssign(s.K, 0)
	}
	return algebraic.RoundRobinAssign(s.K, s.Graph.N())
}

// Outcome is everything one trial measures: the stopping time plus the
// per-node and per-packet observability the protocols expose.
type Outcome struct {
	// Result is the engine's run summary (rounds, timeslots, completion).
	Result sim.Result `json:"result"`
	// NodeDoneRounds holds, per node, the round at which it completed.
	NodeDoneRounds []int `json:"node_done_rounds,omitempty"`
	// Traffic is the aggregated transmission accounting (for TAG it
	// includes the spanning-tree protocol's messages).
	Traffic gossip.Traffic `json:"traffic"`
	// MessageBits is the wire size of one message on the wire.
	MessageBits int `json:"message_bits"`
	// TreeRounds is t(S) for TAG runs (-1 otherwise or when untracked).
	TreeRounds int `json:"tree_rounds"`
	// TreeDepth and TreeDiameter describe the tree S built (-1 if none).
	TreeDepth    int `json:"tree_depth"`
	TreeDiameter int `json:"tree_diameter"`
}

// Execute runs one trial of the given protocol and collects its Outcome.
// It is THE single dispatch point: the root package's Run/RunDetailed,
// the experiment runners, and the worker pool all funnel through it, so
// a (GossipSpec, Protocol, seed) triple replays one fixed trajectory
// everywhere. The seed-stream layout (protocol RNG, tree RNG, engine
// RNG; stream 10 feeds the dynamic-topology schedule, streams 13–15 the
// adversarial and heterogeneous-class draws) is pinned by the conformance
// suite — do not renumber.
func Execute(spec GossipSpec, proto Protocol, seed uint64) (Outcome, error) {
	if spec.Graph == nil {
		return Outcome{}, fmt.Errorf("harness: nil graph")
	}
	if spec.K <= 0 {
		return Outcome{}, fmt.Errorf("harness: k must be positive, got %d", spec.K)
	}
	if !spec.Dynamics.IsStatic() {
		switch proto {
		case 0, ProtocolUniformAG, ProtocolUncoded:
		default:
			return Outcome{}, fmt.Errorf("harness: dynamics %q unsupported for protocol %v (tree-based protocols need a static topology)",
				spec.Dynamics.Kind, proto)
		}
	}
	if spec.PayloadLen > 0 {
		switch proto {
		case 0, ProtocolUniformAG:
		default:
			return Outcome{}, fmt.Errorf("harness: payload mode unsupported for protocol %v (uniform AG only)", proto)
		}
	}
	if spec.GenSize < 0 {
		return Outcome{}, fmt.Errorf("harness: %w", &rlnc.GenSizeError{GenSize: spec.GenSize, K: spec.K})
	}
	if spec.GenSize > 0 {
		switch proto {
		case 0, ProtocolUniformAG:
		default:
			return Outcome{}, fmt.Errorf("harness: generation mode unsupported for protocol %v (uniform AG only)", proto)
		}
		if spec.GenSize > spec.K {
			return Outcome{}, fmt.Errorf("harness: %w", &rlnc.GenSizeError{GenSize: spec.GenSize, K: spec.K})
		}
		if !spec.Dynamics.IsStatic() {
			return Outcome{}, fmt.Errorf("harness: generation mode requires a static topology")
		}
		if spec.LossRate != 0 {
			return Outcome{}, fmt.Errorf("harness: generation mode does not support loss injection")
		}
	}
	if spec.Shards > 0 {
		switch proto {
		case 0, ProtocolUniformAG:
		default:
			return Outcome{}, fmt.Errorf("harness: sharded execution unsupported for protocol %v (uniform AG only)", proto)
		}
		if spec.Model == core.Asynchronous {
			return Outcome{}, fmt.Errorf("harness: sharded execution requires the synchronous model")
		}
	}
	if !spec.Adversary.IsNone() || !spec.Classes.IsNone() {
		switch proto {
		case 0, ProtocolUniformAG:
		default:
			return Outcome{}, fmt.Errorf("harness: adversary/classes unsupported for protocol %v (uniform AG only)", proto)
		}
		if err := spec.Adversary.validate(); err != nil {
			return Outcome{}, err
		}
		if err := spec.Classes.validate(); err != nil {
			return Outcome{}, err
		}
		if spec.GenSize > 0 {
			return Outcome{}, fmt.Errorf("harness: adversary/classes do not support generation mode")
		}
		if spec.Shards > 0 {
			return Outcome{}, fmt.Errorf("harness: adversary/classes do not support sharded execution")
		}
		if !spec.Dynamics.IsStatic() {
			return Outcome{}, fmt.Errorf("harness: adversary/classes require a static topology")
		}
	}
	spec = spec.Normalize()
	g := spec.Graph
	out := Outcome{
		MessageBits: gossip.MessageBits(spec.RLNCConfig()),
		TreeRounds:  -1, TreeDepth: -1, TreeDiameter: -1,
	}

	var proto2 sim.Protocol
	var engineStream uint64
	var finish func() // gathers detail after the run
	switch {
	case (proto == 0 || proto == ProtocolUniformAG) && spec.GenSize > 0:
		cfg := rlnc.GenConfig{Inner: spec.RLNCConfig(), K: spec.K, GenSize: spec.GenSize}
		cfg.Inner.K = 0 // derived per generation
		p, err := algebraic.NewGen(g, spec.Model, spec.Selector.build(g), cfg,
			core.NewRand(core.SplitSeed(seed, 1)))
		if err != nil {
			return out, err
		}
		if spec.Observer != nil {
			p.SetObserver(spec.Observer)
		}
		var msgs []rlnc.Message
		if spec.PayloadLen > 0 {
			msgs = algebraic.RandomMessages(spec.RLNCConfig(), core.NewRand(core.SplitSeed(seed, 11)))
		}
		if err := p.SeedAll(spec.Assign(), msgs); err != nil {
			return out, err
		}
		if spec.Shards > 0 {
			// Sharded per-node RNG streams derive from stream 12; the
			// engine stream (2) is still reserved even though the sharded
			// synchronous loop never draws from it.
			if err := p.EnableSharded(core.SplitSeed(seed, 12), true); err != nil {
				return out, err
			}
		}
		out.MessageBits = cfg.MessageBits()
		proto2, engineStream = p, 2
		finish = func() {
			if !spec.Lean {
				out.NodeDoneRounds = p.DoneRounds()
			}
			out.Traffic = p.Traffic()
		}
	case proto == 0 || proto == ProtocolUniformAG:
		cfg := algebraic.Config{RLNC: spec.RLNCConfig(), Action: spec.Action, LossRate: spec.LossRate}
		assign := spec.Assign()
		if !spec.Adversary.IsNone() || !spec.Classes.IsNone() {
			// Adversarial/heterogeneous trials draw node profiles from
			// dedicated seed streams (13 adversary set, 14 class set, 15
			// straggler service times), so the protocol stream (1) and
			// every non-adversarial trajectory stay byte-identical, and a
			// fixed-seed adversarial trial replays exactly on any worker
			// count.
			cfg.Traits = buildTraits(g.N(), spec.Adversary, spec.Classes,
				core.SplitSeed(seed, 13), core.SplitSeed(seed, 14))
			cfg.TraitSeed = core.SplitSeed(seed, 15)
			if !spec.Adversary.IsNone() {
				honest := algebraic.HonestNodes(cfg.Traits)
				if spec.SingleSource {
					assign = algebraic.SingleAssign(spec.K, honest[0])
				} else {
					assign = algebraic.RoundRobinAssignOver(spec.K, honest)
				}
			}
		}
		p, err := algebraic.New(g, spec.Model, spec.Selector.build(g), cfg,
			core.NewRand(core.SplitSeed(seed, 1)))
		if err != nil {
			return out, err
		}
		if spec.Observer != nil {
			p.SetObserver(spec.Observer)
		}
		// Payload contents draw from their own stream (11) so rank-only
		// trajectories are untouched when PayloadLen is zero.
		var msgs []rlnc.Message
		if spec.PayloadLen > 0 {
			msgs = algebraic.RandomMessages(spec.RLNCConfig(), core.NewRand(core.SplitSeed(seed, 11)))
		}
		if err := p.SeedAll(assign, msgs); err != nil {
			return out, err
		}
		if spec.Shards > 0 {
			// Stream 12 feeds the per-node RNG streams of sharded
			// execution; retirement stays off on dynamic topologies,
			// where inertness is not monotone.
			if err := p.EnableSharded(core.SplitSeed(seed, 12), spec.Dynamics.IsStatic()); err != nil {
				return out, err
			}
		}
		proto2, engineStream = p, 2
		finish = func() {
			if !spec.Lean {
				out.NodeDoneRounds = p.DoneRounds()
			}
			out.Traffic = p.Traffic()
		}
	case proto == ProtocolTAGRR || proto == ProtocolTAGUniform || proto == ProtocolTAGIS:
		var stp tag.SpanningTree
		switch proto {
		case ProtocolTAGRR:
			stp = broadcast.New(g, spec.Model, sim.NewRoundRobin(g),
				broadcast.Config{Origin: 0}, core.NewRand(core.SplitSeed(seed, 3)))
		case ProtocolTAGUniform:
			stp = broadcast.New(g, spec.Model, sim.NewUniform(g),
				broadcast.Config{Origin: 0}, core.NewRand(core.SplitSeed(seed, 3)))
		default:
			stp = ispread.New(g, spec.Model, ispread.Config{Root: 0},
				core.NewRand(core.SplitSeed(seed, 3)))
		}
		p, err := tag.New(g, spec.Model, stp, spec.RLNCConfig(),
			core.NewRand(core.SplitSeed(seed, 4)))
		if err != nil {
			return out, err
		}
		if spec.Observer != nil {
			p.SetObserver(spec.Observer)
		}
		if err := p.SeedAll(spec.Assign(), nil); err != nil {
			return out, err
		}
		proto2, engineStream = p, 5
		finish = func() {
			if !spec.Lean {
				out.NodeDoneRounds = p.DoneRounds()
			}
			out.Traffic = p.Traffic()
			out.TreeRounds = p.TreeRound()
			if tree, ok := stp.Tree(); ok {
				out.TreeDepth = tree.Depth()
				out.TreeDiameter = tree.Diameter()
			}
		}
	case proto == ProtocolUncoded:
		p := uncoded.New(g, spec.Model, spec.Selector.build(g),
			uncoded.Config{K: spec.K, Action: spec.Action},
			core.NewRand(core.SplitSeed(seed, 1)))
		p.SeedAll(spec.Assign())
		proto2, engineStream = p, 2
		finish = func() {
			if !spec.Lean {
				out.NodeDoneRounds = p.DoneRounds()
			}
			out.Traffic = p.Traffic()
			out.MessageBits = gossip.UncodedMessageBits(spec.K, 1, spec.Q)
		}
	default:
		return out, fmt.Errorf("harness: unknown protocol %v", proto)
	}

	opts := []sim.Option{sim.WithMaxRounds(spec.MaxRounds)}
	if spec.Shards > 0 {
		opts = append(opts, sim.WithShards(spec.Shards))
	}
	var eng *sim.Engine
	if spec.Dynamics.IsStatic() {
		eng = sim.New(g, spec.Model, proto2,
			core.SplitSeed(seed, engineStream), opts...)
	} else {
		dyn, err := spec.Dynamics.Build(g, core.SplitSeed(seed, 10))
		if err != nil {
			return out, err
		}
		eng = sim.NewDynamic(dyn, spec.Model, proto2,
			core.SplitSeed(seed, engineStream), opts...)
	}
	res, err := eng.Run()
	out.Result = res
	if err != nil {
		return out, err
	}
	finish()
	return out, nil
}

// UniformAG runs one algebraic-gossip trial and returns the stopping time.
func UniformAG(spec GossipSpec, seed uint64) (sim.Result, error) {
	o, err := Execute(spec, ProtocolUniformAG, seed)
	return o.Result, err
}

// TAGResult extends a sim.Result with Phase 1 observables.
type TAGResult struct {
	sim.Result
	// TreeRounds is t(S): the synchronous round at which the spanning tree
	// completed (-1 if untracked, asynchronous model).
	TreeRounds int
	// TreeDepth and TreeDiameter describe the tree S built.
	TreeDepth, TreeDiameter int
}

// TAG runs one TAG trial with the given Phase 1 protocol.
func TAG(spec GossipSpec, kind TreeKind, seed uint64) (TAGResult, error) {
	proto, err := kind.protocol()
	if err != nil {
		return TAGResult{}, err
	}
	o, err := Execute(spec, proto, seed)
	return TAGResult{
		Result:     o.Result,
		TreeRounds: o.TreeRounds, TreeDepth: o.TreeDepth, TreeDiameter: o.TreeDiameter,
	}, err
}

// Uncoded runs one store-and-forward baseline trial.
func Uncoded(spec GossipSpec, seed uint64) (sim.Result, error) {
	o, err := Execute(spec, ProtocolUncoded, seed)
	return o.Result, err
}

// Broadcast runs one broadcast trial and returns the stopping time and the
// induced spanning tree.
func Broadcast(g *graph.Graph, model core.TimeModel, sel SelectorKind, seed uint64) (sim.Result, *graph.Tree, error) {
	p := broadcast.New(g, model, sel.build(g), broadcast.Config{Origin: 0},
		core.NewRand(core.SplitSeed(seed, 6)))
	res, err := sim.New(g, model, p, core.SplitSeed(seed, 7)).Run()
	if err != nil {
		return res, nil, err
	}
	tree, _ := p.Tree()
	return res, tree, nil
}

// ISpread runs one IS trial in the given mode and returns stopping time and
// the induced tree (TreeMode).
func ISpread(g *graph.Graph, model core.TimeModel, mode ispread.Mode, seed uint64) (sim.Result, *graph.Tree, error) {
	p := ispread.New(g, model, ispread.Config{Root: 0, Mode: mode},
		core.NewRand(core.SplitSeed(seed, 8)))
	res, err := sim.New(g, model, p, core.SplitSeed(seed, 9)).Run()
	if err != nil {
		return res, nil, err
	}
	tree, _ := p.Tree()
	return res, tree, nil
}
