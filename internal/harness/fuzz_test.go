package harness

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadCheckpoint throws arbitrary bytes at the checkpoint parser: a
// torn or corrupt JSONL file must never panic — it either resumes the
// valid prefix or reports an error. This is the recovery path a killed
// sweep depends on, so graceful degradation is load-bearing.
func FuzzReadCheckpoint(f *testing.F) {
	spec := &Spec{Name: "fuzz", Graph: "line", Sizes: []int{8}, Trials: 2, Seed: 5}
	_, trials, err := spec.Expand()
	if err != nil {
		f.Fatal(err)
	}
	total := len(trials)
	header := `{"v":1,"name":"fuzz","fingerprint":"` + spec.Fingerprint() + `","total":2}` + "\n"

	f.Add([]byte(header + `{"i":0,"o":{"result":{"Rounds":7,"Completed":true}}}` + "\n"))
	f.Add([]byte(header + `{"i":0,"o":{}}` + "\n" + `{"i":1,"o":{"result"`)) // torn tail
	f.Add([]byte(header + `{"i":99,"o":{}}` + "\n"))                         // out of range
	f.Add([]byte(`{"v":2,"fingerprint":"x","total":2}` + "\n"))              // wrong version
	f.Add([]byte("not json at all\n"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xfe, 0x00, '\n', '{', '}'})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "ck.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		loaded, valid, err := readCheckpoint(path, spec, total)
		if err != nil {
			return // rejecting corrupt input is fine; panicking is not
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid offset %d outside [0, %d]", valid, len(data))
		}
		for i := range loaded {
			if i < 0 || i >= total {
				t.Fatalf("accepted out-of-range trial index %d", i)
			}
		}
		// Whatever was accepted must survive a resume round trip through
		// openCheckpoint (which truncates to the valid prefix).
		ck, err := openCheckpoint(path, spec, total, true)
		if err != nil {
			t.Fatalf("openCheckpoint rejected what readCheckpoint accepted: %v", err)
		}
		defer ck.close()
		if len(ck.loaded) != len(loaded) {
			t.Fatalf("resume replayed %d entries, read %d", len(ck.loaded), len(loaded))
		}
	})
}
