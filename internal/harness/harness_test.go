package harness

import (
	"strings"
	"testing"

	"algossip/internal/core"
	"algossip/internal/graph"
)

func lineSpec() Spec {
	return Spec{
		Name:  "test",
		Graph: "line", Sizes: []int{8, 12},
		Protocol: ProtocolUniformAG,
		Trials:   2, Seed: 5,
	}
}

func TestSpecExpandDeterministic(t *testing.T) {
	a, b := lineSpec(), lineSpec()
	_, ta, err := a.Expand()
	if err != nil {
		t.Fatal(err)
	}
	_, tb, err := b.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(ta) != 4 {
		t.Fatalf("expanded to %d trials, want 4", len(ta))
	}
	for i := range ta {
		if ta[i].Seed != tb[i].Seed || ta[i].Cell != tb[i].Cell || ta[i].Num != tb[i].Num {
			t.Fatalf("expansion not deterministic at %d: %+v vs %+v", i, ta[i], tb[i])
		}
		// The default layout is the historical sweep derivation.
		want := core.SplitSeed(5, uint64(ta[i].Size*1000+ta[i].Num))
		if ta[i].Seed != want {
			t.Fatalf("trial %d seed %d, want sweep layout %d", i, ta[i].Seed, want)
		}
	}
}

func TestSpecExpandValidation(t *testing.T) {
	bad := []Spec{
		{Graph: "line", Sizes: []int{8}},                                    // no trials
		{Trials: 1},                                                         // no graphs or sizes
		{Graph: "bogus", Sizes: []int{8}, Trials: 1},                        // unknown family
		{Graph: "line", Sizes: []int{8}, KMode: "cube", Trials: 1},          // bad kmode
		{Graph: "line", Sizes: []int{8, 12}, Ks: []int{1}, Trials: 1},       // Ks/cells mismatch
		{Graphs: []*graph.Graph{graph.Line(4)}, Ks: []int{0, 1}, Trials: 1}, // Ks/cells mismatch
	}
	for i, s := range bad {
		if _, _, err := s.Expand(); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
}

func TestPickK(t *testing.T) {
	tests := []struct {
		mode string
		n    int
		want int
	}{
		{"half", 64, 32},
		{"n", 64, 64},
		{"sqrt", 64, 8},
		{"sqrt", 10, 4},
		{"const:5", 100, 5},
	}
	for _, tt := range tests {
		got, err := PickK(tt.mode, tt.n)
		if err != nil || got != tt.want {
			t.Errorf("PickK(%q, %d) = %d, %v; want %d", tt.mode, tt.n, got, err, tt.want)
		}
	}
	for _, bad := range []string{"", "cube", "const:x", "const:0"} {
		if _, err := PickK(bad, 10); err == nil {
			t.Errorf("PickK(%q) accepted", bad)
		}
	}
}

func TestParseSizes(t *testing.T) {
	got, err := ParseSizes("16, 32,64")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{16, 32, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParseSizes = %v", got)
		}
	}
	for _, bad := range []string{"", "x", "16,1", "16,,32"} {
		if _, err := ParseSizes(bad); err == nil {
			t.Errorf("ParseSizes(%q) accepted", bad)
		}
	}
}

// TestByteIdenticalAcrossWorkers is the core determinism guarantee: the
// same Spec renders byte-identical CSV and JSON at -parallel 1, 4, 16.
func TestByteIdenticalAcrossWorkers(t *testing.T) {
	specs := []Spec{
		lineSpec(),
		{Graph: "barbell", Sizes: []int{8, 10}, KMode: "n",
			Protocol: ProtocolTAGRR, Trials: 3, Seed: 7},
		{Graph: "complete", Sizes: []int{8}, Protocol: ProtocolUncoded,
			Model: core.Asynchronous, Trials: 4, Seed: 11},
	}
	for _, spec := range specs {
		var wantCSV, wantJSON string
		for _, workers := range []int{1, 4, 16} {
			s := spec
			rs, err := Runner{Parallel: workers}.Run(&s)
			if err != nil {
				t.Fatalf("%s parallel=%d: %v", spec.Graph, workers, err)
			}
			var csvB, jsonB strings.Builder
			if err := WriteCSV(&csvB, rs); err != nil {
				t.Fatal(err)
			}
			if err := WriteJSON(&jsonB, rs); err != nil {
				t.Fatal(err)
			}
			if wantCSV == "" {
				wantCSV, wantJSON = csvB.String(), jsonB.String()
				continue
			}
			if csvB.String() != wantCSV {
				t.Errorf("%s: CSV differs at parallel=%d:\ngot:\n%swant:\n%s",
					spec.Graph, workers, csvB.String(), wantCSV)
			}
			if jsonB.String() != wantJSON {
				t.Errorf("%s: JSON differs at parallel=%d", spec.Graph, workers)
			}
		}
	}
}

// TestExecuteMatchesRunners pins Execute as the single dispatch point:
// the convenience runners replay the same trajectories.
func TestExecuteMatchesRunners(t *testing.T) {
	g := graph.Barbell(10)
	spec := GossipSpec{Graph: g, K: 10}
	for seed := uint64(1); seed <= 3; seed++ {
		o, err := Execute(spec, ProtocolTAGRR, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := TAG(spec, TreeBRR, seed)
		if err != nil {
			t.Fatal(err)
		}
		if o.Result.Rounds != res.Rounds || o.TreeRounds != res.TreeRounds {
			t.Fatalf("seed %d: Execute %d/%d vs TAG %d/%d",
				seed, o.Result.Rounds, o.TreeRounds, res.Rounds, res.TreeRounds)
		}
		if o.TreeRounds < 0 || o.TreeDepth < 0 {
			t.Fatalf("seed %d: TAG outcome missing tree detail: %+v", seed, o)
		}
	}
	o, err := Execute(spec, ProtocolUniformAG, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.NodeDoneRounds) != g.N() || o.Traffic.Sent == 0 {
		t.Fatalf("AG outcome missing detail: %+v", o)
	}
}

// TestLeanSkipsNodeDetailOnly: Lean drops the O(n) per-node slice but
// changes nothing about the measured trajectory.
func TestLeanSkipsNodeDetailOnly(t *testing.T) {
	g := graph.Barbell(10)
	full, err := Execute(GossipSpec{Graph: g, K: 10}, ProtocolTAGRR, 7)
	if err != nil {
		t.Fatal(err)
	}
	lean, err := Execute(GossipSpec{Graph: g, K: 10, Lean: true}, ProtocolTAGRR, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(lean.NodeDoneRounds) != 0 {
		t.Fatalf("lean outcome kept node detail: %v", lean.NodeDoneRounds)
	}
	if len(full.NodeDoneRounds) == 0 {
		t.Fatal("full outcome missing node detail")
	}
	if lean.Result.Rounds != full.Result.Rounds || lean.Traffic != full.Traffic ||
		lean.TreeRounds != full.TreeRounds {
		t.Fatalf("lean changed measurements: %+v vs %+v", lean, full)
	}
}

func TestProtocolParseRoundTrip(t *testing.T) {
	for _, p := range []Protocol{ProtocolUniformAG, ProtocolTAGRR,
		ProtocolTAGUniform, ProtocolTAGIS, ProtocolUncoded} {
		got, err := ParseProtocol(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParseProtocol("bogus"); err == nil {
		t.Error("bogus protocol accepted")
	}
}

func TestParallelMapOrderAndErrors(t *testing.T) {
	got, err := ParallelMap(20, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
	_, err = ParallelMap(20, 8, func(i int) (int, error) {
		if i%7 == 3 {
			return 0, errFor(i)
		}
		return i, nil
	})
	if err == nil || err.Error() != errFor(3).Error() {
		t.Fatalf("want lowest-index error %v, got %v", errFor(3), err)
	}
}

func errFor(i int) error { return &indexErr{i} }

type indexErr struct{ i int }

func (e *indexErr) Error() string { return "fail at " + string(rune('0'+e.i)) }

// TestExecutePayloadMode covers the payload-carrying configuration: the
// trial must complete with real payloads end to end (the coded path,
// not rank-only), be deterministic for a fixed seed, leave the
// rank-only trajectory of the same seed untouched, and be rejected for
// protocols that only support rank-only runs.
func TestExecutePayloadMode(t *testing.T) {
	g := graph.Complete(12)
	base := GossipSpec{Graph: g, K: 6, Q: 2}

	rankOnly, err := Execute(base, ProtocolUniformAG, 42)
	if err != nil {
		t.Fatal(err)
	}

	withPay := base
	withPay.PayloadLen = 32
	if withPay.RLNCConfig().RankOnly {
		t.Fatal("payload spec must not be rank-only")
	}
	o1, err := Execute(withPay, ProtocolUniformAG, 42)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Execute(withPay, ProtocolUniformAG, 42)
	if err != nil {
		t.Fatal(err)
	}
	if o1.Result.Rounds != o2.Result.Rounds {
		t.Fatalf("payload mode not deterministic: %d vs %d rounds", o1.Result.Rounds, o2.Result.Rounds)
	}
	// Rank evolution ignores payload content, so the stopping time
	// matches the rank-only run of the same seed.
	if o1.Result.Rounds != rankOnly.Result.Rounds {
		t.Fatalf("payload run diverged from rank-only trajectory: %d vs %d rounds",
			o1.Result.Rounds, rankOnly.Result.Rounds)
	}

	if _, err := Execute(withPay, ProtocolTAGRR, 42); err == nil {
		t.Fatal("payload mode must be rejected for TAG")
	}
}
