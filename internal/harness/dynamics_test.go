package harness

import (
	"strings"
	"testing"

	"algossip/internal/graph"
)

func TestParseDynamics(t *testing.T) {
	good := []struct {
		in   string
		want string
	}{
		{"edge:rate=0.2", "edge:rate=0.2,period=1"},
		{"churn:rate=0.1,period=16", "churn:rate=0.1,period=16"},
		{"churn:rate=0.1", "churn:rate=0.1,period=16"},
		{"rewire:rate=0.3,period=32", "rewire:rate=0.3,period=32"},
		{"burst:rate=0.5,period=64,burst=8", "burst:rate=0.5,period=64,burst=8"},
		{"burst:rate=0.5", "burst:rate=0.5,period=64,burst=8"},
		{"grow:period=4", "grow:rate=0,period=4"},
		{"grow", "grow:rate=0,period=4"},
		{"static", "static"},
	}
	for _, tt := range good {
		d, err := ParseDynamics(tt.in)
		if err != nil {
			t.Errorf("ParseDynamics(%q): %v", tt.in, err)
			continue
		}
		if got := d.String(); got != tt.want {
			t.Errorf("ParseDynamics(%q).String() = %q, want %q", tt.in, got, tt.want)
		}
	}
	if d, err := ParseDynamics(""); err != nil || d != nil {
		t.Errorf("empty flag: d=%v err=%v, want nil/nil", d, err)
	}
	bad := []string{
		"bogus", "edge:rate=x", "edge:rate", "edge:speed=1", "edge:rate=1.5",
		"churn:period=0", "burst:rate=0.5,period=4,burst=9", "edge:rate=-0.1",
		// Options the kind ignores would silently skew the fingerprint.
		"edge:rate=0.2,period=5", "grow:rate=0.2", "churn:rate=0.1,burst=3",
	}
	for _, in := range bad {
		if _, err := ParseDynamics(in); err == nil {
			t.Errorf("ParseDynamics(%q) accepted", in)
		}
	}
	// A typo'd kind must name the kind, not complain about a period the
	// user never set.
	if _, err := ParseDynamics("churn2:rate=0.1"); err == nil ||
		!strings.Contains(err.Error(), "unknown dynamics kind") {
		t.Errorf("typo'd kind error = %v, want unknown-kind message", err)
	}
}

func TestDynamicsIsStatic(t *testing.T) {
	var nilDyn *Dynamics
	for _, d := range []*Dynamics{nilDyn, {}, {Kind: "static"}} {
		if !d.IsStatic() {
			t.Errorf("%+v not recognized as static", d)
		}
	}
	if (&Dynamics{Kind: "edge", Rate: 0.1}).IsStatic() {
		t.Error("edge dynamics claimed static")
	}
}

func TestDynamicsBuildKinds(t *testing.T) {
	g := graph.Ring(16)
	for _, d := range []*Dynamics{
		{Kind: "edge", Rate: 0.2},
		{Kind: "burst", Rate: 0.5},
		{Kind: "rewire", Rate: 0.3},
		{Kind: "churn", Rate: 0.1},
		{Kind: "grow"},
		{Kind: "static"},
	} {
		dyn, err := d.Build(g, 7)
		if err != nil {
			t.Fatalf("Build(%s): %v", d, err)
		}
		if dyn.N() != g.N() {
			t.Errorf("%s: schedule has %d nodes, want %d", d, dyn.N(), g.N())
		}
		if dyn.At(0) == nil {
			t.Errorf("%s: nil round-0 graph", d)
		}
	}
	if _, err := (&Dynamics{Kind: "grow"}).Build(graph.Line(3), 1); err == nil {
		t.Error("grow over 3 nodes accepted")
	}
}

// TestFingerprintDynamics: static dynamics leave the pre-dynamics
// fingerprint untouched (old checkpoints stay resumable), while real
// dynamics — and each distinct parameterization — change it.
func TestFingerprintDynamics(t *testing.T) {
	base := func() *Spec {
		return &Spec{Name: "fp", Graph: "ring", Sizes: []int{16}, Trials: 2, Seed: 3}
	}
	plain := base().Fingerprint()
	static := base()
	static.Dynamics = &Dynamics{Kind: "static"}
	if static.Fingerprint() != plain {
		t.Error("static dynamics changed the fingerprint")
	}
	edge := base()
	edge.Dynamics = &Dynamics{Kind: "edge", Rate: 0.2}
	if edge.Fingerprint() == plain {
		t.Error("edge dynamics did not change the fingerprint")
	}
	edge2 := base()
	edge2.Dynamics = &Dynamics{Kind: "edge", Rate: 0.3}
	if edge2.Fingerprint() == edge.Fingerprint() {
		t.Error("different rates share a fingerprint")
	}
}

// TestRunnerDynamicsDeterministic: a dynamic spec through the pool is
// byte-identical (same outcomes) for any worker count.
func TestRunnerDynamicsDeterministic(t *testing.T) {
	spec := func() *Spec {
		return &Spec{
			Name: "dyn", Graph: "torus", Sizes: []int{16}, KMode: "half",
			Dynamics: &Dynamics{Kind: "churn", Rate: 0.2, Period: 8},
			Trials:   6, Seed: 9, MaxRounds: 1 << 17,
		}
	}
	var want []int
	for _, workers := range []int{1, 4, 16} {
		rs, err := Runner{Parallel: workers}.Run(spec())
		if err != nil {
			t.Fatal(err)
		}
		got := make([]int, len(rs.Outcomes))
		for i, o := range rs.Outcomes {
			if !o.Result.Completed {
				t.Fatalf("trial %d incomplete", i)
			}
			got[i] = o.Result.Rounds
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("-parallel %d: trial %d gave %d rounds, want %d", workers, i, got[i], want[i])
			}
		}
	}
}
