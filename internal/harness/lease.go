package harness

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Lease is a batch of trial indices handed to one worker for a bounded
// time. Indices are ascending; after expiry requeues they need not be
// contiguous, so the explicit list (not a [start,end) range) is the
// wire-safe representation.
type Lease struct {
	ID      int64     `json:"id"`
	Worker  string    `json:"worker,omitempty"`
	Indices []int     `json:"indices"`
	Expires time.Time `json:"expires"`
}

// LeaseTable is the coordination substrate of a distributed run: it
// tracks which trials of an expanded work-list are done, which are out
// on a lease, and which are free, and it requeues the incomplete part of
// any lease that outlives its TTL — a killed worker's range simply goes
// back in the pool. All methods are safe for concurrent use.
//
// Completion is idempotent and lease-agnostic: a trial's outcome is a
// pure function of its seed, so a late report from an expired lease is
// accepted (and a duplicate from the re-leased worker ignored) without
// affecting the merged output.
type LeaseTable struct {
	mu     sync.Mutex
	total  int
	chunk  int
	ttl    time.Duration
	now    func() time.Time
	done   []bool
	nDone  int
	free   []int // ascending indices neither done nor leased
	leases map[int64]*Lease
	nextID int64
}

// NewLeaseTable builds a table over total trials, handing out at most
// chunk indices per lease, each expiring ttl after issue. now overrides
// the clock (tests); nil means time.Now.
func NewLeaseTable(total, chunk int, ttl time.Duration, now func() time.Time) (*LeaseTable, error) {
	if total < 0 {
		return nil, fmt.Errorf("harness: negative lease-table size %d", total)
	}
	if chunk < 1 {
		return nil, fmt.Errorf("harness: lease chunk must be positive, got %d", chunk)
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("harness: lease ttl must be positive, got %v", ttl)
	}
	if now == nil {
		now = time.Now
	}
	lt := &LeaseTable{
		total: total, chunk: chunk, ttl: ttl, now: now,
		done:   make([]bool, total),
		free:   make([]int, 0, total),
		leases: make(map[int64]*Lease),
	}
	for i := 0; i < total; i++ {
		lt.free = append(lt.free, i)
	}
	return lt, nil
}

// MarkDone records trials completed outside any lease (a resumed
// checkpoint's replayed outcomes). Out-of-range and repeated indices are
// ignored.
func (lt *LeaseTable) MarkDone(indices ...int) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	for _, i := range indices {
		lt.completeLocked(i)
	}
}

// Lease hands out up to chunk free trials to worker. The second return
// is false when nothing is free right now — either everything is done
// (check Done) or every remaining trial is out on a live lease and the
// worker should poll again.
func (lt *LeaseTable) Lease(worker string) (Lease, bool) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.expireLocked()
	if len(lt.free) == 0 {
		return Lease{}, false
	}
	n := lt.chunk
	if n > len(lt.free) {
		n = len(lt.free)
	}
	lt.nextID++
	l := &Lease{
		ID: lt.nextID, Worker: worker,
		Indices: append([]int(nil), lt.free[:n]...),
		Expires: lt.now().Add(lt.ttl),
	}
	lt.free = lt.free[n:]
	lt.leases[l.ID] = l
	// The caller's copy must not alias the internal index list, which
	// shrinks as completions land.
	out := *l
	out.Indices = append([]int(nil), l.Indices...)
	return out, true
}

// Renew extends a live lease's expiry (a worker streaming partial
// results proves liveness). Renewing an expired or unknown lease is a
// no-op returning false.
func (lt *LeaseTable) Renew(id int64) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.expireLocked()
	l, ok := lt.leases[id]
	if !ok {
		return false
	}
	l.Expires = lt.now().Add(lt.ttl)
	return true
}

// Complete marks one trial done, releasing it from whatever lease holds
// it. It returns false for out-of-range indices and true otherwise
// (idempotently for repeats).
func (lt *LeaseTable) Complete(i int) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.completeLocked(i)
}

func (lt *LeaseTable) completeLocked(i int) bool {
	if i < 0 || i >= lt.total {
		return false
	}
	if !lt.done[i] {
		lt.done[i] = true
		lt.nDone++
		// Drop it from the free pool if an expiry already requeued it.
		for fi, v := range lt.free {
			if v == i {
				lt.free = append(lt.free[:fi], lt.free[fi+1:]...)
				break
			}
		}
	}
	for id, l := range lt.leases {
		for li, v := range l.Indices {
			if v == i {
				l.Indices = append(l.Indices[:li], l.Indices[li+1:]...)
				break
			}
		}
		if len(l.Indices) == 0 {
			delete(lt.leases, id)
		}
	}
	return true
}

// expireLocked requeues the incomplete indices of every expired lease.
func (lt *LeaseTable) expireLocked() {
	now := lt.now()
	for id, l := range lt.leases {
		if now.Before(l.Expires) {
			continue
		}
		lt.free = append(lt.free, l.Indices...)
		delete(lt.leases, id)
	}
	sort.Ints(lt.free)
}

// Done reports whether every trial has completed.
func (lt *LeaseTable) Done() bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.nDone == lt.total
}

// Counts returns (done, live-leased, free) trial counts, expiring stale
// leases first — the coordinator's /status observables.
func (lt *LeaseTable) Counts() (done, leased, free int) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.expireLocked()
	for _, l := range lt.leases {
		leased += len(l.Indices)
	}
	return lt.nDone, leased, len(lt.free)
}
