// Package harness is the unified experiment engine shared by every
// binary and by the internal/experiments registry: a declarative Spec
// (protocol, graph family, sizes, k-mode, field, trials, seed) expands
// into a deterministic work-list of Trials, and a worker pool runs the
// trials across cores with byte-identical output for any -parallel
// value.
//
// Determinism contract: every Trial carries a seed derived only from the
// Spec's root seed and the trial's (size, index) coordinates, never from
// scheduling order. Results are collected into the expanded work-list
// order before anything is rendered, so CSV/JSON output is a pure
// function of (Spec, seed) — the worker count, per-trial timing, and
// checkpoint/resume history are all invisible in the output bytes.
//
// The package sits below internal/experiments (which re-exports the
// single-trial runners and layers the paper's table renderers on top)
// and below the root algossip package (whose Run/RunDetailed delegate to
// Execute), so all entry points replay the exact same fixed-seed
// trajectories.
package harness
