package harness

import (
	"strings"
	"testing"

	"algossip/internal/core"
	"algossip/internal/gossip/algebraic"
	"algossip/internal/graph"
)

// TestParseAdversary: the flag grammar round-trips through the canonical
// String form, and every malformed input is rejected at parse time.
func TestParseAdversary(t *testing.T) {
	good := map[string]string{
		"byzantine:frac=0.1,mode=pollute":    "byzantine:frac=0.1,mode=pollute",
		"byzantine:frac=0.2":                 "byzantine:frac=0.2,mode=pollute",
		"byzantine:frac=0.25,mode=mix":       "byzantine:frac=0.25,mode=mix",
		"byzantine:frac=0.5,mode=replay":     "byzantine:frac=0.5,mode=replay",
		" byzantine:frac=0.1,mode=freeride ": "byzantine:frac=0.1,mode=freeride",
	}
	for in, want := range good {
		a, err := ParseAdversary(in)
		if err != nil {
			t.Errorf("ParseAdversary(%q): %v", in, err)
			continue
		}
		if got := a.String(); got != want {
			t.Errorf("ParseAdversary(%q).String() = %q, want %q", in, got, want)
		}
	}
	if a, err := ParseAdversary(""); a != nil || err != nil {
		t.Errorf("empty adversary: got (%v, %v), want (nil, nil)", a, err)
	}
	bad := []string{
		"byzantine",                    // frac=0: omit the flag instead
		"byzantine:frac=0",             // same
		"byzantine:frac=1",             // nobody honest
		"byzantine:frac=-0.1",          // negative
		"byzantine:frac=0.1,mode=evil", // unknown mode
		"martian:frac=0.1",             // unknown kind
		"byzantine:frac",               // not key=value
		"byzantine:frac=x",             // bad float
		"byzantine:period=3",           // unknown key
	}
	for _, in := range bad {
		if _, err := ParseAdversary(in); err == nil {
			t.Errorf("ParseAdversary(%q) accepted", in)
		}
	}
}

// TestParseClasses: same grammar contract for the heterogeneity flag.
func TestParseClasses(t *testing.T) {
	good := map[string]string{
		"straggler:frac=0.2,slow=4":  "straggler:frac=0.2,slow=4",
		"straggler:frac=0.5":         "straggler:frac=0.5,slow=4",
		"tiered:frac=0.25,boost=3":   "tiered:frac=0.25,boost=3",
		"tiered:frac=1":              "tiered:frac=1,boost=2",
		"straggler:frac=0.1,slow=16": "straggler:frac=0.1,slow=16",
	}
	for in, want := range good {
		c, err := ParseClasses(in)
		if err != nil {
			t.Errorf("ParseClasses(%q): %v", in, err)
			continue
		}
		if got := c.String(); got != want {
			t.Errorf("ParseClasses(%q).String() = %q, want %q", in, got, want)
		}
	}
	if c, err := ParseClasses(""); c != nil || err != nil {
		t.Errorf("empty classes: got (%v, %v), want (nil, nil)", c, err)
	}
	bad := []string{
		"straggler:frac=0",           // omit the flag instead
		"straggler:frac=1.5",         // > 1
		"straggler:frac=0.2,slow=1",  // slow < 2
		"straggler:frac=0.2,boost=2", // boost on straggler
		"tiered:frac=0.2,slow=4",     // slow on tiered
		"tiered:frac=0.2,boost=1",    // boost < 2
		"vip:frac=0.2",               // unknown kind
		"straggler:slow",             // not key=value
		"straggler:frac=0.1,rate=2",  // unknown key
	}
	for _, in := range bad {
		if _, err := ParseClasses(in); err == nil {
			t.Errorf("ParseClasses(%q) accepted", in)
		}
	}
}

// TestBuildTraits: the drawn population sizes are exact (floor(frac·n)),
// at least one node stays honest for any frac < 1, the draw is a pure
// function of the seeds, and mix cycles all three behaviors.
func TestBuildTraits(t *testing.T) {
	const n = 40
	adv := &Adversary{Kind: "byzantine", Frac: 0.2, Mode: "mix"}
	cls := &Classes{Kind: "straggler", Frac: 0.25, Slow: 6}
	tr := buildTraits(n, adv, cls, 7, 8)
	var byz, slow int
	seen := map[algebraic.Behavior]int{}
	for _, x := range tr {
		if x.Behavior != algebraic.Honest {
			byz++
			seen[x.Behavior]++
		}
		if x.Slow == 6 {
			slow++
		}
	}
	if byz != 8 {
		t.Errorf("byzantine count = %d, want floor(0.2*40) = 8", byz)
	}
	if slow != 10 {
		t.Errorf("straggler count = %d, want floor(0.25*40) = 10", slow)
	}
	for _, b := range []algebraic.Behavior{algebraic.Pollute, algebraic.Replay, algebraic.FreeRide} {
		if seen[b] == 0 {
			t.Errorf("mix mode assigned no %v nodes", b)
		}
	}
	tr2 := buildTraits(n, adv, cls, 7, 8)
	for i := range tr {
		if tr[i] != tr2[i] {
			t.Fatalf("trait draw is not a pure function of the seeds (node %d)", i)
		}
	}
	if buildTraits(n, nil, nil, 1, 2) != nil {
		t.Error("trivial declarations built a trait table")
	}
}

// TestExecuteAdversarialConverges: end-to-end through Execute — honest
// seeding, trait draw, verification accounting — for every mode and for
// classes, including combined regimes.
func TestExecuteAdversarialConverges(t *testing.T) {
	g := graph.Complete(20)
	base := GossipSpec{Graph: g, K: 10}
	for _, tc := range []struct {
		name string
		adv  string
		cls  string
	}{
		{"pollute", "byzantine:frac=0.2,mode=pollute", ""},
		{"replay", "byzantine:frac=0.2,mode=replay", ""},
		{"freeride", "byzantine:frac=0.2,mode=freeride", ""},
		{"mix", "byzantine:frac=0.3,mode=mix", ""},
		{"straggler", "", "straggler:frac=0.3,slow=4"},
		{"tiered", "", "tiered:frac=0.25,boost=3"},
		{"combined", "byzantine:frac=0.15,mode=mix", "straggler:frac=0.2,slow=4"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := base
			var err error
			if spec.Adversary, err = ParseAdversary(tc.adv); err != nil {
				t.Fatal(err)
			}
			if spec.Classes, err = ParseClasses(tc.cls); err != nil {
				t.Fatal(err)
			}
			out, err := Execute(spec, ProtocolUniformAG, 42)
			if err != nil {
				t.Fatal(err)
			}
			if !out.Result.Completed {
				t.Fatalf("did not converge: %+v", out.Result)
			}
			if tc.adv != "" && out.Traffic.Verified == 0 {
				t.Error("adversarial run recorded no verification")
			}
			if tc.adv == "" && out.Traffic.Verified != 0 {
				t.Error("honest heterogeneous run paid verification")
			}
			if strings.Contains(tc.adv, "pollute") || strings.Contains(tc.adv, "mix") {
				if out.Traffic.Polluted == 0 {
					t.Error("pollution ran undetected")
				}
			}
		})
	}
}

// TestExecuteAdversarialValidation: unsupported mode combinations are
// typed errors, not silent misbehavior.
func TestExecuteAdversarialValidation(t *testing.T) {
	g := graph.Complete(16)
	adv, err := ParseAdversary("byzantine:frac=0.1")
	if err != nil {
		t.Fatal(err)
	}
	bad := []GossipSpec{
		{Graph: g, K: 8, Adversary: adv, GenSize: 4},
		{Graph: g, K: 8, Adversary: adv, Shards: 2},
		{Graph: g, K: 8, Adversary: adv, Dynamics: &Dynamics{Kind: "edge", Rate: 0.1}},
		{Graph: g, K: 8, Adversary: &Adversary{Kind: "romulan", Frac: 0.1}},
		{Graph: g, K: 8, Classes: &Classes{Kind: "straggler", Frac: 2}},
	}
	for i, spec := range bad {
		if _, err := Execute(spec, ProtocolUniformAG, 1); err == nil {
			t.Errorf("case %d: invalid adversarial spec accepted", i)
		}
	}
	for _, proto := range []Protocol{ProtocolTAGRR, ProtocolUncoded} {
		if _, err := Execute(GossipSpec{Graph: g, K: 8, Adversary: adv}, proto, 1); err == nil {
			t.Errorf("protocol %v accepted an adversary", proto)
		}
	}
}

// TestAdversarialParallelIdentity is the acceptance gate for scheduler
// independence: an adversarial+heterogeneous sweep produces byte-identical
// CSV for -parallel 1, 4 and 16, because all adversarial randomness
// derives from the per-trial seed, never from execution order.
func TestAdversarialParallelIdentity(t *testing.T) {
	spec := func() Spec {
		adv, err := ParseAdversary("byzantine:frac=0.2,mode=mix")
		if err != nil {
			t.Fatal(err)
		}
		cls, err := ParseClasses("straggler:frac=0.2,slow=4")
		if err != nil {
			t.Fatal(err)
		}
		return Spec{
			Name: "adv-identity", Graph: "complete", Sizes: []int{16, 24},
			Trials: 4, Seed: 5, Adversary: adv, Classes: cls,
		}
	}
	want := runToCSV(t, Runner{Parallel: 1}, spec())
	for _, par := range []int{4, 16} {
		if got := runToCSV(t, Runner{Parallel: par}, spec()); got != want {
			t.Fatalf("-parallel %d diverged from -parallel 1:\n%s\nvs\n%s", par, got, want)
		}
	}
}

// TestAdversarySeedStreams pins the dedicated seed-stream layout (13
// adversary set, 14 class membership): the drawn populations must match
// an independent draw from those streams exactly, so the layout can never
// silently renumber.
func TestAdversarySeedStreams(t *testing.T) {
	const n, seed = 30, 77
	adv := &Adversary{Kind: "byzantine", Frac: 0.2, Mode: "freeride"}
	cls := &Classes{Kind: "tiered", Frac: 0.3, Boost: 2}
	got := buildTraits(n, adv, cls, core.SplitSeed(seed, 13), core.SplitSeed(seed, 14))

	advPerm := core.NewRand(core.SplitSeed(seed, 13)).Perm(n)
	clsPerm := core.NewRand(core.SplitSeed(seed, 14)).Perm(n)
	want := make([]algebraic.NodeTraits, n)
	for i := 0; i < 6; i++ { // floor(0.2*30)
		want[advPerm[i]].Behavior = algebraic.FreeRide
	}
	for i := 0; i < 9; i++ { // floor(0.3*30)
		want[clsPerm[i]].Boost = 2
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("node %d: traits %+v, want %+v (seed-stream layout changed?)", i, got[i], want[i])
		}
	}
}
