package harness

import (
	"fmt"
	"strconv"
	"strings"

	"algossip/internal/core"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
)

// Spec declares a full experiment grid: one protocol over one topology
// family across sizes, with a fixed number of trials per cell. It is the
// declarative unit all three binaries and the experiment runners share —
// a new scenario is a struct literal, not a new main().
type Spec struct {
	// Name labels the spec (used in progress output and checkpoints).
	Name string

	// Graph is the topology family name (see graph.FromName); one graph
	// is built per entry of Sizes. Ignored when Graphs is set.
	Graph string
	// Sizes are the requested node counts, one grid cell per entry.
	Sizes []int
	// Graphs supplies pre-built topologies instead of (Graph, Sizes) —
	// the escape hatch for runners that construct exotic graphs.
	Graphs []*graph.Graph

	// KMode picks k per cell from the actual node count: "half" (default),
	// "n", "sqrt", or "const:<v>". Ignored when Ks is set.
	KMode string
	// Ks supplies one explicit k per cell (must match the cell count).
	Ks []int

	// Protocol picks the dissemination protocol (default uniform AG).
	Protocol Protocol
	// Model is the time model (default Synchronous).
	Model core.TimeModel
	// Q is the field order (default 2).
	Q int
	// Action is the contact direction (default Exchange).
	Action core.Action
	// Selector is the communication model (default uniform).
	Selector SelectorKind
	// SingleSource seeds all messages at node 0 instead of round-robin.
	SingleSource bool
	// LossRate drops each packet with this probability (uniform AG only).
	LossRate float64
	// Dynamics applies a time-varying topology schedule over each cell's
	// graph (nil = static). Only uniform AG and the uncoded baseline
	// support dynamic topologies; the schedule randomness derives from
	// the per-trial seed, so the work-list stays deterministic.
	Dynamics *Dynamics
	// GenSize, when positive, runs uniform AG with generation-based
	// coding: ⌈k/GenSize⌉ independently coded generations per cell. The
	// size is validated against every cell's k at Expand time (typed
	// error rlnc.GenSizeError when it exceeds k).
	GenSize int
	// Shards, when positive, runs every trial through the sharded
	// round-parallel engine. Any positive count yields the same
	// trajectory (the fingerprint records only that sharded semantics
	// are in force, not the count), so this is an execution knob like
	// Runner.Parallel — raise it to spend cores inside one large-n trial
	// instead of across trials.
	Shards int
	// Adversary declares a Byzantine node population (nil = all honest).
	// Uniform AG only; the Byzantine set is drawn per trial from seed
	// stream 13, and initial messages are seeded at honest nodes only.
	Adversary *Adversary
	// Classes declares heterogeneous node capabilities — stragglers or
	// boosted bandwidth tiers (nil = uniform). Uniform AG only; class
	// membership draws from seed stream 14 and straggler service times
	// from stream 15 of the trial seed.
	Classes *Classes
	// MaxRounds caps each simulation (default generous).
	MaxRounds int
	// Lean skips the O(n) per-node completion detail in every Outcome —
	// the right setting for big sweeps that only read Rounds, since it
	// keeps ResultSets and checkpoint lines a few dozen bytes per trial.
	// Presentation-only: trajectories, rounds, and the work-list (and
	// therefore the checkpoint fingerprint) are unaffected.
	Lean bool

	// Fabric optionally names the distributed-fabric session this spec is
	// coordinated under (internal/fabric). It never influences the
	// work-list or any trajectory — merged fabric output is byte-identical
	// to a single-process run of the same spec — but it is recorded in the
	// fingerprint (appended as |fabric=<name> only when set, so every
	// pre-fabric checkpoint still resumes), which pins a coordinator's
	// checkpoint and its workers' result streams to one named session.
	Fabric string

	// Trials is the number of trials per cell (required, >= 1).
	Trials int
	// Seed roots all derived randomness. Identical (Spec, Seed) pairs
	// expand to identical work-lists with identical per-trial seeds.
	Seed uint64
	// TrialSeed overrides the per-trial seed derivation. The default,
	// SplitSeed(Seed, size*1000+trial), is the historical cmd/sweep
	// layout; runners that predate the harness pass their own layout to
	// keep fixed-seed outputs stable. The function must depend only on
	// its arguments, never on execution order.
	TrialSeed func(size, trial int) uint64 `json:"-"`
}

// Cell is one (graph, k) point of the expanded grid.
type Cell struct {
	// Graph is the built topology.
	Graph *graph.Graph
	// Size is the requested node count (may differ from Graph.N() for
	// families like grid that round to a feasible shape).
	Size int
	// K is the message count for this cell.
	K int
}

// Trial is one unit of work: a single simulation with a derived seed.
type Trial struct {
	// Index is the position in the deterministic work-list.
	Index int
	// Cell indexes the (graph, k) grid cell the trial belongs to.
	Cell int
	// Num is the trial number within its cell, 0..Trials-1.
	Num int
	// Seed is the fully derived per-trial seed.
	Seed uint64

	// Graph, Size and K denormalize the cell for convenience.
	Graph *graph.Graph
	Size  int
	K     int
}

// normalize fills the Spec's zero fields in place.
func (s *Spec) normalize() {
	if s.Protocol == 0 {
		s.Protocol = ProtocolUniformAG
	}
	if s.Model == 0 {
		s.Model = core.Synchronous
	}
	if s.KMode == "" {
		s.KMode = "half"
	}
	if s.TrialSeed == nil {
		seed := s.Seed
		s.TrialSeed = func(size, trial int) uint64 {
			return core.SplitSeed(seed, uint64(size*1000+trial))
		}
	}
}

// Cells builds the (graph, k) grid. Graph construction draws from its own
// seed stream (999, the historical sweep layout), so trial workers stay
// pure.
func (s *Spec) cells() ([]Cell, error) {
	var cells []Cell
	switch {
	case len(s.Graphs) > 0:
		for _, g := range s.Graphs {
			cells = append(cells, Cell{Graph: g, Size: g.N()})
		}
	case len(s.Sizes) > 0:
		for _, n := range s.Sizes {
			g, err := graph.FromName(s.Graph, n, core.NewRand(core.SplitSeed(s.Seed, 999)))
			if err != nil {
				return nil, err
			}
			cells = append(cells, Cell{Graph: g, Size: n})
		}
	default:
		return nil, fmt.Errorf("harness: spec has neither Graphs nor Sizes")
	}
	if len(s.Ks) > 0 {
		if len(s.Ks) != len(cells) {
			return nil, fmt.Errorf("harness: %d Ks for %d cells", len(s.Ks), len(cells))
		}
		for i := range cells {
			cells[i].K = s.Ks[i]
		}
		return cells, nil
	}
	for i := range cells {
		k, err := PickK(s.KMode, cells[i].Graph.N())
		if err != nil {
			return nil, err
		}
		cells[i].K = k
	}
	return cells, nil
}

// Expand turns the Spec into its deterministic work-list: the (graph, k)
// cells in declaration order, each repeated Trials times with per-trial
// derived seeds.
func (s *Spec) Expand() ([]Cell, []Trial, error) {
	s.normalize()
	if s.Trials < 1 {
		return nil, nil, fmt.Errorf("harness: trials must be positive, got %d", s.Trials)
	}
	cells, err := s.cells()
	if err != nil {
		return nil, nil, err
	}
	if s.GenSize < 0 {
		return nil, nil, fmt.Errorf("harness: %w", &rlnc.GenSizeError{GenSize: s.GenSize, K: 0})
	}
	if s.GenSize > 0 {
		// Validate against every cell's k up front: a generation larger
		// than a cell's message count would otherwise surface only when
		// that cell's first trial runs, possibly hours into a sweep.
		for _, c := range cells {
			if s.GenSize > c.K {
				return nil, nil, fmt.Errorf("harness: cell n=%d: %w", c.Size,
					&rlnc.GenSizeError{GenSize: s.GenSize, K: c.K})
			}
		}
	}
	trials := make([]Trial, 0, len(cells)*s.Trials)
	for ci, c := range cells {
		for t := 0; t < s.Trials; t++ {
			trials = append(trials, Trial{
				Index: len(trials), Cell: ci, Num: t,
				Seed:  s.TrialSeed(c.Size, t),
				Graph: c.Graph, Size: c.Size, K: c.K,
			})
		}
	}
	return cells, trials, nil
}

// ExecuteTrial runs one expanded trial of the spec through Execute — the
// single entry point remote fabric workers share with the local pool, so
// a trial's outcome is identical no matter which process runs it.
func (s *Spec) ExecuteTrial(t Trial) (Outcome, error) {
	return Execute(s.gossipSpec(t), s.Protocol, t.Seed)
}

// gossipSpec binds a trial to its per-simulation protocol configuration.
func (s *Spec) gossipSpec(t Trial) GossipSpec {
	return GossipSpec{
		Graph: t.Graph, Model: s.Model, K: t.K, Q: s.Q,
		Action: s.Action, Selector: s.Selector,
		SingleSource: s.SingleSource, LossRate: s.LossRate,
		Dynamics: s.Dynamics, GenSize: s.GenSize, Shards: s.Shards,
		Adversary: s.Adversary, Classes: s.Classes,
		MaxRounds: s.MaxRounds, Lean: s.Lean,
	}
}

// ParseSizes parses a comma-separated node-count list such as "16,32,64".
func ParseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad size %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// PickK resolves a k-mode ("half", "n", "sqrt", "const:<v>") against a
// node count.
func PickK(mode string, n int) (int, error) {
	switch {
	case mode == "half":
		return n / 2, nil
	case mode == "n":
		return n, nil
	case mode == "sqrt":
		k := 1
		for k*k < n {
			k++
		}
		return k, nil
	case strings.HasPrefix(mode, "const:"):
		v, err := strconv.Atoi(strings.TrimPrefix(mode, "const:"))
		if err != nil || v < 1 {
			return 0, fmt.Errorf("bad kmode %q", mode)
		}
		return v, nil
	default:
		return 0, fmt.Errorf("unknown kmode %q", mode)
	}
}
