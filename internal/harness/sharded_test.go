package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"algossip/internal/core"
	"algossip/internal/graph"
)

// TestShardedSerialIdentity pins the sharded determinism contract: for a
// fixed (GossipSpec, seed), the full Outcome — stopping time, per-node
// completion rounds, and traffic counters — is byte-identical for every
// positive shard count. The shard count partitions the wake phase across
// goroutines, but per-node RNG streams, fixed staging slots, and the
// ordered commit make the partitioning unobservable. The grid covers the
// dense/sparse/expander topologies, both matrix backends (GF(2) bitset,
// GF(256) bit-sliced), a dynamic-topology schedule, and generation mode.
func TestShardedSerialIdentity(t *testing.T) {
	mk := func(gname string, n, k, q int) GossipSpec {
		g, err := graph.FromName(gname, n, core.NewRand(core.SplitSeed(7, 999)))
		if err != nil {
			t.Fatal(err)
		}
		return GossipSpec{Graph: g, K: k, Q: q}
	}
	dyn, err := ParseDynamics("edge:rate=0.2")
	if err != nil {
		t.Fatal(err)
	}
	dynSpec := mk("ring", 32, 8, 2)
	dynSpec.Dynamics = dyn
	genSpec := mk("randreg", 32, 12, 256)
	genSpec.GenSize = 4

	rows := []struct {
		name string
		spec GossipSpec
	}{
		{"complete/q2", mk("complete", 24, 12, 2)},
		{"complete/q256", mk("complete", 24, 12, 256)},
		{"ring/q2", mk("ring", 32, 8, 2)},
		{"ring/q256", mk("ring", 32, 8, 256)},
		{"randreg/q2", mk("randreg", 32, 10, 2)},
		{"randreg/q256", mk("randreg", 32, 10, 256)},
		{"ring/q2/dynamic", dynSpec},
		{"randreg/q256/generations", genSpec},
	}
	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			var want []byte
			for _, shards := range []int{1, 2, 8} {
				spec := row.spec
				spec.Shards = shards
				o, err := Execute(spec, ProtocolUniformAG, 42)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if !o.Result.Completed {
					t.Fatalf("shards=%d: run did not complete (%d rounds)", shards, o.Result.Rounds)
				}
				got, err := json.Marshal(o)
				if err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want = got
					continue
				}
				if !bytes.Equal(got, want) {
					t.Errorf("shards=%d outcome diverged from shards=1:\n got %s\nwant %s", shards, got, want)
				}
			}
		})
	}
}

// TestShardedValidation pins the rejection paths: sharded execution is
// uniform-AG + synchronous only.
func TestShardedValidation(t *testing.T) {
	g := graph.Complete(12)
	async := GossipSpec{Graph: g, K: 4, Shards: 2, Model: core.Asynchronous}
	if _, err := Execute(async, ProtocolUniformAG, 1); err == nil {
		t.Error("asynchronous sharded run accepted")
	}
	tagSpec := GossipSpec{Graph: g, K: 4, Shards: 2}
	if _, err := Execute(tagSpec, ProtocolTAGRR, 1); err == nil {
		t.Error("sharded TAG run accepted")
	}
}
