package harness

import (
	"testing"
	"time"
)

// fakeClock is an injectable lease-table clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }

// leaseSet returns a lease's indices as a membership set.
func leaseSet(l Lease) map[int]bool {
	got := make(map[int]bool, len(l.Indices))
	for _, i := range l.Indices {
		got[i] = true
	}
	return got
}

func TestLeaseTableHandsOutDisjointChunks(t *testing.T) {
	clock := newFakeClock()
	lt, err := NewLeaseTable(10, 4, time.Minute, clock.now)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	sizes := []int{4, 4, 2}
	for _, want := range sizes {
		l, ok := lt.Lease("w")
		if !ok || len(l.Indices) != want {
			t.Fatalf("lease: ok=%v indices=%v, want %d", ok, l.Indices, want)
		}
		for _, i := range l.Indices {
			if seen[i] {
				t.Fatalf("index %d leased twice", i)
			}
			seen[i] = true
		}
	}
	if _, ok := lt.Lease("w"); ok {
		t.Fatal("lease granted with nothing free")
	}
	if lt.Done() {
		t.Fatal("Done with zero completions")
	}
}

func TestLeaseTableExpiryRequeuesIncomplete(t *testing.T) {
	clock := newFakeClock()
	lt, err := NewLeaseTable(4, 4, time.Minute, clock.now)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := lt.Lease("doomed")
	// The doomed worker reports one trial, then dies mid-range.
	lt.Complete(l.Indices[0])
	if _, ok := lt.Lease("other"); ok {
		t.Fatal("remaining trials leased out while the first lease is live")
	}
	clock.advance(2 * time.Minute)
	l2, ok := lt.Lease("other")
	if !ok || len(l2.Indices) != 3 {
		t.Fatalf("expiry did not requeue the incomplete range: ok=%v indices=%v", ok, l2.Indices)
	}
	got := leaseSet(l2)
	if got[l.Indices[0]] {
		t.Fatal("completed trial requeued by expiry")
	}
	for _, i := range l2.Indices {
		lt.Complete(i)
	}
	if !lt.Done() {
		t.Fatal("not done after all trials completed")
	}
}

func TestLeaseTableRenewAndLateCompletion(t *testing.T) {
	clock := newFakeClock()
	lt, err := NewLeaseTable(2, 1, time.Minute, clock.now)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := lt.Lease("slow")
	clock.advance(45 * time.Second)
	if !lt.Renew(l.ID) {
		t.Fatal("renew of a live lease failed")
	}
	clock.advance(45 * time.Second)
	// Renewed: still live, so its trial must not be re-leased.
	l2, ok := lt.Lease("other")
	if !ok || l2.Indices[0] == l.Indices[0] {
		t.Fatalf("renewed lease's trial handed out again: %v", l2.Indices)
	}
	clock.advance(2 * time.Minute)
	if lt.Renew(l.ID) {
		t.Fatal("renew of an expired lease succeeded")
	}
	// Late completion from the expired lease still counts, and the
	// duplicate from the re-leased worker is idempotent.
	l3, ok := lt.Lease("retry")
	if !ok {
		t.Fatal("expired trial not re-leased")
	}
	lt.Complete(l.Indices[0])
	lt.Complete(l3.Indices[0])
	lt.Complete(l2.Indices[0])
	if !lt.Done() {
		t.Fatal("not done after late + duplicate completions")
	}
	if !lt.Complete(0) {
		t.Fatal("idempotent completion returned false")
	}
	if lt.Complete(99) {
		t.Fatal("out-of-range completion accepted")
	}
}

func TestLeaseTableMarkDoneFromCheckpoint(t *testing.T) {
	lt, err := NewLeaseTable(5, 10, time.Minute, nil)
	if err != nil {
		t.Fatal(err)
	}
	lt.MarkDone(0, 2, 4, 4, -1, 99)
	done, leased, free := lt.Counts()
	if done != 3 || leased != 0 || free != 2 {
		t.Fatalf("counts after MarkDone = (%d, %d, %d), want (3, 0, 2)", done, leased, free)
	}
	l, ok := lt.Lease("w")
	if !ok {
		t.Fatal("no lease for the remaining trials")
	}
	got := leaseSet(l)
	if len(l.Indices) != 2 || !got[1] || !got[3] {
		t.Fatalf("lease after MarkDone = %v, want [1 3]", l.Indices)
	}
}
