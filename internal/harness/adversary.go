package harness

import (
	"fmt"
	"strconv"
	"strings"

	"algossip/internal/core"
	"algossip/internal/gossip/algebraic"
)

// Adversary declares a Byzantine node population for uniform algebraic
// gossip — the flag-parseable, fingerprintable face of
// algebraic.NodeTraits behaviors. The Spec carries the parameters; per
// trial, Execute draws the Byzantine node set from a dedicated seed
// stream (13) of the trial seed, so identical (Spec, Seed) pairs place
// the same adversaries on any worker count.
type Adversary struct {
	// Kind selects the adversary family; "byzantine" is the only kind.
	Kind string `json:"kind"`
	// Frac is the fraction of nodes that are Byzantine, in [0, 1). The
	// drawn count is floor(Frac·n), so at least one node stays honest.
	Frac float64 `json:"frac"`
	// Mode is the behavior of every Byzantine node: "pollute" (default),
	// "replay", "freeride", or "mix" (the three behaviors round-robin
	// across the drawn set).
	Mode string `json:"mode,omitempty"`
}

// withDefaults fills the zero mode with the default behavior.
func (a Adversary) withDefaults() Adversary {
	if a.Mode == "" {
		a.Mode = "pollute"
	}
	return a
}

// IsNone reports whether the declaration is trivial (including a nil
// receiver): no adversary, classic protocol.
func (a *Adversary) IsNone() bool {
	return a == nil || a.Kind == "" || a.Frac == 0
}

// String renders the canonical normalized form, e.g.
// "byzantine:frac=0.1,mode=pollute" — stable input for fingerprints.
func (a *Adversary) String() string {
	if a.IsNone() {
		return "none"
	}
	n := a.withDefaults()
	return fmt.Sprintf("%s:frac=%g,mode=%s", n.Kind, n.Frac, n.Mode)
}

// validate rejects malformed declarations eagerly, at flag-parse time.
func (a *Adversary) validate() error {
	if a.IsNone() {
		return nil
	}
	if a.Kind != "byzantine" {
		return fmt.Errorf("harness: unknown adversary kind %q (known: byzantine)", a.Kind)
	}
	if a.Frac < 0 || a.Frac >= 1 {
		return fmt.Errorf("harness: adversary frac %v outside [0, 1)", a.Frac)
	}
	switch a.withDefaults().Mode {
	case "pollute", "replay", "freeride", "mix":
		return nil
	default:
		return fmt.Errorf("harness: unknown adversary mode %q (known: pollute, replay, freeride, mix)", a.Mode)
	}
}

// behaviors returns the behavior cycle assigned across the drawn
// Byzantine set.
func (a Adversary) behaviors() []algebraic.Behavior {
	switch a.withDefaults().Mode {
	case "replay":
		return []algebraic.Behavior{algebraic.Replay}
	case "freeride":
		return []algebraic.Behavior{algebraic.FreeRide}
	case "mix":
		return []algebraic.Behavior{algebraic.Pollute, algebraic.Replay, algebraic.FreeRide}
	default:
		return []algebraic.Behavior{algebraic.Pollute}
	}
}

// ParseAdversary parses the -adversary flag syntax "kind:key=value,..."
// with keys frac and mode, e.g. "byzantine:frac=0.1,mode=pollute". An
// empty string means no adversary.
func ParseAdversary(s string) (*Adversary, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	kind, rest, _ := strings.Cut(s, ":")
	a := &Adversary{Kind: kind}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("harness: adversary option %q is not key=value", kv)
			}
			switch key {
			case "frac":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("harness: bad adversary frac %q", val)
				}
				a.Frac = f
			case "mode":
				a.Mode = val
			default:
				return nil, fmt.Errorf("harness: unknown adversary option %q (known: frac, mode)", key)
			}
		}
	}
	if err := a.validate(); err != nil {
		return nil, err
	}
	if a.Kind == "byzantine" && a.Frac == 0 {
		return nil, fmt.Errorf("harness: adversary %q declares no nodes (frac=0); omit the flag instead", s)
	}
	return a, nil
}

// Classes declares heterogeneous node capabilities — stragglers whose
// transmissions are throttled through internal/queueing's Geometric
// service model, and boosted bandwidth tiers. Per trial, Execute draws
// class membership from seed stream 14 and straggler service times from
// stream 15, keeping adversarial trials deterministic for any
// parallelism.
type Classes struct {
	// Kind selects the class family: "straggler" or "tiered".
	Kind string `json:"kind"`
	// Frac is the fraction of nodes in the class, in (0, 1].
	Frac float64 `json:"frac"`
	// Slow is the straggler service factor (kind "straggler"): each
	// transmission is followed by a Geometric(1/Slow) service time with
	// mean Slow rounds. 0 selects the default 4.
	Slow int `json:"slow,omitempty"`
	// Boost is the per-contact packet multiplier (kind "tiered").
	// 0 selects the default 2.
	Boost int `json:"boost,omitempty"`
}

// withDefaults fills zero per-kind parameters.
func (c Classes) withDefaults() Classes {
	if c.Kind == "straggler" && c.Slow == 0 {
		c.Slow = 4
	}
	if c.Kind == "tiered" && c.Boost == 0 {
		c.Boost = 2
	}
	return c
}

// IsNone reports whether the declaration is trivial (including nil):
// uniform capabilities.
func (c *Classes) IsNone() bool {
	return c == nil || c.Kind == "" || c.Frac == 0
}

// String renders the canonical normalized form, e.g.
// "straggler:frac=0.2,slow=4" — stable input for fingerprints.
func (c *Classes) String() string {
	if c.IsNone() {
		return "uniform"
	}
	n := c.withDefaults()
	switch n.Kind {
	case "tiered":
		return fmt.Sprintf("%s:frac=%g,boost=%d", n.Kind, n.Frac, n.Boost)
	default:
		return fmt.Sprintf("%s:frac=%g,slow=%d", n.Kind, n.Frac, n.Slow)
	}
}

// validate rejects malformed declarations eagerly.
func (c *Classes) validate() error {
	if c.IsNone() {
		return nil
	}
	n := c.withDefaults()
	switch n.Kind {
	case "straggler":
		if n.Boost != 0 {
			return fmt.Errorf("harness: boost only applies to kind \"tiered\"")
		}
		if n.Slow < 2 {
			return fmt.Errorf("harness: straggler slow factor %d must be >= 2", n.Slow)
		}
	case "tiered":
		if n.Slow != 0 {
			return fmt.Errorf("harness: slow only applies to kind \"straggler\"")
		}
		if n.Boost < 2 {
			return fmt.Errorf("harness: tier boost %d must be >= 2", n.Boost)
		}
	default:
		return fmt.Errorf("harness: unknown classes kind %q (known: straggler, tiered)", c.Kind)
	}
	if n.Frac < 0 || n.Frac > 1 {
		return fmt.Errorf("harness: classes frac %v outside [0, 1]", n.Frac)
	}
	return nil
}

// ParseClasses parses the -classes flag syntax "kind:key=value,..." with
// keys frac, slow and boost, e.g. "straggler:frac=0.2,slow=4" or
// "tiered:frac=0.25,boost=3". An empty string means uniform capability.
func ParseClasses(s string) (*Classes, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	kind, rest, _ := strings.Cut(s, ":")
	c := &Classes{Kind: kind}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("harness: classes option %q is not key=value", kv)
			}
			var err error
			switch key {
			case "frac":
				c.Frac, err = strconv.ParseFloat(val, 64)
			case "slow":
				c.Slow, err = strconv.Atoi(val)
			case "boost":
				c.Boost, err = strconv.Atoi(val)
			default:
				return nil, fmt.Errorf("harness: unknown classes option %q (known: frac, slow, boost)", key)
			}
			if err != nil {
				return nil, fmt.Errorf("harness: bad classes %s %q", key, val)
			}
		}
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	if c.Frac == 0 {
		return nil, fmt.Errorf("harness: classes %q declare no nodes (frac=0); omit the flag instead", s)
	}
	return c, nil
}

// buildTraits materializes the per-node trait table for one trial of n
// nodes: the Byzantine set is a seeded-permutation prefix drawn from
// advSeed (stream 13 of the trial seed), class membership from clsSeed
// (stream 14). The two draws are independent, so a node can be both a
// straggler and Byzantine — heterogeneity does not shield a node from
// compromise. Returns nil when both declarations are trivial.
func buildTraits(n int, adv *Adversary, cls *Classes, advSeed, clsSeed uint64) []algebraic.NodeTraits {
	if adv.IsNone() && cls.IsNone() {
		return nil
	}
	traits := make([]algebraic.NodeTraits, n)
	if !adv.IsNone() {
		a := adv.withDefaults()
		cycle := a.behaviors()
		perm := core.NewRand(advSeed).Perm(n)
		count := int(a.Frac * float64(n))
		for i := 0; i < count; i++ {
			traits[perm[i]].Behavior = cycle[i%len(cycle)]
		}
	}
	if !cls.IsNone() {
		c := cls.withDefaults()
		perm := core.NewRand(clsSeed).Perm(n)
		count := int(c.Frac * float64(n))
		for i := 0; i < count; i++ {
			switch c.Kind {
			case "straggler":
				traits[perm[i]].Slow = c.Slow
			case "tiered":
				traits[perm[i]].Boost = c.Boost
			}
		}
	}
	return traits
}
