package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func runToCSV(t *testing.T, r Runner, spec Spec) string {
	t.Helper()
	rs, err := r.Run(&spec)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, rs); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestResumeAfterSimulatedKill is the restartability guarantee: a run
// that dies mid-sweep leaves a checkpoint whose resume produces the same
// file as an uninterrupted run — and only re-executes the missing trials.
func TestResumeAfterSimulatedKill(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sweep.ckpt")

	uninterrupted := runToCSV(t, Runner{Parallel: 4}, lineSpec())

	// Run once with a checkpoint, then simulate a kill partway through by
	// truncating the file: keep the header and the first completed trial,
	// plus a torn half-written line the killed process left behind.
	full := runToCSV(t, Runner{Parallel: 4, Checkpoint: ckpt}, lineSpec())
	if full != uninterrupted {
		t.Fatalf("checkpointed run differs from plain run:\n%s\nvs\n%s", full, uninterrupted)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 5 {
		t.Fatalf("checkpoint has %d lines, want header + 4 trials", len(lines))
	}
	torn := strings.Join(lines[:2], "") + lines[2][:len(lines[2])/2]
	if err := os.WriteFile(ckpt, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume: the executed-trial count must shrink and the bytes must not.
	var executed atomic.Int32
	r := Runner{Parallel: 4, Checkpoint: ckpt, Resume: true,
		execute: func(s *Spec, tr Trial) (Outcome, error) {
			executed.Add(1)
			return Execute(s.gossipSpec(tr), s.Protocol, tr.Seed)
		}}
	resumed := runToCSV(t, r, lineSpec())
	if resumed != uninterrupted {
		t.Errorf("resumed output differs:\ngot:\n%swant:\n%s", resumed, uninterrupted)
	}
	if got := int(executed.Load()); got != 3 {
		t.Errorf("resume re-executed %d trials, want 3 (1 of 4 was checkpointed)", got)
	}

	// A second resume of the now-complete checkpoint runs nothing at all.
	executed.Store(0)
	again := runToCSV(t, r, lineSpec())
	if again != uninterrupted {
		t.Errorf("second resume output differs")
	}
	if got := int(executed.Load()); got != 0 {
		t.Errorf("complete checkpoint still executed %d trials", got)
	}
}

// TestResumeRejectsForeignCheckpoint: a checkpoint written by a different
// spec must be refused, not silently merged.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sweep.ckpt")
	runToCSV(t, Runner{Checkpoint: ckpt}, lineSpec())

	other := lineSpec()
	other.Seed = 999 // different seed => different work-list
	if _, err := (Runner{Checkpoint: ckpt, Resume: true}).Run(&other); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("foreign checkpoint accepted: %v", err)
	}
}

// TestResumeMissingCheckpointStartsFresh: -resume with no file yet is a
// fresh start, which makes restart-in-a-loop scripting trivial.
func TestResumeMissingCheckpointStartsFresh(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "none.ckpt")
	got := runToCSV(t, Runner{Checkpoint: ckpt, Resume: true}, lineSpec())
	want := runToCSV(t, Runner{}, lineSpec())
	if got != want {
		t.Fatalf("fresh resume differs from plain run")
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint not created: %v", err)
	}
}

// TestCheckpointWithoutResumeRestarts: without -resume an existing file
// is truncated, not appended to. Checkpoint lines land in worker-completion
// order (the file is a crash log, not a report), so the two runs are
// compared as sorted line sets, not raw bytes — an append would double the
// set, reordering alone would not change it.
func TestCheckpointWithoutResumeRestarts(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sweep.ckpt")
	sortedLines := func(data []byte) string {
		lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
		sort.Strings(lines)
		return strings.Join(lines, "\n")
	}
	runToCSV(t, Runner{Checkpoint: ckpt}, lineSpec())
	first, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	runToCSV(t, Runner{Checkpoint: ckpt}, lineSpec())
	second, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if sortedLines(first) != sortedLines(second) {
		t.Fatalf("restarted checkpoint differs (appended?):\n%s\nvs\n%s", first, second)
	}
}

// TestTrialTimeout: a hung trial fails the run with a descriptive error
// instead of wedging the sweep forever.
func TestTrialTimeout(t *testing.T) {
	spec := lineSpec()
	r := Runner{Parallel: 2, Timeout: 5 * time.Millisecond,
		execute: func(s *Spec, tr Trial) (Outcome, error) {
			if tr.Index == 2 {
				time.Sleep(200 * time.Millisecond)
			}
			return Outcome{}, nil
		}}
	_, err := r.Run(&spec)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("hung trial not reported: %v", err)
	}
}

// TestProgressReporting: the progress callback sees every completion
// exactly once with a monotonically increasing done count.
func TestProgressReporting(t *testing.T) {
	spec := lineSpec()
	var calls int
	last := 0
	r := Runner{Parallel: 4, Progress: func(done, total int, tr Trial, o Outcome) {
		calls++
		if done != last+1 || total != 4 {
			t.Errorf("progress (%d,%d) after %d", done, total, last)
		}
		last = done
	}}
	if _, err := r.Run(&spec); err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("progress called %d times, want 4", calls)
	}
}

// TestFingerprintSensitivity: any work-list-shaping field changes the
// fingerprint; unrelated runner settings do not exist on the Spec.
func TestFingerprintSensitivity(t *testing.T) {
	base := lineSpec()
	fp := func(s Spec) string { return s.Fingerprint() }
	if fp(lineSpec()) != fp(base) {
		t.Fatal("fingerprint not stable")
	}
	mutations := []func(*Spec){
		func(s *Spec) { s.Seed++ },
		func(s *Spec) { s.Trials++ },
		func(s *Spec) { s.Sizes = []int{8} },
		func(s *Spec) { s.Protocol = ProtocolUncoded },
		func(s *Spec) { s.KMode = "n" },
		func(s *Spec) { s.Q = 256 },
	}
	for i, mut := range mutations {
		s := lineSpec()
		mut(&s)
		if fp(s) == fp(base) {
			t.Errorf("mutation %d did not change fingerprint", i)
		}
	}
}

func TestFailFastWriter(t *testing.T) {
	w := NewFailFastWriter(failingWriter{})
	if _, err := fmt.Fprintf(w, "hello"); err == nil {
		t.Fatal("error not surfaced")
	}
	if w.Err() == nil {
		t.Fatal("error not latched")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, fmt.Errorf("sink closed") }
