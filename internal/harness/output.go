package harness

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// csvHeader is the sweep CSV schema, stable since the pre-harness
// cmd/sweep (downstream plotting scripts key on it).
var csvHeader = []string{"graph", "protocol", "model", "n", "k", "trial", "rounds"}

// WriteCSV renders the result set as the canonical sweep CSV, one row
// per trial in work-list order. The bytes are a pure function of
// (Spec, seed): identical for any worker count and any resume history.
func WriteCSV(w io.Writer, rs *ResultSet) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for i, t := range rs.Trials {
		rec := []string{
			t.Graph.Name(), rs.Spec.Protocol.String(), rs.Spec.Model.String(),
			strconv.Itoa(t.Graph.N()), strconv.Itoa(t.K), strconv.Itoa(t.Num),
			strconv.Itoa(rs.Outcomes[i].Result.Rounds),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonRow is one trial in the JSON rendering.
type jsonRow struct {
	Graph    string `json:"graph"`
	Protocol string `json:"protocol"`
	Model    string `json:"model"`
	N        int    `json:"n"`
	K        int    `json:"k"`
	Trial    int    `json:"trial"`
	Rounds   int    `json:"rounds"`
}

// WriteJSON renders the result set as a JSON array, one object per trial
// in work-list order, with the same determinism contract as WriteCSV.
func WriteJSON(w io.Writer, rs *ResultSet) error {
	rows := make([]jsonRow, len(rs.Trials))
	for i, t := range rs.Trials {
		rows[i] = jsonRow{
			Graph:    t.Graph.Name(),
			Protocol: rs.Spec.Protocol.String(),
			Model:    rs.Spec.Model.String(),
			N:        t.Graph.N(),
			K:        t.K,
			Trial:    t.Num,
			Rounds:   rs.Outcomes[i].Result.Rounds,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// FailFastWriter wraps a writer and latches the first error, so command
// mains that print many lines can check once at the end and still exit
// non-zero on a broken pipe or full disk.
type FailFastWriter struct {
	w   io.Writer
	err error
}

// NewFailFastWriter wraps w.
func NewFailFastWriter(w io.Writer) *FailFastWriter {
	return &FailFastWriter{w: w}
}

// Write forwards to the underlying writer until the first error, after
// which it keeps failing without writing.
func (f *FailFastWriter) Write(p []byte) (int, error) {
	if f.err != nil {
		return 0, f.err
	}
	n, err := f.w.Write(p)
	if err != nil {
		f.err = err
	}
	return n, err
}

// Err returns the first write error, if any.
func (f *FailFastWriter) Err() error { return f.err }
