package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Runner executes a Spec's work-list over a worker pool.
type Runner struct {
	// Parallel bounds concurrent trials (<=0: all cores). The output is
	// byte-identical for any value.
	Parallel int
	// Timeout aborts any single trial that runs longer (0: none). A
	// timed-out trial fails the run; its goroutine is abandoned and
	// terminates on its own when the simulation's round budget runs out.
	Timeout time.Duration
	// Checkpoint, when non-empty, appends every completed trial to this
	// file so a killed sweep can be resumed.
	Checkpoint string
	// Resume loads an existing checkpoint before running and skips the
	// trials it already holds. A missing checkpoint file starts fresh.
	Resume bool
	// Progress, when set, is called serially after every completed trial.
	Progress func(done, total int, t Trial, o Outcome)

	// execute overrides trial execution (tests only; nil = Execute).
	execute func(s *Spec, t Trial) (Outcome, error)
}

// ResultSet is a Spec's work-list with every Outcome filled in, in
// deterministic work-list order. Elapsed and Executed describe how the
// run went (wall-clock, trials actually simulated vs. replayed from a
// checkpoint); they are observability only and never rendered into the
// byte-identical CSV/JSON data.
type ResultSet struct {
	Spec     *Spec
	Cells    []Cell
	Trials   []Trial
	Outcomes []Outcome

	// Elapsed is the wall-clock duration of the Run call.
	Elapsed time.Duration
	// Executed counts the trials simulated in this run (total minus the
	// ones replayed from a resume checkpoint).
	Executed int
}

// TrialsPerSec returns the executed-trial throughput of the run (0 when
// nothing ran or the clock did not advance).
func (rs *ResultSet) TrialsPerSec() float64 {
	if rs.Elapsed <= 0 || rs.Executed == 0 {
		return 0
	}
	return float64(rs.Executed) / rs.Elapsed.Seconds()
}

// CellRounds returns the per-trial stopping times of one grid cell.
func (rs *ResultSet) CellRounds(ci int) []float64 {
	out := make([]float64, 0, rs.Spec.Trials)
	for i, t := range rs.Trials {
		if t.Cell == ci {
			out = append(out, float64(rs.Outcomes[i].Result.Rounds))
		}
	}
	return out
}

// MeanRounds averages the stopping time over one grid cell's trials.
func (rs *ResultSet) MeanRounds(ci int) float64 {
	xs := rs.CellRounds(ci)
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Run expands the spec, consults the checkpoint, fans the remaining
// trials out over the pool, and returns the ordered results. The
// returned ResultSet is identical for any Parallel value and for any
// interrupt/resume history.
func (r Runner) Run(spec *Spec) (*ResultSet, error) {
	start := time.Now()
	cells, trials, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	outcomes := make([]Outcome, len(trials))
	done := make([]bool, len(trials))

	var ck *checkpoint
	if r.Checkpoint != "" {
		ck, err = openCheckpoint(r.Checkpoint, spec, len(trials), r.Resume)
		if err != nil {
			return nil, err
		}
		defer ck.close()
		for i, o := range ck.loaded {
			outcomes[i] = o
			done[i] = true
		}
	}
	pending := make([]int, 0, len(trials))
	for i := range trials {
		if !done[i] {
			pending = append(pending, i)
		}
	}

	exec := r.execute
	if exec == nil {
		exec = func(s *Spec, t Trial) (Outcome, error) {
			return s.ExecuteTrial(t)
		}
	}
	completed := len(trials) - len(pending)
	var mu sync.Mutex
	err = forEachIndex(pending, r.Parallel, func(i int) error {
		o, err := r.runOne(exec, spec, trials[i])
		if err != nil {
			return err
		}
		// Each index is owned by exactly one worker, so the slice write
		// needs no lock; the checkpoint serializes (and fsyncs) under its
		// own lock so slow disks never stall the result mutex.
		outcomes[i] = o
		if ck != nil {
			if err := ck.append(i, o); err != nil {
				return err
			}
		}
		mu.Lock()
		defer mu.Unlock()
		completed++
		if r.Progress != nil {
			r.Progress(completed, len(trials), trials[i], o)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &ResultSet{
		Spec: spec, Cells: cells, Trials: trials, Outcomes: outcomes,
		Elapsed: time.Since(start), Executed: len(pending),
	}, nil
}

// runOne executes one trial, enforcing the per-trial timeout.
func (r Runner) runOne(exec func(*Spec, Trial) (Outcome, error), spec *Spec, t Trial) (Outcome, error) {
	if r.Timeout <= 0 {
		return exec(spec, t)
	}
	type reply struct {
		o   Outcome
		err error
	}
	ch := make(chan reply, 1)
	go func() {
		o, err := exec(spec, t)
		ch <- reply{o, err}
	}()
	timer := time.NewTimer(r.Timeout)
	defer timer.Stop()
	select {
	case rep := <-ch:
		return rep.o, rep.err
	case <-timer.C:
		return Outcome{}, fmt.Errorf("harness: trial %d (graph=%s k=%d trial=%d) timed out after %v",
			t.Index, t.Graph.Name(), t.K, t.Num, r.Timeout)
	}
}

// forEachIndex fans fn out over the given indices with a bounded worker
// pool, failing fast: after the first error no new work is dispatched,
// and the error for the lowest index wins (deterministic error
// reporting). fn may be called concurrently.
func forEachIndex(idxs []int, parallel int, fn func(i int) error) error {
	workers := parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(idxs) {
		workers = len(idxs)
	}
	if workers <= 1 {
		for _, i := range idxs {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(idxs))
	var failed atomic.Bool
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ji := range next {
				if err := fn(idxs[ji]); err != nil {
					errs[ji] = err
					failed.Store(true)
				}
			}
		}()
	}
	for ji := range idxs {
		if failed.Load() {
			break // an error is config-shaped; don't burn the rest of the grid
		}
		next <- ji
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ParallelMap runs fn(0..n-1) across the pool and returns the results in
// index order. fn must derive any randomness from its index alone, which
// makes the output independent of the worker count. On error, the lowest
// failing index's error is returned.
func ParallelMap[T any](n, parallel int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	err := forEachIndex(idxs, parallel, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ParallelFloats is ParallelMap specialized to the scalar samples the
// experiment runners aggregate.
func ParallelFloats(n, parallel int, fn func(i int) (float64, error)) ([]float64, error) {
	return ParallelMap(n, parallel, fn)
}
