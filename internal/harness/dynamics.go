package harness

import (
	"fmt"
	"strconv"
	"strings"

	"algossip/internal/graph"
)

// Dynamics declares a time-varying topology schedule applied over a
// trial's base graph. It is the flag-parseable, fingerprintable face of
// graph.Dynamic: the Spec carries the parameters, and Execute builds the
// concrete schedule per trial with a seed derived from the trial seed,
// so identical (Spec, Seed) pairs replay identical topology trajectories
// on any worker count.
type Dynamics struct {
	// Kind selects the schedule: "static" (or empty — no dynamics),
	// "edge" (i.i.d. per-round edge failures), "burst" (periodic
	// correlated failure bursts), "rewire" (periodic partial rewiring),
	// "churn" (node leave/rejoin with state reset), or "grow"
	// (grow-then-stabilize preferential attachment; replaces the base
	// graph's structure, keeping only its node count).
	Kind string `json:"kind"`
	// Rate is the per-kind probability: edge/burst failure rate, rewire
	// fraction, or churn down-probability. Unused by "grow".
	Rate float64 `json:"rate,omitempty"`
	// Period is the schedule cadence in rounds: burst period, rewire
	// period, churn block length, or rounds per join for "grow".
	// 0 selects a per-kind default.
	Period int `json:"period,omitempty"`
	// Burst is the burst length in rounds (kind "burst" only; 0 selects
	// the default).
	Burst int `json:"burst,omitempty"`
}

// dynamicsDefaults fills zero cadence fields with per-kind defaults.
func (d Dynamics) withDefaults() Dynamics {
	if d.Period == 0 {
		switch d.Kind {
		case "edge":
			d.Period = 1 // i.i.d. failures resample every round
		case "burst":
			d.Period = 64
		case "rewire":
			d.Period = 32
		case "churn":
			d.Period = 16
		case "grow":
			d.Period = 4
		}
	}
	if d.Kind == "burst" && d.Burst == 0 {
		d.Burst = 8
	}
	return d
}

// IsStatic reports whether the declaration is the trivial constant
// schedule (including a nil receiver), i.e. whether a static engine run
// reproduces it exactly.
func (d *Dynamics) IsStatic() bool {
	return d == nil || d.Kind == "" || d.Kind == "static"
}

// String renders the canonical normalized form, e.g.
// "churn:rate=0.1,period=16" — stable input for fingerprints and labels.
func (d *Dynamics) String() string {
	if d.IsStatic() {
		return "static"
	}
	n := d.withDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:rate=%g,period=%d", n.Kind, n.Rate, n.Period)
	if n.Kind == "burst" {
		fmt.Fprintf(&sb, ",burst=%d", n.Burst)
	}
	return sb.String()
}

// Build materializes the schedule over a trial's base graph. The seed
// must derive from the trial seed so each trial sees an independent,
// reproducible topology trajectory.
func (d *Dynamics) Build(g *graph.Graph, seed uint64) (graph.Dynamic, error) {
	if d.IsStatic() {
		return graph.Static(g), nil
	}
	switch d.Kind {
	case "edge", "burst", "rewire", "churn", "grow":
	default:
		return nil, fmt.Errorf("harness: unknown dynamics kind %q (known: static, edge, burst, rewire, churn, grow)", d.Kind)
	}
	// Reject options the kind ignores: they would silently change the
	// fingerprint (breaking -resume against an equivalent run) while
	// changing nothing about the trajectory.
	if d.Kind == "edge" && d.Period > 1 {
		return nil, fmt.Errorf("harness: edge failures resample every round; period=%d has no effect", d.Period)
	}
	if d.Kind == "grow" && d.Rate != 0 {
		return nil, fmt.Errorf("harness: grow dynamics take no rate (got %v)", d.Rate)
	}
	if d.Kind != "burst" && d.Burst != 0 {
		return nil, fmt.Errorf("harness: burst length only applies to kind \"burst\"")
	}
	n := d.withDefaults()
	if n.Rate < 0 || n.Rate >= 1 {
		return nil, fmt.Errorf("harness: dynamics rate %v outside [0, 1)", n.Rate)
	}
	if n.Period < 1 {
		return nil, fmt.Errorf("harness: dynamics period %d must be positive", n.Period)
	}
	switch n.Kind {
	case "edge":
		return graph.NewEdgeFailures(g, n.Rate, seed), nil
	case "burst":
		if n.Burst < 1 || n.Burst >= n.Period {
			return nil, fmt.Errorf("harness: burst length %d must be in [1, period=%d)", n.Burst, n.Period)
		}
		return graph.NewBurstFailures(g, n.Rate, n.Period, n.Burst, seed), nil
	case "rewire":
		return graph.NewRewire(g, n.Rate, n.Period, seed), nil
	case "churn":
		return graph.NewChurn(g, n.Rate, n.Period, seed), nil
	default: // "grow"
		const attach = 2
		if g.N() < attach+2 {
			return nil, fmt.Errorf("harness: grow dynamics need at least %d nodes, got %d", attach+2, g.N())
		}
		return graph.NewGrow(g.N(), attach, n.Period, seed), nil
	}
}

// ParseDynamics parses the -dynamics flag syntax "kind[:key=value,...]"
// with keys rate, period and burst, e.g. "edge:rate=0.2" or
// "churn:rate=0.1,period=16". An empty string means static.
func ParseDynamics(s string) (*Dynamics, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	kind, rest, _ := strings.Cut(s, ":")
	d := &Dynamics{Kind: kind}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("harness: dynamics option %q is not key=value", kv)
			}
			switch key {
			case "rate":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("harness: bad dynamics rate %q", val)
				}
				d.Rate = f
			case "period":
				v, err := strconv.Atoi(val)
				if err != nil || v < 1 {
					return nil, fmt.Errorf("harness: bad dynamics period %q", val)
				}
				d.Period = v
			case "burst":
				v, err := strconv.Atoi(val)
				if err != nil || v < 1 {
					return nil, fmt.Errorf("harness: bad dynamics burst %q", val)
				}
				d.Burst = v
			default:
				return nil, fmt.Errorf("harness: unknown dynamics option %q (known: rate, period, burst)", key)
			}
		}
	}
	// Validate the kind (and cross-field constraints) eagerly so flag
	// errors surface before any compute is spent.
	if _, err := d.Build(graph.Complete(4), 0); err != nil {
		return nil, err
	}
	return d, nil
}
