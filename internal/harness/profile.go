package harness

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profiles bundles the standard Go diagnostics outputs a long-running
// experiment binary can record: CPU profile, heap profile, and execution
// trace. Empty paths disable the corresponding output.
type Profiles struct {
	// CPUProfile receives a pprof CPU profile covering Start..Stop.
	CPUProfile string
	// MemProfile receives a heap profile written at Stop (after a GC, so
	// it reflects live steady-state memory, not transient garbage).
	MemProfile string
	// Trace receives a runtime/trace execution trace covering Start..Stop.
	Trace string
}

// enabled reports whether any output is requested.
func (p Profiles) enabled() bool {
	return p.CPUProfile != "" || p.MemProfile != "" || p.Trace != ""
}

// Start begins the requested recordings and returns a stop function to
// call on clean exit; the stop function finishes the recordings and
// writes the heap profile. When nothing is requested both Start and the
// returned stop are no-ops, so callers can wire it unconditionally.
func (p Profiles) Start() (stop func() error, err error) {
	if !p.enabled() {
		return func() error { return nil }, nil
	}
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
	}
	if p.CPUProfile != "" {
		cpuF, err = os.Create(p.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			cpuF = nil
			cleanup()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if p.Trace != "" {
		traceF, err = os.Create(p.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("trace: %w", err)
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("trace: %w", err)
		}
	}
	memPath := p.MemProfile
	return func() error {
		var firstErr error
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if traceF != nil {
			trace.Stop()
			if err := traceF.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("trace: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("memprofile: %w", err)
				}
			} else {
				runtime.GC() // materialize live-object statistics
				if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("memprofile: %w", err)
				}
				if err := f.Close(); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("memprofile: %w", err)
				}
			}
		}
		return firstErr
	}, nil
}
