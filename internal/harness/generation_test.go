package harness

import (
	"errors"
	"testing"

	"algossip/internal/graph"
	"algossip/internal/rlnc"
)

// TestGenSizeValidation pins the generation-size error paths at both
// validation layers: Execute (per-trial) and Spec.Expand (per-cell,
// up-front). An invalid size must surface as the typed rlnc.GenSizeError
// so flag-parsing layers can distinguish it from other failures.
func TestGenSizeValidation(t *testing.T) {
	g := graph.Complete(16)
	execCases := []struct {
		name    string
		genSize int
		k       int
		wantErr bool
	}{
		{"off", 0, 8, false},
		{"one", 1, 8, false},
		{"equal-k", 8, 8, false},
		{"oversized", 9, 8, true},
		{"negative", -1, 8, true},
	}
	for _, c := range execCases {
		t.Run("execute/"+c.name, func(t *testing.T) {
			spec := GossipSpec{Graph: g, K: c.k, GenSize: c.genSize}
			_, err := Execute(spec, ProtocolUniformAG, 1)
			if !c.wantErr {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			var gse *rlnc.GenSizeError
			if !errors.As(err, &gse) {
				t.Fatalf("error %v is not a *rlnc.GenSizeError", err)
			}
			if gse.GenSize != c.genSize {
				t.Fatalf("error reports size %d, want %d", gse.GenSize, c.genSize)
			}
		})
	}

	// Expand validates against every cell's k before any trial runs: with
	// kmode half, sizes 16 and 8 give k=8 and k=4, so g=6 fits the first
	// cell but not the second.
	t.Run("expand/oversized-cell", func(t *testing.T) {
		spec := Spec{Graph: "complete", Sizes: []int{16, 8}, GenSize: 6, Trials: 1}
		_, _, err := spec.Expand()
		var gse *rlnc.GenSizeError
		if !errors.As(err, &gse) {
			t.Fatalf("error %v is not a *rlnc.GenSizeError", err)
		}
		if gse.GenSize != 6 || gse.K != 4 {
			t.Fatalf("error reports g=%d k=%d, want g=6 k=4", gse.GenSize, gse.K)
		}
	})
	t.Run("expand/negative", func(t *testing.T) {
		spec := Spec{Graph: "complete", Sizes: []int{16}, GenSize: -3, Trials: 1}
		_, _, err := spec.Expand()
		var gse *rlnc.GenSizeError
		if !errors.As(err, &gse) {
			t.Fatalf("error %v is not a *rlnc.GenSizeError", err)
		}
	})
	t.Run("expand/fits-all-cells", func(t *testing.T) {
		spec := Spec{Graph: "complete", Sizes: []int{16, 8}, GenSize: 4, Trials: 1}
		if _, _, err := spec.Expand(); err != nil {
			t.Fatalf("g=4 fits every cell, got %v", err)
		}
	})
}

// TestGenerationModeRestrictions pins the unsupported-configuration
// rejections: generation mode is uniform AG on a static topology with no
// loss injection.
func TestGenerationModeRestrictions(t *testing.T) {
	g := graph.Complete(16)
	base := GossipSpec{Graph: g, K: 8, GenSize: 4}

	if _, err := Execute(base, ProtocolTAGRR, 1); err == nil {
		t.Error("generation-mode TAG accepted")
	}
	lossy := base
	lossy.LossRate = 0.1
	if _, err := Execute(lossy, ProtocolUniformAG, 1); err == nil {
		t.Error("generation mode with loss injection accepted")
	}
	dyn, err := ParseDynamics("edge:rate=0.2")
	if err != nil {
		t.Fatal(err)
	}
	dynamic := base
	dynamic.Dynamics = dyn
	if _, err := Execute(dynamic, ProtocolUniformAG, 1); err == nil {
		t.Error("generation mode on a dynamic topology accepted")
	}
}
