package harness

import "fmt"

// Protocol selects a k-dissemination protocol for Execute.
type Protocol int

const (
	// ProtocolUniformAG is uniform algebraic gossip (Theorem 1).
	ProtocolUniformAG Protocol = iota + 1
	// ProtocolTAGRR is TAG with the round-robin broadcast B_RR (Theorem 5).
	ProtocolTAGRR
	// ProtocolTAGUniform is TAG with a uniform broadcast as S.
	ProtocolTAGUniform
	// ProtocolTAGIS is TAG with the IS protocol as S (Theorems 6-8).
	ProtocolTAGIS
	// ProtocolUncoded is the store-and-forward baseline.
	ProtocolUncoded
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case ProtocolUniformAG:
		return "uniform-ag"
	case ProtocolTAGRR:
		return "tag-brr"
	case ProtocolTAGUniform:
		return "tag-uniform"
	case ProtocolTAGIS:
		return "tag-is"
	case ProtocolUncoded:
		return "uncoded"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// ParseProtocol converts a name such as "tag-brr" to a Protocol.
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "uniform-ag", "ag", "uniform":
		return ProtocolUniformAG, nil
	case "tag-brr", "tag":
		return ProtocolTAGRR, nil
	case "tag-uniform":
		return ProtocolTAGUniform, nil
	case "tag-is":
		return ProtocolTAGIS, nil
	case "uncoded":
		return ProtocolUncoded, nil
	default:
		return 0, fmt.Errorf("harness: unknown protocol %q", s)
	}
}
