package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// TestFingerprintBackwardCompat replicates the pre-generation fingerprint
// preimage verbatim and pins that a spec with GenSize and Shards unset
// still hashes to it — the guarantee that every checkpoint written before
// those fields existed remains resumable. If this test fails, a format
// change broke old checkpoints.
func TestFingerprintBackwardCompat(t *testing.T) {
	s := lineSpec()
	s.normalize()
	var sb strings.Builder
	fmt.Fprintf(&sb, "v%d|name=%s|graph=%s|sizes=%v|", checkpointVersion, s.Name, s.Graph, s.Sizes)
	fmt.Fprintf(&sb, "kmode=%s|ks=%v|proto=%d|model=%d|q=%d|action=%d|sel=%d|single=%t|loss=%g|maxrounds=%d|trials=%d|seed=%d",
		s.KMode, s.Ks, s.Protocol, s.Model, s.Q, s.Action, s.Selector,
		s.SingleSource, s.LossRate, s.MaxRounds, s.Trials, s.Seed)
	sum := sha256.Sum256([]byte(sb.String()))
	want := hex.EncodeToString(sum[:])
	if got := s.Fingerprint(); got != want {
		t.Fatalf("fingerprint of a generations/shards-free spec changed:\n got %s\nwant %s (pre-generation format)", got, want)
	}
}

// TestFingerprintGenerationsAndShards: setting GenSize changes the
// fingerprint (a generation-coded sweep is different work), the sharded
// tag records only on/off (the count is an execution knob, like
// Runner.Parallel), and classic serial (Shards=0) hashes differently from
// sharded (the trajectories differ).
func TestFingerprintGenerationsAndShards(t *testing.T) {
	fp := func(mut func(*Spec)) string {
		s := lineSpec()
		mut(&s)
		return s.Fingerprint()
	}
	plain := fp(func(*Spec) {})
	if fp(func(s *Spec) { s.GenSize = 2 }) == plain {
		t.Error("GenSize did not change the fingerprint")
	}
	if fp(func(s *Spec) { s.GenSize = 2 }) == fp(func(s *Spec) { s.GenSize = 4 }) {
		t.Error("different generation sizes share a fingerprint")
	}
	if fp(func(s *Spec) { s.Shards = 1 }) == plain {
		t.Error("sharded semantics did not change the fingerprint")
	}
	if fp(func(s *Spec) { s.Shards = 1 }) != fp(func(s *Spec) { s.Shards = 8 }) {
		t.Error("shard count leaked into the fingerprint: 1 and 8 shards replay the same trajectory")
	}
}

// TestFingerprintFabricTag: the fabric session label follows the same
// append-only idiom — unset leaves the historical preimage untouched
// (TestFingerprintBackwardCompat covers the hash), distinct labels bind
// to distinct sessions.
func TestFingerprintFabricTag(t *testing.T) {
	fp := func(mut func(*Spec)) string {
		s := lineSpec()
		mut(&s)
		return s.Fingerprint()
	}
	plain := fp(func(*Spec) {})
	if fp(func(s *Spec) { s.Fabric = "run-a" }) == plain {
		t.Error("fabric label did not change the fingerprint")
	}
	if fp(func(s *Spec) { s.Fabric = "run-a" }) == fp(func(s *Spec) { s.Fabric = "run-b" }) {
		t.Error("different fabric sessions share a fingerprint")
	}
}

// TestFingerprintAdversaryAndClasses: the adversarial and heterogeneity
// declarations follow the same append-only idiom — unset leaves the
// historical preimage untouched (TestFingerprintBackwardCompat covers the
// hash), and every parameter that changes the trajectory changes the
// fingerprint.
func TestFingerprintAdversaryAndClasses(t *testing.T) {
	fp := func(mut func(*Spec)) string {
		s := lineSpec()
		mut(&s)
		return s.Fingerprint()
	}
	plain := fp(func(*Spec) {})
	adv := func(frac float64, mode string) func(*Spec) {
		return func(s *Spec) { s.Adversary = &Adversary{Kind: "byzantine", Frac: frac, Mode: mode} }
	}
	if fp(adv(0.1, "pollute")) == plain {
		t.Error("adversary did not change the fingerprint")
	}
	if fp(adv(0.1, "pollute")) == fp(adv(0.2, "pollute")) {
		t.Error("different adversary fractions share a fingerprint")
	}
	if fp(adv(0.1, "pollute")) == fp(adv(0.1, "replay")) {
		t.Error("different adversary modes share a fingerprint")
	}
	// The default mode and its explicit spelling canonicalize identically.
	if fp(adv(0.1, "")) != fp(adv(0.1, "pollute")) {
		t.Error("default mode and explicit pollute hash differently")
	}
	cls := func(kind string, frac float64, v int) func(*Spec) {
		return func(s *Spec) {
			c := &Classes{Kind: kind, Frac: frac}
			if kind == "tiered" {
				c.Boost = v
			} else {
				c.Slow = v
			}
			s.Classes = c
		}
	}
	if fp(cls("straggler", 0.2, 4)) == plain {
		t.Error("classes did not change the fingerprint")
	}
	if fp(cls("straggler", 0.2, 4)) == fp(cls("straggler", 0.2, 8)) {
		t.Error("different slow factors share a fingerprint")
	}
	if fp(cls("straggler", 0.2, 4)) == fp(cls("tiered", 0.2, 4)) {
		t.Error("straggler and tiered share a fingerprint")
	}
	// Both suffixes compose.
	both := fp(func(s *Spec) {
		adv(0.1, "mix")(s)
		cls("straggler", 0.2, 4)(s)
	})
	if both == fp(adv(0.1, "mix")) || both == fp(cls("straggler", 0.2, 4)) {
		t.Error("combined adversary+classes collides with a single-regime fingerprint")
	}
}

// TestResumeGenerationCheckpoint: a generation-mode sweep checkpoints and
// resumes like any other, and a checkpoint from a different generation
// size is foreign (fingerprint mismatch), not silently merged.
func TestResumeGenerationCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "gen.ckpt")
	spec := func() Spec {
		return Spec{
			Name:  "gen",
			Graph: "ring", Sizes: []int{16},
			KMode: "const:8", GenSize: 4, Shards: 2,
			Trials: 3, Seed: 11,
		}
	}

	want := runToCSV(t, Runner{Parallel: 2}, spec())
	got := runToCSV(t, Runner{Parallel: 2, Checkpoint: ckpt}, spec())
	if got != want {
		t.Fatalf("checkpointed generation run differs from plain run")
	}
	resumed := runToCSV(t, Runner{Parallel: 2, Checkpoint: ckpt, Resume: true}, spec())
	if resumed != want {
		t.Fatalf("resumed generation run differs from plain run")
	}

	foreign := spec()
	foreign.GenSize = 8
	if _, err := (Runner{Checkpoint: ckpt, Resume: true}).Run(&foreign); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("checkpoint from a different generation size accepted: %v", err)
	}
}
