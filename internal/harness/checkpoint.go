package harness

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// ckHeader is the checkpoint file's first line: enough to refuse
// resuming a different spec.
type ckHeader struct {
	V           int    `json:"v"`
	Name        string `json:"name,omitempty"`
	Fingerprint string `json:"fingerprint"`
	Total       int    `json:"total"`
}

// ckEntry is one completed trial, appended as it finishes.
type ckEntry struct {
	I int     `json:"i"`
	O Outcome `json:"o"`
}

// Fingerprint returns a stable digest of every field of the spec that
// influences the work-list (a custom TrialSeed is the caller's
// responsibility to keep stable). Two specs with equal fingerprints
// expand to the same trials, which is what makes a checkpoint safely
// resumable.
func (s *Spec) Fingerprint() string {
	s.normalize()
	var sb strings.Builder
	fmt.Fprintf(&sb, "v%d|name=%s|graph=%s|sizes=%v|", checkpointVersion, s.Name, s.Graph, s.Sizes)
	for _, g := range s.Graphs {
		fmt.Fprintf(&sb, "g=%s/%d|", g.Name(), g.N())
	}
	fmt.Fprintf(&sb, "kmode=%s|ks=%v|proto=%d|model=%d|q=%d|action=%d|sel=%d|single=%t|loss=%g|maxrounds=%d|trials=%d|seed=%d",
		s.KMode, s.Ks, s.Protocol, s.Model, s.Q, s.Action, s.Selector,
		s.SingleSource, s.LossRate, s.MaxRounds, s.Trials, s.Seed)
	// Appended only for dynamic specs, so every pre-dynamics checkpoint
	// fingerprint is unchanged.
	if !s.Dynamics.IsStatic() {
		fmt.Fprintf(&sb, "|dyn=%s", s.Dynamics.String())
	}
	// Same backward-compat idiom for the generation/sharded fields: tags
	// appear only when the mode is in force, so checkpoints written
	// before these fields existed still resume. The sharded tag records
	// only that the sharded trajectory semantics apply — the shard count
	// itself is a pure execution knob (any positive count replays the
	// same trajectory), exactly like Runner.Parallel.
	if s.GenSize > 0 {
		fmt.Fprintf(&sb, "|gens=%d", s.GenSize)
	}
	if s.Shards > 0 {
		fmt.Fprintf(&sb, "|sharded=1")
	}
	// Adversarial and heterogeneous-class declarations, same append-only
	// idiom: the canonical String() forms appear only when the regimes are
	// in force, so every pre-adversary checkpoint still resumes.
	if !s.Adversary.IsNone() {
		fmt.Fprintf(&sb, "|adv=%s", s.Adversary.String())
	}
	if !s.Classes.IsNone() {
		fmt.Fprintf(&sb, "|classes=%s", s.Classes.String())
	}
	// The fabric session label binds a coordinator's checkpoint and its
	// workers to one distributed run; same append-only idiom, so
	// non-fabric checkpoints keep their historical fingerprints.
	if s.Fabric != "" {
		fmt.Fprintf(&sb, "|fabric=%s", s.Fabric)
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}

// checkpoint is an open checkpoint file: previously completed outcomes
// plus an append handle for new ones. Appends from concurrent workers
// serialize on the checkpoint's own lock, keeping per-line fsync latency
// off the pool's result path.
type checkpoint struct {
	mu     sync.Mutex
	f      *os.File
	loaded map[int]Outcome
}

// openCheckpoint opens (and, when resuming, replays) the checkpoint at
// path. Without resume an existing file is truncated and restarted; with
// resume a partial trailing line from a kill mid-append is discarded so
// new entries stay line-aligned.
func openCheckpoint(path string, spec *Spec, total int, resume bool) (*checkpoint, error) {
	loaded := map[int]Outcome{}
	valid := int64(0)
	if resume {
		var err error
		loaded, valid, err = readCheckpoint(path, spec, total)
		if err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, err
	}
	ck := &checkpoint{f: f, loaded: loaded}
	if valid == 0 {
		if err := ck.writeLine(ckHeader{V: checkpointVersion, Name: spec.Name,
			Fingerprint: spec.Fingerprint(), Total: total}); err != nil {
			f.Close()
			return nil, err
		}
	}
	return ck, nil
}

// writeLine marshals v and appends it with a trailing newline, syncing so
// a kill loses at most the trial in flight.
func (ck *checkpoint) writeLine(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := ck.f.Write(append(data, '\n')); err != nil {
		return err
	}
	return ck.f.Sync()
}

func (ck *checkpoint) append(i int, o Outcome) error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.writeLine(ckEntry{I: i, O: o})
}

func (ck *checkpoint) close() error { return ck.f.Close() }

// CheckpointFile is the exported handle over the checkpoint substrate
// for out-of-process coordinators (internal/fabric): the same header
// validation, fsync-per-line appends, and torn-tail recovery the local
// Runner uses, so a fabric coordinator's on-disk state is an ordinary
// checkpoint — resumable, foreign-spec-rejecting, kill-tolerant.
type CheckpointFile struct {
	ck     *checkpoint
	loaded map[int]Outcome
}

// OpenCheckpointFile opens (resuming if asked) a checkpoint for the
// spec's expanded work-list of the given total size. Loaded returns the
// outcomes replayed from disk.
func OpenCheckpointFile(path string, spec *Spec, total int, resume bool) (*CheckpointFile, error) {
	ck, err := openCheckpoint(path, spec, total, resume)
	if err != nil {
		return nil, err
	}
	return &CheckpointFile{ck: ck, loaded: ck.loaded}, nil
}

// Loaded is the set of trial outcomes replayed from disk on open.
func (c *CheckpointFile) Loaded() map[int]Outcome { return c.loaded }

// Append durably records one completed trial (safe for concurrent use).
func (c *CheckpointFile) Append(i int, o Outcome) error { return c.ck.append(i, o) }

// Close closes the underlying file.
func (c *CheckpointFile) Close() error { return c.ck.close() }

// readCheckpoint replays a checkpoint file, validating the header against
// the spec. It returns the completed outcomes and the byte offset of the
// last fully written line. A missing file is an empty checkpoint; a
// truncated final line (kill mid-append) is ignored and everything
// before it counts.
func readCheckpoint(path string, spec *Spec, total int) (map[int]Outcome, int64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[int]Outcome{}, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	size := int64(0)
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}

	loaded := map[int]Outcome{}
	var offset, valid int64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		offset += int64(len(line)) + 1
		if first {
			first = false
			var h ckHeader
			if err := json.Unmarshal(line, &h); err != nil {
				return nil, 0, fmt.Errorf("harness: corrupt checkpoint header in %s: %w", path, err)
			}
			if h.V != checkpointVersion {
				return nil, 0, fmt.Errorf("harness: checkpoint %s has version %d, want %d", path, h.V, checkpointVersion)
			}
			if h.Fingerprint != spec.Fingerprint() {
				return nil, 0, fmt.Errorf("harness: checkpoint %s was written by a different spec (fingerprint mismatch)", path)
			}
			if h.Total != total {
				return nil, 0, fmt.Errorf("harness: checkpoint %s expects %d trials, spec expands to %d", path, h.Total, total)
			}
			valid = offset
			continue
		}
		var e ckEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// A partial trailing line from an interrupted append: stop
			// replaying here and redo the rest of the work-list.
			break
		}
		if e.I < 0 || e.I >= total {
			return nil, 0, fmt.Errorf("harness: checkpoint %s entry index %d out of range [0,%d)", path, e.I, total)
		}
		loaded[e.I] = e.O
		valid = offset
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if valid > size {
		// The final accepted line had no trailing newline; rewrite it on
		// resume rather than appending onto it.
		valid = 0
		loaded = map[int]Outcome{}
	}
	return loaded, valid, nil
}
