package linalg

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"algossip/internal/gf"
)

// ErrSingular is returned by Inverse for non-invertible matrices.
var ErrSingular = errors.New("linalg: matrix is singular")

// Matrix is a dense rows x cols matrix over a finite field. RLNC decoding
// is inversion of the coefficient matrix; this type makes that structure
// explicit and testable (decode == multiply by the inverse), and serves as
// the reference implementation the incremental RankMatrix is validated
// against.
type Matrix struct {
	f    gf.Field
	rows int
	cols int
	data []gf.Elem // row-major
}

// NewMatrix returns a zero rows x cols matrix over f.
func NewMatrix(f gf.Field, rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic("linalg: matrix dimensions must be positive")
	}
	return &Matrix{f: f, rows: rows, cols: cols, data: make([]gf.Elem, rows*cols)}
}

// Identity returns the n x n identity matrix over f.
func Identity(f gf.Field, n int) *Matrix {
	m := NewMatrix(f, n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// RandomMatrix returns a rows x cols matrix with uniform entries.
func RandomMatrix(f gf.Field, rows, cols int, rng *rand.Rand) *Matrix {
	m := NewMatrix(f, rows, cols)
	for i := range m.data {
		m.data[i] = gf.Rand(f, rng)
	}
	return m
}

// FromRows builds a matrix from row slices (copied).
func FromRows(f gf.Field, rows [][]gf.Elem) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows needs a non-empty row set")
	}
	m := NewMatrix(f, len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("linalg: ragged rows")
		}
		copy(m.data[i*m.cols:], r)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns entry (i, j).
func (m *Matrix) At(i, j int) gf.Elem { return m.data[i*m.cols+j] }

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, v gf.Elem) { m.data[i*m.cols+j] = v }

// Row returns row i; the slice aliases internal storage.
func (m *Matrix) Row(i int) []gf.Elem { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns an independent copy.
func (m *Matrix) Clone() *Matrix {
	cp := NewMatrix(m.f, m.rows, m.cols)
	copy(cp.data, m.data)
	return cp
}

// Equal reports whether both matrices have identical shape and entries.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i := range m.data {
		if m.data[i] != other.data[i] {
			return false
		}
	}
	return true
}

// Mul returns m · other. It panics when the inner dimensions disagree.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.cols != other.rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d · %dx%d",
			m.rows, m.cols, other.rows, other.cols))
	}
	out := NewMatrix(m.f, m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		outRow := out.Row(i)
		for kk := 0; kk < m.cols; kk++ {
			c := m.At(i, kk)
			if c == 0 {
				continue
			}
			m.f.AXPY(outRow, other.Row(kk), c)
		}
	}
	return out
}

// MulVec returns m · v for a column vector v of length Cols.
func (m *Matrix) MulVec(v []gf.Elem) []gf.Elem {
	if len(v) != m.cols {
		panic("linalg: vector length mismatch")
	}
	out := make([]gf.Elem, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.f.DotProduct(m.Row(i), v)
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.f, m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Rank returns the rank via the incremental eliminator.
func (m *Matrix) Rank() int {
	rm := NewRankMatrix(m.f, m.cols, 0)
	for i := 0; i < m.rows; i++ {
		rm.Add(m.Row(i), nil)
	}
	return rm.Rank()
}

// Inverse returns m⁻¹ by Gauss-Jordan elimination on [m | I]. It returns
// ErrSingular for non-square or rank-deficient matrices.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, ErrSingular
	}
	n := m.rows
	f := m.f
	// Augmented working copy [A | I].
	work := make([][]gf.Elem, n)
	for i := 0; i < n; i++ {
		row := make([]gf.Elem, 2*n)
		copy(row, m.Row(i))
		row[n+i] = 1
		work[i] = row
	}
	for col := 0; col < n; col++ {
		// Find a pivot at or below the diagonal.
		pivot := -1
		for r := col; r < n; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		work[col], work[pivot] = work[pivot], work[col]
		if c := work[col][col]; c != 1 {
			f.Scale(work[col], f.Inv(c))
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if c := work[r][col]; c != 0 {
				f.AXPY(work[r], work[col], f.Neg(c))
			}
		}
	}
	out := NewMatrix(f, n, n)
	for i := 0; i < n; i++ {
		copy(out.Row(i), work[i][n:])
	}
	return out, nil
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("%dx%d over %s\n", m.rows, m.cols, m.f.Name())
	for i := 0; i < m.rows; i++ {
		s += fmt.Sprintln(m.Row(i))
	}
	return s
}
