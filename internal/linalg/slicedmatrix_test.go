package linalg

import (
	"bytes"
	"testing"

	"math/rand/v2"

	"algossip/internal/gf"
)

// slicedTestField builds GF(2^m) directly for the sliced backend tests.
func slicedTestField(t testing.TB, m int) *gf.GF2m {
	t.Helper()
	f, err := gf.NewGF2m(m)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// packCoeffs packs a []gf.Elem coefficient row into a fresh SlicedVec.
func packCoeffs(f *gf.GF2m, coeffs []gf.Elem) SlicedVec {
	b := make([]byte, len(coeffs))
	for i, c := range coeffs {
		b[i] = byte(c)
	}
	v := make(SlicedVec, f.M()*gf.SlicedWords(len(coeffs)))
	f.PackSliced(v, b)
	return v
}

// packBytes packs a []byte payload row into a fresh SlicedVec.
func packBytes(f *gf.GF2m, row []byte) SlicedVec {
	v := make(SlicedVec, f.M()*gf.SlicedWords(len(row)))
	f.PackSliced(v, row)
	return v
}

// TestSlicedMatchesRankMatrix drives a SlicedMatrix and a generic
// RankMatrix with the same random row stream for m ∈ {2, 4, 8} and
// requires identical helpfulness verdicts, ranks, WouldHelp answers,
// random-combination emissions (same RNG consumption), and Solve output.
// Widths straddle the one-word boundary (cols/extra ≤ 64 and > 64).
func TestSlicedMatchesRankMatrix(t *testing.T) {
	cases := []struct{ m, cols, extra int }{
		{2, 9, 5},
		{4, 33, 70},
		{4, 100, 40}, // m=4 two-block: exercises the lo/hi pivot partition
		{8, 70, 17},  // m=8 two-block: the fused kernels
		{8, 130, 130},
	}
	for _, tc := range cases {
		f := slicedTestField(t, tc.m)
		t.Run(f.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(uint64(tc.m), uint64(tc.cols)))
			gen := NewRankMatrix(f, tc.cols, tc.extra)
			slc := NewSlicedMatrix(f, tc.cols, tc.extra)

			emitA := rand.New(rand.NewPCG(7, 9))
			emitB := rand.New(rand.NewPCG(7, 9))
			for step := 0; gen.Rank() < tc.cols; step++ {
				if step > 200*tc.cols {
					t.Fatal("matrices failed to reach full rank")
				}
				coeffs := gf.RandVector(f, tc.cols, rng)
				payload := gf.RandBytes(f, tc.extra, rng)
				sc, sp := packCoeffs(f, coeffs), packBytes(f, payload)

				if gen.WouldHelp(coeffs) != slc.WouldHelp(sc) {
					t.Fatalf("step %d: WouldHelp disagrees", step)
				}
				gotG := gen.Add(coeffs, payload)
				gotS := slc.AddOwned(sc, sp)
				if gotG != gotS {
					t.Fatalf("step %d: helpfulness disagrees (generic %v, sliced %v)", step, gotG, gotS)
				}
				if gen.Rank() != slc.Rank() {
					t.Fatalf("step %d: rank diverged (%d vs %d)", step, gen.Rank(), slc.Rank())
				}
				// Stored rows must be value-identical: emitting with equally
				// seeded RNGs draws the same coefficients over the same rows.
				if gen.Rank() > 0 {
					wantC, wantP := gen.RandomCombination(emitA)
					outC := make(SlicedVec, slc.Stride())
					outP := make(SlicedVec, slc.PayStride())
					slc.RandomCombinationInto(emitB, outC, outP)
					gotC := make([]byte, tc.cols)
					f.UnpackSliced(gotC, outC)
					for i := range wantC {
						if gotC[i] != byte(wantC[i]) {
							t.Fatalf("step %d: emitted coefficient %d differs", step, i)
						}
					}
					gotP := make([]byte, tc.extra)
					f.UnpackSliced(gotP, outP)
					if !bytes.Equal(gotP, wantP) {
						t.Fatalf("step %d: emitted payload differs", step)
					}
				}
			}

			wantSolve, err := gen.Solve()
			if err != nil {
				t.Fatal(err)
			}
			gotSolve, err := slc.Solve()
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantSolve {
				if !bytes.Equal(gotSolve[i], wantSolve[i]) {
					t.Fatalf("Solve row %d differs", i)
				}
			}
			// Solve preserves the row space: a combination of old rows is
			// still unhelpful, a fresh unit row outside the space is caught
			// consistently.
			if slc.WouldHelp(slc.Row(0).Clone()) {
				t.Fatal("row space changed by Solve")
			}
		})
	}
}

// TestSlicedMatrixRejectsDependentRows checks basic echelon behavior
// without the generic reference in the loop.
func TestSlicedMatrixRejectsDependentRows(t *testing.T) {
	f := slicedTestField(t, 8)
	m := NewSlicedMatrix(f, 10, 0)
	row := make([]byte, 10)
	row[3] = 7
	v := packBytes(f, row)
	if !m.AddOwned(v.Clone(), nil) {
		t.Fatal("first row must be helpful")
	}
	// Any scalar multiple reduces to zero.
	scaled := make([]byte, 10)
	scaled[3] = byte(f.Mul(7, 29))
	if m.AddOwned(packBytes(f, scaled), nil) {
		t.Fatal("dependent row accepted")
	}
	if m.Rank() != 1 {
		t.Fatalf("rank = %d, want 1", m.Rank())
	}
	if !m.WouldHelp(packBytes(f, []byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0})) {
		t.Fatal("independent unit row must help")
	}
}

// TestSlicedMatrixZeroAllocSteadyState pins the no-allocation contract of
// the sliced hot path once the matrix is full.
func TestSlicedMatrixZeroAllocSteadyState(t *testing.T) {
	f := slicedTestField(t, 8)
	const cols, extra = 96, 64
	m := NewSlicedMatrix(f, cols, extra)
	rng := rand.New(rand.NewPCG(3, 5))
	for guard := 0; !m.Full(); guard++ {
		if guard > 100*cols {
			t.Fatal("never reached full rank")
		}
		m.AddOwned(packBytes(f, gf.RandBytes(f, cols, rng)), packBytes(f, gf.RandBytes(f, extra, rng)))
	}
	out := make(SlicedVec, m.Stride())
	pay := make(SlicedVec, m.PayStride())
	allocs := testing.AllocsPerRun(100, func() {
		m.RandomCombinationInto(rng, out, pay)
		if m.WouldHelp(out) {
			t.Fatal("full matrix cannot be helped")
		}
		if m.AddOwned(out, pay) {
			t.Fatal("full matrix cannot gain rank")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady state allocated %.1f per cycle, want 0", allocs)
	}
}
