package linalg

import (
	"crypto/subtle"
	"errors"
	"math/bits"
	"math/rand/v2"

	"algossip/internal/gf"
)

// BitVec is a packed vector over GF(2), 64 coordinates per word.
type BitVec []uint64

// NewBitVec returns an all-zero vector with the given number of bits.
func NewBitVec(nbits int) BitVec {
	return make(BitVec, (nbits+63)/64)
}

// Set sets bit i to 1.
func (v BitVec) Set(i int) { v[i/64] |= 1 << (uint(i) % 64) }

// Clear sets bit i to 0.
func (v BitVec) Clear(i int) { v[i/64] &^= 1 << (uint(i) % 64) }

// Get reports whether bit i is 1.
func (v BitVec) Get(i int) bool { return v[i/64]&(1<<(uint(i)%64)) != 0 }

// Xor performs v ^= w element-wise, through the tier-dispatched XOR
// kernel. w must not be longer than v.
func (v BitVec) Xor(w BitVec) {
	gf.XorWords(v, w)
}

// Or performs v |= w element-wise. w must not be longer than v.
func (v BitVec) Or(w BitVec) {
	for i, x := range w {
		v[i] |= x
	}
}

// Zero clears every bit in place.
func (v BitVec) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// IsZero reports whether every bit is 0.
func (v BitVec) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// OnesCount returns the number of set bits.
func (v BitVec) OnesCount() int {
	total := 0
	for _, x := range v {
		total += bits.OnesCount64(x)
	}
	return total
}

// Clone returns an independent copy of v.
func (v BitVec) Clone() BitVec {
	return append(BitVec(nil), v...)
}

// LowestSet returns the index of the lowest set bit, or -1 if v is zero.
func (v BitVec) LowestSet() int {
	for i, x := range v {
		if x != 0 {
			return i*64 + bits.TrailingZeros64(x)
		}
	}
	return -1
}

// BitMatrix maintains rows over GF(2) in row-echelon form using packed
// 64-bit words, optionally carrying an augmented []byte payload per row
// (one byte-encoded GF(2) symbol per byte, the same encoding the generic
// backend uses) so payload-carrying GF(2) simulations get the word-wise
// XOR path end to end. A rank update costs O(rank * cols / 64) word
// operations plus O(rank * extra) XOR-ed payload bytes.
//
// Memory behavior: surviving rows live in a matrix-owned arena allocated
// in bulk (at most cols rows can ever be retained), and elimination
// scratch is reused across calls, so the steady-state Add/WouldHelp path
// performs no allocations and never retains caller memory.
//
// The zero value is not usable; construct with NewBitMatrix or
// NewBitMatrixPayload.
type BitMatrix struct {
	cols  int
	extra int
	words int // words per packed row
	rows  []BitVec
	pay   [][]byte // payload parts, parallel to rows (nil when extra == 0)
	pivot []int

	arenaC   []uint64 // coefficient arena; rows are carved off its front
	arenaP   []byte   // payload arena
	scratchC BitVec   // reusable reduce buffer (coefficients)
}

// NewBitMatrix returns an empty GF(2) matrix with the given number of
// columns and no payload.
func NewBitMatrix(cols int) *BitMatrix {
	return NewBitMatrixPayload(cols, 0)
}

// NewBitMatrixPayload returns an empty GF(2) matrix with cols coefficient
// columns and extra augmented payload bytes per row.
func NewBitMatrixPayload(cols, extra int) *BitMatrix {
	if cols <= 0 {
		panic("linalg: cols must be positive")
	}
	if extra < 0 {
		panic("linalg: extra must be non-negative")
	}
	return &BitMatrix{cols: cols, extra: extra, words: (cols + 63) / 64}
}

// Cols returns the number of columns.
func (m *BitMatrix) Cols() int { return m.cols }

// Extra returns the number of augmented payload bytes per row.
func (m *BitMatrix) Extra() int { return m.extra }

// Words returns the number of 64-bit words per packed row.
func (m *BitMatrix) Words() int { return m.words }

// Rank returns the number of independent rows stored.
func (m *BitMatrix) Rank() int { return len(m.rows) }

// Full reports whether rank equals cols.
func (m *BitMatrix) Full() bool { return len(m.rows) == m.cols }

// reduce eliminates (row, pay) in place against the echelon rows and
// returns the pivot bit, or -1 if the row reduced to zero. A nil pay
// skips payload elimination (coefficient-only queries).
//
// The coefficient-only one- and two-word cases (k <= 128, the common
// simulation sizes) run branchless: the pivot-bit test becomes an
// all-ones/all-zeros mask, so the 50%-taken row-XOR branch — a
// guaranteed mispredict on random coded traffic — disappears from the
// inner loop.
func (m *BitMatrix) reduce(row BitVec, pay []byte) int {
	if pay == nil {
		switch m.words {
		case 1:
			r0 := row[0]
			for i, p := range m.pivot {
				mask := -((r0 >> uint(p)) & 1)
				r0 ^= m.rows[i][0] & mask
			}
			row[0] = r0
		case 2:
			r0, r1 := row[0], row[1]
			for i, p := range m.pivot {
				w := r0
				if p >= 64 {
					w = r1
				}
				mask := -((w >> (uint(p) % 64)) & 1)
				er := m.rows[i]
				r0 ^= er[0] & mask
				r1 ^= er[1] & mask
			}
			row[0], row[1] = r0, r1
		default:
			for i, p := range m.pivot {
				if row.Get(p) {
					row.Xor(m.rows[i])
				}
			}
		}
		return row.LowestSet()
	}
	for i, p := range m.pivot {
		if row.Get(p) {
			row.Xor(m.rows[i])
			subtle.XORBytes(pay, pay, m.pay[i])
		}
	}
	return row.LowestSet()
}

// allocRow carves one coefficient row (and payload row when extra > 0)
// off the arena, growing it in bulk on first use. At most cols rows are
// ever retained, so the arena is sized once and rows stay contiguous —
// the reduce loop walks them in allocation-order memory.
func (m *BitMatrix) allocRow() (BitVec, []byte) {
	if len(m.arenaC) < m.words {
		m.arenaC = make([]uint64, m.cols*m.words)
	}
	row := BitVec(m.arenaC[:m.words:m.words])
	m.arenaC = m.arenaC[m.words:]
	var pay []byte
	if m.extra > 0 {
		if len(m.arenaP) < m.extra {
			m.arenaP = make([]byte, m.cols*m.extra)
		}
		pay = m.arenaP[:m.extra:m.extra]
		m.arenaP = m.arenaP[m.extra:]
	}
	return row, pay
}

// insert places an already-reduced row with pivot bit p, keeping pivots
// strictly increasing. The row (and payload) are copied into the arena;
// the caller keeps ownership of its buffers.
func (m *BitMatrix) insert(row BitVec, pay []byte, p int) {
	if m.rows == nil {
		// Rank can only reach cols: size the bookkeeping once so inserts
		// never regrow (and the GC never rescans a growing pointer slice).
		m.rows = make([]BitVec, 0, m.cols)
		m.pivot = make([]int, 0, m.cols)
		if m.extra > 0 {
			m.pay = make([][]byte, 0, m.cols)
		}
	}
	rowC, rowP := m.allocRow()
	copy(rowC, row)
	at := len(m.rows)
	for i, q := range m.pivot {
		if q > p {
			at = i
			break
		}
	}
	m.rows = append(m.rows, nil)
	m.pivot = append(m.pivot, 0)
	copy(m.rows[at+1:], m.rows[at:])
	copy(m.pivot[at+1:], m.pivot[at:])
	m.rows[at] = rowC
	m.pivot[at] = p
	if m.extra > 0 {
		copy(rowP, pay)
		m.pay = append(m.pay, nil)
		copy(m.pay[at+1:], m.pay[at:])
		m.pay[at] = rowP
	}
}

// Add inserts the row if independent, reporting whether the rank
// increased. The input is consumed (reduced in place, then copied into
// the matrix arena on success); pass a copy if the caller needs it again.
// Payload-carrying matrices require AddPayload.
func (m *BitMatrix) Add(row BitVec) bool {
	if m.extra > 0 {
		panic("linalg: payload-carrying BitMatrix needs AddPayload")
	}
	return m.AddPayload(row, nil)
}

// AddPayload inserts the row plus its extra-length payload if the
// coefficient part is independent, reporting whether the rank increased.
// Both inputs are consumed (reduced in place); on success the surviving
// row is copied into the matrix arena, so the caller keeps ownership of
// its (now clobbered) buffers either way.
func (m *BitMatrix) AddPayload(row BitVec, pay []byte) bool {
	if len(pay) != m.extra {
		panic("linalg: payload width mismatch")
	}
	if m.Full() {
		return false // the row space is everything; nothing can help
	}
	if m.extra == 0 {
		pay = nil // no payload rows are kept; take the coefficient-only path
	}
	p := m.reduce(row, pay)
	if p < 0 {
		return false
	}
	m.insert(row, pay, p)
	return true
}

// WouldHelp reports whether the row is independent of the stored rows
// without modifying the matrix or the input. It reduces in a reusable
// scratch buffer: no allocation, no defensive copy for the caller.
func (m *BitMatrix) WouldHelp(row BitVec) bool {
	if m.Full() {
		return false
	}
	if m.scratchC == nil {
		m.scratchC = make(BitVec, m.words)
	}
	copy(m.scratchC, row)
	return m.reduce(m.scratchC, nil) >= 0
}

// Basis returns a copy of the i-th stored echelon row, 0 <= i < Rank().
func (m *BitMatrix) Basis(i int) BitVec {
	return m.rows[i].Clone()
}

// Row returns the i-th stored echelon row. The returned slice aliases
// internal storage and must not be modified.
func (m *BitMatrix) Row(i int) BitVec { return m.rows[i] }

// Payload returns the augmented payload of the i-th stored echelon row
// (nil when extra == 0). Aliases internal storage; must not be modified.
func (m *BitMatrix) Payload(i int) []byte {
	if m.extra == 0 {
		return nil
	}
	return m.pay[i]
}

// RandomCombination returns a uniformly random GF(2) combination of the
// stored rows (each row included independently with probability 1/2).
// It returns nil when the matrix is empty. Payload-carrying matrices
// combine payloads too via RandomCombinationInto; this convenience
// wrapper returns only the coefficient part.
func (m *BitMatrix) RandomCombination(rng *rand.Rand) BitVec {
	if len(m.rows) == 0 {
		return nil
	}
	out := make(BitVec, m.words)
	var pay []byte
	if m.extra > 0 {
		pay = make([]byte, m.extra)
	}
	m.RandomCombinationInto(rng, out, pay)
	return out
}

// RandomCombinationInto fills out (length Words) and pay (length Extra;
// nil when extra == 0) with a uniformly random combination of the stored
// rows, reusing the caller's buffers — the zero-allocation emit path. It
// reports false without drawing randomness when the matrix is empty.
// The random stream consumption (one Uint64 per stored row) is identical
// to the generic backend's gf.Rand-per-row draw over GF(2), so swapping
// backends preserves fixed-seed trajectories.
func (m *BitMatrix) RandomCombinationInto(rng *rand.Rand, out BitVec, pay []byte) bool {
	if len(m.rows) == 0 {
		return false
	}
	if len(out) != m.words {
		panic("linalg: combination width mismatch")
	}
	if len(pay) != m.extra {
		panic("linalg: combination payload width mismatch")
	}
	if m.extra == 0 {
		pay = nil
	}
	out.Zero()
	for i := range pay {
		pay[i] = 0
	}
	if m.extra == 0 {
		// Branchless accumulation for the common packed widths: the coin
		// flip becomes a mask, so the emit loop has no data-dependent
		// branches (one draw per row, exactly as the generic contract).
		switch m.words {
		case 1:
			var a0 uint64
			for _, row := range m.rows {
				mask := -(rng.Uint64() & 1)
				a0 ^= row[0] & mask
			}
			out[0] = a0
			return true
		case 2:
			var a0, a1 uint64
			for _, row := range m.rows {
				mask := -(rng.Uint64() & 1)
				a0 ^= row[0] & mask
				a1 ^= row[1] & mask
			}
			out[0], out[1] = a0, a1
			return true
		}
	}
	for i, row := range m.rows {
		if rng.Uint64()&1 == 1 {
			out.Xor(row)
			if pay != nil {
				subtle.XORBytes(pay, pay, m.pay[i])
			}
		}
	}
	return true
}

// Solve performs full back-substitution and returns the decoded
// payloads: a cols x extra byte matrix whose i-th row is the payload of
// unknown i. It returns ErrNotFullRank when Rank() < Cols. The stored
// rows are reduced in place (which preserves the row space, so further
// Adds remain correct).
func (m *BitMatrix) Solve() ([][]byte, error) {
	if m.extra == 0 {
		return nil, errors.New("linalg: BitMatrix has no payload to solve for")
	}
	if !m.Full() {
		return nil, ErrNotFullRank
	}
	// Pivots are already 1 over GF(2); eliminate above, bottom-up. With
	// full rank, pivot[i] == i for all i.
	for i := m.cols - 1; i >= 0; i-- {
		p := m.pivot[i]
		for j := 0; j < i; j++ {
			if m.rows[j].Get(p) {
				m.rows[j].Xor(m.rows[i])
				subtle.XORBytes(m.pay[j], m.pay[j], m.pay[i])
			}
		}
	}
	out := make([][]byte, m.cols)
	for i := range out {
		out[i] = append([]byte(nil), m.pay[i]...)
	}
	return out, nil
}
