package linalg

import (
	"math/bits"
	"math/rand/v2"
)

// BitVec is a packed vector over GF(2), 64 coordinates per word.
type BitVec []uint64

// NewBitVec returns an all-zero vector with the given number of bits.
func NewBitVec(nbits int) BitVec {
	return make(BitVec, (nbits+63)/64)
}

// Set sets bit i to 1.
func (v BitVec) Set(i int) { v[i/64] |= 1 << (uint(i) % 64) }

// Clear sets bit i to 0.
func (v BitVec) Clear(i int) { v[i/64] &^= 1 << (uint(i) % 64) }

// Get reports whether bit i is 1.
func (v BitVec) Get(i int) bool { return v[i/64]&(1<<(uint(i)%64)) != 0 }

// Xor performs v ^= w element-wise. w must not be longer than v.
func (v BitVec) Xor(w BitVec) {
	for i, x := range w {
		v[i] ^= x
	}
}

// Or performs v |= w element-wise. w must not be longer than v.
func (v BitVec) Or(w BitVec) {
	for i, x := range w {
		v[i] |= x
	}
}

// IsZero reports whether every bit is 0.
func (v BitVec) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// OnesCount returns the number of set bits.
func (v BitVec) OnesCount() int {
	total := 0
	for _, x := range v {
		total += bits.OnesCount64(x)
	}
	return total
}

// Clone returns an independent copy of v.
func (v BitVec) Clone() BitVec {
	return append(BitVec(nil), v...)
}

// LowestSet returns the index of the lowest set bit, or -1 if v is zero.
func (v BitVec) LowestSet() int {
	for i, x := range v {
		if x != 0 {
			return i*64 + bits.TrailingZeros64(x)
		}
	}
	return -1
}

// BitMatrix maintains rows over GF(2) in row-echelon form using packed
// 64-bit words. It is the fast path for rank-only algebraic-gossip
// simulation with q = 2: a rank update costs O(rank * cols / 64).
//
// The zero value is not usable; construct with NewBitMatrix.
type BitMatrix struct {
	cols  int
	rows  []BitVec
	pivot []int
}

// NewBitMatrix returns an empty GF(2) matrix with the given number of
// columns.
func NewBitMatrix(cols int) *BitMatrix {
	if cols <= 0 {
		panic("linalg: cols must be positive")
	}
	return &BitMatrix{cols: cols}
}

// Cols returns the number of columns.
func (m *BitMatrix) Cols() int { return m.cols }

// Rank returns the number of independent rows stored.
func (m *BitMatrix) Rank() int { return len(m.rows) }

// Full reports whether rank equals cols.
func (m *BitMatrix) Full() bool { return len(m.rows) == m.cols }

// reduce eliminates row in place against the echelon rows and returns its
// pivot bit, or -1 if it reduced to zero.
func (m *BitMatrix) reduce(row BitVec) int {
	for i, p := range m.pivot {
		if row.Get(p) {
			row.Xor(m.rows[i])
		}
	}
	return row.LowestSet()
}

// Add inserts the row if independent, reporting whether the rank increased.
// The input is consumed (mutated); pass a copy if the caller needs it again.
func (m *BitMatrix) Add(row BitVec) bool {
	p := m.reduce(row)
	if p < 0 {
		return false
	}
	at := len(m.rows)
	for i, q := range m.pivot {
		if q > p {
			at = i
			break
		}
	}
	m.rows = append(m.rows, nil)
	m.pivot = append(m.pivot, 0)
	copy(m.rows[at+1:], m.rows[at:])
	copy(m.pivot[at+1:], m.pivot[at:])
	m.rows[at] = row
	m.pivot[at] = p
	return true
}

// WouldHelp reports whether the row is independent of the stored rows
// without modifying the matrix or the input.
func (m *BitMatrix) WouldHelp(row BitVec) bool {
	return m.reduce(row.Clone()) >= 0
}

// Basis returns a copy of the i-th stored echelon row, 0 <= i < Rank().
func (m *BitMatrix) Basis(i int) BitVec {
	return m.rows[i].Clone()
}

// RandomCombination returns a uniformly random GF(2) combination of the
// stored rows (each row included independently with probability 1/2).
// It returns nil when the matrix is empty.
func (m *BitMatrix) RandomCombination(rng *rand.Rand) BitVec {
	if len(m.rows) == 0 {
		return nil
	}
	out := NewBitVec(m.cols)
	for _, row := range m.rows {
		if rng.Uint64()&1 == 1 {
			out.Xor(row)
		}
	}
	return out
}
