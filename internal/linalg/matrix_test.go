package linalg

import (
	"errors"
	"testing"
	"testing/quick"

	"algossip/internal/core"
	"algossip/internal/gf"
)

func TestMatrixBasics(t *testing.T) {
	f := gf.MustNew(256)
	m := NewMatrix(f, 2, 3)
	m.Set(0, 0, 5)
	m.Set(1, 2, 7)
	if m.At(0, 0) != 5 || m.At(1, 2) != 7 || m.At(0, 1) != 0 {
		t.Fatal("At/Set wrong")
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatal("dimensions wrong")
	}
	cp := m.Clone()
	cp.Set(0, 0, 9)
	if m.At(0, 0) != 5 {
		t.Fatal("Clone aliases")
	}
	if m.Equal(cp) {
		t.Fatal("Equal wrong after mutation")
	}
	if m.String() == "" {
		t.Fatal("String empty")
	}
}

func TestIdentityMul(t *testing.T) {
	for _, q := range []int{2, 16, 256, 7} {
		f := gf.MustNew(q)
		rng := core.NewRand(uint64(q))
		a := RandomMatrix(f, 5, 5, rng)
		id := Identity(f, 5)
		if !a.Mul(id).Equal(a) || !id.Mul(a).Equal(a) {
			t.Fatalf("%s: identity law fails", f.Name())
		}
	}
}

// TestMulAssociativity: (AB)C == A(BC) over random matrices.
func TestMulAssociativityQuick(t *testing.T) {
	f := gf.MustNew(16)
	check := func(seed uint64) bool {
		rng := core.NewRand(seed)
		a := RandomMatrix(f, 3, 4, rng)
		b := RandomMatrix(f, 4, 2, rng)
		c := RandomMatrix(f, 2, 5, rng)
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := gf.MustNew(4)
	rng := core.NewRand(3)
	a := RandomMatrix(f, 3, 7, rng)
	if !a.Transpose().Transpose().Equal(a) {
		t.Fatal("double transpose is not identity")
	}
	// (AB)^T == B^T A^T.
	b := RandomMatrix(f, 7, 2, rng)
	if !a.Mul(b).Transpose().Equal(b.Transpose().Mul(a.Transpose())) {
		t.Fatal("transpose product law fails")
	}
}

// TestInverseLaw: A·A⁻¹ == I for random invertible matrices, across fields.
func TestInverseLawQuick(t *testing.T) {
	for _, q := range []int{2, 256, 11} {
		f := gf.MustNew(q)
		t.Run(f.Name(), func(t *testing.T) {
			check := func(seed uint64) bool {
				rng := core.NewRand(seed)
				n := 1 + rng.IntN(8)
				a := RandomMatrix(f, n, n, rng)
				inv, err := a.Inverse()
				if errors.Is(err, ErrSingular) {
					return a.Rank() < n // singularity must coincide with rank deficiency
				}
				if err != nil {
					return false
				}
				id := Identity(f, n)
				return a.Mul(inv).Equal(id) && inv.Mul(a).Equal(id)
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestInverseSingular(t *testing.T) {
	f := gf.MustNew(2)
	m := FromRows(f, [][]gf.Elem{{1, 1}, {1, 1}})
	if _, err := m.Inverse(); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	rect := NewMatrix(f, 2, 3)
	if _, err := rect.Inverse(); !errors.Is(err, ErrSingular) {
		t.Fatal("rectangular inverse must fail")
	}
}

// TestDecodeIsInversion demonstrates the RLNC identity the library is built
// on: if Y = C·X for a full-rank coefficient matrix C, then X = C⁻¹·Y —
// and it matches RankMatrix.Solve on the same data.
func TestDecodeIsInversion(t *testing.T) {
	f := gf.MustNew(256)
	rng := core.NewRand(17)
	const k, r = 6, 3
	x := RandomMatrix(f, k, r, rng) // original messages
	var c *Matrix
	for {
		c = RandomMatrix(f, k, k, rng)
		if c.Rank() == k {
			break
		}
	}
	y := c.Mul(x) // received combinations

	// Path 1: explicit inversion.
	inv, err := c.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	decoded := inv.Mul(y)
	if !decoded.Equal(x) {
		t.Fatal("inversion decode mismatch")
	}

	// Path 2: the incremental decoder on augmented rows.
	rm := NewRankMatrix(f, k, r)
	for i := 0; i < k; i++ {
		pay := make([]byte, r)
		for j, s := range y.Row(i) {
			pay[j] = byte(s)
		}
		rm.Add(c.Row(i), pay)
	}
	solved, err := rm.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		for j := 0; j < r; j++ {
			if solved[i][j] != byte(x.At(i, j)) {
				t.Fatalf("RankMatrix.Solve disagrees with inversion at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	f := gf.MustNew(7)
	m := FromRows(f, [][]gf.Elem{{1, 2}, {3, 4}})
	got := m.MulVec([]gf.Elem{5, 6})
	// Over F_7: row0 = 5 + 12 = 17 mod 7 = 3; row1 = 15 + 24 = 39 mod 7 = 4.
	if got[0] != 3 || got[1] != 4 {
		t.Fatalf("MulVec = %v", got)
	}
}

// TestRandomSquareInvertibleFraction sanity-checks the well-known fact that
// a uniform random square matrix over GF(q) is invertible with probability
// ~prod(1-q^-i) (≈ 0.29 for q=2, ≈ 0.996 for q=256).
func TestRandomSquareInvertibleFraction(t *testing.T) {
	rng := core.NewRand(23)
	count := func(q int) float64 {
		f := gf.MustNew(q)
		inv := 0
		const trials = 400
		for i := 0; i < trials; i++ {
			if RandomMatrix(f, 8, 8, rng).Rank() == 8 {
				inv++
			}
		}
		return float64(inv) / trials
	}
	if got := count(2); got < 0.20 || got > 0.40 {
		t.Errorf("GF(2) invertible fraction %.2f, want ~0.29", got)
	}
	if got := count(256); got < 0.95 {
		t.Errorf("GF(256) invertible fraction %.2f, want ~1", got)
	}
}
