// Package linalg provides the linear algebra needed by random linear
// network coding: incremental Gaussian elimination with rank tracking over
// an arbitrary finite field, decoding by back-substitution, and a fast
// bitset specialization for GF(2) used by large-scale simulations.
//
// The central object is the RankMatrix: each gossip node stores the linear
// equations it has received in (non-reduced) row-echelon form. A received
// combination is *helpful* (paper Definition 3) exactly when inserting it
// increases the rank, which the echelon form detects in O(rank * width)
// time.
package linalg

import (
	"errors"
	"math/rand/v2"

	"algossip/internal/gf"
)

// ErrNotFullRank is returned by Solve when the stored equations do not yet
// determine all unknowns.
var ErrNotFullRank = errors.New("linalg: matrix is not full rank")

// RankMatrix maintains a set of rows over a finite field in row-echelon
// form. Each row has a cols-length coefficient part ([]gf.Elem, one symbol
// per unknown) and an extra-length augmented part (a []byte payload row).
// Elimination is driven by the coefficient part only; the payload part is
// carried along with the bulk AddMulSlice/MulSlice kernels, so eliminating
// a whole row costs one table walk (or word-wise XOR) instead of a
// per-symbol scalar loop.
//
// Memory behavior: surviving rows are copied into a matrix-owned arena
// allocated in bulk chunks (at most cols rows can ever be retained), and
// elimination scratch is reused across calls, so the steady-state
// Add/AddOwned/WouldHelp path performs no allocations and never retains
// caller memory.
//
// The zero value is not usable; construct with NewRankMatrix.
type RankMatrix struct {
	f      gf.Field
	cols   int
	extra  int
	rows   [][]gf.Elem // coefficient parts, pivot columns strictly increasing
	pay    [][]byte    // augmented payload parts, parallel to rows (nil entries when extra == 0)
	pivot  []int       // pivot[i] is the pivot column of rows[i]
	pivFac []gf.Elem   // -1/rows[i][pivot[i]], cached at insert time

	arenaC   []gf.Elem // coefficient arena; rows are carved off its front
	arenaP   []byte    // payload arena
	scratchC []gf.Elem // reusable reduce buffer (coefficients)
	scratchP []byte    // reusable reduce buffer (payload)
}

// arenaChunkRows bounds how many rows one arena chunk holds, so huge
// matrices grow incrementally instead of committing cols² memory up
// front while small ones still allocate once.
const arenaChunkRows = 64

// NewRankMatrix returns an empty matrix over field f with cols coefficient
// columns and extra augmented payload bytes per row.
func NewRankMatrix(f gf.Field, cols, extra int) *RankMatrix {
	if cols <= 0 {
		panic("linalg: cols must be positive")
	}
	if extra < 0 {
		panic("linalg: extra must be non-negative")
	}
	return &RankMatrix{f: f, cols: cols, extra: extra}
}

// Cols returns the number of coefficient columns (the number of unknowns).
func (m *RankMatrix) Cols() int { return m.cols }

// Extra returns the number of augmented payload bytes per row.
func (m *RankMatrix) Extra() int { return m.extra }

// Width returns the total row width, cols + extra.
func (m *RankMatrix) Width() int { return m.cols + m.extra }

// Rank returns the number of linearly independent rows stored.
func (m *RankMatrix) Rank() int { return len(m.rows) }

// Full reports whether the matrix has full rank, i.e. the linear system is
// solvable and the node can decode all k initial messages.
func (m *RankMatrix) Full() bool { return len(m.rows) == m.cols }

// Row returns the coefficient part of the i-th stored echelon row. The
// returned slice aliases internal storage and must not be modified.
func (m *RankMatrix) Row(i int) []gf.Elem { return m.rows[i] }

// Payload returns the augmented payload of the i-th stored echelon row (nil
// when extra == 0). The returned slice aliases internal storage and must
// not be modified.
func (m *RankMatrix) Payload(i int) []byte { return m.pay[i] }

// reduce eliminates the row (coeffs, pay) against the stored echelon rows in
// place and returns the pivot column, or -1 if the coefficient part reduced
// to zero. A nil pay skips payload elimination (used by coefficient-only
// queries).
func (m *RankMatrix) reduce(coeffs []gf.Elem, pay []byte) int {
	f := m.f
	for i, p := range m.pivot {
		c := coeffs[p]
		if c == 0 {
			continue
		}
		// row -= (c / rows[i][p]) * rows[i]; the pivot's negated inverse is
		// cached at insert time, so each elimination step costs one Mul
		// instead of a Div+Neg pair.
		factor := f.Mul(c, m.pivFac[i])
		f.AXPY(coeffs, m.rows[i], factor)
		if pay != nil {
			f.AddMulSlice(pay, m.pay[i], factor)
		}
	}
	for j := 0; j < m.cols; j++ {
		if coeffs[j] != 0 {
			return j
		}
	}
	return -1
}

// checkWidths panics on a caller-side width bug (the network-facing
// screens live in rlnc).
func (m *RankMatrix) checkWidths(coeffs []gf.Elem, payload []byte) {
	if len(coeffs) != m.cols {
		panic("linalg: coefficient width mismatch")
	}
	if len(payload) != m.extra {
		panic("linalg: payload width mismatch")
	}
}

// Add inserts the given row — cols coefficients plus an extra-length payload
// (nil when extra == 0) — if it is linearly independent of the stored rows,
// keeping echelon form. It reports whether the rank increased, i.e. whether
// the row was a *helpful message*. The inputs are neither modified nor
// retained (reduction happens in reusable scratch); the caller keeps
// ownership.
func (m *RankMatrix) Add(coeffs []gf.Elem, payload []byte) bool {
	m.checkWidths(coeffs, payload)
	if m.Full() {
		return false // the row space is everything; nothing can help
	}
	m.ensureScratch()
	copy(m.scratchC, coeffs)
	var workP []byte
	if m.extra > 0 {
		copy(m.scratchP, payload)
		workP = m.scratchP
	}
	p := m.reduce(m.scratchC, workP)
	if p < 0 {
		return false
	}
	m.insert(m.scratchC, workP, p)
	return true
}

// AddOwned is the move-semantics insert: it reduces directly in the
// caller's buffers (clobbering them) instead of copying into scratch
// first, then copies the surviving row into the matrix arena. The caller
// must treat the contents as consumed but keeps the buffers themselves —
// the packet-pool recycling contract of the coded hot path.
func (m *RankMatrix) AddOwned(coeffs []gf.Elem, payload []byte) bool {
	m.checkWidths(coeffs, payload)
	if m.Full() {
		return false
	}
	var workP []byte
	if m.extra > 0 {
		workP = payload
	}
	p := m.reduce(coeffs, workP)
	if p < 0 {
		return false
	}
	m.insert(coeffs, workP, p)
	return true
}

// ensureScratch sizes the reusable reduce buffers once.
func (m *RankMatrix) ensureScratch() {
	if m.scratchC == nil {
		m.scratchC = make([]gf.Elem, m.cols)
	}
	if m.extra > 0 && m.scratchP == nil {
		m.scratchP = make([]byte, m.extra)
	}
}

// allocRow carves one coefficient row (and payload row when extra > 0)
// off the arena, growing it chunk-wise. Retained rows end up contiguous
// in memory, which the reduce loop walks in order.
func (m *RankMatrix) allocRow() ([]gf.Elem, []byte) {
	if len(m.arenaC) < m.cols {
		rows := m.cols - len(m.rows) // rows that can still be retained
		if rows > arenaChunkRows {
			rows = arenaChunkRows
		}
		m.arenaC = make([]gf.Elem, rows*m.cols)
		if m.extra > 0 {
			m.arenaP = make([]byte, rows*m.extra)
		}
	}
	rowC := m.arenaC[:m.cols:m.cols]
	m.arenaC = m.arenaC[m.cols:]
	var rowP []byte
	if m.extra > 0 {
		rowP = m.arenaP[:m.extra:m.extra]
		m.arenaP = m.arenaP[m.extra:]
	}
	return rowC, rowP
}

// insert copies an already-reduced row with pivot column p into the
// arena, keeping pivots strictly increasing.
func (m *RankMatrix) insert(coeffs []gf.Elem, pay []byte, p int) {
	rowC, rowP := m.allocRow()
	copy(rowC, coeffs)
	copy(rowP, pay)
	at := len(m.rows)
	for i, q := range m.pivot {
		if q > p {
			at = i
			break
		}
	}
	m.rows = append(m.rows, nil)
	m.pay = append(m.pay, nil)
	m.pivot = append(m.pivot, 0)
	m.pivFac = append(m.pivFac, 0)
	copy(m.rows[at+1:], m.rows[at:])
	copy(m.pay[at+1:], m.pay[at:])
	copy(m.pivot[at+1:], m.pivot[at:])
	copy(m.pivFac[at+1:], m.pivFac[at:])
	m.rows[at] = rowC
	m.pay[at] = rowP
	m.pivot[at] = p
	m.pivFac[at] = m.f.Neg(m.f.Inv(rowC[p]))
}

// WouldHelp reports whether the given coefficient vector (length Cols) is
// linearly independent of the stored rows, without modifying the matrix or
// the input — reduction happens in reusable scratch, so the query neither
// allocates nor takes a defensive copy. This is the helpful-message test
// of Definition 3.
func (m *RankMatrix) WouldHelp(coeffs []gf.Elem) bool {
	if len(coeffs) != m.cols {
		panic("linalg: coefficient width mismatch")
	}
	if m.Full() {
		return false
	}
	m.ensureScratch()
	copy(m.scratchC, coeffs)
	return m.reduce(m.scratchC, nil) >= 0
}

// RandomCombination returns a fresh uniformly random linear combination of
// the stored rows — exactly the message an algebraic-gossip node transmits
// — as a coefficient vector and payload row (nil payload when extra == 0).
// It returns (nil, nil) when the matrix is empty (the node knows nothing
// yet).
func (m *RankMatrix) RandomCombination(rng *rand.Rand) ([]gf.Elem, []byte) {
	if len(m.rows) == 0 {
		return nil, nil
	}
	coeffs := make([]gf.Elem, m.cols)
	var pay []byte
	if m.extra > 0 {
		pay = make([]byte, m.extra)
	}
	m.RandomCombinationInto(rng, coeffs, pay)
	return coeffs, pay
}

// RandomCombinationInto fills coeffs (length Cols) and pay (length Extra;
// nil when extra == 0) with a uniformly random combination of the stored
// rows, reusing the caller's buffers — the zero-allocation emit path. It
// reports false without drawing randomness when the matrix is empty.
func (m *RankMatrix) RandomCombinationInto(rng *rand.Rand, coeffs []gf.Elem, pay []byte) bool {
	if len(m.rows) == 0 {
		return false
	}
	m.checkWidths(coeffs, pay)
	clear(coeffs)
	clear(pay)
	for i, row := range m.rows {
		c := gf.Rand(m.f, rng)
		m.f.AXPY(coeffs, row, c)
		if pay != nil {
			m.f.AddMulSlice(pay, m.pay[i], c)
		}
	}
	return true
}

// Solve performs full back-substitution (RREF) and returns the decoded
// payloads: a cols x extra byte matrix whose i-th row is the payload of
// unknown i. It returns ErrNotFullRank when Rank() < Cols. The stored rows
// are reduced in place (which preserves the row space, so further Adds
// remain correct).
func (m *RankMatrix) Solve() ([][]byte, error) {
	if !m.Full() {
		return nil, ErrNotFullRank
	}
	f := m.f
	// Normalize pivots to 1 and eliminate above, bottom-up. With full rank,
	// pivot[i] == i for all i.
	for i := m.cols - 1; i >= 0; i-- {
		row := m.rows[i]
		p := m.pivot[i]
		if c := row[p]; c != 1 {
			inv := f.Inv(c)
			f.Scale(row, inv)
			f.MulSlice(m.pay[i], inv)
			m.pivFac[i] = f.Neg(1) // pivot normalized; keep the cache honest
		}
		for j := 0; j < i; j++ {
			above := m.rows[j]
			if c := above[p]; c != 0 {
				nc := f.Neg(c)
				f.AXPY(above, row, nc)
				f.AddMulSlice(m.pay[j], m.pay[i], nc)
			}
		}
	}
	out := make([][]byte, m.cols)
	for i := range out {
		out[i] = append([]byte(nil), m.pay[i]...)
	}
	return out, nil
}

// Clone returns a deep copy of the matrix.
func (m *RankMatrix) Clone() *RankMatrix {
	cp := &RankMatrix{
		f:      m.f,
		cols:   m.cols,
		extra:  m.extra,
		rows:   make([][]gf.Elem, len(m.rows)),
		pay:    make([][]byte, len(m.pay)),
		pivot:  append([]int(nil), m.pivot...),
		pivFac: append([]gf.Elem(nil), m.pivFac...),
	}
	for i, r := range m.rows {
		cp.rows[i] = append([]gf.Elem(nil), r...)
	}
	for i, r := range m.pay {
		if r != nil {
			cp.pay[i] = append([]byte(nil), r...)
		}
	}
	return cp
}

// Rank computes the rank of an arbitrary set of rows (coefficient part
// only) over field f without retaining them.
func Rank(f gf.Field, rows [][]gf.Elem, cols int) int {
	m := NewRankMatrix(f, cols, 0)
	for _, r := range rows {
		if len(r) < cols {
			panic("linalg: row shorter than cols")
		}
		m.Add(r[:cols], nil)
	}
	return m.Rank()
}
