// Package linalg provides the linear algebra needed by random linear
// network coding: incremental Gaussian elimination with rank tracking over
// an arbitrary finite field, decoding by back-substitution, and a fast
// bitset specialization for GF(2) used by large-scale simulations.
//
// The central object is the RankMatrix: each gossip node stores the linear
// equations it has received in (non-reduced) row-echelon form. A received
// combination is *helpful* (paper Definition 3) exactly when inserting it
// increases the rank, which the echelon form detects in O(rank * width)
// time.
package linalg

import (
	"errors"
	"math/rand/v2"

	"algossip/internal/gf"
)

// ErrNotFullRank is returned by Solve when the stored equations do not yet
// determine all unknowns.
var ErrNotFullRank = errors.New("linalg: matrix is not full rank")

// RankMatrix maintains a set of rows over a finite field in row-echelon
// form. Each row has cols coefficient entries followed by extra augmented
// entries (the RLNC payload); elimination is driven by the coefficient part
// only, with the augmented part carried along.
//
// The zero value is not usable; construct with NewRankMatrix.
type RankMatrix struct {
	f     gf.Field
	cols  int
	extra int
	rows  [][]gf.Elem // echelon rows, pivot columns strictly increasing
	pivot []int       // pivot[i] is the pivot column of rows[i]
}

// NewRankMatrix returns an empty matrix over field f with cols coefficient
// columns and extra augmented columns per row.
func NewRankMatrix(f gf.Field, cols, extra int) *RankMatrix {
	if cols <= 0 {
		panic("linalg: cols must be positive")
	}
	if extra < 0 {
		panic("linalg: extra must be non-negative")
	}
	return &RankMatrix{f: f, cols: cols, extra: extra}
}

// Cols returns the number of coefficient columns (the number of unknowns).
func (m *RankMatrix) Cols() int { return m.cols }

// Extra returns the number of augmented columns per row.
func (m *RankMatrix) Extra() int { return m.extra }

// Width returns the total row width, cols + extra.
func (m *RankMatrix) Width() int { return m.cols + m.extra }

// Rank returns the number of linearly independent rows stored.
func (m *RankMatrix) Rank() int { return len(m.rows) }

// Full reports whether the matrix has full rank, i.e. the linear system is
// solvable and the node can decode all k initial messages.
func (m *RankMatrix) Full() bool { return len(m.rows) == m.cols }

// Row returns the i-th stored echelon row. The returned slice aliases
// internal storage and must not be modified.
func (m *RankMatrix) Row(i int) []gf.Elem { return m.rows[i] }

// reduce eliminates row against the stored echelon rows in place and returns
// the pivot column, or -1 if the coefficient part reduced to zero.
func (m *RankMatrix) reduce(row []gf.Elem) int {
	f := m.f
	for i, p := range m.pivot {
		c := row[p]
		if c == 0 {
			continue
		}
		// row -= (c / rows[i][p]) * rows[i]
		factor := f.Div(c, m.rows[i][p])
		f.AXPY(row, m.rows[i], f.Neg(factor))
	}
	for j := 0; j < m.cols; j++ {
		if row[j] != 0 {
			return j
		}
	}
	return -1
}

// Add inserts the given row (length Width) if it is linearly independent of
// the stored rows, keeping echelon form. It reports whether the rank
// increased — i.e. whether the row was a *helpful message*. The input slice
// is copied; the caller keeps ownership.
func (m *RankMatrix) Add(row []gf.Elem) bool {
	if len(row) != m.Width() {
		panic("linalg: row width mismatch")
	}
	work := make([]gf.Elem, len(row))
	copy(work, row)
	p := m.reduce(work)
	if p < 0 {
		return false
	}
	m.insert(work, p)
	return true
}

// insert places an already-reduced row with pivot column p, keeping pivots
// strictly increasing.
func (m *RankMatrix) insert(row []gf.Elem, p int) {
	at := len(m.rows)
	for i, q := range m.pivot {
		if q > p {
			at = i
			break
		}
	}
	m.rows = append(m.rows, nil)
	m.pivot = append(m.pivot, 0)
	copy(m.rows[at+1:], m.rows[at:])
	copy(m.pivot[at+1:], m.pivot[at:])
	m.rows[at] = row
	m.pivot[at] = p
}

// WouldHelp reports whether the given coefficient vector (length Cols) is
// linearly independent of the stored rows, without modifying the matrix.
// This is the helpful-message test of Definition 3.
func (m *RankMatrix) WouldHelp(coeffs []gf.Elem) bool {
	if len(coeffs) != m.cols {
		panic("linalg: coefficient width mismatch")
	}
	work := make([]gf.Elem, m.Width())
	copy(work, coeffs)
	return m.reduce(work) >= 0
}

// RandomCombination returns a fresh row that is a uniformly random linear
// combination of the stored rows — exactly the message an algebraic-gossip
// node transmits. It returns nil when the matrix is empty (the node knows
// nothing yet).
func (m *RankMatrix) RandomCombination(rng *rand.Rand) []gf.Elem {
	if len(m.rows) == 0 {
		return nil
	}
	out := make([]gf.Elem, m.Width())
	for _, row := range m.rows {
		c := gf.Rand(m.f, rng)
		m.f.AXPY(out, row, c)
	}
	return out
}

// Solve performs full back-substitution (RREF) and returns the decoded
// augmented part: a cols x extra matrix whose i-th row is the payload of
// unknown i. It returns ErrNotFullRank when Rank() < Cols. The stored rows
// are reduced in place (which preserves the row space, so further Adds
// remain correct).
func (m *RankMatrix) Solve() ([][]gf.Elem, error) {
	if !m.Full() {
		return nil, ErrNotFullRank
	}
	f := m.f
	// Normalize pivots to 1 and eliminate above, bottom-up. With full rank,
	// pivot[i] == i for all i.
	for i := m.cols - 1; i >= 0; i-- {
		row := m.rows[i]
		p := m.pivot[i]
		if c := row[p]; c != 1 {
			f.Scale(row, f.Inv(c))
		}
		for j := 0; j < i; j++ {
			above := m.rows[j]
			if c := above[p]; c != 0 {
				f.AXPY(above, row, f.Neg(c))
			}
		}
	}
	out := make([][]gf.Elem, m.cols)
	for i := range out {
		payload := make([]gf.Elem, m.extra)
		copy(payload, m.rows[i][m.cols:])
		out[i] = payload
	}
	return out, nil
}

// Clone returns a deep copy of the matrix.
func (m *RankMatrix) Clone() *RankMatrix {
	cp := &RankMatrix{
		f:     m.f,
		cols:  m.cols,
		extra: m.extra,
		rows:  make([][]gf.Elem, len(m.rows)),
		pivot: append([]int(nil), m.pivot...),
	}
	for i, r := range m.rows {
		cp.rows[i] = append([]gf.Elem(nil), r...)
	}
	return cp
}

// Rank computes the rank of an arbitrary set of rows (coefficient part
// only) over field f without retaining them.
func Rank(f gf.Field, rows [][]gf.Elem, cols int) int {
	m := NewRankMatrix(f, cols, 0)
	for _, r := range rows {
		if len(r) < cols {
			panic("linalg: row shorter than cols")
		}
		m.Add(r[:cols])
	}
	return m.Rank()
}
