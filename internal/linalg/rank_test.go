package linalg

import (
	"errors"
	"testing"
	"testing/quick"

	"algossip/internal/core"
	"algossip/internal/gf"
)

func TestRankMatrixBasic(t *testing.T) {
	f := gf.MustNew(256)
	m := NewRankMatrix(f, 3, 0)
	if m.Rank() != 0 || m.Full() {
		t.Fatal("fresh matrix should be empty")
	}
	if !m.Add([]gf.Elem{1, 2, 3}, nil) {
		t.Fatal("first row must be helpful")
	}
	if m.Add([]gf.Elem{1, 2, 3}, nil) {
		t.Fatal("duplicate row must not be helpful")
	}
	if m.Add([]gf.Elem{2, 4, 6}, nil) {
		t.Fatal("scaled row must not be helpful")
	}
	if !m.Add([]gf.Elem{0, 1, 1}, nil) {
		t.Fatal("independent row must be helpful")
	}
	if m.Rank() != 2 {
		t.Fatalf("rank = %d, want 2", m.Rank())
	}
	if !m.Add([]gf.Elem{0, 0, 5}, nil) {
		t.Fatal("third independent row must be helpful")
	}
	if !m.Full() {
		t.Fatal("matrix should be full rank")
	}
	if m.Add([]gf.Elem{7, 7, 7}, nil) {
		t.Fatal("no row can help a full-rank matrix")
	}
}

func TestRankMatrixZeroRow(t *testing.T) {
	f := gf.MustNew(4)
	m := NewRankMatrix(f, 4, 0)
	if m.Add(make([]gf.Elem, 4), nil) {
		t.Fatal("zero row must not increase rank")
	}
}

func TestRankMatrixWouldHelp(t *testing.T) {
	f := gf.MustNew(16)
	m := NewRankMatrix(f, 3, 2)
	m.Add([]gf.Elem{1, 1, 0}, []byte{9, 9})
	if !m.WouldHelp([]gf.Elem{0, 1, 1}) {
		t.Fatal("independent coeffs should help")
	}
	if m.WouldHelp([]gf.Elem{2, 2, 0}) {
		t.Fatal("dependent coeffs should not help")
	}
	if m.Rank() != 1 {
		t.Fatal("WouldHelp must not mutate")
	}
}

// TestSolveRoundTrip encodes k random messages as random combinations and
// checks that Solve recovers them exactly — decode(encode(x)) == x.
func TestSolveRoundTrip(t *testing.T) {
	for _, q := range []int{2, 4, 16, 256, 101} {
		f := gf.MustNew(q)
		t.Run(f.Name(), func(t *testing.T) {
			rng := core.NewRand(99)
			const k, r = 8, 5
			msgs := make([][]byte, k)
			for i := range msgs {
				msgs[i] = gf.RandBytes(f, r, rng)
			}
			m := NewRankMatrix(f, k, r)
			guard := 0
			for !m.Full() {
				guard++
				if guard > 10000 {
					t.Fatal("decoder did not reach full rank")
				}
				coeffs := gf.RandVector(f, k, rng)
				pay := make([]byte, r)
				for i, c := range coeffs {
					f.AddMulSlice(pay, msgs[i], c)
				}
				m.Add(coeffs, pay)
			}
			got, err := m.Solve()
			if err != nil {
				t.Fatal(err)
			}
			for i := range msgs {
				for j := range msgs[i] {
					if got[i][j] != msgs[i][j] {
						t.Fatalf("decoded message %d differs at symbol %d: got %d want %d",
							i, j, got[i][j], msgs[i][j])
					}
				}
			}
		})
	}
}

func TestSolveNotFullRank(t *testing.T) {
	f := gf.MustNew(2)
	m := NewRankMatrix(f, 3, 1)
	m.Add([]gf.Elem{1, 0, 0}, []byte{1})
	if _, err := m.Solve(); !errors.Is(err, ErrNotFullRank) {
		t.Fatalf("Solve on deficient matrix: err = %v, want ErrNotFullRank", err)
	}
}

// TestRandomCombinationStaysInRowSpace checks that every emitted combination
// is dependent on the stored rows (never helpful to the emitter itself).
func TestRandomCombinationStaysInRowSpace(t *testing.T) {
	f := gf.MustNew(256)
	rng := core.NewRand(5)
	m := NewRankMatrix(f, 6, 3)
	for i := 0; i < 4; i++ {
		m.Add(gf.RandVector(f, 6, rng), gf.RandBytes(f, 3, rng))
	}
	for trial := 0; trial < 200; trial++ {
		coeffs, pay := m.RandomCombination(rng)
		if coeffs == nil {
			t.Fatal("combination from non-empty matrix is nil")
		}
		if len(pay) != 3 {
			t.Fatalf("combination payload length = %d, want 3", len(pay))
		}
		if m.WouldHelp(coeffs) {
			t.Fatal("a node's own combination can never be helpful to itself")
		}
	}
}

func TestRandomCombinationEmpty(t *testing.T) {
	f := gf.MustNew(4)
	m := NewRankMatrix(f, 3, 0)
	if coeffs, pay := m.RandomCombination(core.NewRand(1)); coeffs != nil || pay != nil {
		t.Fatal("empty matrix must emit nil")
	}
}

// TestRankInvariantQuick: rank never exceeds min(#rows added, cols), and is
// invariant under adding linear combinations of existing rows.
func TestRankInvariantQuick(t *testing.T) {
	f := gf.MustNew(16)
	rng := core.NewRand(13)
	check := func(seed uint64) bool {
		r := core.NewRand(seed)
		cols := 1 + r.IntN(10)
		m := NewRankMatrix(f, cols, 0)
		added := 0
		for i := 0; i < 20; i++ {
			m.Add(gf.RandVector(f, cols, r), nil)
			added++
			if m.Rank() > added || m.Rank() > cols {
				return false
			}
		}
		// Adding a combination of existing rows must never change the rank.
		before := m.Rank()
		if coeffs, pay := m.RandomCombination(rng); coeffs != nil {
			m.Add(coeffs, pay)
		}
		return m.Rank() == before
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRankFunction(t *testing.T) {
	f := gf.MustNew(2)
	rows := [][]gf.Elem{
		{1, 0, 1},
		{0, 1, 1},
		{1, 1, 0}, // sum of the first two
	}
	if got := Rank(f, rows, 3); got != 2 {
		t.Fatalf("Rank = %d, want 2", got)
	}
}

func TestClone(t *testing.T) {
	f := gf.MustNew(256)
	m := NewRankMatrix(f, 4, 2)
	m.Add([]gf.Elem{1, 2, 3, 4}, []byte{5, 6})
	cp := m.Clone()
	cp.Add([]gf.Elem{0, 1, 0, 0}, []byte{7, 8})
	if m.Rank() != 1 || cp.Rank() != 2 {
		t.Fatalf("clone not independent: ranks %d, %d", m.Rank(), cp.Rank())
	}
}

func TestAddPanicsOnWidthMismatch(t *testing.T) {
	f := gf.MustNew(2)
	m := NewRankMatrix(f, 3, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on width mismatch")
		}
	}()
	m.Add([]gf.Elem{1, 2}, []byte{0})
}

func TestAddPanicsOnPayloadMismatch(t *testing.T) {
	f := gf.MustNew(2)
	m := NewRankMatrix(f, 3, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on payload width mismatch")
		}
	}()
	m.Add([]gf.Elem{1, 0, 0}, []byte{0})
}

// TestSolveAfterPartialThenMore ensures Solve's in-place reduction preserves
// correctness if more rows arrive after a failed decode attempt.
func TestSolveIdempotent(t *testing.T) {
	f := gf.MustNew(256)
	rng := core.NewRand(77)
	const k, r = 5, 3
	msgs := make([][]byte, k)
	for i := range msgs {
		msgs[i] = gf.RandBytes(f, r, rng)
	}
	emit := func() ([]gf.Elem, []byte) {
		coeffs := gf.RandVector(f, k, rng)
		pay := make([]byte, r)
		for i, c := range coeffs {
			f.AddMulSlice(pay, msgs[i], c)
		}
		return coeffs, pay
	}
	m := NewRankMatrix(f, k, r)
	for m.Rank() < k-1 {
		m.Add(emit())
	}
	if _, err := m.Solve(); err == nil {
		t.Fatal("expected ErrNotFullRank")
	}
	for !m.Full() {
		m.Add(emit())
	}
	got1, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	got2, err := m.Solve() // solving twice must agree
	if err != nil {
		t.Fatal(err)
	}
	for i := range msgs {
		for j := range msgs[i] {
			if got1[i][j] != msgs[i][j] || got2[i][j] != msgs[i][j] {
				t.Fatalf("decode mismatch at (%d,%d)", i, j)
			}
		}
	}
}
