package linalg

import (
	"errors"
	"math/bits"
	"math/rand/v2"

	"algossip/internal/gf"
)

// SlicedVec is a bit-sliced row over GF(2^m): m bit-planes of packed
// 64-bit words, plane-major (see gf/sliced.go for the layout). The
// coefficient part of a k-symbol row occupies m * gf.SlicedWords(k)
// words; plane j is v[j*words : (j+1)*words].
type SlicedVec []uint64

// Clone returns an independent copy of v.
func (v SlicedVec) Clone() SlicedVec {
	return append(SlicedVec(nil), v...)
}

// IsZero reports whether every word (hence every symbol) is zero.
func (v SlicedVec) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// SlicedMatrix maintains rows over GF(2^m), m > 1, in row-echelon form
// using the bit-sliced layout, optionally carrying a sliced payload row
// per coefficient row — the GF(2^m) counterpart of BitMatrix. Eliminating
// a whole row is at most m² word-wise plane XORs through the field's
// AddMulSliced kernel instead of one table gather per symbol, and the
// pivot search ORs the m planes instead of scanning k bytes.
//
// Memory behavior mirrors BitMatrix: surviving rows live in a
// matrix-owned single-block arena (at most cols rows can ever be
// retained), and elimination scratch is reused across calls, so the
// steady-state Add/AddOwned/WouldHelp path performs no allocations and
// never retains caller memory.
//
// Determinism contract: rows are stored exactly as the generic
// RankMatrix stores them (reduced against earlier pivots, pivot element
// NOT normalized), reduction applies the same factor -c/pivot in the
// same pivot order, and RandomCombinationInto draws one gf.Rand per
// stored row — so the sliced and generic backends hold identical row
// values and consume protocol randomness identically. Backend selection
// never moves a fixed-seed trajectory.
//
// The zero value is not usable; construct with NewSlicedMatrix.
type SlicedMatrix struct {
	f        *gf.GF2m
	cols     int
	extra    int // payload symbols per row (byte-encoded width)
	words    int // words per coefficient plane
	payWords int // words per payload plane
	stride   int // m * words: coefficient row length in words
	payStr   int // m * payWords: payload row length in words

	rows   []SlicedVec
	pay    []SlicedVec
	pivot  []int
	pivLog []uint16 // log of -1/pivot-element, cached at insert time

	// tabStride enables the precomputed-table kernel: stored rows are the
	// source of every multiply-add in reduce and emit, so their subset-XOR
	// tables are built once at insert time instead of on every call.
	// Bounded to modest row widths so table memory stays O(cols * k) words.
	tabStride int

	arenaC   []uint64 // coefficient arena; rows are carved off its front
	arenaP   []uint64 // payload arena
	arenaT   []uint64 // subset-table arena
	arenaT0  []uint64 // full table arena block, insertion-ordered
	pivPos   []int32  // insertion (arena) index -> current pivot position
	ord      []int32  // pivot position -> arena index (inverse of pivPos)
	loIns    []int32  // arena indices of rows with pivot < 64 (words == 2)
	hiIns    []int32  // arena indices of rows with pivot >= 64 (words == 2)
	scratchC SlicedVec
	scratchP SlicedVec
	scratchF []gf.Elem // per-row factors/draws, pivot-ordered
	scratchA []gf.Elem // arena-ordered scatter of scratchF for streaming
	order    int       // cached field order for the emit draw loop
}

// NewSlicedMatrix returns an empty bit-sliced matrix over f with cols
// coefficient columns and extra payload symbols per row.
func NewSlicedMatrix(f *gf.GF2m, cols, extra int) *SlicedMatrix {
	if cols <= 0 {
		panic("linalg: cols must be positive")
	}
	if extra < 0 {
		panic("linalg: extra must be non-negative")
	}
	words := gf.SlicedWords(cols)
	payWords := gf.SlicedWords(extra)
	m := &SlicedMatrix{
		f: f, cols: cols, extra: extra,
		words: words, payWords: payWords,
		stride: f.M() * words, payStr: f.M() * payWords,
		order: f.Order(),
	}
	// Precomputed tables cost 2-4x the row itself; cap them at 4 words per
	// plane (k <= 256) so a node never commits more than cols KiB.
	if ts := f.SlicedTabWords(words); ts > 0 && words <= 4 {
		m.tabStride = ts
	}
	return m
}

// Field returns the matrix's field.
func (m *SlicedMatrix) Field() *gf.GF2m { return m.f }

// Cols returns the number of coefficient columns.
func (m *SlicedMatrix) Cols() int { return m.cols }

// Extra returns the number of payload symbols per row.
func (m *SlicedMatrix) Extra() int { return m.extra }

// Words returns the number of words per coefficient plane.
func (m *SlicedMatrix) Words() int { return m.words }

// Stride returns the coefficient row length in words (m * Words).
func (m *SlicedMatrix) Stride() int { return m.stride }

// PayStride returns the payload row length in words (0 when extra == 0).
func (m *SlicedMatrix) PayStride() int { return m.payStr }

// Rank returns the number of independent rows stored.
func (m *SlicedMatrix) Rank() int { return len(m.rows) }

// Full reports whether rank equals cols.
func (m *SlicedMatrix) Full() bool { return len(m.rows) == m.cols }

// Row returns the i-th stored echelon row. The returned slice aliases
// internal storage and must not be modified.
func (m *SlicedMatrix) Row(i int) SlicedVec { return m.rows[i] }

// Payload returns the augmented payload planes of the i-th stored echelon
// row (nil when extra == 0). Aliases internal storage; must not be modified.
func (m *SlicedMatrix) Payload(i int) SlicedVec {
	if m.extra == 0 {
		return nil
	}
	return m.pay[i]
}

// lowestNonzero returns the index of the lowest nonzero symbol of a
// coefficient row, or -1 — the sliced pivot search: OR the m planes
// word-wise and take the lowest set bit.
func (m *SlicedMatrix) lowestNonzero(row SlicedVec) int {
	words := m.words
	for w := 0; w < words; w++ {
		var or uint64
		for j := w; j < len(row); j += words {
			or |= row[j]
		}
		if or != 0 {
			return w*64 + bits.TrailingZeros64(or)
		}
	}
	return -1
}

// reduce eliminates (row, pay) in place against the echelon rows and
// returns the pivot column, or -1 if the row reduced to zero. A nil pay
// skips payload elimination (coefficient-only queries).
func (m *SlicedMatrix) reduce(row, pay SlicedVec) int {
	f := m.f
	if m.tabStride > 0 {
		m.reduceTabbed(row, pay != nil)
		if pay != nil {
			for i, c := range m.scratchF[:len(m.pivot)] {
				if c != 0 {
					f.AddMulSliced(pay, m.pay[i], m.payWords, c)
				}
			}
		}
		return m.lowestNonzero(row)
	}
	for i, p := range m.pivot {
		c := f.SlicedElem(row, m.words, p)
		if c == 0 {
			continue
		}
		factor := f.MulLog(c, m.pivLog[i])
		f.AddMulSliced(row, m.rows[i], m.words, factor)
		if pay != nil {
			f.AddMulSliced(pay, m.pay[i], m.payWords, factor)
		}
	}
	return m.lowestNonzero(row)
}

// reduceTabbed is the blocked coefficient elimination: it walks the row
// one 64-column word-block at a time, holding the block's m plane words
// in registers, and records each stored row's elimination factor in
// scratchF (0 = not applied) for the caller's payload pass. Eliminations
// are additive, so a stored row's contribution to later blocks is applied
// when those blocks are processed — in arena (insertion) order, so the
// table traffic streams sequentially — and echelon rows whose pivot lies
// in a later block have all-zero words in earlier blocks, so they are
// (correctly) never applied there. Only the factor *determination* for
// pivots inside the current block is pivot-sequential. Per row visit the
// work is one packed-selector load plus the subset-table lookups, with no
// destination memory traffic.
func (m *SlicedMatrix) reduceTabbed(row SlicedVec, needFactors bool) {
	f := m.f
	if m.scratchF == nil {
		m.scratchF = make([]gf.Elem, m.cols)
		m.scratchA = make([]gf.Elem, m.cols)
	}
	factors := m.scratchF[:len(m.pivot)]
	words := m.words
	if words == 2 && f.M() == 8 {
		m.reduceTabbed2x8(row, factors, needFactors)
		return
	}
	switch f.M() {
	case 8:
		idx := 0
		step := 32 * words
		for w := 0; w < words; w++ {
			r0, r1 := row[w], row[words+w]
			r2, r3 := row[2*words+w], row[3*words+w]
			r4, r5 := row[4*words+w], row[5*words+w]
			r6, r7 := row[6*words+w], row[7*words+w]
			if idx > 0 {
				// Contributions of rows whose pivot was handled in an
				// earlier block, streamed in arena order.
				fa := m.scratchA[:len(m.pivPos)]
				for j, pp := range m.pivPos {
					if int(pp) < idx {
						fa[j] = factors[pp]
					} else {
						fa[j] = 0
					}
				}
				base := m.arenaT0
				pos := 32 * w
				for _, c := range fa {
					if c == 0 {
						pos += step
						continue
					}
					sel := f.MulRowsPacked(c)
					t := base[pos : pos+32]
					pos += step
					ta := (*[16]uint64)(t[:16])
					tb := (*[16]uint64)(t[16:32])
					r0 ^= ta[sel&15] ^ tb[(sel>>4)&15]
					r1 ^= ta[(sel>>8)&15] ^ tb[(sel>>12)&15]
					r2 ^= ta[(sel>>16)&15] ^ tb[(sel>>20)&15]
					r3 ^= ta[(sel>>24)&15] ^ tb[(sel>>28)&15]
					r4 ^= ta[(sel>>32)&15] ^ tb[(sel>>36)&15]
					r5 ^= ta[(sel>>40)&15] ^ tb[(sel>>44)&15]
					r6 ^= ta[(sel>>48)&15] ^ tb[(sel>>52)&15]
					r7 ^= ta[(sel>>56)&15] ^ tb[sel>>60]
				}
			}
			// Pivots living in this block: extract straight from the
			// registers, eliminate, record the factor.
			limit := 64 * (w + 1)
			for ; idx < len(m.pivot) && m.pivot[idx] < limit; idx++ {
				b := uint(m.pivot[idx]) & 63
				c := gf.Elem((r0>>b)&1 |
					((r1>>b)&1)<<1 |
					((r2>>b)&1)<<2 |
					((r3>>b)&1)<<3 |
					((r4>>b)&1)<<4 |
					((r5>>b)&1)<<5 |
					((r6>>b)&1)<<6 |
					((r7>>b)&1)<<7)
				if c == 0 {
					factors[idx] = 0
					continue
				}
				fac := f.MulLog(c, m.pivLog[idx])
				factors[idx] = fac
				sel := f.MulRowsPacked(fac)
				tj := int(m.ord[idx]) * step
				t := m.arenaT0[tj+32*w : tj+32*w+32]
				ta := (*[16]uint64)(t[:16])
				tb := (*[16]uint64)(t[16:32])
				r0 ^= ta[sel&15] ^ tb[(sel>>4)&15]
				r1 ^= ta[(sel>>8)&15] ^ tb[(sel>>12)&15]
				r2 ^= ta[(sel>>16)&15] ^ tb[(sel>>20)&15]
				r3 ^= ta[(sel>>24)&15] ^ tb[(sel>>28)&15]
				r4 ^= ta[(sel>>32)&15] ^ tb[(sel>>36)&15]
				r5 ^= ta[(sel>>40)&15] ^ tb[(sel>>44)&15]
				r6 ^= ta[(sel>>48)&15] ^ tb[(sel>>52)&15]
				r7 ^= ta[(sel>>56)&15] ^ tb[sel>>60]
			}
			row[w], row[words+w] = r0, r1
			row[2*words+w], row[3*words+w] = r2, r3
			row[4*words+w], row[5*words+w] = r4, r5
			row[6*words+w], row[7*words+w] = r6, r7
		}
	case 4:
		idx := 0
		step := 16 * words
		for w := 0; w < words; w++ {
			r0, r1 := row[w], row[words+w]
			r2, r3 := row[2*words+w], row[3*words+w]
			if idx > 0 {
				fa := m.scratchA[:len(m.pivPos)]
				for j, pp := range m.pivPos {
					if int(pp) < idx {
						fa[j] = factors[pp]
					} else {
						fa[j] = 0
					}
				}
				base := m.arenaT0
				pos := 16 * w
				for _, c := range fa {
					if c == 0 {
						pos += step
						continue
					}
					sel := f.MulRowsPacked(c)
					ta := (*[16]uint64)(base[pos : pos+16])
					pos += step
					r0 ^= ta[sel&15]
					r1 ^= ta[(sel>>8)&15]
					r2 ^= ta[(sel>>16)&15]
					r3 ^= ta[(sel>>24)&15]
				}
			}
			limit := 64 * (w + 1)
			for ; idx < len(m.pivot) && m.pivot[idx] < limit; idx++ {
				b := uint(m.pivot[idx]) & 63
				c := gf.Elem((r0>>b)&1 |
					((r1>>b)&1)<<1 |
					((r2>>b)&1)<<2 |
					((r3>>b)&1)<<3)
				if c == 0 {
					factors[idx] = 0
					continue
				}
				fac := f.MulLog(c, m.pivLog[idx])
				factors[idx] = fac
				sel := f.MulRowsPacked(fac)
				tj := int(m.ord[idx]) * step
				ta := (*[16]uint64)(m.arenaT0[tj+16*w : tj+16*w+16])
				r0 ^= ta[sel&15]
				r1 ^= ta[(sel>>8)&15]
				r2 ^= ta[(sel>>16)&15]
				r3 ^= ta[(sel>>24)&15]
			}
			row[w], row[words+w] = r0, r1
			row[2*words+w], row[3*words+w] = r2, r3
		}
	default:
		// tabStride is only enabled for m ∈ {4, 8}.
		panic("linalg: blocked reduce without a table kernel")
	}
}

// allocRow carves one coefficient row (and payload row when extra > 0)
// off the arena, growing it in one block on first use: at most cols rows
// can ever be retained, so retained rows stay contiguous in
// allocation-order memory for the reduce loop.
func (m *SlicedMatrix) allocRow() (SlicedVec, SlicedVec, SlicedVec) {
	if len(m.arenaC) < m.stride {
		// One block for everything: coefficient rows, payload rows, and
		// subset tables, each section carved row-wise off its front.
		block := make([]uint64, m.cols*(m.stride+m.payStr+m.tabStride))
		m.arenaC = block[:m.cols*m.stride]
		m.arenaP = block[m.cols*m.stride : m.cols*(m.stride+m.payStr)]
		m.arenaT = block[m.cols*(m.stride+m.payStr):]
		m.arenaT0 = m.arenaT
	}
	row := SlicedVec(m.arenaC[:m.stride:m.stride])
	m.arenaC = m.arenaC[m.stride:]
	var pay SlicedVec
	if m.payStr > 0 {
		pay = SlicedVec(m.arenaP[:m.payStr:m.payStr])
		m.arenaP = m.arenaP[m.payStr:]
	}
	var tab SlicedVec
	if m.tabStride > 0 {
		tab = SlicedVec(m.arenaT[:m.tabStride:m.tabStride])
		m.arenaT = m.arenaT[m.tabStride:]
	}
	return row, pay, tab
}

// insert copies an already-reduced row with pivot column p into the
// arena, keeping pivots strictly increasing, and caches the pivot
// element's negated inverse for the reduce loop.
func (m *SlicedMatrix) insert(row, pay SlicedVec, p int) {
	if m.rows == nil {
		m.rows = make([]SlicedVec, 0, m.cols)
		m.pivot = make([]int, 0, m.cols)
		m.pivLog = make([]uint16, 0, m.cols)
		if m.extra > 0 {
			m.pay = make([]SlicedVec, 0, m.cols)
		}
		if m.tabStride > 0 {
			m.pivPos = make([]int32, 0, m.cols)
			m.ord = make([]int32, 0, m.cols)
			if m.words == 2 {
				m.loIns = make([]int32, 0, m.cols)
				m.hiIns = make([]int32, 0, m.cols)
			}
		}
	}
	rowC, rowP, rowT := m.allocRow()
	copy(rowC, row)
	at := len(m.rows)
	for i, q := range m.pivot {
		if q > p {
			at = i
			break
		}
	}
	m.rows = append(m.rows, nil)
	m.pivot = append(m.pivot, 0)
	m.pivLog = append(m.pivLog, 0)
	copy(m.rows[at+1:], m.rows[at:])
	copy(m.pivot[at+1:], m.pivot[at:])
	copy(m.pivLog[at+1:], m.pivLog[at:])
	m.rows[at] = rowC
	m.pivot[at] = p
	m.pivLog[at] = m.f.Log(m.f.Neg(m.f.Inv(m.f.SlicedElem(rowC, m.words, p))))
	if m.extra > 0 {
		copy(rowP, pay)
		m.pay = append(m.pay, nil)
		copy(m.pay[at+1:], m.pay[at:])
		m.pay[at] = rowP
	}
	if m.tabStride > 0 {
		m.f.BuildSlicedTables(rowT, rowC, m.words)
		// The arena stays insertion-ordered; record where this row landed
		// in pivot order so the streaming passes can look factors up.
		for j := range m.pivPos {
			if m.pivPos[j] >= int32(at) {
				m.pivPos[j]++
			}
		}
		newJ := int32(len(m.pivPos))
		m.pivPos = append(m.pivPos, int32(at))
		m.ord = append(m.ord, 0)
		copy(m.ord[at+1:], m.ord[at:])
		m.ord[at] = newJ
		// For two-block rows, partition arena indices by pivot block: a row
		// whose pivot lies in the second block has all-zero first-block
		// planes, so the emit pass over block 0 can skip it outright.
		if m.words == 2 {
			if p < 64 {
				m.loIns = append(m.loIns, newJ)
			} else {
				m.hiIns = append(m.hiIns, newJ)
			}
		}
	}
}

// checkWidths panics on a caller-side width bug (the network-facing
// screens live in rlnc).
func (m *SlicedMatrix) checkWidths(row, pay SlicedVec) {
	if len(row) != m.stride {
		panic("linalg: sliced coefficient width mismatch")
	}
	if len(pay) != m.payStr {
		panic("linalg: sliced payload width mismatch")
	}
}

// Add inserts the given sliced row — plus a payload row when extra > 0
// (nil otherwise) — if it is linearly independent of the stored rows,
// reporting whether the rank increased. The inputs are neither modified
// nor retained (reduction happens in reusable scratch).
func (m *SlicedMatrix) Add(row, pay SlicedVec) bool {
	m.checkWidths(row, pay)
	if m.Full() {
		return false // the row space is everything; nothing can help
	}
	m.ensureScratch()
	copy(m.scratchC, row)
	var workP SlicedVec
	if m.payStr > 0 {
		copy(m.scratchP, pay)
		workP = m.scratchP
	}
	p := m.reduce(m.scratchC, workP)
	if p < 0 {
		return false
	}
	m.insert(m.scratchC, workP, p)
	return true
}

// AddOwned is the move-semantics insert: it reduces directly in the
// caller's buffers (clobbering them), then copies the surviving row into
// the matrix arena. The caller must treat the contents as consumed but
// keeps the buffers themselves — the packet-pool recycling contract of
// the coded hot path.
func (m *SlicedMatrix) AddOwned(row, pay SlicedVec) bool {
	m.checkWidths(row, pay)
	if m.Full() {
		return false
	}
	var workP SlicedVec
	if m.payStr > 0 {
		workP = pay
	}
	p := m.reduce(row, workP)
	if p < 0 {
		return false
	}
	m.insert(row, workP, p)
	return true
}

// ensureScratch sizes the reusable reduce buffers once.
func (m *SlicedMatrix) ensureScratch() {
	if m.scratchC == nil {
		m.scratchC = make(SlicedVec, m.stride)
	}
	if m.payStr > 0 && m.scratchP == nil {
		m.scratchP = make(SlicedVec, m.payStr)
	}
}

// WouldHelp reports whether the row is independent of the stored rows
// without modifying the matrix or the input — reduction happens in
// reusable scratch: no allocation, no defensive copy for the caller.
func (m *SlicedMatrix) WouldHelp(row SlicedVec) bool {
	if len(row) != m.stride {
		panic("linalg: sliced coefficient width mismatch")
	}
	if m.Full() {
		return false
	}
	m.ensureScratch()
	copy(m.scratchC, row)
	return m.reduce(m.scratchC, nil) >= 0
}

// RandomCombinationInto fills out (length Stride) and pay (length
// PayStride; nil when extra == 0) with a uniformly random combination of
// the stored rows, reusing the caller's buffers — the zero-allocation
// emit path. It reports false without drawing randomness when the matrix
// is empty. The random stream consumption — one gf.Rand per stored row —
// is identical to the generic backend's draw, so swapping backends
// preserves fixed-seed trajectories.
func (m *SlicedMatrix) RandomCombinationInto(rng *rand.Rand, out, pay SlicedVec) bool {
	if len(m.rows) == 0 {
		return false
	}
	m.checkWidths(out, pay)
	if m.payStr == 0 {
		pay = nil
	}
	if m.tabStride == 0 {
		clear(out) // the fallback path accumulates; the tabbed one overwrites
	}
	clear(pay)
	// The draw is exactly gf.Rand's rng.IntN(order): for the power-of-two
	// orders of GF(2^m), rand/v2's IntN is one Uint64 masked to the low
	// bits — the same identity the bit backend's Uint64()&1 draw relies
	// on, pinned by the sliced-vs-generic equivalence tests.
	f := m.f
	mask := uint64(m.order - 1)
	if m.tabStride > 0 {
		// One gf.Rand-equivalent draw per stored row in pivot order (the
		// stream contract), stored straight into arena order through the
		// inverse permutation so the accumulation pass streams the table
		// arena sequentially.
		if m.scratchF == nil {
			m.scratchF = make([]gf.Elem, m.cols)
			m.scratchA = make([]gf.Elem, m.cols)
		}
		da := m.scratchA[:len(m.rows)]
		for _, o := range m.ord {
			da[o] = gf.Elem(rng.Uint64() & mask)
		}
		m.combineTabbed(out, da)
		if pay != nil {
			for j, c := range da {
				if c != 0 {
					f.AddMulSliced(pay, m.pay[m.pivPos[j]], m.payWords, c)
				}
			}
		}
		return true
	}
	for i, row := range m.rows {
		c := gf.Elem(rng.Uint64() & mask)
		f.AddMulSliced(out, row, m.words, c)
		if pay != nil {
			f.AddMulSliced(pay, m.pay[i], m.payWords, c)
		}
	}
	return true
}

// combineTabbed accumulates out = sum da[j] * rows[arena j] block-wise
// with the output planes held in registers — the emit-side counterpart
// of reduceTabbed. da holds the per-row draws in arena order, so the
// table arena streams strictly sequentially.
func (m *SlicedMatrix) combineTabbed(out SlicedVec, da []gf.Elem) {
	f := m.f
	base := m.arenaT0
	words := m.words
	if words == 2 && f.M() == 8 {
		m.combineTabbed2x8(out, da)
		return
	}
	switch f.M() {
	case 8:
		step := 32 * words
		for w := 0; w < words; w++ {
			var r0, r1, r2, r3, r4, r5, r6, r7 uint64
			pos := 32 * w
			for _, c := range da {
				if c == 0 {
					pos += step
					continue
				}
				sel := f.MulRowsPacked(c)
				t := base[pos : pos+32]
				pos += step
				ta := (*[16]uint64)(t[:16])
				tb := (*[16]uint64)(t[16:32])
				r0 ^= ta[sel&15] ^ tb[(sel>>4)&15]
				r1 ^= ta[(sel>>8)&15] ^ tb[(sel>>12)&15]
				r2 ^= ta[(sel>>16)&15] ^ tb[(sel>>20)&15]
				r3 ^= ta[(sel>>24)&15] ^ tb[(sel>>28)&15]
				r4 ^= ta[(sel>>32)&15] ^ tb[(sel>>36)&15]
				r5 ^= ta[(sel>>40)&15] ^ tb[(sel>>44)&15]
				r6 ^= ta[(sel>>48)&15] ^ tb[(sel>>52)&15]
				r7 ^= ta[(sel>>56)&15] ^ tb[sel>>60]
			}
			out[w], out[words+w] = r0, r1
			out[2*words+w], out[3*words+w] = r2, r3
			out[4*words+w], out[5*words+w] = r4, r5
			out[6*words+w], out[7*words+w] = r6, r7
		}
	case 4:
		step := 16 * words
		for w := 0; w < words; w++ {
			var r0, r1, r2, r3 uint64
			if words == 2 && w == 0 {
				// Only rows with a first-block pivot have content here.
				for _, j := range m.loIns {
					c := da[j]
					if c == 0 {
						continue
					}
					sel := f.MulRowsPacked(c)
					ta := (*[16]uint64)(base[int(j)*step : int(j)*step+16])
					r0 ^= ta[sel&15]
					r1 ^= ta[(sel>>8)&15]
					r2 ^= ta[(sel>>16)&15]
					r3 ^= ta[(sel>>24)&15]
				}
			} else {
				pos := 16 * w
				for _, c := range da {
					if c == 0 {
						pos += step
						continue
					}
					sel := f.MulRowsPacked(c)
					ta := (*[16]uint64)(base[pos : pos+16])
					pos += step
					r0 ^= ta[sel&15]
					r1 ^= ta[(sel>>8)&15]
					r2 ^= ta[(sel>>16)&15]
					r3 ^= ta[(sel>>24)&15]
				}
			}
			out[w], out[words+w] = r0, r1
			out[2*words+w], out[3*words+w] = r2, r3
		}
	default:
		panic("linalg: blocked combine without a table kernel")
	}
}

// reduceTabbed2x8 is the fused words==2, m==8 elimination (64 < k <= 128
// over GF(256), the macro-benchmark configuration): one pivot-ordered
// pass over the stored rows with all 16 row words held in locals, shared
// selector extraction for both word-blocks, and each row's 512-byte
// table chunk read contiguously. Rows whose pivot lies in the second
// block have all-zero first-block planes and skip that half entirely.
func (m *SlicedMatrix) reduceTabbed2x8(row SlicedVec, factors []gf.Elem, needFactors bool) {
	f := m.f
	a0, a1, a2, a3 := row[0], row[2], row[4], row[6]
	a4, a5, a6, a7 := row[8], row[10], row[12], row[14]
	b0, b1, b2, b3 := row[1], row[3], row[5], row[7]
	b4, b5, b6, b7 := row[9], row[11], row[13], row[15]
	for idx, p := range m.pivot {
		var c gf.Elem
		if p < 64 {
			bb := uint(p)
			c = gf.Elem((a0>>bb)&1 |
				((a1>>bb)&1)<<1 |
				((a2>>bb)&1)<<2 |
				((a3>>bb)&1)<<3 |
				((a4>>bb)&1)<<4 |
				((a5>>bb)&1)<<5 |
				((a6>>bb)&1)<<6 |
				((a7>>bb)&1)<<7)
		} else {
			bb := uint(p) & 63
			c = gf.Elem((b0>>bb)&1 |
				((b1>>bb)&1)<<1 |
				((b2>>bb)&1)<<2 |
				((b3>>bb)&1)<<3 |
				((b4>>bb)&1)<<4 |
				((b5>>bb)&1)<<5 |
				((b6>>bb)&1)<<6 |
				((b7>>bb)&1)<<7)
		}
		if c == 0 {
			if needFactors {
				factors[idx] = 0
			}
			continue
		}
		lg := m.pivLog[idx]
		sel := f.MulRowsPackedLog(c, lg)
		if needFactors {
			// The explicit factor is only consumed by the caller's payload
			// pass; rank-only reductions skip the extra log-domain lookup.
			factors[idx] = f.MulLog(c, lg)
		}
		t := (*[64]uint64)(m.arenaT0[int(m.ord[idx])*64 : int(m.ord[idx])*64+64 : int(m.ord[idx])*64+64])
		if p < 64 {
			x, y := sel&15, (sel>>4)&15
			a0 ^= t[x] ^ t[16+y]
			b0 ^= t[32+x] ^ t[48+y]
			x, y = (sel>>8)&15, (sel>>12)&15
			a1 ^= t[x] ^ t[16+y]
			b1 ^= t[32+x] ^ t[48+y]
			x, y = (sel>>16)&15, (sel>>20)&15
			a2 ^= t[x] ^ t[16+y]
			b2 ^= t[32+x] ^ t[48+y]
			x, y = (sel>>24)&15, (sel>>28)&15
			a3 ^= t[x] ^ t[16+y]
			b3 ^= t[32+x] ^ t[48+y]
			x, y = (sel>>32)&15, (sel>>36)&15
			a4 ^= t[x] ^ t[16+y]
			b4 ^= t[32+x] ^ t[48+y]
			x, y = (sel>>40)&15, (sel>>44)&15
			a5 ^= t[x] ^ t[16+y]
			b5 ^= t[32+x] ^ t[48+y]
			x, y = (sel>>48)&15, (sel>>52)&15
			a6 ^= t[x] ^ t[16+y]
			b6 ^= t[32+x] ^ t[48+y]
			x, y = (sel>>56)&15, sel>>60
			a7 ^= t[x] ^ t[16+y]
			b7 ^= t[32+x] ^ t[48+y]
		} else {
			// First-block planes of this row are zero: only the second
			// block carries content (ta1 = t[32:], tb1 = t[48:]).
			b0 ^= t[32+sel&15] ^ t[48+(sel>>4)&15]
			b1 ^= t[32+(sel>>8)&15] ^ t[48+(sel>>12)&15]
			b2 ^= t[32+(sel>>16)&15] ^ t[48+(sel>>20)&15]
			b3 ^= t[32+(sel>>24)&15] ^ t[48+(sel>>28)&15]
			b4 ^= t[32+(sel>>32)&15] ^ t[48+(sel>>36)&15]
			b5 ^= t[32+(sel>>40)&15] ^ t[48+(sel>>44)&15]
			b6 ^= t[32+(sel>>48)&15] ^ t[48+(sel>>52)&15]
			b7 ^= t[32+(sel>>56)&15] ^ t[48+(sel>>60)]
		}
	}
	row[0], row[2], row[4], row[6] = a0, a1, a2, a3
	row[8], row[10], row[12], row[14] = a4, a5, a6, a7
	row[1], row[3], row[5], row[7] = b0, b1, b2, b3
	row[9], row[11], row[13], row[15] = b4, b5, b6, b7
}

// combineTabbed2x8 is the fused words==2, m==8 emit accumulation: one
// arena-ordered pass, shared selector extraction, contiguous 512-byte
// table reads per row.
func (m *SlicedMatrix) combineTabbed2x8(out SlicedVec, da []gf.Elem) {
	f := m.f
	base := m.arenaT0
	var a0, a1, a2, a3, a4, a5, a6, a7 uint64
	var b0, b1, b2, b3, b4, b5, b6, b7 uint64
	for _, j := range m.loIns {
		c := da[j]
		if c == 0 {
			continue
		}
		sel := f.MulRowsPacked(c)
		t := (*[64]uint64)(base[int(j)*64 : int(j)*64+64 : int(j)*64+64])
		// One chunk pointer, constant displacements: ta0 = t[0:], tb0 =
		// t[16:], ta1 = t[32:], tb1 = t[48:].
		x, y := sel&15, (sel>>4)&15
		a0 ^= t[x] ^ t[16+y]
		b0 ^= t[32+x] ^ t[48+y]
		x, y = (sel>>8)&15, (sel>>12)&15
		a1 ^= t[x] ^ t[16+y]
		b1 ^= t[32+x] ^ t[48+y]
		x, y = (sel>>16)&15, (sel>>20)&15
		a2 ^= t[x] ^ t[16+y]
		b2 ^= t[32+x] ^ t[48+y]
		x, y = (sel>>24)&15, (sel>>28)&15
		a3 ^= t[x] ^ t[16+y]
		b3 ^= t[32+x] ^ t[48+y]
		x, y = (sel>>32)&15, (sel>>36)&15
		a4 ^= t[x] ^ t[16+y]
		b4 ^= t[32+x] ^ t[48+y]
		x, y = (sel>>40)&15, (sel>>44)&15
		a5 ^= t[x] ^ t[16+y]
		b5 ^= t[32+x] ^ t[48+y]
		x, y = (sel>>48)&15, (sel>>52)&15
		a6 ^= t[x] ^ t[16+y]
		b6 ^= t[32+x] ^ t[48+y]
		x, y = (sel>>56)&15, sel>>60
		a7 ^= t[x] ^ t[16+y]
		b7 ^= t[32+x] ^ t[48+y]
	}
	// Rows with pivot >= 64: first-block planes are zero, only the
	// second-block half of the table chunk carries content.
	for _, j := range m.hiIns {
		c := da[j]
		if c == 0 {
			continue
		}
		sel := f.MulRowsPacked(c)
		t := (*[32]uint64)(base[int(j)*64+32 : int(j)*64+64 : int(j)*64+64])
		b0 ^= t[sel&15] ^ t[16+(sel>>4)&15]
		b1 ^= t[(sel>>8)&15] ^ t[16+(sel>>12)&15]
		b2 ^= t[(sel>>16)&15] ^ t[16+(sel>>20)&15]
		b3 ^= t[(sel>>24)&15] ^ t[16+(sel>>28)&15]
		b4 ^= t[(sel>>32)&15] ^ t[16+(sel>>36)&15]
		b5 ^= t[(sel>>40)&15] ^ t[16+(sel>>44)&15]
		b6 ^= t[(sel>>48)&15] ^ t[16+(sel>>52)&15]
		b7 ^= t[(sel>>56)&15] ^ t[16+(sel>>60)]
	}
	out[0], out[2], out[4], out[6] = a0, a1, a2, a3
	out[8], out[10], out[12], out[14] = a4, a5, a6, a7
	out[1], out[3], out[5], out[7] = b0, b1, b2, b3
	out[9], out[11], out[13], out[15] = b4, b5, b6, b7
}

// Solve performs full back-substitution and returns the decoded
// payloads: a cols x extra byte matrix whose i-th row is the
// byte-encoded payload of unknown i. It returns ErrNotFullRank when
// Rank() < Cols. The stored rows are reduced in place (which preserves
// the row space, so further Adds remain correct).
func (m *SlicedMatrix) Solve() ([][]byte, error) {
	if m.extra == 0 {
		return nil, errors.New("linalg: SlicedMatrix has no payload to solve for")
	}
	if !m.Full() {
		return nil, ErrNotFullRank
	}
	f := m.f
	// Normalize pivots to 1 and eliminate above, bottom-up. With full
	// rank, pivot[i] == i for all i.
	for i := m.cols - 1; i >= 0; i-- {
		p := m.pivot[i]
		if c := f.SlicedElem(m.rows[i], m.words, p); c != 1 {
			inv := f.Inv(c)
			f.ScaleSliced(m.rows[i], m.words, inv)
			f.ScaleSliced(m.pay[i], m.payWords, inv)
			m.pivLog[i] = f.Log(f.Neg(1)) // pivot normalized; keep the cache honest
		}
		for j := 0; j < i; j++ {
			if c := f.SlicedElem(m.rows[j], m.words, p); c != 0 {
				nc := f.Neg(c)
				f.AddMulSliced(m.rows[j], m.rows[i], m.words, nc)
				f.AddMulSliced(m.pay[j], m.pay[i], m.payWords, nc)
			}
		}
	}
	// Back-substitution rewrote the stored rows; the precomputed subset
	// tables must follow them for further multiply-adds to stay correct.
	if m.tabStride > 0 {
		for i, row := range m.rows {
			tj := int(m.ord[i]) * m.tabStride
			f.BuildSlicedTables(m.arenaT0[tj:tj+m.tabStride], row, m.words)
		}
	}
	out := make([][]byte, m.cols)
	for i := range out {
		out[i] = make([]byte, m.extra)
		f.UnpackSliced(out[i], m.pay[i])
	}
	return out, nil
}
