package linalg

import (
	"testing"
	"testing/quick"

	"algossip/internal/core"
	"algossip/internal/gf"
)

func TestBitVecOps(t *testing.T) {
	v := NewBitVec(130)
	if !v.IsZero() {
		t.Fatal("fresh vector not zero")
	}
	v.Set(0)
	v.Set(64)
	v.Set(129)
	if v.OnesCount() != 3 {
		t.Fatalf("OnesCount = %d, want 3", v.OnesCount())
	}
	if !v.Get(64) || v.Get(63) {
		t.Fatal("Get wrong")
	}
	if v.LowestSet() != 0 {
		t.Fatalf("LowestSet = %d, want 0", v.LowestSet())
	}
	v.Clear(0)
	if v.LowestSet() != 64 {
		t.Fatalf("LowestSet = %d, want 64", v.LowestSet())
	}
	w := v.Clone()
	w.Xor(v)
	if !w.IsZero() {
		t.Fatal("v XOR v must be zero")
	}
	if v.IsZero() {
		t.Fatal("Clone must not alias")
	}
	if NewBitVec(1).LowestSet() != -1 {
		t.Fatal("LowestSet of zero vector must be -1")
	}
}

func TestBitMatrixRank(t *testing.T) {
	m := NewBitMatrix(4)
	row := func(bitsSet ...int) BitVec {
		v := NewBitVec(4)
		for _, b := range bitsSet {
			v.Set(b)
		}
		return v
	}
	if !m.Add(row(0, 1)) {
		t.Fatal("first row helpful")
	}
	if !m.Add(row(1, 2)) {
		t.Fatal("second row helpful")
	}
	if m.Add(row(0, 2)) { // sum of the first two
		t.Fatal("dependent row must not help")
	}
	if m.Rank() != 2 {
		t.Fatalf("rank = %d", m.Rank())
	}
	if !m.WouldHelp(row(3)) {
		t.Fatal("independent row should help")
	}
	if m.Rank() != 2 {
		t.Fatal("WouldHelp must not mutate")
	}
	m.Add(row(3))
	m.Add(row(2))
	if !m.Full() {
		t.Fatal("should be full rank")
	}
	if m.Add(row(0, 1, 2, 3)) {
		t.Fatal("nothing helps a full matrix")
	}
}

func TestBitMatrixZeroRow(t *testing.T) {
	m := NewBitMatrix(8)
	if m.Add(NewBitVec(8)) {
		t.Fatal("zero row must not increase rank")
	}
}

// TestBitMatrixAgreesWithRankMatrix cross-validates the GF(2) bitset
// implementation against the generic field implementation on random
// insertion sequences.
func TestBitMatrixAgreesWithRankMatrix(t *testing.T) {
	f := gf.MustNew(2)
	check := func(seed uint64) bool {
		rng := core.NewRand(seed)
		cols := 1 + rng.IntN(70)
		bm := NewBitMatrix(cols)
		rm := NewRankMatrix(f, cols, 0)
		for i := 0; i < 40; i++ {
			bv := NewBitVec(cols)
			ev := make([]gf.Elem, cols)
			for j := 0; j < cols; j++ {
				if rng.Uint64()&1 == 1 {
					bv.Set(j)
					ev[j] = 1
				}
			}
			if bm.Add(bv) != rm.Add(ev, nil) {
				return false
			}
			if bm.Rank() != rm.Rank() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBitMatrixRandomCombination(t *testing.T) {
	rng := core.NewRand(21)
	m := NewBitMatrix(32)
	if m.RandomCombination(rng) != nil {
		t.Fatal("empty matrix must emit nil")
	}
	for i := 0; i < 10; i++ {
		v := NewBitVec(32)
		for j := 0; j < 32; j++ {
			if rng.Uint64()&1 == 1 {
				v.Set(j)
			}
		}
		m.Add(v)
	}
	for trial := 0; trial < 100; trial++ {
		combo := m.RandomCombination(rng)
		if m.WouldHelp(combo) {
			t.Fatal("own combination can never be helpful to the emitter")
		}
	}
}

func BenchmarkBitMatrixAdd256(b *testing.B) {
	rng := core.NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := NewBitMatrix(256)
		for !m.Full() {
			v := NewBitVec(256)
			for w := range v {
				v[w] = rng.Uint64()
			}
			m.Add(v)
		}
	}
}

func BenchmarkRankMatrixAddGF256(b *testing.B) {
	f := gf.MustNew(256)
	rng := core.NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := NewRankMatrix(f, 64, 0)
		for !m.Full() {
			m.Add(gf.RandVector(f, 64, rng), nil)
		}
	}
}
