package linalg

import (
	"testing"

	"math/rand/v2"

	"algossip/internal/gf"
)

func BenchmarkSlicedEmitK128(b *testing.B) {
	f, _ := gf.NewGF2m(8)
	m := NewSlicedMatrix(f, 128, 0)
	rng := rand.New(rand.NewPCG(1, 2))
	for !m.Full() {
		row := make(SlicedVec, m.Stride())
		raw := gf.RandBytes(f, 128, rng)
		f.PackSliced(row, raw)
		m.AddOwned(row, nil)
	}
	out := make(SlicedVec, m.Stride())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RandomCombinationInto(rng, out, nil)
	}
}

func BenchmarkSlicedReduceK128(b *testing.B) {
	f, _ := gf.NewGF2m(8)
	m := NewSlicedMatrix(f, 128, 0)
	rng := rand.New(rand.NewPCG(3, 4))
	for m.Rank() < 127 { // not full: avoid the short-circuit
		row := make(SlicedVec, m.Stride())
		f.PackSliced(row, gf.RandBytes(f, 128, rng))
		m.AddOwned(row, nil)
	}
	probe := make(SlicedVec, m.Stride())
	f.PackSliced(probe, gf.RandBytes(f, 128, rng))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.WouldHelp(probe)
	}
}
