package graph

import "algossip/internal/core"

// MinCut returns the weight of a global minimum edge cut of the connected
// graph, computed with the Stoer–Wagner algorithm in O(n³) (fine at
// simulation sizes). This is the γ in Haeupler's O(k/γ) bound for
// algebraic gossip, so Table 2 comparisons can use the measured cut of the
// actual topology rather than a closed form. For a disconnected graph the
// result is 0.
func (g *Graph) MinCut() int {
	n := g.N()
	if n < 2 {
		return 0
	}
	// Dense weight matrix; merged vertices accumulate weights.
	w := make([][]int, n)
	for i := range w {
		w[i] = make([]int, n)
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(core.NodeID(u)) {
			w[u][v] = 1
		}
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	best := -1
	for len(active) > 1 {
		cut, s, t := minimumCutPhase(w, active)
		if best < 0 || cut < best {
			best = cut
		}
		// Merge t into s.
		for _, v := range active {
			if v == s || v == t {
				continue
			}
			w[s][v] += w[t][v]
			w[v][s] = w[s][v]
		}
		for i, v := range active {
			if v == t {
				active = append(active[:i], active[i+1:]...)
				break
			}
		}
	}
	return best
}

// minimumCutPhase runs one maximum-adjacency search, returning the
// cut-of-the-phase and the last two vertices added.
func minimumCutPhase(w [][]int, active []int) (cut, s, t int) {
	n := len(active)
	inA := make(map[int]bool, n)
	weight := make(map[int]int, n)
	for _, v := range active {
		weight[v] = 0
	}
	prev, last := -1, -1
	for i := 0; i < n; i++ {
		// Pick the most tightly connected inactive vertex.
		sel, selW := -1, -1
		for _, v := range active {
			if inA[v] {
				continue
			}
			if weight[v] > selW {
				sel, selW = v, weight[v]
			}
		}
		inA[sel] = true
		prev, last = last, sel
		cut = selW
		for _, v := range active {
			if !inA[v] {
				weight[v] += w[sel][v]
			}
		}
	}
	return cut, prev, last
}
