package graph

import (
	"testing"

	"algossip/internal/core"
)

// sameEdges reports whether two graphs have identical edge sets.
func sameEdges(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e[0], e[1]) {
			return false
		}
	}
	return true
}

func TestStaticSchedule(t *testing.T) {
	g := Ring(10)
	s := Static(g)
	if s.Name() != g.Name() || s.N() != g.N() {
		t.Fatalf("static schedule mislabeled: %s/%d", s.Name(), s.N())
	}
	for _, round := range []int{0, 1, 7, 1 << 20} {
		if s.At(round) != g {
			t.Fatalf("round %d: static schedule returned a different pointer", round)
		}
	}
}

func TestEdgeFailureSchedule(t *testing.T) {
	base := Torus(5, 5)
	s := NewEdgeFailures(base, 0.3, 42)
	if s.N() != base.N() {
		t.Fatalf("N = %d, want %d", s.N(), base.N())
	}
	prev := -1.0
	for round := 0; round < 20; round++ {
		g := s.At(round)
		if g.N() != base.N() {
			t.Fatalf("round %d: node count changed to %d", round, g.N())
		}
		if g.M() > base.M() {
			t.Fatalf("round %d: %d edges exceed base %d", round, g.M(), base.M())
		}
		for _, e := range g.Edges() {
			if !base.HasEdge(e[0], e[1]) {
				t.Fatalf("round %d: edge (%d,%d) not in base", round, e[0], e[1])
			}
		}
		// Repeated queries for the same round return the same pointer.
		if s.At(round) != g {
			t.Fatalf("round %d: At is not pointer-stable", round)
		}
		prev += float64(g.M())
	}
	if prev <= 0 {
		t.Fatal("all rounds empty at rate 0.3")
	}
	// Purity across schedule instances: same seed, same per-round samples.
	s2 := NewEdgeFailures(base, 0.3, 42)
	for round := 0; round < 20; round++ {
		if !sameEdges(s.At(round), s2.At(round)) {
			t.Fatalf("round %d: same seed produced different failure samples", round)
		}
	}
	// Rate 0 degenerates to the base graph, same pointer.
	if NewEdgeFailures(base, 0, 1).At(5) != base {
		t.Fatal("rate 0 must return the base graph")
	}
}

func TestBurstFailureSchedule(t *testing.T) {
	base := Grid(5, 5)
	s := NewBurstFailures(base, 0.5, 16, 4, 7)
	// Round 0 and every non-burst phase: the intact base graph.
	for _, round := range []int{0, 4, 15, 20, 31} {
		if s.At(round) != base {
			t.Fatalf("round %d should be outside a burst", round)
		}
	}
	// Within one burst the sample is stable (same pointer).
	g16 := s.At(16)
	if g16 == base {
		t.Fatal("round 16 must be inside a burst")
	}
	for round := 17; round < 20; round++ {
		if s.At(round) != g16 {
			t.Fatalf("round %d: burst sample not stable", round)
		}
	}
	if g16.M() >= base.M() {
		t.Fatalf("burst dropped no edges (%d of %d)", g16.M(), base.M())
	}
	// Different epochs draw different samples (with overwhelming probability).
	if sameEdges(s.At(32), g16) && sameEdges(s.At(48), g16) {
		t.Error("three consecutive bursts sampled identical failures")
	}
}

func TestRewireSchedule(t *testing.T) {
	base := Ring(30)
	s := NewRewire(base, 0.3, 8, 3)
	if s.At(0) != base || s.At(7) != base {
		t.Fatal("epoch 0 must be the intact base graph")
	}
	g1 := s.At(8)
	if g1 == base {
		t.Fatal("epoch 1 must be rewired")
	}
	if g1.N() != base.N() {
		t.Fatalf("rewire changed node count to %d", g1.N())
	}
	for round := 9; round < 16; round++ {
		if s.At(round) != g1 {
			t.Fatalf("round %d: epoch sample not stable", round)
		}
	}
	// Rewiring only moves endpoints: the edge count never grows.
	if g1.M() > base.M() {
		t.Fatalf("rewire grew the edge count: %d > %d", g1.M(), base.M())
	}
}

func TestChurnSchedule(t *testing.T) {
	base := Complete(20)
	s := NewChurn(base, 0.3, 4, 11)
	if s.At(0) != base || s.At(3) != base {
		t.Fatal("block 0 must start with every node up")
	}
	if s.ResetAt(0) != nil {
		t.Fatal("no resets at round 0")
	}
	// Down nodes are isolated; up nodes keep their mutual edges.
	for _, round := range []int{4, 8, 12, 16} {
		g := s.At(round)
		block := round / 4
		for v := 0; v < base.N(); v++ {
			id := core.NodeID(v)
			if s.down(id, block) != (g.Degree(id) == 0) {
				// A down node must be isolated. (In K20 an up node always
				// keeps at least one up peer at rate 0.3 w.h.p.; tolerate
				// the converse only for down nodes.)
				if s.down(id, block) {
					t.Fatalf("round %d: down node %d has degree %d", round, v, g.Degree(id))
				}
			}
		}
	}
	// Resets happen exactly at block boundaries, only for down->up nodes.
	for round := 1; round < 32; round++ {
		resets := s.ResetAt(round)
		if round%4 != 0 && resets != nil {
			t.Fatalf("round %d: resets off a block boundary", round)
		}
		block := round / 4
		for _, v := range resets {
			if !s.down(v, block-1) || s.down(v, block) {
				t.Fatalf("round %d: node %d reset without a down->up transition", round, v)
			}
		}
	}
	// Determinism across instances.
	s2 := NewChurn(base, 0.3, 4, 11)
	for round := 0; round < 32; round += 4 {
		if !sameEdges(s.At(round), s2.At(round)) {
			t.Fatalf("round %d: churn not deterministic", round)
		}
	}
}

func TestGrowSchedule(t *testing.T) {
	const n, m, period = 20, 2, 3
	s := NewGrow(n, m, period, 5)
	if s.N() != n {
		t.Fatalf("N = %d, want %d", s.N(), n)
	}
	g0 := s.At(0)
	// Initially the m+1 seed clique; everyone else isolated.
	if got := g0.M(); got != m*(m+1)/2 {
		t.Fatalf("initial edges = %d, want %d", got, m*(m+1)/2)
	}
	prevJoined := m + 1
	for round := 0; round < (n+2)*period; round++ {
		joined := s.Joined(round)
		if joined < prevJoined {
			t.Fatalf("round %d: joined count regressed %d -> %d", round, prevJoined, joined)
		}
		prevJoined = joined
		g := s.At(round)
		// Joined nodes form one connected component; the rest are isolated.
		for v := 0; v < n; v++ {
			deg := g.Degree(core.NodeID(v))
			if v < joined && deg == 0 {
				t.Fatalf("round %d: joined node %d isolated", round, v)
			}
			if v >= joined && deg != 0 {
				t.Fatalf("round %d: unjoined node %d has degree %d", round, v, deg)
			}
		}
	}
	// After the last join: stable (same pointer) and fully grown with the
	// exact preferential-attachment edge count.
	final := s.At(10 * n * period)
	if s.At(10*n*period+1) != final {
		t.Fatal("stabilized schedule must be pointer-stable")
	}
	wantM := m*(m+1)/2 + (n-m-1)*m
	if final.M() != wantM {
		t.Fatalf("final edges = %d, want %d", final.M(), wantM)
	}
	if !final.IsConnected() {
		t.Fatal("stabilized PA graph must be connected")
	}
}
