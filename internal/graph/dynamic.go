package graph

// Dynamic topologies: the time-varying counterpart of *Graph. A Dynamic
// schedule is a deterministic function from the round number to the graph
// in force during that round, which is how the simulation engine models
// churn, lossy links, mobility and reconfiguration on top of the paper's
// static-graph analysis.
//
// Determinism contract (relied on by internal/sim and internal/harness):
//
//   - N() is constant for the lifetime of the schedule: every At(round)
//     graph has exactly N() nodes. Nodes that are "down" (churned out,
//     not yet joined) stay present but isolated, so node IDs and protocol
//     state arrays never resize.
//   - At is a pure function of the round: the same round always yields
//     the same topology, and consecutive rounds with an unchanged
//     topology yield the SAME *Graph pointer — the engine detects
//     transitions by pointer comparison.
//   - All randomness derives from the schedule's own seed via
//     core.SplitSeed streams, never from call order.
//
// Schedules cache the last materialized graph and are meant to be driven
// by a single engine goroutine; they are not safe for concurrent use.

import (
	"fmt"

	"algossip/internal/core"
)

// Dynamic is a time-varying topology: one graph per round.
type Dynamic interface {
	// Name identifies the schedule, e.g. "ring-64+edgefail-p0.20".
	Name() string
	// N is the constant node count of every At(round) graph.
	N() int
	// At returns the topology in force during the given round (pure; see
	// the package contract above).
	At(round int) *Graph
}

// Churner is an optional Dynamic extension for schedules with node
// churn: ResetAt lists the nodes whose protocol state must be reset at
// the start of the given round because they left and rejoined (a rejoin
// is a fresh machine: subspaces, message stores and informed flags are
// re-initialized from the node's initial seeds).
type Churner interface {
	ResetAt(round int) []core.NodeID
}

// StaticSchedule is the trivial constant schedule: the same graph every
// round. Running a protocol over Static(g) is bit-identical to running
// it over g directly.
type StaticSchedule struct{ g *Graph }

var _ Dynamic = (*StaticSchedule)(nil)

// Static wraps a static graph as a Dynamic schedule.
func Static(g *Graph) *StaticSchedule { return &StaticSchedule{g: g} }

// Name implements Dynamic.
func (s *StaticSchedule) Name() string { return s.g.Name() }

// N implements Dynamic.
func (s *StaticSchedule) N() int { return s.g.N() }

// At implements Dynamic: always the wrapped graph, same pointer.
func (s *StaticSchedule) At(int) *Graph { return s.g }

// filterEdges returns base restricted to the edges keep accepts — the
// shared rebuild step of every subtractive schedule. keep is invoked
// once per edge in base.Edges() order, which is what pins the RNG draw
// order of the sampling schedules.
func filterEdges(base *Graph, keep func(e [2]core.NodeID) bool) *Graph {
	b := NewBuilder(base.Name(), base.N())
	for _, e := range base.Edges() {
		if keep(e) {
			b.AddEdge(e[0], e[1])
		}
	}
	return b.Build()
}

// EdgeFailureSchedule fails each edge of a base graph independently with
// a fixed probability, resampled every round (i.i.d. link loss — the
// memoryless failure model).
type EdgeFailureSchedule struct {
	base *Graph
	rate float64
	seed uint64

	lastRound int
	lastGraph *Graph
}

var _ Dynamic = (*EdgeFailureSchedule)(nil)

// NewEdgeFailures returns a schedule over base where every edge is down
// with probability rate in each round, independently across edges and
// rounds. rate must be in [0, 1).
func NewEdgeFailures(base *Graph, rate float64, seed uint64) *EdgeFailureSchedule {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("graph: edge failure rate %v outside [0, 1)", rate))
	}
	return &EdgeFailureSchedule{base: base, rate: rate, seed: seed, lastRound: -1}
}

// Name implements Dynamic.
func (s *EdgeFailureSchedule) Name() string {
	return fmt.Sprintf("%s+edgefail-p%.2f", s.base.Name(), s.rate)
}

// N implements Dynamic.
func (s *EdgeFailureSchedule) N() int { return s.base.N() }

// At implements Dynamic: the surviving subgraph for the given round.
func (s *EdgeFailureSchedule) At(round int) *Graph {
	if s.rate == 0 {
		return s.base
	}
	if round == s.lastRound && s.lastGraph != nil {
		return s.lastGraph
	}
	rng := core.NewRand(core.SplitSeed(s.seed, uint64(round)))
	s.lastRound = round
	s.lastGraph = filterEdges(s.base, func([2]core.NodeID) bool {
		return rng.Float64() >= s.rate
	})
	return s.lastGraph
}

// BurstFailureSchedule alternates between the intact base graph and
// correlated failure bursts: every period rounds, a burst of burstLen
// rounds begins during which a fixed random subset of edges (each chosen
// with probability rate, stable for the whole burst) is down.
type BurstFailureSchedule struct {
	base     *Graph
	rate     float64
	period   int
	burstLen int
	seed     uint64

	lastEpoch int
	lastGraph *Graph
}

var _ Dynamic = (*BurstFailureSchedule)(nil)

// NewBurstFailures returns a burst-failure schedule. The first burst
// starts at round period (round 0 always sees the intact base graph),
// and burstLen must be smaller than period so the graph heals between
// bursts.
func NewBurstFailures(base *Graph, rate float64, period, burstLen int, seed uint64) *BurstFailureSchedule {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("graph: burst failure rate %v outside [0, 1)", rate))
	}
	if period < 1 || burstLen < 1 || burstLen >= period {
		panic(fmt.Sprintf("graph: burst needs 1 <= burstLen < period, got %d/%d", burstLen, period))
	}
	return &BurstFailureSchedule{base: base, rate: rate, period: period,
		burstLen: burstLen, seed: seed, lastEpoch: -1}
}

// Name implements Dynamic.
func (s *BurstFailureSchedule) Name() string {
	return fmt.Sprintf("%s+burst-p%.2f-t%d/%d", s.base.Name(), s.rate, s.burstLen, s.period)
}

// N implements Dynamic.
func (s *BurstFailureSchedule) N() int { return s.base.N() }

// At implements Dynamic.
func (s *BurstFailureSchedule) At(round int) *Graph {
	if round < s.period || round%s.period >= s.burstLen {
		return s.base
	}
	epoch := round / s.period
	if epoch == s.lastEpoch && s.lastGraph != nil {
		return s.lastGraph
	}
	rng := core.NewRand(core.SplitSeed(s.seed, uint64(epoch)))
	s.lastEpoch = epoch
	s.lastGraph = filterEdges(s.base, func([2]core.NodeID) bool {
		return rng.Float64() >= s.rate
	})
	return s.lastGraph
}

// RewireSchedule periodically rewires a fraction of the base graph's
// edges to uniformly random endpoints (mobility / reconfigurable-fabric
// model): epoch 0 is the intact base graph, and every period rounds a
// fresh rewiring is drawn. Rewired samples are not guaranteed to stay
// connected — transient partitions are part of the modeled regime.
type RewireSchedule struct {
	base     *Graph
	fraction float64
	period   int
	seed     uint64

	lastEpoch int
	lastGraph *Graph
}

var _ Dynamic = (*RewireSchedule)(nil)

// NewRewire returns a schedule that rewires each edge with probability
// fraction at every period-round boundary.
func NewRewire(base *Graph, fraction float64, period int, seed uint64) *RewireSchedule {
	if fraction < 0 || fraction > 1 {
		panic(fmt.Sprintf("graph: rewire fraction %v outside [0, 1]", fraction))
	}
	if period < 1 {
		panic("graph: rewire period must be positive")
	}
	return &RewireSchedule{base: base, fraction: fraction, period: period,
		seed: seed, lastEpoch: -1}
}

// Name implements Dynamic.
func (s *RewireSchedule) Name() string {
	return fmt.Sprintf("%s+rewire-f%.2f-t%d", s.base.Name(), s.fraction, s.period)
}

// N implements Dynamic.
func (s *RewireSchedule) N() int { return s.base.N() }

// At implements Dynamic.
func (s *RewireSchedule) At(round int) *Graph {
	epoch := round / s.period
	if epoch == 0 || s.fraction == 0 {
		return s.base
	}
	if epoch == s.lastEpoch && s.lastGraph != nil {
		return s.lastGraph
	}
	rng := core.NewRand(core.SplitSeed(s.seed, uint64(epoch)))
	n := s.base.N()
	b := NewBuilder(s.base.Name(), n)
	for _, e := range s.base.Edges() {
		u, v := e[0], e[1]
		if rng.Float64() < s.fraction {
			v = core.NodeID(rng.IntN(n)) // self-loops/duplicates dropped by the builder
		}
		b.AddEdge(u, v)
	}
	s.lastEpoch, s.lastGraph = epoch, b.Build()
	return s.lastGraph
}

// ChurnSchedule models node churn: time is cut into blocks of blockLen
// rounds, and in every block after the first each node is independently
// down with probability rate. A down node keeps its ID but loses all its
// edges; when it comes back up at a block boundary it rejoins as a fresh
// machine, which the engine reports through ResetAt.
type ChurnSchedule struct {
	base     *Graph
	rate     float64
	blockLen int
	seed     uint64

	lastBlock int
	lastGraph *Graph
}

var (
	_ Dynamic = (*ChurnSchedule)(nil)
	_ Churner = (*ChurnSchedule)(nil)
)

// NewChurn returns a churn schedule over base. rate must be in [0, 1)
// and blockLen (the session granularity in rounds) positive.
func NewChurn(base *Graph, rate float64, blockLen int, seed uint64) *ChurnSchedule {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("graph: churn rate %v outside [0, 1)", rate))
	}
	if blockLen < 1 {
		panic("graph: churn block length must be positive")
	}
	return &ChurnSchedule{base: base, rate: rate, blockLen: blockLen,
		seed: seed, lastBlock: -1}
}

// Name implements Dynamic.
func (s *ChurnSchedule) Name() string {
	return fmt.Sprintf("%s+churn-p%.2f-t%d", s.base.Name(), s.rate, s.blockLen)
}

// N implements Dynamic.
func (s *ChurnSchedule) N() int { return s.base.N() }

// down reports whether node v is churned out during the given block.
// Block 0 starts with every node up.
func (s *ChurnSchedule) down(v core.NodeID, block int) bool {
	if block == 0 {
		return false
	}
	h := core.SplitSeed(s.seed, uint64(block)*uint64(s.base.N())+uint64(v))
	return float64(h>>11)/(1<<53) < s.rate
}

// At implements Dynamic: base minus every edge touching a down node.
func (s *ChurnSchedule) At(round int) *Graph {
	block := round / s.blockLen
	if block == 0 || s.rate == 0 {
		return s.base
	}
	if block == s.lastBlock && s.lastGraph != nil {
		return s.lastGraph
	}
	s.lastBlock = block
	s.lastGraph = filterEdges(s.base, func(e [2]core.NodeID) bool {
		return !s.down(e[0], block) && !s.down(e[1], block)
	})
	return s.lastGraph
}

// ResetAt implements Churner: the nodes that were down in the previous
// block and are up again in this round's block. Non-empty only at block
// boundaries.
func (s *ChurnSchedule) ResetAt(round int) []core.NodeID {
	if round == 0 || round%s.blockLen != 0 || s.rate == 0 {
		return nil
	}
	block := round / s.blockLen
	var out []core.NodeID
	for v := 0; v < s.base.N(); v++ {
		id := core.NodeID(v)
		if s.down(id, block-1) && !s.down(id, block) {
			out = append(out, id)
		}
	}
	return out
}

// GrowSchedule is a grow-then-stabilize preferential-attachment
// schedule: nodes m+1..n-1 start isolated and join one at a time, every
// period rounds, each attaching m edges to existing nodes drawn
// proportionally to degree (Barabási–Albert). Once every node has
// joined, the topology is stable for the rest of the run.
type GrowSchedule struct {
	n, m, period int
	seed         uint64
	targets      [][]core.NodeID // attachment targets per joining node

	lastJoined int
	lastGraph  *Graph
}

var _ Dynamic = (*GrowSchedule)(nil)

// NewGrow returns a grow-then-stabilize schedule on n nodes with
// attachment degree m, one join every period rounds. The first m+1 nodes
// form the initial clique at round 0.
func NewGrow(n, m, period int, seed uint64) *GrowSchedule {
	if m < 1 || n < m+2 {
		panic(fmt.Sprintf("graph: grow needs 1 <= m and n >= m+2, got n=%d m=%d", n, m))
	}
	if period < 1 {
		panic("graph: grow period must be positive")
	}
	return &GrowSchedule{
		n: n, m: m, period: period, seed: seed,
		targets:    paTargets(n, m, core.NewRand(seed)),
		lastJoined: -1,
	}
}

// Name implements Dynamic.
func (s *GrowSchedule) Name() string {
	return fmt.Sprintf("grow-pa-%d-m%d-t%d", s.n, s.m, s.period)
}

// N implements Dynamic.
func (s *GrowSchedule) N() int { return s.n }

// Joined returns how many nodes are part of the topology at the given
// round (the remaining n-Joined nodes are still isolated).
func (s *GrowSchedule) Joined(round int) int {
	joined := s.m + 1 + round/s.period
	if joined > s.n {
		joined = s.n
	}
	return joined
}

// At implements Dynamic.
func (s *GrowSchedule) At(round int) *Graph {
	joined := s.Joined(round)
	if joined == s.lastJoined && s.lastGraph != nil {
		return s.lastGraph
	}
	m0 := s.m + 1
	b := NewBuilder(s.Name(), s.n)
	for i := 0; i < m0; i++ {
		for j := i + 1; j < m0; j++ {
			b.AddEdge(core.NodeID(i), core.NodeID(j))
		}
	}
	for j := m0; j < joined; j++ {
		for _, t := range s.targets[j] {
			b.AddEdge(core.NodeID(j), t)
		}
	}
	s.lastJoined, s.lastGraph = joined, b.Build()
	return s.lastGraph
}
