package graph

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
)

// FamilyNames lists the topology families FromName understands.
func FamilyNames() []string {
	return []string{
		"line", "ring", "grid", "torus", "complete", "star", "bintree",
		"barbell", "lollipop", "cliquechain", "hypercube", "er", "randreg",
		"geometric", "pa",
	}
}

// FromName builds a topology of (approximately) n nodes from a family
// name. Random families draw from rng; deterministic families ignore it.
// Grid/torus round n down to a square, hypercube up to a power of two.
// The special family "file:<path>" loads a measured topology from an
// edge-list file via LoadEdgeList; n and rng are ignored (the file
// fixes the node count).
func FromName(name string, n int, rng *rand.Rand) (*Graph, error) {
	if path, ok := strings.CutPrefix(name, "file:"); ok {
		return LoadEdgeList(path)
	}
	if n < 2 {
		return nil, fmt.Errorf("graph: need at least 2 nodes, got %d", n)
	}
	switch name {
	case "line":
		return Line(n), nil
	case "ring":
		return Ring(n), nil
	case "grid":
		s := int(math.Sqrt(float64(n)))
		return Grid(s, s), nil
	case "torus":
		s := int(math.Sqrt(float64(n)))
		return Torus(s, s), nil
	case "complete":
		return Complete(n), nil
	case "star":
		return Star(n), nil
	case "bintree":
		return BinaryTree(n), nil
	case "barbell":
		return Barbell(n), nil
	case "lollipop":
		return Lollipop(n/2, n-n/2), nil
	case "cliquechain":
		return CliqueChain(4, (n+3)/4), nil
	case "hypercube":
		d := 1
		for 1<<d < n {
			d++
		}
		return Hypercube(d), nil
	case "er":
		return ErdosRenyi(n, 4/float64(n), rng), nil
	case "randreg":
		d := 4
		if d >= n {
			d = n - 1 // tiny graphs: the densest regular graph is K_n
		}
		return RandomRegular(n, d, rng), nil
	case "geometric":
		// Radius a constant factor above the sqrt(ln n / n) connectivity
		// threshold; the stitcher covers the tail.
		r := 1.5 * math.Sqrt(math.Log(float64(n))/float64(n))
		return RandomGeometric(n, r, rng), nil
	case "pa":
		return PreferentialAttachment(n, 2, rng), nil
	default:
		return nil, fmt.Errorf("graph: unknown family %q (known: %v, or file:<path> for an edge-list file)", name, FamilyNames())
	}
}
