package graph

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"algossip/internal/core"
)

// LoadEdgeList reads an undirected simple graph from a plain-text edge
// list: one "u v" pair of node ids per line, blank lines and #-comments
// ignored. Node ids must be non-negative integers; the node count is
// max id + 1, so every id in [0, max] exists even if isolated. The
// file must describe a *simple* graph: self-loops and duplicate edges
// (in either orientation) are rejected as errors rather than silently
// dropped — a measurement topology with repeated lines is almost
// certainly a generation bug upstream, and the Builder's silent
// dedup would mask it. Unlike the generator families, connectivity is
// NOT guaranteed; callers inherit whatever the file describes.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: edge list: %w", err)
	}
	defer func() { _ = f.Close() }()

	type edge struct{ u, v int }
	var edges []edge
	seen := make(map[edge]int) // canonical (min,max) -> first line number
	maxID := -1
	sc := bufio.NewScanner(f)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: edge list %s:%d: want \"u v\", got %d fields", path, lineNo, len(fields))
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: edge list %s:%d: bad node id %q", path, lineNo, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: edge list %s:%d: bad node id %q", path, lineNo, fields[1])
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: edge list %s:%d: negative node id in (%d, %d)", path, lineNo, u, v)
		}
		if u == v {
			return nil, fmt.Errorf("graph: edge list %s:%d: self-loop at node %d", path, lineNo, u)
		}
		canon := edge{min(u, v), max(u, v)}
		if first, dup := seen[canon]; dup {
			return nil, fmt.Errorf("graph: edge list %s:%d: duplicate edge (%d, %d), first seen on line %d", path, lineNo, u, v, first)
		}
		seen[canon] = lineNo
		edges = append(edges, edge{u, v})
		if v > maxID {
			maxID = v
		}
		if u > maxID {
			maxID = u
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: edge list %s: %w", path, err)
	}
	if maxID < 1 {
		return nil, fmt.Errorf("graph: edge list %s: need at least 2 nodes and 1 edge", path)
	}
	b := NewBuilder("file-"+strings.TrimSuffix(filepath.Base(path), filepath.Ext(path)), maxID+1)
	for _, e := range edges {
		b.AddEdge(core.NodeID(e.u), core.NodeID(e.v))
	}
	return b.Build(), nil
}
