package graph

// Property tests for the file:<path> edge-list family: a valid file
// round-trips into a graph satisfying the repository-wide structural
// invariants, and every malformed shape — missing file, bad tokens,
// self-loops, duplicate edges — is a loud error rather than a silently
// "fixed" topology.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"algossip/internal/core"
)

// writeEdgeList drops an edge-list file into the test's temp dir.
func writeEdgeList(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestEdgeListLoadsRing(t *testing.T) {
	const n = 8
	var sb strings.Builder
	sb.WriteString("# an 8-ring, with comments and blank lines\n\n")
	for v := 0; v < n; v++ {
		fmt.Fprintf(&sb, "%d %d\n", v, (v+1)%n)
	}
	path := writeEdgeList(t, "ring8.edges", sb.String())

	g, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	checkGraphInvariants(t, g)
	if g.N() != n || g.M() != n {
		t.Fatalf("ring file: got n=%d m=%d, want %d/%d", g.N(), g.M(), n, n)
	}
	for v := 0; v < n; v++ {
		if g.Degree(core.NodeID(v)) != 2 {
			t.Fatalf("ring file: degree(%d) = %d, want 2", v, g.Degree(core.NodeID(v)))
		}
	}
	want := Ring(n)
	if g.Diameter() != want.Diameter() {
		t.Fatalf("ring file: diameter %d, want %d", g.Diameter(), want.Diameter())
	}
}

func TestEdgeListViaFromName(t *testing.T) {
	path := writeEdgeList(t, "tri.edges", "0 1\n1 2\n2 0\n")
	// n and rng are ignored for the file family: the file fixes the size.
	g, err := FromName("file:"+path, 999, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkGraphInvariants(t, g)
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("file family: got n=%d m=%d, want 3/3", g.N(), g.M())
	}
	if !strings.HasPrefix(g.Name(), "file-tri") {
		t.Fatalf("file family: name %q does not carry the file stem", g.Name())
	}
}

func TestEdgeListIsolatedTailNode(t *testing.T) {
	// Ids are dense 0..max: an edge mentioning node 5 implies nodes 3, 4
	// exist too, isolated. The loader must keep them (callers own
	// connectivity), and the graph invariants must still hold.
	path := writeEdgeList(t, "iso.edges", "0 1\n1 2\n2 5\n")
	g, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	checkGraphInvariants(t, g)
	if g.N() != 6 {
		t.Fatalf("got n=%d, want 6 (max id + 1)", g.N())
	}
	if g.Degree(3) != 0 || g.Degree(4) != 0 {
		t.Fatalf("nodes 3, 4 should be isolated, degrees %d/%d", g.Degree(3), g.Degree(4))
	}
}

func TestEdgeListErrors(t *testing.T) {
	cases := []struct {
		name    string
		content string
		wantSub string
	}{
		{"self-loop", "0 1\n2 2\n", "self-loop"},
		{"duplicate", "0 1\n1 2\n0 1\n", "duplicate edge"},
		{"duplicate-reversed", "0 1\n1 2\n1 0\n", "duplicate edge"},
		{"bad-token", "0 1\n1 x\n", "bad node id"},
		{"wrong-arity", "0 1 2\n", "fields"},
		{"negative-id", "0 1\n-1 2\n", "negative"},
		{"empty", "# nothing but comments\n\n", "at least 2 nodes"},
		{"single-node", "", "at least 2 nodes"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			path := writeEdgeList(t, c.name+".edges", c.content)
			_, err := LoadEdgeList(path)
			if err == nil {
				t.Fatalf("%s: loaded cleanly, want error containing %q", c.name, c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("%s: error %q does not mention %q", c.name, err, c.wantSub)
			}
		})
	}
	t.Run("missing-file", func(t *testing.T) {
		if _, err := LoadEdgeList(filepath.Join(t.TempDir(), "nope.edges")); err == nil {
			t.Fatal("missing file loaded cleanly")
		}
		if _, err := FromName("file:"+filepath.Join(t.TempDir(), "nope.edges"), 8, nil); err == nil {
			t.Fatal("missing file loaded cleanly through FromName")
		}
	})
}
