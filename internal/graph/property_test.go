package graph

// Property-based invariants for every generator family reachable through
// FromName, parameterized over a size sweep. These pin the structural
// contract the whole repository builds on — simple undirected connected
// graphs with sorted adjacency — including for the random families and
// the two new ones (geometric, preferential attachment).

import (
	"sort"
	"testing"

	"algossip/internal/core"
)

// propertySizes is the size sweep: boundary sizes, odd/even, non-squares
// and non-powers-of-two to exercise every family's rounding rule.
var propertySizes = []int{2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 25, 33, 48, 64}

// checkGraphInvariants verifies the structural contract of one graph.
func checkGraphInvariants(t *testing.T, g *Graph) {
	t.Helper()
	n := g.N()
	if n <= 0 {
		t.Fatalf("%s: empty graph", g.Name())
	}
	// Handshake lemma: the degree sum is exactly twice the edge count.
	degSum := 0
	for v := 0; v < n; v++ {
		degSum += g.Degree(core.NodeID(v))
	}
	if degSum != 2*g.M() {
		t.Errorf("%s: degree sum %d != 2m = %d", g.Name(), degSum, 2*g.M())
	}
	// Adjacency structure: sorted, duplicate-free, loop-free, symmetric,
	// in range.
	for v := 0; v < n; v++ {
		nb := g.Neighbors(core.NodeID(v))
		if !sort.SliceIsSorted(nb, func(i, j int) bool { return nb[i] < nb[j] }) {
			t.Errorf("%s: neighbors of %d not sorted: %v", g.Name(), v, nb)
		}
		for i, u := range nb {
			if int(u) < 0 || int(u) >= n {
				t.Fatalf("%s: neighbor %d of %d out of range", g.Name(), u, v)
			}
			if u == core.NodeID(v) {
				t.Errorf("%s: self loop at %d", g.Name(), v)
			}
			if i > 0 && nb[i-1] == u {
				t.Errorf("%s: duplicate neighbor %d at %d", g.Name(), u, v)
			}
			if !g.HasEdge(u, core.NodeID(v)) {
				t.Errorf("%s: asymmetric edge (%d,%d)", g.Name(), v, u)
			}
		}
	}
	// Derived quantities agree with each other.
	if got := len(g.Edges()); got != g.M() {
		t.Errorf("%s: Edges() lists %d edges, M() says %d", g.Name(), got, g.M())
	}
	if g.MaxDegree() < g.MinDegree() {
		t.Errorf("%s: max degree %d below min degree %d", g.Name(), g.MaxDegree(), g.MinDegree())
	}
}

// TestFamilyProperties sweeps every FromName family over the size sweep:
// structural invariants, connectivity (every family's documented
// contract) and the per-family node-count rule.
func TestFamilyProperties(t *testing.T) {
	for _, fam := range FamilyNames() {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			for _, n := range propertySizes {
				rng := core.NewRand(uint64(1000 + n))
				g, err := FromName(fam, n, rng)
				if err != nil {
					t.Fatalf("FromName(%s, %d): %v", fam, n, err)
				}
				checkGraphInvariants(t, g)
				if !g.IsConnected() {
					t.Errorf("%s n=%d: disconnected", fam, n)
				}
				// Node-count rule: exact for most families; grid/torus
				// round down to a square, hypercube up to a power of two.
				switch fam {
				case "grid", "torus":
					s := 1
					for (s+1)*(s+1) <= n {
						s++
					}
					if g.N() != s*s {
						t.Errorf("%s n=%d: got %d nodes, want %d", fam, n, g.N(), s*s)
					}
				case "cliquechain":
					if want := 4 * ((n + 3) / 4); g.N() != want {
						t.Errorf("%s n=%d: got %d nodes, want %d (4 cliques of ceil(n/4))", fam, n, g.N(), want)
					}
				case "hypercube":
					if g.N() < n || g.N() >= 2*n {
						t.Errorf("%s n=%d: got %d nodes, want next power of two", fam, n, g.N())
					}
					if g.N()&(g.N()-1) != 0 {
						t.Errorf("%s n=%d: %d not a power of two", fam, n, g.N())
					}
				default:
					if g.N() != n {
						t.Errorf("%s n=%d: got %d nodes", fam, n, g.N())
					}
				}
				// Determinism: the same seed rebuilds the same graph.
				g2, err := FromName(fam, n, core.NewRand(uint64(1000+n)))
				if err != nil {
					t.Fatal(err)
				}
				if !sameEdges(g, g2) {
					t.Errorf("%s n=%d: same seed produced different graphs", fam, n)
				}
			}
		})
	}
}

// TestPreferentialAttachmentProperties pins the closed-form edge count
// and the scale-free skew of the new PA family.
func TestPreferentialAttachmentProperties(t *testing.T) {
	rng := core.NewRand(9)
	for _, m := range []int{1, 2, 3} {
		for _, n := range []int{m + 2, 16, 50} {
			g := PreferentialAttachment(n, m, rng)
			want := m*(m+1)/2 + (n-m-1)*m
			if g.M() != want {
				t.Errorf("pa n=%d m=%d: M = %d, want %d", n, m, g.M(), want)
			}
			if g.MinDegree() < m {
				t.Errorf("pa n=%d m=%d: min degree %d below m", n, m, g.MinDegree())
			}
			if !g.IsConnected() {
				t.Errorf("pa n=%d m=%d: disconnected", n, m)
			}
		}
	}
	// Degree skew: with n >> m the max degree should clearly exceed the
	// attachment degree (hubs emerge).
	g := PreferentialAttachment(200, 2, rng)
	if g.MaxDegree() < 8 {
		t.Errorf("pa 200: max degree %d shows no hub formation", g.MaxDegree())
	}
}

// TestRandomGeometricProperties: radius monotonicity and the unit-square
// geometry bound (no edge count beyond the complete graph, connectivity
// after stitching even for tiny radii).
func TestRandomGeometricProperties(t *testing.T) {
	rng := core.NewRand(17)
	small := RandomGeometric(40, 0.05, rng)
	if !small.IsConnected() {
		t.Error("stitching must connect a sparse geometric sample")
	}
	big := RandomGeometric(40, 1.5, core.NewRand(17))
	// Radius sqrt(2) covers the whole unit square: the graph is complete.
	if big.M() != 40*39/2 {
		t.Errorf("radius 1.5 sample has %d edges, want complete %d", big.M(), 40*39/2)
	}
}
