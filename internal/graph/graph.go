// Package graph provides the undirected-graph substrate of the
// reproduction: the topologies the paper reasons about (line, ring, grid,
// complete graph, binary tree, barbell, and more), breadth-first search,
// exact diameter computation, and rooted-tree utilities for the spanning
// trees built by gossip protocols.
//
// Graphs are simple (no self-loops, no parallel edges), undirected and
// connected unless a generator documents otherwise. Nodes are numbered
// 0..n-1.
package graph

import (
	"fmt"
	"sort"

	"algossip/internal/core"
)

// Graph is an immutable simple undirected graph held as sorted adjacency
// lists. Construct one with a Builder or a generator.
type Graph struct {
	name string
	adj  [][]core.NodeID
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	name string
	n    int
	adj  []map[core.NodeID]struct{}
}

// NewBuilder returns a Builder for a graph with n nodes and no edges.
func NewBuilder(name string, n int) *Builder {
	if n <= 0 {
		panic("graph: node count must be positive")
	}
	adj := make([]map[core.NodeID]struct{}, n)
	for i := range adj {
		adj[i] = make(map[core.NodeID]struct{})
	}
	return &Builder{name: name, n: n, adj: adj}
}

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate
// edges are ignored. It panics if either endpoint is out of range.
func (b *Builder) AddEdge(u, v core.NodeID) {
	if int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.adj[u][v] = struct{}{}
	b.adj[v][u] = struct{}{}
}

// Build finalizes the graph with sorted adjacency lists.
func (b *Builder) Build() *Graph {
	adj := make([][]core.NodeID, b.n)
	for i, set := range b.adj {
		row := make([]core.NodeID, 0, len(set))
		for v := range set {
			row = append(row, v)
		}
		sort.Slice(row, func(a, c int) bool { return row[a] < row[c] })
		adj[i] = row
	}
	return &Graph{name: b.name, adj: adj}
}

// Name returns the generator-assigned name, e.g. "grid-8x8".
func (g *Graph) Name() string { return g.name }

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int {
	total := 0
	for _, nb := range g.adj {
		total += len(nb)
	}
	return total / 2
}

// Neighbors returns the sorted neighbor list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v core.NodeID) []core.NodeID { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v core.NodeID) int { return len(g.adj[v]) }

// MaxDegree returns Δ, the maximum degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nb := range g.adj {
		if len(nb) > max {
			max = len(nb)
		}
	}
	return max
}

// MinDegree returns the minimum degree.
func (g *Graph) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	min := len(g.adj[0])
	for _, nb := range g.adj[1:] {
		if len(nb) < min {
			min = len(nb)
		}
	}
	return min
}

// HasEdge reports whether {u,v} is an edge, by binary search.
func (g *Graph) HasEdge(u, v core.NodeID) bool {
	nb := g.adj[u]
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return i < len(nb) && nb[i] == v
}

// Edges returns all edges as pairs with u < v.
func (g *Graph) Edges() [][2]core.NodeID {
	out := make([][2]core.NodeID, 0, g.M())
	for u, nb := range g.adj {
		for _, v := range nb {
			if core.NodeID(u) < v {
				out = append(out, [2]core.NodeID{core.NodeID(u), v})
			}
		}
	}
	return out
}

// IsConnected reports whether the graph is connected.
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return false
	}
	dist, _ := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Subgraph returns the subgraph induced by the given nodes, relabeled
// 0..len(nodes)-1 in the order supplied.
func (g *Graph) Subgraph(nodes []core.NodeID) *Graph {
	index := make(map[core.NodeID]int, len(nodes))
	for i, v := range nodes {
		index[v] = i
	}
	b := NewBuilder(g.name+"-sub", len(nodes))
	for i, v := range nodes {
		for _, u := range g.Neighbors(v) {
			if j, ok := index[u]; ok {
				b.AddEdge(core.NodeID(i), core.NodeID(j))
			}
		}
	}
	return b.Build()
}

// DegreeHistogram returns a map from degree to the number of nodes with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	hist := make(map[int]int)
	for _, nb := range g.adj {
		hist[len(nb)]++
	}
	return hist
}

// AvgDegree returns the mean degree 2m/n.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.M()) / float64(g.N())
}
