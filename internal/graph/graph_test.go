package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"algossip/internal/core"
)

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder("t", 3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(1, 1) // self loop, ignored
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge lookup failed")
	}
	if g.HasEdge(1, 2) {
		t.Fatal("phantom edge")
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBuilder("t", 2).AddEdge(0, 2)
}

// TestGeneratorInvariants checks n, m, Δ, connectivity and diameter for
// every deterministic generator against closed-form values.
func TestGeneratorInvariants(t *testing.T) {
	tests := []struct {
		g        *Graph
		wantN    int
		wantM    int
		wantDeg  int
		wantDiam int
	}{
		{Line(10), 10, 9, 2, 9},
		{Line(2), 2, 1, 1, 1},
		{Ring(10), 10, 10, 2, 5},
		{Ring(9), 9, 9, 2, 4},
		{Grid(4, 5), 20, 31, 4, 7},
		{Grid(1, 7), 7, 6, 2, 6},
		{Torus(4, 4), 16, 32, 4, 4},
		{Complete(8), 8, 28, 7, 1},
		{Star(9), 9, 8, 8, 2},
		{BinaryTree(7), 7, 6, 3, 4},
		{BinaryTree(15), 15, 14, 3, 6},
		{KAryTree(13, 3), 13, 12, 4, 4},
		{Barbell(10), 10, 21, 5, 3},
		{Barbell(2), 2, 1, 1, 1},
		{Lollipop(5, 3), 8, 13, 5, 4},
		{CliqueChain(3, 4), 12, 20, 4, 5},
		{Hypercube(4), 16, 32, 4, 4},
	}
	for _, tt := range tests {
		name := tt.g.Name()
		if got := tt.g.N(); got != tt.wantN {
			t.Errorf("%s: N = %d, want %d", name, got, tt.wantN)
		}
		if got := tt.g.M(); got != tt.wantM {
			t.Errorf("%s: M = %d, want %d", name, got, tt.wantM)
		}
		if got := tt.g.MaxDegree(); got != tt.wantDeg {
			t.Errorf("%s: MaxDegree = %d, want %d", name, got, tt.wantDeg)
		}
		if got := tt.g.Diameter(); got != tt.wantDiam {
			t.Errorf("%s: Diameter = %d, want %d", name, got, tt.wantDiam)
		}
		if !tt.g.IsConnected() {
			t.Errorf("%s: not connected", name)
		}
	}
}

func TestBarbellStructure(t *testing.T) {
	g := Barbell(20)
	// Exactly one bridge edge: between 9 and 10.
	if !g.HasEdge(9, 10) {
		t.Fatal("bridge edge missing")
	}
	cross := 0
	for _, e := range g.Edges() {
		if e[0] < 10 && e[1] >= 10 {
			cross++
		}
	}
	if cross != 1 {
		t.Fatalf("crossing edges = %d, want 1", cross)
	}
	if g.MinDegree() != 9 {
		t.Fatalf("min degree = %d, want 9", g.MinDegree())
	}
}

func TestRandomGeneratorsConnected(t *testing.T) {
	rng := core.NewRand(12345)
	for trial := 0; trial < 5; trial++ {
		if g := ErdosRenyi(60, 0.05, rng); !g.IsConnected() {
			t.Error("ErdosRenyi sample disconnected after stitching")
		}
		if g := RandomRegular(50, 3, rng); !g.IsConnected() {
			t.Error("RandomRegular sample disconnected")
		}
		if g := WattsStrogatz(50, 4, 0.2, rng); !g.IsConnected() {
			t.Error("WattsStrogatz sample disconnected")
		}
	}
}

func TestRandomRegularDegree(t *testing.T) {
	rng := core.NewRand(7)
	g := RandomRegular(40, 4, rng)
	if g.MaxDegree() > 5 {
		t.Errorf("max degree = %d, want close to 4", g.MaxDegree())
	}
	if g.MinDegree() < 2 {
		t.Errorf("min degree = %d, too small", g.MinDegree())
	}
}

func TestBFSLine(t *testing.T) {
	g := Line(6)
	dist, parent := g.BFS(0)
	for v := 0; v < 6; v++ {
		if dist[v] != v {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], v)
		}
	}
	if parent[0] != core.NilNode {
		t.Fatal("root must have no parent")
	}
	for v := 1; v < 6; v++ {
		if parent[v] != core.NodeID(v-1) {
			t.Fatalf("parent[%d] = %d", v, parent[v])
		}
	}
}

func TestBFSTreeDepthBoundedByDiameter(t *testing.T) {
	graphs := []*Graph{Line(20), Ring(21), Grid(5, 6), Complete(10), Barbell(12), BinaryTree(31)}
	for _, g := range graphs {
		d := g.Diameter()
		for root := 0; root < g.N(); root += 3 {
			tree := g.BFSTree(core.NodeID(root))
			if err := tree.Validate(); err != nil {
				t.Fatalf("%s: invalid BFS tree: %v", g.Name(), err)
			}
			if tree.Depth() > d {
				t.Fatalf("%s: BFS depth %d exceeds diameter %d", g.Name(), tree.Depth(), d)
			}
		}
	}
}

func TestTreeValidateRejectsBadTrees(t *testing.T) {
	// Cycle: 1 -> 2 -> 1.
	bad := &Tree{Root: 0, Parent: []core.NodeID{core.NilNode, 2, 1}}
	if err := bad.Validate(); err == nil {
		t.Error("cycle not detected")
	}
	// Root with a parent.
	bad2 := &Tree{Root: 0, Parent: []core.NodeID{1, core.NilNode}}
	if err := bad2.Validate(); err == nil {
		t.Error("rooted-root not detected")
	}
	// Orphan (parent == NilNode on a non-root).
	bad3 := &Tree{Root: 0, Parent: []core.NodeID{core.NilNode, core.NilNode}}
	if err := bad3.Validate(); err == nil {
		t.Error("orphan not detected")
	}
}

func TestTreeDepthsChildrenDiameter(t *testing.T) {
	// A path tree 0 <- 1 <- 2 <- 3.
	tr := &Tree{Root: 0, Parent: []core.NodeID{core.NilNode, 0, 1, 2}}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	d := tr.Depths()
	for v, want := range []int{0, 1, 2, 3} {
		if d[v] != want {
			t.Fatalf("depth[%d] = %d, want %d", v, d[v], want)
		}
	}
	if tr.Depth() != 3 {
		t.Fatalf("Depth = %d", tr.Depth())
	}
	if tr.Diameter() != 3 {
		t.Fatalf("Diameter = %d", tr.Diameter())
	}
	ch := tr.Children()
	if len(ch[0]) != 1 || ch[0][0] != 1 {
		t.Fatal("children of 0 wrong")
	}
	path := tr.PathToRoot(3)
	if len(path) != 4 || path[0] != 3 || path[3] != 0 {
		t.Fatalf("PathToRoot = %v", path)
	}
}

// TestSumDegreesAlongShortestPath validates Lemma 2 of the paper: on any
// connected graph, the sum of degrees along any shortest path is at most 3n.
func TestSumDegreesAlongShortestPath(t *testing.T) {
	rng := core.NewRand(99)
	graphs := []*Graph{
		Line(30), Ring(30), Grid(6, 6), Complete(25), Barbell(24),
		BinaryTree(31), Lollipop(12, 10), CliqueChain(3, 8), Hypercube(5),
		ErdosRenyi(40, 0.1, rng), RandomRegular(36, 4, rng),
	}
	for _, g := range graphs {
		n := g.N()
		for root := 0; root < n; root += 5 {
			_, parent := g.BFS(core.NodeID(root))
			for v := 0; v < n; v++ {
				sum := 0
				u := core.NodeID(v)
				for u != core.NilNode {
					sum += g.Degree(u)
					u = parent[u]
				}
				if sum > 3*n {
					t.Fatalf("%s: degree sum %d on path %d->%d exceeds 3n=%d",
						g.Name(), sum, root, v, 3*n)
				}
			}
		}
	}
}

// TestConstantDegreeDiameterLogN validates Claim 1: constant-max-degree
// graphs have diameter Ω(log n).
func TestConstantDegreeDiameterLogN(t *testing.T) {
	for _, g := range []*Graph{Line(64), Ring(64), Grid(8, 8), BinaryTree(63), Hypercube(6)} {
		delta := g.MaxDegree()
		d := g.Diameter()
		n := g.N()
		// D + 2 >= log_Δ(n) from the claim's proof.
		logDeltaN := 0
		for v := 1; v < n; v *= delta {
			logDeltaN++
		}
		if d+2 < logDeltaN {
			t.Errorf("%s: diameter %d violates Claim 1 bound %d", g.Name(), d, logDeltaN)
		}
	}
}

func TestDiameterApproxNeverExceedsExact(t *testing.T) {
	rng := core.NewRand(5)
	graphs := []*Graph{Line(15), Grid(4, 7), Barbell(16), ErdosRenyi(30, 0.15, rng)}
	for _, g := range graphs {
		exact, approx := g.Diameter(), g.DiameterApprox()
		if approx > exact {
			t.Errorf("%s: approx %d > exact %d", g.Name(), approx, exact)
		}
		// Double sweep is exact on trees.
	}
	tree := BinaryTree(31)
	if tree.Diameter() != tree.DiameterApprox() {
		t.Error("double sweep must be exact on trees")
	}
}

func TestQuickGridDiameter(t *testing.T) {
	check := func(r8, c8 uint8) bool {
		r := 1 + int(r8)%9
		c := 1 + int(c8)%9
		return Grid(r, c).Diameter() == r+c-2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWriteDOT(t *testing.T) {
	var sb strings.Builder
	if err := Line(3).WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "0 -- 1") || !strings.Contains(out, "1 -- 2") {
		t.Fatalf("DOT output missing edges:\n%s", out)
	}
	var tb strings.Builder
	tr := Line(3).BFSTree(0)
	if err := tr.WriteDOT(&tb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "1 -> 0") {
		t.Fatalf("tree DOT output missing parent edge:\n%s", tb.String())
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := Grid(3, 3)
	b := NewBuilder("copy", g.N())
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	cp := b.Build()
	if cp.M() != g.M() || cp.Diameter() != g.Diameter() {
		t.Fatal("edge round trip failed")
	}
}

func TestNewGenerators(t *testing.T) {
	tests := []struct {
		g        *Graph
		wantN    int
		wantM    int
		wantDeg  int
		wantDiam int
	}{
		{CompleteBipartite(3, 4), 7, 12, 4, 2},
		{CompleteBipartite(1, 5), 6, 5, 5, 2},
		{Grid3D(2, 3, 4), 24, 46, 5, 6},
		{Grid3D(2, 2, 2), 8, 12, 3, 3},
		{Caterpillar(4, 2), 12, 11, 4, 5},
		{Caterpillar(1, 3), 4, 3, 3, 2},
	}
	for _, tt := range tests {
		name := tt.g.Name()
		if got := tt.g.N(); got != tt.wantN {
			t.Errorf("%s: N = %d, want %d", name, got, tt.wantN)
		}
		if got := tt.g.M(); got != tt.wantM {
			t.Errorf("%s: M = %d, want %d", name, got, tt.wantM)
		}
		if got := tt.g.MaxDegree(); got != tt.wantDeg {
			t.Errorf("%s: MaxDegree = %d, want %d", name, got, tt.wantDeg)
		}
		if got := tt.g.Diameter(); got != tt.wantDiam {
			t.Errorf("%s: Diameter = %d, want %d", name, got, tt.wantDiam)
		}
		if !tt.g.IsConnected() {
			t.Errorf("%s: not connected", name)
		}
	}
}

func TestSubgraph(t *testing.T) {
	g := Barbell(10) // left clique 0..4
	sub := g.Subgraph([]core.NodeID{0, 1, 2, 3, 4})
	if sub.N() != 5 || sub.M() != 10 {
		t.Fatalf("left clique subgraph: n=%d m=%d", sub.N(), sub.M())
	}
	if sub.Diameter() != 1 {
		t.Fatalf("clique subgraph diameter = %d", sub.Diameter())
	}
	// Nodes from both sides: only the bridge edge (4-5) crosses.
	cross := g.Subgraph([]core.NodeID{4, 5})
	if cross.M() != 1 {
		t.Fatalf("bridge subgraph m = %d", cross.M())
	}
	empty := g.Subgraph([]core.NodeID{0, 9})
	if empty.M() != 0 {
		t.Fatalf("disconnected pair subgraph m = %d", empty.M())
	}
}

func TestDegreeHistogramAndAvgDegree(t *testing.T) {
	g := Star(5)
	hist := g.DegreeHistogram()
	if hist[4] != 1 || hist[1] != 4 {
		t.Fatalf("histogram = %v", hist)
	}
	if got := g.AvgDegree(); got != 1.6 {
		t.Fatalf("AvgDegree = %v, want 1.6", got)
	}
}

func BenchmarkBFSGrid(b *testing.B) {
	g := Grid(32, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.BFS(core.NodeID(i % g.N()))
	}
}

func BenchmarkDiameterBarbell(b *testing.B) {
	g := Barbell(128)
	for i := 0; i < b.N; i++ {
		_ = g.DiameterApprox()
	}
}

// TestMinCutKnownValues checks Stoer-Wagner against closed-form cuts.
func TestMinCutKnownValues(t *testing.T) {
	tests := []struct {
		g    *Graph
		want int
	}{
		{Line(10), 1},       // any single path edge
		{Ring(10), 2},       // two ring edges
		{Complete(6), 5},    // isolate one vertex
		{Barbell(12), 1},    // the bridge
		{Grid(4, 4), 2},     // corner vertex degree
		{BinaryTree(15), 1}, // any tree edge
		{Hypercube(4), 4},   // vertex degree d
		{Star(7), 1},        // any leaf edge
		{CliqueChain(3, 5), 1},
		{CompleteBipartite(3, 5), 3},
	}
	for _, tt := range tests {
		if got := tt.g.MinCut(); got != tt.want {
			t.Errorf("%s: MinCut = %d, want %d", tt.g.Name(), got, tt.want)
		}
	}
}

// TestMinCutBounds: for any connected graph, 1 <= mincut <= min degree.
func TestMinCutBounds(t *testing.T) {
	rng := core.NewRand(77)
	graphs := []*Graph{
		ErdosRenyi(24, 0.25, rng),
		RandomRegular(20, 4, rng),
		WattsStrogatz(20, 4, 0.3, rng),
		Lollipop(8, 5),
		Torus(4, 5),
	}
	for _, g := range graphs {
		cut := g.MinCut()
		if cut < 1 || cut > g.MinDegree() {
			t.Errorf("%s: MinCut = %d outside [1, minDeg=%d]", g.Name(), cut, g.MinDegree())
		}
	}
}

func TestMinCutTrivial(t *testing.T) {
	if Line(1).MinCut() != 0 {
		t.Error("single node min cut must be 0")
	}
	if Line(2).MinCut() != 1 {
		t.Error("single edge min cut must be 1")
	}
}
