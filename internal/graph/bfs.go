package graph

import (
	"strconv"

	"algossip/internal/core"
)

// BFS performs breadth-first search from root and returns, for every node,
// its distance from root (-1 if unreachable) and its BFS parent (NilNode for
// the root and unreachable nodes). The parent array is a shortest-path
// spanning tree rooted at root — exactly the tree T_n used in the proof of
// Theorem 1.
func (g *Graph) BFS(root core.NodeID) (dist []int, parent []core.NodeID) {
	n := g.N()
	dist = make([]int, n)
	parent = make([]core.NodeID, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = core.NilNode
	}
	dist[root] = 0
	queue := make([]core.NodeID, 0, n)
	queue = append(queue, root)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return dist, parent
}

// BFSTree returns the shortest-path spanning tree rooted at root.
// It panics if the graph is disconnected.
func (g *Graph) BFSTree(root core.NodeID) *Tree {
	dist, parent := g.BFS(root)
	for v, d := range dist {
		if d < 0 {
			panic("graph: BFSTree on a disconnected graph (node " +
				strconv.Itoa(v) + " unreachable)")
		}
	}
	return &Tree{Root: root, Parent: parent}
}

// Eccentricity returns the greatest BFS distance from v. It panics if the
// graph is disconnected.
func (g *Graph) Eccentricity(v core.NodeID) int {
	dist, _ := g.BFS(v)
	ecc := 0
	for u, d := range dist {
		if d < 0 {
			panic("graph: eccentricity on a disconnected graph (node " +
				strconv.Itoa(u) + " unreachable)")
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact diameter D by running BFS from every node.
// O(n·m); fine for the simulation sizes used in experiments.
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.N(); v++ {
		if e := g.Eccentricity(core.NodeID(v)); e > diam {
			diam = e
		}
	}
	return diam
}

// DiameterApprox returns a lower bound on the diameter via a double BFS
// sweep (exact on trees), in O(m) time. Useful for large graphs where the
// exact O(n·m) computation is too slow.
func (g *Graph) DiameterApprox() int {
	dist, _ := g.BFS(0)
	far := core.NodeID(0)
	for v, d := range dist {
		if d > dist[far] {
			far = core.NodeID(v)
		}
	}
	return g.Eccentricity(far)
}
