package graph

import (
	"fmt"
	"math/rand/v2"

	"algossip/internal/core"
)

// Line returns the path graph P_n: 0-1-2-...-(n-1). Constant maximum degree
// 2, diameter n-1 — the paper's canonical "uniform AG is order optimal"
// topology (Table 2, row 1).
func Line(n int) *Graph {
	b := NewBuilder(fmt.Sprintf("line-%d", n), n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(core.NodeID(i), core.NodeID(i+1))
	}
	return b.Build()
}

// Ring returns the cycle C_n. Constant maximum degree 2, diameter ⌊n/2⌋.
func Ring(n int) *Graph {
	b := NewBuilder(fmt.Sprintf("ring-%d", n), n)
	for i := 0; i < n; i++ {
		b.AddEdge(core.NodeID(i), core.NodeID((i+1)%n))
	}
	return b.Build()
}

// Grid returns the rows x cols 2D grid. Maximum degree 4, diameter
// rows+cols-2 (Table 2, row 2 uses the √n x √n square grid).
func Grid(rows, cols int) *Graph {
	b := NewBuilder(fmt.Sprintf("grid-%dx%d", rows, cols), rows*cols)
	id := func(r, c int) core.NodeID { return core.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Torus returns the rows x cols grid with wraparound edges. Maximum degree
// 4, vertex-transitive.
func Torus(rows, cols int) *Graph {
	b := NewBuilder(fmt.Sprintf("torus-%dx%d", rows, cols), rows*cols)
	id := func(r, c int) core.NodeID { return core.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id(r, (c+1)%cols))
			b.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return b.Build()
}

// Complete returns the complete graph K_n (diameter 1, Δ = n-1): the
// topology of Deb et al.'s original algebraic-gossip analysis.
func Complete(n int) *Graph {
	b := NewBuilder(fmt.Sprintf("complete-%d", n), n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(core.NodeID(i), core.NodeID(j))
		}
	}
	return b.Build()
}

// Star returns the star graph: node 0 connected to all others. Diameter 2,
// Δ = n-1.
func Star(n int) *Graph {
	b := NewBuilder(fmt.Sprintf("star-%d", n), n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, core.NodeID(i))
	}
	return b.Build()
}

// BinaryTree returns the complete binary tree with n nodes (heap indexing:
// node i has children 2i+1 and 2i+2). Constant maximum degree 3, diameter
// Θ(log n) — Table 2, row 3.
func BinaryTree(n int) *Graph {
	return KAryTree(n, 2)
}

// KAryTree returns the complete k-ary tree with n nodes in heap order.
func KAryTree(n, k int) *Graph {
	if k < 1 {
		panic("graph: arity must be at least 1")
	}
	b := NewBuilder(fmt.Sprintf("%d-ary-tree-%d", k, n), n)
	for i := 1; i < n; i++ {
		b.AddEdge(core.NodeID(i), core.NodeID((i-1)/k))
	}
	return b.Build()
}

// Barbell returns the barbell graph: two cliques of ⌈n/2⌉ and ⌊n/2⌋ nodes
// joined by a single edge. It is the paper's worst case for uniform
// algebraic gossip (Ω(n²) rounds for all-to-all) and the showcase for TAG
// (Θ(n)) and for IS (large weak conductance despite the bottleneck).
// Nodes 0..⌈n/2⌉-1 form the left clique; the bridge is between the last
// left node and the first right node.
func Barbell(n int) *Graph {
	if n < 2 {
		panic("graph: barbell needs at least 2 nodes")
	}
	b := NewBuilder(fmt.Sprintf("barbell-%d", n), n)
	left := (n + 1) / 2
	for i := 0; i < left; i++ {
		for j := i + 1; j < left; j++ {
			b.AddEdge(core.NodeID(i), core.NodeID(j))
		}
	}
	for i := left; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(core.NodeID(i), core.NodeID(j))
		}
	}
	// The single bridge edge.
	if left < n {
		b.AddEdge(core.NodeID(left-1), core.NodeID(left))
	}
	return b.Build()
}

// Lollipop returns a clique of cliqueSize nodes with a path of pathLen
// additional nodes attached: another classic low-conductance topology.
func Lollipop(cliqueSize, pathLen int) *Graph {
	n := cliqueSize + pathLen
	b := NewBuilder(fmt.Sprintf("lollipop-%d+%d", cliqueSize, pathLen), n)
	for i := 0; i < cliqueSize; i++ {
		for j := i + 1; j < cliqueSize; j++ {
			b.AddEdge(core.NodeID(i), core.NodeID(j))
		}
	}
	for i := cliqueSize; i < n; i++ {
		b.AddEdge(core.NodeID(i-1), core.NodeID(i))
	}
	return b.Build()
}

// CliqueChain returns c cliques of size m arranged in a chain, consecutive
// cliques joined by a single edge. For constant c this family has large
// weak conductance Φ_c but poor (classic) conductance — the graphs Section 6
// of the paper targets. n = c*m.
func CliqueChain(c, m int) *Graph {
	if c < 1 || m < 1 {
		panic("graph: clique chain needs c >= 1 and m >= 1")
	}
	n := c * m
	b := NewBuilder(fmt.Sprintf("cliquechain-%dx%d", c, m), n)
	for q := 0; q < c; q++ {
		base := q * m
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				b.AddEdge(core.NodeID(base+i), core.NodeID(base+j))
			}
		}
		if q > 0 {
			b.AddEdge(core.NodeID(base-1), core.NodeID(base))
		}
	}
	return b.Build()
}

// Hypercube returns the d-dimensional hypercube with 2^d nodes: degree d,
// diameter d — a log-degree, log-diameter benchmark.
func Hypercube(d int) *Graph {
	n := 1 << d
	b := NewBuilder(fmt.Sprintf("hypercube-%d", d), n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			b.AddEdge(core.NodeID(v), core.NodeID(v^(1<<bit)))
		}
	}
	return b.Build()
}

// ErdosRenyi returns a connected G(n, p) sample: edges are drawn i.i.d.
// with probability p, and if the sample is disconnected the components are
// stitched with uniformly random edges (documented deviation to guarantee
// the connectivity all theorems assume).
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(fmt.Sprintf("er-%d-p%.3f", n, p), n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(core.NodeID(i), core.NodeID(j))
			}
		}
	}
	return stitchConnected(b.Build(), rng)
}

// stitchConnected repairs a possibly disconnected sample by repeatedly
// adding an edge between a random unreached and a random reached node
// (BFS from 0) until the graph is connected. Already connected graphs are
// returned unchanged, with no randomness drawn.
func stitchConnected(g *Graph, rng *rand.Rand) *Graph {
	for {
		dist, _ := g.BFS(0)
		var reached, unreached []core.NodeID
		for v, d := range dist {
			if d >= 0 {
				reached = append(reached, core.NodeID(v))
			} else {
				unreached = append(unreached, core.NodeID(v))
			}
		}
		if len(unreached) == 0 {
			return g
		}
		b2 := NewBuilderFrom(g.Name(), g)
		b2.AddEdge(unreached[rng.IntN(len(unreached))], reached[rng.IntN(len(reached))])
		g = b2.Build()
	}
}

// RandomRegular returns a (near-)d-regular connected graph on n nodes via
// the pairing model with retries; if pairing repeatedly fails, leftover
// stubs are dropped, so a few vertices may have degree d-1. n*d should be
// even for an exact construction.
func RandomRegular(n, d int, rng *rand.Rand) *Graph {
	if d >= n {
		panic("graph: degree must be < n")
	}
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g, ok := tryPairing(n, d, rng)
		if ok && g.IsConnected() {
			return g
		}
	}
	// Fallback: a ring plus random chords keeps it connected and near-regular.
	b := NewBuilder(fmt.Sprintf("randreg-%d-d%d", n, d), n)
	for i := 0; i < n; i++ {
		b.AddEdge(core.NodeID(i), core.NodeID((i+1)%n))
	}
	for extra := 0; extra < (d-2)*n/2; extra++ {
		b.AddEdge(core.NodeID(rng.IntN(n)), core.NodeID(rng.IntN(n)))
	}
	return b.Build()
}

func tryPairing(n, d int, rng *rand.Rand) (*Graph, bool) {
	stubs := make([]core.NodeID, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, core.NodeID(v))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	b := NewBuilder(fmt.Sprintf("randreg-%d-d%d", n, d), n)
	seen := make(map[[2]core.NodeID]bool)
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			return nil, false
		}
		key := [2]core.NodeID{min(u, v), max(u, v)}
		if seen[key] {
			return nil, false
		}
		seen[key] = true
		b.AddEdge(u, v)
	}
	return b.Build(), true
}

// WattsStrogatz returns a small-world ring lattice: each node connected to
// its k/2 nearest neighbors on each side, with each edge rewired to a random
// endpoint with probability beta. Connectivity is restored by stitching as
// in ErdosRenyi if rewiring disconnects the graph.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand) *Graph {
	if k%2 != 0 || k >= n {
		panic("graph: WattsStrogatz requires even k < n")
	}
	type edge struct{ u, v core.NodeID }
	var edges []edge
	for i := 0; i < n; i++ {
		for j := 1; j <= k/2; j++ {
			edges = append(edges, edge{core.NodeID(i), core.NodeID((i + j) % n)})
		}
	}
	for i := range edges {
		if rng.Float64() < beta {
			edges[i].v = core.NodeID(rng.IntN(n))
		}
	}
	b := NewBuilder(fmt.Sprintf("ws-%d-k%d-b%.2f", n, k, beta), n)
	for _, e := range edges {
		b.AddEdge(e.u, e.v)
	}
	g := b.Build()
	if g.IsConnected() {
		return g
	}
	// Reuse the ER stitcher by adding ring edges until connected.
	b2 := NewBuilder(g.Name(), n)
	for _, e := range g.Edges() {
		b2.AddEdge(e[0], e[1])
	}
	for i := 0; i < n; i++ {
		b2.AddEdge(core.NodeID(i), core.NodeID((i+1)%n))
	}
	return b2.Build()
}

// CompleteBipartite returns K_{a,b}: every left node connected to every
// right node. Diameter 2, Δ = max(a,b).
func CompleteBipartite(a, b int) *Graph {
	g := NewBuilder(fmt.Sprintf("bipartite-%dx%d", a, b), a+b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.AddEdge(core.NodeID(i), core.NodeID(a+j))
		}
	}
	return g.Build()
}

// Grid3D returns the x·y·z three-dimensional grid (Δ = 6).
func Grid3D(x, y, z int) *Graph {
	b := NewBuilder(fmt.Sprintf("grid3d-%dx%dx%d", x, y, z), x*y*z)
	id := func(i, j, k int) core.NodeID { return core.NodeID((i*y+j)*z + k) }
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				if i+1 < x {
					b.AddEdge(id(i, j, k), id(i+1, j, k))
				}
				if j+1 < y {
					b.AddEdge(id(i, j, k), id(i, j+1, k))
				}
				if k+1 < z {
					b.AddEdge(id(i, j, k), id(i, j, k+1))
				}
			}
		}
	}
	return b.Build()
}

// RandomGeometric returns a connected random geometric graph: n points
// drawn uniformly in the unit square, with an edge between every pair at
// Euclidean distance at most radius — the standard model for wireless /
// sensor deployments. As with ErdosRenyi, a disconnected sample is
// stitched with random edges (documented deviation so the theorems'
// connectivity assumption always holds).
func RandomGeometric(n int, radius float64, rng *rand.Rand) *Graph {
	if radius <= 0 {
		panic("graph: geometric radius must be positive")
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	b := NewBuilder(fmt.Sprintf("geo-%d-r%.2f", n, radius), n)
	r2 := radius * radius
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if dx*dx+dy*dy <= r2 {
				b.AddEdge(core.NodeID(i), core.NodeID(j))
			}
		}
	}
	return stitchConnected(b.Build(), rng)
}

// PreferentialAttachment returns a Barabási–Albert scale-free graph: the
// first m+1 nodes form a clique, and every later node attaches m edges
// to distinct existing nodes drawn proportionally to degree. The result
// is connected by construction with exactly m(m+1)/2 + (n-m-1)·m edges.
// It is also the stabilized topology of the grow-then-stabilize dynamic
// schedule (NewGrow).
func PreferentialAttachment(n, m int, rng *rand.Rand) *Graph {
	if m < 1 {
		panic("graph: attachment degree must be positive")
	}
	if n <= m+1 {
		g := Complete(n)
		return NewBuilderFrom(fmt.Sprintf("pa-%d-m%d", n, m), g).Build()
	}
	b := NewBuilder(fmt.Sprintf("pa-%d-m%d", n, m), n)
	m0 := m + 1
	for i := 0; i < m0; i++ {
		for j := i + 1; j < m0; j++ {
			b.AddEdge(core.NodeID(i), core.NodeID(j))
		}
	}
	for j, targets := range paTargets(n, m, rng) {
		for _, t := range targets {
			b.AddEdge(core.NodeID(j), t)
		}
	}
	return b.Build()
}

// paTargets returns, for each joining node j in m+1..n-1, the m distinct
// existing nodes it attaches to under preferential attachment (sampling
// proportional to degree+1 via the repeated-nodes list). Entries below
// m+1 are nil — those nodes belong to the initial clique.
func paTargets(n, m int, rng *rand.Rand) [][]core.NodeID {
	m0 := m + 1
	out := make([][]core.NodeID, n)
	// pool holds each joined node once per unit of (degree+1), so a
	// uniform draw from it is the preferential-attachment distribution.
	pool := make([]core.NodeID, 0, 2*m*n)
	for v := 0; v < m0; v++ {
		for i := 0; i < m0; i++ { // clique degree m plus the +1 smoothing
			pool = append(pool, core.NodeID(v))
		}
	}
	for j := m0; j < n; j++ {
		chosen := make(map[core.NodeID]bool, m)
		targets := make([]core.NodeID, 0, m)
		for len(targets) < m {
			t := pool[rng.IntN(len(pool))]
			if chosen[t] {
				continue // resample until the m targets are distinct
			}
			chosen[t] = true
			targets = append(targets, t)
		}
		for _, t := range targets {
			pool = append(pool, t)
		}
		for i := 0; i < m+1; i++ {
			pool = append(pool, core.NodeID(j))
		}
		out[j] = targets
	}
	return out
}

// NewBuilderFrom returns a Builder pre-loaded with g's edges under a new
// name — the copy-and-modify entry point the dynamic schedules and
// renaming generators share.
func NewBuilderFrom(name string, g *Graph) *Builder {
	b := NewBuilder(name, g.N())
	for _, e := range g.Edges() {
		b.AddEdge(e[0], e[1])
	}
	return b
}

// Caterpillar returns a spine path of spine nodes with legs leaf nodes
// hanging off each spine node — a constant-degree tree with linear
// diameter, another Theorem 3 regime.
func Caterpillar(spine, legs int) *Graph {
	n := spine * (1 + legs)
	b := NewBuilder(fmt.Sprintf("caterpillar-%dx%d", spine, legs), n)
	for i := 0; i < spine; i++ {
		if i+1 < spine {
			b.AddEdge(core.NodeID(i), core.NodeID(i+1))
		}
		for l := 0; l < legs; l++ {
			b.AddEdge(core.NodeID(i), core.NodeID(spine+i*legs+l))
		}
	}
	return b.Build()
}
