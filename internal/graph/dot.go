package graph

import (
	"fmt"
	"io"
)

// WriteDOT writes the graph in Graphviz DOT format, for debugging and
// documentation figures.
func (g *Graph) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "graph %q {\n", g.Name()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(w, "  %d -- %d;\n", e[0], e[1]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteDOT writes the rooted tree in Graphviz DOT format with edges
// directed child -> parent.
func (t *Tree) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph tree {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %d [shape=doublecircle];\n", t.Root); err != nil {
		return err
	}
	for v, p := range t.Parent {
		if p < 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "  %d -> %d;\n", v, p); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
