package graph

import (
	"fmt"

	"algossip/internal/core"
)

// Tree is a rooted spanning tree given by a parent array: Parent[v] is the
// parent of v, and Parent[Root] == NilNode. Spanning-tree gossip protocols
// (paper Section 2, "STP Gossip") produce exactly this structure, and TAG's
// Phase 2 runs algebraic gossip along it.
type Tree struct {
	Root   core.NodeID
	Parent []core.NodeID
}

// N returns the number of nodes.
func (t *Tree) N() int { return len(t.Parent) }

// Validate checks that the parent array encodes a single tree spanning all
// n nodes, rooted at Root, with no cycles.
func (t *Tree) Validate() error {
	n := t.N()
	if n == 0 {
		return fmt.Errorf("graph: empty tree")
	}
	if int(t.Root) < 0 || int(t.Root) >= n {
		return fmt.Errorf("graph: root %d out of range", t.Root)
	}
	if t.Parent[t.Root] != core.NilNode {
		return fmt.Errorf("graph: root %d has parent %d", t.Root, t.Parent[t.Root])
	}
	for v := 0; v < n; v++ {
		if core.NodeID(v) == t.Root {
			continue
		}
		p := t.Parent[v]
		if int(p) < 0 || int(p) >= n {
			return fmt.Errorf("graph: node %d has invalid parent %d", v, p)
		}
		// Walk up; a walk longer than n nodes means a cycle.
		u, steps := core.NodeID(v), 0
		for u != t.Root {
			u = t.Parent[u]
			steps++
			if u == core.NilNode {
				return fmt.Errorf("graph: node %d is not connected to root", v)
			}
			if steps > n {
				return fmt.Errorf("graph: cycle detected above node %d", v)
			}
		}
	}
	return nil
}

// Depths returns the depth of every node (root has depth 0).
func (t *Tree) Depths() []int {
	n := t.N()
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[t.Root] = 0
	var resolve func(v core.NodeID) int
	resolve = func(v core.NodeID) int {
		if depth[v] >= 0 {
			return depth[v]
		}
		depth[v] = resolve(t.Parent[v]) + 1
		return depth[v]
	}
	for v := 0; v < n; v++ {
		resolve(core.NodeID(v))
	}
	return depth
}

// Depth returns l_max, the maximum node depth.
func (t *Tree) Depth() int {
	max := 0
	for _, d := range t.Depths() {
		if d > max {
			max = d
		}
	}
	return max
}

// Children returns, for every node, the list of its children.
func (t *Tree) Children() [][]core.NodeID {
	out := make([][]core.NodeID, t.N())
	for v, p := range t.Parent {
		if p != core.NilNode {
			out[p] = append(out[p], core.NodeID(v))
		}
	}
	return out
}

// Diameter returns the diameter d(S) of the tree viewed as an undirected
// graph (longest path between any two nodes, in edges).
func (t *Tree) Diameter() int {
	return t.AsGraph().DiameterApprox() // double sweep is exact on trees
}

// AsGraph returns the undirected graph consisting of the tree edges.
func (t *Tree) AsGraph() *Graph {
	b := NewBuilder("tree", t.N())
	for v, p := range t.Parent {
		if p != core.NilNode {
			b.AddEdge(core.NodeID(v), p)
		}
	}
	return b.Build()
}

// PathToRoot returns the node sequence v, parent(v), ..., Root.
func (t *Tree) PathToRoot(v core.NodeID) []core.NodeID {
	path := []core.NodeID{v}
	for v != t.Root {
		v = t.Parent[v]
		path = append(path, v)
	}
	return path
}
