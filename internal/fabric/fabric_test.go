package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"algossip/internal/graph"
	"algossip/internal/harness"
	"algossip/internal/resultstore"
)

// testSpec is the shared grid: 2 sizes x 4 trials = 8 trials, small
// enough to run in milliseconds, large enough to spread across leases.
func testSpec() harness.Spec {
	return harness.Spec{
		Name: "fabric-test", Graph: "ring", Sizes: []int{8, 16},
		KMode: "const:2", Trials: 4, Seed: 7, Lean: true,
		Fabric: "fab-e2e",
	}
}

// baselineCSV is the single-process ground truth every fabric run must
// reproduce byte for byte. Fabric is deliberately left unset: the
// session label must not influence a single output byte.
func baselineCSV(t *testing.T) string {
	t.Helper()
	spec := testSpec()
	spec.Fabric = ""
	rs, err := harness.Runner{Parallel: 1}.Run(&spec)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := harness.WriteCSV(&sb, rs); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func toCSV(t *testing.T, rs *harness.ResultSet) string {
	t.Helper()
	var sb strings.Builder
	if err := harness.WriteCSV(&sb, rs); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// runFabric spins up a coordinator plus n workers and returns the merged
// result set along with the per-worker executed counts.
func runFabric(t *testing.T, opts CoordinatorOptions, workers int) (*harness.ResultSet, []int) {
	t.Helper()
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var (
		rs    *harness.ResultSet
		runEr error
		wg    sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rs, runEr = c.Run(ctx)
	}()

	counts := make([]int, workers)
	errs := make([]error, workers)
	var ww sync.WaitGroup
	for i := 0; i < workers; i++ {
		ww.Add(1)
		go func(i int) {
			defer ww.Done()
			counts[i], errs[i] = RunWorker(ctx, WorkerOptions{
				Coordinator:  c.URL(),
				Name:         fmt.Sprintf("w%d", i),
				Parallel:     1,
				PollInterval: 10 * time.Millisecond,
			})
		}(i)
	}
	ww.Wait()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if runEr != nil {
		t.Fatalf("coordinator: %v", runEr)
	}
	return rs, counts
}

// TestFabricByteIdentityAcrossWorkerCounts is the fabric's headline
// guarantee: the merged CSV is byte-identical to a single-process
// Runner{Parallel:1} run for any worker count.
func TestFabricByteIdentityAcrossWorkerCounts(t *testing.T) {
	want := baselineCSV(t)
	for _, workers := range []int{1, 2, 4} {
		spec := testSpec()
		rs, counts := runFabric(t, CoordinatorOptions{
			Spec: &spec, LeaseChunk: 2, LeaseTTL: 5 * time.Second,
			Linger: 500 * time.Millisecond,
		}, workers)
		if got := toCSV(t, rs); got != want {
			t.Fatalf("%d workers: merged CSV differs from single-process run:\n%s\nwant:\n%s", workers, got, want)
		}
		total := 0
		for _, n := range counts {
			total += n
		}
		if total != len(rs.Trials) || rs.Executed != len(rs.Trials) {
			t.Fatalf("%d workers executed %d trials (coordinator says %d), want %d",
				workers, total, rs.Executed, len(rs.Trials))
		}
	}
}

// TestFabricWorkerKilledMidRange kills a worker holding a lease (by
// taking the lease over raw HTTP and never reporting), waits for the
// TTL to requeue it, and checks a surviving worker completes the run
// with byte-identical output.
func TestFabricWorkerKilledMidRange(t *testing.T) {
	spec := testSpec()
	c, err := NewCoordinator(CoordinatorOptions{
		Spec: &spec, LeaseChunk: 2, LeaseTTL: 150 * time.Millisecond,
		Linger: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var (
		rs    *harness.ResultSet
		runEr error
		wg    sync.WaitGroup
	)
	wg.Add(1)
	go func() { defer wg.Done(); rs, runEr = c.Run(ctx) }()

	// The doomed worker: leases a range and is then "killed" — no
	// results, no renewals, just silence.
	body, _ := json.Marshal(leaseRequest{Worker: "doomed"})
	resp, err := http.Post(c.URL()+"/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var lr leaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if lr.Lease == nil || len(lr.Lease.Indices) == 0 {
		t.Fatalf("doomed worker got no lease: %+v", lr)
	}

	// A surviving worker drains the rest, stalls on the held range until
	// the TTL expires, then picks it up and finishes.
	n, err := RunWorker(ctx, WorkerOptions{
		Coordinator: c.URL(), Name: "survivor", Parallel: 1,
		PollInterval: 20 * time.Millisecond,
	})
	wg.Wait()
	if err != nil {
		t.Fatalf("survivor: %v", err)
	}
	if runEr != nil {
		t.Fatalf("coordinator: %v", runEr)
	}
	if n != len(rs.Trials) {
		t.Fatalf("survivor executed %d of %d trials", n, len(rs.Trials))
	}
	if got, want := toCSV(t, rs), baselineCSV(t); got != want {
		t.Fatalf("merged CSV after mid-range kill differs:\n%s\nwant:\n%s", got, want)
	}
}

// TestFabricCoordinatorRestartResumesFromCheckpoint commits part of the
// run, kills the coordinator, and checks a successor replays the
// checkpoint, re-leases only the missing trials, and produces the same
// bytes.
func TestFabricCoordinatorRestartResumesFromCheckpoint(t *testing.T) {
	ckpath := filepath.Join(t.TempDir(), "fab.ckpt")
	spec := testSpec()
	c1, err := NewCoordinator(CoordinatorOptions{
		Spec: &spec, Checkpoint: ckpath, LeaseChunk: 3, LeaseTTL: 5 * time.Second,
		Linger: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	done1 := make(chan error, 1)
	go func() { _, err := c1.Run(ctx1); done1 <- err }()

	// Hand-crank one lease's worth of results, then kill the
	// coordinator before the run completes.
	w, err := NewWorker(context.Background(), WorkerOptions{Coordinator: c1.URL(), Name: "partial"})
	if err != nil {
		t.Fatal(err)
	}
	var lr leaseResponse
	if err := w.postJSON(context.Background(), "/lease", leaseRequest{Worker: "partial"}, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Lease == nil {
		t.Fatalf("no lease granted: %+v", lr)
	}
	committed := len(lr.Lease.Indices)
	if _, _, err := w.runLease(context.Background(), *lr.Lease, 0); err != nil {
		t.Fatal(err)
	}
	cancel1()
	if err := <-done1; err == nil {
		t.Fatal("cancelled coordinator reported success")
	}

	// Successor resumes from the checkpoint and only hands out the rest.
	spec2 := testSpec()
	c2, err := NewCoordinator(CoordinatorOptions{
		Spec: &spec2, Checkpoint: ckpath, Resume: true,
		LeaseChunk: 3, LeaseTTL: 5 * time.Second, Linger: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	var (
		rs    *harness.ResultSet
		runEr error
		wg    sync.WaitGroup
	)
	wg.Add(1)
	go func() { defer wg.Done(); rs, runEr = c2.Run(ctx2) }()
	n, err := RunWorker(ctx2, WorkerOptions{
		Coordinator: c2.URL(), Name: "finisher", Parallel: 1,
		PollInterval: 10 * time.Millisecond,
	})
	wg.Wait()
	if err != nil {
		t.Fatalf("finisher: %v", err)
	}
	if runEr != nil {
		t.Fatalf("restarted coordinator: %v", runEr)
	}
	if want := len(rs.Trials) - committed; n != want || rs.Executed != want {
		t.Fatalf("successor executed %d trials (coordinator says %d), want %d re-run after %d resumed",
			n, rs.Executed, want, committed)
	}
	if got, want := toCSV(t, rs), baselineCSV(t); got != want {
		t.Fatalf("merged CSV after coordinator restart differs:\n%s\nwant:\n%s", got, want)
	}
}

// TestFabricGarbageResultsRejected throws malformed result streams at
// the coordinator and checks each is rejected wholesale — the checkpoint
// keeps its exact prior bytes — before a clean worker finishes the run
// and the store answers tail queries.
func TestFabricGarbageResultsRejected(t *testing.T) {
	dir := t.TempDir()
	ckpath := filepath.Join(dir, "fab.ckpt")
	store, err := resultstore.Open(filepath.Join(dir, "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	spec := testSpec()
	c, err := NewCoordinator(CoordinatorOptions{
		Spec: &spec, Checkpoint: ckpath, Store: store,
		LeaseChunk: 2, LeaseTTL: 5 * time.Second, Linger: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var (
		rs    *harness.ResultSet
		runEr error
		wg    sync.WaitGroup
	)
	wg.Add(1)
	go func() { defer wg.Done(); rs, runEr = c.Run(ctx) }()

	before, err := os.ReadFile(ckpath)
	if err != nil {
		t.Fatal(err)
	}
	goodHdr, _ := json.Marshal(resultsHeader{Fingerprint: spec.Fingerprint()})
	for name, body := range map[string]string{
		"not json at all":   "complete garbage\nmore garbage\n",
		"empty stream":      "",
		"wrong fingerprint": `{"fingerprint":"sweep|other"}` + "\n" + `{"i":0,"o":{}}` + "\n",
		"garbage entry":     string(goodHdr) + "\n" + `{"i":0,"o":{` + "\n",
		"index out of range": string(goodHdr) + "\n" +
			`{"i":999,"o":{"result":{"rounds":1}}}` + "\n",
	} {
		resp, err := http.Post(c.URL()+"/results", "application/jsonl", strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	after, err := os.ReadFile(ckpath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("rejected results mutated the checkpoint: %d -> %d bytes", len(before), len(after))
	}

	// A clean worker still completes the run and the store serves tails.
	if _, err := RunWorker(ctx, WorkerOptions{
		Coordinator: c.URL(), Name: "clean", Parallel: 1,
		PollInterval: 10 * time.Millisecond,
	}); err != nil {
		t.Fatalf("clean worker: %v", err)
	}
	wg.Wait()
	if runEr != nil {
		t.Fatalf("coordinator: %v", runEr)
	}
	if got, want := toCSV(t, rs), baselineCSV(t); got != want {
		t.Fatalf("merged CSV after garbage storm differs:\n%s\nwant:\n%s", got, want)
	}
	ts, err := store.Tail(resultstore.Filter{Spec: "fabric-test", Graph: "ring", N: 8})
	if err != nil || ts.Trials != 4 || ts.P99 <= 0 || math.IsNaN(ts.P999) {
		t.Fatalf("store tail after fabric run = %+v, err=%v", ts, err)
	}
}

// TestFabricRejectsNonSerializableSpecs pins the wire-safety guard:
// specs that would silently lose state over JSON are refused up front.
func TestFabricRejectsNonSerializableSpecs(t *testing.T) {
	spec := testSpec()
	spec.Graphs = []*graph.Graph{graph.Ring(8)}
	if _, err := NewCoordinator(CoordinatorOptions{Spec: &spec}); err == nil ||
		!strings.Contains(err.Error(), "Graphs") {
		t.Fatalf("pre-built Graphs accepted: %v", err)
	}

	spec2 := testSpec()
	spec2.TrialSeed = func(size, trial int) uint64 { return 1 }
	if _, err := NewCoordinator(CoordinatorOptions{Spec: &spec2}); err == nil ||
		!strings.Contains(err.Error(), "TrialSeed") {
		t.Fatalf("custom TrialSeed accepted: %v", err)
	}
}
