package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"algossip/internal/harness"
)

// WorkerOptions configures one fabric worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (e.g. http://host:port).
	Coordinator string
	// Name labels this worker in leases and logs.
	Name string
	// Parallel bounds concurrent trials within a lease (<=0: all cores).
	Parallel int
	// PollInterval is the idle wait when every free trial is out on a
	// live lease (default 200ms, overridden by the coordinator's hint).
	PollInterval time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// Worker pulls leases from a coordinator and runs them.
type Worker struct {
	opts        WorkerOptions
	client      *http.Client
	spec        *harness.Spec
	fingerprint string
	trials      []harness.Trial
}

// RunWorker is the one-call worker loop: fetch and verify the spec, then
// lease, execute, and stream results until the coordinator reports the
// run complete or ctx is cancelled. It returns the number of trials this
// worker executed.
func RunWorker(ctx context.Context, opts WorkerOptions) (int, error) {
	w, err := NewWorker(ctx, opts)
	if err != nil {
		return 0, err
	}
	return w.Run(ctx)
}

// NewWorker fetches the coordinator's spec, expands the work-list
// locally, and verifies the fingerprint round-trips — the guarantee that
// this worker will compute exactly the trials the coordinator is
// merging.
func NewWorker(ctx context.Context, opts WorkerOptions) (*Worker, error) {
	if opts.Coordinator == "" {
		return nil, fmt.Errorf("fabric: no coordinator URL")
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = defaultPollInterval
	}
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	w := &Worker{opts: opts, client: client}

	var env specEnvelope
	if err := w.getJSON(ctx, "/spec", &env); err != nil {
		return nil, fmt.Errorf("fabric: fetch spec: %w", err)
	}
	if env.Spec == nil {
		return nil, fmt.Errorf("fabric: coordinator sent no spec")
	}
	_, trials, err := env.Spec.Expand()
	if err != nil {
		return nil, fmt.Errorf("fabric: expand spec: %w", err)
	}
	if fp := env.Spec.Fingerprint(); fp != env.Fingerprint {
		return nil, fmt.Errorf("fabric: spec did not survive the wire: local fingerprint %s, coordinator %s", fp, env.Fingerprint)
	}
	if len(trials) != env.Total {
		return nil, fmt.Errorf("fabric: work-list size mismatch: local %d, coordinator %d", len(trials), env.Total)
	}
	w.spec, w.fingerprint, w.trials = env.Spec, env.Fingerprint, trials
	return w, nil
}

// Run leases, executes, and reports until done or cancelled.
func (w *Worker) Run(ctx context.Context) (int, error) {
	executed := 0
	for {
		if err := ctx.Err(); err != nil {
			return executed, err
		}
		var resp leaseResponse
		err := w.leaseWithRetry(ctx, &resp)
		if err != nil {
			return executed, fmt.Errorf("fabric: lease: %w", err)
		}
		switch {
		case resp.Done:
			return executed, nil
		case resp.Lease == nil:
			wait := w.opts.PollInterval
			if resp.RetryMillis > 0 {
				wait = time.Duration(resp.RetryMillis) * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return executed, ctx.Err()
			case <-time.After(wait):
			}
		default:
			n, done, err := w.runLease(ctx, *resp.Lease, resp.RenewMillis)
			executed += n
			if err != nil {
				return executed, err
			}
			if done {
				return executed, nil
			}
		}
	}
}

// leaseWithRetry asks for a lease, retrying transient transport errors
// (a coordinator mid-restart) with backoff before giving up.
func (w *Worker) leaseWithRetry(ctx context.Context, resp *leaseResponse) error {
	backoff := 100 * time.Millisecond
	for attempt := 0; ; attempt++ {
		err := w.postJSON(ctx, "/lease", leaseRequest{Worker: w.opts.Name}, resp)
		if err == nil {
			return nil
		}
		var se *statusError
		if asStatusError(err, &se) || attempt >= 4 {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// runLease executes one lease's trials across the local pool, renewing
// the lease while it works, then streams the batch back, retrying
// transient coordinator failures (a restart mid-upload) until ctx ends.
// The returned done flag mirrors the coordinator's: true when this batch
// completed the run, so the worker can exit without another poll.
func (w *Worker) runLease(ctx context.Context, l harness.Lease, renewMillis int64) (int, bool, error) {
	// Renewal heartbeat: proves liveness for leases that run longer than
	// the TTL. A failed renew is harmless — worst case the range is
	// re-leased and the duplicate results are ignored.
	renewCtx, stopRenew := context.WithCancel(ctx)
	defer stopRenew()
	if renewMillis > 0 {
		go func() {
			tick := time.NewTicker(time.Duration(renewMillis) * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-renewCtx.Done():
					return
				case <-tick.C:
					_ = w.postJSON(renewCtx, "/renew", renewRequest{Lease: l.ID}, nil)
				}
			}
		}()
	}

	outcomes, err := harness.ParallelMap(len(l.Indices), w.opts.Parallel, func(i int) (harness.Outcome, error) {
		return w.spec.ExecuteTrial(w.trials[l.Indices[i]])
	})
	if err != nil {
		return 0, false, fmt.Errorf("fabric: trial execution: %w", err)
	}
	stopRenew()

	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	if err := enc.Encode(resultsHeader{Fingerprint: w.fingerprint, Lease: l.ID, Worker: w.opts.Name}); err != nil {
		return 0, false, err
	}
	for i, o := range outcomes {
		if err := enc.Encode(resultEntry{I: l.Indices[i], O: o}); err != nil {
			return 0, false, err
		}
	}

	// Stream the batch back. Transient errors (coordinator restarting)
	// retry with backoff; a 4xx is a protocol violation and fatal.
	backoff := 100 * time.Millisecond
	for {
		var resp resultsResponse
		err := w.postBytes(ctx, "/results", body.Bytes(), &resp)
		if err == nil {
			return len(outcomes), resp.Done, nil
		}
		var se *statusError
		if ok := asStatusError(err, &se); ok && se.code >= 400 && se.code < 500 {
			return 0, false, fmt.Errorf("fabric: results rejected: %w", err)
		}
		select {
		case <-ctx.Done():
			return 0, false, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// statusError carries a non-2xx response.
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string { return fmt.Sprintf("%d: %s", e.code, e.body) }

func asStatusError(err error, out **statusError) bool {
	se, ok := err.(*statusError)
	if ok {
		*out = se
	}
	return ok
}

func (w *Worker) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.opts.Coordinator+path, nil)
	if err != nil {
		return err
	}
	return w.do(req, out)
}

func (w *Worker) postJSON(ctx context.Context, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Coordinator+path, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return w.do(req, out)
}

func (w *Worker) postBytes(ctx context.Context, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/jsonl")
	return w.do(req, out)
}

func (w *Worker) do(req *http.Request, out any) error {
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &statusError{code: resp.StatusCode, body: string(bytes.TrimSpace(msg))}
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
