package fabric

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"algossip/internal/harness"
	"algossip/internal/resultstore"
)

// CoordinatorOptions configures one fabric coordinator.
type CoordinatorOptions struct {
	// Spec is the experiment to distribute. It must be name-based
	// (Graph + Sizes, no pre-built Graphs, no custom TrialSeed): workers
	// rebuild the work-list from the spec's JSON form, and the
	// fingerprint handshake rejects anything that would not round-trip.
	Spec *harness.Spec
	// Listen is the HTTP listen address (default 127.0.0.1:0).
	Listen string
	// Checkpoint, when non-empty, durably records every accepted trial
	// in the harness checkpoint format; with Resume, a restarted
	// coordinator replays it and re-leases only what is missing.
	Checkpoint string
	Resume     bool
	// LeaseChunk is the number of trials per lease (default 32).
	LeaseChunk int
	// LeaseTTL is how long a worker may sit on a lease without renewing
	// before its range is requeued (default 30s).
	LeaseTTL time.Duration
	// Linger is how long the coordinator keeps answering Done after the
	// last trial completes, so every polling worker observes completion
	// rather than a refused connection (default 2s).
	Linger time.Duration
	// Store, when set, ingests the merged results on completion.
	Store *resultstore.Store
	// Progress, when set, is called serially after every accepted trial.
	Progress func(done, total int)
	// now overrides the lease clock (tests only).
	now func() time.Time
}

// Coordinator owns a run's work-list and serves it to workers.
type Coordinator struct {
	opts        CoordinatorOptions
	spec        *harness.Spec
	fingerprint string
	cells       []harness.Cell
	trials      []harness.Trial
	table       *harness.LeaseTable

	mu       sync.Mutex
	outcomes []harness.Outcome
	have     []bool
	resumed  int
	ck       *harness.CheckpointFile

	ln     net.Listener
	server *http.Server
	doneCh chan struct{}
	done   sync.Once
}

// NewCoordinator validates the options, expands the work-list, replays
// the checkpoint (when resuming), and binds the listener — workers can
// connect as soon as it returns; serving starts with Run.
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	if opts.Spec == nil {
		return nil, fmt.Errorf("fabric: nil spec")
	}
	if len(opts.Spec.Graphs) > 0 {
		return nil, fmt.Errorf("fabric: pre-built Graphs do not serialize; use a name-based spec (Graph + Sizes)")
	}
	if opts.Spec.TrialSeed != nil {
		return nil, fmt.Errorf("fabric: custom TrialSeed functions do not serialize; use the default derivation")
	}
	if opts.Listen == "" {
		opts.Listen = "127.0.0.1:0"
	}
	if opts.LeaseChunk <= 0 {
		opts.LeaseChunk = defaultLeaseChunk
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = defaultLeaseTTL
	}
	if opts.Linger <= 0 {
		opts.Linger = defaultDoneLinger
	}
	cells, trials, err := opts.Spec.Expand()
	if err != nil {
		return nil, err
	}
	table, err := harness.NewLeaseTable(len(trials), opts.LeaseChunk, opts.LeaseTTL, opts.now)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		opts: opts, spec: opts.Spec, fingerprint: opts.Spec.Fingerprint(),
		cells: cells, trials: trials, table: table,
		outcomes: make([]harness.Outcome, len(trials)),
		have:     make([]bool, len(trials)),
		doneCh:   make(chan struct{}),
	}
	if opts.Checkpoint != "" {
		ck, err := harness.OpenCheckpointFile(opts.Checkpoint, opts.Spec, len(trials), opts.Resume)
		if err != nil {
			return nil, err
		}
		c.ck = ck
		for i, o := range ck.Loaded() {
			c.outcomes[i] = o
			c.have[i] = true
			c.table.MarkDone(i)
			c.resumed++
		}
	}
	if c.table.Done() {
		c.done.Do(func() { close(c.doneCh) })
	}
	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		if c.ck != nil {
			_ = c.ck.Close()
		}
		return nil, fmt.Errorf("fabric: listen: %w", err)
	}
	c.ln = ln
	c.server = &http.Server{Handler: c.mux(), ReadHeaderTimeout: 5 * time.Second}
	return c, nil
}

// Addr is the bound coordinator address (host:port).
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// URL is the base URL workers dial.
func (c *Coordinator) URL() string { return "http://" + c.Addr() }

// Run serves workers until every trial has completed or ctx is
// cancelled. On completion it returns the merged ResultSet — identical
// to a local Runner.Run of the same spec — after ingesting it into the
// configured store. On cancellation it returns ctx's error; accepted
// trials are already durable in the checkpoint, so a successor resumes
// where this coordinator stopped.
func (c *Coordinator) Run(ctx context.Context) (*harness.ResultSet, error) {
	start := time.Now()
	serveErr := make(chan error, 1)
	go func() { serveErr <- c.server.Serve(c.ln) }()

	var runErr error
	select {
	case <-ctx.Done():
		runErr = ctx.Err()
	case <-c.doneCh:
		// Keep answering Done for a beat so polling workers learn the
		// run finished instead of hitting a closed port.
		select {
		case <-ctx.Done():
		case <-time.After(c.opts.Linger):
		}
	case err := <-serveErr:
		serveErr = nil
		runErr = fmt.Errorf("fabric: serve: %w", err)
	}

	shutdownCtx, stop := context.WithTimeout(context.Background(), 5*time.Second)
	_ = c.server.Shutdown(shutdownCtx)
	stop()
	if serveErr != nil {
		<-serveErr // http.ErrServerClosed after Shutdown
	}
	if c.ck != nil {
		if err := c.ck.Close(); err != nil && runErr == nil {
			runErr = err
		}
	}
	if runErr != nil {
		return nil, runErr
	}

	c.mu.Lock()
	rs := &harness.ResultSet{
		Spec: c.spec, Cells: c.cells, Trials: c.trials,
		Outcomes: append([]harness.Outcome(nil), c.outcomes...),
		Elapsed:  time.Since(start), Executed: len(c.trials) - c.resumed,
	}
	c.mu.Unlock()
	if c.opts.Store != nil {
		if err := c.opts.Store.Append(resultstore.FromResultSet(rs)...); err != nil {
			return nil, fmt.Errorf("fabric: store ingest: %w", err)
		}
		if err := c.opts.Store.Flush(); err != nil {
			return nil, fmt.Errorf("fabric: store flush: %w", err)
		}
	}
	return rs, nil
}

func (c *Coordinator) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /spec", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(specEnvelope{
			Spec: c.spec, Fingerprint: c.fingerprint, Total: len(c.trials),
		})
	})
	mux.HandleFunc("POST /lease", func(w http.ResponseWriter, r *http.Request) {
		var req leaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := leaseResponse{RetryMillis: defaultPollInterval.Milliseconds()}
		if c.table.Done() {
			resp.Done = true
		} else if l, ok := c.table.Lease(req.Worker); ok {
			resp.Lease = &l
			resp.RenewMillis = (c.opts.LeaseTTL / 3).Milliseconds()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("POST /renew", func(w http.ResponseWriter, r *http.Request) {
		var req renewRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if !c.table.Renew(req.Lease) {
			http.Error(w, "unknown or expired lease", http.StatusGone)
			return
		}
		fmt.Fprintln(w, "renewed")
	})
	mux.HandleFunc("POST /results", c.handleResults)
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		done, leased, free := c.table.Counts()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(statusResponse{
			Name: c.spec.Name, Total: len(c.trials),
			Done: done, Leased: leased, Free: free,
		})
	})
	return mux
}

// handleResults validates a fingerprinted JSONL result stream in full
// before committing any of it: a garbage or foreign-spec body is
// rejected with 400 and neither the checkpoint nor the in-memory merge
// sees a single entry from it. Duplicates (a late report racing the
// re-leased range) are idempotently ignored — both copies carry the same
// deterministic outcome.
func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		http.Error(w, "empty results stream", http.StatusBadRequest)
		return
	}
	var hdr resultsHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		http.Error(w, "results header: "+err.Error(), http.StatusBadRequest)
		return
	}
	if hdr.Fingerprint != c.fingerprint {
		http.Error(w, "results from a different spec (fingerprint mismatch)", http.StatusBadRequest)
		return
	}
	var entries []resultEntry
	for sc.Scan() {
		var e resultEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			http.Error(w, fmt.Sprintf("results entry %d: %v", len(entries), err), http.StatusBadRequest)
			return
		}
		if e.I < 0 || e.I >= len(c.trials) {
			http.Error(w, fmt.Sprintf("results entry index %d outside [0,%d)", e.I, len(c.trials)), http.StatusBadRequest)
			return
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		http.Error(w, "results stream: "+err.Error(), http.StatusBadRequest)
		return
	}

	accepted := 0
	for _, e := range entries {
		fresh, err := c.commit(e)
		if err != nil {
			// A checkpoint write failure is the coordinator's problem,
			// not the worker's: 500 so the worker retries later.
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if fresh {
			accepted++
		}
	}
	if hdr.Lease != 0 {
		c.table.Renew(hdr.Lease)
	}
	if c.table.Done() {
		c.done.Do(func() { close(c.doneCh) })
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resultsResponse{Accepted: accepted, Done: c.table.Done()})
}

// commit durably records one validated entry (checkpoint first, merge
// second) and marks it complete. Returns whether the trial was new.
func (c *Coordinator) commit(e resultEntry) (bool, error) {
	c.mu.Lock()
	if c.have[e.I] {
		c.mu.Unlock()
		c.table.Complete(e.I)
		return false, nil
	}
	if c.ck != nil {
		if err := c.ck.Append(e.I, e.O); err != nil {
			c.mu.Unlock()
			return false, err
		}
	}
	c.outcomes[e.I] = e.O
	c.have[e.I] = true
	c.table.Complete(e.I)
	if c.opts.Progress != nil {
		// Still under c.mu, so Progress callbacks are serial.
		done, _, _ := c.table.Counts()
		c.opts.Progress(done, len(c.trials))
	}
	c.mu.Unlock()
	return true, nil
}
