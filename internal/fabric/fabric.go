// Package fabric is the distributed experiment fabric: a coordinator
// that expands a harness.Spec into its deterministic trial work-list and
// serves trial leases over HTTP, plus a worker that pulls leases, runs
// the trials through harness.Execute, and streams fingerprinted JSONL
// results back.
//
// The determinism contract extends one level up from the worker pool:
// every trial's outcome is a pure function of (Spec, trial seed), so the
// merged aggregate output is byte-identical for any worker count, any
// worker failure history, and any coordinator restart — a killed
// worker's lease simply expires and its range is re-leased, and a
// duplicate result for a trial is the same bytes by construction. The
// harness checkpoint format is the coordination substrate: the
// coordinator's on-disk state is an ordinary fingerprint-validated
// checkpoint, resumable by a restarted coordinator (or, in the extreme,
// by a single-process Runner).
package fabric

import (
	"time"

	"algossip/internal/harness"
)

// Wire types shared by coordinator and worker.

// specEnvelope is the GET /spec response: the spec itself plus the
// coordinator's fingerprint and work-list size, which the worker
// re-derives locally and must match before running anything.
type specEnvelope struct {
	Spec        *harness.Spec `json:"spec"`
	Fingerprint string        `json:"fingerprint"`
	Total       int           `json:"total"`
}

// leaseRequest is the POST /lease body.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// leaseResponse is the POST /lease response. Exactly one of Done, Lease
// or neither (poll again) describes the run's state.
type leaseResponse struct {
	// Done means every trial has completed; the worker can exit.
	Done bool `json:"done,omitempty"`
	// Lease is the granted batch (nil when everything free is out on
	// live leases — poll again after RetryMillis).
	Lease *harness.Lease `json:"lease,omitempty"`
	// RenewMillis is the cadence at which a worker holding Lease should
	// POST /renew to prove liveness.
	RenewMillis int64 `json:"renew_ms,omitempty"`
	// RetryMillis is the suggested poll delay when no lease was granted.
	RetryMillis int64 `json:"retry_ms,omitempty"`
}

// renewRequest is the POST /renew body.
type renewRequest struct {
	Lease int64 `json:"lease"`
}

// resultsHeader is the first JSONL line of a POST /results body. The
// fingerprint binds the stream to the coordinator's spec — results from
// a worker running anything else are rejected before a byte is
// committed.
type resultsHeader struct {
	Fingerprint string `json:"fingerprint"`
	Lease       int64  `json:"lease,omitempty"`
	Worker      string `json:"worker,omitempty"`
}

// resultEntry is one completed trial line, the checkpoint entry shape.
type resultEntry struct {
	I int             `json:"i"`
	O harness.Outcome `json:"o"`
}

// resultsResponse is the POST /results response.
type resultsResponse struct {
	Accepted int  `json:"accepted"`
	Done     bool `json:"done,omitempty"`
}

// statusResponse is the GET /status response.
type statusResponse struct {
	Name   string `json:"name,omitempty"`
	Total  int    `json:"total"`
	Done   int    `json:"done"`
	Leased int    `json:"leased"`
	Free   int    `json:"free"`
}

const (
	defaultLeaseChunk   = 32
	defaultLeaseTTL     = 30 * time.Second
	defaultPollInterval = 200 * time.Millisecond
	// defaultDoneLinger is how long a finished coordinator keeps serving
	// Done responses so polling workers observe completion instead of a
	// refused connection. Covers several poll intervals.
	defaultDoneLinger = 2 * time.Second
)
