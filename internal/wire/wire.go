// Package wire defines the versioned, length-prefixed binary frame format
// the deployable network runtime speaks — the codec boundary between the
// in-process gossip protocols and real sockets. One frame carries one
// Envelope: a coded RLNC packet (or a spanning-tree announcement) plus
// exchange metadata, in the one-coefficient-per-symbol wire layout the
// rlnc Adapt/ExpandCoeffs/ExpandPayload bridges pin down.
//
// Frame layout (all integers big-endian):
//
//	length  uint32  byte count of everything after this field
//	magic   uint16  0xA160
//	version uint8   1
//	kind    uint8   Kind
//	flags   uint8   bit0 = WantReply
//	from    uint32  sending node id
//	to      uint32  destination node id (transport demux)
//	gen     uint32  generation tag (0 for classic RLNC)
//	k       uint32  coefficient count
//	rlen    uint32  payload byte count
//	coeffs  k bytes, one field symbol per byte
//	payload rlen bytes
//
// Decoding screens every malformed shape — wrong magic, unknown version or
// kind, lengths that disagree, frames above MaxFrame — with typed errors
// and never panics (FuzzWireDecode pins this), mirroring the
// malformed-packet screens the rlnc receive paths apply one layer up: a
// hostile or torn byte stream must cost the receiver a closed connection
// at worst, never a crash.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"algossip/internal/core"
	"algossip/internal/gf"
)

// Kind distinguishes wire message types.
type Kind uint8

const (
	// KindPacket carries one RLNC coded packet (the default).
	KindPacket Kind = iota
	// KindAnnounce is a spanning-tree broadcast message: "I am part of
	// the tree; adopt me as your parent if you have none" (distributed
	// TAG's Phase 1).
	KindAnnounce

	kindCount
)

// Envelope is the wire message: one coded packet plus exchange metadata.
// It is the unit every runtime Transport moves; the destination node is a
// Send parameter, not an Envelope field, and travels in the frame header.
type Envelope struct {
	// Kind selects the message type.
	Kind Kind
	// From is the sending node.
	From core.NodeID
	// WantReply marks the first leg of an EXCHANGE: the receiver answers
	// with one packet of its own (with WantReply unset).
	WantReply bool
	// Gen is the generation tag for generation-coded deployments; 0 in
	// classic whole-k coding (receivers in classic mode ignore it).
	Gen int
	// Coeffs is the coefficient vector, one field symbol per entry (k
	// entries for classic coding, the generation's size when Gen-tagged).
	Coeffs []gf.Elem
	// Payload is the combined payload row, one byte-encoded field symbol
	// per byte (may be empty in rank-only runs).
	Payload []byte
}

// Wire format constants.
const (
	// Magic opens every frame after the length prefix.
	Magic uint16 = 0xA160
	// Version is the current protocol version.
	Version uint8 = 1
	// headerLen is the fixed frame header size after the length prefix.
	headerLen = 25
	// MaxFrame bounds one frame's post-prefix byte count: a hostile
	// length prefix may not make the receiver allocate more than this.
	MaxFrame = 1 << 24
)

// Typed decode errors; all are wrapped with position context, so match
// with errors.Is.
var (
	// ErrTruncated reports a buffer or stream that ends mid-frame.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrBadMagic reports a frame that does not start with Magic.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrBadVersion reports an unsupported protocol version.
	ErrBadVersion = errors.New("wire: unsupported version")
	// ErrBadKind reports an out-of-range envelope kind.
	ErrBadKind = errors.New("wire: unknown envelope kind")
	// ErrFrameTooBig reports a length prefix above MaxFrame (or an
	// encode-side envelope that would exceed it).
	ErrFrameTooBig = errors.New("wire: frame exceeds MaxFrame")
	// ErrLengthMismatch reports a frame whose header lengths disagree
	// with the length prefix.
	ErrLengthMismatch = errors.New("wire: header lengths disagree with frame length")
	// ErrBadNode reports an encode-side node id outside uint32 range.
	ErrBadNode = errors.New("wire: node id not encodable")
)

const flagWantReply = 1 << 0

// FrameLen returns the encoded size of an envelope, including the 4-byte
// length prefix.
func FrameLen(env *Envelope) int {
	return 4 + headerLen + len(env.Coeffs) + len(env.Payload)
}

// AppendFrame appends one encoded frame for env addressed to `to` and
// returns the extended slice. It fails only on unencodable metadata (a
// negative node id or generation, or a frame above MaxFrame).
func AppendFrame(dst []byte, to core.NodeID, env *Envelope) ([]byte, error) {
	if env.Kind >= kindCount {
		return dst, fmt.Errorf("%w: %d", ErrBadKind, env.Kind)
	}
	if to < 0 || env.From < 0 {
		return dst, fmt.Errorf("%w: to=%d from=%d", ErrBadNode, to, env.From)
	}
	if env.Gen < 0 {
		return dst, fmt.Errorf("%w: generation %d", ErrBadNode, env.Gen)
	}
	body := headerLen + len(env.Coeffs) + len(env.Payload)
	if body > MaxFrame {
		return dst, fmt.Errorf("%w: %d bytes", ErrFrameTooBig, body)
	}
	var flags byte
	if env.WantReply {
		flags |= flagWantReply
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	dst = binary.BigEndian.AppendUint16(dst, Magic)
	dst = append(dst, Version, byte(env.Kind), flags)
	dst = binary.BigEndian.AppendUint32(dst, uint32(env.From))
	dst = binary.BigEndian.AppendUint32(dst, uint32(to))
	dst = binary.BigEndian.AppendUint32(dst, uint32(env.Gen))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(env.Coeffs)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(env.Payload)))
	for _, c := range env.Coeffs {
		dst = append(dst, byte(c))
	}
	return append(dst, env.Payload...), nil
}

// DecodeFrame decodes the first frame in b, returning the destination
// node, the envelope, and the number of bytes consumed. The returned
// envelope owns freshly allocated slices (safe to retain). All malformed
// shapes return a typed error; none panic.
func DecodeFrame(b []byte) (to core.NodeID, env Envelope, n int, err error) {
	if len(b) < 4 {
		return 0, env, 0, fmt.Errorf("%w: %d prefix bytes", ErrTruncated, len(b))
	}
	body := binary.BigEndian.Uint32(b)
	if body > MaxFrame {
		return 0, env, 0, fmt.Errorf("%w: prefix says %d bytes", ErrFrameTooBig, body)
	}
	if body < headerLen {
		return 0, env, 0, fmt.Errorf("%w: prefix says %d bytes, header needs %d", ErrLengthMismatch, body, headerLen)
	}
	if uint32(len(b)-4) < body {
		return 0, env, 0, fmt.Errorf("%w: have %d of %d body bytes", ErrTruncated, len(b)-4, body)
	}
	f := b[4 : 4+body]
	if got := binary.BigEndian.Uint16(f); got != Magic {
		return 0, env, 0, fmt.Errorf("%w: 0x%04x", ErrBadMagic, got)
	}
	if f[2] != Version {
		return 0, env, 0, fmt.Errorf("%w: %d", ErrBadVersion, f[2])
	}
	kind := Kind(f[3])
	if kind >= kindCount {
		return 0, env, 0, fmt.Errorf("%w: %d", ErrBadKind, kind)
	}
	flags := f[4]
	from := binary.BigEndian.Uint32(f[5:])
	toU := binary.BigEndian.Uint32(f[9:])
	gen := binary.BigEndian.Uint32(f[13:])
	k := binary.BigEndian.Uint32(f[17:])
	rlen := binary.BigEndian.Uint32(f[21:])
	if uint64(headerLen)+uint64(k)+uint64(rlen) != uint64(body) {
		return 0, env, 0, fmt.Errorf("%w: k=%d rlen=%d body=%d", ErrLengthMismatch, k, rlen, body)
	}
	env = Envelope{
		Kind:      kind,
		From:      core.NodeID(from),
		WantReply: flags&flagWantReply != 0,
		Gen:       int(gen),
	}
	if k > 0 {
		env.Coeffs = make([]gf.Elem, k)
		for i, c := range f[headerLen : headerLen+k] {
			env.Coeffs[i] = gf.Elem(c)
		}
	}
	if rlen > 0 {
		env.Payload = append([]byte(nil), f[headerLen+k:]...)
	}
	return core.NodeID(toU), env, int(4 + body), nil
}

// Writer encodes frames onto a stream, reusing one internal buffer so the
// steady-state send path does not allocate per frame. Each frame lands in
// a single w.Write call; callers serialize WriteFrame themselves.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter returns a frame writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteFrame encodes and writes one frame.
func (fw *Writer) WriteFrame(to core.NodeID, env *Envelope) error {
	b, err := AppendFrame(fw.buf[:0], to, env)
	if err != nil {
		return err
	}
	fw.buf = b
	_, err = fw.w.Write(b)
	return err
}

// Reader decodes frames from a stream, reusing one internal buffer for
// the raw bytes; the envelopes it returns own fresh slices and are safe
// to retain (they cross goroutine boundaries through transport inboxes).
type Reader struct {
	r   io.Reader
	buf []byte
}

// NewReader returns a frame reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ReadFrame reads exactly one frame. A clean EOF on the frame boundary
// returns io.EOF; a stream ending mid-frame returns ErrTruncated (wrapped
// with io.ErrUnexpectedEOF semantics); malformed frames return the
// DecodeFrame typed errors.
func (fr *Reader) ReadFrame() (to core.NodeID, env Envelope, err error) {
	var prefix [4]byte
	if _, err := io.ReadFull(fr.r, prefix[:]); err != nil {
		if err == io.EOF {
			return 0, env, io.EOF
		}
		return 0, env, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	body := binary.BigEndian.Uint32(prefix[:])
	if body > MaxFrame {
		return 0, env, fmt.Errorf("%w: prefix says %d bytes", ErrFrameTooBig, body)
	}
	need := int(4 + body)
	if cap(fr.buf) < need {
		fr.buf = make([]byte, need)
	}
	fr.buf = fr.buf[:need]
	copy(fr.buf, prefix[:])
	if _, err := io.ReadFull(fr.r, fr.buf[4:]); err != nil {
		return 0, env, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	to, env, _, err = DecodeFrame(fr.buf)
	return to, env, err
}
