package wire

import (
	"testing"

	"algossip/internal/gf"
)

// benchEnvelope mirrors the E17 live-cluster shape: k=16 coefficients
// over GF(256) with a 64-byte payload row.
func benchEnvelope() Envelope {
	coeffs := make([]gf.Elem, 16)
	for i := range coeffs {
		coeffs[i] = gf.Elem(i*17 + 1)
	}
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	return Envelope{Kind: KindPacket, From: 12, WantReply: true, Gen: 0,
		Coeffs: coeffs, Payload: payload}
}

func BenchmarkWireEncode(b *testing.B) {
	env := benchEnvelope()
	buf := make([]byte, 0, FrameLen(&env))
	b.SetBytes(int64(FrameLen(&env)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrame(buf[:0], 3, &env)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecode(b *testing.B) {
	env := benchEnvelope()
	frame, err := AppendFrame(nil, 3, &env)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := DecodeFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}
