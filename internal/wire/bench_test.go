package wire

import (
	"testing"

	"algossip/internal/gf"
)

// benchEnvelope mirrors the E17 live-cluster shape: k=16 coefficients
// over GF(256) with a 64-byte payload row.
func benchEnvelope() Envelope {
	coeffs := make([]gf.Elem, 16)
	for i := range coeffs {
		coeffs[i] = gf.Elem(i*17 + 1)
	}
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	return Envelope{Kind: KindPacket, From: 12, WantReply: true, Gen: 0,
		Coeffs: coeffs, Payload: payload}
}

func BenchmarkWireEncode(b *testing.B) {
	env := benchEnvelope()
	buf := make([]byte, 0, FrameLen(&env))
	b.SetBytes(int64(FrameLen(&env)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrame(buf[:0], 3, &env)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecode(b *testing.B) {
	env := benchEnvelope()
	frame, err := AppendFrame(nil, 3, &env)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := DecodeFrame(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScreenFlood measures the cost of *rejecting* hostile frames —
// the decoder's screen is what a Byzantine peer can make every honest
// node pay per flooded frame, so the rejection path must stay at least
// as cheap as the accept path. Each sub-benchmark floods one malformed
// shape: a corrupted magic word (caught after 6 bytes), a truncated
// frame (caught by the length prefix), and a header whose section
// lengths disagree with the prefix (caught before any slice copy).
func BenchmarkScreenFlood(b *testing.B) {
	env := benchEnvelope()
	good, err := AppendFrame(nil, 3, &env)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name  string
		frame []byte
	}{
		{"wire-badmagic", mutate(good, 4, 0xFF)},
		{"wire-truncated", good[:len(good)-3]},
		{"wire-lenmismatch", mutate(good, 24, 0x7F)},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			if _, _, _, err := DecodeFrame(c.frame); err == nil {
				b.Fatalf("%s: malformed frame decoded cleanly", c.name)
			}
			b.SetBytes(int64(len(c.frame)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := DecodeFrame(c.frame); err == nil {
					b.Fatal("malformed frame decoded cleanly")
				}
			}
		})
	}
}

// mutate returns a copy of frame with one byte overwritten.
func mutate(frame []byte, off int, v byte) []byte {
	out := append([]byte(nil), frame...)
	out[off] = v
	return out
}
