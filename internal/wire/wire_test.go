package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"algossip/internal/core"
	"algossip/internal/gf"
)

func sampleEnvelopes() []Envelope {
	return []Envelope{
		{Kind: KindPacket, From: 3, WantReply: true, Gen: 0,
			Coeffs:  []gf.Elem{1, 0, 255, 17},
			Payload: []byte("payload-bytes")},
		{Kind: KindPacket, From: 0, Gen: 7,
			Coeffs: []gf.Elem{9, 9}},
		{Kind: KindAnnounce, From: 41},
		{Kind: KindPacket, From: 1 << 20, Gen: 123456,
			Coeffs:  make([]gf.Elem, 64),
			Payload: make([]byte, 1024)},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for i, env := range sampleEnvelopes() {
		to := core.NodeID(i * 13)
		b, err := AppendFrame(nil, to, &env)
		if err != nil {
			t.Fatalf("env %d: AppendFrame: %v", i, err)
		}
		if len(b) != FrameLen(&env) {
			t.Fatalf("env %d: frame len %d, FrameLen says %d", i, len(b), FrameLen(&env))
		}
		gotTo, got, n, err := DecodeFrame(b)
		if err != nil {
			t.Fatalf("env %d: DecodeFrame: %v", i, err)
		}
		if n != len(b) {
			t.Fatalf("env %d: consumed %d of %d bytes", i, n, len(b))
		}
		if gotTo != to {
			t.Fatalf("env %d: to=%d want %d", i, gotTo, to)
		}
		checkEnvelope(t, i, got, env)
	}
}

func checkEnvelope(t *testing.T, i int, got, want Envelope) {
	t.Helper()
	if got.Kind != want.Kind || got.From != want.From ||
		got.WantReply != want.WantReply || got.Gen != want.Gen {
		t.Fatalf("env %d: header mismatch: got %+v want %+v", i, got, want)
	}
	if len(got.Coeffs) != len(want.Coeffs) {
		t.Fatalf("env %d: %d coeffs, want %d", i, len(got.Coeffs), len(want.Coeffs))
	}
	for j := range want.Coeffs {
		if got.Coeffs[j] != want.Coeffs[j] {
			t.Fatalf("env %d: coeff %d = %d, want %d", i, j, got.Coeffs[j], want.Coeffs[j])
		}
	}
	if !bytes.Equal(got.Payload, want.Payload) && len(want.Payload) > 0 {
		t.Fatalf("env %d: payload mismatch", i)
	}
}

// TestDecodeConcatenated checks that DecodeFrame's consumed-byte count
// walks a buffer holding several back-to-back frames.
func TestDecodeConcatenated(t *testing.T) {
	envs := sampleEnvelopes()
	var buf []byte
	for i, env := range envs {
		var err error
		buf, err = AppendFrame(buf, core.NodeID(i), &env)
		if err != nil {
			t.Fatal(err)
		}
	}
	off := 0
	for i := range envs {
		to, got, n, err := DecodeFrame(buf[off:])
		if err != nil {
			t.Fatalf("frame %d at offset %d: %v", i, off, err)
		}
		if to != core.NodeID(i) {
			t.Fatalf("frame %d: to=%d", i, to)
		}
		checkEnvelope(t, i, got, envs[i])
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestDecodeErrors(t *testing.T) {
	good, err := AppendFrame(nil, 5, &Envelope{Kind: KindPacket, From: 2,
		Coeffs: []gf.Elem{1, 2, 3}, Payload: []byte("xy")})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short prefix", good[:3], ErrTruncated},
		{"torn body", good[:len(good)-1], ErrTruncated},
		{"bad magic", mutate(func(b []byte) { b[4] ^= 0xFF }), ErrBadMagic},
		{"bad version", mutate(func(b []byte) { b[6] = 99 }), ErrBadVersion},
		{"bad kind", mutate(func(b []byte) { b[7] = 200 }), ErrBadKind},
		{"huge prefix", mutate(func(b []byte) { b[0] = 0xFF; b[1] = 0xFF }), ErrFrameTooBig},
		{"tiny prefix", mutate(func(b []byte) { b[0], b[1], b[2], b[3] = 0, 0, 0, 1 }), ErrLengthMismatch},
		{"k overshoots", mutate(func(b []byte) { b[24] = 200 }), ErrLengthMismatch},
	}
	for _, tc := range cases {
		_, _, _, err := DecodeFrame(tc.buf)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := AppendFrame(nil, -1, &Envelope{}); !errors.Is(err, ErrBadNode) {
		t.Errorf("negative to: %v", err)
	}
	if _, err := AppendFrame(nil, 0, &Envelope{From: -2}); !errors.Is(err, ErrBadNode) {
		t.Errorf("negative from: %v", err)
	}
	if _, err := AppendFrame(nil, 0, &Envelope{Gen: -1}); !errors.Is(err, ErrBadNode) {
		t.Errorf("negative gen: %v", err)
	}
	if _, err := AppendFrame(nil, 0, &Envelope{Kind: 99}); !errors.Is(err, ErrBadKind) {
		t.Errorf("bad kind: %v", err)
	}
	if _, err := AppendFrame(nil, 0, &Envelope{Payload: make([]byte, MaxFrame)}); !errors.Is(err, ErrFrameTooBig) {
		t.Errorf("oversized payload: %v", err)
	}
}

func TestStreamReaderWriter(t *testing.T) {
	envs := sampleEnvelopes()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i, env := range envs {
		if err := w.WriteFrame(core.NodeID(100+i), &env); err != nil {
			t.Fatalf("WriteFrame %d: %v", i, err)
		}
	}
	r := NewReader(&buf)
	for i := range envs {
		to, got, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if to != core.NodeID(100+i) {
			t.Fatalf("frame %d: to=%d", i, to)
		}
		checkEnvelope(t, i, got, envs[i])
	}
	if _, _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// TestReaderTornStream pins the stream-level screen: a connection that
// dies mid-frame surfaces ErrTruncated, not a panic or a garbage frame.
func TestReaderTornStream(t *testing.T) {
	full, err := AppendFrame(nil, 1, &Envelope{Kind: KindPacket, From: 0,
		Coeffs: []gf.Elem{4, 5, 6}, Payload: []byte("abcdef")})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		if _, _, err := r.ReadFrame(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d: got %v, want ErrTruncated", cut, err)
		}
	}
}

// TestReaderEnvelopeOwnership checks that envelopes from a shared Reader
// survive the next ReadFrame (the internal buffer is reused, slices must
// not alias it).
func TestReaderEnvelopeOwnership(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	a := Envelope{Kind: KindPacket, From: 1, Coeffs: []gf.Elem{1, 2}, Payload: []byte("AA")}
	b := Envelope{Kind: KindPacket, From: 2, Coeffs: []gf.Elem{3, 4}, Payload: []byte("BB")}
	if err := w.WriteFrame(0, &a); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame(0, &b); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	_, gotA, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	checkEnvelope(t, 0, gotA, a)
}
