package wire

import (
	"bytes"
	"testing"

	"algossip/internal/gf"
)

// FuzzWireDecode pins the decoder's hostile-input contract: arbitrary and
// torn byte streams must never panic or over-allocate, and any frame that
// decodes must re-encode to the identical bytes (the codec is canonical).
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	seed, _ := AppendFrame(nil, 7, &Envelope{Kind: KindPacket, From: 3,
		WantReply: true, Gen: 2, Coeffs: []gf.Elem{1, 2, 3}, Payload: []byte("seed")})
	f.Add(seed)
	f.Add(seed[:len(seed)-2])
	two := append(append([]byte(nil), seed...), seed...)
	f.Add(two)
	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for off < len(data) {
			to, env, n, err := DecodeFrame(data[off:])
			if err != nil {
				// Screened. The stream reader sees the same bytes through
				// the same decoder, so one check covers both paths.
				return
			}
			if n <= 0 || off+n > len(data) {
				t.Fatalf("DecodeFrame consumed %d bytes of %d", n, len(data)-off)
			}
			re, err := AppendFrame(nil, to, &env)
			if err != nil {
				t.Fatalf("decoded frame does not re-encode: %v", err)
			}
			if !bytes.Equal(re, data[off:off+n]) {
				t.Fatalf("re-encode mismatch at offset %d", off)
			}
			off += n
		}
	})
}
