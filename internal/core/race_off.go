//go:build !race

package core

// RaceEnabled reports whether the binary was built with the race
// detector. Large-n conformance gates skip under the detector: its ~10x
// memory and time multiplier turns a 30-second sweep into minutes without
// adding coverage beyond what the small-n identity tests already race.
const RaceEnabled = false
