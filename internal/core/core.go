// Package core holds the small set of kernel types shared by every
// subsystem of the algebraic-gossip reproduction: node identifiers, time
// models, gossip actions, and deterministic seed derivation.
//
// The vocabulary follows Section 2 of Avin, Borokhovich, Censor-Hillel and
// Lotker, "Order Optimal Information Spreading Using Algebraic Gossip"
// (PODC 2011): a *time model* decides which nodes wake up when, a *gossip
// communication model* decides which neighbor a woken node contacts and in
// which direction information flows (PUSH, PULL or EXCHANGE), and a *gossip
// protocol* decides the message content.
package core

import (
	"fmt"
	"math/rand/v2"
)

// NodeID identifies a node in a simulated or deployed network. Nodes are
// numbered 0..n-1.
type NodeID int

// NilNode is the sentinel "no node" value, used e.g. for a missing parent
// pointer before a spanning-tree protocol has assigned one.
const NilNode NodeID = -1

// Action is the direction of information flow when a woken node contacts a
// communication partner (paper Section 2).
type Action int

const (
	// Push sends information from the initiator to the partner.
	Push Action = iota + 1
	// Pull requests information from the partner to the initiator.
	Pull
	// Exchange does both directions in a single contact. All headline
	// results of the paper are stated for EXCHANGE.
	Exchange
)

// String returns the paper's name for the action.
func (a Action) String() string {
	switch a {
	case Push:
		return "PUSH"
	case Pull:
		return "PULL"
	case Exchange:
		return "EXCHANGE"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// ParseAction converts a string such as "push" or "EXCHANGE" to an Action.
func ParseAction(s string) (Action, error) {
	switch s {
	case "push", "PUSH", "Push":
		return Push, nil
	case "pull", "PULL", "Pull":
		return Pull, nil
	case "exchange", "EXCHANGE", "Exchange", "xchg":
		return Exchange, nil
	default:
		return 0, fmt.Errorf("core: unknown action %q", s)
	}
}

// TimeModel selects between the two schedulers of the paper.
type TimeModel int

const (
	// Synchronous: in every round, every node takes an action and selects a
	// single communication partner. Information received in a round is
	// available for sending only at the beginning of the next round.
	Synchronous TimeModel = iota + 1
	// Asynchronous: in every timeslot one node, selected independently and
	// uniformly at random, takes an action. n consecutive timeslots are
	// counted as one round.
	Asynchronous
)

// String returns the model name.
func (m TimeModel) String() string {
	switch m {
	case Synchronous:
		return "synchronous"
	case Asynchronous:
		return "asynchronous"
	default:
		return fmt.Sprintf("TimeModel(%d)", int(m))
	}
}

// ParseTimeModel converts a string such as "sync" or "asynchronous" to a
// TimeModel.
func ParseTimeModel(s string) (TimeModel, error) {
	switch s {
	case "sync", "synchronous", "s":
		return Synchronous, nil
	case "async", "asynchronous", "a":
		return Asynchronous, nil
	default:
		return 0, fmt.Errorf("core: unknown time model %q", s)
	}
}

// NewRand returns a deterministic PCG-backed generator for the given seed.
// Two generators created from the same seed produce identical streams, which
// is what makes whole simulations replayable.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// SplitSeed derives an independent child seed from a parent seed and a
// stream index, using a SplitMix64 finalizer. It is used to hand every
// node, trial, and subsystem its own reproducible randomness without the
// streams being correlated.
func SplitSeed(parent uint64, stream uint64) uint64 {
	z := parent + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
