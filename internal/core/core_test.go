package core

import (
	"testing"
	"testing/quick"
)

func TestActionStringsAndParse(t *testing.T) {
	tests := []struct {
		a    Action
		want string
	}{
		{Push, "PUSH"},
		{Pull, "PULL"},
		{Exchange, "EXCHANGE"},
		{Action(9), "Action(9)"},
	}
	for _, tt := range tests {
		if got := tt.a.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", tt.a, got, tt.want)
		}
	}
	for _, s := range []string{"push", "PUSH", "Push"} {
		if a, err := ParseAction(s); err != nil || a != Push {
			t.Errorf("ParseAction(%q) = %v, %v", s, a, err)
		}
	}
	if a, err := ParseAction("xchg"); err != nil || a != Exchange {
		t.Errorf("ParseAction(xchg) = %v, %v", a, err)
	}
	if _, err := ParseAction("sideways"); err == nil {
		t.Error("invalid action accepted")
	}
}

func TestTimeModelStringsAndParse(t *testing.T) {
	if Synchronous.String() != "synchronous" || Asynchronous.String() != "asynchronous" {
		t.Error("model strings wrong")
	}
	if TimeModel(7).String() == "" {
		t.Error("unknown model must still render")
	}
	for s, want := range map[string]TimeModel{
		"sync": Synchronous, "s": Synchronous, "synchronous": Synchronous,
		"async": Asynchronous, "a": Asynchronous, "asynchronous": Asynchronous,
	} {
		if m, err := ParseTimeModel(s); err != nil || m != want {
			t.Errorf("ParseTimeModel(%q) = %v, %v", s, m, err)
		}
	}
	if _, err := ParseTimeModel("warp"); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(5), NewRand(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(6)
	same := true
	a2 := NewRand(5)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

// TestSplitSeedInjective checks that distinct (parent, stream) pairs give
// distinct children in practice, and that the map is deterministic.
func TestSplitSeedInjective(t *testing.T) {
	seen := make(map[uint64]bool)
	for parent := uint64(0); parent < 50; parent++ {
		for stream := uint64(0); stream < 50; stream++ {
			s := SplitSeed(parent, stream)
			if seen[s] {
				t.Fatalf("collision at parent=%d stream=%d", parent, stream)
			}
			seen[s] = true
			if s != SplitSeed(parent, stream) {
				t.Fatal("SplitSeed not deterministic")
			}
		}
	}
}

// TestSplitSeedAvalanche: flipping the stream index should flip about half
// the output bits on average (SplitMix64 finalizer quality).
func TestSplitSeedAvalanche(t *testing.T) {
	check := func(parent uint64, stream uint64) bool {
		a := SplitSeed(parent, stream)
		b := SplitSeed(parent, stream+1)
		diff := a ^ b
		bits := 0
		for diff != 0 {
			bits++
			diff &= diff - 1
		}
		return bits >= 10 && bits <= 54
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNilNode(t *testing.T) {
	if NilNode >= 0 {
		t.Error("NilNode must be negative")
	}
}
