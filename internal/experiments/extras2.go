package experiments

import (
	"fmt"
	"io"

	"algossip/internal/core"
	"algossip/internal/graph"
	"algossip/internal/sim"
)

// A5SyncVsAsync compares the two time models the paper analyzes side by
// side: Theorem 1 gives the same O((k+log n+D)Δ) bound for both, so the
// async/sync round ratio should be a modest constant on every topology.
func A5SyncVsAsync(w io.Writer, opt Options) error {
	n := opt.pick(24, 48)
	graphs := []*graph.Graph{
		graph.Line(n),
		graph.Grid(isqrt(n), isqrt(n)),
		graph.Complete(n),
		graph.Barbell(n),
		graph.BinaryTree(n - 1),
	}
	tbl := NewTable("graph", "k", "sync rounds", "async rounds", "async/sync")
	for _, g := range graphs {
		k := g.N() / 2
		syncMean, err := MeanRounds(opt, func(s uint64) (sim.Result, error) {
			return UniformAG(GossipSpec{Graph: g, K: k, Model: core.Synchronous}, s)
		})
		if err != nil {
			return fmt.Errorf("A5 sync %s: %w", g.Name(), err)
		}
		asyncMean, err := MeanRounds(opt, func(s uint64) (sim.Result, error) {
			return UniformAG(GossipSpec{Graph: g, K: k, Model: core.Asynchronous}, s)
		})
		if err != nil {
			return fmt.Errorf("A5 async %s: %w", g.Name(), err)
		}
		tbl.AddRow(g.Name(), k, syncMean, asyncMean, asyncMean/syncMean)
	}
	fmt.Fprintln(w, "A5 — ablation: synchronous vs asynchronous time model (uniform AG)")
	fmt.Fprintln(w, "    expected: ratio a modest constant on every topology (same Theorem 1 bound)")
	return tbl.Write(w)
}

// A6LossRobustness injects i.i.d. packet loss into uniform algebraic
// gossip. Because any surviving random combination is helpful with
// probability >= 1-1/q, the expected slowdown is ~1/(1-p) — no
// retransmission machinery needed. This is the failure-injection
// experiment for the coding layer.
func A6LossRobustness(w io.Writer, opt Options) error {
	n := opt.pick(25, 64)
	s := isqrt(n)
	g := graph.Grid(s, s)
	k := g.N() / 2
	tbl := NewTable("loss p", "rounds", "slowdown", "1/(1-p) ref")
	var base float64
	for _, p := range []float64{0, 0.1, 0.3, 0.5} {
		mean, err := MeanRounds(opt, func(sd uint64) (sim.Result, error) {
			return UniformAG(GossipSpec{Graph: g, K: k, LossRate: p}, sd)
		})
		if err != nil {
			return fmt.Errorf("A6 p=%v: %w", p, err)
		}
		if p == 0 {
			base = mean
		}
		tbl.AddRow(p, mean, mean/base, 1/(1-p))
	}
	fmt.Fprintf(w, "A6 — failure injection: packet loss on %s, k=%d\n", g.Name(), k)
	fmt.Fprintln(w, "    expected: slowdown tracks 1/(1-p); protocol always completes")
	return tbl.Write(w)
}
