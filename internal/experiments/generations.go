package experiments

import (
	"fmt"
	"io"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/gossip/algebraic"
	"algossip/internal/graph"
	"algossip/internal/harness"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
)

// A7Generations is the generation-size ablation: split the k messages into
// generations of size g and gossip each independently. Per-packet overhead
// falls linearly in g while a coupon-collector penalty appears across
// generations, so total traffic (bits) is minimized at an intermediate g —
// the trade-off practical RLNC systems tune. The paper's protocol is the
// single-generation column (g = k).
func A7Generations(w io.Writer, opt Options) error {
	n := opt.pick(16, 32)
	g := graph.Complete(n)
	k := g.N()
	tbl := NewTable("gen size", "generations", "rounds", "packets", "bits/packet", "~kbit total")
	for _, genSize := range []int{1, 4, k / 2, k} {
		if genSize < 1 || genSize > k {
			continue
		}
		cfg := rlnc.GenConfig{
			Inner:   rlnc.Config{Field: gf.MustNew(2), RankOnly: true},
			K:       k,
			GenSize: genSize,
		}
		type sample struct{ rounds, packets float64 }
		samples, err := harness.ParallelMap(opt.trials(), opt.parallel(),
			func(i int) (sample, error) {
				seed := core.SplitSeed(opt.Seed, uint64(950+i))
				p, err := algebraic.NewGen(g, core.Synchronous, sim.NewUniform(g), cfg,
					core.NewRand(core.SplitSeed(seed, 1)))
				if err != nil {
					return sample{}, fmt.Errorf("A7 g=%d: %w", genSize, err)
				}
				if err := p.SeedAll(algebraic.RoundRobinAssign(k, g.N()), nil); err != nil {
					return sample{}, err
				}
				res, err := sim.New(g, core.Synchronous, p, core.SplitSeed(seed, 2),
					sim.WithMaxRounds(1<<20)).Run()
				if err != nil {
					return sample{}, fmt.Errorf("A7 g=%d: %w", genSize, err)
				}
				return sample{float64(res.Rounds), float64(p.Traffic().Sent)}, nil
			})
		if err != nil {
			return err
		}
		var rounds, packets float64
		for _, s := range samples {
			rounds += s.rounds
			packets += s.packets
		}
		trials := float64(opt.trials())
		bits := cfg.MessageBits()
		tbl.AddRow(genSize, cfg.Generations(), rounds/trials, packets/trials,
			bits, packets/trials*float64(bits)/1e3)
	}
	fmt.Fprintf(w, "A7 — ablation: RLNC generation size on %s, k=n=%d\n", g.Name(), k)
	fmt.Fprintln(w, "    expected: rounds fall as g grows (less coupon-collecting); bits/packet")
	fmt.Fprintln(w, "    grow with g; total bits minimized at an intermediate generation size")
	return tbl.Write(w)
}
