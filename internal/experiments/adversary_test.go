package experiments

import (
	"testing"

	"algossip/internal/core"
	"algossip/internal/harness"
	"algossip/internal/stats"
)

// TestE18AdversarialGate is the adversarial-regime gate from ROADMAP item
// 5: uniform AG on a complete graph with a Byzantine fraction of 0.2 —
// the worst declared mode grid — must still bring every node to full
// rank, with mean+3σ of the stopping time within the modeled dilation
// bound base·(1-f)^-2 of the honest baseline's mean+3σ. The quick-mode
// E18 table (exercised by TestAllExperimentsQuick) covers the same grid
// at small n and 2 trials; this test runs the gate point at full size
// with more trials, so it skips in -short and under the race detector.
func TestE18AdversarialGate(t *testing.T) {
	if testing.Short() {
		t.Skip("adversarial gate skipped in -short")
	}
	if core.RaceEnabled {
		t.Skip("adversarial gate skipped under the race detector")
	}
	const (
		n    = 128
		frac = 0.2
		seed = 42
	)
	opt := Options{Seed: seed, Trials: 6}
	k := n / 2

	base, err := e18Run(n, k, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	sBase := stats.Summarize(base.CellRounds(0))
	baseGate := sBase.Mean + 3*sBase.StdDev
	bound := e18Bound(baseGate, frac)

	for _, mode := range e18Modes {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			rs, err := e18Run(n, k, &harness.Adversary{Kind: "byzantine", Frac: frac, Mode: mode}, opt)
			if err != nil {
				t.Fatal(err)
			}
			for i, o := range rs.Outcomes {
				if !o.Result.Completed {
					t.Fatalf("trial %d never converged under %s at f=%g", i, mode, frac)
				}
				if o.Traffic.Verified == 0 {
					t.Fatalf("trial %d paid no verification under an active adversary", i)
				}
			}
			s := stats.Summarize(rs.CellRounds(0))
			gated := s.Mean + 3*s.StdDev
			t.Logf("%s f=%g: rounds %v, gate %.1f vs bound %.1f (base %.1f)",
				mode, frac, s, gated, bound, baseGate)
			if gated > bound {
				t.Errorf("dilation gate violated: mean+3σ = %.1f exceeds base·(1-f)^-2 = %.1f", gated, bound)
			}
		})
	}
}
