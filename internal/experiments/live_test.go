package experiments

import (
	"strings"
	"testing"

	"algossip/internal/core"
)

// TestE17LiveGate is the full network-runtime conformance gate: a
// 48-process gossipd deployment on a 48-node ring over loopback TCP with
// 10% injected loss must stop within 3σ of the simulator prediction for
// the identical spec, and every process must drain cleanly (exit 0). The
// quick-mode E17 table (exercised by TestAllExperimentsQuick) covers the
// same gate at 6 processes; this is the one that runs at deployment
// scale, so it skips in -short and under the race detector (the raced
// controller's polling cadence would distort the live tick measurement).
func TestE17LiveGate(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process gate skipped in -short")
	}
	if core.RaceEnabled {
		t.Skip("multi-process gate skipped under the race detector")
	}
	var sb strings.Builder
	if err := E17LiveCluster(&sb, Options{Seed: 42}); err != nil {
		t.Fatalf("E17: %v", err)
	}
	out := sb.String()
	t.Log("\n" + out)
	if strings.Contains(out, "VIOLATION") {
		t.Errorf("live cluster outside 3σ of simulator prediction:\n%s", out)
	}
}
