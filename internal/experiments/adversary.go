package experiments

import (
	"fmt"
	"io"

	"algossip/internal/harness"
	"algossip/internal/stats"
)

// e18Fracs and e18Modes span the adversarial grid: every Byzantine
// behavior at fractions up to the 0.2 gate point.
var (
	e18Fracs = []float64{0.1, 0.2}
	e18Modes = []string{"pollute", "replay", "freeride"}
)

// e18Run executes one E18 cell: uniform AG on a complete graph with the
// given adversary declaration (nil = the all-honest baseline). Everything
// except the adversary is held fixed, so the dilation column isolates the
// Byzantine population's effect.
func e18Run(n, k int, adv *harness.Adversary, opt Options) (*harness.ResultSet, error) {
	// A 3σ gate needs a non-degenerate σ estimate on both sides; the
	// quick-mode default of 2 trials makes the sample deviation a coin
	// flip, so E18 floors the repetition count at 4.
	trials := opt.trials()
	if trials < 4 {
		trials = 4
	}
	spec := harness.Spec{
		Name:  "E18",
		Graph: "complete", Sizes: []int{n},
		KMode:     fmt.Sprintf("const:%d", k),
		Adversary: adv,
		Trials:    trials,
		Seed:      opt.Seed,
		Lean:      true,
	}
	return harness.Runner{Parallel: opt.parallel()}.Run(&spec)
}

// e18Bound is the modeled dilation bound: with a fraction f of nodes
// Byzantine, a uniform-gossip contact leg is productive only when its
// sender is honest AND (in the worst accounting) its receiver is honest
// too — Byzantine senders emit nothing useful in any mode, and packets
// landing at Byzantine nodes never propagate further. The per-leg useful
// probability therefore scales by at least (1-f)², so the stopping time
// dilates by at most 1/(1-f)² over the honest baseline. The baseline is
// taken at its own mean+3σ, making the bound a 3σ-vs-3σ comparison.
func e18Bound(baseGate, frac float64) float64 {
	return baseGate / ((1 - frac) * (1 - frac))
}

// E18Adversarial is the adversarial-regime gate (ROADMAP item 5): uniform
// algebraic gossip on a complete graph with a Byzantine node population
// drawn per trial — non-innovative replay, corrupt-coefficient pollution,
// or silent free-riding — at fractions up to 0.2. For every (mode, frac)
// cell it gates mean+3σ of the stopping time against the modeled dilation
// bound base·(1-f)^-2 (base = the in-experiment honest baseline's
// mean+3σ), and reports the per-trial verification cost the honest nodes
// paid screening Byzantine traffic. A VIOLATION row means honest-node
// convergence degraded more than the model allows — the robustness claim
// fails; a NOCONVERGE row means some trial never reached full rank at
// all. The fraction-0.2 gate also runs standalone in
// TestE18AdversarialGate.
func E18Adversarial(w io.Writer, opt Options) error {
	n := opt.pick(64, 128)
	k := n / 2

	base, err := e18Run(n, k, nil, opt)
	if err != nil {
		return fmt.Errorf("E18 baseline: %w", err)
	}
	sBase := stats.Summarize(base.CellRounds(0))
	baseGate := sBase.Mean + 3*sBase.StdDev

	tbl := NewTable("mode", "frac", "rounds mean", "sd", "mean+3sd", "bound base/(1-f)^2", "verify ops/trial", "gate")
	tbl.AddRow("honest", 0.0, sBase.Mean, sBase.StdDev, baseGate, baseGate, 0, "ok")
	for _, mode := range e18Modes {
		for _, frac := range e18Fracs {
			rs, err := e18Run(n, k, &harness.Adversary{Kind: "byzantine", Frac: frac, Mode: mode}, opt)
			if err != nil {
				return fmt.Errorf("E18 %s f=%g: %w", mode, frac, err)
			}
			s := stats.Summarize(rs.CellRounds(0))
			bound := e18Bound(baseGate, frac)
			gated := s.Mean + 3*s.StdDev
			verdict := "ok"
			var vops float64
			for _, o := range rs.Outcomes {
				if !o.Result.Completed {
					verdict = "NOCONVERGE VIOLATION"
				}
				vops += float64(o.Traffic.VerifyOps)
			}
			vops /= float64(len(rs.Outcomes))
			if verdict == "ok" && gated > bound {
				verdict = "VIOLATION"
			}
			if verdict == "ok" && vops == 0 {
				// Adversarial runs must pay for verification; a zero here
				// means the accounting (or the adversary) silently vanished.
				verdict = "WARNING no verification"
			}
			tbl.AddRow(mode, frac, s.Mean, s.StdDev, gated, bound, vops, verdict)
		}
	}
	fmt.Fprintln(w, "E18 — adversarial-regime gate: uniform AG on a complete graph with Byzantine nodes (replay / pollution / free-riding)")
	fmt.Fprintln(w, "    gate: every node (honest and Byzantine) reaches full rank, with mean+3σ within base·(1-f)^-2 of the honest baseline's mean+3σ")
	return tbl.Write(w)
}
