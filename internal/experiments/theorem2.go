package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"

	"algossip/internal/core"
	"algossip/internal/graph"
	"algossip/internal/harness"
	"algossip/internal/queueing"
	"algossip/internal/stats"
)

// E9QueueChain regenerates Figure 1 / Theorem 2: the reduction of algebraic
// gossip to queueing networks. It simulates every system in the
// stochastic-dominance chain
//
//	Q^tree ≼ Q^line ≼ Q̂^line,
//
// verifies the ordering of mean drain times, and fits the drain time of
// Q̂^line against (k + l_max)/µ (expected: linear with slope O(1)).
func E9QueueChain(w io.Writer, opt Options) error {
	trials := opt.pick(100, 400)
	mu := 1.0

	// Part 1: dominance chain on the BFS tree of a grid with scattered
	// customers (the Figure 1 pipeline: graph -> tree -> queues -> line).
	g := graph.Grid(4, opt.pick(4, 8))
	tree := g.BFSTree(0)
	customers := make([]int, g.N())
	total := 0
	for v := range customers {
		customers[v] = v % 2
		total += customers[v]
	}
	depths := tree.Depths()
	lmax := tree.Depth()
	byLevel := make([]int, lmax+1)
	for v, c := range customers {
		byLevel[depths[v]] += c
	}

	// The three systems of the dominance chain are independent simulations
	// with their own seed streams, so they fan out over the harness pool.
	chain, err := harness.ParallelFloats(3, opt.parallel(), func(i int) (float64, error) {
		switch i {
		case 0:
			return queueing.MeanDrainTime(trials, core.SplitSeed(opt.Seed, 1), func(rng *rand.Rand) float64 {
				return queueing.SimulateTree(tree, customers, queueing.Exponential(mu), rng)
			}), nil
		case 1:
			return queueing.MeanDrainTime(trials, core.SplitSeed(opt.Seed, 2), func(rng *rand.Rand) float64 {
				return queueing.SimulateLine(byLevel, queueing.Exponential(mu), rng)
			}), nil
		default:
			return queueing.MeanDrainTime(trials, core.SplitSeed(opt.Seed, 3), func(rng *rand.Rand) float64 {
				return queueing.SimulateLineAllAtEnd(lmax, total, queueing.Exponential(mu), rng)
			}), nil
		}
	})
	if err != nil {
		return err
	}
	meanTree, meanLine, meanEnd := chain[0], chain[1], chain[2]

	fmt.Fprintln(w, "E9 — Figure 1 / Theorem 2: gossip-to-queueing reduction")
	fmt.Fprintf(w, "    dominance chain (means, µ=1, %s, k=%d, lmax=%d):\n", g.Name(), total, lmax)
	fmt.Fprintf(w, "    t(Q^tree)=%.1f  ≤  t(Q^line)=%.1f  ≤  t(Q̂^line)=%.1f\n", meanTree, meanLine, meanEnd)
	if !(meanTree <= meanLine*1.05 && meanLine <= meanEnd*1.05) {
		fmt.Fprintln(w, "    WARNING: dominance ordering violated beyond tolerance")
	}

	// Part 2: Theorem 2 scaling — drain of Q̂^line vs k and lmax. Each
	// (lmax, k) cell draws from its own seed stream, so the grid runs in
	// parallel and renders in declaration order.
	tbl := NewTable("lmax", "k", "drain(mean)", "(k+lmax)/µ", "ratio")
	type cell struct{ lm, k int }
	var cells []cell
	for _, lm := range []int{5, 10, 20} {
		for _, k := range []int{20, 50, 100} {
			cells = append(cells, cell{lm, k})
		}
	}
	means, err := harness.ParallelFloats(len(cells), opt.parallel(), func(i int) (float64, error) {
		c := cells[i]
		return queueing.MeanDrainTime(trials, core.SplitSeed(opt.Seed, uint64(c.lm*1000+c.k)),
			func(rng *rand.Rand) float64 {
				return queueing.SimulateLineAllAtEnd(c.lm, c.k, queueing.Exponential(mu), rng)
			}), nil
	})
	if err != nil {
		return err
	}
	var xs, ys []float64
	for i, c := range cells {
		pred := float64(c.k+c.lm) / mu
		tbl.AddRow(c.lm, c.k, means[i], pred, means[i]/pred)
		xs = append(xs, pred)
		ys = append(ys, means[i])
	}
	_, slope, r2 := stats.LinearFit(xs, ys)
	fmt.Fprintf(w, "    drain vs (k+lmax)/µ: slope=%.2f R²=%.3f (Theorem 2: O((k+lmax+log n)/µ))\n", slope, r2)
	return tbl.Write(w)
}
