package experiments

import (
	"fmt"
	"io"

	"algossip/internal/graph"
	"algossip/internal/harness"
)

// E15DynamicTopology sweeps stopping time against topology dynamics:
// uniform algebraic gossip vs the uncoded baseline on a torus under
// i.i.d. per-round edge failures of increasing rate, plus churn and
// rewiring rows. The expected picture mirrors the A6 loss ablation —
// RLNC degrades by roughly the surviving-capacity factor because every
// delivered combination is still helpful with probability >= 1-1/q,
// while store-and-forward suffers the full coupon-collector slowdown —
// now driven through the graph.Dynamic engine path instead of packet
// loss on a static graph.
func E15DynamicTopology(w io.Writer, opt Options) error {
	side := opt.pick(4, 6)
	g := graph.Torus(side, side)
	k := g.N() / 2
	row := func(dyn *harness.Dynamics, proto harness.Protocol) (float64, error) {
		spec := harness.Spec{
			Name:      "E15-" + dyn.String(),
			Graphs:    []*graph.Graph{g},
			Ks:        []int{k},
			Protocol:  proto,
			Trials:    opt.trials(),
			Seed:      opt.Seed,
			Dynamics:  dyn,
			MaxRounds: 1 << 16,
			Lean:      true,
		}
		rs, err := harness.Runner{Parallel: opt.parallel()}.Run(&spec)
		if err != nil {
			return 0, err
		}
		return rs.MeanRounds(0), nil
	}

	dynamics := []*harness.Dynamics{
		{Kind: "static"},
		{Kind: "edge", Rate: 0.1},
		{Kind: "edge", Rate: 0.25},
		{Kind: "edge", Rate: 0.5},
		{Kind: "burst", Rate: 0.6, Period: 32, Burst: 8},
		{Kind: "rewire", Rate: 0.2, Period: 16},
		{Kind: "churn", Rate: 0.1, Period: 16},
	}
	tbl := NewTable("dynamics", "uniform AG", "uncoded", "AG slowdown", "uncoded slowdown")
	var agBase, unBase float64
	for i, dyn := range dynamics {
		ag, err := row(dyn, harness.ProtocolUniformAG)
		if err != nil {
			return fmt.Errorf("E15 %s AG: %w", dyn, err)
		}
		un, err := row(dyn, harness.ProtocolUncoded)
		if err != nil {
			return fmt.Errorf("E15 %s uncoded: %w", dyn, err)
		}
		if i == 0 {
			agBase, unBase = ag, un
		}
		tbl.AddRow(dyn.String(), ag, un, ag/agBase, un/unBase)
	}
	fmt.Fprintf(w, "E15 — dynamic topologies on %s: stopping time vs failure rate / churn / rewiring\n", g.Name())
	fmt.Fprintln(w, "    expected: AG slowdown stays near the surviving-capacity factor; uncoded degrades faster")
	return tbl.Write(w)
}
