package experiments

import (
	"fmt"
	"io"
	"runtime"

	"algossip/internal/core"
	"algossip/internal/graph"
	"algossip/internal/harness"
	"algossip/internal/stats"
)

// e16K picks the message count for a web-scale cell: k grows linearly
// with n (the regime where the paper's O(Δ(k+D+log n)) bound reads O(n)
// on an expander). The floor matters: the bound charges Δ = 4 rounds per
// message while measured cost is well under one round per message, so
// the gate's slack lives in the k-term. A small-k cell would lean on the
// additive D + log n terms alone — and D is estimated by a lower bound
// (DiameterApprox), leaving no headroom. Flooring at 32 keeps quick-mode
// cells in the same message-dominated balance as the n = 10^5 cells.
func e16K(n int) int {
	k := n / 1000
	if k < 32 {
		k = 32
	}
	return k
}

// e16Bound evaluates the Theorem 1 expression Δ·(k+D+log n) with the
// double-BFS diameter estimate: the exact Diameter() is O(n·m), which at
// n = 10^5 costs more than the simulation it bounds. DiameterApprox is a
// lower bound on D, so the gate below is conservative (a smaller bound is
// harder to stay under).
func e16Bound(g *graph.Graph, k int) float64 {
	return float64(g.MaxDegree()) * float64(k+g.DiameterApprox()+int(log2(g.N()))+1)
}

// E16WebScale is the web-scale conformance experiment (ROADMAP item 1):
// uniform algebraic gossip with generation-based coding on a random
// 4-regular expander, k ∝ n, executed through the sharded engine. For
// each size it gates mean + 3σ of the stopping time against the Theorem 1
// bound Δ·(k+D+log n) — which is Θ(n) here since k = Θ(n) and D, log n
// are O(log n) — and prints the measured/bound ratio. A ratio drifting
// toward 1 or a VIOLATION row means the O(n) claim fails at scale.
//
// Quick mode stays at n ≤ 8·10^3 for CI; full mode climbs to n = 10^5
// (about a minute per trial single-threaded — see EXPERIMENTS.md for the
// scaling recipe). The n ≥ 10^5 gate also runs standalone in
// TestE16WebScaleGate.
func E16WebScale(w io.Writer, opt Options) error {
	var sizes []int
	if opt.Quick {
		sizes = []int{2000, 4000, 8000}
	} else {
		sizes = []int{25000, 50000, 100000}
	}
	tbl := NewTable("n", "k", "g", "rounds mean", "sd", "mean+3sd", "bound Δ(k+D+log n)", "ratio", "gate")
	for _, n := range sizes {
		k := e16K(n)
		genSize := k / 4
		if genSize < 2 {
			genSize = 2
		}
		g, err := graph.FromName("randreg", n, core.NewRand(core.SplitSeed(opt.Seed, 999)))
		if err != nil {
			return fmt.Errorf("E16 n=%d: %w", n, err)
		}
		spec := harness.Spec{
			Name:   fmt.Sprintf("E16-n%d", n),
			Graphs: []*graph.Graph{g},
			Ks:     []int{k},
			// Single source is the paper's dissemination setting and the
			// one where retirement keeps the saturated region quiet.
			SingleSource: true,
			GenSize:      genSize,
			// Cores go to intra-trial sharding rather than the trial pool:
			// at n = 10^5 one trial is the whole machine's working set.
			Shards:    runtime.GOMAXPROCS(0),
			Trials:    opt.trials(),
			Seed:      opt.Seed,
			MaxRounds: 1 << 18,
			Lean:      true,
		}
		rs, err := harness.Runner{Parallel: 1}.Run(&spec)
		if err != nil {
			return fmt.Errorf("E16 n=%d: %w", n, err)
		}
		s := stats.Summarize(rs.CellRounds(0))
		bound := e16Bound(g, k)
		gated := s.Mean + 3*s.StdDev
		verdict := "ok"
		if gated > bound {
			verdict = "VIOLATION"
		}
		tbl.AddRow(n, k, genSize, s.Mean, s.StdDev, gated, bound, s.Mean/bound, verdict)
	}
	fmt.Fprintln(w, "E16 — web-scale O(n) conformance: generation-coded AG on a random 4-regular expander, k ∝ n, sharded engine")
	fmt.Fprintln(w, "    gate: mean + 3σ of the stopping time stays under Δ·(k+D+log n); D is the double-BFS estimate (conservative)")
	return tbl.Write(w)
}
