// Package experiments is the registry that regenerates every table and
// figure of the paper's evaluation (see DESIGN.md, "Experiment index"):
// it layers the paper's table renderers on top of internal/harness,
// which owns the single-trial runners, the declarative Spec, and the
// parallel trial scheduler. Both the CLI (cmd/tables) and the benchmark
// suite (bench_test.go) drive this package, so the printed rows and the
// benchmark metrics come from the same code paths — and every trial loop
// fans out over the harness worker pool while remaining byte-identical
// for any worker count.
package experiments

import (
	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/gossip/ispread"
	"algossip/internal/graph"
	"algossip/internal/harness"
	"algossip/internal/sim"
)

// Re-exported harness vocabulary: the single-trial runners moved down
// into internal/harness so the binaries can share them without import
// cycles; the experiment runners keep their historical names.
type (
	// SelectorKind names a communication model.
	SelectorKind = harness.SelectorKind
	// TreeKind names a spanning-tree protocol for TAG's Phase 1.
	TreeKind = harness.TreeKind
	// GossipSpec declares one algebraic-gossip measurement.
	GossipSpec = harness.GossipSpec
	// TAGResult extends a sim.Result with Phase 1 observables.
	TAGResult = harness.TAGResult
)

const (
	// SelUniform is uniform gossip (Definition 1).
	SelUniform = harness.SelUniform
	// SelRoundRobin is round-robin / quasirandom gossip (Definition 2).
	SelRoundRobin = harness.SelRoundRobin
	// TreeBRR is the round-robin broadcast B_RR of Theorem 5.
	TreeBRR = harness.TreeBRR
	// TreeUniformB is the uniform push broadcast.
	TreeUniformB = harness.TreeUniformB
	// TreeIS is the information-spreading protocol of Section 6.
	TreeIS = harness.TreeIS
)

// UniformAG runs one algebraic-gossip trial and returns the stopping time.
func UniformAG(spec GossipSpec, seed uint64) (sim.Result, error) {
	return harness.UniformAG(spec, seed)
}

// TAG runs one TAG trial with the given Phase 1 protocol.
func TAG(spec GossipSpec, kind TreeKind, seed uint64) (TAGResult, error) {
	return harness.TAG(spec, kind, seed)
}

// Uncoded runs one store-and-forward baseline trial.
func Uncoded(spec GossipSpec, seed uint64) (sim.Result, error) {
	return harness.Uncoded(spec, seed)
}

// Broadcast runs one broadcast trial and returns the stopping time and the
// induced spanning tree.
func Broadcast(g *graph.Graph, model core.TimeModel, sel SelectorKind, seed uint64) (sim.Result, *graph.Tree, error) {
	return harness.Broadcast(g, model, sel, seed)
}

// ISpread runs one IS trial in the given mode and returns stopping time and
// the induced tree (TreeMode).
func ISpread(g *graph.Graph, model core.TimeModel, mode ispread.Mode, seed uint64) (sim.Result, *graph.Tree, error) {
	return harness.ISpread(g, model, mode, seed)
}

// Repeat runs fn for opt.trials() split seeds across the harness worker
// pool and collects the samples in trial order — deterministic for any
// parallelism because each trial's seed depends only on its index.
func Repeat(opt Options, fn func(seed uint64) (float64, error)) ([]float64, error) {
	return harness.ParallelFloats(opt.trials(), opt.parallel(), func(i int) (float64, error) {
		return fn(core.SplitSeed(opt.Seed, uint64(100+i)))
	})
}

// MeanRounds averages the stopping time of fn over opt.trials() trials.
func MeanRounds(opt Options, fn func(seed uint64) (sim.Result, error)) (float64, error) {
	xs, err := Repeat(opt, func(s uint64) (float64, error) {
		res, err := fn(s)
		return float64(res.Rounds), err
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// mustGF256 returns the GF(256) field instance used by payload-mode
// comparison runs.
func mustGF256() gf.Field { return gf.MustNew(256) }
