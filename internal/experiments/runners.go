// Package experiments is the harness that regenerates every table and
// figure of the paper's evaluation (see DESIGN.md, "Experiment index"):
// it wraps the protocol packages in declarative specs, repeats trials over
// split seeds, fits scaling exponents, and renders the comparison tables.
// Both the CLI (cmd/tables) and the benchmark suite (bench_test.go) drive
// this package, so the printed rows and the benchmark metrics come from the
// same code paths.
package experiments

import (
	"fmt"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/gossip/algebraic"
	"algossip/internal/gossip/broadcast"
	"algossip/internal/gossip/ispread"
	"algossip/internal/gossip/tag"
	"algossip/internal/gossip/uncoded"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
)

// SelectorKind names a communication model.
type SelectorKind int

const (
	// SelUniform is uniform gossip (Definition 1).
	SelUniform SelectorKind = iota + 1
	// SelRoundRobin is round-robin / quasirandom gossip (Definition 2).
	SelRoundRobin
)

// String returns the selector name.
func (s SelectorKind) String() string {
	if s == SelRoundRobin {
		return "round-robin"
	}
	return "uniform"
}

func (s SelectorKind) build(g *graph.Graph) sim.PartnerSelector {
	if s == SelRoundRobin {
		return sim.NewRoundRobin(g)
	}
	return sim.NewUniform(g)
}

// TreeKind names a spanning-tree protocol for TAG's Phase 1.
type TreeKind int

const (
	// TreeBRR is the round-robin broadcast B_RR of Theorem 5.
	TreeBRR TreeKind = iota + 1
	// TreeUniformB is the uniform push broadcast.
	TreeUniformB
	// TreeIS is the information-spreading protocol of Section 6.
	TreeIS
)

// String returns the tree-protocol name.
func (t TreeKind) String() string {
	switch t {
	case TreeBRR:
		return "BRR"
	case TreeUniformB:
		return "uniform-B"
	case TreeIS:
		return "IS"
	default:
		return fmt.Sprintf("TreeKind(%d)", int(t))
	}
}

// GossipSpec declares one algebraic-gossip measurement.
type GossipSpec struct {
	// Graph is the topology.
	Graph *graph.Graph
	// Model is the time model (default Synchronous).
	Model core.TimeModel
	// K is the number of messages.
	K int
	// Q is the field order (default 2, which selects the fast bitset
	// backend; stopping-time behaviour only improves with larger q).
	Q int
	// Action is the contact direction (default Exchange).
	Action core.Action
	// Selector is the communication model (default uniform).
	Selector SelectorKind
	// SingleSource, when true, seeds all k messages at node 0 instead of
	// round-robin across nodes.
	SingleSource bool
	// LossRate drops each transmitted packet with this probability
	// (failure injection; uniform AG only).
	LossRate float64
	// MaxRounds overrides the engine's round budget (default generous).
	MaxRounds int
}

func (s GossipSpec) normalize() GossipSpec {
	if s.Model == 0 {
		s.Model = core.Synchronous
	}
	if s.Q == 0 {
		s.Q = 2
	}
	if s.Action == 0 {
		s.Action = core.Exchange
	}
	if s.Selector == 0 {
		s.Selector = SelUniform
	}
	if s.MaxRounds == 0 {
		s.MaxRounds = 1 << 21
	}
	return s
}

func (s GossipSpec) rlncConfig() rlnc.Config {
	return rlnc.Config{Field: gf.MustNew(s.Q), K: s.K, RankOnly: true}
}

func (s GossipSpec) assign() []core.NodeID {
	if s.SingleSource {
		return algebraic.SingleAssign(s.K, 0)
	}
	return algebraic.RoundRobinAssign(s.K, s.Graph.N())
}

// UniformAG runs one algebraic-gossip trial and returns the stopping time.
func UniformAG(spec GossipSpec, seed uint64) (sim.Result, error) {
	spec = spec.normalize()
	p, err := algebraic.New(spec.Graph, spec.Model, spec.Selector.build(spec.Graph),
		algebraic.Config{RLNC: spec.rlncConfig(), Action: spec.Action, LossRate: spec.LossRate},
		core.NewRand(core.SplitSeed(seed, 1)))
	if err != nil {
		return sim.Result{}, err
	}
	if err := p.SeedAll(spec.assign(), nil); err != nil {
		return sim.Result{}, err
	}
	return sim.New(spec.Graph, spec.Model, p, core.SplitSeed(seed, 2),
		sim.WithMaxRounds(spec.MaxRounds)).Run()
}

// TAGResult extends a sim.Result with Phase 1 observables.
type TAGResult struct {
	sim.Result
	// TreeRounds is t(S): the synchronous round at which the spanning tree
	// completed (-1 if untracked, asynchronous model).
	TreeRounds int
	// TreeDepth and TreeDiameter describe the tree S built.
	TreeDepth, TreeDiameter int
}

// TAG runs one TAG trial with the given Phase 1 protocol.
func TAG(spec GossipSpec, kind TreeKind, seed uint64) (TAGResult, error) {
	spec = spec.normalize()
	var stp tag.SpanningTree
	switch kind {
	case TreeBRR:
		stp = broadcast.New(spec.Graph, spec.Model, sim.NewRoundRobin(spec.Graph),
			broadcast.Config{Origin: 0}, core.NewRand(core.SplitSeed(seed, 3)))
	case TreeUniformB:
		stp = broadcast.New(spec.Graph, spec.Model, sim.NewUniform(spec.Graph),
			broadcast.Config{Origin: 0}, core.NewRand(core.SplitSeed(seed, 3)))
	case TreeIS:
		stp = ispread.New(spec.Graph, spec.Model, ispread.Config{Root: 0},
			core.NewRand(core.SplitSeed(seed, 3)))
	default:
		return TAGResult{}, fmt.Errorf("experiments: unknown tree kind %d", kind)
	}
	p, err := tag.New(spec.Graph, spec.Model, stp, spec.rlncConfig(),
		core.NewRand(core.SplitSeed(seed, 4)))
	if err != nil {
		return TAGResult{}, err
	}
	if err := p.SeedAll(spec.assign(), nil); err != nil {
		return TAGResult{}, err
	}
	res, err := sim.New(spec.Graph, spec.Model, p, core.SplitSeed(seed, 5),
		sim.WithMaxRounds(spec.MaxRounds)).Run()
	out := TAGResult{Result: res, TreeRounds: p.TreeRound(), TreeDepth: -1, TreeDiameter: -1}
	if tree, ok := stp.Tree(); ok {
		out.TreeDepth = tree.Depth()
		out.TreeDiameter = tree.Diameter()
	}
	return out, err
}

// Broadcast runs one broadcast trial and returns the stopping time and the
// induced spanning tree.
func Broadcast(g *graph.Graph, model core.TimeModel, sel SelectorKind, seed uint64) (sim.Result, *graph.Tree, error) {
	p := broadcast.New(g, model, sel.build(g), broadcast.Config{Origin: 0},
		core.NewRand(core.SplitSeed(seed, 6)))
	res, err := sim.New(g, model, p, core.SplitSeed(seed, 7)).Run()
	if err != nil {
		return res, nil, err
	}
	tree, _ := p.Tree()
	return res, tree, nil
}

// ISpread runs one IS trial in the given mode and returns stopping time and
// the induced tree (TreeMode).
func ISpread(g *graph.Graph, model core.TimeModel, mode ispread.Mode, seed uint64) (sim.Result, *graph.Tree, error) {
	p := ispread.New(g, model, ispread.Config{Root: 0, Mode: mode},
		core.NewRand(core.SplitSeed(seed, 8)))
	res, err := sim.New(g, model, p, core.SplitSeed(seed, 9)).Run()
	if err != nil {
		return res, nil, err
	}
	tree, _ := p.Tree()
	return res, tree, nil
}

// Uncoded runs one store-and-forward baseline trial.
func Uncoded(spec GossipSpec, seed uint64) (sim.Result, error) {
	spec = spec.normalize()
	p := uncoded.New(spec.Graph, spec.Model, spec.Selector.build(spec.Graph),
		uncoded.Config{K: spec.K, Action: spec.Action},
		core.NewRand(core.SplitSeed(seed, 1)))
	p.SeedAll(spec.assign())
	return sim.New(spec.Graph, spec.Model, p, core.SplitSeed(seed, 2),
		sim.WithMaxRounds(spec.MaxRounds)).Run()
}

// Repeat runs fn for `trials` split seeds and collects the results.
func Repeat(trials int, seed uint64, fn func(seed uint64) (float64, error)) ([]float64, error) {
	out := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		v, err := fn(core.SplitSeed(seed, uint64(100+i)))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// MeanRounds averages the stopping time of fn over trials.
func MeanRounds(trials int, seed uint64, fn func(seed uint64) (sim.Result, error)) (float64, error) {
	xs, err := Repeat(trials, seed, func(s uint64) (float64, error) {
		res, err := fn(s)
		return float64(res.Rounds), err
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// mustGF256 returns the GF(256) field instance used by payload-mode
// comparison runs.
func mustGF256() gf.Field { return gf.MustNew(256) }
