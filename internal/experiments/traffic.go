package experiments

import (
	"fmt"
	"io"

	"algossip/internal/core"
	"algossip/internal/gossip"
	"algossip/internal/graph"
	"algossip/internal/harness"
	"algossip/internal/stats"
	"algossip/internal/trace"
)

// E13Traffic compares total traffic (packets and bits on the wire) across
// protocols on the barbell: the paper's premise is bounded message sizes,
// so the interesting quantity is rounds *and* bits. TAG sends far fewer
// packets than uniform AG on bottlenecked graphs because its Phase 2
// packets flow only along tree edges; uncoded gossip pays the
// coupon-collector surcharge in useless packets.
func E13Traffic(w io.Writer, opt Options) error {
	n := opt.pick(24, 64)
	g := graph.Barbell(n)
	k := g.N()
	spec := GossipSpec{Graph: g, K: k}.Normalize()
	bits := gossip.MessageBits(spec.RLNCConfig())
	tbl := NewTable("protocol", "rounds", "packets sent", "helpful", "efficiency", "~Mbit total")

	runs := []struct {
		name  string
		proto harness.Protocol
	}{
		{"uniform AG", harness.ProtocolUniformAG},
		{"TAG+BRR", harness.ProtocolTAGRR},
		{"uncoded", harness.ProtocolUncoded},
	}
	for _, r := range runs {
		outcomes, err := harness.ParallelMap(opt.trials(), opt.parallel(),
			func(i int) (harness.Outcome, error) {
				return harness.Execute(spec, r.proto, core.SplitSeed(opt.Seed, uint64(700+i)))
			})
		if err != nil {
			return fmt.Errorf("E13 %s: %w", r.name, err)
		}
		var rounds float64
		var tr gossip.Traffic
		for _, o := range outcomes {
			rounds += float64(o.Result.Rounds)
			tr.Add(o.Traffic)
		}
		trials := float64(opt.trials())
		mbits := float64(tr.Sent) / trials * float64(bits) / 1e6
		tbl.AddRow(r.name, rounds/trials, float64(tr.Sent)/trials,
			float64(tr.Helpful)/trials, tr.Efficiency(), mbits)
	}
	fmt.Fprintf(w, "E13 — traffic accounting on %s, k=n=%d (message = %d bits)\n", g.Name(), k, bits)
	fmt.Fprintln(w, "    expected: TAG sends far fewer packets than uniform AG on bottlenecked graphs;")
	fmt.Fprintln(w, "    uncoded gossip wastes most receptions (low efficiency)")
	return tbl.Write(w)
}

// E14DisseminationCurve records per-node completion rounds (the trace
// subsystem, wired in through GossipSpec.Observer) and prints the
// dissemination CDF quantiles on the barbell. The distributional story
// behind E10: under uniform AG *every* node's completion is gated by the
// trickle of rank across the bridge, so the whole CDF — median included —
// sits at Θ(n²); TAG shifts the entire curve down to Θ(n).
func E14DisseminationCurve(w io.Writer, opt Options) error {
	n := opt.pick(24, 64)
	g := graph.Barbell(n)
	k := g.N()

	tbl := NewTable("protocol", "median node done", "p90", "last node done", "tail spread (max/med)")
	for _, r := range []struct {
		name  string
		proto harness.Protocol
	}{{"uniform AG", harness.ProtocolUniformAG}, {"TAG+BRR", harness.ProtocolTAGRR}} {
		summaries, err := harness.ParallelMap(opt.trials(), opt.parallel(),
			func(i int) (stats.Summary, error) {
				rec := trace.NewRecorder()
				spec := GossipSpec{Graph: g, K: k, Observer: rec}
				if _, err := harness.Execute(spec, r.proto, core.SplitSeed(opt.Seed, uint64(800+i))); err != nil {
					return stats.Summary{}, err
				}
				return rec.Summary()
			})
		if err != nil {
			return fmt.Errorf("E14 %s: %w", r.name, err)
		}
		var meds, p90s, maxs []float64
		for _, s := range summaries {
			meds = append(meds, s.Median)
			p90s = append(p90s, s.P90)
			maxs = append(maxs, s.Max)
		}
		med := stats.Mean(meds)
		max := stats.Mean(maxs)
		tbl.AddRow(r.name, med, stats.Mean(p90s), max, max/med)
	}
	fmt.Fprintf(w, "E14 — dissemination curve on %s, k=n=%d (per-node completion quantiles)\n", g.Name(), k)
	fmt.Fprintln(w, "    expected: the entire uniform-AG CDF (median included) is gated by the bridge;")
	fmt.Fprintln(w, "    TAG shifts the whole curve down by the Θ(n) factor of E10")
	return tbl.Write(w)
}
