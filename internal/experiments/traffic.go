package experiments

import (
	"fmt"
	"io"

	"algossip/internal/core"
	"algossip/internal/gossip"
	"algossip/internal/gossip/algebraic"
	"algossip/internal/gossip/broadcast"
	"algossip/internal/gossip/tag"
	"algossip/internal/gossip/uncoded"
	"algossip/internal/graph"
	"algossip/internal/sim"
	"algossip/internal/stats"
	"algossip/internal/trace"
)

// E13Traffic compares total traffic (packets and bits on the wire) across
// protocols on the barbell: the paper's premise is bounded message sizes,
// so the interesting quantity is rounds *and* bits. TAG sends far fewer
// packets than uniform AG on bottlenecked graphs because its Phase 2
// packets flow only along tree edges; uncoded gossip pays the
// coupon-collector surcharge in useless packets.
func E13Traffic(w io.Writer, opt Options) error {
	n := opt.pick(24, 64)
	g := graph.Barbell(n)
	k := g.N()
	bits := gossip.MessageBits(GossipSpec{Graph: g, K: k}.normalize().rlncConfig())
	tbl := NewTable("protocol", "rounds", "packets sent", "helpful", "efficiency", "~Mbit total")

	type run struct {
		name string
		do   func(seed uint64) (int, gossip.Traffic, error)
	}
	runs := []run{
		{"uniform AG", func(seed uint64) (int, gossip.Traffic, error) {
			spec := GossipSpec{Graph: g, K: k}.normalize()
			p, err := algebraic.New(g, spec.Model, sim.NewUniform(g),
				algebraic.Config{RLNC: spec.rlncConfig()}, core.NewRand(core.SplitSeed(seed, 1)))
			if err != nil {
				return 0, gossip.Traffic{}, err
			}
			if err := p.SeedAll(spec.assign(), nil); err != nil {
				return 0, gossip.Traffic{}, err
			}
			res, err := sim.New(g, spec.Model, p, core.SplitSeed(seed, 2),
				sim.WithMaxRounds(spec.MaxRounds)).Run()
			return res.Rounds, p.Traffic(), err
		}},
		{"TAG+BRR", func(seed uint64) (int, gossip.Traffic, error) {
			spec := GossipSpec{Graph: g, K: k}.normalize()
			stp := broadcast.New(g, spec.Model, sim.NewRoundRobin(g),
				broadcast.Config{Origin: 0}, core.NewRand(core.SplitSeed(seed, 3)))
			p, err := tag.New(g, spec.Model, stp, spec.rlncConfig(),
				core.NewRand(core.SplitSeed(seed, 4)))
			if err != nil {
				return 0, gossip.Traffic{}, err
			}
			if err := p.SeedAll(spec.assign(), nil); err != nil {
				return 0, gossip.Traffic{}, err
			}
			res, err := sim.New(g, spec.Model, p, core.SplitSeed(seed, 5),
				sim.WithMaxRounds(spec.MaxRounds)).Run()
			return res.Rounds, p.Traffic(), err
		}},
		{"uncoded", func(seed uint64) (int, gossip.Traffic, error) {
			spec := GossipSpec{Graph: g, K: k}.normalize()
			p := uncoded.New(g, spec.Model, sim.NewUniform(g),
				uncoded.Config{K: k}, core.NewRand(core.SplitSeed(seed, 1)))
			p.SeedAll(spec.assign())
			res, err := sim.New(g, spec.Model, p, core.SplitSeed(seed, 2),
				sim.WithMaxRounds(spec.MaxRounds)).Run()
			return res.Rounds, p.Traffic(), err
		}},
	}
	for _, r := range runs {
		var rounds float64
		var tr gossip.Traffic
		for i := 0; i < opt.trials(); i++ {
			rd, t, err := r.do(core.SplitSeed(opt.Seed, uint64(700+i)))
			if err != nil {
				return fmt.Errorf("E13 %s: %w", r.name, err)
			}
			rounds += float64(rd)
			tr.Add(t)
		}
		trials := float64(opt.trials())
		mbits := float64(tr.Sent) / trials * float64(bits) / 1e6
		tbl.AddRow(r.name, rounds/trials, float64(tr.Sent)/trials,
			float64(tr.Helpful)/trials, tr.Efficiency(), mbits)
	}
	fmt.Fprintf(w, "E13 — traffic accounting on %s, k=n=%d (message = %d bits)\n", g.Name(), k, bits)
	fmt.Fprintln(w, "    expected: TAG sends far fewer packets than uniform AG on bottlenecked graphs;")
	fmt.Fprintln(w, "    uncoded gossip wastes most receptions (low efficiency)")
	return tbl.Write(w)
}

// E14DisseminationCurve records per-node completion rounds (the trace
// subsystem) and prints the dissemination CDF quantiles on the barbell.
// The distributional story behind E10: under uniform AG *every* node's
// completion is gated by the trickle of rank across the bridge, so the
// whole CDF — median included — sits at Θ(n²); TAG shifts the entire curve
// down to Θ(n).
func E14DisseminationCurve(w io.Writer, opt Options) error {
	n := opt.pick(24, 64)
	g := graph.Barbell(n)
	k := g.N()
	spec := GossipSpec{Graph: g, K: k}.normalize()

	runAG := func(seed uint64) (*trace.Recorder, error) {
		rec := trace.NewRecorder()
		p, err := algebraic.New(g, spec.Model, sim.NewUniform(g),
			algebraic.Config{RLNC: spec.rlncConfig()}, core.NewRand(core.SplitSeed(seed, 1)))
		if err != nil {
			return nil, err
		}
		p.SetObserver(rec)
		if err := p.SeedAll(spec.assign(), nil); err != nil {
			return nil, err
		}
		_, err = sim.New(g, spec.Model, p, core.SplitSeed(seed, 2),
			sim.WithMaxRounds(spec.MaxRounds)).Run()
		return rec, err
	}
	runTAG := func(seed uint64) (*trace.Recorder, error) {
		rec := trace.NewRecorder()
		stp := broadcast.New(g, spec.Model, sim.NewRoundRobin(g),
			broadcast.Config{Origin: 0}, core.NewRand(core.SplitSeed(seed, 3)))
		p, err := tag.New(g, spec.Model, stp, spec.rlncConfig(),
			core.NewRand(core.SplitSeed(seed, 4)))
		if err != nil {
			return nil, err
		}
		p.SetObserver(rec)
		if err := p.SeedAll(spec.assign(), nil); err != nil {
			return nil, err
		}
		_, err = sim.New(g, spec.Model, p, core.SplitSeed(seed, 5),
			sim.WithMaxRounds(spec.MaxRounds)).Run()
		return rec, err
	}

	tbl := NewTable("protocol", "median node done", "p90", "last node done", "tail spread (max/med)")
	for _, r := range []struct {
		name string
		do   func(seed uint64) (*trace.Recorder, error)
	}{{"uniform AG", runAG}, {"TAG+BRR", runTAG}} {
		var meds, p90s, maxs []float64
		for i := 0; i < opt.trials(); i++ {
			rec, err := r.do(core.SplitSeed(opt.Seed, uint64(800+i)))
			if err != nil {
				return fmt.Errorf("E14 %s: %w", r.name, err)
			}
			s, err := rec.Summary()
			if err != nil {
				return err
			}
			meds = append(meds, s.Median)
			p90s = append(p90s, s.P90)
			maxs = append(maxs, s.Max)
		}
		med := stats.Mean(meds)
		max := stats.Mean(maxs)
		tbl.AddRow(r.name, med, stats.Mean(p90s), max, max/med)
	}
	fmt.Fprintf(w, "E14 — dissemination curve on %s, k=n=%d (per-node completion quantiles)\n", g.Name(), k)
	fmt.Fprintln(w, "    expected: the entire uniform-AG CDF (median included) is gated by the bridge;")
	fmt.Fprintln(w, "    TAG shifts the whole curve down by the Θ(n) factor of E10")
	return tbl.Write(w)
}
