package experiments

import (
	"fmt"
	"io"

	"algossip/internal/core"
	"algossip/internal/graph"
	"algossip/internal/harness"
	"algossip/internal/stats"
)

// table2Family describes one row of the paper's Table 2: a topology
// together with this paper's bound and Haeupler's bound, both as functions
// of (n, k).
type table2Family struct {
	name     string
	make     func(n int) *graph.Graph
	ours     func(n, k int) float64 // O((k+log n+D)Δ) specialized
	haeupler func(n, k int) float64 // O(k/γ + log²n/λ)·(1/n) specialized per the paper's table
}

func table2Families() []table2Family {
	l2 := func(n int) float64 { return log2(n) }
	return []table2Family{
		{
			name: "line",
			make: graph.Line,
			ours: func(n, k int) float64 { return float64(k + n) },
			haeupler: func(n, k int) float64 {
				return float64(k) + float64(n)*l2(n)*l2(n)
			},
		},
		{
			name: "grid",
			make: func(n int) *graph.Graph { s := isqrt(n); return graph.Grid(s, s) },
			ours: func(n, k int) float64 { return float64(k) + float64(isqrt(n)) },
			haeupler: func(n, k int) float64 {
				return float64(k) + float64(isqrt(n))*l2(n)*l2(n)
			},
		},
		{
			name: "binary-tree",
			make: graph.BinaryTree,
			ours: func(n, k int) float64 { return float64(k) + l2(n) },
			haeupler: func(n, k int) float64 {
				return float64(k) + float64(n)*l2(n)*l2(n)
			},
		},
	}
}

// table2Row runs the measurement for one family at one size. It is the
// Spec-literal pattern new scenarios should follow: declare the cell,
// hand it to the harness pool, read the aggregate back. TrialSeed pins
// the historical MeanRounds stream layout so regenerated rows match the
// pre-harness output bit for bit.
func table2Row(fam table2Family, n, k int, opt Options) (mean float64, err error) {
	spec := harness.Spec{
		Name:     "table2-" + fam.name,
		Graphs:   []*graph.Graph{fam.make(n)},
		Ks:       []int{k},
		Protocol: harness.ProtocolUniformAG,
		Trials:   opt.trials(),
		Seed:     opt.Seed,
		TrialSeed: func(size, trial int) uint64 {
			return core.SplitSeed(opt.Seed, uint64(100+trial))
		},
	}
	rs, err := harness.Runner{Parallel: opt.parallel()}.Run(&spec)
	if err != nil {
		return 0, err
	}
	return rs.MeanRounds(0), nil
}

// runTable2 regenerates one row family of Table 2: measured uniform-AG
// stopping times across sizes, the two analytic bounds, and a fit of the
// measured data against this paper's bound expression (expected: linear,
// slope O(1), high R²).
func runTable2(w io.Writer, opt Options, fam table2Family, title string) error {
	sizes := []int{16, 32, 64}
	if !opt.Quick {
		sizes = []int{16, 32, 64, 128, 256}
	}
	tbl := NewTable("n", "k", "rounds", "ours(k+..)", "haeupler(k+..)", "γ (min cut)", "k/γ", "measured/ours")
	var xs, ys []float64
	for _, n := range sizes {
		g := fam.make(n)
		k := g.N() / 2
		mean, err := table2Row(fam, n, k, opt)
		if err != nil {
			return fmt.Errorf("table2 %s n=%d: %w", fam.name, n, err)
		}
		ours := fam.ours(g.N(), k)
		// γ is the global min cut of the actual topology (Stoer-Wagner) —
		// the parameter in Haeupler's O(k/γ + log²n/λ).
		gamma := g.MinCut()
		tbl.AddRow(g.N(), k, mean, ours, fam.haeupler(g.N(), k),
			gamma, float64(k)/float64(gamma), mean/ours)
		xs = append(xs, ours)
		ys = append(ys, mean)
	}
	_, slope, r2 := stats.LinearFit(xs, ys)
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "    measured vs our bound: slope=%.2f R²=%.3f (expected: linear, R² near 1)\n", slope, r2)
	return tbl.Write(w)
}

// E6Table2Line regenerates Table 2 row "Line": our bound O(k+n) vs
// Haeupler's O(k + n log²n).
func E6Table2Line(w io.Writer, opt Options) error {
	return runTable2(w, opt, table2Families()[0],
		"E6 — Table 2 row Line: uniform AG, ours O(k+n) vs Haeupler O(k+n log²n)")
}

// E7Table2Grid regenerates Table 2 row "Grid": ours O(k+√n) vs Haeupler
// O(k + √n log²n).
func E7Table2Grid(w io.Writer, opt Options) error {
	return runTable2(w, opt, table2Families()[1],
		"E7 — Table 2 row Grid: uniform AG, ours O(k+√n) vs Haeupler O(k+√n log²n)")
}

// E8Table2BinaryTree regenerates Table 2 row "Binary Tree": ours
// O(k + log n) vs Haeupler O(k + n log²n) — the Ω(n log n / k) improvement.
func E8Table2BinaryTree(w io.Writer, opt Options) error {
	return runTable2(w, opt, table2Families()[2],
		"E8 — Table 2 row Binary Tree: uniform AG, ours O(k+log n) vs Haeupler O(k+n log²n)")
}
