package experiments

import (
	"strings"
	"testing"

	"algossip/internal/core"
	"algossip/internal/graph"
)

// TestAllExperimentsQuick runs the entire experiment registry in Quick mode
// — the full-stack integration test for the harness: every protocol, every
// topology family, every table renderer.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var sb strings.Builder
			if err := e.Run(&sb, Options{Quick: true, Seed: 42}); err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.Artifact, err)
			}
			out := sb.String()
			if len(out) < 50 {
				t.Fatalf("%s produced suspiciously short output:\n%s", e.ID, out)
			}
			if strings.Contains(out, "VIOLATION") || strings.Contains(out, "WARNING") {
				t.Errorf("%s flagged a violation:\n%s", e.ID, out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E10")
	if err != nil || e.ID != "E10" {
		t.Fatalf("ByID(E10) = %+v, %v", e, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestSpecDefaults(t *testing.T) {
	s := GossipSpec{Graph: graph.Line(4), K: 2}.Normalize()
	if s.Model != core.Synchronous || s.Q != 2 || s.Action != core.Exchange ||
		s.Selector != SelUniform || s.MaxRounds == 0 {
		t.Fatalf("defaults wrong: %+v", s)
	}
}

func TestKindStrings(t *testing.T) {
	if TreeBRR.String() != "BRR" || TreeIS.String() != "IS" || TreeUniformB.String() != "uniform-B" {
		t.Fatal("TreeKind strings wrong")
	}
	if SelUniform.String() != "uniform" || SelRoundRobin.String() != "round-robin" {
		t.Fatal("SelectorKind strings wrong")
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("a", "bb")
	tbl.AddRow(1, 2.5)
	tbl.AddRow("xyz", "w")
	var sb strings.Builder
	if err := tbl.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"a", "bb", "2.50", "xyz"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

// TestSingleSourceSpec exercises the single-source seeding path.
func TestSingleSourceSpec(t *testing.T) {
	res, err := UniformAG(GossipSpec{Graph: graph.Complete(12), K: 6, SingleSource: true}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds")
	}
}
