package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"algossip/internal/core"
	"algossip/internal/graph"
	"algossip/internal/harness"
	"algossip/internal/livectl"
	"algossip/internal/stats"
)

// e17Params are the shared knobs of one live-vs-sim comparison.
type e17Params struct {
	procs    int
	n        int
	k        int
	loss     float64
	interval time.Duration
	simRuns  int
	liveRuns int
}

func e17ParamsFor(quick bool) e17Params {
	if quick {
		return e17Params{procs: 6, n: 12, k: 4, loss: 0.1, interval: 50 * time.Millisecond, simRuns: 80, liveRuns: 1}
	}
	// The tick interval must dwarf loopback delivery latency plus
	// scheduler jitter with 48 processes sharing a small CI machine:
	// a packet that misses its target's next tick inflates the measured
	// stopping tick and would read as protocol drift.
	return e17Params{procs: 48, n: 48, k: 8, loss: 0.1, interval: 100 * time.Millisecond, simRuns: 100, liveRuns: 3}
}

// e17Predict runs the simulator over the identical spec (same ring, k,
// field, loss rate, round-robin seeding, synchronous EXCHANGE) and
// summarizes the stopping-time distribution.
func e17Predict(p e17Params, seed uint64, parallel int) (stats.Summary, *graph.Graph, error) {
	g, err := graph.FromName("ring", p.n, core.NewRand(core.SplitSeed(seed, 999)))
	if err != nil {
		return stats.Summary{}, nil, err
	}
	spec := harness.Spec{
		Name:     fmt.Sprintf("E17-n%d", p.n),
		Graphs:   []*graph.Graph{g},
		Ks:       []int{p.k},
		Q:        256, // the live runtime's default field
		LossRate: p.loss,
		Trials:   p.simRuns,
		Seed:     seed,
		Lean:     true,
	}
	rs, err := harness.Runner{Parallel: parallel}.Run(&spec)
	if err != nil {
		return stats.Summary{}, nil, err
	}
	return stats.Summarize(rs.CellRounds(0)), g, nil
}

// e17Live deploys the multi-process cluster and returns its stopping
// tick. Daemon stderr is buffered and surfaced only on failure.
func e17Live(ctx context.Context, bin string, p e17Params, seed uint64) (int, error) {
	var errBuf bytes.Buffer
	c, err := livectl.Launch(ctx, livectl.Options{
		Bin:       bin,
		Procs:     p.procs,
		GraphName: "ring",
		GraphN:    p.n,
		GraphSeed: core.SplitSeed(seed, 999),
		K:         p.k,
		Q:         256,
		Interval:  p.interval,
		Seed:      seed,
		LossRate:  p.loss,
		Stderr:    &errBuf,
	})
	if err != nil {
		return 0, fmt.Errorf("launch: %w\n%s", err, errBuf.String())
	}
	defer c.Stop()
	fail := func(stage string, err error) (int, error) {
		return 0, fmt.Errorf("%s: %w\n%s", stage, err, errBuf.String())
	}
	if err := c.WaitHealthy(ctx); err != nil {
		return fail("health", err)
	}
	if err := c.SeedRoundRobin(ctx, nil); err != nil {
		return fail("seed", err)
	}
	if err := c.Start(ctx); err != nil {
		return fail("start", err)
	}
	tick, err := c.WaitConverged(ctx)
	if err != nil {
		return fail("converge", err)
	}
	if err := c.Drain(ctx); err != nil {
		return fail("drain", err)
	}
	return tick, nil
}

// E17LiveCluster is the network-runtime conformance experiment: a real
// multi-process gossipd deployment (one OS process per node slice, TCP
// over loopback, injected packet loss) must stop within 3σ of the
// simulator's prediction for the identical spec. The live runtime's
// staged-ingest tick loop is what makes the comparison meaningful — one
// tick approximates one synchronous round — so a drift here means the
// deployment layer changed the protocol, not just its clothes. Quick mode
// runs a 6-process/12-node ring; full mode a 48-process/48-node ring with
// the live measurement averaged over 3 deployments.
func E17LiveCluster(w io.Writer, opt Options) error {
	p := e17ParamsFor(opt.Quick)
	if opt.Trials > 0 {
		p.simRuns = opt.Trials
	}
	sum, g, err := e17Predict(p, opt.Seed, opt.parallel())
	if err != nil {
		return fmt.Errorf("E17 predict: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Second)
	defer cancel()
	dir, err := os.MkdirTemp("", "e17-*")
	if err != nil {
		return fmt.Errorf("E17: %w", err)
	}
	defer func() { _ = os.RemoveAll(dir) }()
	bin, err := livectl.BuildGossipd(ctx, dir)
	if err != nil {
		return fmt.Errorf("E17: %w", err)
	}

	liveSum := 0.0
	ticks := make([]int, 0, p.liveRuns)
	for l := 0; l < p.liveRuns; l++ {
		tick, err := e17Live(ctx, bin, p, core.SplitSeed(opt.Seed, uint64(500+l)))
		if err != nil {
			return fmt.Errorf("E17 live run %d: %w", l, err)
		}
		ticks = append(ticks, tick)
		liveSum += float64(tick)
	}
	live := liveSum / float64(p.liveRuns)

	sigma := sum.StdDev
	if sigma < 1 {
		sigma = 1 // degenerate distributions still get a one-round gate
	}
	dev := math.Abs(live-sum.Mean) / sigma
	verdict := "ok"
	if dev > 3 {
		verdict = "VIOLATION"
	}

	fmt.Fprintln(w, "E17 — network runtime conformance: multi-process gossipd cluster (TCP loopback, injected loss) vs simulator prediction")
	fmt.Fprintf(w, "    gate: |live stopping tick - sim mean| <= 3σ over %d sim trials; live ticks: %v\n", p.simRuns, ticks)
	tbl := NewTable("graph", "n", "procs", "k", "loss", "sim mean", "sim sd", "live ticks", "|dev|/sd", "gate")
	tbl.AddRow(g.Name(), p.n, p.procs, p.k, p.loss, sum.Mean, sum.StdDev, live, dev, verdict)
	return tbl.Write(w)
}
