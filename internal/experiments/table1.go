package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"

	"algossip/internal/core"
	"algossip/internal/gossip/ispread"
	"algossip/internal/graph"
	"algossip/internal/harness"
	"algossip/internal/sim"
	"algossip/internal/stats"
)

// Options controls experiment scale.
type Options struct {
	// Quick shrinks sizes and trial counts for CI-speed runs.
	Quick bool
	// Seed roots all trial randomness.
	Seed uint64
	// Trials overrides the per-point repetition count (0 = default).
	Trials int
	// Parallel bounds concurrent trials in the harness pool (0 = all
	// cores). Results are byte-identical for any value.
	Parallel int
}

func (o Options) parallel() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) trials() int {
	if o.Trials > 0 {
		return o.Trials
	}
	if o.Quick {
		return 2
	}
	return 4
}

func (o Options) pick(quick, full int) int {
	if o.Quick {
		return quick
	}
	return full
}

func log2(n int) float64 { return math.Log2(float64(n)) }

// theorem1Bound evaluates the Theorem 1 expression (k + log n + D)·Δ.
func theorem1Bound(g *graph.Graph, k int) float64 {
	return float64(k+g.Diameter()+int(log2(g.N()))+1) * float64(g.MaxDegree())
}

// E1UniformAGAnyGraph regenerates Table 1 row 1: uniform algebraic gossip
// on arbitrary graphs, measured stopping time against the O((k+log n+D)Δ)
// bound, for both time models.
func E1UniformAGAnyGraph(w io.Writer, opt Options) error {
	n := opt.pick(24, 48)
	rng := core.NewRand(core.SplitSeed(opt.Seed, 77))
	graphs := []*graph.Graph{
		graph.Line(n),
		graph.Ring(n),
		graph.Grid(isqrt(n), isqrt(n)),
		graph.BinaryTree(n - 1),
		graph.Complete(n),
		graph.Barbell(n),
		graph.ErdosRenyi(n, 4.0/float64(n), rng),
	}
	tbl := NewTable("graph", "model", "k", "rounds(mean)", "bound(k+logn+D)Δ", "ratio")
	for _, g := range graphs {
		k := g.N() / 2
		for _, model := range []core.TimeModel{core.Synchronous, core.Asynchronous} {
			mean, err := MeanRounds(opt, func(s uint64) (sim.Result, error) {
				return UniformAG(GossipSpec{Graph: g, Model: model, K: k}, s)
			})
			if err != nil {
				return fmt.Errorf("E1 %s/%s: %w", g.Name(), model, err)
			}
			bound := theorem1Bound(g, k)
			tbl.AddRow(g.Name(), model.String(), k, mean, bound, mean/bound)
		}
	}
	fmt.Fprintln(w, "E1 — Theorem 1 / Table 1 row 1: uniform algebraic gossip, any graph")
	fmt.Fprintln(w, "    expected: ratio bounded by a constant (measured / analytic bound)")
	return tbl.Write(w)
}

// E2ConstDegreeOptimal regenerates Table 1 row 2: on constant-maximum-
// degree graphs the stopping time is Θ(k + D) — the measured/(k+D) ratio
// stays flat as n scales and the fitted exponent of rounds vs (k+D) is ~1.
func E2ConstDegreeOptimal(w io.Writer, opt Options) error {
	sizes := []int{16, 32, 64}
	if !opt.Quick {
		sizes = []int{16, 32, 64, 128, 256}
	}
	families := []struct {
		name string
		make func(n int) *graph.Graph
	}{
		{"line", graph.Line},
		{"ring", graph.Ring},
		{"grid", func(n int) *graph.Graph { s := isqrt(n); return graph.Grid(s, s) }},
		{"binary-tree", graph.BinaryTree},
	}
	tbl := NewTable("family", "n", "k", "D", "rounds", "rounds/(k+D)", "fit exp")
	for _, fam := range families {
		var xs, ys []float64
		rows := make([][]any, 0, len(sizes))
		for _, n := range sizes {
			g := fam.make(n)
			k := g.N() / 2
			d := g.Diameter()
			mean, err := MeanRounds(opt, func(s uint64) (sim.Result, error) {
				return UniformAG(GossipSpec{Graph: g, K: k}, s)
			})
			if err != nil {
				return fmt.Errorf("E2 %s n=%d: %w", fam.name, n, err)
			}
			xs = append(xs, float64(k+d))
			ys = append(ys, mean)
			rows = append(rows, []any{fam.name, g.N(), k, d, mean, mean / float64(k+d)})
		}
		_, exp, _ := stats.PowerFit(xs, ys)
		for i, r := range rows {
			if i == len(rows)-1 {
				r = append(r, exp)
			} else {
				r = append(r, "")
			}
			tbl.AddRow(r...)
		}
	}
	fmt.Fprintln(w, "E2 — Theorem 3 / Table 1 row 2: Θ(k+D) on constant-degree graphs")
	fmt.Fprintln(w, "    expected: rounds/(k+D) flat in n; fitted exponent of rounds vs (k+D) ≈ 1")
	return tbl.Write(w)
}

// E3TAGGeneral regenerates Table 1 row 3: TAG's stopping time against the
// O(k + log n + d(S) + t(S)) expression, for all three spanning-tree
// protocols, on a bottlenecked and a flat topology.
func E3TAGGeneral(w io.Writer, opt Options) error {
	n := opt.pick(24, 64)
	graphs := []*graph.Graph{graph.Barbell(n), graph.Grid(isqrt(n), isqrt(n)), graph.Line(n)}
	kinds := []TreeKind{TreeBRR, TreeUniformB, TreeIS}
	tbl := NewTable("graph", "tree S", "k", "rounds", "t(S)", "d(S)", "k+logn+d+t", "ratio")
	for _, g := range graphs {
		k := g.N()
		for _, kind := range kinds {
			results, err := harness.ParallelMap(opt.trials(), opt.parallel(),
				func(i int) (TAGResult, error) {
					return TAG(GossipSpec{Graph: g, K: k}, kind, core.SplitSeed(opt.Seed, uint64(300+i)))
				})
			if err != nil {
				return fmt.Errorf("E3 %s/%s: %w", g.Name(), kind, err)
			}
			var sumRounds, sumBound float64
			var lastT, lastD int
			for _, res := range results {
				tS := res.TreeRounds
				if tS < 0 {
					tS = res.Rounds
				}
				dS := res.TreeDiameter
				sumRounds += float64(res.Rounds)
				sumBound += float64(k) + log2(g.N()) + float64(dS) + float64(tS)
				lastT, lastD = tS, dS
			}
			meanRounds := sumRounds / float64(opt.trials())
			meanBound := sumBound / float64(opt.trials())
			tbl.AddRow(g.Name(), kind.String(), k, meanRounds, lastT, lastD, meanBound, meanRounds/meanBound)
		}
	}
	fmt.Fprintln(w, "E3 — Theorem 4 / Table 1 row 3: TAG = O(k + log n + d(S) + t(S))")
	fmt.Fprintln(w, "    expected: ratio bounded by a small constant for every S and topology")
	return tbl.Write(w)
}

// E4TAGRoundRobin regenerates Table 1 row 4 and Theorem 5: B_RR broadcast
// completes within 3n synchronous rounds (probability 1), and TAG+B_RR
// with k = n finishes in Θ(n) rounds on any graph — fitted exponent ≈ 1
// even on the barbell.
func E4TAGRoundRobin(w io.Writer, opt Options) error {
	sizes := []int{16, 32, 64}
	if !opt.Quick {
		sizes = []int{16, 32, 64, 128}
	}
	families := []struct {
		name string
		make func(n int) *graph.Graph
	}{
		{"barbell", graph.Barbell},
		{"line", graph.Line},
		{"complete", graph.Complete},
	}
	tbl := NewTable("family", "n", "BRR rounds", "<=3n", "TAG rounds (k=n)", "TAG/n", "fit exp")
	for _, fam := range families {
		var xs, ys []float64
		rows := make([][]any, 0, len(sizes))
		for _, n := range sizes {
			g := fam.make(n)
			bres, _, err := Broadcast(g, core.Synchronous, SelRoundRobin, core.SplitSeed(opt.Seed, uint64(n)))
			if err != nil {
				return fmt.Errorf("E4 broadcast %s n=%d: %w", fam.name, n, err)
			}
			ok := "yes"
			if bres.Rounds > 3*g.N() {
				ok = "NO"
			}
			mean, err := MeanRounds(opt, func(s uint64) (sim.Result, error) {
				res, err := TAG(GossipSpec{Graph: g, K: g.N()}, TreeBRR, s)
				return res.Result, err
			})
			if err != nil {
				return fmt.Errorf("E4 TAG %s n=%d: %w", fam.name, n, err)
			}
			xs = append(xs, float64(g.N()))
			ys = append(ys, mean)
			rows = append(rows, []any{fam.name, g.N(), bres.Rounds, ok, mean, mean / float64(g.N())})
		}
		_, exp, _ := stats.PowerFit(xs, ys)
		for i, r := range rows {
			if i == len(rows)-1 {
				r = append(r, exp)
			} else {
				r = append(r, "")
			}
			tbl.AddRow(r...)
		}
	}
	fmt.Fprintln(w, "E4 — Theorem 5 / Table 1 row 4: TAG+B_RR = Θ(n) for k = Ω(n), any graph")
	fmt.Fprintln(w, "    expected: BRR <= 3n always; TAG/n flat; fitted exponent ≈ 1 (even on barbell)")
	return tbl.Write(w)
}

// E5TAGIS regenerates Table 1 row 5 / Theorems 6-8: on graphs with large
// weak conductance (barbell, clique chains), the IS protocol builds a
// spanning tree in polylog rounds and TAG+IS disseminates k messages in
// Θ(k) rounds once k dominates the polylog terms.
func E5TAGIS(w io.Writer, opt Options) error {
	n := opt.pick(32, 128)
	graphs := []*graph.Graph{
		graph.Barbell(n),
		graph.CliqueChain(4, n/4),
	}
	tbl := NewTable("graph", "t(IS) rounds", "polylog ref log²n", "k", "TAG+IS rounds", "rounds/k")
	for _, g := range graphs {
		ires, _, err := ISpread(g, core.Synchronous, ispread.TreeMode, core.SplitSeed(opt.Seed, 55))
		if err != nil {
			return fmt.Errorf("E5 IS %s: %w", g.Name(), err)
		}
		ref := log2(g.N()) * log2(g.N())
		for _, k := range []int{g.N() / 2, g.N(), 2 * g.N()} {
			mean, err := MeanRounds(opt, func(s uint64) (sim.Result, error) {
				res, err := TAG(GossipSpec{Graph: g, K: k}, TreeIS, s)
				return res.Result, err
			})
			if err != nil {
				return fmt.Errorf("E5 TAG+IS %s k=%d: %w", g.Name(), k, err)
			}
			tbl.AddRow(g.Name(), ires.Rounds, ref, k, mean, mean/float64(k))
		}
	}
	fmt.Fprintln(w, "E5 — Theorems 6-8 / Table 1 row 5: TAG+IS = Θ(k) on large weak conductance")
	fmt.Fprintln(w, "    expected: t(IS) ~ polylog(n) << n; rounds/k approaches a constant as k grows")
	if err := tbl.Write(w); err != nil {
		return err
	}
	// Theorem 8 (asynchronous model): TAG+IS = O(k + lmax) async rounds.
	async := NewTable("graph", "k", "async rounds", "rounds/k")
	for _, g := range graphs {
		k := 2 * g.N()
		mean, err := MeanRounds(opt, func(s uint64) (sim.Result, error) {
			res, err := TAG(GossipSpec{Graph: g, K: k, Model: core.Asynchronous}, TreeIS, s)
			return res.Result, err
		})
		if err != nil {
			return fmt.Errorf("E5 async %s: %w", g.Name(), err)
		}
		async.AddRow(g.Name(), k, mean, mean/float64(k))
	}
	fmt.Fprintln(w, "    Theorem 8 (asynchronous): O(k + lmax) — rounds/k stays a small constant:")
	return async.Write(w)
}

func isqrt(n int) int {
	s := int(math.Sqrt(float64(n)))
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}
