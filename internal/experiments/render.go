package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders a column-aligned text table, used for
// the regenerated paper tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; cells are formatted with fmt.Sprint.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		return sb.String()
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}
