package experiments

import (
	"fmt"
	"io"

	"algossip/internal/core"
	"algossip/internal/gossip/algebraic"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
)

// Experiment is one regenerable paper artifact.
type Experiment struct {
	// ID is the index key used in DESIGN.md and EXPERIMENTS.md (E1..E12,
	// A1..A4).
	ID string
	// Artifact names the paper table/figure/theorem it regenerates.
	Artifact string
	// Run executes the experiment, writing its table to w.
	Run func(w io.Writer, opt Options) error
}

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Artifact: "Theorem 1 / Table 1 row 1", Run: E1UniformAGAnyGraph},
		{ID: "E2", Artifact: "Theorem 3 / Table 1 row 2", Run: E2ConstDegreeOptimal},
		{ID: "E3", Artifact: "Theorem 4 / Table 1 row 3", Run: E3TAGGeneral},
		{ID: "E4", Artifact: "Theorem 5 / Table 1 row 4", Run: E4TAGRoundRobin},
		{ID: "E5", Artifact: "Theorems 6-8 / Table 1 row 5", Run: E5TAGIS},
		{ID: "E6", Artifact: "Table 2 row Line", Run: E6Table2Line},
		{ID: "E7", Artifact: "Table 2 row Grid", Run: E7Table2Grid},
		{ID: "E8", Artifact: "Table 2 row Binary Tree", Run: E8Table2BinaryTree},
		{ID: "E9", Artifact: "Figure 1 / Theorem 2", Run: E9QueueChain},
		{ID: "E10", Artifact: "Section 1.1 barbell speedup", Run: E10BarbellSpeedup},
		{ID: "E11", Artifact: "Theorem 3 lower bound", Run: E11LowerBoundFloor},
		{ID: "E12", Artifact: "Deb et al. complete-graph baseline", Run: E12CompleteGraph},
		{ID: "E13", Artifact: "traffic accounting (bounded message sizes)", Run: E13Traffic},
		{ID: "E14", Artifact: "dissemination curve (per-node completion CDF)", Run: E14DisseminationCurve},
		{ID: "E15", Artifact: "dynamic topologies: stopping time vs churn / edge failures / rewiring", Run: E15DynamicTopology},
		{ID: "E16", Artifact: "web-scale O(n) conformance: generation coding + sharded engine on an expander", Run: E16WebScale},
		{ID: "E17", Artifact: "network runtime conformance: live multi-process cluster vs simulator prediction", Run: E17LiveCluster},
		{ID: "E18", Artifact: "adversarial robustness: Byzantine replay/pollution/free-riding dilation gate", Run: E18Adversarial},
		{ID: "A1", Artifact: "ablation: field size", Run: A1FieldSize},
		{ID: "A2", Artifact: "ablation: gossip action", Run: A2Action},
		{ID: "A3", Artifact: "ablation: RLNC vs uncoded", Run: A3Uncoded},
		{ID: "A4", Artifact: "ablation: rank-only equivalence", Run: A4RankOnly},
		{ID: "A5", Artifact: "ablation: sync vs async time model", Run: A5SyncVsAsync},
		{ID: "A6", Artifact: "failure injection: packet loss", Run: A6LossRobustness},
		{ID: "A7", Artifact: "ablation: RLNC generation size", Run: A7Generations},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// uniformAGPayload runs payload-mode (q=256) uniform algebraic gossip with
// the exact same seed layout as UniformAG, so that A4 can compare round
// counts one-to-one against the rank-only fast path.
func uniformAGPayload(g *graph.Graph, k int, seed uint64) (sim.Result, error) {
	cfg := rlnc.Config{Field: mustGF256(), K: k, PayloadLen: 4}
	p, err := algebraic.New(g, core.Synchronous, sim.NewUniform(g),
		algebraic.Config{RLNC: cfg}, core.NewRand(core.SplitSeed(seed, 1)))
	if err != nil {
		return sim.Result{}, err
	}
	// Payload randomness comes from an independent stream so the protocol
	// RNG consumption matches the rank-only run exactly.
	msgs := algebraic.RandomMessages(cfg, core.NewRand(core.SplitSeed(seed, 50)))
	if err := p.SeedAll(algebraic.RoundRobinAssign(k, g.N()), msgs); err != nil {
		return sim.Result{}, err
	}
	return sim.New(g, core.Synchronous, p, core.SplitSeed(seed, 2),
		sim.WithMaxRounds(1<<21)).Run()
}
