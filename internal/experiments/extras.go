package experiments

import (
	"fmt"
	"io"

	"algossip/internal/core"
	"algossip/internal/graph"
	"algossip/internal/harness"
	"algossip/internal/sim"
	"algossip/internal/stats"
)

// E10BarbellSpeedup regenerates the Section 1.1 claim: on the barbell
// graph, uniform algebraic gossip needs Ω(n²) rounds for all-to-all
// (k = n) while TAG+B_RR needs Θ(n) — a speedup ratio of order n. The
// measured exponents of both curves are fitted.
func E10BarbellSpeedup(w io.Writer, opt Options) error {
	sizes := []int{16, 32, 48}
	if !opt.Quick {
		sizes = []int{16, 32, 64, 96, 128}
	}
	tbl := NewTable("n", "uniform AG", "TAG+BRR", "speedup", "n (ref)")
	var xs, yAG, yTAG []float64
	for _, n := range sizes {
		g := graph.Barbell(n)
		agMean, err := MeanRounds(opt, func(s uint64) (sim.Result, error) {
			return UniformAG(GossipSpec{Graph: g, K: n}, s)
		})
		if err != nil {
			return fmt.Errorf("E10 AG n=%d: %w", n, err)
		}
		tagMean, err := MeanRounds(opt, func(s uint64) (sim.Result, error) {
			res, err := TAG(GossipSpec{Graph: g, K: n}, TreeBRR, s)
			return res.Result, err
		})
		if err != nil {
			return fmt.Errorf("E10 TAG n=%d: %w", n, err)
		}
		tbl.AddRow(n, agMean, tagMean, agMean/tagMean, n)
		xs = append(xs, float64(n))
		yAG = append(yAG, agMean)
		yTAG = append(yTAG, tagMean)
	}
	_, expAG, _ := stats.PowerFit(xs, yAG)
	_, expTAG, _ := stats.PowerFit(xs, yTAG)
	fmt.Fprintln(w, "E10 — Section 1.1: barbell showdown, uniform AG Ω(n²) vs TAG Θ(n)")
	fmt.Fprintf(w, "    fitted exponents: uniform AG n^%.2f (expect ~2), TAG n^%.2f (expect ~1)\n",
		expAG, expTAG)
	return tbl.Write(w)
}

// E11LowerBoundFloor validates the Ω(k) information-theoretic floor from
// the proof of Theorem 3: with EXCHANGE, at most 2n messages move per
// synchronous round, so k-dissemination needs at least k(n-1)/2n rounds —
// on every topology.
func E11LowerBoundFloor(w io.Writer, opt Options) error {
	n := opt.pick(24, 48)
	graphs := []*graph.Graph{
		graph.Line(n), graph.Complete(n), graph.Star(n), graph.Barbell(n),
	}
	tbl := NewTable("graph", "k", "rounds", "floor k(n-1)/2n", "rounds/floor")
	for _, g := range graphs {
		for _, k := range []int{g.N() / 2, g.N()} {
			mean, err := MeanRounds(opt, func(s uint64) (sim.Result, error) {
				return UniformAG(GossipSpec{Graph: g, K: k}, s)
			})
			if err != nil {
				return fmt.Errorf("E11 %s k=%d: %w", g.Name(), k, err)
			}
			floor := float64(k*(g.N()-1)) / float64(2*g.N())
			marker := ""
			if mean < floor {
				marker = " VIOLATION"
			}
			tbl.AddRow(g.Name(), k, mean, floor, fmt.Sprintf("%.2f%s", mean/floor, marker))
		}
	}
	fmt.Fprintln(w, "E11 — Theorem 3 proof: Ω(k) lower bound floor holds on every topology")
	fmt.Fprintln(w, "    expected: rounds/floor >= 1 everywhere")
	return tbl.Write(w)
}

// E12CompleteGraph reproduces the Deb et al. setting the paper builds on:
// uniform algebraic gossip on the complete graph with k = n messages
// finishes in Θ(n) rounds (rounds/k flat), for EXCHANGE as well as the
// original PUSH and PULL variants.
func E12CompleteGraph(w io.Writer, opt Options) error {
	sizes := []int{16, 32, 64}
	if !opt.Quick {
		sizes = []int{16, 32, 64, 128}
	}
	tbl := NewTable("n=k", "action", "rounds", "rounds/k")
	for _, n := range sizes {
		g := graph.Complete(n)
		for _, action := range []core.Action{core.Exchange, core.Push, core.Pull} {
			mean, err := MeanRounds(opt, func(s uint64) (sim.Result, error) {
				return UniformAG(GossipSpec{Graph: g, K: n, Action: action}, s)
			})
			if err != nil {
				return fmt.Errorf("E12 n=%d %v: %w", n, action, err)
			}
			tbl.AddRow(n, action.String(), mean, mean/float64(n))
		}
	}
	fmt.Fprintln(w, "E12 — Deb et al. baseline: complete graph, k=n, Θ(k) rounds")
	fmt.Fprintln(w, "    expected: rounds/k flat in n for all actions")
	return tbl.Write(w)
}

// A1FieldSize is the field-size ablation: larger q raises the helpfulness
// probability 1-1/q, shrinking the coding overhead; beyond q=16 returns
// diminish. The paper's bounds assume the worst case q=2.
func A1FieldSize(w io.Writer, opt Options) error {
	n := opt.pick(25, 64)
	s := isqrt(n)
	g := graph.Grid(s, s)
	k := g.N() / 2
	tbl := NewTable("q", "rounds", "vs q=2")
	var base float64
	for _, q := range []int{2, 4, 16, 256} {
		mean, err := MeanRounds(opt, func(sd uint64) (sim.Result, error) {
			return UniformAG(GossipSpec{Graph: g, K: k, Q: q}, sd)
		})
		if err != nil {
			return fmt.Errorf("A1 q=%d: %w", q, err)
		}
		if q == 2 {
			base = mean
		}
		tbl.AddRow(q, mean, mean/base)
	}
	fmt.Fprintf(w, "A1 — ablation: field size on %s, k=%d\n", g.Name(), k)
	fmt.Fprintln(w, "    expected: mild speedup from q=2 to q=16, flat after")
	return tbl.Write(w)
}

// A2Action is the action ablation: EXCHANGE vs PUSH vs PULL under uniform
// gossip on contrasting topologies.
func A2Action(w io.Writer, opt Options) error {
	n := opt.pick(24, 48)
	graphs := []*graph.Graph{graph.Line(n), graph.Complete(n), graph.Star(n)}
	tbl := NewTable("graph", "EXCHANGE", "PUSH", "PULL")
	for _, g := range graphs {
		k := g.N() / 2
		row := []any{g.Name()}
		for _, action := range []core.Action{core.Exchange, core.Push, core.Pull} {
			mean, err := MeanRounds(opt, func(s uint64) (sim.Result, error) {
				return UniformAG(GossipSpec{Graph: g, K: k, Action: action}, s)
			})
			if err != nil {
				return fmt.Errorf("A2 %s/%v: %w", g.Name(), action, err)
			}
			row = append(row, mean)
		}
		tbl.AddRow(row...)
	}
	fmt.Fprintln(w, "A2 — ablation: gossip action (uniform selector, k=n/2)")
	fmt.Fprintln(w, "    expected: EXCHANGE fastest; PUSH suffers on star hubs, PULL mirrors")
	return tbl.Write(w)
}

// A3Uncoded is the coding ablation: RLNC vs store-and-forward gossip on the
// complete graph with k = n (the coupon-collector gap that motivates
// algebraic gossip).
func A3Uncoded(w io.Writer, opt Options) error {
	sizes := []int{16, 32, 64}
	if !opt.Quick {
		sizes = []int{16, 32, 64, 128}
	}
	tbl := NewTable("n=k", "RLNC", "uncoded", "uncoded/RLNC")
	for _, n := range sizes {
		g := graph.Complete(n)
		coded, err := MeanRounds(opt, func(s uint64) (sim.Result, error) {
			return UniformAG(GossipSpec{Graph: g, K: n}, s)
		})
		if err != nil {
			return fmt.Errorf("A3 coded n=%d: %w", n, err)
		}
		plain, err := MeanRounds(opt, func(s uint64) (sim.Result, error) {
			return Uncoded(GossipSpec{Graph: g, K: n}, s)
		})
		if err != nil {
			return fmt.Errorf("A3 uncoded n=%d: %w", n, err)
		}
		tbl.AddRow(n, coded, plain, plain/coded)
	}
	fmt.Fprintln(w, "A3 — ablation: RLNC vs uncoded store-and-forward (complete graph, k=n)")
	fmt.Fprintln(w, "    expected: ratio grows with n (coupon-collector log factor)")
	return tbl.Write(w)
}

// A4RankOnly verifies the rank-only fast path is measurement-equivalent:
// with the same seeds and q=256, payload-mode and rank-only runs take
// exactly the same number of rounds (payloads never influence rank
// evolution).
func A4RankOnly(w io.Writer, opt Options) error {
	n := opt.pick(16, 36)
	s := isqrt(n)
	g := graph.Grid(s, s)
	k := g.N() / 2
	tbl := NewTable("seed", "rank-only rounds", "payload rounds", "equal")
	type pair struct{ ro, pl int }
	pairs, err := harness.ParallelMap(opt.trials(), opt.parallel(), func(i int) (pair, error) {
		seed := core.SplitSeed(opt.Seed, uint64(900+i))
		ro, err := UniformAG(GossipSpec{Graph: g, K: k, Q: 256}, seed)
		if err != nil {
			return pair{}, fmt.Errorf("A4 rank-only: %w", err)
		}
		pl, err := uniformAGPayload(g, k, seed)
		if err != nil {
			return pair{}, fmt.Errorf("A4 payload: %w", err)
		}
		return pair{ro.Rounds, pl.Rounds}, nil
	})
	if err != nil {
		return err
	}
	allEqual := true
	for i, p := range pairs {
		eq := "yes"
		if p.ro != p.pl {
			eq = "NO"
			allEqual = false
		}
		tbl.AddRow(i, p.ro, p.pl, eq)
	}
	fmt.Fprintln(w, "A4 — ablation: rank-only fast path vs full payload decode (q=256, same seeds)")
	if allEqual {
		fmt.Fprintln(w, "    result: identical round counts — payloads never affect stopping time")
	} else {
		fmt.Fprintln(w, "    WARNING: round counts diverged; fast path is not faithful")
	}
	return tbl.Write(w)
}
