package experiments

import (
	"runtime"
	"testing"

	"algossip/internal/core"
	"algossip/internal/graph"
	"algossip/internal/harness"
	"algossip/internal/stats"
)

// TestE16WebScaleGate is the n >= 10^5 conformance gate from ROADMAP item
// 1: generation-coded uniform AG on a random 4-regular expander with
// 10^5 nodes must stop within the Theorem 1 bound Δ·(k+D+log n) at three
// standard deviations. The quick-mode E16 table (exercised by
// TestAllExperimentsQuick) covers the same gate at small n; this test is
// the one that actually runs at web scale, so it skips in -short and
// under the race detector (~20 s/trial clean, minutes raced).
func TestE16WebScaleGate(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n gate skipped in -short")
	}
	if core.RaceEnabled {
		t.Skip("large-n gate skipped under the race detector")
	}
	const (
		n       = 100000
		k       = 32
		genSize = 8
		seed    = 42
	)
	g, err := graph.FromName("randreg", n, core.NewRand(core.SplitSeed(seed, 999)))
	if err != nil {
		t.Fatal(err)
	}
	spec := harness.Spec{
		Name:         "E16-gate",
		Graphs:       []*graph.Graph{g},
		Ks:           []int{k},
		SingleSource: true,
		GenSize:      genSize,
		// One trial at a time owns the machine; cores split the trial.
		Shards:    runtime.GOMAXPROCS(0),
		Trials:    3,
		Seed:      seed,
		MaxRounds: 1 << 18,
		Lean:      true,
	}
	rs, err := harness.Runner{Parallel: 1}.Run(&spec)
	if err != nil {
		t.Fatal(err)
	}
	s := stats.Summarize(rs.CellRounds(0))
	bound := e16Bound(g, k)
	t.Logf("n=%d k=%d g=%d: rounds %v, gate %.1f vs bound %.1f (ratio %.2f)",
		n, k, genSize, s, s.Mean+3*s.StdDev, bound, s.Mean/bound)
	if gated := s.Mean + 3*s.StdDev; gated > bound {
		t.Errorf("O(n) conformance violated: mean+3σ = %.1f exceeds Δ·(k+D+log n) = %.1f", gated, bound)
	}
}
