package gossip_test

// Conformance battery: every protocol in the repository passes the shared
// sim.Protocol contract checks (completion, determinism, monotone Done,
// arbitrary wakeup tolerance, synchronous staging discipline).

import (
	"testing"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/gossip/algebraic"
	"algossip/internal/gossip/broadcast"
	"algossip/internal/gossip/ispread"
	"algossip/internal/gossip/tag"
	"algossip/internal/gossip/uncoded"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
	"algossip/internal/sim/simtest"
)

func rankOnly(k int) rlnc.Config {
	return rlnc.Config{Field: gf.MustNew(2), K: k, RankOnly: true}
}

func TestConformanceUniformAG(t *testing.T) {
	simtest.Run(t, "uniform-ag", func(g *graph.Graph, model core.TimeModel, seed uint64) sim.Protocol {
		k := g.N() / 2
		p, err := algebraic.New(g, model, sim.NewUniform(g),
			algebraic.Config{RLNC: rankOnly(k)}, core.NewRand(core.SplitSeed(seed, 1)))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.SeedAll(algebraic.RoundRobinAssign(k, g.N()), nil); err != nil {
			t.Fatal(err)
		}
		return p
	})
}

func TestConformanceRoundRobinAG(t *testing.T) {
	simtest.Run(t, "rr-ag", func(g *graph.Graph, model core.TimeModel, seed uint64) sim.Protocol {
		k := g.N() / 2
		p, err := algebraic.New(g, model, sim.NewRoundRobin(g),
			algebraic.Config{RLNC: rankOnly(k)}, core.NewRand(core.SplitSeed(seed, 1)))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.SeedAll(algebraic.RoundRobinAssign(k, g.N()), nil); err != nil {
			t.Fatal(err)
		}
		return p
	})
}

func TestConformanceBroadcastUniform(t *testing.T) {
	simtest.Run(t, "broadcast-uniform", func(g *graph.Graph, model core.TimeModel, seed uint64) sim.Protocol {
		return broadcast.New(g, model, sim.NewUniform(g),
			broadcast.Config{Origin: 0}, core.NewRand(core.SplitSeed(seed, 2)))
	})
}

func TestConformanceBroadcastRR(t *testing.T) {
	simtest.Run(t, "broadcast-rr", func(g *graph.Graph, model core.TimeModel, seed uint64) sim.Protocol {
		return broadcast.New(g, model, sim.NewRoundRobin(g),
			broadcast.Config{Origin: 0}, core.NewRand(core.SplitSeed(seed, 2)))
	})
}

func TestConformanceISpread(t *testing.T) {
	simtest.Run(t, "ispread", func(g *graph.Graph, model core.TimeModel, seed uint64) sim.Protocol {
		return ispread.New(g, model, ispread.Config{Root: 0},
			core.NewRand(core.SplitSeed(seed, 3)))
	})
}

func TestConformanceISpreadFull(t *testing.T) {
	simtest.Run(t, "ispread-full", func(g *graph.Graph, model core.TimeModel, seed uint64) sim.Protocol {
		return ispread.New(g, model, ispread.Config{Root: 0, Mode: ispread.FullSpreadMode},
			core.NewRand(core.SplitSeed(seed, 3)))
	})
}

func TestConformanceTAGBRR(t *testing.T) {
	simtest.Run(t, "tag-brr", func(g *graph.Graph, model core.TimeModel, seed uint64) sim.Protocol {
		k := g.N() / 2
		stp := broadcast.New(g, model, sim.NewRoundRobin(g),
			broadcast.Config{Origin: 0}, core.NewRand(core.SplitSeed(seed, 4)))
		p, err := tag.New(g, model, stp, rankOnly(k), core.NewRand(core.SplitSeed(seed, 5)))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.SeedAll(algebraic.RoundRobinAssign(k, g.N()), nil); err != nil {
			t.Fatal(err)
		}
		return p
	})
}

func TestConformanceTAGIS(t *testing.T) {
	simtest.Run(t, "tag-is", func(g *graph.Graph, model core.TimeModel, seed uint64) sim.Protocol {
		k := g.N() / 2
		stp := ispread.New(g, model, ispread.Config{Root: 0},
			core.NewRand(core.SplitSeed(seed, 4)))
		p, err := tag.New(g, model, stp, rankOnly(k), core.NewRand(core.SplitSeed(seed, 5)))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.SeedAll(algebraic.RoundRobinAssign(k, g.N()), nil); err != nil {
			t.Fatal(err)
		}
		return p
	})
}

func TestConformanceUncoded(t *testing.T) {
	simtest.Run(t, "uncoded", func(g *graph.Graph, model core.TimeModel, seed uint64) sim.Protocol {
		k := g.N() / 2
		p := uncoded.New(g, model, sim.NewUniform(g),
			uncoded.Config{K: k}, core.NewRand(core.SplitSeed(seed, 1)))
		p.SeedAll(algebraic.RoundRobinAssign(k, g.N()))
		return p
	})
}

// TestConservationLaws checks the accounting identity that the facade
// example relies on: at completion of algebraic gossip, total helpful
// receptions equal k·n minus the total initially seeded rank.
func TestConservationLaws(t *testing.T) {
	graphs := []*graph.Graph{graph.Line(14), graph.Complete(12), graph.Barbell(14)}
	for _, g := range graphs {
		for _, model := range []core.TimeModel{core.Synchronous, core.Asynchronous} {
			k := g.N() / 2
			p, err := algebraic.New(g, model, sim.NewUniform(g),
				algebraic.Config{RLNC: rankOnly(k)}, core.NewRand(7))
			if err != nil {
				t.Fatal(err)
			}
			if err := p.SeedAll(algebraic.RoundRobinAssign(k, g.N()), nil); err != nil {
				t.Fatal(err)
			}
			if _, err := sim.New(g, model, p, 8, sim.WithMaxRounds(1<<17)).Run(); err != nil {
				t.Fatal(err)
			}
			tr := p.Traffic()
			want := k*g.N() - k // each of k seeds contributes one initial rank
			if tr.Helpful != want {
				t.Errorf("%s/%s: helpful = %d, want exactly %d", g.Name(), model, tr.Helpful, want)
			}
			if tr.Sent < tr.Received() {
				t.Errorf("%s/%s: received %d exceeds sent %d", g.Name(), model, tr.Received(), tr.Sent)
			}
		}
	}
}

// TestBroadcastConservation: a completed broadcast performs exactly n-1
// helpful informs.
func TestBroadcastConservation(t *testing.T) {
	g := graph.Grid(4, 4)
	p := broadcast.New(g, core.Synchronous, sim.NewUniform(g),
		broadcast.Config{Origin: 0}, core.NewRand(3))
	if _, err := sim.New(g, core.Synchronous, p, 4).Run(); err != nil {
		t.Fatal(err)
	}
	if got := p.Traffic().Helpful; got != g.N()-1 {
		t.Fatalf("helpful informs = %d, want %d", got, g.N()-1)
	}
}

// TestPoissonClockAGMatchesSlotted runs uniform algebraic gossip under the
// continuous Poisson-clock scheduler (paper footnote 2) and under the
// slotted asynchronous scheduler, and checks the stopping times agree in
// round units up to Monte Carlo noise.
func TestPoissonClockAGMatchesSlotted(t *testing.T) {
	g := graph.Grid(4, 4)
	k := 8
	const trials = 8
	var slotted, poisson float64
	for seed := uint64(0); seed < trials; seed++ {
		mk := func(stream uint64) *algebraic.Protocol {
			p, err := algebraic.New(g, core.Asynchronous, sim.NewUniform(g),
				algebraic.Config{RLNC: rankOnly(k)}, core.NewRand(core.SplitSeed(seed, stream)))
			if err != nil {
				t.Fatal(err)
			}
			if err := p.SeedAll(algebraic.RoundRobinAssign(k, g.N()), nil); err != nil {
				t.Fatal(err)
			}
			return p
		}
		res, err := sim.New(g, core.Asynchronous, mk(1), core.SplitSeed(seed, 2)).Run()
		if err != nil {
			t.Fatal(err)
		}
		slotted += float64(res.Rounds)
		pres, err := sim.RunPoisson(g, mk(3), core.SplitSeed(seed, 4), 0)
		if err != nil {
			t.Fatal(err)
		}
		poisson += pres.Time
	}
	slotted /= trials
	poisson /= trials
	ratio := poisson / slotted
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("poisson time %.1f vs slotted rounds %.1f (ratio %.2f), want ~1",
			poisson, slotted, ratio)
	}
}
