package tag

import (
	"testing"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/gossip/algebraic"
	"algossip/internal/gossip/broadcast"
	"algossip/internal/gossip/ispread"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
)

func rankOnly(k int) rlnc.Config {
	return rlnc.Config{Field: gf.MustNew(2), K: k, RankOnly: true}
}

func newBRR(g *graph.Graph, model core.TimeModel, seed uint64) SpanningTree {
	return broadcast.New(g, model, sim.NewRoundRobin(g), broadcast.Config{Origin: 0},
		core.NewRand(core.SplitSeed(seed, 10)))
}

func newIS(g *graph.Graph, model core.TimeModel, seed uint64) SpanningTree {
	return ispread.New(g, model, ispread.Config{Root: 0}, core.NewRand(core.SplitSeed(seed, 11)))
}

func runTAG(t *testing.T, g *graph.Graph, model core.TimeModel, stp SpanningTree, k int, seed uint64) (*Protocol, sim.Result) {
	t.Helper()
	p, err := New(g, model, stp, rankOnly(k), core.NewRand(core.SplitSeed(seed, 12)))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SeedAll(algebraic.RoundRobinAssign(k, g.N()), nil); err != nil {
		t.Fatal(err)
	}
	res, err := sim.New(g, model, p, core.SplitSeed(seed, 13), sim.WithMaxRounds(1<<18)).Run()
	if err != nil {
		t.Fatalf("TAG did not complete: %v", err)
	}
	return p, res
}

// TestTAGCompletesEverywhere exercises TAG with both spanning-tree
// protocols on bottlenecked and regular topologies, in both time models.
func TestTAGCompletesEverywhere(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Line(20),
		graph.Grid(5, 4),
		graph.Complete(16),
		graph.Barbell(20),
		graph.CliqueChain(3, 6),
		graph.BinaryTree(31),
	}
	for _, g := range graphs {
		for _, model := range []core.TimeModel{core.Synchronous, core.Asynchronous} {
			for _, mk := range []struct {
				name string
				make func(*graph.Graph, core.TimeModel, uint64) SpanningTree
			}{
				{"BRR", newBRR},
				{"IS", newIS},
			} {
				p, res := runTAG(t, g, model, mk.make(g, model, 7), g.N()/2, 7)
				if res.Rounds <= 0 {
					t.Errorf("%s/%s/%s: nonpositive rounds", g.Name(), model, mk.name)
				}
				for v := 0; v < g.N(); v++ {
					if !p.Node(core.NodeID(v)).CanDecode() {
						t.Fatalf("%s/%s/%s: node %d incomplete", g.Name(), model, mk.name, v)
					}
				}
			}
		}
	}
}

// TestTAGTheorem4Bound asserts the O(k + log n + d(S) + t(S)) bound with a
// generous constant, using the measured t(S) and d(S) of the run itself
// (synchronous model, where TreeRound is tracked).
func TestTAGTheorem4Bound(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Barbell(40), graph.Line(40), graph.Grid(6, 6)} {
		k := g.N()
		p, res := runTAG(t, g, core.Synchronous, newBRR(g, core.Synchronous, 3), k, 3)
		tree, ok := p.TreeProtocol().Tree()
		if !ok {
			t.Fatalf("%s: no tree after completion", g.Name())
		}
		tS := p.TreeRound()
		if tS < 0 {
			tS = res.Rounds // tree finished in the final round
		}
		dS := tree.Diameter()
		logn := 0
		for v := 1; v < g.N(); v *= 2 {
			logn++
		}
		bound := 20 * (k + logn + dS + tS)
		if res.Rounds > bound {
			t.Errorf("%s: TAG took %d rounds, Theorem 4 bound (C=20) gives %d (t(S)=%d, d(S)=%d)",
				g.Name(), res.Rounds, bound, tS, dS)
		}
	}
}

// TestTAGBeatsUniformAGOnBarbell reproduces the paper's headline
// comparison: for k = n on the barbell graph, uniform AG needs Ω(n²)
// rounds while TAG+BRR needs Θ(n).
func TestTAGBeatsUniformAGOnBarbell(t *testing.T) {
	g := graph.Barbell(96) // the Θ(n²) vs Θ(n) gap needs n past the constants
	k := g.N()

	_, tagRes := runTAG(t, g, core.Synchronous, newBRR(g, core.Synchronous, 5), k, 5)

	agp, err := algebraic.New(g, core.Synchronous, sim.NewUniform(g),
		algebraic.Config{RLNC: rankOnly(k)}, core.NewRand(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := agp.SeedAll(algebraic.RoundRobinAssign(k, g.N()), nil); err != nil {
		t.Fatal(err)
	}
	agRes, err := sim.New(g, core.Synchronous, agp, 7, sim.WithMaxRounds(1<<18)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if tagRes.Rounds*2 > agRes.Rounds {
		t.Errorf("TAG (%d rounds) not clearly faster than uniform AG (%d rounds) on %s",
			tagRes.Rounds, agRes.Rounds, g.Name())
	}
}

// TestTAGDecodeCorrectness runs payload-mode TAG and verifies decoding.
func TestTAGDecodeCorrectness(t *testing.T) {
	g := graph.Barbell(16)
	rcfg := rlnc.Config{Field: gf.MustNew(256), K: 8, PayloadLen: 8}
	rng := core.NewRand(21)
	msgs := algebraic.RandomMessages(rcfg, rng)
	p, err := New(g, core.Synchronous, newBRR(g, core.Synchronous, 21), rcfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SeedAll(algebraic.RoundRobinAssign(8, 16), msgs); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(g, core.Synchronous, p, 22).Run(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		got, err := p.Node(core.NodeID(v)).Decode()
		if err != nil {
			t.Fatalf("node %d: %v", v, err)
		}
		for i := range msgs {
			for j := range msgs[i].Payload {
				if got[i].Payload[j] != msgs[i].Payload[j] {
					t.Fatalf("node %d decoded message %d wrong", v, i)
				}
			}
		}
	}
}

// TestPhaseInterleaving checks the wakeup-parity contract: the spanning
// tree protocol sees exactly the odd wakeups.
func TestPhaseInterleaving(t *testing.T) {
	g := graph.Line(6)
	probe := &stpProbe{inner: newBRR(g, core.Synchronous, 9)}
	p, err := New(g, core.Synchronous, probe, rankOnly(3), core.NewRand(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SeedAll(algebraic.RoundRobinAssign(3, 6), nil); err != nil {
		t.Fatal(err)
	}
	// Wake node 2 four times: STP must see wakeups 1 and 3 only.
	for i := 0; i < 4; i++ {
		p.OnWake(2)
	}
	if probe.wakes[2] != 2 {
		t.Errorf("STP saw %d wakeups of node 2, want 2", probe.wakes[2])
	}
}

// stpProbe wraps a SpanningTree and counts OnWake calls per node.
type stpProbe struct {
	inner SpanningTree
	wakes [64]int
}

func (s *stpProbe) Name() string                     { return "probe:" + s.inner.Name() }
func (s *stpProbe) OnWake(v core.NodeID)             { s.wakes[v]++; s.inner.OnWake(v) }
func (s *stpProbe) BeginRound(r int)                 { s.inner.BeginRound(r) }
func (s *stpProbe) EndRound(r int)                   { s.inner.EndRound(r) }
func (s *stpProbe) Done() bool                       { return s.inner.Done() }
func (s *stpProbe) Parent(v core.NodeID) core.NodeID { return s.inner.Parent(v) }
func (s *stpProbe) Tree() (*graph.Tree, bool)        { return s.inner.Tree() }
