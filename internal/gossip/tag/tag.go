// Package tag implements TAG (Tree-based Algebraic Gossip), the paper's
// headline protocol (Section 4). TAG interleaves two phases by wakeup
// parity:
//
//   - Phase 1 (odd wakeups): run an arbitrary spanning-tree gossip protocol
//     S. Once a node becomes part of the spanning tree it obtains a parent.
//   - Phase 2 (even wakeups): once a node has a parent, perform EXCHANGE
//     algebraic gossip with that fixed partner.
//
// Theorem 4 bounds the stopping time by O(k + log n + d(S) + t(S)) in both
// time models; with the round-robin broadcast B_RR as S this is Θ(n) for
// k = Ω(n) on any graph (Theorem 5), and with the IS protocol as S it is
// Θ(k) on graphs with large weak conductance (Theorems 7–8).
package tag

import (
	"fmt"
	"math/rand/v2"

	"algossip/internal/core"
	"algossip/internal/gossip"
	"algossip/internal/gossip/algebraic"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
)

// SpanningTree is the contract TAG requires from its Phase 1 protocol S:
// a sim.Protocol that assigns each node a parent. Both
// broadcast.Protocol and ispread.Protocol satisfy it.
type SpanningTree interface {
	sim.Protocol
	// Parent returns v's parent, or core.NilNode while v has not joined
	// the tree (and for the root).
	Parent(v core.NodeID) core.NodeID
	// Tree returns the completed spanning tree, with ok=false until the
	// protocol is done.
	Tree() (*graph.Tree, bool)
}

// Protocol is the TAG state machine implementing sim.Protocol.
type Protocol struct {
	g     *graph.Graph
	model core.TimeModel
	stp   SpanningTree
	ag    *algebraic.Protocol
	fixed *sim.Fixed

	wakeups   []int // per-node wakeup counter; first wakeup is #1 (odd)
	treeDone  bool
	treeRound int // round at which Phase 1 completed (-1 while running)
}

var _ sim.Protocol = (*Protocol)(nil)

// New constructs TAG over g with spanning-tree protocol stp and RLNC
// configuration rcfg. rng drives the algebraic phase's coding randomness;
// the spanning-tree protocol owns its own randomness.
func New(g *graph.Graph, model core.TimeModel, stp SpanningTree, rcfg rlnc.Config, rng *rand.Rand) (*Protocol, error) {
	fixed := sim.NewFixed(g.N())
	ag, err := algebraic.New(g, model, fixed, algebraic.Config{
		RLNC:   rcfg,
		Action: core.Exchange,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("tag: %w", err)
	}
	return &Protocol{
		g:         g,
		model:     model,
		stp:       stp,
		ag:        ag,
		fixed:     fixed,
		wakeups:   make([]int, g.N()),
		treeRound: -1,
	}, nil
}

// SetObserver installs a progress observer on the algebraic phase
// (per-node completion tracking; must be called before running).
func (p *Protocol) SetObserver(obs sim.Observer) { p.ag.SetObserver(obs) }

// Seed places message msg at node v (delegates to the algebraic phase).
func (p *Protocol) Seed(v core.NodeID, msg rlnc.Message) { p.ag.Seed(v, msg) }

// SeedAll distributes all k messages; see algebraic.Protocol.SeedAll.
func (p *Protocol) SeedAll(assign []core.NodeID, msgs []rlnc.Message) error {
	return p.ag.SeedAll(assign, msgs)
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string {
	return fmt.Sprintf("TAG(%s)", p.stp.Name())
}

// OnWake implements sim.Protocol: odd wakeups run Phase 1 (the spanning
// tree protocol), even wakeups run Phase 2 (algebraic gossip with the
// parent, once one exists).
func (p *Protocol) OnWake(v core.NodeID) {
	p.wakeups[v]++
	if p.wakeups[v]%2 == 1 {
		// Phase 1. Keep the algebraic phase's async clock ticking so its
		// per-node completion rounds stay in wall-clock units.
		p.stp.OnWake(v)
		p.ag.Tick()
		return
	}
	parent := p.stp.Parent(v)
	if parent == core.NilNode {
		// Idle until Phase 1 delivers a parent.
		p.ag.Tick()
		return
	}
	p.fixed.Set(v, parent)
	p.ag.OnWake(v)
}

// BeginRound implements sim.Protocol.
func (p *Protocol) BeginRound(round int) {
	p.stp.BeginRound(round)
	p.ag.BeginRound(round)
}

// EndRound implements sim.Protocol.
func (p *Protocol) EndRound(round int) {
	p.stp.EndRound(round)
	p.ag.EndRound(round)
	if !p.treeDone && p.stp.Done() {
		p.treeDone = true
		p.treeRound = round
	}
}

// Done implements sim.Protocol: the k-dissemination task is complete when
// every node reaches rank k.
func (p *Protocol) Done() bool {
	if !p.treeDone && p.stp.Done() {
		p.treeDone = true
	}
	return p.ag.Done()
}

// Rank returns node v's rank in the algebraic phase.
func (p *Protocol) Rank(v core.NodeID) int { return p.ag.Rank(v) }

// Node returns node v's RLNC state.
func (p *Protocol) Node(v core.NodeID) *rlnc.Node { return p.ag.Node(v) }

// DoneRounds returns per-node completion rounds of the algebraic phase.
func (p *Protocol) DoneRounds() []int { return p.ag.DoneRounds() }

// Traffic returns combined transmission counters: the algebraic phase's
// packets plus the spanning-tree protocol's messages (when S exposes them).
func (p *Protocol) Traffic() gossip.Traffic {
	t := p.ag.Traffic()
	if tp, ok := p.stp.(interface{ Traffic() gossip.Traffic }); ok {
		t.Add(tp.Traffic())
	}
	return t
}

// TreeProtocol returns the Phase 1 protocol, for inspecting t(S) and d(S).
func (p *Protocol) TreeProtocol() SpanningTree { return p.stp }

// TreeRound returns the synchronous round at which Phase 1 completed, or
// -1 (only tracked in the synchronous model).
func (p *Protocol) TreeRound() int { return p.treeRound }
