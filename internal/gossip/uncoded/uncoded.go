// Package uncoded implements the store-and-forward baseline: nodes gossip
// whole initial messages instead of linear combinations. On contact, the
// sender transmits one uniformly random message from its store (the
// classic "random useless-prone" rumor mongering that motivates network
// coding — Deb et al. showed the coupon-collector effect makes this a
// factor Θ(log n) slower than RLNC on the complete graph for k = n).
//
// It exists as an ablation baseline (experiment A3): identical scheduling,
// identical message budget per contact, no coding.
package uncoded

import (
	"fmt"
	"math/rand/v2"

	"algossip/internal/core"
	"algossip/internal/gossip"
	"algossip/internal/graph"
	"algossip/internal/linalg"
	"algossip/internal/sim"
)

// Config parameterizes the uncoded baseline.
type Config struct {
	// K is the number of distinct initial messages.
	K int
	// Action is the flow direction on contact (default Exchange, matching
	// the algebraic-gossip configuration it is compared against).
	Action core.Action
}

// delivery is one staged message transfer (synchronous model).
type delivery struct {
	to, from core.NodeID
	msg      int
}

// Protocol is the store-and-forward gossip state machine.
type Protocol struct {
	g     *graph.Graph
	model core.TimeModel
	sel   sim.PartnerSelector
	rng   *rand.Rand
	cfg   Config

	known     []linalg.BitVec // per node, bitset of known message indices
	knownCnt  []int
	initial   [][]int // per-node initial message indices, replayed on churn reset
	staged    []delivery
	traffic   gossip.Traffic
	doneCount int
	doneRound []int
	round     int
	slots     int
}

var (
	_ sim.Protocol      = (*Protocol)(nil)
	_ sim.TopologyAware = (*Protocol)(nil)
)

// New constructs the uncoded protocol; seed initial messages with Seed.
func New(g *graph.Graph, model core.TimeModel, sel sim.PartnerSelector, cfg Config, rng *rand.Rand) *Protocol {
	if cfg.Action == 0 {
		cfg.Action = core.Exchange
	}
	n := g.N()
	p := &Protocol{
		g:         g,
		model:     model,
		sel:       sel,
		rng:       rng,
		cfg:       cfg,
		known:     make([]linalg.BitVec, n),
		knownCnt:  make([]int, n),
		initial:   make([][]int, n),
		doneRound: make([]int, n),
	}
	for v := 0; v < n; v++ {
		p.known[v] = linalg.NewBitVec(cfg.K)
		p.doneRound[v] = -1
	}
	return p
}

// Seed places message index msg at node v.
func (p *Protocol) Seed(v core.NodeID, msg int) {
	if msg < 0 || msg >= p.cfg.K {
		panic(fmt.Sprintf("uncoded: message %d out of range [0,%d)", msg, p.cfg.K))
	}
	p.initial[v] = append(p.initial[v], msg)
	p.set(v, msg)
}

// SeedAll places message i at node assign[i].
func (p *Protocol) SeedAll(assign []core.NodeID) {
	for i, v := range assign {
		p.Seed(v, i)
	}
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string {
	return fmt.Sprintf("uncoded-gossip(%s,%s)", p.sel.Name(), p.cfg.Action)
}

// OnWake implements sim.Protocol.
func (p *Protocol) OnWake(v core.NodeID) {
	if p.model == core.Asynchronous {
		p.slots++
		p.round = p.slots / p.g.N()
	}
	u := p.sel.Partner(v, p.rng)
	if u == core.NilNode {
		return
	}
	switch p.cfg.Action {
	case core.Push:
		p.send(v, u)
	case core.Pull:
		p.send(u, v)
	case core.Exchange:
		p.send(v, u)
		p.send(u, v)
	}
}

// send transmits one uniformly random known message from `from` to `to`.
func (p *Protocol) send(from, to core.NodeID) {
	if p.knownCnt[from] == 0 {
		return
	}
	msg := p.randomKnown(from)
	p.traffic.Sent++
	if p.model == core.Synchronous {
		p.staged = append(p.staged, delivery{to: to, from: from, msg: msg})
		return
	}
	p.learn(to, msg)
}

// OnTopologyChange implements sim.TopologyAware: partner selection
// re-targets to the new graph, staged sends the new topology cannot
// deliver are dropped, and churned-out nodes forget everything except
// their initial seeds — store-and-forward has no subspace to keep, which
// is exactly the fragility the dynamic experiments measure against RLNC.
func (p *Protocol) OnTopologyChange(ev sim.TopologyEvent) {
	p.g = ev.Graph
	// Advance the clock first (the event precedes BeginRound(ev.Round)),
	// so reset bookkeeping stamps the rejoin round in both time models.
	p.round = ev.Round
	ev.Retarget(p.sel)
	kept := p.staged[:0]
	for _, d := range p.staged {
		if ev.Deliverable(d.from, d.to) {
			kept = append(kept, d)
		}
	}
	p.staged = kept
	for _, v := range ev.Reset {
		p.known[v] = linalg.NewBitVec(p.cfg.K)
		p.knownCnt[v] = 0
		if p.doneRound[v] >= 0 {
			p.doneRound[v] = -1
			p.doneCount--
		}
		for _, msg := range p.initial[v] {
			p.set(v, msg)
		}
	}
}

// randomKnown samples a uniformly random set bit of from's known set.
func (p *Protocol) randomKnown(from core.NodeID) int {
	target := p.rng.IntN(p.knownCnt[from])
	seen := 0
	for i := 0; i < p.cfg.K; i++ {
		if p.known[from].Get(i) {
			if seen == target {
				return i
			}
			seen++
		}
	}
	panic("uncoded: known count out of sync")
}

// learn ingests a received message, counting it against traffic.
func (p *Protocol) learn(to core.NodeID, msg int) {
	if p.known[to].Get(msg) {
		p.traffic.Useless++
		return
	}
	p.traffic.Helpful++
	p.set(to, msg)
}

// set installs a message without touching traffic counters (seeding).
func (p *Protocol) set(to core.NodeID, msg int) {
	if p.known[to].Get(msg) {
		return
	}
	p.known[to].Set(msg)
	p.knownCnt[to]++
	if p.knownCnt[to] == p.cfg.K && p.doneRound[to] < 0 {
		p.doneRound[to] = p.round
		p.doneCount++
	}
}

// BeginRound implements sim.Protocol.
func (p *Protocol) BeginRound(round int) { p.round = round }

// EndRound implements sim.Protocol.
func (p *Protocol) EndRound(round int) {
	p.round = round
	for _, d := range p.staged {
		p.learn(d.to, d.msg)
	}
	p.staged = p.staged[:0]
}

// Done implements sim.Protocol.
func (p *Protocol) Done() bool { return p.doneCount == p.g.N() }

// Traffic returns the protocol's transmission counters.
func (p *Protocol) Traffic() gossip.Traffic { return p.traffic }

// KnownCount returns how many distinct messages v holds.
func (p *Protocol) KnownCount(v core.NodeID) int { return p.knownCnt[v] }

// DoneRounds returns per-node completion rounds (-1 where incomplete).
func (p *Protocol) DoneRounds() []int { return append([]int(nil), p.doneRound...) }
