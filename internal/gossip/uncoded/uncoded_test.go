package uncoded

import (
	"testing"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/gossip/algebraic"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
)

func TestUncodedCompletes(t *testing.T) {
	graphs := []*graph.Graph{graph.Line(16), graph.Complete(16), graph.Grid(4, 4)}
	for _, g := range graphs {
		for _, model := range []core.TimeModel{core.Synchronous, core.Asynchronous} {
			p := New(g, model, sim.NewUniform(g), Config{K: 8}, core.NewRand(1))
			p.SeedAll(make([]core.NodeID, 8)) // all messages at node 0
			res, err := sim.New(g, model, p, 2, sim.WithMaxRounds(1<<16)).Run()
			if err != nil {
				t.Fatalf("%s/%s: %v", g.Name(), model, err)
			}
			for v := 0; v < g.N(); v++ {
				if p.KnownCount(core.NodeID(v)) != 8 {
					t.Fatalf("%s/%s: node %d knows %d/8", g.Name(), model, v, p.KnownCount(core.NodeID(v)))
				}
			}
			for _, r := range p.DoneRounds() {
				if r < 0 || r > res.Rounds {
					t.Fatalf("%s/%s: bad done round %d", g.Name(), model, r)
				}
			}
		}
	}
}

func TestSeedValidation(t *testing.T) {
	g := graph.Line(4)
	p := New(g, core.Synchronous, sim.NewUniform(g), Config{K: 3}, core.NewRand(1))
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range message")
		}
	}()
	p.Seed(0, 3)
}

func TestPushPullActions(t *testing.T) {
	g := graph.Ring(10)
	for _, a := range []core.Action{core.Push, core.Pull} {
		p := New(g, core.Asynchronous, sim.NewUniform(g), Config{K: 5, Action: a}, core.NewRand(3))
		p.SeedAll([]core.NodeID{0, 2, 4, 6, 8})
		if _, err := sim.New(g, core.Asynchronous, p, 4, sim.WithMaxRounds(1<<16)).Run(); err != nil {
			t.Fatalf("%v: %v", a, err)
		}
	}
}

// TestCodingBeatsUncodedOnCompleteGraph reproduces the motivation for
// network coding (experiment A3): for k = n on the complete graph, RLNC
// finishes in Θ(n) rounds while store-and-forward suffers the coupon
// collector's extra log factor. We assert the averaged ratio exceeds 1.
func TestCodingBeatsUncodedOnCompleteGraph(t *testing.T) {
	g := graph.Complete(48)
	k := g.N()
	trials := 3
	var coded, plain int
	for seed := uint64(0); seed < uint64(trials); seed++ {
		up := New(g, core.Synchronous, sim.NewUniform(g), Config{K: k}, core.NewRand(core.SplitSeed(seed, 1)))
		up.SeedAll(algebraic.RoundRobinAssign(k, g.N()))
		upRes, err := sim.New(g, core.Synchronous, up, core.SplitSeed(seed, 2), sim.WithMaxRounds(1<<16)).Run()
		if err != nil {
			t.Fatal(err)
		}
		plain += upRes.Rounds

		ap, err := algebraic.New(g, core.Synchronous, sim.NewUniform(g),
			algebraic.Config{RLNC: rlnc.Config{Field: gf.MustNew(256), K: k, RankOnly: true}},
			core.NewRand(core.SplitSeed(seed, 3)))
		if err != nil {
			t.Fatal(err)
		}
		if err := ap.SeedAll(algebraic.RoundRobinAssign(k, g.N()), nil); err != nil {
			t.Fatal(err)
		}
		apRes, err := sim.New(g, core.Synchronous, ap, core.SplitSeed(seed, 4), sim.WithMaxRounds(1<<16)).Run()
		if err != nil {
			t.Fatal(err)
		}
		coded += apRes.Rounds
	}
	if plain <= coded {
		t.Errorf("uncoded (%d rounds total) did not lose to RLNC (%d rounds total)", plain, coded)
	}
}
