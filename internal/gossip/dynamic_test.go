package gossip_test

// Dynamic-topology battery: the engine's dynamic run path over the real
// protocols, the static-schedule bit-identity guarantee, and the
// OnTopologyChange reset semantics (algebraic keeps subspaces and
// reseeds churned nodes; broadcast re-informs them).

import (
	"math"
	"testing"

	"algossip/internal/core"
	"algossip/internal/gossip/algebraic"
	"algossip/internal/gossip/broadcast"
	"algossip/internal/graph"
	"algossip/internal/harness"
	"algossip/internal/sim"
)

// TestDynamicStaticSpecBitIdentical: a Dynamics{Kind:"static"} spec and
// a nil-Dynamics spec replay the identical trajectory, per trial.
func TestDynamicStaticSpecBitIdentical(t *testing.T) {
	g := graph.Barbell(14)
	for _, proto := range []harness.Protocol{harness.ProtocolUniformAG, harness.ProtocolUncoded} {
		for seed := uint64(0); seed < 5; seed++ {
			a, err := harness.Execute(harness.GossipSpec{Graph: g, K: 7}, proto, seed)
			if err != nil {
				t.Fatal(err)
			}
			b, err := harness.Execute(harness.GossipSpec{Graph: g, K: 7,
				Dynamics: &harness.Dynamics{Kind: "static"}}, proto, seed)
			if err != nil {
				t.Fatal(err)
			}
			if a.Result.Rounds != b.Result.Rounds || a.Traffic != b.Traffic {
				t.Fatalf("%v seed %d: static dynamics diverged: %+v vs %+v",
					proto, seed, a.Result, b.Result)
			}
		}
	}
}

// TestDynamicSchedulesComplete: every schedule kind completes for both
// supported protocols under both time models, deterministically.
func TestDynamicSchedulesComplete(t *testing.T) {
	g := graph.Torus(4, 4)
	dynamics := []*harness.Dynamics{
		{Kind: "edge", Rate: 0.3},
		{Kind: "burst", Rate: 0.7, Period: 16, Burst: 4},
		{Kind: "rewire", Rate: 0.25, Period: 8},
		{Kind: "churn", Rate: 0.2, Period: 8},
		{Kind: "grow", Period: 2},
	}
	for _, dyn := range dynamics {
		for _, proto := range []harness.Protocol{harness.ProtocolUniformAG, harness.ProtocolUncoded} {
			for _, model := range []core.TimeModel{core.Synchronous, core.Asynchronous} {
				spec := harness.GossipSpec{Graph: g, K: 8, Model: model,
					Dynamics: dyn, MaxRounds: 1 << 17}
				run := func() harness.Outcome {
					o, err := harness.Execute(spec, proto, 33)
					if err != nil {
						t.Fatalf("%s/%v/%s: %v", dyn, proto, model, err)
					}
					return o
				}
				a, b := run(), run()
				if !a.Result.Completed {
					t.Fatalf("%s/%v/%s: did not complete", dyn, proto, model)
				}
				if a.Result.Rounds != b.Result.Rounds || a.Traffic != b.Traffic {
					t.Fatalf("%s/%v/%s: nondeterministic (%d vs %d rounds)",
						dyn, proto, model, a.Result.Rounds, b.Result.Rounds)
				}
			}
		}
	}
}

// TestGrowScheduleGatesCompletion pins the round-0 alignment: under a
// grow schedule whose joins never happen inside the budget, unjoined
// nodes are isolated from the very first round, so dissemination cannot
// finish — a regression here means the engine ran round 0 (or more) on
// the base graph instead of At(0).
func TestGrowScheduleGatesCompletion(t *testing.T) {
	g := graph.Complete(16)
	o, err := harness.Execute(harness.GossipSpec{Graph: g, K: 8,
		Dynamics:  &harness.Dynamics{Kind: "grow", Period: 1 << 20},
		MaxRounds: 2048}, harness.ProtocolUniformAG, 5)
	if err == nil || o.Result.Completed {
		t.Fatalf("completed in %d rounds although only 3 nodes ever join (err=%v)",
			o.Result.Rounds, err)
	}
}

// TestDynamicRejectsTreeProtocols: TAG needs a static topology.
func TestDynamicRejectsTreeProtocols(t *testing.T) {
	g := graph.Ring(10)
	for _, proto := range []harness.Protocol{harness.ProtocolTAGRR, harness.ProtocolTAGUniform, harness.ProtocolTAGIS} {
		_, err := harness.Execute(harness.GossipSpec{Graph: g, K: 5,
			Dynamics: &harness.Dynamics{Kind: "edge", Rate: 0.1}}, proto, 1)
		if err == nil {
			t.Errorf("%v accepted a dynamic topology", proto)
		}
	}
}

// TestAlgebraicChurnReset: a reset node restarts from its initial seeds
// — everything it learned is gone, its own messages are not — and the
// protocol can still finish afterwards.
func TestAlgebraicChurnReset(t *testing.T) {
	g := graph.Complete(8)
	k := 4
	p, err := algebraic.New(g, core.Synchronous, sim.NewUniform(g),
		algebraic.Config{RLNC: rankOnly(k)}, core.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SeedAll(algebraic.RoundRobinAssign(k, g.N()), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(g, core.Synchronous, p, 4).Run(); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Fatal("warm-up run incomplete")
	}
	// Node 1 held message 1 initially; node 5 held nothing.
	p.OnTopologyChange(sim.TopologyEvent{Round: 100, Graph: g, Reset: []core.NodeID{1, 5}})
	if p.Done() {
		t.Fatal("Done must regress after resets")
	}
	if got := p.Rank(1); got != 1 {
		t.Errorf("reset seeded node rank = %d, want its initial 1", got)
	}
	if got := p.Rank(5); got != 0 {
		t.Errorf("reset unseeded node rank = %d, want 0", got)
	}
	if got := p.Rank(2); got != k {
		t.Errorf("surviving node lost its subspace: rank %d", got)
	}
	// A second engine run re-disseminates to the reset nodes.
	if _, err := sim.New(g, core.Synchronous, p, 6).Run(); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Fatal("protocol did not recover from the reset")
	}
}

// TestBroadcastChurnReset: reset nodes are re-informed; the origin keeps
// the rumor through a reset.
func TestBroadcastChurnReset(t *testing.T) {
	g := graph.Grid(3, 3)
	p := broadcast.New(g, core.Synchronous, sim.NewUniform(g),
		broadcast.Config{Origin: 0}, core.NewRand(5))
	if _, err := sim.New(g, core.Synchronous, p, 6).Run(); err != nil {
		t.Fatal(err)
	}
	p.OnTopologyChange(sim.TopologyEvent{Round: 50, Graph: g, Reset: []core.NodeID{0, 4}})
	if !p.Informed(0) {
		t.Fatal("origin must survive a reset informed")
	}
	if p.Informed(4) {
		t.Fatal("reset node must be uninformed")
	}
	if p.Done() {
		t.Fatal("Done must regress after the reset")
	}
	if _, err := sim.New(g, core.Synchronous, p, 7).Run(); err != nil {
		t.Fatal(err)
	}
	if !p.Informed(4) || !p.Done() {
		t.Fatal("broadcast did not re-complete")
	}
}

// TestCompleteGraphPaperBound is the statistical conformance gate: over
// 200 fixed-seed trials, uniform algebraic gossip on Complete(32) with
// k = n/2 must stop within the paper's O(n) complete-graph bound at
// three standard deviations. The measured point sits near 0.59·n
// (mean ~15.3, σ ~1.2 rounds), so the 1.0·n ceiling trips on any ~1.7×
// theory regression while fixed seeds keep the test deterministic.
func TestCompleteGraphPaperBound(t *testing.T) {
	const n, trials = 32, 200
	g := graph.Complete(n)
	k := n / 2
	rounds, err := harness.ParallelFloats(trials, 0, func(i int) (float64, error) {
		res, err := harness.UniformAG(harness.GossipSpec{Graph: g, K: k},
			core.SplitSeed(12345, uint64(i)))
		return float64(res.Rounds), err
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum, sum2 float64
	for _, x := range rounds {
		sum += x
		sum2 += x * x
	}
	mean := sum / trials
	sigma := math.Sqrt(math.Max(0, sum2/trials-mean*mean))
	if bound := float64(n); mean+3*sigma > bound {
		t.Fatalf("uniform AG on K_%d: mean %.2f + 3σ (σ=%.2f) = %.2f exceeds the O(n) ceiling %.0f — theory regression",
			n, mean, sigma, mean+3*sigma, bound)
	}
	t.Logf("uniform AG on K_%d: mean %.2f σ %.2f (ceiling %d)", n, mean, sigma, n)
}
