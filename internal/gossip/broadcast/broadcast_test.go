package broadcast

import (
	"testing"

	"algossip/internal/core"
	"algossip/internal/graph"
	"algossip/internal/sim"
)

func testGraphs() []*graph.Graph {
	rng := core.NewRand(1)
	return []*graph.Graph{
		graph.Line(30),
		graph.Ring(30),
		graph.Grid(6, 5),
		graph.Complete(20),
		graph.Star(20),
		graph.Barbell(24),
		graph.BinaryTree(31),
		graph.Lollipop(10, 10),
		graph.ErdosRenyi(30, 0.15, rng),
	}
}

// TestBRRSynchronousWithin3N validates Theorem 5's probability-1 claim: the
// round-robin broadcast finishes within 3n synchronous rounds on any
// connected graph, for every seed.
func TestBRRSynchronousWithin3N(t *testing.T) {
	for _, g := range testGraphs() {
		for seed := uint64(0); seed < 10; seed++ {
			p := New(g, core.Synchronous, sim.NewRoundRobin(g), Config{Origin: 0}, core.NewRand(seed))
			res, err := sim.New(g, core.Synchronous, p, seed+100).Run()
			if err != nil {
				t.Fatalf("%s seed %d: %v", g.Name(), seed, err)
			}
			if res.Rounds > 3*g.N() {
				t.Errorf("%s seed %d: BRR took %d rounds > 3n = %d (violates Theorem 5)",
					g.Name(), seed, res.Rounds, 3*g.N())
			}
		}
	}
}

// TestBRRAsynchronousLinear validates the O(n) asynchronous bound of
// Theorem 5 with a generous constant.
func TestBRRAsynchronousLinear(t *testing.T) {
	for _, g := range testGraphs() {
		p := New(g, core.Asynchronous, sim.NewRoundRobin(g), Config{Origin: 0}, core.NewRand(5))
		res, err := sim.New(g, core.Asynchronous, p, 6).Run()
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if res.Rounds > 12*g.N() {
			t.Errorf("%s: async BRR took %d rounds, want O(n) ~ %d", g.Name(), res.Rounds, 12*g.N())
		}
	}
}

// TestBroadcastTreeValid checks that the parent pointers of a completed
// broadcast always form a valid spanning tree rooted at the origin.
func TestBroadcastTreeValid(t *testing.T) {
	for _, g := range testGraphs() {
		for _, model := range []core.TimeModel{core.Synchronous, core.Asynchronous} {
			for _, mkSel := range []func() sim.PartnerSelector{
				func() sim.PartnerSelector { return sim.NewUniform(g) },
				func() sim.PartnerSelector { return sim.NewRoundRobin(g) },
			} {
				p := New(g, model, mkSel(), Config{Origin: 3 % core.NodeID(g.N())}, core.NewRand(9))
				if _, err := sim.New(g, model, p, 10).Run(); err != nil {
					t.Fatalf("%s/%s: %v", g.Name(), model, err)
				}
				tree, ok := p.Tree()
				if !ok {
					t.Fatalf("%s/%s: tree unavailable after completion", g.Name(), model)
				}
				if err := tree.Validate(); err != nil {
					t.Fatalf("%s/%s: invalid tree: %v", g.Name(), model, err)
				}
				// Tree edges must be graph edges.
				for v, par := range tree.Parent {
					if par != core.NilNode && !g.HasEdge(core.NodeID(v), par) {
						t.Fatalf("%s/%s: tree edge (%d,%d) not in graph", g.Name(), model, v, par)
					}
				}
			}
		}
	}
}

// TestTreeDepthBoundedByBroadcastTime validates the observation of Section
// 4.1: in the synchronous model the broadcast tree depth cannot exceed the
// broadcast time, t(B) >= d(B)/2... precisely depth <= rounds, since a
// message travels at most one hop per round.
func TestTreeDepthBoundedByBroadcastTime(t *testing.T) {
	for _, g := range testGraphs() {
		p := New(g, core.Synchronous, sim.NewUniform(g), Config{Origin: 0}, core.NewRand(17))
		res, err := sim.New(g, core.Synchronous, p, 18).Run()
		if err != nil {
			t.Fatal(err)
		}
		tree, _ := p.Tree()
		if tree.Depth() > res.Rounds {
			t.Errorf("%s: tree depth %d exceeds broadcast time %d rounds",
				g.Name(), tree.Depth(), res.Rounds)
		}
	}
}

func TestInformedRoundsMonotone(t *testing.T) {
	g := graph.Line(20)
	p := New(g, core.Synchronous, sim.NewUniform(g), Config{Origin: 0}, core.NewRand(2))
	res, err := sim.New(g, core.Synchronous, p, 3).Run()
	if err != nil {
		t.Fatal(err)
	}
	rounds := p.InformedRounds()
	if rounds[0] != 0 {
		t.Fatalf("origin informed at %d, want 0", rounds[0])
	}
	// A child is informed strictly after its parent, except children of the
	// origin (which is informed "before round 0" but labeled 0).
	for v := 1; v < 20; v++ {
		par := p.Parent(core.NodeID(v))
		if par != 0 && rounds[v] <= rounds[par] {
			t.Fatalf("node %d informed at %d, its parent %d at %d", v, rounds[v], par, rounds[par])
		}
		if rounds[v] > res.Rounds {
			t.Fatalf("node %d informed after completion", v)
		}
	}
}

func TestTreeUnavailableBeforeDone(t *testing.T) {
	g := graph.Line(10)
	p := New(g, core.Synchronous, sim.NewUniform(g), Config{Origin: 0}, core.NewRand(2))
	if _, ok := p.Tree(); ok {
		t.Fatal("tree must be unavailable before completion")
	}
	if !p.Informed(0) || p.Informed(5) {
		t.Fatal("initial informed state wrong")
	}
}

func TestExchangeBroadcast(t *testing.T) {
	g := graph.Barbell(20)
	p := New(g, core.Asynchronous, sim.NewUniform(g), Config{Origin: 0, Action: core.Exchange}, core.NewRand(4))
	if _, err := sim.New(g, core.Asynchronous, p, 5).Run(); err != nil {
		t.Fatal(err)
	}
	tree, ok := p.Tree()
	if !ok {
		t.Fatal("no tree")
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestBRRDeliversAlongShortestPaths sanity-checks the Lemma 2 mechanism:
// on the line, BRR delivers within ~sum of degrees rounds (here <= 2n+2).
func TestBRRLineExactness(t *testing.T) {
	g := graph.Line(40)
	p := New(g, core.Synchronous, sim.NewRoundRobin(g), Config{Origin: 0}, core.NewRand(8))
	res, err := sim.New(g, core.Synchronous, p, 9).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 2*g.N()+2 {
		t.Errorf("BRR on line took %d rounds, expected <= 2n+2 = %d", res.Rounds, 2*g.N()+2)
	}
}
