// Package broadcast implements gossip broadcast (1-dissemination)
// protocols, which double as spanning-tree (STP) protocols: when a node
// receives the broadcast message for the first time, it marks the sender as
// its parent, so the completed broadcast induces a spanning tree rooted at
// the origin (paper Sections 2 and 4.1).
//
// With the round-robin communication model this is the B_RR protocol of
// Theorem 5, which finishes in at most 3n synchronous rounds with
// probability 1 on any connected graph (via Lemma 2: the degree sum along
// any shortest path is at most 3n), and in O(n) rounds w.h.p. in the
// asynchronous model.
package broadcast

import (
	"fmt"
	"math/rand/v2"

	"algossip/internal/core"
	"algossip/internal/gossip"
	"algossip/internal/graph"
	"algossip/internal/sim"
)

// Config parameterizes a broadcast run.
type Config struct {
	// Origin is the node that initially holds the message.
	Origin core.NodeID
	// Action is the information-flow direction on contact. The default
	// (zero value) is Push, matching the proof of Theorem 5; Exchange also
	// satisfies the theorem.
	Action core.Action
}

// inform is one staged "u becomes informed by v" event (synchronous model).
type inform struct {
	to, from core.NodeID
}

// Protocol is a gossip broadcast state machine implementing sim.Protocol.
// Pair it with sim.NewUniform for uniform broadcast or sim.NewRoundRobin
// for B_RR.
type Protocol struct {
	g     *graph.Graph
	model core.TimeModel
	sel   sim.PartnerSelector
	rng   *rand.Rand
	cfg   Config

	informed      []bool
	parent        []core.NodeID
	informedRound []int
	informedCount int
	staged        []inform
	traffic       gossip.Traffic
	round         int
	slots         int
	obs           sim.Observer
}

var (
	_ sim.Protocol      = (*Protocol)(nil)
	_ sim.TopologyAware = (*Protocol)(nil)
)

// New constructs a broadcast protocol over g with the message at
// cfg.Origin.
func New(g *graph.Graph, model core.TimeModel, sel sim.PartnerSelector, cfg Config, rng *rand.Rand) *Protocol {
	if cfg.Action == 0 {
		cfg.Action = core.Push
	}
	n := g.N()
	p := &Protocol{
		g:             g,
		model:         model,
		sel:           sel,
		rng:           rng,
		cfg:           cfg,
		informed:      make([]bool, n),
		parent:        make([]core.NodeID, n),
		informedRound: make([]int, n),
		obs:           sim.NopObserver{},
	}
	for i := range p.parent {
		p.parent[i] = core.NilNode
		p.informedRound[i] = -1
	}
	p.informed[cfg.Origin] = true
	p.informedRound[cfg.Origin] = 0
	p.informedCount = 1
	return p
}

// SetObserver installs a progress observer (must be called before running).
func (p *Protocol) SetObserver(obs sim.Observer) { p.obs = obs }

// Name implements sim.Protocol.
func (p *Protocol) Name() string {
	return fmt.Sprintf("broadcast(%s,%s)", p.sel.Name(), p.cfg.Action)
}

// OnWake implements sim.Protocol.
func (p *Protocol) OnWake(v core.NodeID) {
	if p.model == core.Asynchronous {
		p.slots++
		p.round = p.slots / p.g.N()
	}
	u := p.sel.Partner(v, p.rng)
	if u == core.NilNode {
		return
	}
	switch p.cfg.Action {
	case core.Push:
		p.transfer(v, u)
	case core.Pull:
		p.transfer(u, v)
	case core.Exchange:
		p.transfer(v, u)
		p.transfer(u, v)
	}
}

// OnTopologyChange implements sim.TopologyAware: partner selection
// re-targets to the new graph, staged informs the new topology cannot
// deliver are dropped, and churned-out nodes become uninformed again
// (their spanning-tree parent pointer is void). The origin survives a
// reset still informed — it is the source of the rumor — so the
// broadcast can always re-complete.
func (p *Protocol) OnTopologyChange(ev sim.TopologyEvent) {
	p.g = ev.Graph
	// Advance the clock first (the event precedes BeginRound(ev.Round)),
	// so re-informs after a reset are stamped with the rejoin round.
	p.round = ev.Round
	ev.Retarget(p.sel)
	kept := p.staged[:0]
	for _, in := range p.staged {
		if ev.Deliverable(in.from, in.to) {
			kept = append(kept, in)
		}
	}
	p.staged = kept
	for _, v := range ev.Reset {
		if v == p.cfg.Origin || !p.informed[v] {
			continue
		}
		p.informed[v] = false
		p.parent[v] = core.NilNode
		p.informedRound[v] = -1
		p.informedCount--
	}
}

// transfer propagates the message from `from` to `to` if `from` is informed
// (start-of-round state in the synchronous model, where informs are staged).
// Every transmission is counted, including ones the receiver discards.
func (p *Protocol) transfer(from, to core.NodeID) {
	if !p.informed[from] {
		return // nothing to send yet
	}
	p.traffic.Sent++
	if p.informed[to] {
		p.traffic.Useless++
		return
	}
	if p.model == core.Synchronous {
		p.staged = append(p.staged, inform{to: to, from: from})
		return
	}
	p.apply(to, from)
}

// apply marks `to` informed with parent `from` (first informer wins).
func (p *Protocol) apply(to, from core.NodeID) {
	if p.informed[to] {
		p.traffic.Useless++
		return
	}
	p.traffic.Helpful++
	p.informed[to] = true
	p.parent[to] = from
	p.informedRound[to] = p.round
	p.informedCount++
	p.obs.NodeDone(to, p.round)
}

// BeginRound implements sim.Protocol.
func (p *Protocol) BeginRound(round int) { p.round = round }

// EndRound implements sim.Protocol. Informs become visible at the end of
// the round; a node informed this round starts sending next round.
func (p *Protocol) EndRound(round int) {
	p.round = round
	for _, in := range p.staged {
		p.apply(in.to, in.from)
	}
	p.staged = p.staged[:0]
}

// Traffic returns the protocol's transmission counters.
func (p *Protocol) Traffic() gossip.Traffic { return p.traffic }

// Done implements sim.Protocol: true once every node is informed.
func (p *Protocol) Done() bool { return p.informedCount == p.g.N() }

// Informed reports whether v has received the broadcast.
func (p *Protocol) Informed(v core.NodeID) bool { return p.informed[v] }

// Parent returns v's parent in the induced spanning tree (NilNode until v
// is informed, and for the origin).
func (p *Protocol) Parent(v core.NodeID) core.NodeID { return p.parent[v] }

// InformedRounds returns, per node, the round at which it was informed
// (-1 if not yet; 0 for the origin). The slice is a copy.
func (p *Protocol) InformedRounds() []int {
	return append([]int(nil), p.informedRound...)
}

// Tree returns the induced spanning tree once the broadcast is complete.
// The boolean is false while any node is uninformed.
func (p *Protocol) Tree() (*graph.Tree, bool) {
	if !p.Done() {
		return nil, false
	}
	return &graph.Tree{
		Root:   p.cfg.Origin,
		Parent: append([]core.NodeID(nil), p.parent...),
	}, true
}
