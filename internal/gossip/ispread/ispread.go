// Package ispread implements the information-spreading protocol IS of
// Censor-Hillel & Shachnai (SODA 2011) at the level of detail the paper
// (Section 6) uses it: each node maintains a monotone n-bit string
// recording the nodes it has heard from, directly or indirectly; strings
// start as unit vectors and are unioned on every contact (EXCHANGE). Steps
// alternate between a randomized choice (uniform neighbor) and a
// deterministic choice driven by the node's knowledge: contact a neighbor
// the node has *not yet heard from*. The deterministic step is what defeats
// bottlenecks such as the barbell bridge — once a clique is internally
// saturated, the bridge endpoint's only unheard neighbor is across the
// bridge, so it is contacted immediately rather than with probability
// 2/n.
//
// The spanning tree is extracted exactly as the paper describes: node v
// declares as parent the first node u from which it received a message
// that flipped v's most significant bit — the bit of the designated root —
// from zero to one. The tree is therefore rooted at the root node, and
// Done (tree mode) holds once every node has heard from the root.
package ispread

import (
	"fmt"
	"math/rand/v2"

	"algossip/internal/core"
	"algossip/internal/gossip"
	"algossip/internal/graph"
	"algossip/internal/linalg"
	"algossip/internal/sim"
)

// Mode selects the protocol's completion criterion.
type Mode int

const (
	// TreeMode finishes when every node has a parent (heard from the
	// root) — all TAG needs from Phase 1.
	TreeMode Mode = iota + 1
	// FullSpreadMode finishes when every node's string is all ones (full
	// information spreading, the task of Theorem 6).
	FullSpreadMode
)

// Config parameterizes an IS run.
type Config struct {
	// Root is the node whose bit acts as the most significant bit; the
	// induced spanning tree is rooted here.
	Root core.NodeID
	// Mode is the completion criterion (default TreeMode).
	Mode Mode
}

// union is one staged string transfer: `to` receives `bits` from `from`.
type union struct {
	to, from core.NodeID
	bits     linalg.BitVec
}

// Protocol is the IS state machine implementing sim.Protocol.
type Protocol struct {
	g     *graph.Graph
	model core.TimeModel
	rng   *rand.Rand
	cfg   Config

	bits     []linalg.BitVec // heard-from sets, one n-bit string per node
	parent   []core.NodeID
	steps    []int // per-node step counter for the random/deterministic alternation
	cursor   []int // per-node round-robin cursor for deterministic steps
	staged   []union
	traffic  gossip.Traffic
	heardCnt []int // popcount cache per node
	rootCnt  int   // number of nodes that heard from the root
	fullCnt  int   // number of nodes with an all-ones string
	round    int
	slots    int
	obs      sim.Observer
}

var _ sim.Protocol = (*Protocol)(nil)

// New constructs an IS protocol over g.
func New(g *graph.Graph, model core.TimeModel, cfg Config, rng *rand.Rand) *Protocol {
	if cfg.Mode == 0 {
		cfg.Mode = TreeMode
	}
	n := g.N()
	p := &Protocol{
		g:        g,
		model:    model,
		rng:      rng,
		cfg:      cfg,
		bits:     make([]linalg.BitVec, n),
		parent:   make([]core.NodeID, n),
		steps:    make([]int, n),
		cursor:   make([]int, n),
		heardCnt: make([]int, n),
	}
	p.obs = sim.NopObserver{}
	for v := 0; v < n; v++ {
		p.bits[v] = linalg.NewBitVec(n)
		p.bits[v].Set(v)
		p.heardCnt[v] = 1
		p.parent[v] = core.NilNode
		p.cursor[v] = rng.IntN(maxInt(1, g.Degree(core.NodeID(v))))
	}
	p.rootCnt = 1 // the root has heard from itself
	if n == 1 {
		p.fullCnt = 1
	}
	return p
}

// SetObserver installs a progress observer (must be called before running).
func (p *Protocol) SetObserver(obs sim.Observer) { p.obs = obs }

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return fmt.Sprintf("ispread(root=%d)", p.cfg.Root) }

// OnWake implements sim.Protocol: even-numbered steps of each node choose a
// uniformly random neighbor; odd-numbered steps deterministically choose an
// unheard neighbor (falling back to round-robin when all neighbors have
// been heard). Contact is EXCHANGE: both strings are unioned.
func (p *Protocol) OnWake(v core.NodeID) {
	if p.model == core.Asynchronous {
		p.slots++
		p.round = p.slots / p.g.N()
	}
	nb := p.g.Neighbors(v)
	if len(nb) == 0 {
		return
	}
	var u core.NodeID
	if p.steps[v]%2 == 0 {
		u = nb[p.rng.IntN(len(nb))]
	} else {
		u = p.deterministicPartner(v, nb)
	}
	p.steps[v]++
	p.exchange(v, u)
}

// deterministicPartner scans v's neighbor list cyclically for one v has not
// heard from; if every neighbor has been heard it advances round-robin.
func (p *Protocol) deterministicPartner(v core.NodeID, nb []core.NodeID) core.NodeID {
	start := p.cursor[v]
	for i := 0; i < len(nb); i++ {
		u := nb[(start+i)%len(nb)]
		if !p.bits[v].Get(int(u)) {
			p.cursor[v] = (start + i + 1) % len(nb)
			return u
		}
	}
	u := nb[start%len(nb)]
	p.cursor[v] = (start + 1) % len(nb)
	return u
}

// exchange transfers both strings (EXCHANGE). In the synchronous model the
// incoming strings are snapshots staged until EndRound.
func (p *Protocol) exchange(v, u core.NodeID) {
	p.traffic.Sent += 2 // EXCHANGE: one string each way
	if p.model == core.Synchronous {
		p.staged = append(p.staged,
			union{to: u, from: v, bits: p.bits[v].Clone()},
			union{to: v, from: u, bits: p.bits[u].Clone()},
		)
		return
	}
	p.apply(u, v, p.bits[v])
	p.apply(v, u, p.bits[u])
}

// apply unions `bits` (from node `from`) into node `to`, assigning the
// parent if the root bit flips.
func (p *Protocol) apply(to, from core.NodeID, bits linalg.BitVec) {
	hadRoot := p.bits[to].Get(int(p.cfg.Root))
	p.bits[to].Or(bits)
	newCount := p.bits[to].OnesCount()
	if newCount == p.heardCnt[to] {
		p.traffic.Useless++
		return
	}
	p.traffic.Helpful++
	p.heardCnt[to] = newCount
	if !hadRoot && p.bits[to].Get(int(p.cfg.Root)) {
		p.parent[to] = from
		p.rootCnt++
		p.obs.NodeDone(to, p.round)
	}
	if newCount == p.g.N() {
		p.fullCnt++
	}
}

// BeginRound implements sim.Protocol.
func (p *Protocol) BeginRound(round int) { p.round = round }

// EndRound implements sim.Protocol.
func (p *Protocol) EndRound(round int) {
	p.round = round
	for _, s := range p.staged {
		p.apply(s.to, s.from, s.bits)
	}
	p.staged = p.staged[:0]
}

// Done implements sim.Protocol according to the configured Mode.
func (p *Protocol) Done() bool {
	if p.cfg.Mode == FullSpreadMode {
		return p.fullCnt == p.g.N()
	}
	return p.rootCnt == p.g.N()
}

// Traffic returns the protocol's transmission counters.
func (p *Protocol) Traffic() gossip.Traffic { return p.traffic }

// Parent returns v's parent in the induced tree (NilNode until v hears
// from the root, and for the root itself).
func (p *Protocol) Parent(v core.NodeID) core.NodeID { return p.parent[v] }

// HeardCount returns the number of nodes v has heard from.
func (p *Protocol) HeardCount(v core.NodeID) int { return p.heardCnt[v] }

// Tree returns the induced spanning tree once every node has heard from
// the root; the boolean reports availability.
func (p *Protocol) Tree() (*graph.Tree, bool) {
	if p.rootCnt != p.g.N() {
		return nil, false
	}
	return &graph.Tree{
		Root:   p.cfg.Root,
		Parent: append([]core.NodeID(nil), p.parent...),
	}, true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
