package ispread

import (
	"math"
	"testing"

	"algossip/internal/core"
	"algossip/internal/graph"
	"algossip/internal/sim"
)

func TestTreeModeCompletesAndTreeValid(t *testing.T) {
	rng := core.NewRand(1)
	graphs := []*graph.Graph{
		graph.Line(20),
		graph.Complete(20),
		graph.Barbell(24),
		graph.CliqueChain(4, 8),
		graph.Grid(5, 5),
		graph.ErdosRenyi(30, 0.2, rng),
	}
	for _, g := range graphs {
		for _, model := range []core.TimeModel{core.Synchronous, core.Asynchronous} {
			p := New(g, model, Config{Root: 0}, core.NewRand(3))
			if _, err := sim.New(g, model, p, 4).Run(); err != nil {
				t.Fatalf("%s/%s: %v", g.Name(), model, err)
			}
			tree, ok := p.Tree()
			if !ok {
				t.Fatalf("%s/%s: no tree", g.Name(), model)
			}
			if err := tree.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", g.Name(), model, err)
			}
			if tree.Root != 0 {
				t.Fatalf("%s/%s: root = %d", g.Name(), model, tree.Root)
			}
			for v, par := range tree.Parent {
				if par != core.NilNode && !g.HasEdge(core.NodeID(v), par) {
					t.Fatalf("%s/%s: tree edge (%d,%d) not in graph", g.Name(), model, v, par)
				}
			}
		}
	}
}

// TestBarbellPolylog is the point of the IS protocol: on the barbell graph
// (where uniform gossip needs Ω(n) rounds to cross the bridge) the
// deterministic unheard-neighbor step crosses the bottleneck immediately,
// giving polylogarithmic spreading. We assert generously: tree built within
// C·log²(n) synchronous rounds, far below the Θ(n) of uniform gossip.
func TestBarbellPolylog(t *testing.T) {
	for _, n := range []int{32, 64, 128, 256} {
		g := graph.Barbell(n)
		worst := 0
		for seed := uint64(0); seed < 5; seed++ {
			p := New(g, core.Synchronous, Config{Root: 0}, core.NewRand(seed))
			res, err := sim.New(g, core.Synchronous, p, seed+50).Run()
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if res.Rounds > worst {
				worst = res.Rounds
			}
		}
		logn := math.Log2(float64(n))
		bound := int(8*logn*logn) + 16
		if worst > bound {
			t.Errorf("n=%d: IS took %d rounds on barbell, want <= %d (polylog)", n, worst, bound)
		}
		// The separation from Θ(n) uniform gossip is only visible once n
		// clears the polylog constants.
		if n >= 128 && worst >= n/2 {
			t.Errorf("n=%d: IS took %d rounds — not beating the Θ(n) bottleneck", n, worst)
		}
	}
}

func TestFullSpreadMode(t *testing.T) {
	g := graph.CliqueChain(3, 6)
	p := New(g, core.Synchronous, Config{Root: 0, Mode: FullSpreadMode}, core.NewRand(7))
	if _, err := sim.New(g, core.Synchronous, p, 8).Run(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if p.HeardCount(core.NodeID(v)) != g.N() {
			t.Fatalf("node %d heard only %d/%d", v, p.HeardCount(core.NodeID(v)), g.N())
		}
	}
}

func TestRootHasNoParent(t *testing.T) {
	g := graph.Complete(10)
	p := New(g, core.Asynchronous, Config{Root: 4}, core.NewRand(9))
	if _, err := sim.New(g, core.Asynchronous, p, 10).Run(); err != nil {
		t.Fatal(err)
	}
	if p.Parent(4) != core.NilNode {
		t.Fatalf("root parent = %d, want NilNode", p.Parent(4))
	}
	tree, _ := p.Tree()
	if tree.Root != 4 {
		t.Fatalf("tree root = %d", tree.Root)
	}
}

// TestDeterministicStepPrefersUnheard verifies the core mechanism directly:
// after a node has heard from all neighbors but one, its next deterministic
// step contacts exactly that neighbor.
func TestDeterministicStepPrefersUnheard(t *testing.T) {
	g := graph.Star(5) // hub 0, leaves 1..4
	p := New(g, core.Asynchronous, Config{Root: 0}, core.NewRand(2))
	// Make the hub hear from leaves 1..3 by waking them (random step on a
	// leaf always contacts the hub).
	for _, leaf := range []core.NodeID{1, 2, 3} {
		p.OnWake(leaf)
	}
	if p.HeardCount(0) != 4 { // self + 3 leaves
		t.Fatalf("hub heard %d, want 4", p.HeardCount(0))
	}
	// Hub's first wakeup is a random step; its second is deterministic and
	// must contact leaf 4, the only unheard neighbor.
	p.OnWake(0) // random step
	before := p.HeardCount(0)
	p.OnWake(0) // deterministic step
	if !p.bits[0].Get(4) {
		t.Fatalf("deterministic step did not contact the unheard leaf (heard %d -> %d)",
			before, p.HeardCount(0))
	}
}

func TestSingleNodeGraph(t *testing.T) {
	g := graph.Line(1)
	p := New(g, core.Synchronous, Config{Root: 0}, core.NewRand(1))
	if !p.Done() {
		t.Fatal("single-node IS must be done immediately")
	}
	res, err := sim.New(g, core.Synchronous, p, 2).Run()
	if err != nil || res.Rounds != 0 {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
}

func BenchmarkISBarbell(b *testing.B) {
	g := graph.Barbell(128)
	for i := 0; i < b.N; i++ {
		p := New(g, core.Synchronous, Config{Root: 0}, core.NewRand(uint64(i)))
		if _, err := sim.New(g, core.Synchronous, p, uint64(i)+1).Run(); err != nil {
			b.Fatal(err)
		}
	}
}
