package algebraic

import (
	"fmt"
	"math/rand/v2"

	"algossip/internal/core"
	"algossip/internal/gossip"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
)

// GenProtocol is algebraic gossip with generation-based RLNC (see
// rlnc.GenConfig): the k messages are coded in independent generations,
// trading per-packet coefficient overhead against a coupon-collector
// effect across generations. It exists for the generation-size ablation
// (A7); the paper's protocol is the single-generation special case.
type GenProtocol struct {
	g     *graph.Graph
	model core.TimeModel
	sel   sim.PartnerSelector
	rng   *rand.Rand
	cfg   rlnc.GenConfig

	nodes     []*rlnc.GenNode
	staged    []genDelivery
	traffic   gossip.Traffic
	doneCount int
	doneRound []int // round at which each node reached full rank, -1 before
	round     int
	slots     int
	obs       sim.Observer

	free []*rlnc.GenPacket // recycled packets; backing arrays are reused by EmitInto

	shard    *shardCore       // sharded-execution state (nil = classic wake loop)
	slotPkts []rlnc.GenPacket // pooled per-slot packets for sharded staging
}

type genDelivery struct {
	to  core.NodeID
	pkt *rlnc.GenPacket
}

var (
	_ sim.Protocol        = (*GenProtocol)(nil)
	_ sim.ShardedProtocol = (*GenProtocol)(nil)
)

// NewGen constructs a generation-coded gossip protocol; seed messages with
// Seed before running. Contacts are EXCHANGE.
func NewGen(g *graph.Graph, model core.TimeModel, sel sim.PartnerSelector, cfg rlnc.GenConfig, rng *rand.Rand) (*GenProtocol, error) {
	n := g.N()
	p := &GenProtocol{
		g:         g,
		model:     model,
		sel:       sel,
		rng:       rng,
		cfg:       cfg,
		nodes:     make([]*rlnc.GenNode, n),
		doneRound: make([]int, n),
		obs:       sim.NopObserver{},
	}
	for i := range p.nodes {
		node, err := rlnc.NewGenNode(cfg)
		if err != nil {
			return nil, fmt.Errorf("algebraic: node %d: %w", i, err)
		}
		p.nodes[i] = node
	}
	for i := range p.doneRound {
		p.doneRound[i] = -1
	}
	return p, nil
}

// SetObserver installs a progress observer (must be called before running).
func (p *GenProtocol) SetObserver(obs sim.Observer) { p.obs = obs }

// EnableSharded switches the protocol to sharded-execution semantics,
// exactly as Protocol.EnableSharded does for full-span coding; the
// generation-coded decoders cap the commit-time reduce cost at O(g²) per
// packet, which is what lets sharded generation runs scale to n ≥ 10^5.
func (p *GenProtocol) EnableSharded(seed uint64, retire bool) error {
	if p.model != core.Synchronous {
		return fmt.Errorf("algebraic: sharded execution requires the synchronous model")
	}
	p.slotPkts = make([]rlnc.GenPacket, 2*len(p.nodes))
	p.shard = newShardCore(p, p.sel, core.Exchange, 0, p.g, seed, retire, &p.traffic)
	return nil
}

// shardOps implementation (see shard.go).
func (p *GenProtocol) rank(v core.NodeID) int  { return p.nodes[v].Rank() }
func (p *GenProtocol) full(v core.NodeID) bool { return p.nodes[v].CanDecode() }
func (p *GenProtocol) emitSlot(from core.NodeID, rng *rand.Rand, slot int) bool {
	return p.nodes[from].EmitInto(rng, &p.slotPkts[slot])
}
func (p *GenProtocol) applySlot(to core.NodeID, slot int) bool {
	if p.nodes[to].ReceiveOwned(&p.slotPkts[slot]) {
		p.refreshDone(to)
		return true
	}
	return false
}

// ActiveWords implements sim.ShardedProtocol (nil until EnableSharded).
func (p *GenProtocol) ActiveWords() []uint64 {
	if p.shard == nil {
		return nil
	}
	return p.shard.activeWords()
}

// WakeShard implements sim.ShardedProtocol.
func (p *GenProtocol) WakeShard(lo, hi int) { p.shard.wakeRange(lo, hi) }

// CommitRound implements sim.ShardedProtocol.
func (p *GenProtocol) CommitRound(round int) {
	p.round = round
	p.shard.commit()
}

// Seed places message msg (global index) at node v.
func (p *GenProtocol) Seed(v core.NodeID, msg rlnc.Message) {
	p.nodes[v].Seed(msg)
	p.refreshDone(v)
}

// SeedAll places message i at node assign[i]; msgs may be nil in rank-only
// mode.
func (p *GenProtocol) SeedAll(assign []core.NodeID, msgs []rlnc.Message) error {
	if len(assign) != p.cfg.K {
		return fmt.Errorf("algebraic: assignment length %d != k %d", len(assign), p.cfg.K)
	}
	for i, v := range assign {
		msg := rlnc.Message{Index: i}
		if msgs != nil {
			msg = msgs[i]
		}
		p.Seed(v, msg)
	}
	return nil
}

// Name implements sim.Protocol.
func (p *GenProtocol) Name() string {
	return fmt.Sprintf("gen-algebraic-gossip(g=%d)", p.cfg.GenSize)
}

// OnWake implements sim.Protocol (EXCHANGE with a selected partner).
func (p *GenProtocol) OnWake(v core.NodeID) {
	if p.model == core.Asynchronous {
		p.slots++
		p.round = p.slots / p.g.N()
	}
	u := p.sel.Partner(v, p.rng)
	if u == core.NilNode {
		return
	}
	p.send(v, u)
	p.send(u, v)
}

// getPacket pops a recycled packet (or allocates the first few). Pooled
// packets keep their backing arrays — GenNode.EmitInto reslices or grows
// them per generation — so the steady-state send path allocates nothing,
// matching the full-span Protocol's pool.
func (p *GenProtocol) getPacket() *rlnc.GenPacket {
	if n := len(p.free); n > 0 {
		pkt := p.free[n-1]
		p.free = p.free[:n-1]
		return pkt
	}
	return &rlnc.GenPacket{}
}

// recycle returns a packet (whose contents ReceiveOwned may have
// clobbered) to the freelist for the next EmitInto.
func (p *GenProtocol) recycle(pkt *rlnc.GenPacket) {
	p.free = append(p.free, pkt)
}

func (p *GenProtocol) send(from, to core.NodeID) {
	pkt := p.getPacket()
	if !p.nodes[from].EmitInto(p.rng, pkt) {
		p.recycle(pkt)
		return
	}
	p.traffic.Sent++
	if p.model == core.Synchronous {
		p.staged = append(p.staged, genDelivery{to: to, pkt: pkt})
		return
	}
	p.apply(to, pkt)
	p.recycle(pkt)
}

func (p *GenProtocol) apply(to core.NodeID, pkt *rlnc.GenPacket) {
	// The protocol owns every staged packet, so the reduce can clobber
	// it in place (helpfulness and randomness identical to Receive).
	if p.nodes[to].ReceiveOwned(pkt) {
		p.traffic.Helpful++
		p.refreshDone(to)
	} else {
		p.traffic.Useless++
	}
}

// refreshDone records the completion round for node v if it just reached
// full rank across every generation.
func (p *GenProtocol) refreshDone(v core.NodeID) {
	if p.doneRound[v] < 0 && p.nodes[v].CanDecode() {
		p.doneRound[v] = p.round
		p.doneCount++
		p.obs.NodeDone(v, p.round)
	}
}

// BeginRound implements sim.Protocol.
func (p *GenProtocol) BeginRound(round int) { p.round = round }

// EndRound implements sim.Protocol.
func (p *GenProtocol) EndRound(round int) {
	p.round = round
	for _, d := range p.staged {
		p.apply(d.to, d.pkt)
		p.recycle(d.pkt)
	}
	p.staged = p.staged[:0]
}

// Done implements sim.Protocol.
func (p *GenProtocol) Done() bool { return p.doneCount == len(p.nodes) }

// Rank returns node v's total rank.
func (p *GenProtocol) Rank(v core.NodeID) int { return p.nodes[v].Rank() }

// Node returns node v's generation-coded state.
func (p *GenProtocol) Node(v core.NodeID) *rlnc.GenNode { return p.nodes[v] }

// Traffic returns the protocol's transmission counters.
func (p *GenProtocol) Traffic() gossip.Traffic { return p.traffic }

// MessageBits returns the wire size of one generation-coded message.
func (p *GenProtocol) MessageBits() int { return p.cfg.MessageBits() }

// DoneRounds returns, per node, the round at which it reached full rank
// (-1 if it has not). The slice is a copy.
func (p *GenProtocol) DoneRounds() []int {
	return append([]int(nil), p.doneRound...)
}
