package algebraic

import (
	"fmt"
	"math/rand/v2"

	"algossip/internal/core"
	"algossip/internal/gossip"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
)

// GenProtocol is algebraic gossip with generation-based RLNC (see
// rlnc.GenConfig): the k messages are coded in independent generations,
// trading per-packet coefficient overhead against a coupon-collector
// effect across generations. It exists for the generation-size ablation
// (A7); the paper's protocol is the single-generation special case.
type GenProtocol struct {
	g     *graph.Graph
	model core.TimeModel
	sel   sim.PartnerSelector
	rng   *rand.Rand
	cfg   rlnc.GenConfig

	nodes     []*rlnc.GenNode
	staged    []genDelivery
	traffic   gossip.Traffic
	doneSeen  []bool
	doneCount int
	round     int
	slots     int
}

type genDelivery struct {
	to  core.NodeID
	pkt *rlnc.GenPacket
}

var _ sim.Protocol = (*GenProtocol)(nil)

// NewGen constructs a generation-coded gossip protocol; seed messages with
// Seed before running. Contacts are EXCHANGE.
func NewGen(g *graph.Graph, model core.TimeModel, sel sim.PartnerSelector, cfg rlnc.GenConfig, rng *rand.Rand) (*GenProtocol, error) {
	n := g.N()
	p := &GenProtocol{
		g:     g,
		model: model,
		sel:   sel,
		rng:   rng,
		cfg:   cfg,
		nodes: make([]*rlnc.GenNode, n),
	}
	for i := range p.nodes {
		node, err := rlnc.NewGenNode(cfg)
		if err != nil {
			return nil, fmt.Errorf("algebraic: node %d: %w", i, err)
		}
		p.nodes[i] = node
	}
	return p, nil
}

// Seed places message msg (global index) at node v.
func (p *GenProtocol) Seed(v core.NodeID, msg rlnc.Message) {
	p.nodes[v].Seed(msg)
	p.refreshDone(v)
}

// SeedAll places message i at node assign[i]; msgs may be nil in rank-only
// mode.
func (p *GenProtocol) SeedAll(assign []core.NodeID, msgs []rlnc.Message) error {
	if len(assign) != p.cfg.K {
		return fmt.Errorf("algebraic: assignment length %d != k %d", len(assign), p.cfg.K)
	}
	for i, v := range assign {
		msg := rlnc.Message{Index: i}
		if msgs != nil {
			msg = msgs[i]
		}
		p.Seed(v, msg)
	}
	return nil
}

// Name implements sim.Protocol.
func (p *GenProtocol) Name() string {
	return fmt.Sprintf("gen-algebraic-gossip(g=%d)", p.cfg.GenSize)
}

// OnWake implements sim.Protocol (EXCHANGE with a selected partner).
func (p *GenProtocol) OnWake(v core.NodeID) {
	if p.model == core.Asynchronous {
		p.slots++
		p.round = p.slots / p.g.N()
	}
	u := p.sel.Partner(v, p.rng)
	if u == core.NilNode {
		return
	}
	p.send(v, u)
	p.send(u, v)
}

func (p *GenProtocol) send(from, to core.NodeID) {
	pkt := p.nodes[from].Emit(p.rng)
	if pkt == nil {
		return
	}
	p.traffic.Sent++
	if p.model == core.Synchronous {
		p.staged = append(p.staged, genDelivery{to: to, pkt: pkt})
		return
	}
	p.apply(to, pkt)
}

func (p *GenProtocol) apply(to core.NodeID, pkt *rlnc.GenPacket) {
	if p.nodes[to].Receive(pkt) {
		p.traffic.Helpful++
		p.refreshDone(to)
	} else {
		p.traffic.Useless++
	}
}

// refreshDone counts node v's completion exactly once (CanDecode is
// monotone, but v is re-checked on every helpful packet).
func (p *GenProtocol) refreshDone(v core.NodeID) {
	if !p.nodes[v].CanDecode() {
		return
	}
	if p.doneSeen == nil {
		p.doneSeen = make([]bool, len(p.nodes))
	}
	if !p.doneSeen[v] {
		p.doneSeen[v] = true
		p.doneCount++
	}
}

// BeginRound implements sim.Protocol.
func (p *GenProtocol) BeginRound(round int) { p.round = round }

// EndRound implements sim.Protocol.
func (p *GenProtocol) EndRound(round int) {
	p.round = round
	for _, d := range p.staged {
		p.apply(d.to, d.pkt)
	}
	p.staged = p.staged[:0]
}

// Done implements sim.Protocol.
func (p *GenProtocol) Done() bool { return p.doneCount == len(p.nodes) }

// Rank returns node v's total rank.
func (p *GenProtocol) Rank(v core.NodeID) int { return p.nodes[v].Rank() }

// Node returns node v's generation-coded state.
func (p *GenProtocol) Node(v core.NodeID) *rlnc.GenNode { return p.nodes[v] }

// Traffic returns the protocol's transmission counters.
func (p *GenProtocol) Traffic() gossip.Traffic { return p.traffic }
