package algebraic

import (
	"testing"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
)

// steadyProtocol runs a protocol to completion so every node is at full
// rank — the steady state in which the pooled hot path must be
// allocation-free.
func steadyProtocol(t testing.TB, q int) *Protocol {
	t.Helper()
	g := graph.Complete(16)
	cfg := Config{RLNC: rlnc.Config{Field: gf.MustNew(q), K: 8, RankOnly: true}}
	p, err := New(g, core.Synchronous, sim.NewUniform(g), cfg, core.NewRand(core.SplitSeed(3, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SeedAll(RoundRobinAssign(8, g.N()), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(g, core.Synchronous, p, core.SplitSeed(3, 2)).Run(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAllocsSteadyStateRound pins zero allocations for a whole
// synchronous protocol round (every node wakes, stages, applies) once
// ranks have saturated: the packet freelist, the staged buffer, and the
// matrix scratch are all warm, so nothing on the send/receive path may
// allocate — for the bit-packed GF(2) backend and the generic GF(256)
// backend alike.
func TestAllocsSteadyStateRound(t *testing.T) {
	for _, tc := range []struct {
		name string
		q    int
	}{
		{"gf2-bit", 2},
		{"gf256-generic", 256},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := steadyProtocol(t, tc.q)
			n := 16
			round := 1 << 20 // past any real round; only the clock label
			// Warm one round so staged/freelist reach their steady capacity.
			p.BeginRound(round)
			for v := 0; v < n; v++ {
				p.OnWake(core.NodeID(v))
			}
			p.EndRound(round)
			allocs := testing.AllocsPerRun(50, func() {
				round++
				p.BeginRound(round)
				for v := 0; v < n; v++ {
					p.OnWake(core.NodeID(v))
				}
				p.EndRound(round)
			})
			if allocs != 0 {
				t.Fatalf("steady-state round allocated %.1f times, want 0", allocs)
			}
		})
	}
}

// TestStagedBufferShrinks locks the bounded-shrink fix: a burst round
// that stages far more deliveries than the following rounds must not pin
// its peak capacity forever — the decaying high-water mark releases it
// within a bounded number of quiet rounds.
func TestStagedBufferShrinks(t *testing.T) {
	p := steadyProtocol(t, 2)

	// Burst: stage a large artificial round by sending many times.
	p.BeginRound(1)
	for i := 0; i < 64; i++ {
		for v := 0; v < 16; v++ {
			p.OnWake(core.NodeID(v))
		}
	}
	burst := len(p.staged)
	if burst < 1024 {
		t.Fatalf("burst staged only %d deliveries", burst)
	}
	p.EndRound(1)
	if cap(p.staged) < 1024 {
		t.Fatalf("burst capacity %d unexpectedly small", cap(p.staged))
	}

	// Quiet rounds: one wake per round. The decaying peak must release
	// the burst capacity (and trim the packet freelist with it).
	for r := 2; r < 80; r++ {
		p.BeginRound(r)
		p.OnWake(core.NodeID(r % 16))
		p.EndRound(r)
	}
	if cap(p.staged) >= burst/4 {
		t.Fatalf("staged capacity %d still holds the burst peak %d", cap(p.staged), burst)
	}
	if len(p.free) >= burst {
		t.Fatalf("freelist kept %d packets after shrink", len(p.free))
	}
}

// TestPacketPoolRecyclesOnLossAndDynamics checks the freelist keeps
// packets on every exit path: emitted-then-lost packets and staged
// deliveries dropped by a topology change return to the pool instead of
// leaking to the GC.
func TestPacketPoolRecyclesOnLossAndDynamics(t *testing.T) {
	g := graph.Complete(8)
	cfg := Config{
		RLNC:     rlnc.Config{Field: gf.MustNew(2), K: 4, RankOnly: true},
		LossRate: 0.5,
	}
	p, err := New(g, core.Synchronous, sim.NewUniform(g), cfg, core.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SeedAll(RoundRobinAssign(4, g.N()), nil); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 20; r++ {
		p.BeginRound(r)
		for v := 0; v < g.N(); v++ {
			p.OnWake(core.NodeID(v))
		}
		p.EndRound(r)
	}
	live := len(p.free)
	if live == 0 {
		t.Fatal("freelist empty after lossy rounds")
	}
	// Stage deliveries, then drop them all via a topology change to the
	// empty graph: every staged packet must land back in the pool.
	p.BeginRound(20)
	for v := 0; v < g.N(); v++ {
		p.OnWake(core.NodeID(v))
	}
	staged := len(p.staged)
	if staged == 0 {
		t.Fatal("nothing staged")
	}
	before := len(p.free)
	empty := graph.NewBuilder("empty", g.N()).Build()
	p.OnTopologyChange(sim.TopologyEvent{Round: 21, Graph: empty})
	if len(p.staged) != 0 {
		t.Fatalf("%d staged deliveries survived an empty topology", len(p.staged))
	}
	if len(p.free) != before+staged {
		t.Fatalf("freelist %d after drop, want %d", len(p.free), before+staged)
	}
}
