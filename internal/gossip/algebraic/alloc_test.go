package algebraic

import (
	"testing"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
)

// steadyProtocol runs a protocol to completion so every node is at full
// rank — the steady state in which the pooled hot path must be
// allocation-free.
func steadyProtocol(t testing.TB, q int) *Protocol {
	return steadyProtocolCfg(t, rlnc.Config{Field: gf.MustNew(q), K: 8, RankOnly: true})
}

func steadyProtocolCfg(t testing.TB, rcfg rlnc.Config) *Protocol {
	t.Helper()
	g := graph.Complete(16)
	cfg := Config{RLNC: rcfg}
	p, err := New(g, core.Synchronous, sim.NewUniform(g), cfg, core.NewRand(core.SplitSeed(3, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SeedAll(RoundRobinAssign(8, g.N()), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(g, core.Synchronous, p, core.SplitSeed(3, 2)).Run(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAllocsSteadyStateRound pins zero allocations for a whole
// synchronous protocol round (every node wakes, stages, applies) once
// ranks have saturated: the packet freelist, the staged buffer, and the
// matrix scratch are all warm, so nothing on the send/receive path may
// allocate — for the bit-packed GF(2), bit-sliced GF(2^m), and generic
// backends alike.
func TestAllocsSteadyStateRound(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  rlnc.Config
	}{
		{"gf2-bit", rlnc.Config{Field: gf.MustNew(2), K: 8, RankOnly: true}},
		{"gf16-sliced", rlnc.Config{Field: gf.MustNew(16), K: 8, RankOnly: true}},
		{"gf256-sliced", rlnc.Config{Field: gf.MustNew(256), K: 8, RankOnly: true}},
		{"gf256-generic", rlnc.Config{Field: gf.MustNew(256), K: 8, RankOnly: true, ForceGeneric: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := steadyProtocolCfg(t, tc.cfg)
			n := 16
			round := 1 << 20 // past any real round; only the clock label
			// Warm one round so staged/freelist reach their steady capacity.
			p.BeginRound(round)
			for v := 0; v < n; v++ {
				p.OnWake(core.NodeID(v))
			}
			p.EndRound(round)
			allocs := testing.AllocsPerRun(50, func() {
				round++
				p.BeginRound(round)
				for v := 0; v < n; v++ {
					p.OnWake(core.NodeID(v))
				}
				p.EndRound(round)
			})
			if allocs != 0 {
				t.Fatalf("steady-state round allocated %.1f times, want 0", allocs)
			}
		})
	}
}

// TestStagedBufferShrinks locks the bounded-shrink fix: a burst round
// that stages far more deliveries than the following rounds must not pin
// its peak capacity forever — the decaying high-water mark releases it
// within a bounded number of quiet rounds. Every node holds a seed but
// none is complete, so every send leg really stages (a full-rank
// receiver's delivery is skipped outright and would never enter the
// buffer).
func TestStagedBufferShrinks(t *testing.T) {
	g := graph.Complete(16)
	cfg := Config{RLNC: rlnc.Config{Field: gf.MustNew(2), K: 16, RankOnly: true}}
	p, err := New(g, core.Synchronous, sim.NewUniform(g), cfg, core.NewRand(core.SplitSeed(3, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SeedAll(RoundRobinAssign(16, g.N()), nil); err != nil {
		t.Fatal(err)
	}

	// Burst: stage a large artificial round by sending many times.
	p.BeginRound(1)
	for i := 0; i < 64; i++ {
		for v := 0; v < 16; v++ {
			p.OnWake(core.NodeID(v))
		}
	}
	burst := len(p.staged)
	if burst < 1024 {
		t.Fatalf("burst staged only %d deliveries", burst)
	}
	p.EndRound(1)
	if cap(p.staged) < 1024 {
		t.Fatalf("burst capacity %d unexpectedly small", cap(p.staged))
	}

	// Quiet rounds: one wake per round. The decaying peak must release
	// the burst capacity (and trim the packet freelist with it).
	for r := 2; r < 80; r++ {
		p.BeginRound(r)
		p.OnWake(core.NodeID(r % 16))
		p.EndRound(r)
	}
	if cap(p.staged) >= burst/4 {
		t.Fatalf("staged capacity %d still holds the burst peak %d", cap(p.staged), burst)
	}
	if len(p.free) >= burst {
		t.Fatalf("freelist kept %d packets after shrink", len(p.free))
	}
}

// TestPacketPoolRecyclesOnLossAndDynamics checks the freelist keeps
// packets on every exit path: emitted-then-lost packets and staged
// deliveries dropped by a topology change return to the pool instead of
// leaking to the GC.
func TestPacketPoolRecyclesOnLossAndDynamics(t *testing.T) {
	g := graph.Complete(8)
	cfg := Config{
		RLNC:     rlnc.Config{Field: gf.MustNew(2), K: 4, RankOnly: true},
		LossRate: 0.5,
	}
	p, err := New(g, core.Synchronous, sim.NewUniform(g), cfg, core.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SeedAll(RoundRobinAssign(4, g.N()), nil); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 20; r++ {
		p.BeginRound(r)
		for v := 0; v < g.N(); v++ {
			p.OnWake(core.NodeID(v))
		}
		p.EndRound(r)
	}
	live := len(p.free)
	if live == 0 {
		t.Fatal("freelist empty after lossy rounds")
	}
	// By now every node is complete and sends to full-rank receivers skip
	// the pool entirely; churn-reset every node so the next round stages
	// real deliveries again.
	for v := 0; v < g.N(); v++ {
		p.resetNode(core.NodeID(v))
	}
	// Stage deliveries, then drop them all via a topology change to the
	// empty graph: every staged packet must land back in the pool.
	p.BeginRound(20)
	for v := 0; v < g.N(); v++ {
		p.OnWake(core.NodeID(v))
	}
	staged := len(p.staged)
	if staged == 0 {
		t.Fatal("nothing staged")
	}
	before := len(p.free)
	empty := graph.NewBuilder("empty", g.N()).Build()
	p.OnTopologyChange(sim.TopologyEvent{Round: 21, Graph: empty})
	if len(p.staged) != 0 {
		t.Fatalf("%d staged deliveries survived an empty topology", len(p.staged))
	}
	if len(p.free) != before+staged {
		t.Fatalf("freelist %d after drop, want %d", len(p.free), before+staged)
	}
}

// TestSimTrajectorySlicedVsGeneric pins the backend-selection determinism
// contract at whole-simulation scale: a fixed-seed uniform-AG run over
// GF(2^m) produces the identical stopping time and per-node completion
// rounds whether the codec uses the bit-sliced backend or the generic one
// (ForceGeneric) — backend selection never moves a trajectory.
func TestSimTrajectorySlicedVsGeneric(t *testing.T) {
	for _, q := range []int{4, 16, 256} {
		g := graph.Complete(24)
		run := func(forceGeneric bool) (int, []int) {
			cfg := Config{RLNC: rlnc.Config{
				Field: gf.MustNew(q), K: 12, RankOnly: true, ForceGeneric: forceGeneric,
			}}
			p, err := New(g, core.Synchronous, sim.NewUniform(g), cfg, core.NewRand(core.SplitSeed(9, 1)))
			if err != nil {
				t.Fatal(err)
			}
			if err := p.SeedAll(RoundRobinAssign(12, g.N()), nil); err != nil {
				t.Fatal(err)
			}
			res, err := sim.New(g, core.Synchronous, p, core.SplitSeed(9, 2)).Run()
			if err != nil {
				t.Fatal(err)
			}
			return res.Rounds, p.DoneRounds()
		}
		slcRounds, slcDone := run(false)
		genRounds, genDone := run(true)
		if slcRounds != genRounds {
			t.Fatalf("q=%d: stopping time moved across backends (%d vs %d)", q, slcRounds, genRounds)
		}
		for v := range slcDone {
			if slcDone[v] != genDone[v] {
				t.Fatalf("q=%d: node %d completion round moved (%d vs %d)", q, v, slcDone[v], genDone[v])
			}
		}
	}
}
