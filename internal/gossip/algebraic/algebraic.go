// Package algebraic implements the algebraic gossip protocol (paper
// Sections 2 and 3): every message a node sends is a uniformly random
// linear combination of the packets it stores (RLNC), and a node finishes
// once its equation matrix reaches rank k.
//
// The protocol is parameterized by the communication model
// (sim.PartnerSelector): with sim.Uniform it is the *uniform algebraic
// gossip* of Theorem 1; with sim.Fixed it is the on-tree exchange of TAG's
// Phase 2 (Lemma 1); with sim.RoundRobin it is a quasirandom variant.
package algebraic

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/gossip"
	"algossip/internal/graph"
	"algossip/internal/queueing"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
)

// Config parameterizes an algebraic gossip run.
type Config struct {
	// RLNC is the coding configuration (field, k, payload length, mode).
	RLNC rlnc.Config
	// Action is the information-flow direction on contact; the paper's
	// results are for Exchange, the default when zero.
	Action core.Action
	// DiscardDuplicatePerRound enables the simplifying assumption from the
	// proof of Theorem 1 for the synchronous model: if a node receives two
	// messages from the same sender in one round, the second is discarded.
	// The deployed protocol keeps both; enabling this matches the analyzed
	// (slower or equal) process.
	DiscardDuplicatePerRound bool
	// LossRate drops each transmitted packet independently with this
	// probability (failure injection). Network coding tolerates loss
	// gracefully: the expected slowdown is about 1/(1-LossRate), because
	// every surviving packet is still helpful with probability >= 1-1/q.
	LossRate float64
	// Traits, when non-nil, assigns each node an adversarial or
	// heterogeneous profile (see adversary.go); it must have exactly one
	// entry per node. Nil reproduces the classic all-honest protocol.
	Traits []NodeTraits
	// TraitSeed seeds the class RNG that draws straggler service times —
	// a stream separate from the protocol RNG, so class scheduling never
	// perturbs the protocol's pinned randomness. Only read when Traits
	// declares stragglers.
	TraitSeed uint64
}

// delivery is one staged packet transfer (synchronous model). skip marks
// a delivery whose verdict was predetermined at send time (receiver
// already at full rank): the packet was never filled and apply only
// counts it as useless.
type delivery struct {
	to, from core.NodeID
	pkt      *rlnc.Packet
	skip     bool
}

// Protocol is the algebraic gossip state machine. It implements
// sim.Protocol. Not safe for concurrent use.
type Protocol struct {
	g     *graph.Graph
	model core.TimeModel
	sel   sim.PartnerSelector
	rng   *rand.Rand
	cfg   Config

	nodes   []*rlnc.Node
	initial [][]rlnc.Message // per-node initial seeds, replayed on churn reset
	seeded  int              // number of distinct message indices seeded

	staged     []delivery
	stagedPeak int             // decaying high-water mark of staged length
	free       []*rlnc.Packet  // recycled packets; backing arrays are reused by EmitInto
	dupSeen    map[dupKey]bool // reusable per-round dedup set (DiscardDuplicatePerRound)
	traffic    gossip.Traffic
	doneCount  int
	doneRound  []int // round at which each node reached rank k, -1 before
	round      int   // current round (sync: from BeginRound; async: slots/n)
	slots      int   // async wakeup counter
	obs        sim.Observer

	shard    *shardCore     // sharded-execution state (nil = classic wake loop)
	slotPkts []*rlnc.Packet // pooled per-slot packets for sharded staging

	// Adversarial/heterogeneous state (nil/zero for classic runs).
	traits     []NodeTraits       // per-node profiles (nil = all honest)
	classRng   *rand.Rand         // straggler service-time stream (TraitSeed)
	service    []queueing.Sampler // per-node service samplers (nil entries = unthrottled)
	busyUntil  []int              // straggler: first round the node may transmit again
	verify     bool               // any Byzantine node => receivers verify every packet
	verifyCost int                // modeled field ops per verification: k + r
}

// dupKey identifies one (receiver, sender) pair for per-round dedup.
type dupKey struct{ to, from core.NodeID }

var (
	_ sim.Protocol        = (*Protocol)(nil)
	_ sim.TopologyAware   = (*Protocol)(nil)
	_ sim.ShardedProtocol = (*Protocol)(nil)
)

// New constructs an algebraic gossip protocol over g. The caller seeds the
// k initial messages with Seed before running.
func New(g *graph.Graph, model core.TimeModel, sel sim.PartnerSelector, cfg Config, rng *rand.Rand) (*Protocol, error) {
	if cfg.Action == 0 {
		cfg.Action = core.Exchange
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		return nil, fmt.Errorf("algebraic: loss rate %v outside [0, 1)", cfg.LossRate)
	}
	n := g.N()
	p := &Protocol{
		g:         g,
		model:     model,
		sel:       sel,
		rng:       rng,
		cfg:       cfg,
		nodes:     make([]*rlnc.Node, n),
		initial:   make([][]rlnc.Message, n),
		doneRound: make([]int, n),
		obs:       sim.NopObserver{},
	}
	for i := range p.nodes {
		node, err := rlnc.NewNode(cfg.RLNC)
		if err != nil {
			return nil, fmt.Errorf("algebraic: node %d: %w", i, err)
		}
		p.nodes[i] = node
	}
	for i := range p.doneRound {
		p.doneRound[i] = -1
	}
	if err := p.initTraits(cfg); err != nil {
		return nil, err
	}
	return p, nil
}

// initTraits validates and installs the adversarial/heterogeneous
// profiles (no-op when Config.Traits is nil).
func (p *Protocol) initTraits(cfg Config) error {
	if cfg.Traits == nil {
		return nil
	}
	n := len(p.nodes)
	if len(cfg.Traits) != n {
		return fmt.Errorf("algebraic: %d traits for %d nodes", len(cfg.Traits), n)
	}
	if cfg.DiscardDuplicatePerRound {
		return errors.New("algebraic: traits are incompatible with DiscardDuplicatePerRound")
	}
	p.traits = cfg.Traits
	p.service = make([]queueing.Sampler, n)
	p.busyUntil = make([]int, n)
	for i, t := range cfg.Traits {
		if err := t.validate(); err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
		if t.Slow >= 2 {
			p.service[i] = queueing.Geometric(1 / float64(t.Slow))
			if p.classRng == nil {
				p.classRng = core.NewRand(cfg.TraitSeed)
			}
		}
		if t.byzantine() {
			p.verify = true
		}
	}
	p.verifyCost = cfg.RLNC.K + cfg.RLNC.PayloadLen
	if cfg.RLNC.RankOnly {
		// Rank-only simulations still model the cost the real verifier
		// would pay; r = 1 symbol is the minimum payload (as MessageBits).
		p.verifyCost = cfg.RLNC.K + 1
	}
	return nil
}

// SetObserver installs a progress observer (must be called before running).
func (p *Protocol) SetObserver(obs sim.Observer) { p.obs = obs }

// EnableSharded switches the protocol to sharded-execution semantics (see
// shard.go and sim.ShardedProtocol): per-node RNG streams derived from
// seed, per-node staging slots, ordered commit, and — on static
// topologies — retirement of provably inert nodes. Must be called before
// the run; the engine must be configured with sim.WithShards. The
// trajectory is identical for every shard count but differs from the
// classic serial semantics for the same seed.
func (p *Protocol) EnableSharded(seed uint64, retire bool) error {
	if p.cfg.DiscardDuplicatePerRound {
		return errors.New("algebraic: sharded execution does not support DiscardDuplicatePerRound")
	}
	if p.model != core.Synchronous {
		return errors.New("algebraic: sharded execution requires the synchronous model")
	}
	if p.traits != nil {
		return errors.New("algebraic: sharded execution does not support adversarial/heterogeneous traits")
	}
	p.slotPkts = make([]*rlnc.Packet, 2*len(p.nodes))
	for i := range p.slotPkts {
		p.slotPkts[i] = &rlnc.Packet{}
	}
	p.shard = newShardCore(p, p.sel, p.cfg.Action, p.cfg.LossRate,
		p.g, seed, retire, &p.traffic)
	return nil
}

// shardOps implementation (see shard.go).
func (p *Protocol) rank(v core.NodeID) int  { return p.nodes[v].Rank() }
func (p *Protocol) full(v core.NodeID) bool { return p.nodes[v].CanDecode() }
func (p *Protocol) emitSlot(from core.NodeID, rng *rand.Rand, slot int) bool {
	return p.nodes[from].EmitInto(rng, p.slotPkts[slot])
}
func (p *Protocol) applySlot(to core.NodeID, slot int) bool {
	if p.nodes[to].ReceiveOwned(p.slotPkts[slot]) {
		p.refreshDone(to)
		return true
	}
	return false
}

// ActiveWords implements sim.ShardedProtocol (nil until EnableSharded).
func (p *Protocol) ActiveWords() []uint64 {
	if p.shard == nil {
		return nil
	}
	return p.shard.activeWords()
}

// WakeShard implements sim.ShardedProtocol.
func (p *Protocol) WakeShard(lo, hi int) { p.shard.wakeRange(lo, hi) }

// CommitRound implements sim.ShardedProtocol.
func (p *Protocol) CommitRound(round int) {
	p.round = round
	p.shard.commit()
}

// Seed places message msg at node v (a node can hold more than one initial
// message). In rank-only mode the payload may be nil.
func (p *Protocol) Seed(v core.NodeID, msg rlnc.Message) {
	p.nodes[v].Seed(msg)
	p.initial[v] = append(p.initial[v], msg)
	p.seeded++
	p.refreshDone(v)
}

// SeedAll distributes messages according to assign: message i is placed at
// node assign[i]. msgs[i] provides the payloads; msgs may be nil in
// rank-only mode, in which case bare indices are seeded.
func (p *Protocol) SeedAll(assign []core.NodeID, msgs []rlnc.Message) error {
	if len(assign) != p.cfg.RLNC.K {
		return errors.New("algebraic: assignment length must equal k")
	}
	for i, v := range assign {
		msg := rlnc.Message{Index: i}
		if msgs != nil {
			msg = msgs[i]
			if msg.Index != i {
				return fmt.Errorf("algebraic: message %d has index %d", i, msg.Index)
			}
		}
		p.Seed(v, msg)
	}
	return nil
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string {
	return fmt.Sprintf("algebraic-gossip(%s,%s)", p.sel.Name(), p.cfg.Action)
}

// OnWake implements sim.Protocol: node v contacts sel.Partner(v) and
// transfers packets according to the configured action.
func (p *Protocol) OnWake(v core.NodeID) {
	if p.model == core.Asynchronous {
		p.slots++
		p.round = p.slots / p.g.N()
	}
	u := p.sel.Partner(v, p.rng)
	if u == core.NilNode {
		return
	}
	switch p.cfg.Action {
	case core.Push:
		p.sendLeg(v, u)
	case core.Pull:
		p.sendLeg(u, v)
	case core.Exchange:
		p.sendLeg(v, u)
		p.sendLeg(u, v)
	}
}

// OnTopologyChange implements sim.TopologyAware: partner selection
// re-targets to the new graph, staged deliveries the new topology can no
// longer carry are dropped, and churned-out nodes restart from their
// initial seeds. Surviving nodes keep their subspace — received
// equations stay valid on any topology — which is what makes network
// coding robust under churn. A reset node's completion round is cleared
// (and re-reported to the observer when it re-completes), so Done can
// transiently regress on dynamic runs.
func (p *Protocol) OnTopologyChange(ev sim.TopologyEvent) {
	p.g = ev.Graph
	if p.shard != nil {
		p.shard.g = ev.Graph
	}
	// The event fires at the boundary before BeginRound(ev.Round), so the
	// clock is still on the previous round; advance it first so resets
	// that immediately re-complete are stamped with the rejoin round in
	// both time models.
	p.round = ev.Round
	ev.Retarget(p.sel)
	kept := p.staged[:0]
	for _, d := range p.staged {
		if ev.Deliverable(d.from, d.to) {
			kept = append(kept, d)
		} else {
			p.recycle(d.pkt)
		}
	}
	p.staged = kept
	for _, v := range ev.Reset {
		p.resetNode(v)
	}
}

// resetNode reinstalls node v as a fresh machine holding only its
// initial seeds.
func (p *Protocol) resetNode(v core.NodeID) {
	p.nodes[v] = rlnc.MustNewNode(p.cfg.RLNC)
	if p.doneRound[v] >= 0 {
		p.doneRound[v] = -1
		p.doneCount--
	}
	for _, msg := range p.initial[v] {
		p.nodes[v].Seed(msg)
	}
	p.refreshDone(v)
}

// Tick advances the protocol's internal asynchronous clock without any
// communication. Wrapper protocols (TAG) call it on wakeups they spend on
// another phase, so per-node completion rounds stay calibrated.
func (p *Protocol) Tick() {
	if p.model == core.Asynchronous {
		p.slots++
		p.round = p.slots / p.g.N()
	}
}

// getPacket pops a recycled packet (or allocates the first few). Pooled
// packets keep their backing arrays, which EmitInto refills in place, so
// the steady-state send path allocates nothing.
func (p *Protocol) getPacket() *rlnc.Packet {
	if n := len(p.free); n > 0 {
		pkt := p.free[n-1]
		p.free = p.free[:n-1]
		return pkt
	}
	return &rlnc.Packet{}
}

// recycle returns a packet (whose contents ReceiveOwned may have
// clobbered) to the freelist for the next EmitInto.
func (p *Protocol) recycle(pkt *rlnc.Packet) {
	p.free = append(p.free, pkt)
}

// send emits a random combination from node `from` toward node `to`. In the
// synchronous model the delivery is staged until EndRound (information
// received in a round is available only at the next round); in the
// asynchronous model it applies immediately. With LossRate set, the packet
// may be dropped in flight.
func (p *Protocol) send(from, to core.NodeID) {
	if p.traits != nil {
		// Straggler gating first: a throttled node drops the leg whatever
		// its behavior (a slow polluter pollutes slowly).
		if !p.serviceReady(from) {
			return
		}
		switch p.traits[from].Behavior {
		case FreeRide:
			return
		case Replay:
			p.sendByz(from, to, false)
			return
		case Pollute:
			p.sendByz(from, to, true)
			return
		}
	}
	// A receiver already at full rank discards any combination: the
	// outcome (and every counter) is predetermined, so consume exactly the
	// randomness the emit would draw (SkipEmit) and skip building the
	// combination — the delivery still flows through the normal pool /
	// staging path (flagged skip) so buffer dynamics are identical, and
	// apply-time accounting records the Useless verdict any real packet
	// would have received. Rank never decreases within a round, so the
	// verdict holds at delivery time. DiscardDuplicatePerRound is excluded
	// because its dedup changes which staged packets reach apply.
	skip := !p.cfg.DiscardDuplicatePerRound && p.nodes[to].CanDecode()
	pkt := p.getPacket()
	if skip {
		if !p.nodes[from].SkipEmit(p.rng) {
			p.recycle(pkt)
			return // rank-0 sender: nothing to say, no randomness drawn
		}
	} else if !p.nodes[from].EmitInto(p.rng, pkt) {
		p.recycle(pkt)
		return
	}
	p.traffic.Sent++
	if p.cfg.LossRate > 0 && p.rng.Float64() < p.cfg.LossRate {
		p.traffic.Dropped++
		p.recycle(pkt)
		return // lost in flight
	}
	if p.model == core.Synchronous {
		p.staged = append(p.staged, delivery{to: to, from: from, pkt: pkt, skip: skip})
		return
	}
	if skip {
		p.verifyAccount()
		p.traffic.Useless++
	} else {
		p.apply(to, pkt)
	}
	p.recycle(pkt)
}

// apply lets node `to` receive the packet and updates completion tracking.
// The packet is pool-owned: ReceiveOwned reduces directly in its backing
// arrays (clobbering the contents, never retaining them), and the caller
// recycles it afterwards.
func (p *Protocol) apply(to core.NodeID, pkt *rlnc.Packet) {
	p.verifyAccount()
	if p.verify && pkt.Corrupt {
		// Verification caught the pollution; the packet never reaches the
		// eliminator and counts as neither helpful nor useless.
		p.traffic.Polluted++
		return
	}
	if p.nodes[to].ReceiveOwned(pkt) {
		p.traffic.Helpful++
		p.refreshDone(to)
	} else {
		p.traffic.Useless++
	}
}

// refreshDone records the completion round for node v if it just reached
// full rank.
func (p *Protocol) refreshDone(v core.NodeID) {
	if p.doneRound[v] < 0 && p.nodes[v].CanDecode() {
		p.doneRound[v] = p.round
		p.doneCount++
		p.obs.NodeDone(v, p.round)
	}
}

// BeginRound implements sim.Protocol.
func (p *Protocol) BeginRound(round int) { p.round = round }

// EndRound implements sim.Protocol: applies the staged deliveries and
// recycles their packets. With DiscardDuplicatePerRound, only the first
// packet from each (sender, receiver) pair survives the round.
func (p *Protocol) EndRound(round int) {
	p.round = round
	if p.cfg.DiscardDuplicatePerRound {
		if p.dupSeen == nil {
			p.dupSeen = make(map[dupKey]bool, len(p.staged))
		} else {
			clear(p.dupSeen)
		}
		for _, d := range p.staged {
			key := dupKey{d.to, d.from}
			if !p.dupSeen[key] {
				p.dupSeen[key] = true
				p.apply(d.to, d.pkt)
			}
			p.recycle(d.pkt)
		}
	} else {
		for _, d := range p.staged {
			if d.skip {
				p.verifyAccount()
				p.traffic.Useless++
			} else {
				p.apply(d.to, d.pkt)
			}
			p.recycle(d.pkt)
		}
	}
	p.resetStaged()
}

// resetStaged empties the staged buffer for reuse next round, shrinking
// it (and the packet freelist, which mirrors its capacity needs) when the
// capacity has grown far past a decaying high-water mark — so one burst
// round on a dense graph does not pin peak memory for the rest of a long
// run, while steady traffic never reallocates.
func (p *Protocol) resetStaged() {
	used := len(p.staged)
	if used > p.stagedPeak {
		p.stagedPeak = used
	} else {
		// Exponential decay keeps the mark tracking recent rounds only.
		p.stagedPeak -= (p.stagedPeak - used) / 8
	}
	const minShrinkCap = 64
	if cap(p.staged) > minShrinkCap && cap(p.staged) > 4*p.stagedPeak {
		p.staged = make([]delivery, 0, 2*p.stagedPeak)
		if len(p.free) > 2*p.stagedPeak {
			p.free = append([]*rlnc.Packet(nil), p.free[:2*p.stagedPeak]...)
		}
		return
	}
	p.staged = p.staged[:0]
}

// Done implements sim.Protocol: true once every node has rank k.
func (p *Protocol) Done() bool { return p.doneCount == len(p.nodes) }

// Traffic returns the protocol's transmission counters.
func (p *Protocol) Traffic() gossip.Traffic { return p.traffic }

// MessageBits returns the wire size of one of this protocol's messages.
func (p *Protocol) MessageBits() int { return gossip.MessageBits(p.cfg.RLNC) }

// Rank returns node v's current rank.
func (p *Protocol) Rank(v core.NodeID) int { return p.nodes[v].Rank() }

// Node returns node v's RLNC state (for decoding in tests and examples).
func (p *Protocol) Node(v core.NodeID) *rlnc.Node { return p.nodes[v] }

// DoneRounds returns, per node, the round at which it reached rank k
// (-1 if it has not). The slice is a copy.
func (p *Protocol) DoneRounds() []int {
	return append([]int(nil), p.doneRound...)
}

// RoundRobinAssign places message i at node i mod n — the all-to-all
// pattern when k == n, and an even spread otherwise.
func RoundRobinAssign(k, n int) []core.NodeID {
	out := make([]core.NodeID, k)
	for i := range out {
		out[i] = core.NodeID(i % n)
	}
	return out
}

// SingleAssign places all k messages at one origin node.
func SingleAssign(k int, origin core.NodeID) []core.NodeID {
	out := make([]core.NodeID, k)
	for i := range out {
		out[i] = origin
	}
	return out
}

// RandomAssign places each message at an independently uniform node.
func RandomAssign(k, n int, rng *rand.Rand) []core.NodeID {
	out := make([]core.NodeID, k)
	for i := range out {
		out[i] = core.NodeID(rng.IntN(n))
	}
	return out
}

// RandomMessages builds k messages with uniform random payloads of length r
// for payload-mode runs.
func RandomMessages(cfg rlnc.Config, rng *rand.Rand) []rlnc.Message {
	msgs := make([]rlnc.Message, cfg.K)
	for i := range msgs {
		msgs[i] = rlnc.Message{Index: i}
		if !cfg.RankOnly {
			msgs[i].Payload = randVector(cfg, rng)
		}
	}
	return msgs
}

func randVector(cfg rlnc.Config, rng *rand.Rand) []byte {
	return gf.RandBytes(cfg.Field, cfg.PayloadLen, rng)
}
