package algebraic

import (
	"testing"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
)

// FuzzAdversarialPacket drives uniform AG through arbitrary adversarial
// populations: the fuzzer picks the topology size, message count, field
// mode and a per-node behavior table (replayers, polluters, free-riders,
// capped at half the nodes so honest progress stays possible). The
// invariant is the robustness claim itself: no combination of mutated or
// polluted packets may panic the receive path, and every node — honest
// and Byzantine alike — must still reach full rank on a complete graph
// within a generous round budget. Pollution must also be *visible*: a
// run with an active polluter that detects zero polluted packets means
// the verification layer silently vanished.
func FuzzAdversarialPacket(f *testing.F) {
	f.Add(uint8(8), uint8(4), false, uint64(1), []byte{1, 2, 3})
	f.Add(uint8(12), uint8(6), true, uint64(7), []byte{3, 3, 3, 3})
	f.Add(uint8(16), uint8(0), false, uint64(42), []byte{2, 0, 1, 0, 2})
	f.Add(uint8(4), uint8(1), true, uint64(9), []byte{})
	f.Fuzz(func(t *testing.T, nRaw, kRaw uint8, payload bool, seed uint64, roles []byte) {
		n := 4 + int(nRaw)%13 // 4..16
		k := 1 + int(kRaw)%(n/2)

		// Node 0 stays honest and the Byzantine fraction is capped at 1/2:
		// beyond that the claim under test (honest convergence) no longer
		// holds in general, so fuzzing it would only find false alarms.
		traits := make([]NodeTraits, n)
		byz := 0
		for v := 1; v < n && byz < n/2; v++ {
			if v-1 >= len(roles) {
				break
			}
			switch roles[v-1] % 4 {
			case 1:
				traits[v] = NodeTraits{Behavior: FreeRide}
				byz++
			case 2:
				traits[v] = NodeTraits{Behavior: Replay}
				byz++
			case 3:
				traits[v] = NodeTraits{Behavior: Pollute}
				byz++
			}
		}

		cfg := Config{RLNC: rlnc.Config{Field: gf.MustNew(2), K: k, RankOnly: true}, Traits: traits}
		if payload {
			cfg.RLNC = rlnc.Config{Field: gf.MustNew(256), K: k, PayloadLen: 4}
		}
		g := graph.Complete(n)
		p, err := New(g, core.Synchronous, sim.NewUniform(g), cfg, core.NewRand(core.SplitSeed(seed, 1)))
		if err != nil {
			t.Fatal(err)
		}
		var msgs []rlnc.Message
		if payload {
			msgs = RandomMessages(cfg.RLNC, core.NewRand(core.SplitSeed(seed, 50)))
		}
		if err := p.SeedAll(RoundRobinAssignOver(k, HonestNodes(traits)), msgs); err != nil {
			t.Fatal(err)
		}
		res, err := sim.New(g, core.Synchronous, p, core.SplitSeed(seed, 2),
			sim.WithMaxRounds(1<<14)).Run()
		if err != nil {
			t.Fatalf("n=%d k=%d byz=%d payload=%v: no convergence: %v", n, k, byz, payload, err)
		}
		for v, r := range p.DoneRounds() {
			if r < 0 {
				t.Fatalf("n=%d k=%d byz=%d: node %d never completed (rounds=%d)", n, k, byz, v, res.Rounds)
			}
		}
		tr := p.Traffic()
		if byz > 0 && tr.Verified == 0 {
			t.Fatalf("n=%d k=%d byz=%d: adversarial run verified nothing", n, k, byz)
		}
		polluters := 0
		for _, nt := range traits {
			if nt.Behavior == Pollute {
				polluters++
			}
		}
		if polluters > 0 && tr.Polluted == 0 {
			t.Fatalf("n=%d k=%d polluters=%d: no pollution detected", n, k, polluters)
		}
	})
}
