package algebraic

import (
	"math"
	"testing"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
)

func rankOnlyCfg(k int) Config {
	return Config{RLNC: rlnc.Config{Field: gf.MustNew(2), K: k, RankOnly: true}}
}

func run(t *testing.T, g *graph.Graph, model core.TimeModel, cfg Config, seed uint64, maxRounds int) (*Protocol, sim.Result) {
	t.Helper()
	p, err := New(g, model, sim.NewUniform(g), cfg, core.NewRand(core.SplitSeed(seed, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SeedAll(RoundRobinAssign(cfg.RLNC.K, g.N()), nil); err != nil {
		t.Fatal(err)
	}
	res, err := sim.New(g, model, p, core.SplitSeed(seed, 2), sim.WithMaxRounds(maxRounds)).Run()
	if err != nil {
		t.Fatalf("did not complete: %v", err)
	}
	return p, res
}

// TestUniformAGCompletesEverywhere runs uniform algebraic gossip with
// EXCHANGE on every topology family, in both time models, and asserts the
// Theorem 1 upper bound with generous constants as well as the Ω(k) lower
// bound from Theorem 3's proof.
func TestUniformAGCompletesEverywhere(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Line(24),
		graph.Ring(24),
		graph.Grid(5, 5),
		graph.BinaryTree(31),
		graph.Complete(16),
		graph.Star(16),
		graph.Barbell(16),
		graph.Hypercube(4),
	}
	for _, g := range graphs {
		for _, model := range []core.TimeModel{core.Synchronous, core.Asynchronous} {
			g, model := g, model
			t.Run(g.Name()+"/"+model.String(), func(t *testing.T) {
				k := g.N() / 2
				p, res := run(t, g, model, rankOnlyCfg(k), 7, 1<<18)
				n := g.N()
				// Upper bound: C * (k + log n + D) * Δ with a generous C.
				bound := 24 * float64(k+g.Diameter()+int(math.Log2(float64(n)))+1) * float64(g.MaxDegree())
				if float64(res.Rounds) > bound {
					t.Errorf("rounds = %d exceeds generous Theorem 1 bound %.0f", res.Rounds, bound)
				}
				// Lower bound Ω(k): at least (kn - k)/2n rounds in sync.
				if model == core.Synchronous {
					lower := (k*n - k) / (2 * n)
					if res.Rounds < lower {
						t.Errorf("rounds = %d below information-theoretic floor %d", res.Rounds, lower)
					}
				}
				// Every node completed, and no completion round exceeds the total.
				for v, r := range p.DoneRounds() {
					if r < 0 {
						t.Fatalf("node %d never completed", v)
					}
					if r > res.Rounds {
						t.Errorf("node %d done at round %d > total %d", v, r, res.Rounds)
					}
				}
			})
		}
	}
}

// TestDecodeCorrectness runs payload-mode AG on a grid and verifies every
// node decodes all original messages exactly.
func TestDecodeCorrectness(t *testing.T) {
	g := graph.Grid(4, 4)
	cfg := Config{RLNC: rlnc.Config{Field: gf.MustNew(256), K: 8, PayloadLen: 16}}
	rng := core.NewRand(3)
	msgs := RandomMessages(cfg.RLNC, rng)
	p, err := New(g, core.Synchronous, sim.NewUniform(g), cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SeedAll(RoundRobinAssign(8, 16), msgs); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(g, core.Synchronous, p, 5).Run(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		got, err := p.Node(core.NodeID(v)).Decode()
		if err != nil {
			t.Fatalf("node %d: %v", v, err)
		}
		for i := range msgs {
			for j := range msgs[i].Payload {
				if got[i].Payload[j] != msgs[i].Payload[j] {
					t.Fatalf("node %d decoded message %d wrong at symbol %d", v, i, j)
				}
			}
		}
	}
}

func TestPushAndPullActions(t *testing.T) {
	g := graph.Ring(12)
	for _, action := range []core.Action{core.Push, core.Pull} {
		cfg := rankOnlyCfg(6)
		cfg.Action = action
		p, err := New(g, core.Asynchronous, sim.NewUniform(g), cfg, core.NewRand(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.SeedAll(RoundRobinAssign(6, 12), nil); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.New(g, core.Asynchronous, p, 2, sim.WithMaxRounds(1<<16)).Run(); err != nil {
			t.Fatalf("%v did not complete: %v", action, err)
		}
	}
}

func TestDiscardDuplicatePerRound(t *testing.T) {
	g := graph.Line(10)
	cfg := rankOnlyCfg(5)
	cfg.DiscardDuplicatePerRound = true
	p, err := New(g, core.Synchronous, sim.NewUniform(g), cfg, core.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SeedAll(RoundRobinAssign(5, 10), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.New(g, core.Synchronous, p, 4).Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDiscardIsSlowerOrEqual validates the proof's monotonicity claim on
// average: discarding duplicate-sender packets cannot speed the protocol
// up. Compared over multiple seeds to avoid flakiness.
func TestDiscardIsSlowerOrEqual(t *testing.T) {
	g := graph.Star(12) // star maximizes same-sender duplicates at the hub
	total := func(discard bool) int {
		sum := 0
		for seed := uint64(0); seed < 12; seed++ {
			cfg := rankOnlyCfg(8)
			cfg.DiscardDuplicatePerRound = discard
			p, err := New(g, core.Synchronous, sim.NewUniform(g), cfg, core.NewRand(core.SplitSeed(seed, 3)))
			if err != nil {
				t.Fatal(err)
			}
			if err := p.SeedAll(RoundRobinAssign(8, 12), nil); err != nil {
				t.Fatal(err)
			}
			res, err := sim.New(g, core.Synchronous, p, core.SplitSeed(seed, 4)).Run()
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Rounds
		}
		return sum
	}
	keep, discard := total(false), total(true)
	if discard < keep*8/10 {
		t.Errorf("discarding duplicates was much faster (%d vs %d rounds total) — staging bug?", discard, keep)
	}
}

func TestSeedAllValidation(t *testing.T) {
	g := graph.Line(4)
	p, err := New(g, core.Synchronous, sim.NewUniform(g), rankOnlyCfg(3), core.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SeedAll(make([]core.NodeID, 2), nil); err == nil {
		t.Error("wrong assignment length accepted")
	}
	bad := []rlnc.Message{{Index: 1}, {Index: 0}, {Index: 2}}
	if err := p.SeedAll(RoundRobinAssign(3, 4), bad); err == nil {
		t.Error("misindexed messages accepted")
	}
}

func TestDeterministicReplay(t *testing.T) {
	g := graph.Grid(4, 4)
	rounds := func() int {
		_, res := *new(*Protocol), sim.Result{}
		p, err := New(g, core.Asynchronous, sim.NewUniform(g), rankOnlyCfg(8), core.NewRand(42))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.SeedAll(RoundRobinAssign(8, 16), nil); err != nil {
			t.Fatal(err)
		}
		res, err = sim.New(g, core.Asynchronous, p, 43).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	if a, b := rounds(), rounds(); a != b {
		t.Errorf("same seeds gave %d and %d rounds", a, b)
	}
}

// TestRankNeverDecreases drives a short run and samples ranks.
func TestRankNeverDecreases(t *testing.T) {
	g := graph.Ring(8)
	p, err := New(g, core.Asynchronous, sim.NewUniform(g), rankOnlyCfg(4), core.NewRand(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SeedAll(RoundRobinAssign(4, 8), nil); err != nil {
		t.Fatal(err)
	}
	prev := make([]int, 8)
	for step := 0; step < 2000 && !p.Done(); step++ {
		p.OnWake(core.NodeID(step % 8))
		for v := 0; v < 8; v++ {
			r := p.Rank(core.NodeID(v))
			if r < prev[v] {
				t.Fatalf("rank of %d decreased %d -> %d", v, prev[v], r)
			}
			prev[v] = r
		}
	}
}

func TestAssignHelpers(t *testing.T) {
	rr := RoundRobinAssign(5, 3)
	want := []core.NodeID{0, 1, 2, 0, 1}
	for i := range want {
		if rr[i] != want[i] {
			t.Fatalf("RoundRobinAssign[%d] = %d, want %d", i, rr[i], want[i])
		}
	}
	single := SingleAssign(4, 2)
	for _, v := range single {
		if v != 2 {
			t.Fatal("SingleAssign wrong")
		}
	}
	rnd := RandomAssign(100, 7, core.NewRand(1))
	for _, v := range rnd {
		if v < 0 || v >= 7 {
			t.Fatal("RandomAssign out of range")
		}
	}
}

// TestLossRateCompletesAndSlows injects packet loss and verifies that the
// protocol still completes, with the mean slowdown tracking 1/(1-p).
func TestLossRateCompletesAndSlows(t *testing.T) {
	g := graph.Grid(5, 5)
	mean := func(loss float64) float64 {
		sum := 0.0
		const trials = 6
		for seed := uint64(0); seed < trials; seed++ {
			cfg := rankOnlyCfg(12)
			cfg.LossRate = loss
			p, err := New(g, core.Synchronous, sim.NewUniform(g), cfg,
				core.NewRand(core.SplitSeed(seed, 5)))
			if err != nil {
				t.Fatal(err)
			}
			if err := p.SeedAll(RoundRobinAssign(12, 25), nil); err != nil {
				t.Fatal(err)
			}
			res, err := sim.New(g, core.Synchronous, p, core.SplitSeed(seed, 6)).Run()
			if err != nil {
				t.Fatalf("loss %v: %v", loss, err)
			}
			sum += float64(res.Rounds)
		}
		return sum / trials
	}
	clean := mean(0)
	lossy := mean(0.5)
	slowdown := lossy / clean
	// 1/(1-0.5) = 2; allow a wide band for Monte Carlo noise.
	if slowdown < 1.2 || slowdown > 4 {
		t.Errorf("slowdown at 50%% loss = %.2f, want roughly 2", slowdown)
	}
}

func TestLossRateValidation(t *testing.T) {
	g := graph.Line(4)
	for _, bad := range []float64{-0.1, 1.0, 1.5} {
		cfg := rankOnlyCfg(2)
		cfg.LossRate = bad
		if _, err := New(g, core.Synchronous, sim.NewUniform(g), cfg, core.NewRand(1)); err == nil {
			t.Errorf("loss rate %v accepted", bad)
		}
	}
}

// TestGenProtocolCompletes runs generation-coded gossip end to end on both
// time models and verifies completion and decode (payload mode).
func TestGenProtocolCompletes(t *testing.T) {
	g := graph.Complete(12)
	cfg := rlnc.GenConfig{
		Inner:   rlnc.Config{Field: gf.MustNew(256), PayloadLen: 3},
		K:       8,
		GenSize: 3,
	}
	for _, model := range []core.TimeModel{core.Synchronous, core.Asynchronous} {
		rng := core.NewRand(33)
		msgs := make([]rlnc.Message, cfg.K)
		for i := range msgs {
			msgs[i] = rlnc.Message{Index: i, Payload: gf.RandBytes(cfg.Inner.Field, 3, rng)}
		}
		p, err := NewGen(g, model, sim.NewUniform(g), cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.SeedAll(RoundRobinAssign(cfg.K, g.N()), msgs); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.New(g, model, p, 34, sim.WithMaxRounds(1<<17)).Run(); err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		for v := 0; v < g.N(); v++ {
			got, err := p.Node(core.NodeID(v)).Decode()
			if err != nil {
				t.Fatalf("%s node %d: %v", model, v, err)
			}
			for i := range msgs {
				for j := range msgs[i].Payload {
					if got[i].Payload[j] != msgs[i].Payload[j] {
						t.Fatalf("%s node %d message %d mismatch", model, v, i)
					}
				}
			}
		}
		if p.Traffic().Sent == 0 {
			t.Fatal("no traffic recorded")
		}
	}
}

func TestGenProtocolSeedValidation(t *testing.T) {
	g := graph.Line(4)
	cfg := rlnc.GenConfig{Inner: rlnc.Config{Field: gf.MustNew(2), RankOnly: true}, K: 3, GenSize: 2}
	p, err := NewGen(g, core.Synchronous, sim.NewUniform(g), cfg, core.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SeedAll(make([]core.NodeID, 2), nil); err == nil {
		t.Error("wrong assignment length accepted")
	}
}
