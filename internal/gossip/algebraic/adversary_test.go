package algebraic

import (
	"testing"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
)

// makeTraits builds an n-node trait table with the first `count` nodes
// assigned the given profile (deterministic placement is fine for
// protocol-level tests; the harness uses seeded permutations).
func makeTraits(n, count int, t NodeTraits) []NodeTraits {
	out := make([]NodeTraits, n)
	for i := 0; i < count; i++ {
		out[i] = t
	}
	return out
}

// runTraits runs uniform AG with traits on a complete graph, seeding
// messages at honest nodes only, and returns the protocol and result.
func runTraits(t *testing.T, n, k int, cfg Config, model core.TimeModel, seed uint64) (*Protocol, sim.Result) {
	t.Helper()
	g := graph.Complete(n)
	p, err := New(g, model, sim.NewUniform(g), cfg, core.NewRand(core.SplitSeed(seed, 1)))
	if err != nil {
		t.Fatal(err)
	}
	assign := RoundRobinAssign(k, n)
	if cfg.Traits != nil {
		assign = RoundRobinAssignOver(k, HonestNodes(cfg.Traits))
	}
	if err := p.SeedAll(assign, nil); err != nil {
		t.Fatal(err)
	}
	res, err := sim.New(g, model, p, core.SplitSeed(seed, 2), sim.WithMaxRounds(1<<16)).Run()
	if err != nil {
		t.Fatalf("did not complete: %v", err)
	}
	return p, res
}

// TestByzantineConvergesAllBehaviors: with a quarter of the nodes
// Byzantine (each behavior, in both time models), every node — honest and
// Byzantine alike — still reaches full rank, and the verification
// counters account for the attack.
func TestByzantineConvergesAllBehaviors(t *testing.T) {
	const n, k = 24, 12
	for _, b := range []Behavior{FreeRide, Replay, Pollute} {
		for _, model := range []core.TimeModel{core.Synchronous, core.Asynchronous} {
			t.Run(b.String()+"/"+model.String(), func(t *testing.T) {
				cfg := rankOnlyCfg(k)
				cfg.Traits = makeTraits(n, n/4, NodeTraits{Behavior: b})
				p, res := runTraits(t, n, k, cfg, model, 11)
				for v, r := range p.DoneRounds() {
					if r < 0 {
						t.Fatalf("node %d never completed (rounds=%d)", v, res.Rounds)
					}
				}
				tr := p.Traffic()
				if tr.Verified == 0 {
					t.Error("Byzantine run recorded no verified packets")
				}
				if tr.VerifyOps != tr.Verified*(k+1) {
					t.Errorf("VerifyOps = %d, want Verified*(k+1) = %d", tr.VerifyOps, tr.Verified*(k+1))
				}
				if b == Pollute && tr.Polluted == 0 {
					t.Error("pollute run detected no polluted packets")
				}
				if b != Pollute && tr.Polluted != 0 {
					t.Errorf("non-pollute run detected %d polluted packets", tr.Polluted)
				}
			})
		}
	}
}

// TestHonestRunHasNoVerification: traits of all-honest zero values keep
// the verification counters at zero (verification only costs when
// pollution is possible), and a nil-traits run is byte-identically the
// classic protocol.
func TestHonestRunHasNoVerification(t *testing.T) {
	const n, k = 16, 8
	cfg := rankOnlyCfg(k)
	cfg.Traits = make([]NodeTraits, n)
	p, _ := runTraits(t, n, k, cfg, core.Synchronous, 3)
	tr := p.Traffic()
	if tr.Verified != 0 || tr.VerifyOps != 0 || tr.Polluted != 0 {
		t.Errorf("all-honest traits run recorded verification: %+v", tr)
	}

	base, baseRes := runTraits(t, n, k, rankOnlyCfg(k), core.Synchronous, 3)
	_, traitRes := runTraits(t, n, k, cfg, core.Synchronous, 3)
	if baseRes.Rounds != traitRes.Rounds || base.Traffic() != p.Traffic() {
		t.Errorf("all-honest traits diverged from classic run: %d vs %d rounds, %v vs %v",
			baseRes.Rounds, traitRes.Rounds, base.Traffic(), p.Traffic())
	}
}

// TestStragglersSlowButComplete: stragglers dilate the stopping time but
// never prevent convergence; the boost tier converges at least as fast as
// uniform capability.
func TestStragglersSlowButComplete(t *testing.T) {
	const n, k, seed = 24, 12, 9
	_, base := runTraits(t, n, k, rankOnlyCfg(k), core.Synchronous, seed)

	slow := rankOnlyCfg(k)
	slow.Traits = makeTraits(n, n/2, NodeTraits{Slow: 6})
	pSlow, resSlow := runTraits(t, n, k, slow, core.Synchronous, seed)
	for v, r := range pSlow.DoneRounds() {
		if r < 0 {
			t.Fatalf("straggler run: node %d never completed", v)
		}
	}
	if resSlow.Rounds < base.Rounds {
		t.Errorf("half the nodes 6x-throttled finished faster than baseline: %d < %d",
			resSlow.Rounds, base.Rounds)
	}

	boost := rankOnlyCfg(k)
	boost.Traits = makeTraits(n, n, NodeTraits{Boost: 3})
	pBoost, resBoost := runTraits(t, n, k, boost, core.Synchronous, seed)
	for v, r := range pBoost.DoneRounds() {
		if r < 0 {
			t.Fatalf("boost run: node %d never completed", v)
		}
	}
	if resBoost.Rounds > base.Rounds {
		t.Errorf("3x boost slower than baseline: %d > %d", resBoost.Rounds, base.Rounds)
	}
}

// TestAdversarialDeterminism: a fixed-seed adversarial trial reproduces
// rounds and every traffic counter exactly.
func TestAdversarialDeterminism(t *testing.T) {
	const n, k, seed = 20, 10, 17
	mk := func() (sim.Result, Protocol) {
		cfg := rankOnlyCfg(k)
		traits := makeTraits(n, n/5, NodeTraits{Behavior: Pollute})
		for i := n / 2; i < n/2+4; i++ {
			traits[i].Slow = 4
		}
		cfg.Traits = traits
		cfg.TraitSeed = 99
		p, res := runTraits(t, n, k, cfg, core.Synchronous, seed)
		return res, *p
	}
	r1, p1 := mk()
	r2, p2 := mk()
	if r1.Rounds != r2.Rounds {
		t.Errorf("rounds differ across identical runs: %d vs %d", r1.Rounds, r2.Rounds)
	}
	if p1.Traffic() != p2.Traffic() {
		t.Errorf("traffic differs across identical runs: %v vs %v", p1.Traffic(), p2.Traffic())
	}
}

// TestByzantinePayloadModes exercises replay and pollute through all three
// RLNC backends with real payloads (GF(2) bit, GF(16) sliced, generic) —
// the replay path copies matrix rows, which is backend-specific code.
func TestByzantinePayloadModes(t *testing.T) {
	cases := []struct {
		name string
		cfg  rlnc.Config
	}{
		{"gf2-bit", rlnc.Config{Field: gf.MustNew(2), K: 8, PayloadLen: 6}},
		{"gf16-sliced", rlnc.Config{Field: gf.MustNew(16), K: 8, PayloadLen: 6}},
		{"gf16-generic", rlnc.Config{Field: gf.MustNew(16), K: 8, PayloadLen: 6, ForceGeneric: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const n = 16
			g := graph.Complete(n)
			cfg := Config{RLNC: tc.cfg}
			traits := makeTraits(n, 3, NodeTraits{Behavior: Replay})
			traits[3].Behavior = Pollute
			cfg.Traits = traits
			p, err := New(g, core.Synchronous, sim.NewUniform(g), cfg, core.NewRand(1))
			if err != nil {
				t.Fatal(err)
			}
			msgs := RandomMessages(tc.cfg, core.NewRand(2))
			if err := p.SeedAll(RoundRobinAssignOver(tc.cfg.K, HonestNodes(traits)), msgs); err != nil {
				t.Fatal(err)
			}
			if _, err := sim.New(g, core.Synchronous, p, 3, sim.WithMaxRounds(1<<15)).Run(); err != nil {
				t.Fatalf("did not complete: %v", err)
			}
			// Honest decode must recover the true payloads despite the attack.
			got, err := p.Node(core.NodeID(n - 1)).Decode()
			if err != nil {
				t.Fatal(err)
			}
			for i, m := range got {
				if string(m.Payload) != string(msgs[i].Payload) {
					t.Fatalf("message %d decoded wrong payload", i)
				}
			}
		})
	}
}

// TestTraitsValidation: malformed trait tables and unsupported mode
// combinations are rejected eagerly.
func TestTraitsValidation(t *testing.T) {
	g := graph.Complete(8)
	mk := func(cfg Config) error {
		_, err := New(g, core.Synchronous, sim.NewUniform(g), cfg, core.NewRand(1))
		return err
	}
	cfg := rankOnlyCfg(4)
	cfg.Traits = make([]NodeTraits, 7) // wrong length
	if mk(cfg) == nil {
		t.Error("wrong-length traits accepted")
	}
	cfg = rankOnlyCfg(4)
	cfg.Traits = makeTraits(8, 1, NodeTraits{Slow: 1})
	if mk(cfg) == nil {
		t.Error("slow=1 accepted")
	}
	cfg = rankOnlyCfg(4)
	cfg.Traits = makeTraits(8, 1, NodeTraits{Boost: -1})
	if mk(cfg) == nil {
		t.Error("negative boost accepted")
	}
	cfg = rankOnlyCfg(4)
	cfg.Traits = make([]NodeTraits, 8)
	cfg.DiscardDuplicatePerRound = true
	if mk(cfg) == nil {
		t.Error("traits + DiscardDuplicatePerRound accepted")
	}

	cfg = rankOnlyCfg(4)
	cfg.Traits = make([]NodeTraits, 8)
	p, err := New(g, core.Synchronous, sim.NewUniform(g), cfg, core.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EnableSharded(1, false); err == nil {
		t.Error("EnableSharded accepted a traited protocol")
	}
}
