package algebraic

import (
	"math/bits"
	"math/rand/v2"
	"sync"

	"algossip/internal/core"
	"algossip/internal/gossip"
	"algossip/internal/graph"
)

// Sharded execution (sim.ShardedProtocol) for the algebraic protocols.
//
// The classic wake loop threads one RNG through every wakeup in node
// order, which is inherently serial. Sharded mode replaces it with a
// semantics whose trajectory cannot depend on how nodes are partitioned
// across workers:
//
//   - Randomness: node v's wakeup draws only from v's private stream,
//     derived as SplitSeed(shardSeed, v) — the finest-grained "per-shard"
//     derivation, one stream per node, so the engine's word partition
//     cannot influence any draw.
//   - Staging: node v's wakeup writes only slots 2v (v's send, or the
//     pull it requests) and 2v+1 (the exchange reply), so no append
//     order exists to race on.
//   - Commit: after all workers return, slots are applied in ascending
//     node order on one goroutine — the deterministic merge.
//
// Within a synchronous round all decoder state is frozen (applies happen
// only at commit), so concurrent wakeups read a consistent snapshot; the
// only shared mutable memory is the emit scratch inside a source node's
// matrix, guarded by a per-node lock that serializes emits *from* the
// same node without affecting any drawn value.
//
// Because the per-node streams are new, a sharded trajectory differs
// from the classic serial one for the same seed; it is byte-identical
// across shard counts, which is the contract tests pin.

// Slot states, written during the wake phase and consumed at commit.
const (
	slotEmpty   uint8 = iota
	slotPacket        // a real combination awaits delivery
	slotUseless       // verdict predetermined at send time (receiver full)
	slotDropped       // lost in flight (LossRate)
)

type shardSlot struct {
	state uint8
	to    core.NodeID
}

// shardOps is the node-state surface shardCore drives. Protocol and
// GenProtocol implement it over their own packet type and decoder; the
// core owns scheduling, staging, traffic accounting and retirement.
type shardOps interface {
	// rank returns node v's current rank.
	rank(v core.NodeID) int
	// full reports whether node v is at full rank.
	full(v core.NodeID) bool
	// emitSlot fills slot's pooled packet with a combination from node
	// `from`, drawing from rng. Reports false when `from` stores nothing.
	emitSlot(from core.NodeID, rng *rand.Rand, slot int) bool
	// applySlot delivers slot's packet to node `to`, reporting whether it
	// was helpful. Implementations update their own completion tracking.
	applySlot(to core.NodeID, slot int) bool
}

// shardCore is the sharded executor shared by Protocol and GenProtocol.
type shardCore struct {
	ops      shardOps
	sel      partnerSelector
	action   core.Action
	lossRate float64
	g        *graph.Graph
	traffic  *gossip.Traffic

	n     int
	rngs  []*rand.Rand // per-node streams: rngs[v] = NewRand(SplitSeed(seed, v))
	locks []sync.Mutex // per-node emit guards (matrix scratch)
	slots []shardSlot  // 2 per node: [2v] send/pull, [2v+1] exchange reply

	// retire enables sparse execution on static topologies: saturated
	// nodes (full rank, all neighbors full — their contacts can no longer
	// change any state or verdict beyond a constant useless tax) and
	// dormant nodes (rank 0, all neighbors rank 0 — their contacts are
	// no-ops) stop waking. Both conditions are evaluated against
	// round-start state, so the decision is deterministic, and both are
	// monotone on a static topology, so a retired node never needs to
	// wake again; dormant nodes are re-activated the moment a neighbor
	// gains rank.
	retire bool
	active []uint64 // wake bitmap, bit v of word v/64
	woke   []uint64 // round-start snapshot commit iterates while mutating active
}

// partnerSelector is the subset of sim.PartnerSelector the core needs
// (avoids importing sim here; both selectors in use satisfy it).
type partnerSelector interface {
	Partner(v core.NodeID, rng *rand.Rand) core.NodeID
}

func newShardCore(ops shardOps, sel partnerSelector, action core.Action,
	lossRate float64, g *graph.Graph, seed uint64, retire bool, traffic *gossip.Traffic) *shardCore {
	n := g.N()
	sc := &shardCore{
		ops: ops, sel: sel, action: action, lossRate: lossRate,
		g: g, traffic: traffic, n: n, retire: retire,
		rngs:  make([]*rand.Rand, n),
		locks: make([]sync.Mutex, n),
		slots: make([]shardSlot, 2*n),
	}
	for v := range sc.rngs {
		sc.rngs[v] = core.NewRand(core.SplitSeed(seed, uint64(v)))
	}
	return sc
}

// activeWords returns the wake bitmap, building it on first use (after
// seeding, before the first round).
func (sc *shardCore) activeWords() []uint64 {
	if sc.active == nil {
		words := (sc.n + 63) / 64
		sc.active = make([]uint64, words)
		sc.woke = make([]uint64, words)
		for v := 0; v < sc.n; v++ {
			sc.active[v/64] |= 1 << (v % 64)
		}
		if sc.retire {
			for v := 0; v < sc.n; v++ {
				if sc.inert(core.NodeID(v)) {
					sc.clear(core.NodeID(v))
				}
			}
		}
	}
	return sc.active
}

func (sc *shardCore) set(v core.NodeID)   { sc.active[v/64] |= 1 << (v % 64) }
func (sc *shardCore) clear(v core.NodeID) { sc.active[v/64] &^= 1 << (v % 64) }

// inert reports whether v is dormant or saturated at construction time.
func (sc *shardCore) inert(v core.NodeID) bool {
	switch {
	case sc.ops.rank(v) == 0:
		for _, u := range sc.g.Neighbors(v) {
			if sc.ops.rank(u) > 0 {
				return false
			}
		}
		return true
	case sc.ops.full(v):
		for _, u := range sc.g.Neighbors(v) {
			if !sc.ops.full(u) {
				return false
			}
		}
		return true
	}
	return false
}

// wakeRange performs the wakeups of every active node in the bitmap word
// range [lo, hi). Safe to call concurrently for disjoint ranges.
func (sc *shardCore) wakeRange(lo, hi int) {
	for w := lo; w < hi; w++ {
		word := sc.active[w]
		base := w * 64
		for word != 0 {
			v := core.NodeID(base + bits.TrailingZeros64(word))
			word &= word - 1
			sc.wake(v)
		}
	}
}

func (sc *shardCore) wake(v core.NodeID) {
	rng := sc.rngs[v]
	u := sc.sel.Partner(v, rng)
	if u == core.NilNode {
		return
	}
	switch sc.action {
	case core.Push:
		sc.send(v, u, rng, 2*int(v))
	case core.Pull:
		sc.send(u, v, rng, 2*int(v))
	default: // Exchange
		sc.send(v, u, rng, 2*int(v))
		sc.send(u, v, rng, 2*int(v)+1)
	}
}

// send stages a transmission from -> to in the given slot. All randomness
// comes from the waking node's stream, never the source's, so a node
// emitting on behalf of several contacts in one round stays
// deterministic. Ranks are frozen for the whole wake phase, so the
// rank-0 and full-rank checks are stable snapshots.
func (sc *shardCore) send(from, to core.NodeID, rng *rand.Rand, slot int) {
	if sc.ops.rank(from) == 0 {
		return // nothing to say, no randomness drawn
	}
	s := &sc.slots[slot]
	if sc.ops.full(to) {
		// The verdict is predetermined; unlike the classic path's
		// SkipEmit there is no randomness parity to maintain (no other
		// node reads this stream), so no draw happens at all.
		s.state, s.to = slotUseless, to
		return
	}
	sc.locks[from].Lock()
	ok := sc.ops.emitSlot(from, rng, slot)
	sc.locks[from].Unlock()
	if !ok {
		return // unreachable: rank checked above
	}
	if sc.lossRate > 0 && rng.Float64() < sc.lossRate {
		s.state = slotDropped
		return
	}
	s.state, s.to = slotPacket, to
}

// commit applies every staged slot in ascending node order and updates
// the wake bitmap for the next round. It iterates a snapshot of the
// round's bitmap because retirement clears bits mid-pass and every node
// that woke must have its slots drained.
func (sc *shardCore) commit() {
	copy(sc.woke, sc.active)
	for w, word := range sc.woke {
		base := w * 64
		for word != 0 {
			v := base + bits.TrailingZeros64(word)
			word &= word - 1
			sc.commitSlot(2 * v)
			sc.commitSlot(2*v + 1)
		}
	}
}

func (sc *shardCore) commitSlot(i int) {
	s := &sc.slots[i]
	switch s.state {
	case slotEmpty:
		return
	case slotUseless:
		sc.traffic.Sent++
		sc.traffic.Useless++
	case slotDropped:
		sc.traffic.Sent++
		sc.traffic.Dropped++
	case slotPacket:
		sc.traffic.Sent++
		to := s.to
		wasZero := sc.retire && sc.ops.rank(to) == 0
		if sc.ops.applySlot(to, i) {
			sc.traffic.Helpful++
			if sc.retire {
				if wasZero {
					sc.onRankUp(to)
				}
				if sc.ops.full(to) {
					sc.onFull(to)
				}
			}
		} else {
			sc.traffic.Useless++
		}
	}
	s.state = slotEmpty
}

// onRankUp re-activates a node that just left rank 0, plus any neighbor
// that was dormant only because all of *its* neighbors (including this
// node) were empty.
func (sc *shardCore) onRankUp(v core.NodeID) {
	sc.set(v)
	for _, u := range sc.g.Neighbors(v) {
		if sc.ops.rank(u) == 0 {
			sc.set(u)
		}
	}
}

// onFull checks v and its full neighbors for saturation after v reached
// full rank.
func (sc *shardCore) onFull(v core.NodeID) {
	sc.maybeRetireFull(v)
	for _, u := range sc.g.Neighbors(v) {
		if sc.ops.full(u) {
			sc.maybeRetireFull(u)
		}
	}
}

func (sc *shardCore) maybeRetireFull(v core.NodeID) {
	for _, u := range sc.g.Neighbors(v) {
		if !sc.ops.full(u) {
			return
		}
	}
	sc.clear(v)
}
