// Adversarial and heterogeneous node traits for algebraic gossip.
//
// The paper's O(n) stopping-time analysis assumes honest nodes with
// uniform capabilities. This file opens both assumptions: per-node
// Byzantine behaviors (silent free-riding, non-innovative replay,
// detectable pollution) with receiver-side verification-cost accounting,
// and heterogeneous node classes (stragglers whose transmissions are
// throttled by a queueing service process, and boosted tiers that send
// several combinations per contact).
//
// Determinism contract: trait assignment happens outside the protocol
// (the harness draws it from dedicated seed streams), and the behaviors
// themselves draw no protocol randomness — replay is a fixed function of
// node state, pollution needs no coefficients (the Corrupt flag models a
// mismatch any verifier detects), and free-riders send nothing. Straggler
// service times come from a separate class RNG (Config.TraitSeed), so a
// fixed-seed adversarial trial is byte-identical for any trial-level
// parallelism, and all non-adversarial trajectories are untouched.
package algebraic

import (
	"fmt"

	"algossip/internal/core"
)

// Behavior is a node's sending behavior. The zero value is honest.
type Behavior uint8

const (
	// Honest nodes follow the protocol exactly.
	Honest Behavior = iota
	// FreeRide nodes receive but never transmit (silent bandwidth theft):
	// every send leg they owe is skipped.
	FreeRide
	// Replay nodes retransmit a fixed stored equation (their first echelon
	// row) instead of a fresh random combination — syntactically valid
	// packets that are non-innovative to anyone who has heard them before.
	Replay
	// Pollute nodes send corrupt coefficient/payload combinations.
	// Pollution is detectable: receiver verification rejects the packet,
	// but only after paying the modeled k+r verification cost.
	Pollute
)

// String names the behavior (used in experiment tables and flags).
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case FreeRide:
		return "freeride"
	case Replay:
		return "replay"
	case Pollute:
		return "pollute"
	default:
		return fmt.Sprintf("behavior(%d)", uint8(b))
	}
}

// NodeTraits is one node's adversarial/heterogeneous profile. The zero
// value is an honest, uniform-capability node — a Traits slice of zero
// values reproduces the classic protocol exactly (but enables the
// verification accounting if any node is Byzantine).
type NodeTraits struct {
	// Behavior is the node's sending behavior.
	Behavior Behavior
	// Slow, when >= 2, makes the node a straggler: each transmission is
	// followed by a Geometric(1/Slow) service time (mean Slow rounds)
	// during which its send legs are dropped — the queueing-theoretic
	// model of a CPU- or bandwidth-starved node. 0 and 1 mean unthrottled.
	Slow int
	// Boost, when >= 2, makes the node a fast tier: it emits Boost
	// independent combinations per contact leg. 0 and 1 mean one packet.
	Boost int
}

func (t NodeTraits) validate() error {
	if t.Behavior > Pollute {
		return fmt.Errorf("algebraic: unknown behavior %d", t.Behavior)
	}
	if t.Slow < 0 || t.Slow == 1 {
		return fmt.Errorf("algebraic: straggler slow factor must be 0 or >= 2, got %d", t.Slow)
	}
	if t.Boost < 0 || t.Boost == 1 {
		return fmt.Errorf("algebraic: tier boost must be 0 or >= 2, got %d", t.Boost)
	}
	return nil
}

// byzantine reports whether the node deviates from the protocol in a way
// that makes receiver verification necessary.
func (t NodeTraits) byzantine() bool { return t.Behavior != Honest }

// HonestNodes returns the IDs of nodes with honest behavior (stragglers
// and boosted tiers included — they follow the protocol, just at a
// different rate). Initial messages must be seeded at honest nodes only:
// a free-rider or replayer holding the sole copy of x_i would never
// spread it and no one could converge.
func HonestNodes(traits []NodeTraits) []core.NodeID {
	out := make([]core.NodeID, 0, len(traits))
	for i, t := range traits {
		if !t.byzantine() {
			out = append(out, core.NodeID(i))
		}
	}
	return out
}

// RoundRobinAssignOver spreads k messages round-robin across the given
// node list — RoundRobinAssign restricted to a subset (the honest nodes
// of an adversarial run).
func RoundRobinAssignOver(k int, nodes []core.NodeID) []core.NodeID {
	out := make([]core.NodeID, k)
	for i := range out {
		out[i] = nodes[i%len(nodes)]
	}
	return out
}

// sendLeg is one contact leg from `from` toward `to`: one packet for
// uniform-capability nodes, Boost packets for boosted tiers. All OnWake
// transfers route through here; with no traits configured it is exactly
// send.
func (p *Protocol) sendLeg(from, to core.NodeID) {
	reps := 1
	if p.traits != nil {
		if b := p.traits[from].Boost; b > 1 {
			reps = b
		}
	}
	for i := 0; i < reps; i++ {
		p.send(from, to)
	}
}

// serviceReady gates a straggler's transmission on its queueing service
// process: a node still serving a previous transmission drops this leg;
// one that is free transmits and draws the next Geometric(1/Slow) service
// time from the class RNG. Non-stragglers are always ready.
func (p *Protocol) serviceReady(from core.NodeID) bool {
	s := p.service[from]
	if s == nil {
		return true
	}
	if p.round < p.busyUntil[from] {
		return false
	}
	p.busyUntil[from] = p.round + int(s(p.classRng))
	return true
}

// sendByz is the Byzantine send path (replay and pollute): it bypasses
// the honest emit — and the SkipEmit randomness-parity machinery, since
// Byzantine sends draw no protocol randomness — but flows through the
// same pool, loss, and staging mechanics as honest traffic.
func (p *Protocol) sendByz(from, to core.NodeID, pollute bool) {
	pkt := p.getPacket()
	if pollute {
		// Packet content is irrelevant: the Corrupt flag models a
		// coefficient/payload mismatch that verification always detects,
		// so the receive screen rejects it before looking at widths.
		p.nodes[from].EmitReplayInto(pkt)
		pkt.Corrupt = true
	} else if !p.nodes[from].EmitReplayInto(pkt) {
		p.recycle(pkt)
		return // replayer has heard nothing yet: nothing to replay
	}
	p.traffic.Sent++
	if p.cfg.LossRate > 0 && p.rng.Float64() < p.cfg.LossRate {
		p.traffic.Dropped++
		p.recycle(pkt)
		return
	}
	if p.model == core.Synchronous {
		p.staged = append(p.staged, delivery{to: to, from: from, pkt: pkt})
		return
	}
	p.apply(to, pkt)
	p.recycle(pkt)
}

// verifyAccount charges one packet's worth of receiver-side verification
// (k + r field operations) when the run models Byzantine nodes. Honest
// runs skip verification entirely — the counters stay zero and the
// traffic JSON bytes are unchanged.
func (p *Protocol) verifyAccount() {
	if p.verify {
		p.traffic.Verified++
		p.traffic.VerifyOps += p.verifyCost
	}
}
