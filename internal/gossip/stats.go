// Package gossip holds types shared by the protocol implementations in its
// subpackages, most importantly traffic accounting: the paper's whole
// premise is gossip with *bounded message sizes*, so protocols count every
// transmission and expose the wire size of one message, letting experiments
// compare total traffic (bits on the wire) and coding efficiency (fraction
// of received packets that were helpful) across protocols.
package gossip

import (
	"fmt"
	"math"

	"algossip/internal/rlnc"
)

// Traffic counts protocol transmissions.
type Traffic struct {
	// Sent is the number of packets handed to the network.
	Sent int
	// Helpful is the number of received packets that increased the
	// receiver's rank (or taught it a new message, for uncoded gossip).
	Helpful int
	// Useless is the number of received packets that carried no new
	// information and were discarded.
	Useless int
	// Dropped is the number of packets lost to failure injection.
	Dropped int
}

// Received returns Helpful + Useless.
func (t Traffic) Received() int { return t.Helpful + t.Useless }

// Efficiency returns the fraction of received packets that were helpful
// (0 when nothing was received).
func (t Traffic) Efficiency() float64 {
	if t.Received() == 0 {
		return 0
	}
	return float64(t.Helpful) / float64(t.Received())
}

// Add accumulates other into t.
func (t *Traffic) Add(other Traffic) {
	t.Sent += other.Sent
	t.Helpful += other.Helpful
	t.Useless += other.Useless
	t.Dropped += other.Dropped
}

// String renders a compact summary.
func (t Traffic) String() string {
	return fmt.Sprintf("sent=%d helpful=%d useless=%d dropped=%d eff=%.2f",
		t.Sent, t.Helpful, t.Useless, t.Dropped, t.Efficiency())
}

// MessageBits returns the wire size of one algebraic-gossip message in
// bits: (k + r)·log2(q) — k coefficient symbols plus r payload symbols
// (paper Section 2: "the length of each message is r·log2 q + k·log2 q
// bits"). Rank-only simulations still report the size the real message
// would have had, with r = 1 symbol as the minimum payload.
func MessageBits(cfg rlnc.Config) int {
	bitsPerSym := int(math.Ceil(math.Log2(float64(cfg.Field.Order()))))
	r := cfg.PayloadLen
	if r == 0 {
		r = 1
	}
	return (cfg.K + r) * bitsPerSym
}

// UncodedMessageBits returns the wire size of one store-and-forward
// message: log2(k) bits of index plus the r·log2(q) payload.
func UncodedMessageBits(k, payloadLen, fieldOrder int) int {
	bitsPerSym := int(math.Ceil(math.Log2(float64(fieldOrder))))
	if payloadLen == 0 {
		payloadLen = 1
	}
	idxBits := int(math.Ceil(math.Log2(float64(k))))
	if idxBits == 0 {
		idxBits = 1
	}
	return idxBits + payloadLen*bitsPerSym
}
