// Package gossip holds types shared by the protocol implementations in its
// subpackages, most importantly traffic accounting: the paper's whole
// premise is gossip with *bounded message sizes*, so protocols count every
// transmission and expose the wire size of one message, letting experiments
// compare total traffic (bits on the wire) and coding efficiency (fraction
// of received packets that were helpful) across protocols.
package gossip

import (
	"fmt"
	"math"

	"algossip/internal/rlnc"
)

// Traffic counts protocol transmissions.
type Traffic struct {
	// Sent is the number of packets handed to the network.
	Sent int
	// Helpful is the number of received packets that increased the
	// receiver's rank (or taught it a new message, for uncoded gossip).
	Helpful int
	// Useless is the number of received packets that carried no new
	// information and were discarded.
	Useless int
	// Dropped is the number of packets lost to failure injection.
	Dropped int
	// Verified counts packets that went through receiver-side integrity
	// verification. Zero (and omitted from JSON, keeping non-adversarial
	// checkpoint bytes unchanged) unless the run models Byzantine nodes:
	// verification only costs anything when pollution is possible.
	Verified int `json:",omitempty"`
	// VerifyOps is the total modeled verification cost in field operations,
	// k + r per verified packet (one pass over coefficients and payload).
	VerifyOps int `json:",omitempty"`
	// Polluted counts verified packets that failed verification (corrupt
	// coefficient/payload combinations injected by Byzantine senders) and
	// were discarded before reaching the eliminator.
	Polluted int `json:",omitempty"`
}

// Received returns Helpful + Useless.
func (t Traffic) Received() int { return t.Helpful + t.Useless }

// Efficiency returns the fraction of received packets that were helpful
// (0 when nothing was received).
func (t Traffic) Efficiency() float64 {
	if t.Received() == 0 {
		return 0
	}
	return float64(t.Helpful) / float64(t.Received())
}

// Add accumulates other into t.
func (t *Traffic) Add(other Traffic) {
	t.Sent += other.Sent
	t.Helpful += other.Helpful
	t.Useless += other.Useless
	t.Dropped += other.Dropped
	t.Verified += other.Verified
	t.VerifyOps += other.VerifyOps
	t.Polluted += other.Polluted
}

// String renders a compact summary.
func (t Traffic) String() string {
	s := fmt.Sprintf("sent=%d helpful=%d useless=%d dropped=%d eff=%.2f",
		t.Sent, t.Helpful, t.Useless, t.Dropped, t.Efficiency())
	if t.Verified > 0 {
		s += fmt.Sprintf(" verified=%d polluted=%d verifyops=%d",
			t.Verified, t.Polluted, t.VerifyOps)
	}
	return s
}

// MessageBits returns the wire size of one algebraic-gossip message in
// bits: (k + r)·log2(q) — k coefficient symbols plus r payload symbols
// (paper Section 2: "the length of each message is r·log2 q + k·log2 q
// bits"). Rank-only simulations still report the size the real message
// would have had, with r = 1 symbol as the minimum payload.
func MessageBits(cfg rlnc.Config) int {
	bitsPerSym := int(math.Ceil(math.Log2(float64(cfg.Field.Order()))))
	r := cfg.PayloadLen
	if r == 0 {
		r = 1
	}
	return (cfg.K + r) * bitsPerSym
}

// UncodedMessageBits returns the wire size of one store-and-forward
// message: log2(k) bits of index plus the r·log2(q) payload.
func UncodedMessageBits(k, payloadLen, fieldOrder int) int {
	bitsPerSym := int(math.Ceil(math.Log2(float64(fieldOrder))))
	if payloadLen == 0 {
		payloadLen = 1
	}
	idxBits := int(math.Ceil(math.Log2(float64(k))))
	if idxBits == 0 {
		idxBits = 1
	}
	return idxBits + payloadLen*bitsPerSym
}
