package gossip

import (
	"strings"
	"testing"

	"algossip/internal/gf"
	"algossip/internal/rlnc"
)

func TestTrafficAccounting(t *testing.T) {
	var tr Traffic
	if tr.Efficiency() != 0 {
		t.Fatal("empty traffic efficiency must be 0")
	}
	tr.Add(Traffic{Sent: 10, Helpful: 6, Useless: 2, Dropped: 2})
	tr.Add(Traffic{Sent: 5, Helpful: 2, Useless: 2, Dropped: 1})
	if tr.Sent != 15 || tr.Helpful != 8 || tr.Useless != 4 || tr.Dropped != 3 {
		t.Fatalf("Add wrong: %+v", tr)
	}
	if tr.Received() != 12 {
		t.Fatalf("Received = %d", tr.Received())
	}
	if e := tr.Efficiency(); e < 0.66 || e > 0.67 {
		t.Fatalf("Efficiency = %v", e)
	}
	if !strings.Contains(tr.String(), "sent=15") {
		t.Fatalf("String() = %q", tr.String())
	}
}

func TestMessageBits(t *testing.T) {
	tests := []struct {
		cfg  rlnc.Config
		want int
	}{
		// (k + r)·log2(q): the paper's message size formula.
		{rlnc.Config{Field: gf.MustNew(256), K: 10, PayloadLen: 20}, (10 + 20) * 8},
		{rlnc.Config{Field: gf.MustNew(2), K: 64, PayloadLen: 64}, 128},
		{rlnc.Config{Field: gf.MustNew(16), K: 8, PayloadLen: 4}, (8 + 4) * 4},
		// Rank-only: payload floor of one symbol.
		{rlnc.Config{Field: gf.MustNew(2), K: 64, RankOnly: true}, 65},
	}
	for _, tt := range tests {
		if got := MessageBits(tt.cfg); got != tt.want {
			t.Errorf("MessageBits(%s,k=%d,r=%d) = %d, want %d",
				tt.cfg.Field.Name(), tt.cfg.K, tt.cfg.PayloadLen, got, tt.want)
		}
	}
}

func TestUncodedMessageBits(t *testing.T) {
	// 16 messages -> 4 index bits; 8 payload bytes over GF(256) -> 64 bits.
	if got := UncodedMessageBits(16, 8, 256); got != 68 {
		t.Fatalf("got %d, want 68", got)
	}
	// Degenerate single message still needs one index bit.
	if got := UncodedMessageBits(1, 0, 2); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
}
