// Package resultstore is the queryable on-disk home of sweep results: an
// append-only JSONL data file paired with a sidecar offset index keyed by
// experiment cell (topology × n × k × field × rate × dynamics ×
// generation size), so million-trial sweeps answer "which cell
// regressed, and what are its P99/P99.9 stopping times" by reading only
// that cell's lines — no CSV re-parsing, no full-file scan.
//
// Pure Go, no external database: the index is rebuilt from the data file
// whenever the sidecar is missing or stale (size mismatch), and a torn
// trailing line from a kill mid-append is truncated on open, the same
// recovery contract as the harness checkpoint.
package resultstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"algossip/internal/harness"
	"algossip/internal/stats"
)

// storeVersion guards the on-disk format of both files.
const storeVersion = 1

// Record is one trial's result row. The cell-identifying fields
// (everything except Trial, Seed and Rounds) key the index.
type Record struct {
	// Spec labels the sweep that produced the row.
	Spec string `json:"spec,omitempty"`
	// Graph, N, K and Q identify the topology × message-count × field
	// cell.
	Graph string `json:"graph"`
	N     int    `json:"n"`
	K     int    `json:"k"`
	Q     int    `json:"q"`
	// Protocol is the dissemination protocol name.
	Protocol string `json:"protocol"`
	// Rate is the loss/failure rate (0 for lossless).
	Rate float64 `json:"rate,omitempty"`
	// Dynamics is the canonical schedule string ("" for static).
	Dynamics string `json:"dyn,omitempty"`
	// GenSize is the generation size (0 for full-span coding).
	GenSize int `json:"gens,omitempty"`
	// Trial, Seed and Rounds are the measurement itself.
	Trial  int    `json:"trial"`
	Seed   uint64 `json:"seed"`
	Rounds int    `json:"rounds"`
}

// cellOf strips a record to its index cell.
func cellOf(r Record) Cell {
	return Cell{Graph: r.Graph, N: r.N, K: r.K, Q: r.Q, Protocol: r.Protocol,
		Rate: r.Rate, Dynamics: r.Dynamics, GenSize: r.GenSize}
}

// Cell identifies one experiment grid cell in the index.
type Cell struct {
	Graph    string  `json:"graph"`
	N        int     `json:"n"`
	K        int     `json:"k"`
	Q        int     `json:"q"`
	Protocol string  `json:"protocol"`
	Rate     float64 `json:"rate,omitempty"`
	Dynamics string  `json:"dyn,omitempty"`
	GenSize  int     `json:"gens,omitempty"`
}

// Filter selects cells. Zero-valued fields are wildcards, except Rate,
// which only participates when HasRate is set (0 is a meaningful rate).
type Filter struct {
	Spec     string
	Graph    string
	N        int
	K        int
	Q        int
	Protocol string
	Dynamics string
	GenSize  int
	Rate     float64
	HasRate  bool
}

// matches reports whether the filter's non-wildcard fields all equal the
// cell's.
func (f Filter) matches(c Cell) bool {
	switch {
	case f.Graph != "" && f.Graph != c.Graph,
		f.N != 0 && f.N != c.N,
		f.K != 0 && f.K != c.K,
		f.Q != 0 && f.Q != c.Q,
		f.Protocol != "" && f.Protocol != c.Protocol,
		f.Dynamics != "" && f.Dynamics != c.Dynamics,
		f.GenSize != 0 && f.GenSize != c.GenSize,
		f.HasRate && f.Rate != c.Rate:
		return false
	}
	return true
}

// dataHeader is the data file's first line.
type dataHeader struct {
	V int `json:"v"`
}

// idxCell is one cell's entry in the sidecar index.
type idxCell struct {
	Cell    Cell    `json:"cell"`
	Offsets []int64 `json:"offsets"`
}

// idxFile is the sidecar index layout.
type idxFile struct {
	V int `json:"v"`
	// Size is the data-file byte count the index covers; a mismatch on
	// open means the index is stale and the data file is rescanned.
	Size  int64     `json:"size"`
	Cells []idxCell `json:"cells"`
}

// Store is an open result store. All methods are safe for concurrent
// use.
type Store struct {
	mu    sync.Mutex
	path  string
	f     *os.File
	size  int64
	cells map[Cell]*idxCell
	order []Cell // insertion order, for deterministic Cells/queries
	dirty bool
}

// Open opens (creating if needed) the store at path and loads or
// rebuilds its index.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{path: path, f: f, cells: map[Cell]*idxCell{}}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// load validates the data file, truncating a torn tail, and loads the
// sidecar index when fresh or rebuilds it from the data lines.
func (s *Store) load() error {
	st, err := s.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		// Fresh store: write the header.
		data, _ := json.Marshal(dataHeader{V: storeVersion})
		n, err := s.f.Write(append(data, '\n'))
		if err != nil {
			return err
		}
		s.size = int64(n)
		s.dirty = true
		return nil
	}

	// Try the sidecar first; a fresh one saves the full scan.
	if idx, err := s.loadSidecar(); err == nil && idx.Size == st.Size() {
		s.size = idx.Size
		for i := range idx.Cells {
			c := idx.Cells[i]
			s.cells[c.Cell] = &idxCell{Cell: c.Cell, Offsets: c.Offsets}
			s.order = append(s.order, c.Cell)
		}
		if _, err := s.f.Seek(s.size, io.SeekStart); err != nil {
			return err
		}
		return nil
	}

	// Stale or missing index: rebuild by scanning the data file.
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	sc := bufio.NewScanner(s.f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var offset, valid int64
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		lineStart := offset
		end := lineStart + int64(len(line))
		// A final line with no trailing newline is a torn append: never
		// index it, and truncate so the next append stays line-aligned.
		hasNL := end < st.Size()
		offset = end
		if hasNL {
			offset++
		}
		if first {
			first = false
			var h dataHeader
			if err := json.Unmarshal(line, &h); err != nil {
				return fmt.Errorf("resultstore: corrupt header in %s: %w", s.path, err)
			}
			if h.V != storeVersion {
				return fmt.Errorf("resultstore: %s has version %d, want %d", s.path, h.V, storeVersion)
			}
			if !hasNL {
				break
			}
			valid = offset
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil || !hasNL {
			// Torn tail from a kill mid-append: keep everything before it.
			break
		}
		s.indexLocked(r, lineStart)
		valid = offset
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := s.f.Truncate(valid); err != nil {
		return err
	}
	if _, err := s.f.Seek(valid, io.SeekStart); err != nil {
		return err
	}
	s.size = valid
	s.dirty = true
	return nil
}

func (s *Store) loadSidecar() (*idxFile, error) {
	data, err := os.ReadFile(s.path + ".idx")
	if err != nil {
		return nil, err
	}
	var idx idxFile
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, err
	}
	if idx.V != storeVersion {
		return nil, fmt.Errorf("resultstore: index version %d, want %d", idx.V, storeVersion)
	}
	return &idx, nil
}

// indexLocked adds one record's offset to the in-memory index.
func (s *Store) indexLocked(r Record, offset int64) {
	c := cellOf(r)
	ic, ok := s.cells[c]
	if !ok {
		ic = &idxCell{Cell: c}
		s.cells[c] = ic
		s.order = append(s.order, c)
	}
	ic.Offsets = append(ic.Offsets, offset)
}

// Append durably adds records to the store and indexes them.
func (s *Store) Append(recs ...Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range recs {
		data, err := json.Marshal(r)
		if err != nil {
			return err
		}
		n, err := s.f.Write(append(data, '\n'))
		if err != nil {
			return err
		}
		s.indexLocked(r, s.size)
		s.size += int64(n)
	}
	s.dirty = true
	return s.f.Sync()
}

// Cells lists every indexed cell with its trial count, in first-seen
// order.
func (s *Store) Cells() []CellCount {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CellCount, 0, len(s.order))
	for _, c := range s.order {
		out = append(out, CellCount{Cell: c, Trials: len(s.cells[c].Offsets)})
	}
	return out
}

// CellCount pairs a cell with its stored trial count.
type CellCount struct {
	Cell   Cell
	Trials int
}

// Query reads every record of every cell the filter matches, in stable
// (cell first-seen, then append) order, touching only the matched
// offsets. The Spec filter field applies per record (it is not part of
// the cell key).
func (s *Store) Query(f Filter) ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var offsets []int64
	for _, c := range s.order {
		if f.matches(c) {
			offsets = append(offsets, s.cells[c].Offsets...)
		}
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	out := make([]Record, 0, len(offsets))
	rd := bufio.NewReader(nil)
	for _, off := range offsets {
		if _, err := s.f.Seek(off, io.SeekStart); err != nil {
			return nil, err
		}
		rd.Reset(s.f)
		line, err := rd.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return nil, err
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, fmt.Errorf("resultstore: corrupt record at offset %d of %s: %w", off, s.path, err)
		}
		if f.Spec != "" && f.Spec != r.Spec {
			continue
		}
		out = append(out, r)
	}
	// Restore the append position.
	if _, err := s.f.Seek(s.size, io.SeekStart); err != nil {
		return nil, err
	}
	return out, nil
}

// TailStats summarizes the stopping times of one query: count, mean, and
// the tail quantiles the paper's bounds only hint at. Empty matches
// yield NaN statistics (see stats.Mean).
type TailStats struct {
	Trials int
	Mean   float64
	P50    float64
	P90    float64
	P99    float64
	P999   float64
	Max    float64
}

// Tail computes TailStats over the rounds of every record the filter
// matches.
func (s *Store) Tail(f Filter) (TailStats, error) {
	recs, err := s.Query(f)
	if err != nil {
		return TailStats{}, err
	}
	xs := make([]float64, 0, len(recs))
	for _, r := range recs {
		xs = append(xs, float64(r.Rounds))
	}
	qs := stats.TailQuantiles(xs, 0.5, 0.9, 0.99, 0.999, 1)
	return TailStats{
		Trials: len(xs), Mean: stats.Mean(xs),
		P50: qs[0], P90: qs[1], P99: qs[2], P999: qs[3], Max: qs[4],
	}, nil
}

// String renders the tail stats compactly.
func (t TailStats) String() string {
	return fmt.Sprintf("trials=%d mean=%.1f p50=%.1f p90=%.1f p99=%.1f p99.9=%.1f max=%.0f",
		t.Trials, t.Mean, t.P50, t.P90, t.P99, t.P999, t.Max)
}

// Flush rewrites the sidecar index if the store changed since the last
// flush. The data file itself is already durable (synced per Append);
// losing the sidecar only costs a rescan on the next Open.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if !s.dirty {
		return nil
	}
	idx := idxFile{V: storeVersion, Size: s.size}
	for _, c := range s.order {
		idx.Cells = append(idx.Cells, *s.cells[c])
	}
	data, err := json.Marshal(idx)
	if err != nil {
		return err
	}
	tmp := s.path + ".idx.tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.path+".idx"); err != nil {
		return err
	}
	s.dirty = false
	return nil
}

// Close flushes the index and closes the data file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ferr := s.flushLocked()
	cerr := s.f.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// FromResultSet converts a finished harness run into store records — the
// ingest path shared by cmd/sweep (-store) and the fabric coordinator.
func FromResultSet(rs *harness.ResultSet) []Record {
	q := rs.Spec.Q
	if q == 0 {
		q = 2 // GossipSpec.Normalize's default field
	}
	dyn := ""
	if !rs.Spec.Dynamics.IsStatic() {
		dyn = rs.Spec.Dynamics.String()
	}
	out := make([]Record, 0, len(rs.Trials))
	for i, t := range rs.Trials {
		// Cells key on the family name ("ring"), not the generator label
		// ("ring-64"): N is its own field, so the family is the natural
		// query axis. Pre-built exotic graphs keep their full label.
		family := rs.Spec.Graph
		if family == "" {
			family = t.Graph.Name()
		}
		out = append(out, Record{
			Spec: rs.Spec.Name, Graph: family, N: t.Graph.N(), K: t.K, Q: q,
			Protocol: rs.Spec.Protocol.String(), Rate: rs.Spec.LossRate, Dynamics: dyn,
			GenSize: rs.Spec.GenSize, Trial: t.Num, Seed: t.Seed,
			Rounds: rs.Outcomes[i].Result.Rounds,
		})
	}
	return out
}
