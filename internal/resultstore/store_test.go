package resultstore

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"algossip/internal/harness"
)

func rec(graph string, n, k, trial, rounds int) Record {
	return Record{Spec: "t", Graph: graph, N: n, K: k, Q: 2,
		Protocol: "uniform-ag", Trial: trial, Seed: uint64(trial), Rounds: rounds}
}

func mustOpen(t *testing.T, path string) *Store {
	t.Helper()
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreAppendQueryTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s := mustOpen(t, path)
	defer s.Close()

	var recs []Record
	for i := 0; i < 100; i++ {
		recs = append(recs, rec("ring", 64, 32, i, 100+i))
	}
	recs = append(recs, rec("complete", 64, 32, 0, 7), rec("ring", 128, 64, 0, 9))
	if err := s.Append(recs...); err != nil {
		t.Fatal(err)
	}

	got, err := s.Query(Filter{Graph: "ring", N: 64, K: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("cell query returned %d records, want 100", len(got))
	}
	for i, r := range got {
		if r.Rounds != 100+i {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
	}

	ts, err := s.Tail(Filter{Graph: "ring", N: 64})
	if err != nil {
		t.Fatal(err)
	}
	// rounds are 100..199: P99 of 100 evenly spaced samples interpolates
	// at position 0.99*99 = 98.01.
	if ts.Trials != 100 || math.Abs(ts.P99-198.01) > 1e-9 || math.Abs(ts.P999-198.901) > 1e-9 {
		t.Fatalf("tail stats = %+v", ts)
	}
	if ts.Max != 199 || math.Abs(ts.Mean-149.5) > 1e-9 {
		t.Fatalf("tail stats = %+v", ts)
	}

	// Wildcard query spans cells; empty matches give NaN, not a panic —
	// the all-failed-range aggregation path.
	all, err := s.Query(Filter{})
	if err != nil || len(all) != 102 {
		t.Fatalf("wildcard query: %d records, err=%v", len(all), err)
	}
	empty, err := s.Tail(Filter{Graph: "nope"})
	if err != nil || empty.Trials != 0 || !math.IsNaN(empty.Mean) || !math.IsNaN(empty.P999) {
		t.Fatalf("empty tail = %+v, err=%v", empty, err)
	}
}

func TestStoreReopenUsesIndexAndSurvivesStaleness(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	s := mustOpen(t, path)
	if err := s.Append(rec("ring", 16, 8, 0, 11), rec("ring", 16, 8, 1, 13)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean reopen: sidecar is fresh.
	s = mustOpen(t, path)
	if got, _ := s.Query(Filter{Graph: "ring"}); len(got) != 2 {
		t.Fatalf("reopen lost records: %d", len(got))
	}
	// Appends after reopen extend the same cells.
	if err := s.Append(rec("ring", 16, 8, 2, 17)); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()

	// Delete the sidecar: Open must rebuild by scanning.
	if err := os.Remove(path + ".idx"); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, path)
	got, _ := s.Query(Filter{Graph: "ring"})
	if len(got) != 3 || got[2].Rounds != 17 {
		t.Fatalf("scan rebuild lost records: %+v", got)
	}
	_ = s.Close()

	// Torn tail (kill mid-append): reopen truncates it, keeps the rest,
	// and further appends stay line-aligned.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"graph":"ring","n":16,`); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	_ = os.Remove(path + ".idx")
	s = mustOpen(t, path)
	if got, _ := s.Query(Filter{}); len(got) != 3 {
		t.Fatalf("torn tail corrupted the store: %d records", len(got))
	}
	if err := s.Append(rec("ring", 16, 8, 3, 19)); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Query(Filter{}); len(got) != 4 {
		t.Fatalf("append after torn-tail recovery: %d records", len(got))
	}
	_ = s.Close()
}

func TestStoreFromResultSet(t *testing.T) {
	spec := harness.Spec{
		Name: "rs", Graph: "ring", Sizes: []int{8}, KMode: "const:2",
		Trials: 3, Seed: 5, Lean: true,
	}
	rs, err := harness.Runner{Parallel: 1}.Run(&spec)
	if err != nil {
		t.Fatal(err)
	}
	recs := FromResultSet(rs)
	if len(recs) != 3 {
		t.Fatalf("%d records from 3 trials", len(recs))
	}
	for i, r := range recs {
		if r.Graph != "ring" || r.N != 8 || r.K != 2 || r.Q != 2 ||
			r.Protocol != "uniform-ag" || r.Trial != i || r.Rounds <= 0 {
			t.Fatalf("record %d = %+v", i, r)
		}
	}

	path := filepath.Join(t.TempDir(), "store.jsonl")
	s := mustOpen(t, path)
	defer s.Close()
	if err := s.Append(recs...); err != nil {
		t.Fatal(err)
	}
	ts, err := s.Tail(Filter{Spec: "rs", Graph: "ring", N: 8, K: 2, Q: 2})
	if err != nil || ts.Trials != 3 {
		t.Fatalf("cell tail = %+v, err=%v", ts, err)
	}
}
