// Package queueing implements the feed-forward queueing networks that power
// the paper's analysis (Theorem 2 and Figures 1, 3 and 4): n single-server
// queues arranged in a tree, k customers initially distributed arbitrarily,
// no external arrivals, every serviced customer moving to the parent queue
// and leaving the system at the root.
//
// The proof of Theorem 2 runs through a chain of stochastic dominations,
//
//	t(Q^tree_n) ≼ t(Q̂^tree_n) ≈ t(Q^line) ≼ t(Q̂^line) = O((k+l_max+log n)/µ),
//
// and this package implements every system in the chain so the chain can be
// validated empirically: the work-conserving tree network, the line network
// obtained by merging levels, the line network with all customers pushed to
// the farthest queue, and the Jackson-style open line with Poisson arrivals
// used in the final step (Lemma 7).
//
// Service distributions are pluggable: exponential servers (the M/M/1
// systems of the theorem) and geometric servers (the discrete process that
// the gossip reduction actually yields; Lemma 2 of Borokhovich et al. shows
// exponential servers with µ = p are stochastically slower).
package queueing

import (
	"container/heap"
	"math"
	"math/rand/v2"

	"algossip/internal/core"
	"algossip/internal/graph"
)

// Sampler draws one service time.
type Sampler func(rng *rand.Rand) float64

// Exponential returns a sampler of Exp(mu) service times (mean 1/mu).
func Exponential(mu float64) Sampler {
	if mu <= 0 {
		panic("queueing: rate must be positive")
	}
	return func(rng *rand.Rand) float64 { return rng.ExpFloat64() / mu }
}

// Geometric returns a sampler of Geom(p) service times counted in whole
// timeslots (support 1, 2, ...; mean 1/p).
func Geometric(p float64) Sampler {
	if p <= 0 || p > 1 {
		panic("queueing: success probability must be in (0, 1]")
	}
	logq := math.Log1p(-p)
	return func(rng *rand.Rand) float64 {
		if p == 1 {
			return 1
		}
		u := rng.Float64()
		return math.Floor(math.Log(1-u)/logq) + 1
	}
}

// event is a scheduled service completion.
type event struct {
	at   float64
	node core.NodeID
}

// eventQueue is a min-heap of events ordered by completion time.
type eventQueue []event

func (q eventQueue) Len() int           { return len(q) }
func (q eventQueue) Less(i, j int) bool { return q[i].at < q[j].at }
func (q eventQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)        { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// SimulateTree runs the closed feed-forward tree network Q^tree_n:
// customersAt[v] customers start at node v, every server is always on
// (work-conserving), and the simulation returns the time at which the last
// customer departs through the root.
func SimulateTree(tree *graph.Tree, customersAt []int, service Sampler, rng *rand.Rand) float64 {
	n := tree.N()
	if len(customersAt) != n {
		panic("queueing: customersAt length must equal tree size")
	}
	total := 0
	queueLen := make([]int, n)
	for v, c := range customersAt {
		if c < 0 {
			panic("queueing: negative customer count")
		}
		queueLen[v] = c
		total += c
	}
	if total == 0 {
		return 0
	}

	events := &eventQueue{}
	busy := make([]bool, n)
	start := func(v core.NodeID, now float64) {
		busy[v] = true
		heap.Push(events, event{at: now + service(rng), node: v})
	}
	for v := 0; v < n; v++ {
		if queueLen[v] > 0 {
			start(core.NodeID(v), 0)
		}
	}

	departed := 0
	var now float64
	for departed < total {
		e := heap.Pop(events).(event)
		now = e.at
		v := e.node
		busy[v] = false
		queueLen[v]--
		if v == tree.Root {
			departed++
		} else {
			p := tree.Parent[v]
			queueLen[p]++
			if !busy[p] {
				start(p, now)
			}
		}
		if queueLen[v] > 0 {
			start(v, now)
		}
	}
	return now
}

// SimulateLine runs the closed line network Q^line: queues at levels
// l_max, ..., 1 in series, customersAtLevel[l] customers starting at level
// l (level 0 is outside; level 1 is the root queue). Returns the drain
// time. This is the system obtained from Q̂^tree by merging each level into
// a single queue (Definition 6 / Lemma 5).
func SimulateLine(customersAtLevel []int, service Sampler, rng *rand.Rand) float64 {
	lmax := len(customersAtLevel) - 1
	// Build the path tree root=0 <- 1 <- ... <- lmax and reuse SimulateTree.
	parent := make([]core.NodeID, lmax)
	for i := range parent {
		if i == 0 {
			parent[i] = core.NilNode
		} else {
			parent[i] = core.NodeID(i - 1)
		}
	}
	tree := &graph.Tree{Root: 0, Parent: parent}
	customers := make([]int, lmax)
	for level := 1; level <= lmax; level++ {
		customers[level-1] = customersAtLevel[level]
	}
	return SimulateTree(tree, customers, service, rng)
}

// SimulateLineAllAtEnd runs Q̂^line: the line of lmax queues with all k
// customers at the farthest queue (Definition 8) — the stochastically
// slowest system in the chain and the one Theorem 2 bounds directly.
func SimulateLineAllAtEnd(lmax, k int, service Sampler, rng *rand.Rand) float64 {
	customersAtLevel := make([]int, lmax+1)
	customersAtLevel[lmax] = k
	return SimulateLine(customersAtLevel, service, rng)
}

// SimulateOpenLine runs the open Jackson line of Lemma 7: the k customers
// arrive at the farthest queue as a Poisson process of rate lambda and
// traverse lmax exponential-µ queues. Returns the departure time of the
// k-th customer through the root. (Initial queue contents are empty; the
// paper additionally pads queues to equilibrium, which only slows the
// system — this simulation therefore lower-bounds the analyzed one while
// keeping the same scaling.)
func SimulateOpenLine(lmax, k int, mu, lambda float64, rng *rand.Rand) float64 {
	if lambda <= 0 || mu <= 0 {
		panic("queueing: rates must be positive")
	}
	// Arrival times: cumulative exponentials of rate lambda.
	arrivals := make([]float64, k)
	t := 0.0
	for i := range arrivals {
		t += rng.ExpFloat64() / lambda
		arrivals[i] = t
	}
	// Exact recursion per queue: d_i = max(a_i, d_{i-1}) + S_i
	// (the "later arrivals yield later departures" recurrence of the
	// paper's appendix, applied stage by stage).
	dep := append([]float64(nil), arrivals...)
	for stage := 0; stage < lmax; stage++ {
		var prev float64
		for i := range dep {
			startAt := dep[i]
			if prev > startAt {
				startAt = prev
			}
			prev = startAt + rng.ExpFloat64()/mu
			dep[i] = prev
		}
	}
	return dep[k-1]
}

// MeanDrainTime averages the drain time of fn over trials independent runs
// seeded from seed.
func MeanDrainTime(trials int, seed uint64, fn func(rng *rand.Rand) float64) float64 {
	sum := 0.0
	for i := 0; i < trials; i++ {
		rng := core.NewRand(core.SplitSeed(seed, uint64(i)))
		sum += fn(rng)
	}
	return sum / float64(trials)
}
