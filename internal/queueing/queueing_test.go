package queueing

import (
	"math"
	"testing"

	"math/rand/v2"

	"algossip/internal/core"
	"algossip/internal/graph"
)

const testTrials = 200

func pathTree(lmax int) *graph.Tree {
	parent := make([]core.NodeID, lmax)
	for i := range parent {
		if i == 0 {
			parent[i] = core.NilNode
		} else {
			parent[i] = core.NodeID(i - 1)
		}
	}
	return &graph.Tree{Root: 0, Parent: parent}
}

func TestSamplers(t *testing.T) {
	rng := core.NewRand(1)
	// Exponential(2) has mean 0.5.
	exp := Exponential(2)
	sum := 0.0
	for i := 0; i < 20000; i++ {
		x := exp(rng)
		if x < 0 {
			t.Fatal("negative service time")
		}
		sum += x
	}
	if mean := sum / 20000; math.Abs(mean-0.5) > 0.05 {
		t.Errorf("Exp(2) mean = %.3f, want 0.5", mean)
	}
	// Geometric(0.25) has mean 4 and support {1, 2, ...}.
	geo := Geometric(0.25)
	sum = 0
	for i := 0; i < 20000; i++ {
		x := geo(rng)
		if x < 1 || x != math.Trunc(x) {
			t.Fatalf("geometric sample %v not a positive integer", x)
		}
		sum += x
	}
	if mean := sum / 20000; math.Abs(mean-4) > 0.3 {
		t.Errorf("Geom(0.25) mean = %.3f, want 4", mean)
	}
	if Geometric(1)(rng) != 1 {
		t.Error("Geom(1) must always be 1")
	}
}

func TestSamplerValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { Exponential(0) },
		func() { Exponential(-1) },
		func() { Geometric(0) },
		func() { Geometric(1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestSingleQueueDrain: one M/M/1 queue with k customers drains in about
// k/µ (sum of k exponential services).
func TestSingleQueueDrain(t *testing.T) {
	tree := pathTree(1)
	const k, mu = 50, 2.0
	mean := MeanDrainTime(testTrials, 7, func(rng *rand.Rand) float64 {
		return SimulateTree(tree, []int{k}, Exponential(mu), rng)
	})
	want := k / mu
	if math.Abs(mean-want) > 0.15*want {
		t.Errorf("drain = %.2f, want ~%.2f", mean, want)
	}
}

func TestEmptySystem(t *testing.T) {
	tree := pathTree(3)
	if d := SimulateTree(tree, []int{0, 0, 0}, Exponential(1), core.NewRand(1)); d != 0 {
		t.Fatalf("empty system drained in %v", d)
	}
}

// TestDominanceChain validates the heart of Theorem 2's proof empirically:
// mean drain times are ordered t(Q^tree) <= t(Q^line) <= t(Q̂^line) when the
// line is built from the tree's levels.
func TestDominanceChain(t *testing.T) {
	// A binary-ish tree of depth 4 with customers scattered.
	g := graph.BinaryTree(15)
	tree := g.BFSTree(0)
	customers := make([]int, 15)
	total := 0
	for v := range customers {
		customers[v] = v % 3 // 0,1,2,0,1,2,...
		total += customers[v]
	}
	depths := tree.Depths()
	lmax := tree.Depth()
	byLevel := make([]int, lmax+1)
	for v, c := range customers {
		byLevel[depths[v]] += c
	}

	mu := 1.0
	meanTree := MeanDrainTime(testTrials, 3, func(rng *rand.Rand) float64 {
		return SimulateTree(tree, customers, Exponential(mu), rng)
	})
	meanLine := MeanDrainTime(testTrials, 4, func(rng *rand.Rand) float64 {
		return SimulateLine(byLevel, Exponential(mu), rng)
	})
	meanEnd := MeanDrainTime(testTrials, 5, func(rng *rand.Rand) float64 {
		return SimulateLineAllAtEnd(lmax, total, Exponential(mu), rng)
	})

	slack := 1.07 // tolerate Monte Carlo noise on an inequality of means
	if meanTree > meanLine*slack {
		t.Errorf("dominance violated: tree %.2f > line %.2f", meanTree, meanLine)
	}
	if meanLine > meanEnd*slack {
		t.Errorf("dominance violated: line %.2f > line-all-at-end %.2f", meanLine, meanEnd)
	}
}

// TestTheorem2Scaling: the drain time of Q̂^line grows linearly in k (for
// fixed lmax) and linearly in lmax (for fixed k), with slope about 1/µ and
// 1/(µ) respectively — O((k + lmax)/µ).
func TestTheorem2Scaling(t *testing.T) {
	mu := 1.0
	drain := func(lmax, k int, seed uint64) float64 {
		return MeanDrainTime(testTrials, seed, func(rng *rand.Rand) float64 {
			return SimulateLineAllAtEnd(lmax, k, Exponential(mu), rng)
		})
	}
	// Linear in k: doubling k from 100 to 200 with lmax=5 roughly doubles
	// the k-term. t ≈ k/µ for k >> lmax.
	t100 := drain(5, 100, 11)
	t200 := drain(5, 200, 12)
	ratio := t200 / t100
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("k-scaling ratio = %.2f, want ~2 (t100=%.1f t200=%.1f)", ratio, t100, t200)
	}
	// Linear in lmax for k small.
	l10 := drain(10, 3, 13)
	l40 := drain(40, 3, 14)
	if l40 < l10*2 {
		t.Errorf("lmax-scaling too flat: lmax=10 -> %.1f, lmax=40 -> %.1f", l10, l40)
	}
}

// TestGeometricFasterThanExponential validates Lemma 2 of Borokhovich et
// al.: with equal means (µ = p), geometric servers drain no slower than...
// precisely, exponential servers are stochastically slower, so mean drain
// with Exp(p) >= mean drain with Geom(p).
func TestGeometricFasterThanExponential(t *testing.T) {
	tree := pathTree(6)
	customers := []int{0, 2, 2, 2, 2, 2}
	p := 0.5
	meanGeo := MeanDrainTime(testTrials*2, 21, func(rng *rand.Rand) float64 {
		return SimulateTree(tree, customers, Geometric(p), rng)
	})
	meanExp := MeanDrainTime(testTrials*2, 22, func(rng *rand.Rand) float64 {
		return SimulateTree(tree, customers, Exponential(p), rng)
	})
	if meanExp < meanGeo*0.95 {
		t.Errorf("exponential (%.2f) unexpectedly faster than geometric (%.2f)", meanExp, meanGeo)
	}
}

// TestOpenLineJackson: with λ = µ/2 (ρ = 1/2), the k-th departure leaves
// after about 2k/µ + 2·lmax/µ — Lemma 7's two-phase accounting.
func TestOpenLineJackson(t *testing.T) {
	const mu = 1.0
	const k, lmax = 200, 10
	mean := MeanDrainTime(testTrials, 31, func(rng *rand.Rand) float64 {
		return SimulateOpenLine(lmax, k, mu, mu/2, rng)
	})
	// t1 ≈ 2k/µ dominates; allow [2k/µ, (2k+8·lmax)/µ + slack].
	lo := 2.0 * k / mu * 0.9
	hi := (2.0*k + 10.0*lmax) / mu * 1.2
	if mean < lo || mean > hi {
		t.Errorf("open line k-th departure = %.1f, want in [%.1f, %.1f]", mean, lo, hi)
	}
}

// TestMovingCustomerBackwardSlows validates Lemma 6: moving one customer
// one queue backward cannot speed up the drain (compared on means).
func TestMovingCustomerBackwardSlows(t *testing.T) {
	base := []int{0, 3, 3, 3, 0}  // levels 0..4
	moved := []int{0, 3, 2, 4, 0} // one customer moved from level 2 to 3
	meanBase := MeanDrainTime(testTrials*2, 41, func(rng *rand.Rand) float64 {
		return SimulateLine(base, Exponential(1), rng)
	})
	meanMoved := MeanDrainTime(testTrials*2, 42, func(rng *rand.Rand) float64 {
		return SimulateLine(moved, Exponential(1), rng)
	})
	if meanMoved < meanBase*0.93 {
		t.Errorf("moving a customer backward sped the system up: %.2f -> %.2f", meanBase, meanMoved)
	}
}

func TestSimulateTreeOnBFSTreeOfGraph(t *testing.T) {
	g := graph.Grid(4, 4)
	tree := g.BFSTree(0)
	customers := make([]int, 16)
	for i := range customers {
		customers[i] = 1
	}
	d := SimulateTree(tree, customers, Exponential(1), core.NewRand(9))
	if d <= 0 {
		t.Fatalf("drain time %v", d)
	}
}

// TestEquilibriumPaddingSlowsAndMatchesLemma8 validates the Lemma 7 setup:
// (i) the equilibrium-padded open line is no faster on average than the
// unpadded one, and (ii) the k-th real departure lands near the closed form
// t1 + t2 ≈ k/λ + lmax/(µ-λ) for k >> lmax (each sojourn is Exp(µ-λ) in
// equilibrium, Lemma 8).
func TestEquilibriumPaddingSlowsAndMatchesLemma8(t *testing.T) {
	const mu, lambda = 1.0, 0.5
	const k, lmax = 150, 8
	padded := MeanDrainTime(testTrials, 51, func(rng *rand.Rand) float64 {
		return SimulateOpenLineEquilibrium(lmax, k, mu, lambda, rng)
	})
	plain := MeanDrainTime(testTrials, 52, func(rng *rand.Rand) float64 {
		return SimulateOpenLine(lmax, k, mu, lambda, rng)
	})
	if padded < plain*0.95 {
		t.Errorf("equilibrium padding sped the system up: %.1f vs %.1f", padded, plain)
	}
	// Closed form: the last arrival lands ~ k/λ; it then needs ~lmax
	// sojourns of mean 1/(µ-λ).
	want := float64(k)/lambda + float64(lmax)/(mu-lambda)
	if padded < want*0.85 || padded > want*1.25 {
		t.Errorf("padded drain %.1f, closed form %.1f", padded, want)
	}
}

func TestEquilibriumValidation(t *testing.T) {
	rng := core.NewRand(1)
	for _, fn := range []func(){
		func() { SimulateOpenLineEquilibrium(5, 5, 1.0, 1.0, rng) }, // lambda == mu
		func() { SimulateOpenLineEquilibrium(0, 5, 1.0, 0.5, rng) }, // lmax < 1
		func() { SimulateOpenLineEquilibrium(5, 0, 1.0, 0.5, rng) }, // k < 1
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkTreeDrain(b *testing.B) {
	g := graph.Grid(8, 8)
	tree := g.BFSTree(0)
	customers := make([]int, g.N())
	for i := range customers {
		customers[i] = 1
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := core.NewRand(uint64(i))
		_ = SimulateTree(tree, customers, Exponential(1), rng)
	}
}
