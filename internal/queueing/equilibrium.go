package queueing

import (
	"container/heap"
	"math/rand/v2"

	"algossip/internal/core"
)

// SimulateOpenLineEquilibrium runs the open Jackson line exactly as the
// proof of Theorem 2 (Lemma 7) sets it up: before the k real customers
// start arriving (Poisson rate lambda at the farthest queue), every queue
// is padded with *dummy customers* drawn from the Jackson equilibrium
// distribution — geometric with parameter ρ = lambda/mu, P(L=j) = (1-ρ)ρ^j
// — so the network starts in its stationary state. Padding can only delay
// the real customers (the paper's argument), and with the system in
// equilibrium each real customer's per-queue sojourn time is exactly
// Exp(mu - lambda) (Lemma 8), which is what makes the closed-form analysis
// go through.
//
// It returns the time at which the k-th real customer departs the root.
func SimulateOpenLineEquilibrium(lmax, k int, mu, lambda float64, rng *rand.Rand) float64 {
	if lambda <= 0 || mu <= lambda {
		panic("queueing: need 0 < lambda < mu for a stable equilibrium")
	}
	if lmax < 1 || k < 1 {
		panic("queueing: need lmax >= 1 and k >= 1")
	}
	rho := lambda / mu

	// Queue contents as FIFO slices of flags: true = real customer.
	queues := make([][]bool, lmax)
	for q := range queues {
		for rng.Float64() < rho { // geometric(1-rho) dummy count
			queues[q] = append(queues[q], false)
		}
	}

	// Pending Poisson arrivals of the k real customers at queue lmax-1.
	arrivals := make([]float64, k)
	t := 0.0
	for i := range arrivals {
		t += rng.ExpFloat64() / lambda
		arrivals[i] = t
	}
	nextArrival := 0

	events := &eventQueue{}
	busy := make([]bool, lmax)
	start := func(q int, now float64) {
		busy[q] = true
		heap.Push(events, event{at: now + rng.ExpFloat64()/mu, node: core.NodeID(q)})
	}
	for q := range queues {
		if len(queues[q]) > 0 {
			start(q, 0)
		}
	}

	const arrivalMarker = core.NilNode
	pushArrival := func() {
		if nextArrival < k {
			heap.Push(events, event{at: arrivals[nextArrival], node: arrivalMarker})
		}
	}
	pushArrival()

	realDeparted := 0
	var now float64
	for realDeparted < k {
		e := heap.Pop(events).(event)
		now = e.at
		if e.node == arrivalMarker {
			last := lmax - 1
			queues[last] = append(queues[last], true)
			if !busy[last] {
				start(last, now)
			}
			nextArrival++
			pushArrival()
			continue
		}
		q := int(e.node)
		busy[q] = false
		customer := queues[q][0]
		queues[q] = queues[q][1:]
		if q == 0 {
			if customer {
				realDeparted++
			}
		} else {
			queues[q-1] = append(queues[q-1], customer)
			if !busy[q-1] {
				start(q-1, now)
			}
		}
		if len(queues[q]) > 0 {
			start(q, now)
		}
	}
	return now
}
