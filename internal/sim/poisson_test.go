package sim

import (
	"errors"
	"math"
	"testing"

	"algossip/internal/core"
	"algossip/internal/graph"
)

func TestPoissonCompletesAndCountsWakeups(t *testing.T) {
	g := graph.Complete(8)
	p := newProbe(4000)
	res, err := RunPoisson(g, p, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Timeslots != 4000 {
		t.Fatalf("res = %+v", res)
	}
	// 4000 wakeups of 8 rate-1 clocks take about 4000/8 = 500 time units.
	if res.Time < 400 || res.Time > 600 {
		t.Errorf("continuous time %.1f, expected ~500", res.Time)
	}
	// Per-node wakeup counts are balanced (i.i.d. exponential clocks).
	for v, c := range p.wakeCount {
		if c < 300 || c > 700 {
			t.Errorf("node %d woke %d times, expected ~500", v, c)
		}
	}
}

func TestPoissonTimeout(t *testing.T) {
	g := graph.Line(3)
	p := newProbe(1 << 30)
	res, err := RunPoisson(g, p, 1, 5)
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
	if res.Completed {
		t.Fatal("must not complete")
	}
}

func TestPoissonDeterminism(t *testing.T) {
	g := graph.Grid(3, 3)
	run := func() float64 {
		p := newProbe(500)
		res, err := RunPoisson(g, p, 42, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed gave times %v and %v", a, b)
	}
}

// TestPoissonMatchesSlottedModel validates footnote 2 of the paper: the
// uniform-timeslot scheduler is the jump chain of the Poisson-clock
// process, so a protocol's expected stopping time in continuous time units
// matches its slotted stopping time in rounds (both count ~n wakeups per
// round). Compared on means over several seeds with generous tolerance.
func TestPoissonMatchesSlottedModel(t *testing.T) {
	g := graph.Grid(4, 4)
	const trials = 10
	const target = 2000 // wakeups until the probe reports done

	var slottedRounds, poissonTime float64
	for seed := uint64(0); seed < trials; seed++ {
		ps := newProbe(target)
		res, err := New(g, core.Asynchronous, ps, core.SplitSeed(seed, 1)).Run()
		if err != nil {
			t.Fatal(err)
		}
		slottedRounds += float64(res.Rounds)

		pp := newProbe(target)
		pres, err := RunPoisson(g, pp, core.SplitSeed(seed, 2), 0)
		if err != nil {
			t.Fatal(err)
		}
		poissonTime += pres.Time
	}
	slottedRounds /= trials
	poissonTime /= trials
	// Both should be ~target/n = 125.
	want := float64(target) / float64(g.N())
	if math.Abs(slottedRounds-want) > 2 {
		t.Errorf("slotted rounds %.1f, want ~%.0f", slottedRounds, want)
	}
	if math.Abs(poissonTime-want) > want*0.15 {
		t.Errorf("poisson time %.1f, want ~%.0f", poissonTime, want)
	}
}
