package sim

import (
	"errors"
	"strings"
	"testing"

	"algossip/internal/core"
	"algossip/internal/graph"
)

// probe is a minimal protocol that records engine callbacks so scheduling
// semantics can be asserted.
type probe struct {
	wakes      []core.NodeID
	wakeCount  map[core.NodeID]int
	beginCalls []int
	endCalls   []int
	doneAfter  int // total wakeups after which Done becomes true
}

func newProbe(doneAfter int) *probe {
	return &probe{wakeCount: make(map[core.NodeID]int), doneAfter: doneAfter}
}

func (p *probe) Name() string { return "probe" }
func (p *probe) OnWake(v core.NodeID) {
	p.wakes = append(p.wakes, v)
	p.wakeCount[v]++
}
func (p *probe) BeginRound(r int) { p.beginCalls = append(p.beginCalls, r) }
func (p *probe) EndRound(r int)   { p.endCalls = append(p.endCalls, r) }
func (p *probe) Done() bool       { return len(p.wakes) >= p.doneAfter }

func TestSynchronousScheduling(t *testing.T) {
	g := graph.Line(5)
	p := newProbe(15) // exactly 3 full rounds of 5 wakeups
	res, err := New(g, core.Synchronous, p, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
	if !res.Completed {
		t.Fatal("not completed")
	}
	// Every node wakes exactly once per round.
	for v, c := range p.wakeCount {
		if c != 3 {
			t.Errorf("node %d woke %d times, want 3", v, c)
		}
	}
	// BeginRound/EndRound bracket every round in order.
	if len(p.beginCalls) != 3 || len(p.endCalls) != 3 {
		t.Fatalf("begin/end calls = %d/%d, want 3/3", len(p.beginCalls), len(p.endCalls))
	}
	for i := 0; i < 3; i++ {
		if p.beginCalls[i] != i || p.endCalls[i] != i {
			t.Fatalf("round bracketing out of order: %v %v", p.beginCalls, p.endCalls)
		}
	}
	if res.Timeslots != 15 {
		t.Fatalf("timeslots = %d, want 15", res.Timeslots)
	}
}

func TestAsynchronousScheduling(t *testing.T) {
	g := graph.Complete(8)
	p := newProbe(4000)
	res, err := New(g, core.Asynchronous, p, 7).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeslots != 4000 {
		t.Fatalf("timeslots = %d, want 4000", res.Timeslots)
	}
	if res.Rounds != 500 {
		t.Fatalf("rounds = %d, want 500", res.Rounds)
	}
	// No BeginRound/EndRound in the asynchronous model.
	if len(p.beginCalls) != 0 || len(p.endCalls) != 0 {
		t.Fatal("round hooks must not fire in the asynchronous model")
	}
	// Wakeups are uniform: each of 8 nodes expects 500, tolerate ±40%.
	for v, c := range p.wakeCount {
		if c < 300 || c > 700 {
			t.Errorf("node %d woke %d times, expected about 500", v, c)
		}
	}
}

func TestRoundLimit(t *testing.T) {
	g := graph.Line(3)
	p := newProbe(1 << 30) // never done
	res, err := New(g, core.Synchronous, p, 1, WithMaxRounds(10)).Run()
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
	if res.Completed {
		t.Fatal("must not report completed")
	}
	if res.Rounds != 10 {
		t.Fatalf("rounds = %d, want 10", res.Rounds)
	}
	if !strings.Contains(res.String(), "TIMEOUT") {
		t.Errorf("String() = %q, want TIMEOUT marker", res.String())
	}
}

// TestRunUnknownTimeModel drives the engine's error branch: any model
// outside {Synchronous, Asynchronous} must fail with a descriptive error
// and an incomplete zero-round Result, and must never be confused with a
// round-limit timeout.
func TestRunUnknownTimeModel(t *testing.T) {
	g := graph.Line(4)
	for _, tt := range []struct {
		name  string
		model core.TimeModel
	}{
		{"zero", core.TimeModel(0)},
		{"past-end", core.TimeModel(3)},
		{"garbage", core.TimeModel(42)},
	} {
		t.Run(tt.name, func(t *testing.T) {
			p := newProbe(1)
			res, err := New(g, tt.model, p, 1).Run()
			if err == nil {
				t.Fatal("unknown time model accepted")
			}
			if !strings.Contains(err.Error(), "unknown time model") {
				t.Errorf("err = %v, want unknown-time-model message", err)
			}
			if errors.Is(err, ErrRoundLimit) {
				t.Error("unknown-model error must not wrap ErrRoundLimit")
			}
			if res.Completed || res.Rounds != 0 || res.Timeslots != 0 {
				t.Errorf("result not zeroed: %+v", res)
			}
			if res.Protocol != "probe" || res.Graph != g.Name() || res.Model != tt.model {
				t.Errorf("result labels wrong: %+v", res)
			}
			if len(p.wakes) != 0 {
				t.Error("protocol woke despite the error")
			}
		})
	}
}

// TestResultString pins the exact rendering of both Result states, TIMEOUT
// included.
func TestResultString(t *testing.T) {
	timeout := Result{Protocol: "uniform-ag", Graph: "line-8",
		Model: core.Synchronous, Rounds: 1048576}
	if got, want := timeout.String(), "uniform-ag on line-8 [synchronous]: 1048576 rounds (TIMEOUT)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	done := Result{Protocol: "tag-brr", Graph: "barbell-16",
		Model: core.Asynchronous, Rounds: 42, Completed: true}
	if got, want := done.String(), "tag-brr on barbell-16 [asynchronous]: 42 rounds (done)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []core.NodeID {
		p := newProbe(1000)
		if _, err := New(graph.Grid(4, 4), core.Asynchronous, p, 99).Run(); err != nil {
			t.Fatal(err)
		}
		return p.wakes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wake sequences diverge at %d", i)
		}
	}
}

func TestUniformSelectorCoverage(t *testing.T) {
	g := graph.Star(6)
	sel := NewUniform(g)
	rng := core.NewRand(3)
	seen := make(map[core.NodeID]bool)
	for i := 0; i < 500; i++ {
		u := sel.Partner(0, rng)
		if !g.HasEdge(0, u) {
			t.Fatalf("partner %d is not a neighbor", u)
		}
		seen[u] = true
	}
	if len(seen) != 5 {
		t.Errorf("uniform selector covered %d/5 neighbors", len(seen))
	}
	// Leaf has a single neighbor.
	if u := sel.Partner(3, rng); u != 0 {
		t.Errorf("leaf partner = %d, want 0", u)
	}
}

func TestRoundRobinSelectorCycles(t *testing.T) {
	g := graph.Complete(5)
	sel := NewRoundRobin(g)
	rng := core.NewRand(11)
	deg := g.Degree(0)
	// Every window of deg consecutive calls hits each neighbor exactly once.
	for window := 0; window < 3; window++ {
		seen := make(map[core.NodeID]int)
		for i := 0; i < deg; i++ {
			seen[sel.Partner(0, rng)]++
		}
		if len(seen) != deg {
			t.Fatalf("window %d covered %d/%d neighbors", window, len(seen), deg)
		}
		for u, c := range seen {
			if c != 1 {
				t.Fatalf("window %d contacted %d %d times", window, u, c)
			}
		}
	}
}

func TestRoundRobinRandomInitialOffset(t *testing.T) {
	g := graph.Complete(40)
	firsts := make(map[core.NodeID]bool)
	for seed := uint64(0); seed < 30; seed++ {
		sel := NewRoundRobin(g)
		firsts[sel.Partner(0, core.NewRand(seed))] = true
	}
	if len(firsts) < 5 {
		t.Errorf("initial offsets not randomized: only %d distinct first partners", len(firsts))
	}
}

func TestFixedSelector(t *testing.T) {
	sel := NewFixed(4)
	rng := core.NewRand(1)
	if sel.Partner(2, rng) != core.NilNode {
		t.Fatal("unset partner must be NilNode")
	}
	sel.Set(2, 0)
	if sel.Partner(2, rng) != 0 {
		t.Fatal("fixed partner not returned")
	}
	if sel.Get(2) != 0 || sel.Get(1) != core.NilNode {
		t.Fatal("Get wrong")
	}
}

func TestSelectorNames(t *testing.T) {
	g := graph.Line(3)
	if NewUniform(g).Name() != "uniform" ||
		NewRoundRobin(g).Name() != "round-robin" ||
		NewFixed(3).Name() != "fixed" {
		t.Fatal("selector names wrong")
	}
}
