package sim

import (
	"container/heap"
	"fmt"

	"algossip/internal/core"
)

// PoissonResult extends Result with the continuous stopping time.
type PoissonResult struct {
	Result
	// Time is the continuous stopping time; with n rate-1 clocks, one unit
	// of time corresponds to one expected round (n expected wakeups).
	Time float64
}

// RunPoisson drives the protocol under the paper's footnote-2 formulation
// of the asynchronous model: every node has an independent rate-1 Poisson
// clock and wakes at its ticks, so n expected ticks elapse per unit time
// ("there is a total [of] n clock ticks per round"). The discrete
// uniform-timeslot scheduler in Engine.Run is the embedded jump chain of
// this process; RunPoisson exists to validate that equivalence and to
// report stopping times in continuous units.
//
// The protocol must have been constructed with core.Asynchronous semantics
// (immediate delivery). maxTime caps the simulated time.
func RunPoisson(g interface {
	N() int
	Name() string
}, proto Protocol, schedSeed uint64, maxTime float64) (PoissonResult, error) {
	if maxTime <= 0 {
		maxTime = float64(DefaultMaxRounds)
	}
	n := g.N()
	rng := core.NewRand(schedSeed)

	// One pending tick per node in a time-ordered heap; after each wakeup,
	// the node's next tick is exponentially distributed (rate 1).
	ticks := &tickQueue{}
	for v := 0; v < n; v++ {
		heap.Push(ticks, tick{at: rng.ExpFloat64(), node: core.NodeID(v)})
	}

	res := PoissonResult{Result: Result{
		Protocol: proto.Name(),
		Graph:    g.Name(),
		Model:    core.Asynchronous,
	}}
	var now float64
	wakeups := 0
	for !proto.Done() {
		t := heap.Pop(ticks).(tick)
		now = t.at
		if now > maxTime {
			res.Time = maxTime
			res.Rounds = int(maxTime)
			res.Timeslots = wakeups
			return res, fmt.Errorf("sim: poisson run on %s at time %.0f: %w",
				res.Graph, maxTime, ErrRoundLimit)
		}
		proto.OnWake(t.node)
		wakeups++
		heap.Push(ticks, tick{at: now + rng.ExpFloat64(), node: t.node})
	}
	res.Time = now
	res.Rounds = int(now) + 1
	res.Timeslots = wakeups
	res.Completed = true
	return res, nil
}

// tick is one scheduled Poisson clock tick.
type tick struct {
	at   float64
	node core.NodeID
}

type tickQueue []tick

func (q tickQueue) Len() int           { return len(q) }
func (q tickQueue) Less(i, j int) bool { return q[i].at < q[j].at }
func (q tickQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *tickQueue) Push(x any)        { *q = append(*q, x.(tick)) }
func (q *tickQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	*q = old[:n-1]
	return t
}
