// Package simtest provides a reusable conformance suite for sim.Protocol
// implementations. Every gossip protocol in this repository runs the same
// checks: completion under both time models, determinism under fixed seeds,
// monotone Done, tolerance of arbitrary wakeup orders, and round-staging
// discipline in the synchronous model. New protocols get the whole battery
// by providing a Factory.
package simtest

import (
	"testing"

	"algossip/internal/core"
	"algossip/internal/graph"
	"algossip/internal/sim"
)

// Factory builds a fresh protocol instance over g for one conformance run.
// Implementations must seed whatever initial state the protocol needs
// (messages, origins) before returning.
type Factory func(g *graph.Graph, model core.TimeModel, seed uint64) sim.Protocol

// Run executes the full conformance battery against the factory.
func Run(t *testing.T, name string, factory Factory) {
	t.Helper()
	t.Run(name+"/completes", func(t *testing.T) { checkCompletes(t, factory) })
	t.Run(name+"/deterministic", func(t *testing.T) { checkDeterministic(t, factory) })
	t.Run(name+"/done-monotone", func(t *testing.T) { checkDoneMonotone(t, factory) })
	t.Run(name+"/arbitrary-wakeups", func(t *testing.T) { checkArbitraryWakeups(t, factory) })
	t.Run(name+"/sync-staging", func(t *testing.T) { checkSyncStaging(t, factory) })
}

func conformanceGraphs() []*graph.Graph {
	return []*graph.Graph{
		graph.Line(12),
		graph.Complete(10),
		graph.Barbell(12),
		graph.Grid(3, 4),
	}
}

// checkCompletes: the protocol finishes within the engine budget on every
// topology and time model.
func checkCompletes(t *testing.T, factory Factory) {
	t.Helper()
	for _, g := range conformanceGraphs() {
		for _, model := range []core.TimeModel{core.Synchronous, core.Asynchronous} {
			p := factory(g, model, 11)
			res, err := sim.New(g, model, p, 12, sim.WithMaxRounds(1<<17)).Run()
			if err != nil {
				t.Fatalf("%s/%s: %v", g.Name(), model, err)
			}
			if !p.Done() {
				t.Fatalf("%s/%s: engine reported done but protocol disagrees", g.Name(), model)
			}
			if res.Rounds < 0 {
				t.Fatalf("%s/%s: negative rounds", g.Name(), model)
			}
		}
	}
}

// checkDeterministic: identical seeds produce identical stopping times.
func checkDeterministic(t *testing.T, factory Factory) {
	t.Helper()
	g := graph.Grid(3, 4)
	for _, model := range []core.TimeModel{core.Synchronous, core.Asynchronous} {
		run := func() int {
			p := factory(g, model, 21)
			res, err := sim.New(g, model, p, 22, sim.WithMaxRounds(1<<17)).Run()
			if err != nil {
				t.Fatalf("%s: %v", model, err)
			}
			return res.Rounds
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("%s: same seed gave %d and %d rounds", model, a, b)
		}
	}
}

// checkDoneMonotone: once Done reports true it stays true, even under
// further wakeups.
func checkDoneMonotone(t *testing.T, factory Factory) {
	t.Helper()
	g := graph.Complete(10)
	p := factory(g, core.Asynchronous, 31)
	if _, err := sim.New(g, core.Asynchronous, p, 32, sim.WithMaxRounds(1<<17)).Run(); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Fatal("not done after run")
	}
	for i := 0; i < 50; i++ {
		p.OnWake(core.NodeID(i % g.N()))
		if !p.Done() {
			t.Fatal("Done became false after extra wakeups")
		}
	}
}

// checkArbitraryWakeups: protocols must tolerate any wakeup order without
// panicking, including repeated wakeups of a single node (asynchronous
// model semantics put no constraints on the schedule).
func checkArbitraryWakeups(t *testing.T, factory Factory) {
	t.Helper()
	g := graph.Barbell(12)
	p := factory(g, core.Asynchronous, 41)
	// Hammer one node, then round-robin, then a fixed odd pattern.
	for i := 0; i < 200; i++ {
		p.OnWake(0)
	}
	for i := 0; i < 200; i++ {
		p.OnWake(core.NodeID(i % g.N()))
	}
	for i := 0; i < 200; i++ {
		p.OnWake(core.NodeID((i * 7) % g.N()))
	}
	_ = p.Done()
}

// checkSyncStaging: in the synchronous model, wakeups between BeginRound
// and EndRound must not make Done flip mid-round (information becomes
// usable only at the end of the round).
func checkSyncStaging(t *testing.T, factory Factory) {
	t.Helper()
	g := graph.Complete(8)
	p := factory(g, core.Synchronous, 51)
	for round := 0; round < 1<<15 && !p.Done(); round++ {
		p.BeginRound(round)
		doneAtStart := p.Done()
		for v := 0; v < g.N(); v++ {
			p.OnWake(core.NodeID(v))
			if p.Done() != doneAtStart {
				t.Fatalf("Done flipped mid-round %d: staging discipline violated", round)
			}
		}
		p.EndRound(round)
	}
	if !p.Done() {
		t.Fatal("protocol never completed under manual synchronous driving")
	}
}
