package sim

import (
	"strings"
	"testing"

	"algossip/internal/core"
	"algossip/internal/graph"
)

// flipSchedule switches from a to b at round flipAt (test double with an
// injectable churn list).
type flipSchedule struct {
	a, b   *graph.Graph
	flipAt int
	resets map[int][]core.NodeID
}

func (s *flipSchedule) Name() string { return "flip" }
func (s *flipSchedule) N() int       { return s.a.N() }
func (s *flipSchedule) At(round int) *graph.Graph {
	if round < s.flipAt {
		return s.a
	}
	return s.b
}
func (s *flipSchedule) ResetAt(round int) []core.NodeID { return s.resets[round] }

// topoProbe is a probe that also records topology events.
type topoProbe struct {
	probe
	events []TopologyEvent
}

func (p *topoProbe) OnTopologyChange(ev TopologyEvent) { p.events = append(p.events, ev) }

func TestDynamicEngineDeliversTopologyEvents(t *testing.T) {
	a, b := graph.Ring(6), graph.Line(6)
	sched := &flipSchedule{a: a, b: b, flipAt: 3,
		resets: map[int][]core.NodeID{5: {2, 4}}}
	p := &topoProbe{probe: *newProbe(1 << 30)}
	res, err := NewDynamic(sched, core.Synchronous, p, 1, WithMaxRounds(8)).Run()
	if err == nil {
		t.Fatal("probe never finishes; want round-limit error")
	}
	if res.Graph != "flip" {
		t.Fatalf("result graph = %q, want schedule name", res.Graph)
	}
	// Exactly three events: the round-0 alignment, the graph flip at
	// round 3, and the reset at 5.
	if len(p.events) != 3 {
		t.Fatalf("got %d topology events, want 3: %+v", len(p.events), p.events)
	}
	if p.events[0].Round != 0 || p.events[0].Graph != a || p.events[0].Reset != nil {
		t.Fatalf("initial event wrong: %+v", p.events[0])
	}
	if p.events[1].Round != 3 || p.events[1].Graph != b || p.events[1].Reset != nil {
		t.Fatalf("flip event wrong: %+v", p.events[1])
	}
	if p.events[2].Round != 5 || p.events[2].Graph != b || len(p.events[2].Reset) != 2 {
		t.Fatalf("reset event wrong: %+v", p.events[2])
	}
	// Scheduling is untouched: every node still wakes once per round.
	for v, c := range p.wakeCount {
		if c != 8 {
			t.Errorf("node %d woke %d times, want 8", v, c)
		}
	}
}

func TestDynamicEngineAsyncEventAtRoundBoundary(t *testing.T) {
	a, b := graph.Ring(5), graph.Line(5)
	sched := &flipSchedule{a: a, b: b, flipAt: 2}
	p := &topoProbe{probe: *newProbe(18)} // done within round 3
	if _, err := NewDynamic(sched, core.Asynchronous, p, 3).Run(); err != nil {
		t.Fatal(err)
	}
	if len(p.events) != 2 || p.events[0].Round != 0 || p.events[0].Graph != a ||
		p.events[1].Round != 2 || p.events[1].Graph != b {
		t.Fatalf("async events = %+v, want round-0 alignment then a flip at round 2", p.events)
	}
}

// TestDynamicStaticScheduleBitIdentical: driving a protocol through
// NewDynamic(graph.Static(g)) replays the exact trajectory of New(g).
func TestDynamicStaticScheduleBitIdentical(t *testing.T) {
	g := graph.Grid(4, 4)
	for _, model := range []core.TimeModel{core.Synchronous, core.Asynchronous} {
		pa := newProbe(997)
		ra, err := New(g, model, pa, 77).Run()
		if err != nil {
			t.Fatal(err)
		}
		pb := newProbe(997)
		rb, err := NewDynamic(graph.Static(g), model, pb, 77).Run()
		if err != nil {
			t.Fatal(err)
		}
		if ra.Rounds != rb.Rounds || ra.Timeslots != rb.Timeslots {
			t.Fatalf("%s: static schedule diverged: %+v vs %+v", model, ra, rb)
		}
		if len(pa.wakes) != len(pb.wakes) {
			t.Fatalf("%s: wake counts differ", model)
		}
		for i := range pa.wakes {
			if pa.wakes[i] != pb.wakes[i] {
				t.Fatalf("%s: wake sequences diverge at %d", model, i)
			}
		}
	}
}

// TestDynamicRequiresTopologyAware: a protocol without the hook is
// rejected on a genuinely dynamic schedule but allowed on Static.
func TestDynamicRequiresTopologyAware(t *testing.T) {
	g := graph.Ring(6)
	sched := &flipSchedule{a: g, b: graph.Line(6), flipAt: 1}
	_, err := NewDynamic(sched, core.Synchronous, newProbe(6), 1, WithMaxRounds(4)).Run()
	if err == nil || !strings.Contains(err.Error(), "TopologyAware") {
		t.Fatalf("err = %v, want TopologyAware rejection", err)
	}
	if _, err := NewDynamic(graph.Static(g), core.Synchronous, newProbe(6), 1).Run(); err != nil {
		t.Fatalf("static schedule must not require the hook: %v", err)
	}
}

func TestSelectorSetGraph(t *testing.T) {
	a := graph.Complete(6)
	b := graph.Line(6)
	rng := core.NewRand(4)

	u := NewUniform(a)
	u.SetGraph(b)
	for i := 0; i < 50; i++ {
		if p := u.Partner(0, rng); p != 1 {
			t.Fatalf("uniform partner after SetGraph = %d, want 1", p)
		}
	}

	r := NewRoundRobin(a)
	// Burn in cursors on the dense graph so they exceed line degrees.
	for i := 0; i < 5; i++ {
		r.Partner(2, rng)
	}
	r.SetGraph(b)
	seen := map[core.NodeID]int{}
	for i := 0; i < 4; i++ {
		p := r.Partner(2, rng)
		if !b.HasEdge(2, p) {
			t.Fatalf("round-robin partner %d not a line neighbor of 2", p)
		}
		seen[p]++
	}
	if seen[1] != 2 || seen[3] != 2 {
		t.Fatalf("round-robin cycle after SetGraph uneven: %v", seen)
	}

	// Both selectors satisfy the dynamic interface; Fixed does not.
	var _ DynamicSelector = u
	var _ DynamicSelector = r
	if _, ok := interface{}(NewFixed(3)).(DynamicSelector); ok {
		t.Fatal("Fixed must not claim dynamic retargeting")
	}
}
