package sim

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"

	"algossip/internal/core"
	"algossip/internal/graph"
)

// DefaultMaxRounds caps runaway simulations; experiments override it when a
// topology legitimately needs more (e.g. uniform AG on the barbell).
const DefaultMaxRounds = 1 << 20

// ErrRoundLimit is returned (wrapped) by Run when the protocol did not
// complete within the configured round budget.
var ErrRoundLimit = errors.New("sim: round limit exceeded")

// Result summarizes one simulation run.
type Result struct {
	// Protocol is the protocol name.
	Protocol string
	// Graph is the topology name.
	Graph string
	// Model is the time model the run used.
	Model core.TimeModel
	// Rounds is the stopping time in rounds (the paper's unit). In the
	// asynchronous model this is ⌈timeslots/n⌉.
	Rounds int
	// Timeslots is the stopping time in timeslots (asynchronous model
	// only; in the synchronous model it equals n·Rounds by convention).
	Timeslots int
	// Completed reports whether the protocol finished within the budget.
	Completed bool
}

// String renders a compact one-line summary.
func (r Result) String() string {
	status := "done"
	if !r.Completed {
		status = "TIMEOUT"
	}
	return fmt.Sprintf("%s on %s [%s]: %d rounds (%s)",
		r.Protocol, r.Graph, r.Model, r.Rounds, status)
}

// Engine drives one protocol over one graph under one time model with a
// deterministic scheduling RNG. Engines are single-use: construct, Run,
// discard.
type Engine struct {
	g         *graph.Graph
	dyn       graph.Dynamic // nil for static runs
	model     core.TimeModel
	proto     Protocol
	rng       *rand.Rand
	maxRounds int
	shards    int // 0 = classic per-node wake loop
}

// Option configures an Engine.
type Option func(*Engine)

// WithMaxRounds overrides the round budget.
func WithMaxRounds(rounds int) Option {
	return func(e *Engine) { e.maxRounds = rounds }
}

// WithShards enables sharded round-parallel execution with the given
// worker count (see ShardedProtocol). The trajectory is identical for
// every positive shard count — shards=1 runs the same semantics serially
// — so the count is a pure execution knob, like the harness's -parallel.
// Requires the synchronous model and a ShardedProtocol. Zero keeps the
// classic wake loop.
func WithShards(shards int) Option {
	return func(e *Engine) { e.shards = shards }
}

// New returns an Engine for the given graph, time model and protocol.
// schedSeed feeds the scheduling RNG (asynchronous wakeup order); protocol
// randomness is owned by the protocol itself.
func New(g *graph.Graph, model core.TimeModel, proto Protocol, schedSeed uint64, opts ...Option) *Engine {
	e := &Engine{
		g:         g,
		model:     model,
		proto:     proto,
		rng:       core.NewRand(schedSeed),
		maxRounds: DefaultMaxRounds,
	}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// NewDynamic returns an Engine that drives proto over the time-varying
// topology d: at every round boundary the engine queries the schedule
// and, when the graph changed or churned nodes rejoined, delivers a
// TopologyEvent to the protocol (which must implement TopologyAware
// unless d is the trivial static schedule). Running over graph.Static(g)
// is bit-identical to New(g, ...): the scheduling RNG stream and wakeup
// order are untouched by the topology checks.
func NewDynamic(d graph.Dynamic, model core.TimeModel, proto Protocol, schedSeed uint64, opts ...Option) *Engine {
	e := New(d.At(0), model, proto, schedSeed, opts...)
	e.dyn = d
	return e
}

// Run executes the simulation until the protocol reports Done or the round
// budget is exhausted, returning the stopping time. The error wraps
// ErrRoundLimit on timeout; the Result is valid either way.
func (e *Engine) Run() (Result, error) {
	res := Result{
		Protocol: e.proto.Name(),
		Graph:    e.g.Name(),
		Model:    e.model,
	}
	if e.dyn != nil {
		res.Graph = e.dyn.Name()
		if _, static := e.dyn.(*graph.StaticSchedule); !static {
			ta, ok := e.proto.(TopologyAware)
			if !ok {
				return res, fmt.Errorf("sim: protocol %s cannot run on dynamic topology %s (does not implement TopologyAware)",
					res.Protocol, res.Graph)
			}
			// Align the protocol with the round-0 topology before any
			// communication: callers construct protocols over the
			// schedule's base graph, which may already differ at round 0
			// (grow starts with most nodes unjoined; i.i.d. failures
			// sample round 0 too).
			var reset []core.NodeID
			if ch, ok := e.dyn.(graph.Churner); ok {
				reset = ch.ResetAt(0)
			}
			ta.OnTopologyChange(TopologyEvent{Round: 0, Graph: e.g, Reset: reset})
		}
	}
	switch e.model {
	case core.Synchronous:
		var rounds int
		var done bool
		if e.shards > 0 {
			sp, ok := e.proto.(ShardedProtocol)
			if !ok {
				return res, fmt.Errorf("sim: protocol %s does not implement ShardedProtocol", res.Protocol)
			}
			if sp.ActiveWords() == nil {
				return res, fmt.Errorf("sim: protocol %s was not configured for sharded execution", res.Protocol)
			}
			rounds, done = e.runShardedSync(sp)
		} else {
			rounds, done = e.runSync()
		}
		res.Rounds = rounds
		res.Timeslots = rounds * e.g.N()
		res.Completed = done
	case core.Asynchronous:
		if e.shards > 0 {
			return res, fmt.Errorf("sim: sharded execution requires the synchronous model")
		}
		slots, done := e.runAsync()
		res.Timeslots = slots
		res.Rounds = (slots + e.g.N() - 1) / e.g.N()
		res.Completed = done
	default:
		return res, fmt.Errorf("sim: unknown time model %v", e.model)
	}
	if !res.Completed {
		return res, fmt.Errorf("sim: %s on %s after %d rounds: %w",
			res.Protocol, res.Graph, res.Rounds, ErrRoundLimit)
	}
	return res, nil
}

// runSync executes synchronous rounds: every node wakes exactly once per
// round; the protocol stages deliveries and applies them in EndRound.
func (e *Engine) runSync() (rounds int, done bool) {
	n := e.g.N()
	for round := 0; round < e.maxRounds; round++ {
		if e.proto.Done() {
			return round, true
		}
		e.stepTopology(round)
		e.proto.BeginRound(round)
		for v := 0; v < n; v++ {
			e.proto.OnWake(core.NodeID(v))
		}
		e.proto.EndRound(round)
	}
	return e.maxRounds, e.proto.Done()
}

// runShardedSync executes synchronous rounds through the sharded
// protocol surface: the active-node bitmap is split into contiguous word
// ranges, one per shard, whose wakeups run concurrently; the protocol
// then commits every staged send in ascending node order on this
// goroutine. The per-round structure (Done poll, topology step,
// BeginRound) matches runSync; EndRound is replaced by CommitRound.
func (e *Engine) runShardedSync(sp ShardedProtocol) (rounds int, done bool) {
	for round := 0; round < e.maxRounds; round++ {
		if e.proto.Done() {
			return round, true
		}
		e.stepTopology(round)
		e.proto.BeginRound(round)
		words := sp.ActiveWords()
		if e.shards == 1 || len(words) == 1 {
			sp.WakeShard(0, len(words))
		} else {
			shards := e.shards
			if shards > len(words) {
				shards = len(words)
			}
			per := (len(words) + shards - 1) / shards
			var wg sync.WaitGroup
			for lo := 0; lo < len(words); lo += per {
				hi := lo + per
				if hi > len(words) {
					hi = len(words)
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					sp.WakeShard(lo, hi)
				}(lo, hi)
			}
			wg.Wait()
		}
		sp.CommitRound(round)
	}
	return e.maxRounds, e.proto.Done()
}

// runAsync executes asynchronous timeslots: one uniformly random node wakes
// per slot; deliveries apply immediately.
func (e *Engine) runAsync() (timeslots int, done bool) {
	n := e.g.N()
	budget := e.maxRounds * n
	for slot := 0; slot < budget; slot++ {
		if e.proto.Done() {
			return slot, true
		}
		if slot%n == 0 {
			e.stepTopology(slot / n)
		}
		e.proto.OnWake(core.NodeID(e.rng.IntN(n)))
	}
	return budget, e.proto.Done()
}

// stepTopology advances a dynamic run's topology to the given round and
// notifies the protocol on a change. It is a no-op for static runs, and
// consumes no scheduling randomness either way, so static trajectories
// are untouched.
func (e *Engine) stepTopology(round int) {
	if e.dyn == nil {
		return
	}
	g := e.dyn.At(round)
	var reset []core.NodeID
	if ch, ok := e.dyn.(graph.Churner); ok {
		reset = ch.ResetAt(round)
	}
	if g == e.g && len(reset) == 0 {
		return
	}
	e.g = g
	if ta, ok := e.proto.(TopologyAware); ok {
		ta.OnTopologyChange(TopologyEvent{Round: round, Graph: g, Reset: reset})
	}
}
