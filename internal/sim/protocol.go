// Package sim is the discrete-event gossip simulation engine. It implements
// the two time models of the paper (Section 2):
//
//   - Synchronous: in every round, every node takes an action and selects a
//     single communication partner; information received in a round becomes
//     usable only at the beginning of the next round. The engine enforces
//     this by calling BeginRound / EndRound around the per-node wakeups, and
//     protocols stage their deliveries until EndRound.
//   - Asynchronous: at every timeslot, one node selected independently and
//     uniformly at random takes an action; n consecutive timeslots count as
//     one round. Deliveries apply immediately.
//
// Partner selection is factored out into PartnerSelector (the paper's
// "gossip communication model"): uniform gossip, round-robin (quasirandom)
// gossip, and the fixed-parent selection used by TAG's Phase 2.
package sim

import (
	"algossip/internal/core"
	"algossip/internal/graph"
)

// Protocol is a gossip protocol driven by the engine. A protocol owns all
// per-node state; the engine only decides who wakes up when.
//
// Implementations must tolerate OnWake being called for any node at any
// time (the engine's scheduling is the only contract), and must make
// synchronous-model staging decisions based on the TimeModel they were
// constructed with.
type Protocol interface {
	// Name identifies the protocol in results and traces.
	Name() string
	// OnWake is invoked when node v takes an action: v selects a partner
	// and communicates according to the protocol.
	OnWake(v core.NodeID)
	// BeginRound is invoked before the wakeups of a synchronous round.
	// It is never invoked in the asynchronous model.
	BeginRound(round int)
	// EndRound is invoked after the wakeups of a synchronous round;
	// staged deliveries must be applied here. Never invoked in the
	// asynchronous model.
	EndRound(round int)
	// Done reports whether the protocol's global task is complete (e.g.
	// every node reached rank k). It must be cheap: the engine polls it
	// every timeslot in the asynchronous model.
	Done() bool
}

// ShardedProtocol is an optional Protocol extension for sharded
// round-parallel execution (Engine WithShards): the engine partitions the
// node set into contiguous 64-node bitmap-word ranges and drives each
// range's wakeups on its own worker, then commits every staged send in a
// single deterministic pass.
//
// The determinism contract mirrors the harness's byte-identity guarantee
// across -parallel values, pushed down into the engine: a protocol's
// sharded trajectory must be identical for every shard count. The
// protocol owns what makes that possible — per-node RNG streams (the
// finest-grained "per-shard" derivation, so the word partition cannot
// influence any draw), fixed per-node staging slots, and a commit that
// walks nodes in ascending ID order regardless of which worker staged
// what.
type ShardedProtocol interface {
	Protocol
	// ActiveWords returns the bitmap (bit v of word v/64 = node v wakes
	// this round) the engine partitions across workers. Protocols may
	// retire provably inert nodes by clearing bits, as long as the
	// decision is a deterministic function of round-start state. A nil
	// return means the protocol was not configured for sharded
	// execution, and Run fails.
	ActiveWords() []uint64
	// WakeShard performs the wakeups of every set bit in the word range
	// [lo, hi), staging all sends. Calls for disjoint ranges run
	// concurrently; implementations must confine mutation to
	// node-owned state (per-node RNGs, per-node slots) or guard shared
	// scratch with per-node locks that cannot affect drawn values.
	WakeShard(lo, hi int)
	// CommitRound applies every staged send in ascending node order and
	// clears the stage. It runs on the engine's goroutine, after all
	// WakeShard calls of the round returned. It replaces EndRound, which
	// is never invoked in sharded execution.
	CommitRound(round int)
}

// TopologyEvent describes one topology transition of a dynamic run. The
// engine delivers it at a round boundary (before BeginRound in the
// synchronous model; at a slot that starts a round in the asynchronous
// model), where no staged deliveries are normally in flight; protocols
// still filter their staged sends through Deliverable so that direct or
// mid-round invocations of the hook stay safe.
type TopologyEvent struct {
	// Round is the first round the new topology is in force.
	Round int
	// Graph is the new topology. Node count never changes across events.
	Graph *graph.Graph
	// Reset lists churned nodes that rejoined as fresh machines: the
	// protocol must reinitialize their state from their initial seeds.
	Reset []core.NodeID
}

// Retarget points sel at the event's graph when the selector supports
// dynamic retargeting (no-op otherwise).
func (ev TopologyEvent) Retarget(sel PartnerSelector) {
	if ds, ok := sel.(DynamicSelector); ok {
		ds.SetGraph(ev.Graph)
	}
}

// Deliverable reports whether a staged send from->to survives the
// transition: the edge still exists and neither endpoint was reset.
// Every protocol's staged-delivery filter shares this rule.
func (ev TopologyEvent) Deliverable(from, to core.NodeID) bool {
	if !ev.Graph.HasEdge(from, to) {
		return false
	}
	for _, v := range ev.Reset {
		if v == from || v == to {
			return false
		}
	}
	return true
}

// TopologyAware is an optional Protocol extension for dynamic-topology
// runs: the engine calls OnTopologyChange whenever the schedule's graph
// changes or churned nodes rejoin. Protocols that implement it must
// re-target their partner selection to the event's graph and drop any
// staged sends the new topology can no longer carry; coded protocols
// keep every surviving node's subspace (a smaller graph never invalidates
// received equations).
type TopologyAware interface {
	OnTopologyChange(ev TopologyEvent)
}

// Observer receives progress callbacks from protocols that support
// per-node completion tracking. All callbacks are synchronous and must not
// retain the arguments.
type Observer interface {
	// NodeDone fires once per node, when that node completes the task
	// (reaches full rank / becomes informed), with the round number in the
	// protocol's time model.
	NodeDone(v core.NodeID, round int)
}

// NopObserver is an Observer that ignores all callbacks.
type NopObserver struct{}

var _ Observer = NopObserver{}

// NodeDone implements Observer.
func (NopObserver) NodeDone(core.NodeID, int) {}
