package sim

import (
	"math/rand/v2"

	"algossip/internal/core"
	"algossip/internal/graph"
)

// PartnerSelector is the paper's "gossip communication model": it decides
// which neighbor a woken node contacts.
type PartnerSelector interface {
	// Partner returns the communication partner for a wakeup of v, or
	// core.NilNode if v has no usable partner (e.g. an isolated node).
	Partner(v core.NodeID, rng *rand.Rand) core.NodeID
	// Name identifies the communication model, e.g. "uniform".
	Name() string
}

// DynamicSelector is a PartnerSelector that can re-target to a new graph
// mid-run (dynamic topologies). Uniform and RoundRobin implement it;
// Fixed deliberately does not — a fixed spanning tree has no meaningful
// retarget, which is why tree-based protocols require static topologies.
type DynamicSelector interface {
	PartnerSelector
	// SetGraph switches partner selection to g. Per-node selector state
	// (round-robin cursors) is preserved where it still makes sense.
	SetGraph(g *graph.Graph)
}

// Uniform selects a partner uniformly at random among all neighbors
// (Definition 1, uniform gossip).
type Uniform struct {
	g *graph.Graph
}

var _ PartnerSelector = (*Uniform)(nil)

// NewUniform returns a uniform selector over g.
func NewUniform(g *graph.Graph) *Uniform { return &Uniform{g: g} }

// Partner implements PartnerSelector.
func (u *Uniform) Partner(v core.NodeID, rng *rand.Rand) core.NodeID {
	nb := u.g.Neighbors(v)
	if len(nb) == 0 {
		return core.NilNode
	}
	return nb[rng.IntN(len(nb))]
}

// Name implements PartnerSelector.
func (u *Uniform) Name() string { return "uniform" }

// SetGraph implements DynamicSelector.
func (u *Uniform) SetGraph(g *graph.Graph) { u.g = g }

// RoundRobin selects partners according to a fixed cyclic list of each
// node's neighbors, with a uniformly random initial position (Definition 2;
// the quasirandom rumor-spreading model). It is stateful: each call for
// node v advances v's cursor.
type RoundRobin struct {
	g      *graph.Graph
	cursor []int
	seeded []bool
}

var _ PartnerSelector = (*RoundRobin)(nil)

// NewRoundRobin returns a round-robin selector over g. Each node's initial
// list position is drawn uniformly on its first wakeup.
func NewRoundRobin(g *graph.Graph) *RoundRobin {
	return &RoundRobin{
		g:      g,
		cursor: make([]int, g.N()),
		seeded: make([]bool, g.N()),
	}
}

// Partner implements PartnerSelector.
func (r *RoundRobin) Partner(v core.NodeID, rng *rand.Rand) core.NodeID {
	nb := r.g.Neighbors(v)
	if len(nb) == 0 {
		return core.NilNode
	}
	if !r.seeded[v] {
		r.cursor[v] = rng.IntN(len(nb))
		r.seeded[v] = true
	}
	u := nb[r.cursor[v]]
	r.cursor[v] = (r.cursor[v] + 1) % len(nb)
	return u
}

// Name implements PartnerSelector.
func (r *RoundRobin) Name() string { return "round-robin" }

// SetGraph implements DynamicSelector: cursors keep their position where
// the new degree allows it and wrap otherwise, so the cyclic discipline
// survives topology changes without re-drawing initial offsets.
func (r *RoundRobin) SetGraph(g *graph.Graph) {
	r.g = g
	for v := range r.cursor {
		deg := g.Degree(core.NodeID(v))
		if deg == 0 {
			r.cursor[v] = 0
			continue
		}
		if r.cursor[v] >= deg {
			r.cursor[v] %= deg
		}
	}
}

// Fixed selects a fixed partner per node — TAG's Phase 2 communication
// model, where every node exchanges only with its spanning-tree parent.
// Nodes mapped to core.NilNode (e.g. the root) never initiate.
type Fixed struct {
	partner []core.NodeID
}

var _ PartnerSelector = (*Fixed)(nil)

// NewFixed returns a fixed selector with all partners unset (NilNode).
func NewFixed(n int) *Fixed {
	p := make([]core.NodeID, n)
	for i := range p {
		p[i] = core.NilNode
	}
	return &Fixed{partner: p}
}

// Set assigns v's fixed partner.
func (f *Fixed) Set(v, partner core.NodeID) { f.partner[v] = partner }

// Get returns v's fixed partner (NilNode if unset).
func (f *Fixed) Get(v core.NodeID) core.NodeID { return f.partner[v] }

// Partner implements PartnerSelector.
func (f *Fixed) Partner(v core.NodeID, _ *rand.Rand) core.NodeID {
	return f.partner[v]
}

// Name implements PartnerSelector.
func (f *Fixed) Name() string { return "fixed" }
