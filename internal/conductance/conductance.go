// Package conductance estimates the conductance Φ(G) and the weak
// conductance Φ_c(G) that parameterize Section 6 of the paper. The
// conductance of a cut S is cut(S, V∖S) / min(vol(S), vol(V∖S)); Φ(G)
// minimizes over all cuts. The weak conductance Φ_c(G) of Censor-Hillel &
// Shachnai relaxes this: information only needs to spread well inside
// *large-enough communities* (subsets of at least n/c nodes containing each
// node), so graphs like the barbell — terrible global conductance, perfect
// clique-local conductance — have Φ_2 = Θ(1).
//
// Exact conductance is exponential in n, so the package provides three
// estimators with documented contracts:
//
//   - Exact(g): exhaustive over all cuts; only for n <= ~22 (tests).
//   - SpectralGap(g): 1 - λ₂ of the lazy random walk, with Cheeger bounds
//     gap/2 <= Φ <= sqrt(2·gap).
//   - WeakLowerBound(g, c): greedily grows <= c communities of >= n/c nodes
//     and returns the smallest community conductance found — a certified
//     lower bound on the best community partition of that shape, which is
//     the quantity the IS protocol's running time tracks.
package conductance

import (
	"math"

	"algossip/internal/core"
	"algossip/internal/graph"
)

// cutStats returns the cut weight and volume of subset S (given as a
// bitmask membership slice).
func cutStats(g *graph.Graph, inS []bool) (cut, volS, volRest int) {
	for v := 0; v < g.N(); v++ {
		deg := g.Degree(core.NodeID(v))
		if inS[v] {
			volS += deg
		} else {
			volRest += deg
		}
		for _, u := range g.Neighbors(core.NodeID(v)) {
			if inS[v] && !inS[u] {
				cut++
			}
		}
	}
	return cut, volS, volRest
}

// phi returns the conductance of the cut S, or +Inf for trivial cuts.
func phi(g *graph.Graph, inS []bool) float64 {
	cut, volS, volRest := cutStats(g, inS)
	den := volS
	if volRest < den {
		den = volRest
	}
	if den == 0 {
		return math.Inf(1)
	}
	return float64(cut) / float64(den)
}

// Exact computes Φ(G) by enumerating all 2^(n-1) cuts. It panics for
// n > 22 — use SpectralGap beyond that.
func Exact(g *graph.Graph) float64 {
	n := g.N()
	if n > 22 {
		panic("conductance: Exact limited to n <= 22")
	}
	if n < 2 {
		return 0
	}
	best := math.Inf(1)
	inS := make([]bool, n)
	// Fix node 0 in S to halve the enumeration.
	for mask := 0; mask < 1<<(n-1); mask++ {
		inS[0] = true
		for v := 1; v < n; v++ {
			inS[v] = mask&(1<<(v-1)) != 0
		}
		if p := phi(g, inS); p < best {
			best = p
		}
	}
	return best
}

// SpectralGap estimates 1 - λ₂ of the lazy random walk matrix
// P = (I + D⁻¹A)/2 by power iteration with deflation against the
// stationary distribution π(v) = deg(v)/2m. By Cheeger's inequality,
// gap/2 <= Φ(G) <= sqrt(2·gap).
func SpectralGap(g *graph.Graph, iters int) float64 {
	n := g.N()
	if n < 2 {
		return 1
	}
	if iters <= 0 {
		iters = 200
	}
	twoM := 0.0
	for v := 0; v < n; v++ {
		twoM += float64(g.Degree(core.NodeID(v)))
	}
	pi := make([]float64, n)
	for v := 0; v < n; v++ {
		pi[v] = float64(g.Degree(core.NodeID(v))) / twoM
	}
	// Start from a deterministic non-uniform vector, deflated against pi.
	x := make([]float64, n)
	for v := range x {
		x[v] = math.Sin(float64(v + 1))
	}
	y := make([]float64, n)
	var lambda float64
	for it := 0; it < iters; it++ {
		deflate(x, pi)
		normalize(x)
		// y = P x with P = (I + D^-1 A)/2.
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.Neighbors(core.NodeID(v)) {
				sum += x[u]
			}
			deg := float64(g.Degree(core.NodeID(v)))
			y[v] = 0.5*x[v] + 0.5*sum/deg
		}
		lambda = dot(x, y) / dot(x, x)
		x, y = y, x
	}
	if lambda > 1 {
		lambda = 1
	}
	return 1 - lambda
}

// deflate removes the component of x along the stationary distribution,
// using the D-weighted inner product under which P is self-adjoint.
func deflate(x, pi []float64) {
	// <x, 1>_pi = sum pi_v x_v ; subtract it so x ⟂ the top eigenvector 1.
	var proj float64
	for v := range x {
		proj += pi[v] * x[v]
	}
	for v := range x {
		x[v] -= proj
	}
}

func normalize(x []float64) {
	s := math.Sqrt(dot(x, x))
	if s == 0 {
		return
	}
	for i := range x {
		x[i] /= s
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// CheegerBounds returns the (lower, upper) bounds on Φ(G) implied by the
// spectral gap.
func CheegerBounds(g *graph.Graph, iters int) (lo, hi float64) {
	gap := SpectralGap(g, iters)
	return gap / 2, math.Sqrt(2 * gap)
}

// Community is one block of a weak-conductance partition.
type Community struct {
	// Nodes lists the members.
	Nodes []core.NodeID
	// Phi is the conductance of the community's induced subgraph.
	Phi float64
}

// WeakLowerBound greedily partitions g into at most c communities of at
// least ⌈n/c⌉ nodes each (BFS-grown, preferring high-connectivity
// expansion) and returns the minimum induced-subgraph conductance across
// communities together with the partition. The result is a lower bound on
// the weak conductance Φ_c(G) achieved by *some* admissible community
// structure, which is what makes the IS protocol fast; the true Φ_c can
// only be larger.
//
// Induced conductance uses Exact for communities of <= 22 nodes and the
// Cheeger lower bound otherwise.
func WeakLowerBound(g *graph.Graph, c int) (float64, []Community) {
	n := g.N()
	if c < 1 {
		panic("conductance: c must be >= 1")
	}
	minSize := (n + c - 1) / c
	assigned := make([]bool, n)
	var comms []Community
	for start := 0; start < n; start++ {
		if assigned[start] {
			continue
		}
		// Grow a community from start: repeatedly absorb the unassigned
		// neighbor with the most edges into the community.
		members := []core.NodeID{core.NodeID(start)}
		assigned[start] = true
		inComm := make(map[core.NodeID]bool)
		inComm[core.NodeID(start)] = true
		for len(members) < minSize {
			best, bestScore := core.NilNode, -1
			for _, m := range members {
				for _, u := range g.Neighbors(m) {
					if assigned[u] {
						continue
					}
					score := 0
					for _, w := range g.Neighbors(u) {
						if inComm[w] {
							score++
						}
					}
					if score > bestScore {
						best, bestScore = u, score
					}
				}
			}
			if best == core.NilNode {
				break // no unassigned frontier; community stays small
			}
			members = append(members, best)
			assigned[best] = true
			inComm[best] = true
		}
		comms = append(comms, Community{Nodes: members})
	}
	// Merge trailing small communities into their predecessor so at most c
	// remain (greedy growth can strand leftovers).
	for len(comms) > c {
		last := comms[len(comms)-1]
		comms = comms[:len(comms)-1]
		comms[len(comms)-1].Nodes = append(comms[len(comms)-1].Nodes, last.Nodes...)
	}
	minPhi := math.Inf(1)
	for i := range comms {
		sub := g.Subgraph(comms[i].Nodes)
		var p float64
		switch {
		case sub.N() < 2:
			p = 1
		case sub.N() <= 22:
			p = Exact(sub)
		default:
			p, _ = CheegerBounds(sub, 300)
		}
		comms[i].Phi = p
		if p < minPhi {
			minPhi = p
		}
	}
	return minPhi, comms
}
