package conductance

import (
	"math"
	"testing"

	"algossip/internal/graph"
)

func TestExactCompleteGraph(t *testing.T) {
	// K_n: every balanced cut has conductance about n/(2(n-1)) ~ 1/2; the
	// minimum over cuts of K_6 is cut of size 1x5: cut=5, vol(S)=5 ->
	// phi=1. Balanced 3x3: cut=9, vol=15 -> 0.6.
	got := Exact(graph.Complete(6))
	if math.Abs(got-0.6) > 1e-9 {
		t.Errorf("Phi(K6) = %v, want 0.6", got)
	}
}

func TestExactLine(t *testing.T) {
	// Line of 8: best cut is the middle edge, cut=1, vol = 7 -> 1/7.
	got := Exact(graph.Line(8))
	want := 1.0 / 7.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Phi(P8) = %v, want %v", got, want)
	}
}

func TestExactBarbellIsTiny(t *testing.T) {
	g := graph.Barbell(16)
	got := Exact(g)
	// Bridge cut: cut=1, vol(one clique) = 8*7+1 = 57 -> 1/57.
	want := 1.0 / 57.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Phi(barbell-16) = %v, want %v", got, want)
	}
}

func TestExactPanicsOnLargeGraph(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Exact(graph.Line(23))
}

// TestCheegerBoundsBracketExact validates gap/2 <= Phi <= sqrt(2 gap) on
// graphs small enough for the exact computation.
func TestCheegerBoundsBracketExact(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Complete(8), graph.Line(10), graph.Ring(12),
		graph.Barbell(14), graph.Star(10), graph.Grid(3, 4),
	}
	for _, g := range graphs {
		exact := Exact(g)
		lo, hi := CheegerBounds(g, 500)
		if exact < lo-1e-6 || exact > hi+1e-6 {
			t.Errorf("%s: Phi=%.4f outside Cheeger bracket [%.4f, %.4f]", g.Name(), exact, lo, hi)
		}
	}
}

func TestSpectralGapOrdering(t *testing.T) {
	// The complete graph has a much larger gap than the barbell.
	k := SpectralGap(graph.Complete(20), 300)
	b := SpectralGap(graph.Barbell(20), 300)
	if k < 10*b {
		t.Errorf("gap(K20)=%v not much larger than gap(barbell)=%v", k, b)
	}
}

// TestWeakConductanceBarbell is the headline property of Section 6: the
// barbell has terrible conductance but Φ_2 = Θ(1), because each clique is
// an excellent community.
func TestWeakConductanceBarbell(t *testing.T) {
	g := graph.Barbell(32)
	weak, comms := WeakLowerBound(g, 2)
	if len(comms) > 2 {
		t.Fatalf("got %d communities, want <= 2", len(comms))
	}
	global, _ := CheegerBounds(g, 300)
	if weak < 0.3 {
		t.Errorf("weak conductance lower bound %.3f, want Θ(1) (>= 0.3)", weak)
	}
	if weak < global {
		t.Errorf("weak (%v) should exceed the global Cheeger lower bound (%v)", weak, global)
	}
	// Communities should partition all nodes.
	seen := make(map[int]bool)
	for _, c := range comms {
		for _, v := range c.Nodes {
			if seen[int(v)] {
				t.Fatalf("node %d in two communities", v)
			}
			seen[int(v)] = true
		}
	}
	if len(seen) != g.N() {
		t.Fatalf("communities cover %d/%d nodes", len(seen), g.N())
	}
}

func TestWeakConductanceCliqueChain(t *testing.T) {
	g := graph.CliqueChain(4, 10)
	weak, comms := WeakLowerBound(g, 4)
	if weak < 0.3 {
		t.Errorf("clique chain weak conductance %.3f, want >= 0.3", weak)
	}
	if len(comms) > 4 {
		t.Errorf("%d communities, want <= 4", len(comms))
	}
}

func TestWeakConductanceC1IsGlobal(t *testing.T) {
	// With c=1 the only community is the whole graph, so the bound equals
	// the induced conductance of G itself.
	g := graph.Complete(10)
	weak, comms := WeakLowerBound(g, 1)
	if len(comms) != 1 {
		t.Fatalf("c=1 produced %d communities", len(comms))
	}
	exact := Exact(g)
	if math.Abs(weak-exact) > 1e-9 {
		t.Errorf("weak(c=1) = %v, exact = %v", weak, exact)
	}
}
