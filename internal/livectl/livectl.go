// Package livectl orchestrates multi-process gossipd deployments over
// their HTTP control planes: it builds the daemon binary, spawns N
// processes hosting disjoint slices of one topology, seeds messages,
// releases the start gate, polls for convergence, and drains everything
// cleanly. It is the engine behind cmd/gossipctl and experiment E17 (live
// cluster vs simulator prediction).
package livectl

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"algossip/internal/core"
	"algossip/internal/graph"
)

// Options configures a deployment. The zero value is not runnable: Procs,
// GraphName, GraphN and K are required.
type Options struct {
	// Bin is the gossipd binary; empty builds it into a temp dir first.
	Bin string
	// Procs is the number of daemon processes; the topology's nodes are
	// split across them in contiguous blocks.
	Procs int
	// Transport is the wire transport ("tcp" default, or "udp").
	Transport string
	// GraphName, GraphN, GraphSeed describe the shared topology, rebuilt
	// identically by every process (see graph.FromName).
	GraphName string
	GraphN    int
	GraphSeed uint64
	// K, Q, PayloadLen, GenSize, Interval, Seed, LossRate mirror the
	// daemon options.
	K          int
	Q          int
	PayloadLen int
	GenSize    int
	Interval   time.Duration
	Seed       uint64
	LossRate   float64
	// ChaosLatency/ChaosJitter/ChaosCorrupt set every process's initial
	// chaos-layer degradation (see runtime.ChaosTransport); the layer is
	// always present, so Chaos/Partition/Heal can degrade mid-run too.
	ChaosLatency time.Duration
	ChaosJitter  time.Duration
	ChaosCorrupt float64
	// ByzantineProcs launches the LAST this-many processes with
	// -chaos-corrupt 1: every frame they send is structurally corrupt, the
	// live-deployment twin of the simulator's polluting adversary. Their
	// nodes still receive honestly (inbound is untouched), so the whole
	// deployment — Byzantine nodes included — can converge as long as
	// every message is seeded at an honest process (SeedRoundRobin does
	// this automatically).
	ByzantineProcs int
	// Stderr receives every daemon's stderr (default os.Stderr).
	Stderr io.Writer
}

// Cluster is a running multi-process deployment.
type Cluster struct {
	n      int
	k      int
	procs  []*proc
	home   map[core.NodeID]int
	client *http.Client
	tmpDir string // owned build dir, removed on Stop
}

type proc struct {
	cmd    *exec.Cmd
	ctl    string // control-plane base address host:port
	nodes  []core.NodeID
	byz    bool // launched with -chaos-corrupt 1
	waitCh chan error
}

// BuildGossipd compiles cmd/gossipd into dir and returns the binary path.
// The working directory must be inside the module.
func BuildGossipd(ctx context.Context, dir string) (string, error) {
	bin := filepath.Join(dir, "gossipd")
	cmd := exec.CommandContext(ctx, "go", "build", "-o", bin, "algossip/cmd/gossipd")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("livectl: build gossipd: %w\n%s", err, out)
	}
	return bin, nil
}

// reservePorts grabs n ephemeral loopback ports, holding all the
// listeners open at once so the kernel cannot hand any of them out again
// (to our own HTTP dials, for instance) while the rest are assigned. The
// returned release func closes them all immediately before the daemons
// re-bind; that narrow window is the remaining race, which Launch covers
// by retrying.
func reservePorts(n int) (addrs []string, release func(), err error) {
	lns := make([]net.Listener, 0, n)
	release = func() {
		for _, ln := range lns {
			_ = ln.Close()
		}
	}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			release()
			return nil, nil, err
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, release, nil
}

// Launch builds (if needed) and spawns the deployment, retrying a few
// times if a daemon loses the port-reservation race at startup. On
// success the processes are running and their control planes are
// reachable; call Stop (usually deferred) to tear everything down.
func Launch(ctx context.Context, opts Options) (*Cluster, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		c, err := launchOnce(ctx, opts)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, lastErr
}

func launchOnce(ctx context.Context, opts Options) (*Cluster, error) {
	if opts.Procs < 1 {
		return nil, fmt.Errorf("livectl: need at least 1 process, got %d", opts.Procs)
	}
	if opts.Stderr == nil {
		opts.Stderr = os.Stderr
	}
	// Build the topology locally to learn the realized node count (some
	// families round the requested size).
	g, err := graph.FromName(opts.GraphName, opts.GraphN, core.NewRand(opts.GraphSeed))
	if err != nil {
		return nil, fmt.Errorf("livectl: %w", err)
	}
	n := g.N()
	if opts.Procs > n {
		return nil, fmt.Errorf("livectl: %d processes for %d nodes", opts.Procs, n)
	}
	if opts.ByzantineProcs < 0 || opts.ByzantineProcs >= opts.Procs {
		if opts.ByzantineProcs != 0 {
			return nil, fmt.Errorf("livectl: %d Byzantine of %d processes (need at least one honest)",
				opts.ByzantineProcs, opts.Procs)
		}
	}

	c := &Cluster{
		n:      n,
		k:      opts.K,
		home:   make(map[core.NodeID]int, n),
		client: &http.Client{Timeout: 10 * time.Second},
	}
	bin := opts.Bin
	if bin == "" {
		dir, err := os.MkdirTemp("", "livectl-*")
		if err != nil {
			return nil, fmt.Errorf("livectl: %w", err)
		}
		c.tmpDir = dir
		if bin, err = BuildGossipd(ctx, dir); err != nil {
			c.Stop()
			return nil, err
		}
	}

	// Pre-reserve one gossip port per node; the peer map must be complete
	// before the first process starts.
	addrs, release, err := reservePorts(n)
	if err != nil {
		c.Stop()
		return nil, fmt.Errorf("livectl: reserve ports: %w", err)
	}
	peerParts := make([]string, n)
	for v := 0; v < n; v++ {
		peerParts[v] = fmt.Sprintf("%d=%s", v, addrs[v])
	}
	peers := strings.Join(peerParts, ",")
	release()

	for p := 0; p < opts.Procs; p++ {
		lo, hi := p*n/opts.Procs, (p+1)*n/opts.Procs
		byz := p >= opts.Procs-opts.ByzantineProcs
		nodes := make([]core.NodeID, 0, hi-lo)
		nodeParts := make([]string, 0, hi-lo)
		for v := lo; v < hi; v++ {
			nodes = append(nodes, core.NodeID(v))
			nodeParts = append(nodeParts, fmt.Sprint(v))
			c.home[core.NodeID(v)] = p
		}
		args := []string{
			"-http", "127.0.0.1:0",
			"-transport", orDefault(opts.Transport, "tcp"),
			"-nodes", strings.Join(nodeParts, ","),
			"-peers", peers,
			"-graph", opts.GraphName,
			"-n", fmt.Sprint(opts.GraphN),
			"-graph-seed", fmt.Sprint(opts.GraphSeed),
			"-k", fmt.Sprint(opts.K),
			"-q", fmt.Sprint(orDefaultInt(opts.Q, 256)),
			"-payload", fmt.Sprint(opts.PayloadLen),
			"-gen", fmt.Sprint(opts.GenSize),
			"-interval", orDefaultDur(opts.Interval, time.Millisecond).String(),
			"-seed", fmt.Sprint(opts.Seed),
			"-loss", fmt.Sprint(opts.LossRate),
			"-loss-seed", fmt.Sprint(core.SplitSeed(opts.Seed, uint64(1000+p))),
			"-chaos-seed", fmt.Sprint(core.SplitSeed(opts.Seed, uint64(2000+p))),
		}
		if opts.ChaosLatency > 0 {
			args = append(args, "-chaos-latency", opts.ChaosLatency.String())
		}
		if opts.ChaosJitter > 0 {
			args = append(args, "-chaos-jitter", opts.ChaosJitter.String())
		}
		corrupt := opts.ChaosCorrupt
		if byz {
			corrupt = 1
		}
		if corrupt > 0 {
			args = append(args, "-chaos-corrupt", fmt.Sprint(corrupt))
		}
		cmd := exec.Command(bin, args...)
		cmd.Stderr = opts.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("livectl: %w", err)
		}
		if err := cmd.Start(); err != nil {
			c.Stop()
			return nil, fmt.Errorf("livectl: start gossipd: %w", err)
		}
		pr := &proc{cmd: cmd, nodes: nodes, byz: byz, waitCh: make(chan error, 1)}
		c.procs = append(c.procs, pr)

		// The first stdout line announces the control address.
		ctlCh := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				line := sc.Text()
				if a, ok := parseControlLine(line); ok {
					select {
					case ctlCh <- a:
					default:
					}
				}
			}
		}()
		go func() { pr.waitCh <- cmd.Wait() }()

		select {
		case pr.ctl = <-ctlCh:
		case err := <-pr.waitCh:
			pr.waitCh <- err
			c.Stop()
			return nil, fmt.Errorf("livectl: gossipd %d exited before announcing control address: %v", p, err)
		case <-time.After(30 * time.Second):
			c.Stop()
			return nil, fmt.Errorf("livectl: gossipd %d never announced its control address", p)
		case <-ctx.Done():
			c.Stop()
			return nil, ctx.Err()
		}
	}
	return c, nil
}

func parseControlLine(line string) (string, bool) {
	const marker = "control http://"
	i := strings.Index(line, marker)
	if i < 0 {
		return "", false
	}
	rest := line[i+len(marker):]
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	return rest, true
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}

func orDefaultInt(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

func orDefaultDur(v, d time.Duration) time.Duration {
	if v == 0 {
		return d
	}
	return v
}

// N is the realized node count; Procs the process count.
func (c *Cluster) N() int     { return c.n }
func (c *Cluster) Procs() int { return len(c.procs) }

// ControlAddrs lists every process's control address.
func (c *Cluster) ControlAddrs() []string {
	out := make([]string, len(c.procs))
	for i, p := range c.procs {
		out[i] = p.ctl
	}
	return out
}

func (c *Cluster) post(ctx context.Context, ctl, path string, body any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+ctl+path, rd)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("livectl: POST %s on %s: %s: %s", path, ctl, resp.Status, strings.TrimSpace(string(msg)))
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

func (c *Cluster) get(ctx context.Context, ctl, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+ctl+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("livectl: GET %s on %s: %s", path, ctl, resp.Status)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// WaitHealthy blocks until every process answers /healthz.
func (c *Cluster) WaitHealthy(ctx context.Context) error {
	for _, p := range c.procs {
		for {
			if err := c.get(ctx, p.ctl, "/healthz", nil); err == nil {
				break
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("livectl: %s never became healthy: %w", p.ctl, ctx.Err())
			case <-time.After(50 * time.Millisecond):
			}
		}
	}
	return nil
}

// Seed places message index at node v (payload nil in rank-only mode).
func (c *Cluster) Seed(ctx context.Context, v core.NodeID, index int, payload []byte) error {
	p, ok := c.home[v]
	if !ok {
		return fmt.Errorf("livectl: node %d not in deployment", v)
	}
	body := map[string]any{"node": int(v), "index": index}
	if len(payload) > 0 {
		body["payload"] = base64.StdEncoding.EncodeToString(payload)
	}
	return c.post(ctx, c.procs[p].ctl, "/seed", body)
}

// HonestNodes lists the nodes hosted by non-Byzantine processes, in id
// order (all nodes when no process is Byzantine).
func (c *Cluster) HonestNodes() []core.NodeID {
	out := make([]core.NodeID, 0, c.n)
	for v := 0; v < c.n; v++ {
		if !c.procs[c.home[core.NodeID(v)]].byz {
			out = append(out, core.NodeID(v))
		}
	}
	return out
}

// SeedRoundRobin seeds message i at node i mod n — the paper's default
// assignment and the simulator's RoundRobinAssign. With Byzantine
// processes in the deployment, the round-robin runs over honest nodes
// only (the simulator's RoundRobinAssignOver): a message seeded behind a
// corrupting sender could never escape, making convergence impossible.
func (c *Cluster) SeedRoundRobin(ctx context.Context, payloads [][]byte) error {
	honest := c.HonestNodes()
	if len(honest) == 0 {
		return fmt.Errorf("livectl: no honest nodes to seed")
	}
	for i := 0; i < c.k; i++ {
		var pl []byte
		if payloads != nil {
			pl = payloads[i]
		}
		if err := c.Seed(ctx, honest[i%len(honest)], i, pl); err != nil {
			return err
		}
	}
	return nil
}

// Start releases every process's start gate; gossiping (and tick
// counting) begins now, after all seeding finished.
func (c *Cluster) Start(ctx context.Context) error {
	for _, p := range c.procs {
		if err := c.post(ctx, p.ctl, "/start", nil); err != nil {
			return err
		}
	}
	return nil
}

// NodeStatus mirrors the daemon's per-node status JSON.
type NodeStatus struct {
	ID       int  `json:"id"`
	Rank     int  `json:"rank"`
	K        int  `json:"k"`
	Done     bool `json:"done"`
	DoneTick int  `json:"doneTick"`
	Ticks    int  `json:"ticks"`
}

type statusResponse struct {
	Nodes []NodeStatus `json:"nodes"`
	Done  bool         `json:"done"`
}

// Status fetches every node's progress across all processes.
func (c *Cluster) Status(ctx context.Context) ([]NodeStatus, error) {
	var all []NodeStatus
	for _, p := range c.procs {
		var st statusResponse
		if err := c.get(ctx, p.ctl, "/status", &st); err != nil {
			return nil, err
		}
		all = append(all, st.Nodes...)
	}
	return all, nil
}

// WaitConverged polls until every node of every process reports full
// rank, returning the deployment's stopping time: the maximum DoneTick
// over all nodes (one tick approximates one synchronous round).
func (c *Cluster) WaitConverged(ctx context.Context) (int, error) {
	for {
		all, err := c.Status(ctx)
		if err != nil {
			return 0, err
		}
		done, maxTick := true, 0
		for _, n := range all {
			if !n.Done {
				done = false
				break
			}
			if n.DoneTick > maxTick {
				maxTick = n.DoneTick
			}
		}
		if done {
			return maxTick, nil
		}
		select {
		case <-ctx.Done():
			return 0, fmt.Errorf("livectl: convergence: %w", ctx.Err())
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// ApplyTopology swaps every process's communication topology.
func (c *Cluster) ApplyTopology(ctx context.Context, family string, n int, seed uint64) error {
	for _, p := range c.procs {
		err := c.post(ctx, p.ctl, "/topology", map[string]any{"family": family, "n": n, "seed": seed})
		if err != nil {
			return err
		}
	}
	return nil
}

// ChaosRequest mirrors the daemon's POST /chaos body: only the fields
// present change state (nil pointer = leave alone).
type ChaosRequest struct {
	LatencyMS   *float64 `json:"latency_ms,omitempty"`
	JitterMS    *float64 `json:"jitter_ms,omitempty"`
	CorruptRate *float64 `json:"corrupt_rate,omitempty"`
	Partition   []int    `json:"partition,omitempty"`
	Heal        bool     `json:"heal,omitempty"`
}

// Chaos applies one degradation request to every process's chaos layer.
func (c *Cluster) Chaos(ctx context.Context, req ChaosRequest) error {
	for _, p := range c.procs {
		if err := c.post(ctx, p.ctl, "/chaos", req); err != nil {
			return err
		}
	}
	return nil
}

// ChaosProc applies one degradation request to a single process.
func (c *Cluster) ChaosProc(ctx context.Context, procIndex int, req ChaosRequest) error {
	if procIndex < 0 || procIndex >= len(c.procs) {
		return fmt.Errorf("livectl: no process %d", procIndex)
	}
	return c.post(ctx, c.procs[procIndex].ctl, "/chaos", req)
}

// Partition symmetrically cuts the given nodes off from the deployment:
// every process's chaos layer drops traffic addressed to them, so the
// partitioned nodes stop receiving from everyone (including each other's
// processes) until Heal.
func (c *Cluster) Partition(ctx context.Context, nodes []core.NodeID) error {
	ids := make([]int, len(nodes))
	for i, v := range nodes {
		ids[i] = int(v)
	}
	return c.Chaos(ctx, ChaosRequest{Partition: ids})
}

// Heal lifts every partition on every process. Byzantine processes keep
// their corrupt-rate (healing reconnects the network, it does not reform
// the adversary).
func (c *Cluster) Heal(ctx context.Context) error {
	return c.Chaos(ctx, ChaosRequest{Heal: true})
}

// Kill crashes one node (on its home process).
func (c *Cluster) Kill(ctx context.Context, v core.NodeID) error {
	p, ok := c.home[v]
	if !ok {
		return fmt.Errorf("livectl: node %d not in deployment", v)
	}
	return c.post(ctx, c.procs[p].ctl, "/kill", map[string]any{"node": int(v)})
}

// Metrics fetches one process's Prometheus text exposition.
func (c *Cluster) Metrics(ctx context.Context, procIndex int) (string, error) {
	if procIndex < 0 || procIndex >= len(c.procs) {
		return "", fmt.Errorf("livectl: no process %d", procIndex)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+c.procs[procIndex].ctl+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return "", err
	}
	defer func() { _ = resp.Body.Close() }()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// Drain asks every process to shut down gracefully and waits for all of
// them to exit, reporting any non-zero exit status.
func (c *Cluster) Drain(ctx context.Context) error {
	for _, p := range c.procs {
		if err := c.post(ctx, p.ctl, "/drain", nil); err != nil {
			return err
		}
	}
	var firstErr error
	for i, p := range c.procs {
		select {
		case err := <-p.waitCh:
			p.waitCh <- err // keep Stop's Wait observation valid
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("livectl: gossipd %d exited uncleanly: %w", i, err)
			}
		case <-ctx.Done():
			return fmt.Errorf("livectl: drain: %w", ctx.Err())
		}
	}
	return firstErr
}

// Stop force-terminates any still-running process and removes the owned
// build directory. It is safe after Drain and as a deferred cleanup.
func (c *Cluster) Stop() {
	for _, p := range c.procs {
		select {
		case err := <-p.waitCh:
			p.waitCh <- err // already exited
		default:
			_ = p.cmd.Process.Kill()
			<-p.waitCh
		}
	}
	if c.tmpDir != "" {
		_ = os.RemoveAll(c.tmpDir)
	}
}
