package gf

// Bit-sliced GF(2^m) kernels: the elimination backend for binary extension
// fields with m > 1.
//
// A row of n field symbols is stored as m *bit-planes* of packed 64-bit
// words, plane-major: plane j holds bit j of every symbol, so the row
// occupies m * SlicedWords(n) contiguous uint64 words and plane j is the
// sub-slice v[j*words : (j+1)*words].
//
//	symbols:   s_0  s_1  ... s_63 | s_64 ...          (one byte each)
//	plane 0:   [ bit 0 of s_0..s_63 ][ bit 0 of s_64.. ]   words uint64
//	plane 1:   [ bit 1 of s_0..s_63 ][ ... ]
//	  ...
//	plane m-1: [ bit m-1 of ... ]
//
// Multiplication by a fixed scalar c is GF(2)-linear on the m bit
// coordinates of a symbol, so it acts on a sliced row as an m x m GF(2)
// matrix applied plane-wise: output plane i receives the XOR of every
// input plane j whose basis image c*x^j has bit i set. dst += c*src is
// therefore at most m^2 word-wise plane XORs — pure XOR word traffic with
// no data-dependent table gathers — instead of one 256-entry lookup per
// symbol. The per-scalar images are precomputed in mulPlanes at field
// construction: mulPlanes[c][j] = c * x^j, the j-th column of the matrix.
//
// Packing inherently masks every byte to its low m bits, the same
// semantics the padded bulkTab rows give the byte kernels.

import "math/bits"

// SlicedWords returns the number of 64-bit words per bit-plane for a row
// of n symbols.
func SlicedWords(n int) int { return (n + 63) / 64 }

// M returns m, the degree of the extension (symbols are m bits).
func (f *GF2m) M() int { return f.m }

// buildMulPlanes fills the per-scalar bit-matrix tables from mulTab:
// mulPlanes[c] holds the matrix columns (images c*x^j for j < m) driving
// the general plane-XOR walk; mulRows[c] holds the transposed rows (bit j
// of mulRows[c][i] = bit i of c*x^j) driving the branchless subset-table
// paths for m ∈ {4, 8}.
func (f *GF2m) buildMulPlanes() {
	f.mulPlanes = make([][8]byte, f.order)
	f.mulRows = make([][8]byte, f.order)
	f.mulRowsU = make([]uint64, f.order)
	for c := 0; c < f.order; c++ {
		for j := 0; j < f.m; j++ {
			img := byte(f.mulTab[c*f.order+(1<<j)])
			f.mulPlanes[c][j] = img
			for i := 0; i < f.m; i++ {
				f.mulRows[c][i] |= ((img >> uint(i)) & 1) << uint(j)
			}
		}
		for i := 0; i < 8; i++ {
			f.mulRowsU[c] |= uint64(f.mulRows[c][i]) << uint(8*i)
		}
	}
	// Tables for the asm byte kernels (a few KiB, built unconditionally
	// so SetTier can switch at any time). The split-nibble table bakes
	// the low-m masking in, and the affine matrix has zero columns past
	// m-1 and zero rows past m-1, so both reproduce the padded-bulkTab
	// semantics c*(s & mask) for arbitrary input bytes.
	f.nibTab = make([]byte, f.order*32)
	for c := 0; c < f.order; c++ {
		for x := 0; x < 16; x++ {
			f.nibTab[c*32+x] = byte(f.mulTab[c*f.order+(x&int(f.mask))])
			f.nibTab[c*32+16+x] = byte(f.mulTab[c*f.order+((x<<4)&int(f.mask))])
		}
	}
	f.gfniTab = make([]uint64, f.order)
	for c := 0; c < f.order; c++ {
		for i := 0; i < 8; i++ {
			f.gfniTab[c] |= uint64(f.mulRows[c][i]) << uint(8*(7-i))
		}
	}
	f.selLog = make([]uint64, 2*f.order)
	for s := range f.selLog {
		f.selLog[s] = f.mulRowsU[f.exp[s]]
	}
}

// PackSliced packs a byte-encoded row into bit-sliced form. dst must have
// length m*SlicedWords(len(src)) and is overwritten. Each source byte is
// masked to its low m bits, mirroring the padded-table semantics of the
// byte kernels.
func (f *GF2m) PackSliced(dst []uint64, src []byte) {
	words := SlicedWords(len(src))
	if len(dst) != f.m*words {
		panic("gf: sliced pack width mismatch")
	}
	clear(dst)
	for i, s := range src {
		w, b := i>>6, uint(i)&63
		for j := 0; j < f.m; j++ {
			dst[j*words+w] |= uint64((s>>uint(j))&1) << b
		}
	}
}

// UnpackSliced unpacks a bit-sliced row back into byte-encoded symbols.
// src must have length m*SlicedWords(len(dst)).
func (f *GF2m) UnpackSliced(dst []byte, src []uint64) {
	words := SlicedWords(len(dst))
	if len(src) != f.m*words {
		panic("gf: sliced unpack width mismatch")
	}
	for i := range dst {
		w, b := i>>6, uint(i)&63
		var s byte
		for j := 0; j < f.m; j++ {
			s |= byte((src[j*words+w]>>b)&1) << uint(j)
		}
		dst[i] = s
	}
}

// SlicedElem extracts symbol i from a bit-sliced row with the given
// per-plane word count — the pivot-coefficient read of the elimination
// loop. The m ∈ {4, 8} unrolls keep the gather's eight independent loads
// in flight instead of serializing through a loop counter.
func (f *GF2m) SlicedElem(v []uint64, words, i int) Elem {
	w, b := i>>6, uint(i)&63
	switch f.m {
	case 8:
		return Elem((v[w]>>b)&1 |
			((v[words+w]>>b)&1)<<1 |
			((v[2*words+w]>>b)&1)<<2 |
			((v[3*words+w]>>b)&1)<<3 |
			((v[4*words+w]>>b)&1)<<4 |
			((v[5*words+w]>>b)&1)<<5 |
			((v[6*words+w]>>b)&1)<<6 |
			((v[7*words+w]>>b)&1)<<7)
	case 4:
		return Elem((v[w]>>b)&1 |
			((v[words+w]>>b)&1)<<1 |
			((v[2*words+w]>>b)&1)<<2 |
			((v[3*words+w]>>b)&1)<<3)
	}
	var c Elem
	for j := 0; j < f.m; j++ {
		c |= Elem((v[j*words+w]>>b)&1) << uint(j)
	}
	return c
}

// Log returns the discrete logarithm of a nonzero element (base: the
// field's generator). It panics on zero. Paired with MulLog it moves the
// elimination factor computation from the 64 KiB mulTab gather onto the
// small L1-resident log/exp tables.
func (f *GF2m) Log(a Elem) uint16 {
	if a == 0 {
		panic("gf: log of zero in " + f.Name())
	}
	return f.log[a]
}

// MulLog returns a * b where b is given by its discrete logarithm.
// a must be nonzero.
func (f *GF2m) MulLog(a Elem, logB uint16) Elem {
	return f.exp[int(f.log[a])+int(logB)]
}

// AddMulSliced performs dst += c*src over bit-sliced rows of the given
// per-plane word count: a no-op for c == 0, a whole-row XOR for c == 1,
// and the plane-matrix XOR walk otherwise. len(dst) and len(src) must be
// at least m*words.
func (f *GF2m) AddMulSliced(dst, src []uint64, words int, c Elem) {
	if c == 0 || words == 0 {
		return
	}
	n := f.m * words
	dst = dst[:n]
	src = src[:n]
	if c == 1 {
		XorWords(dst, src)
		return
	}
	switch f.m {
	case 8:
		switch activeTier {
		case TierAVX2, TierGFNI:
			if cols := words &^ 3; cols > 0 {
				addMulPlanes8Asm(&dst[0], &src[0], words, cols, f.mulRowsU[c])
				if cols < words {
					f.addMul8Range(dst, src, words, cols, c)
				}
				return
			}
			f.addMul8(dst, src, words, c)
		case TierPortable:
			f.addMul8Portable(dst, src, words, c)
		default:
			f.addMul8(dst, src, words, c)
		}
		return
	case 4:
		switch activeTier {
		case TierAVX2, TierGFNI:
			if cols := words &^ 3; cols > 0 {
				addMulPlanes4Asm(&dst[0], &src[0], words, cols, f.mulRowsU[c])
				if cols < words {
					f.addMul4Range(dst, src, words, cols, c)
				}
				return
			}
			f.addMul4(dst, src, words, c)
		case TierPortable:
			f.addMul4Portable(dst, src, words, c)
		default:
			f.addMul4(dst, src, words, c)
		}
		return
	}
	tab := &f.mulPlanes[c]
	switch words {
	case 1:
		for j, s := range src {
			img := tab[j]
			for img != 0 {
				i := bits.TrailingZeros8(img)
				img &= img - 1
				dst[i] ^= s
			}
		}
	case 2:
		for j := 0; 2*j < n; j++ {
			img := tab[j]
			if img == 0 {
				continue
			}
			s0, s1 := src[2*j], src[2*j+1]
			for img != 0 {
				i := bits.TrailingZeros8(img)
				img &= img - 1
				dst[2*i] ^= s0
				dst[2*i+1] ^= s1
			}
		}
	default:
		for j := 0; j*words < n; j++ {
			img := tab[j]
			if img == 0 {
				continue
			}
			sp := src[j*words : j*words+words]
			for img != 0 {
				i := bits.TrailingZeros8(img)
				img &= img - 1
				dp := dst[i*words : i*words+words]
				for w, s := range sp {
					dp[w] ^= s
				}
			}
		}
	}
}

// addMul8 is the GF(256) multiply-add: per word-column, the 8 source
// plane words split into two half-space subset-XOR tables (the
// four-Russians trick), and each destination plane folds in exactly two
// table entries selected by the transposed matrix row — branchless, no
// per-set-bit loop, ~45 word ops per column regardless of the scalar's
// popcount.
func (f *GF2m) addMul8(dst, src []uint64, words int, c Elem) {
	rows := &f.mulRows[c]
	r0, r1, r2, r3 := rows[0], rows[1], rows[2], rows[3]
	r4, r5, r6, r7 := rows[4], rows[5], rows[6], rows[7]
	var ta, tb [16]uint64 // entry 0 stays zero; the rest is overwritten per column
	for w := 0; w < words; w++ {
		ta[1] = src[w]
		ta[2] = src[words+w]
		ta[4] = src[2*words+w]
		ta[8] = src[3*words+w]
		tb[1] = src[4*words+w]
		tb[2] = src[5*words+w]
		tb[4] = src[6*words+w]
		tb[8] = src[7*words+w]
		fillSubsets(&ta)
		fillSubsets(&tb)
		dst[w] ^= ta[r0&15] ^ tb[r0>>4]
		dst[words+w] ^= ta[r1&15] ^ tb[r1>>4]
		dst[2*words+w] ^= ta[r2&15] ^ tb[r2>>4]
		dst[3*words+w] ^= ta[r3&15] ^ tb[r3>>4]
		dst[4*words+w] ^= ta[r4&15] ^ tb[r4>>4]
		dst[5*words+w] ^= ta[r5&15] ^ tb[r5>>4]
		dst[6*words+w] ^= ta[r6&15] ^ tb[r6>>4]
		dst[7*words+w] ^= ta[r7&15] ^ tb[r7>>4]
	}
}

// addMul4 is the GF(16) counterpart: one 16-entry subset table over the 4
// source planes, one lookup per destination plane.
func (f *GF2m) addMul4(dst, src []uint64, words int, c Elem) {
	rows := &f.mulRows[c]
	r0, r1, r2, r3 := rows[0], rows[1], rows[2], rows[3]
	var ta [16]uint64 // entry 0 stays zero; the rest is overwritten per column
	for w := 0; w < words; w++ {
		ta[1] = src[w]
		ta[2] = src[words+w]
		ta[4] = src[2*words+w]
		ta[8] = src[3*words+w]
		fillSubsets(&ta)
		dst[w] ^= ta[r0&15]
		dst[words+w] ^= ta[r1&15]
		dst[2*words+w] ^= ta[r2&15]
		dst[3*words+w] ^= ta[r3&15]
	}
}

// fillSubsets completes a subset-XOR table whose singleton entries
// (indices 1, 2, 4, 8) are already set: entry s becomes the XOR of the
// singletons selected by the bits of s.
func fillSubsets(t *[16]uint64) {
	t[3] = t[1] ^ t[2]
	t[5] = t[1] ^ t[4]
	t[6] = t[2] ^ t[4]
	t[7] = t[3] ^ t[4]
	t[9] = t[1] ^ t[8]
	t[10] = t[2] ^ t[8]
	t[11] = t[3] ^ t[8]
	t[12] = t[4] ^ t[8]
	t[13] = t[5] ^ t[8]
	t[14] = t[6] ^ t[8]
	t[15] = t[7] ^ t[8]
}

// MulRowsPacked returns the same eight selector bytes packed
// little-endian into one word (byte i = transposed row i), so a blocked
// kernel fetches all selectors of a scalar with a single load and
// unpacks them with shifts instead of eight dependent byte loads.
func (f *GF2m) MulRowsPacked(c Elem) uint64 { return f.mulRowsU[c] }

// MulRowsPackedLog returns MulRowsPacked(MulLog(c, logB)) through one
// fused log-domain table, shortening the per-pivot dependency chain of
// the elimination loop (log lookup -> selector, instead of log -> exp ->
// selector). c must be nonzero.
func (f *GF2m) MulRowsPackedLog(c Elem, logB uint16) uint64 {
	return f.selLog[int(f.log[c])+int(logB)]
}

// SlicedTabWords returns the length in words of a precomputed
// subset-table block for a sliced row with the given per-plane word
// count, or 0 when the field has no table-accelerated kernel (m not in
// {4, 8}). The tables depend only on the source row, so a row that is
// XOR-ed into many destinations (a stored echelon row) builds them once
// at insert time and every later multiply-add skips the per-call build.
func (f *GF2m) SlicedTabWords(words int) int {
	switch f.m {
	case 8:
		return 32 * words
	case 4:
		return 16 * words
	default:
		return 0
	}
}

// BuildSlicedTables fills tab (length SlicedTabWords(words)) with the
// per-word-column subset-XOR tables of src: for m=8, two 16-entry tables
// per column (low and high plane halves); for m=4, one.
func (f *GF2m) BuildSlicedTables(tab, src []uint64, words int) {
	switch f.m {
	case 8:
		for w := 0; w < words; w++ {
			ta := (*[16]uint64)(tab[32*w : 32*w+16])
			tb := (*[16]uint64)(tab[32*w+16 : 32*w+32])
			ta[0], tb[0] = 0, 0
			ta[1] = src[w]
			ta[2] = src[words+w]
			ta[4] = src[2*words+w]
			ta[8] = src[3*words+w]
			tb[1] = src[4*words+w]
			tb[2] = src[5*words+w]
			tb[4] = src[6*words+w]
			tb[8] = src[7*words+w]
			fillSubsets(ta)
			fillSubsets(tb)
		}
	case 4:
		for w := 0; w < words; w++ {
			ta := (*[16]uint64)(tab[16*w : 16*w+16])
			ta[0] = 0
			ta[1] = src[w]
			ta[2] = src[words+w]
			ta[4] = src[2*words+w]
			ta[8] = src[3*words+w]
			fillSubsets(ta)
		}
	default:
		panic("gf: no sliced table kernel for " + f.Name())
	}
}

// ScaleSliced performs v = c*v in place over a bit-sliced row. It works
// word-column-wise through an m-word register block, so no scratch row is
// needed (Solve's pivot normalization is the only caller).
func (f *GF2m) ScaleSliced(v []uint64, words int, c Elem) {
	if c == 1 || words == 0 {
		return
	}
	if c == 0 {
		clear(v[:f.m*words])
		return
	}
	tab := &f.mulPlanes[c]
	m := f.m
	for w := 0; w < words; w++ {
		var in [8]uint64
		for j := 0; j < m; j++ {
			in[j] = v[j*words+w]
		}
		for i := 0; i < m; i++ {
			var acc uint64
			for j := 0; j < m; j++ {
				if tab[j]&(1<<uint(i)) != 0 {
					acc ^= in[j]
				}
			}
			v[i*words+w] = acc
		}
	}
}
