package gf

import (
	"bytes"
	"testing"

	"math/rand/v2"
)

// extensionOrders is every binary extension field with a sliced backend.
var extensionOrders = []int{2, 4, 8, 16, 32, 64, 128, 256}

// slicedField constructs GF(2^m) for order q = 2^m directly (MustNew(2)
// would return the GF2 specialization, which has no sliced kernels).
func slicedField(t testing.TB, q int) *GF2m {
	t.Helper()
	m := 0
	for v := q; v > 1; v >>= 1 {
		m++
	}
	f, err := NewGF2m(m)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// packRow packs a byte row into a fresh sliced buffer.
func packRow(f *GF2m, src []byte) []uint64 {
	v := make([]uint64, f.M()*SlicedWords(len(src)))
	f.PackSliced(v, src)
	return v
}

// unpackRow unpacks a sliced buffer into a fresh n-byte row.
func unpackRow(f *GF2m, v []uint64, n int) []byte {
	out := make([]byte, n)
	f.UnpackSliced(out, v)
	return out
}

func TestPackUnpackSlicedRoundTrip(t *testing.T) {
	lengths := []int{0, 1, 7, 63, 64, 65, 128, 129, 1000}
	for _, q := range extensionOrders {
		f := slicedField(t, q)
		rng := rand.New(rand.NewPCG(uint64(q), 3))
		for _, n := range lengths {
			row := RandBytes(f, n, rng)
			got := unpackRow(f, packRow(f, row), n)
			if !bytes.Equal(got, row) {
				t.Fatalf("%s: pack/unpack round trip mismatch at n=%d", f.Name(), n)
			}
		}
		// Packing masks stray high bits, mirroring the padded bulkTab rows.
		raw := make([]byte, 70)
		for i := range raw {
			raw[i] = byte(37 * i)
		}
		masked := make([]byte, len(raw))
		for i, b := range raw {
			masked[i] = b & byte(q-1)
		}
		if got := unpackRow(f, packRow(f, raw), len(raw)); !bytes.Equal(got, masked) {
			t.Fatalf("%s: pack does not mask to m bits", f.Name())
		}
	}
}

func TestSlicedElem(t *testing.T) {
	for _, q := range extensionOrders {
		f := slicedField(t, q)
		rng := rand.New(rand.NewPCG(uint64(q), 5))
		row := RandBytes(f, 150, rng)
		v := packRow(f, row)
		words := SlicedWords(len(row))
		for i, want := range row {
			if got := f.SlicedElem(v, words, i); got != Elem(want) {
				t.Fatalf("%s: SlicedElem(%d) = %d, want %d", f.Name(), i, got, want)
			}
		}
	}
}

// TestAddMulSlicedMatchesScalar cross-checks the plane-XOR kernel against
// the scalar Mul/Add reference for every extension field, every
// coefficient of small fields, and lengths straddling the word-count
// specializations (words ∈ {1, 2, >2}).
func TestAddMulSlicedMatchesScalar(t *testing.T) {
	lengths := []int{1, 7, 63, 64, 65, 128, 129, 200, 300}
	for _, q := range extensionOrders {
		f := slicedField(t, q)
		t.Run(f.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(uint64(q), 7))
			coeffs := make([]Elem, 0, q)
			if q <= 16 {
				for c := 0; c < q; c++ {
					coeffs = append(coeffs, Elem(c))
				}
			} else {
				coeffs = append(coeffs, 0, 1, Elem(q-1))
				for i := 0; i < 8; i++ {
					coeffs = append(coeffs, Rand(f, rng))
				}
			}
			for _, n := range lengths {
				words := SlicedWords(n)
				for _, c := range coeffs {
					src := RandBytes(f, n, rng)
					dst := RandBytes(f, n, rng)
					want := append([]byte(nil), dst...)
					addMulRef(f, want, src, c)

					sDst, sSrc := packRow(f, dst), packRow(f, src)
					f.AddMulSliced(sDst, sSrc, words, c)
					if got := unpackRow(f, sDst, n); !bytes.Equal(got, want) {
						t.Fatalf("AddMulSliced(n=%d, c=%d) diverges from scalar reference", n, c)
					}
				}
			}
		})
	}
}

// TestScaleSlicedMatchesScalar cross-checks the in-place scale kernel.
func TestScaleSlicedMatchesScalar(t *testing.T) {
	for _, q := range extensionOrders {
		f := slicedField(t, q)
		rng := rand.New(rand.NewPCG(uint64(q), 11))
		for _, n := range []int{1, 64, 65, 129, 300} {
			words := SlicedWords(n)
			for _, c := range []Elem{0, 1, Elem(q - 1), Rand(f, rng)} {
				v := RandBytes(f, n, rng)
				want := append([]byte(nil), v...)
				mulRef(f, want, c)

				sv := packRow(f, v)
				f.ScaleSliced(sv, words, c)
				if got := unpackRow(f, sv, n); !bytes.Equal(got, want) {
					t.Fatalf("%s: ScaleSliced(n=%d, c=%d) diverges from scalar reference", f.Name(), n, c)
				}
			}
		}
	}
}

// FuzzAddMulSliced cross-checks the sliced multiply-add kernel against the
// scalar Mul loop over random rows and scalars for every extension field —
// the sliced analogue of FuzzAddMulSlice.
func FuzzAddMulSliced(f *testing.F) {
	f.Add([]byte("hello sliced world"), []byte("abcdefghijklmnopqr"), byte(3), uint8(7))
	f.Add([]byte{0, 1, 2, 3}, []byte{255, 254, 253, 252}, byte(1), uint8(3))
	f.Add(bytes.Repeat([]byte{0xAA}, 200), bytes.Repeat([]byte{0x55}, 200), byte(77), uint8(0))
	f.Fuzz(func(t *testing.T, dstRaw, srcRaw []byte, cRaw, sel byte) {
		fld := slicedField(t, extensionOrders[int(sel)%len(extensionOrders)])
		n := min(len(srcRaw), len(dstRaw))
		if n == 0 {
			return
		}
		src := reduceRow(fld, srcRaw[:n])
		dst := reduceRow(fld, dstRaw[:n])
		c := Elem(int(cRaw) % fld.Order())

		want := make([]byte, n)
		for i := 0; i < n; i++ {
			want[i] = byte(fld.Add(Elem(dst[i]), fld.Mul(c, Elem(src[i]))))
		}

		words := SlicedWords(n)
		sSrc := packRow(fld, src)
		// Every available kernel tier must match the element-wise result.
		for _, tier := range AvailableTiers() {
			sDst := packRow(fld, dst)
			withFuzzTier(t, tier, func() { fld.AddMulSliced(sDst, sSrc, words, c) })
			if got := unpackRow(fld, sDst, n); !bytes.Equal(got, want) {
				t.Fatalf("%s AddMulSliced(c=%d, n=%d) tier %v diverges from scalar path:\ngot  %v\nwant %v",
					fld.Name(), c, n, tier, got, want)
			}
		}
	})
}

// TestDotProductMatchesScalar pins the bulkTab-row DotProduct against the
// per-element Mul/Add reference for every field (the generic interface
// contract — prime fields keep their scalar loop).
func TestDotProductMatchesScalar(t *testing.T) {
	for _, q := range allOrders {
		f := MustNew(q)
		rng := rand.New(rand.NewPCG(uint64(q), 13))
		for _, n := range []int{0, 1, 3, 4, 5, 17, 128, 257} {
			a := RandVector(f, n, rng)
			b := RandVector(f, n, rng)
			var want Elem
			for i := range a {
				want = f.Add(want, f.Mul(a[i], b[i]))
			}
			if got := f.DotProduct(a, b); got != want {
				t.Fatalf("%s: DotProduct(n=%d) = %d, want %d", f.Name(), n, got, want)
			}
		}
	}
}
