package gf

import (
	"bytes"
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

// withTier runs fn under a forced dispatch tier and restores the
// previous tier afterwards.
func withTier(t *testing.T, tier Tier, fn func()) {
	t.Helper()
	old := ActiveTier()
	if err := SetTier(tier); err != nil {
		t.Fatalf("SetTier(%v): %v", tier, err)
	}
	defer func() {
		if err := SetTier(old); err != nil {
			t.Fatalf("restore tier %v: %v", old, err)
		}
	}()
	fn()
}

// scalarAddMulSlice computes the oracle result under TierScalar into a
// fresh copy of dst.
func scalarAddMulSlice(t *testing.T, f *GF2m, dst, src []byte, c Elem) []byte {
	t.Helper()
	want := slices.Clone(dst)
	withTier(t, TierScalar, func() { f.AddMulSlice(want, src, c) })
	return want
}

// TestTierParseAndClamp pins the ALGOSSIP_GF_TIER token set and the
// supported-tier ordering.
func TestTierParseAndClamp(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Tier
		ok   bool
	}{
		{"scalar", TierScalar, true},
		{"portable", TierPortable, true},
		{"avx2", TierAVX2, true},
		{"gfni", TierGFNI, true},
		{"auto", bestTier(), true},
		{"", bestTier(), true},
		{"sse9", TierScalar, false},
	} {
		got, err := ParseTier(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseTier(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	avail := AvailableTiers()
	if len(avail) < 2 || avail[0] != TierScalar || avail[1] != TierPortable {
		t.Fatalf("AvailableTiers() = %v; want scalar, portable prefix", avail)
	}
	for _, tier := range avail {
		if !TierSupported(tier) {
			t.Errorf("available tier %v not supported", tier)
		}
	}
	if TierSupported(bestTier() + 1) {
		t.Errorf("tier above bestTier()=%v reported supported", bestTier())
	}
}

// tierEdgeLens covers zero, sub-block, exact-block, and every
// off-by-one around the 32-byte asm block width, plus odd sizes that
// leave both a vector part and a scalar tail.
var tierEdgeLens = []int{0, 1, 2, 3, 7, 8, 15, 16, 31, 32, 33, 47, 63, 64, 65, 95, 96, 97, 100, 255, 256, 257, 1000, 1024}

// TestTierEquivalenceBytes checks AddMulSlice and MulSlice of every
// available tier against the scalar oracle for every extension field,
// every edge-case length, every scalar, including dst == src aliasing
// and the dst-tail-untouched contract.
func TestTierEquivalenceBytes(t *testing.T) {
	for _, order := range []int{4, 16, 32, 256} {
		f := mustGF2m(t, order)
		rng := rand.New(rand.NewSource(int64(order)))
		for _, tier := range AvailableTiers() {
			if tier == TierScalar {
				continue
			}
			t.Run(fmt.Sprintf("%s/%v", f.Name(), tier), func(t *testing.T) {
				for _, n := range tierEdgeLens {
					src := make([]byte, n)
					for i := range src {
						src[i] = byte(rng.Intn(order))
					}
					base := make([]byte, n+5) // 5 tail bytes must stay untouched
					for i := range base {
						base[i] = byte(rng.Intn(order))
					}
					for _, c := range []Elem{0, 1, 2, Elem(order - 1), Elem(rng.Intn(order))} {
						want := scalarAddMulSlice(t, f, base, src, c)
						got := slices.Clone(base)
						withTier(t, tier, func() { f.AddMulSlice(got, src, c) })
						if !bytes.Equal(got, want) {
							t.Fatalf("AddMulSlice len=%d c=%d: tier %v diverges from scalar", n, c, tier)
						}
						// In-place scale.
						wantV := slices.Clone(src)
						withTier(t, TierScalar, func() { f.MulSlice(wantV, c) })
						gotV := slices.Clone(src)
						withTier(t, tier, func() { f.MulSlice(gotV, c) })
						if !bytes.Equal(gotV, wantV) {
							t.Fatalf("MulSlice len=%d c=%d: tier %v diverges from scalar", n, c, tier)
						}
						// Exact dst == src aliasing: dst[i] ^= c*dst[i] must
						// match computing it from a snapshot.
						wantA := scalarAddMulSlice(t, f, src, slices.Clone(src), c)
						gotA := slices.Clone(src)
						withTier(t, tier, func() { f.AddMulSlice(gotA, gotA, c) })
						if !bytes.Equal(gotA, wantA) {
							t.Fatalf("AddMulSlice aliased len=%d c=%d: tier %v diverges", n, c, tier)
						}
					}
				}
			})
		}
	}
}

// TestTierEquivalenceSliced checks AddMulSliced of every available tier
// against the scalar oracle across plane word counts around the
// 4-column asm block width, for every m with a sliced fast path and a
// couple of generic-m widths.
func TestTierEquivalenceSliced(t *testing.T) {
	for _, order := range []int{4, 8, 16, 64, 256} {
		f := mustGF2m(t, order)
		m := f.M()
		rng := rand.New(rand.NewSource(int64(order)))
		for _, tier := range AvailableTiers() {
			if tier == TierScalar {
				continue
			}
			t.Run(fmt.Sprintf("%s/%v", f.Name(), tier), func(t *testing.T) {
				for _, words := range []int{1, 2, 3, 4, 5, 7, 8, 9, 12, 13, 16, 31} {
					n := m * words
					src := make([]uint64, n)
					base := make([]uint64, n+3) // tail words must stay untouched
					for i := range src {
						src[i] = rng.Uint64()
					}
					for i := range base {
						base[i] = rng.Uint64()
					}
					for _, c := range []Elem{0, 1, 2, Elem(order - 1), Elem(rng.Intn(order))} {
						want := slices.Clone(base)
						withTier(t, TierScalar, func() { f.AddMulSliced(want, src, words, c) })
						got := slices.Clone(base)
						withTier(t, tier, func() { f.AddMulSliced(got, src, words, c) })
						if !slices.Equal(got, want) {
							t.Fatalf("AddMulSliced words=%d c=%d: tier %v diverges from scalar", words, c, tier)
						}
						// Exact aliasing dst == src. Only the m ∈ {4, 8}
						// four-Russians kernels read each column before
						// writing it; the generic-m plane walk never
						// supported aliasing, in scalar or any other tier.
						if m == 4 || m == 8 {
							wantA := slices.Clone(src)
							withTier(t, TierScalar, func() { f.AddMulSliced(wantA, slices.Clone(src), words, c) })
							gotA := slices.Clone(src)
							withTier(t, tier, func() { f.AddMulSliced(gotA, gotA, words, c) })
							if !slices.Equal(gotA, wantA) {
								t.Fatalf("AddMulSliced aliased words=%d c=%d: tier %v diverges", words, c, tier)
							}
						}
					}
				}
				// words == 0 must be a no-op on every tier.
				withTier(t, tier, func() { f.AddMulSliced(nil, nil, 0, 3) })
			})
		}
	}
}

// TestTierEquivalenceElem routes the []Elem AXPY/Scale entry points
// (which forward to the byte kernels) through every tier once, so the
// coefficient side of elimination is covered too.
func TestTierEquivalenceElem(t *testing.T) {
	f := mustGF2m(t, 256)
	rng := rand.New(rand.NewSource(99))
	n := 129
	src := make([]Elem, n)
	base := make([]Elem, n)
	for i := range src {
		src[i] = Elem(rng.Intn(256))
		base[i] = Elem(rng.Intn(256))
	}
	c := Elem(0x53)
	want := slices.Clone(base)
	withTier(t, TierScalar, func() { f.AXPY(want, src, c) })
	for _, tier := range AvailableTiers() {
		got := slices.Clone(base)
		withTier(t, tier, func() { f.AXPY(got, src, c) })
		if !slices.Equal(got, want) {
			t.Fatalf("AXPY: tier %v diverges from scalar", tier)
		}
	}
}

func mustGF2m(t *testing.T, order int) *GF2m {
	t.Helper()
	m := 0
	for 1<<m < order {
		m++
	}
	f, err := NewGF2m(m)
	if err != nil {
		t.Fatalf("NewGF2m(%d): %v", m, err)
	}
	return f
}
