//go:build !amd64

package gf

// Stub bodies for the amd64 assembly kernels. They are unreachable: the
// dispatcher can only select TierAVX2/TierGFNI when cpufeat detected the
// features, which never happens off amd64.

func addMulNibAsm(dst, src *byte, n int, tab *byte)   { panic("gf: no asm kernel on this GOARCH") }
func mulNibAsm(v *byte, n int, tab *byte)             { panic("gf: no asm kernel on this GOARCH") }
func addMulGFNIAsm(dst, src *byte, n int, mat uint64) { panic("gf: no asm kernel on this GOARCH") }
func mulGFNIAsm(v *byte, n int, mat uint64)           { panic("gf: no asm kernel on this GOARCH") }
func addMulPlanes8Asm(dst, src *uint64, words, cols int, sel uint64) {
	panic("gf: no asm kernel on this GOARCH")
}
func addMulPlanes4Asm(dst, src *uint64, words, cols int, sel uint64) {
	panic("gf: no asm kernel on this GOARCH")
}
