// amd64 kernels for the avx2/gfni tiers. Callers guarantee:
//   - byte kernels: n > 0 and n%32 == 0
//   - plane kernels: cols > 0 and cols%4 == 0, cols <= words
//   - dst/src either identical or non-overlapping
// Remainders never reach these functions; the Go wrappers finish them
// with the scalar reference loops.

#include "textflag.h"

// func addMulNibAsm(dst, src *byte, n int, tab *byte)
//
// dst[i] ^= c*src[i] for 32 bytes per iteration via the split-nibble
// PSHUFB trick: tab is 32 bytes, lo[x] = c*(x&mask) then hi[x] =
// c*((x<<4)&mask), so c*s = lo[s&15] ^ hi[s>>4].
TEXT ·addMulNibAsm(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ tab+24(FP), AX

	VBROADCASTI128 (AX), Y4   // lo-nibble table in both lanes
	VBROADCASTI128 16(AX), Y5 // hi-nibble table in both lanes
	MOVL           $0x0f, AX
	MOVQ           AX, X6
	VPBROADCASTB   X6, Y6     // 0x0f byte mask

nibloop:
	VMOVDQU (SI), Y0
	VPSRLW  $4, Y0, Y1
	VPAND   Y6, Y0, Y0 // low nibbles
	VPAND   Y6, Y1, Y1 // high nibbles
	VPSHUFB Y0, Y4, Y0 // lo[s&15]
	VPSHUFB Y1, Y5, Y1 // hi[s>>4]
	VPXOR   Y0, Y1, Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     nibloop
	VZEROUPPER
	RET

// func mulNibAsm(v *byte, n int, tab *byte)
//
// In-place v[i] = c*v[i], same split-nibble tables as addMulNibAsm.
TEXT ·mulNibAsm(SB), NOSPLIT, $0-24
	MOVQ v+0(FP), DI
	MOVQ n+8(FP), CX
	MOVQ tab+16(FP), AX

	VBROADCASTI128 (AX), Y4
	VBROADCASTI128 16(AX), Y5
	MOVL           $0x0f, AX
	MOVQ           AX, X6
	VPBROADCASTB   X6, Y6

scaleloop:
	VMOVDQU (DI), Y0
	VPSRLW  $4, Y0, Y1
	VPAND   Y6, Y0, Y0
	VPAND   Y6, Y1, Y1
	VPSHUFB Y0, Y4, Y0
	VPSHUFB Y1, Y5, Y1
	VPXOR   Y0, Y1, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     scaleloop
	VZEROUPPER
	RET

// func addMulGFNIAsm(dst, src *byte, n int, mat uint64)
//
// dst[i] ^= c*src[i], 32 bytes per iteration. mat is the 8x8 GF(2)
// matrix of "multiply by c" packed for VGF2P8AFFINEQB: matrix row i
// (output bit i) sits in qword byte 7-i.
TEXT ·addMulGFNIAsm(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ mat+24(FP), AX

	MOVQ         AX, X7
	VPBROADCASTQ X7, Y7

gfniloop:
	VMOVDQU         (SI), Y0
	VGF2P8AFFINEQB  $0, Y7, Y0, Y0
	VPXOR           (DI), Y0, Y0
	VMOVDQU         Y0, (DI)
	ADDQ            $32, SI
	ADDQ            $32, DI
	SUBQ            $32, CX
	JNZ             gfniloop
	VZEROUPPER
	RET

// func mulGFNIAsm(v *byte, n int, mat uint64)
//
// In-place v[i] = c*v[i] via VGF2P8AFFINEQB.
TEXT ·mulGFNIAsm(SB), NOSPLIT, $0-24
	MOVQ v+0(FP), DI
	MOVQ n+8(FP), CX
	MOVQ mat+16(FP), AX

	MOVQ         AX, X7
	VPBROADCASTQ X7, Y7

gfniscale:
	VMOVDQU         (DI), Y0
	VGF2P8AFFINEQB  $0, Y7, Y0, Y0
	VMOVDQU         Y0, (DI)
	ADDQ            $32, DI
	SUBQ            $32, CX
	JNZ             gfniscale
	VZEROUPPER
	RET

// func addMulPlanes8Asm(dst, src *uint64, words, cols int, sel uint64)
//
// Bit-sliced GF(2^8) multiply-add over 4 word-columns (32 bytes of each
// of the 8 planes) per iteration: build the two four-Russians subset-XOR
// tables of the source planes on the stack as 32-byte vectors, then each
// destination plane is two table loads and two XORs, selected by its
// byte of sel (= MulRowsPacked(c)). Mirrors addMul8 in sliced.go with
// the word loop replaced by 256-bit columns.
//
// Frame: ta = 16 entries * 32 bytes at tbl-1024(SP),
//        tb = 16 entries * 32 bytes at tbl-512(SP).
TEXT ·addMulPlanes8Asm(SB), $1024-40
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ words+16(FP), DX
	SHLQ $3, DX             // plane stride in bytes
	MOVQ cols+24(FP), CX
	MOVQ sel+32(FP), BX
	LEAQ (DX)(DX*2), R8     // 3*stride
	LEAQ (DX)(DX*4), R9     // 5*stride
	LEAQ (R8)(DX*4), R10    // 7*stride
	LEAQ tbl-1024(SP), R12  // ta base
	LEAQ 512(R12), R13      // tb base

planes8:
	// Source planes 0..7 for this 4-column group.
	VMOVDQU (SI), Y0
	VMOVDQU (SI)(DX*1), Y1
	VMOVDQU (SI)(DX*2), Y2
	VMOVDQU (SI)(R8*1), Y3
	VMOVDQU (SI)(DX*4), Y4
	VMOVDQU (SI)(R9*1), Y5
	VMOVDQU (SI)(R8*2), Y6
	VMOVDQU (SI)(R10*1), Y7

	// ta: all 16 subset XORs of planes 0..3.
	VPXOR   Y8, Y8, Y8
	VMOVDQU Y8, (R12)
	VMOVDQU Y0, 32(R12)
	VMOVDQU Y1, 64(R12)
	VPXOR   Y0, Y1, Y9
	VMOVDQU Y9, 96(R12)
	VMOVDQU Y2, 128(R12)
	VPXOR   Y0, Y2, Y10
	VMOVDQU Y10, 160(R12)
	VPXOR   Y1, Y2, Y11
	VMOVDQU Y11, 192(R12)
	VPXOR   Y9, Y2, Y12
	VMOVDQU Y12, 224(R12)
	VMOVDQU Y3, 256(R12)
	VPXOR   Y0, Y3, Y13
	VMOVDQU Y13, 288(R12)
	VPXOR   Y1, Y3, Y14
	VMOVDQU Y14, 320(R12)
	VPXOR   Y9, Y3, Y15
	VMOVDQU Y15, 352(R12)
	VPXOR   Y2, Y3, Y13
	VMOVDQU Y13, 384(R12)
	VPXOR   Y10, Y3, Y14
	VMOVDQU Y14, 416(R12)
	VPXOR   Y11, Y3, Y15
	VMOVDQU Y15, 448(R12)
	VPXOR   Y12, Y3, Y13
	VMOVDQU Y13, 480(R12)

	// tb: all 16 subset XORs of planes 4..7.
	VMOVDQU Y8, (R13)
	VMOVDQU Y4, 32(R13)
	VMOVDQU Y5, 64(R13)
	VPXOR   Y4, Y5, Y9
	VMOVDQU Y9, 96(R13)
	VMOVDQU Y6, 128(R13)
	VPXOR   Y4, Y6, Y10
	VMOVDQU Y10, 160(R13)
	VPXOR   Y5, Y6, Y11
	VMOVDQU Y11, 192(R13)
	VPXOR   Y9, Y6, Y12
	VMOVDQU Y12, 224(R13)
	VMOVDQU Y7, 256(R13)
	VPXOR   Y4, Y7, Y13
	VMOVDQU Y13, 288(R13)
	VPXOR   Y5, Y7, Y14
	VMOVDQU Y14, 320(R13)
	VPXOR   Y9, Y7, Y15
	VMOVDQU Y15, 352(R13)
	VPXOR   Y6, Y7, Y13
	VMOVDQU Y13, 384(R13)
	VPXOR   Y10, Y7, Y14
	VMOVDQU Y14, 416(R13)
	VPXOR   Y11, Y7, Y15
	VMOVDQU Y15, 448(R13)
	VPXOR   Y12, Y7, Y13
	VMOVDQU Y13, 480(R13)

	// Destination plane i ^= ta[sel.byte(i)&15] ^ tb[sel.byte(i)>>4].
	// plane 0
	MOVQ    BX, AX
	ANDQ    $15, AX
	SHLQ    $5, AX
	MOVQ    BX, R11
	SHRQ    $4, R11
	ANDQ    $15, R11
	SHLQ    $5, R11
	VMOVDQU (R12)(AX*1), Y0
	VPXOR   (R13)(R11*1), Y0, Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)

	// plane 1
	MOVQ    BX, AX
	SHRQ    $8, AX
	MOVQ    AX, R11
	ANDQ    $15, AX
	SHLQ    $5, AX
	SHRQ    $4, R11
	ANDQ    $15, R11
	SHLQ    $5, R11
	VMOVDQU (R12)(AX*1), Y0
	VPXOR   (R13)(R11*1), Y0, Y0
	VPXOR   (DI)(DX*1), Y0, Y0
	VMOVDQU Y0, (DI)(DX*1)

	// plane 2
	MOVQ    BX, AX
	SHRQ    $16, AX
	MOVQ    AX, R11
	ANDQ    $15, AX
	SHLQ    $5, AX
	SHRQ    $4, R11
	ANDQ    $15, R11
	SHLQ    $5, R11
	VMOVDQU (R12)(AX*1), Y0
	VPXOR   (R13)(R11*1), Y0, Y0
	VPXOR   (DI)(DX*2), Y0, Y0
	VMOVDQU Y0, (DI)(DX*2)

	// plane 3
	MOVQ    BX, AX
	SHRQ    $24, AX
	MOVQ    AX, R11
	ANDQ    $15, AX
	SHLQ    $5, AX
	SHRQ    $4, R11
	ANDQ    $15, R11
	SHLQ    $5, R11
	VMOVDQU (R12)(AX*1), Y0
	VPXOR   (R13)(R11*1), Y0, Y0
	VPXOR   (DI)(R8*1), Y0, Y0
	VMOVDQU Y0, (DI)(R8*1)

	// plane 4
	MOVQ    BX, AX
	SHRQ    $32, AX
	MOVQ    AX, R11
	ANDQ    $15, AX
	SHLQ    $5, AX
	SHRQ    $4, R11
	ANDQ    $15, R11
	SHLQ    $5, R11
	VMOVDQU (R12)(AX*1), Y0
	VPXOR   (R13)(R11*1), Y0, Y0
	VPXOR   (DI)(DX*4), Y0, Y0
	VMOVDQU Y0, (DI)(DX*4)

	// plane 5
	MOVQ    BX, AX
	SHRQ    $40, AX
	MOVQ    AX, R11
	ANDQ    $15, AX
	SHLQ    $5, AX
	SHRQ    $4, R11
	ANDQ    $15, R11
	SHLQ    $5, R11
	VMOVDQU (R12)(AX*1), Y0
	VPXOR   (R13)(R11*1), Y0, Y0
	VPXOR   (DI)(R9*1), Y0, Y0
	VMOVDQU Y0, (DI)(R9*1)

	// plane 6
	MOVQ    BX, AX
	SHRQ    $48, AX
	MOVQ    AX, R11
	ANDQ    $15, AX
	SHLQ    $5, AX
	SHRQ    $4, R11
	ANDQ    $15, R11
	SHLQ    $5, R11
	VMOVDQU (R12)(AX*1), Y0
	VPXOR   (R13)(R11*1), Y0, Y0
	VPXOR   (DI)(R8*2), Y0, Y0
	VMOVDQU Y0, (DI)(R8*2)

	// plane 7
	MOVQ    BX, AX
	SHRQ    $56, AX
	MOVQ    AX, R11
	ANDQ    $15, AX
	SHLQ    $5, AX
	SHRQ    $4, R11
	ANDQ    $15, R11
	SHLQ    $5, R11
	VMOVDQU (R12)(AX*1), Y0
	VPXOR   (R13)(R11*1), Y0, Y0
	VPXOR   (DI)(R10*1), Y0, Y0
	VMOVDQU Y0, (DI)(R10*1)

	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JNZ  planes8
	VZEROUPPER
	RET

// func addMulPlanes4Asm(dst, src *uint64, words, cols int, sel uint64)
//
// GF(16) variant: 4 planes, one 16-entry subset table, selector nibbles
// come from the low 4 bytes of sel (one byte per plane, value < 16).
TEXT ·addMulPlanes4Asm(SB), $512-40
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ words+16(FP), DX
	SHLQ $3, DX
	MOVQ cols+24(FP), CX
	MOVQ sel+32(FP), BX
	LEAQ (DX)(DX*2), R8    // 3*stride
	LEAQ tbl-512(SP), R12

planes4:
	VMOVDQU (SI), Y0
	VMOVDQU (SI)(DX*1), Y1
	VMOVDQU (SI)(DX*2), Y2
	VMOVDQU (SI)(R8*1), Y3

	VPXOR   Y8, Y8, Y8
	VMOVDQU Y8, (R12)
	VMOVDQU Y0, 32(R12)
	VMOVDQU Y1, 64(R12)
	VPXOR   Y0, Y1, Y9
	VMOVDQU Y9, 96(R12)
	VMOVDQU Y2, 128(R12)
	VPXOR   Y0, Y2, Y10
	VMOVDQU Y10, 160(R12)
	VPXOR   Y1, Y2, Y11
	VMOVDQU Y11, 192(R12)
	VPXOR   Y9, Y2, Y12
	VMOVDQU Y12, 224(R12)
	VMOVDQU Y3, 256(R12)
	VPXOR   Y0, Y3, Y13
	VMOVDQU Y13, 288(R12)
	VPXOR   Y1, Y3, Y14
	VMOVDQU Y14, 320(R12)
	VPXOR   Y9, Y3, Y15
	VMOVDQU Y15, 352(R12)
	VPXOR   Y2, Y3, Y13
	VMOVDQU Y13, 384(R12)
	VPXOR   Y10, Y3, Y14
	VMOVDQU Y14, 416(R12)
	VPXOR   Y11, Y3, Y15
	VMOVDQU Y15, 448(R12)
	VPXOR   Y12, Y3, Y13
	VMOVDQU Y13, 480(R12)

	// plane 0
	MOVQ    BX, AX
	ANDQ    $15, AX
	SHLQ    $5, AX
	VMOVDQU (R12)(AX*1), Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)

	// plane 1
	MOVQ    BX, AX
	SHRQ    $8, AX
	ANDQ    $15, AX
	SHLQ    $5, AX
	VMOVDQU (R12)(AX*1), Y0
	VPXOR   (DI)(DX*1), Y0, Y0
	VMOVDQU Y0, (DI)(DX*1)

	// plane 2
	MOVQ    BX, AX
	SHRQ    $16, AX
	ANDQ    $15, AX
	SHLQ    $5, AX
	VMOVDQU (R12)(AX*1), Y0
	VPXOR   (DI)(DX*2), Y0, Y0
	VMOVDQU Y0, (DI)(DX*2)

	// plane 3
	MOVQ    BX, AX
	SHRQ    $24, AX
	ANDQ    $15, AX
	SHLQ    $5, AX
	VMOVDQU (R12)(AX*1), Y0
	VPXOR   (DI)(R8*1), Y0, Y0
	VMOVDQU Y0, (DI)(R8*1)

	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JNZ  planes4
	VZEROUPPER
	RET
