package gf

import "fmt"

// Prime is the prime field F_p for a prime p <= 251, with arithmetic modulo
// p. It exists mainly for tests that exercise a field of odd characteristic;
// the gossip protocols default to binary extension fields.
type Prime struct {
	p   int
	inv []Elem
}

var _ Field = (*Prime)(nil)

// NewPrime constructs F_p. p must be prime and at most 251 (so that all
// elements fit in a byte).
func NewPrime(p int) (*Prime, error) {
	if p < 2 || p > 251 || !isPrime(p) {
		return nil, fmt.Errorf("gf: %d is not a prime in [2, 251]", p)
	}
	f := &Prime{p: p, inv: make([]Elem, p)}
	for a := 1; a < p; a++ {
		f.inv[a] = Elem(modPow(a, p-2, p))
	}
	return f, nil
}

func modPow(base, exp, mod int) int {
	result := 1
	base %= mod
	for exp > 0 {
		if exp&1 == 1 {
			result = result * base % mod
		}
		base = base * base % mod
		exp >>= 1
	}
	return result
}

// Order returns p.
func (f *Prime) Order() int { return f.p }

// Char returns p.
func (f *Prime) Char() int { return f.p }

// Name returns e.g. "F_251".
func (f *Prime) Name() string { return fmt.Sprintf("F_%d", f.p) }

// Add returns (a + b) mod p.
func (f *Prime) Add(a, b Elem) Elem { return Elem((int(a) + int(b)) % f.p) }

// Sub returns (a - b) mod p.
func (f *Prime) Sub(a, b Elem) Elem { return Elem((int(a) - int(b) + f.p) % f.p) }

// Neg returns -a mod p.
func (f *Prime) Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return Elem(f.p - int(a))
}

// Mul returns a*b mod p.
func (f *Prime) Mul(a, b Elem) Elem { return Elem(int(a) * int(b) % f.p) }

// Div returns a/b mod p. It panics if b == 0.
func (f *Prime) Div(a, b Elem) Elem {
	if b == 0 {
		panic("gf: division by zero in " + f.Name())
	}
	return f.Mul(a, f.inv[b])
}

// Inv returns a^-1 mod p. It panics if a == 0.
func (f *Prime) Inv(a Elem) Elem {
	if a == 0 {
		panic("gf: inverse of zero in " + f.Name())
	}
	return f.inv[a]
}

// AXPY performs dst[i] = (dst[i] + c*src[i]) mod p.
func (f *Prime) AXPY(dst, src []Elem, c Elem) {
	if c == 0 || len(src) == 0 {
		return
	}
	_ = dst[len(src)-1]
	for i, s := range src {
		dst[i] = Elem((int(dst[i]) + int(c)*int(s)) % f.p)
	}
}

// Scale performs v[i] = c*v[i] mod p.
func (f *Prime) Scale(v []Elem, c Elem) {
	for i, x := range v {
		v[i] = Elem(int(c) * int(x) % f.p)
	}
}

// AddMulSlice performs dst[i] = (dst[i] + c*src[i]) mod p over byte rows —
// the generic scalar fallback for fields of odd characteristic, where
// addition is not XOR and no table walk applies.
func (f *Prime) AddMulSlice(dst, src []byte, c Elem) {
	if c == 0 || len(src) == 0 {
		return
	}
	_ = dst[len(src)-1]
	ci := int(c)
	for i, s := range src {
		dst[i] = byte((int(dst[i]) + ci*int(s)) % f.p)
	}
}

// MulSlice performs v[i] = c*v[i] mod p over a byte row.
func (f *Prime) MulSlice(v []byte, c Elem) {
	if c == 1 {
		return
	}
	if c == 0 {
		clear(v)
		return
	}
	ci := int(c)
	for i, s := range v {
		v[i] = byte(ci * int(s) % f.p)
	}
}

// DotProduct returns sum_i a[i]*b[i] mod p.
func (f *Prime) DotProduct(a, b []Elem) Elem {
	acc := 0
	for i := range a {
		acc = (acc + int(a[i])*int(b[i])) % f.p
	}
	return Elem(acc)
}
