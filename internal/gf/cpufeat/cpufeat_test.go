package cpufeat

import (
	"runtime"
	"strings"
	"testing"
)

// TestSummaryConsistent pins Summary against the feature booleans: every
// detected feature appears exactly once, and "none" appears only when
// nothing was detected.
func TestSummaryConsistent(t *testing.T) {
	s := Summary()
	t.Logf("cpufeat: %s (GOARCH=%s)", s, runtime.GOARCH)
	checks := []struct {
		name string
		on   bool
	}{
		{"avx2", X86.HasAVX2},
		{"gfni", X86.HasGFNI},
		{"ssse3", X86.HasSSSE3},
	}
	any := false
	for _, c := range checks {
		has := strings.Contains(s, c.name)
		if has != c.on {
			t.Errorf("Summary()=%q lists %s=%v, feature bit is %v", s, c.name, has, c.on)
		}
		any = any || c.on
	}
	if (s == "none") == any {
		t.Errorf("Summary()=%q inconsistent with any-feature=%v", s, any)
	}
	if runtime.GOARCH != "amd64" && any {
		t.Errorf("non-amd64 build reports x86 features: %q", s)
	}
}
