// Package cpufeat probes the CPU features the GF kernel tiers dispatch
// on. It is dependency-free by design (no golang.org/x/sys): the probe is
// a raw CPUID/XGETBV pair on amd64 and a constant-false stub everywhere
// else, so the gf package can pick a kernel tier at init without pulling
// anything into the module graph.
//
// Feature semantics follow the usual deployment rules: a vector feature
// is reported only when the instruction set bit AND the OS-enabled state
// (XCR0 via XGETBV) are both present, so dispatching on these booleans
// can never fault on a machine whose kernel disabled YMM state saves.
package cpufeat

// X86 holds the detected amd64 feature bits relevant to the GF kernels.
// All fields are false on other architectures. Populated once at init;
// read-only afterwards.
var X86 struct {
	// HasAVX2 reports AVX2 with OS-enabled YMM state: the 32-byte-wide
	// PSHUFB split-nibble and plane-XOR kernels require it.
	HasAVX2 bool
	// HasGFNI reports the Galois Field New Instructions bit. The VEX-
	// encoded VGF2P8AFFINEQB kernels additionally need AVX2 (checked by
	// the dispatcher), matching how mixed fleets actually ship GFNI.
	HasGFNI bool
	// HasSSSE3 reports SSSE3 (PSHUFB); recorded for the feature summary.
	HasSSSE3 bool
}

// Summary returns a compact space-separated list of the detected
// features (e.g. "avx2 gfni ssse3"), or "none" — the string recorded in
// perf-trajectory entries so numbers stay attributable across
// heterogeneous machines.
func Summary() string {
	s := ""
	if X86.HasAVX2 {
		s += " avx2"
	}
	if X86.HasGFNI {
		s += " gfni"
	}
	if X86.HasSSSE3 {
		s += " ssse3"
	}
	if s == "" {
		return "none"
	}
	return s[1:]
}
