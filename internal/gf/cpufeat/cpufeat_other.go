//go:build !amd64

package cpufeat

// Non-amd64 builds keep every X86 feature false: the dispatcher then
// settles on the portable tier, whose kernels are plain Go.
