package cpufeat

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (requires OSXSAVE).
func xgetbv() (eax, edx uint32)

func init() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	X86.HasSSSE3 = ecx1&(1<<9) != 0
	osxsave := ecx1&(1<<27) != 0
	avx := ecx1&(1<<28) != 0

	// YMM state must be OS-enabled (XCR0 bits 1 and 2) before any VEX-256
	// kernel is safe to execute.
	ymmOS := false
	if osxsave {
		xcr0, _ := xgetbv()
		ymmOS = xcr0&0x6 == 0x6
	}
	if maxLeaf < 7 {
		return
	}
	_, ebx7, ecx7, _ := cpuid(7, 0)
	X86.HasAVX2 = avx && ymmOS && ebx7&(1<<5) != 0
	X86.HasGFNI = ecx7&(1<<8) != 0
}
