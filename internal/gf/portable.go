package gf

// Portable-tier kernels: wider pure-Go forms of the scalar reference
// loops in bulk.go / sliced.go. Same tables, same results, more
// independent operations in flight per iteration — the fast path on any
// GOARCH without an assembly tier, and a second implementation the
// equivalence tests pit against both the scalar oracle and the asm
// tiers. The *Range helpers at the bottom are the scalar column loops
// restarted at an arbitrary word-column; the asm plane kernels lean on
// them for tail columns.

import (
	"crypto/subtle"
	"unsafe"
)

// u64Bytes reinterprets a []uint64 as its underlying bytes without
// copying (little-endian layout is irrelevant: callers only XOR).
func u64Bytes(v []uint64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))
}

// xorWords performs dst[i] ^= src[i] over words via subtle.XORBytes,
// which the standard library vectorizes where it can.
func xorWords(dst, src []uint64) {
	d := u64Bytes(dst[:len(src)])
	subtle.XORBytes(d, d, u64Bytes(src))
}

// XorWords performs dst[i] ^= src[i] over packed words, dispatched by
// the active tier: the scalar tier keeps the reference word loop,
// every other tier routes through subtle.XORBytes. len(dst) must be at
// least len(src). Exported so the packed GF(2) backends in linalg
// inherit tier dispatch for whole-row XORs.
func XorWords(dst, src []uint64) {
	if activeTier == TierScalar {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	xorWords(dst, src)
}

// mulTableSlicePortable is mulTableSlice with an 8-wide body.
func mulTableSlicePortable(dst, src []byte, row *[256]byte) {
	n := len(src)
	_ = dst[n-1]
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i] ^= row[src[i]]
		dst[i+1] ^= row[src[i+1]]
		dst[i+2] ^= row[src[i+2]]
		dst[i+3] ^= row[src[i+3]]
		dst[i+4] ^= row[src[i+4]]
		dst[i+5] ^= row[src[i+5]]
		dst[i+6] ^= row[src[i+6]]
		dst[i+7] ^= row[src[i+7]]
	}
	for ; i < n; i++ {
		dst[i] ^= row[src[i]]
	}
}

// scaleTableSlicePortable is scaleTableSlice with an 8-wide body.
func scaleTableSlicePortable(v []byte, row *[256]byte) {
	n := len(v)
	i := 0
	for ; i+8 <= n; i += 8 {
		v[i] = row[v[i]]
		v[i+1] = row[v[i+1]]
		v[i+2] = row[v[i+2]]
		v[i+3] = row[v[i+3]]
		v[i+4] = row[v[i+4]]
		v[i+5] = row[v[i+5]]
		v[i+6] = row[v[i+6]]
		v[i+7] = row[v[i+7]]
	}
	for ; i < n; i++ {
		v[i] = row[v[i]]
	}
}

// addMul8Portable is addMul8 over two word-columns per iteration: the
// subset tables interleave both columns (entry k occupies indices 2k and
// 2k+1), so one selector extraction serves two destination words and the
// table fill runs as independent XOR pairs.
func (f *GF2m) addMul8Portable(dst, src []uint64, words int, c Elem) {
	rows := &f.mulRows[c]
	r0, r1, r2, r3 := rows[0], rows[1], rows[2], rows[3]
	r4, r5, r6, r7 := rows[4], rows[5], rows[6], rows[7]
	var ta, tb [32]uint64 // entries 0,1 stay zero; the rest is overwritten per pair
	w := 0
	for ; w+2 <= words; w += 2 {
		ta[2], ta[3] = src[w], src[w+1]
		ta[4], ta[5] = src[words+w], src[words+w+1]
		ta[8], ta[9] = src[2*words+w], src[2*words+w+1]
		ta[16], ta[17] = src[3*words+w], src[3*words+w+1]
		tb[2], tb[3] = src[4*words+w], src[4*words+w+1]
		tb[4], tb[5] = src[5*words+w], src[5*words+w+1]
		tb[8], tb[9] = src[6*words+w], src[6*words+w+1]
		tb[16], tb[17] = src[7*words+w], src[7*words+w+1]
		fillSubsetsPair(&ta)
		fillSubsetsPair(&tb)
		a, b := 2*int(r0&15), 2*int(r0>>4)
		dst[w] ^= ta[a] ^ tb[b]
		dst[w+1] ^= ta[a+1] ^ tb[b+1]
		a, b = 2*int(r1&15), 2*int(r1>>4)
		dst[words+w] ^= ta[a] ^ tb[b]
		dst[words+w+1] ^= ta[a+1] ^ tb[b+1]
		a, b = 2*int(r2&15), 2*int(r2>>4)
		dst[2*words+w] ^= ta[a] ^ tb[b]
		dst[2*words+w+1] ^= ta[a+1] ^ tb[b+1]
		a, b = 2*int(r3&15), 2*int(r3>>4)
		dst[3*words+w] ^= ta[a] ^ tb[b]
		dst[3*words+w+1] ^= ta[a+1] ^ tb[b+1]
		a, b = 2*int(r4&15), 2*int(r4>>4)
		dst[4*words+w] ^= ta[a] ^ tb[b]
		dst[4*words+w+1] ^= ta[a+1] ^ tb[b+1]
		a, b = 2*int(r5&15), 2*int(r5>>4)
		dst[5*words+w] ^= ta[a] ^ tb[b]
		dst[5*words+w+1] ^= ta[a+1] ^ tb[b+1]
		a, b = 2*int(r6&15), 2*int(r6>>4)
		dst[6*words+w] ^= ta[a] ^ tb[b]
		dst[6*words+w+1] ^= ta[a+1] ^ tb[b+1]
		a, b = 2*int(r7&15), 2*int(r7>>4)
		dst[7*words+w] ^= ta[a] ^ tb[b]
		dst[7*words+w+1] ^= ta[a+1] ^ tb[b+1]
	}
	if w < words {
		f.addMul8Range(dst, src, words, w, c)
	}
}

// addMul4Portable is the GF(16) counterpart of addMul8Portable.
func (f *GF2m) addMul4Portable(dst, src []uint64, words int, c Elem) {
	rows := &f.mulRows[c]
	r0, r1, r2, r3 := rows[0], rows[1], rows[2], rows[3]
	var ta [32]uint64 // entries 0,1 stay zero; the rest is overwritten per pair
	w := 0
	for ; w+2 <= words; w += 2 {
		ta[2], ta[3] = src[w], src[w+1]
		ta[4], ta[5] = src[words+w], src[words+w+1]
		ta[8], ta[9] = src[2*words+w], src[2*words+w+1]
		ta[16], ta[17] = src[3*words+w], src[3*words+w+1]
		fillSubsetsPair(&ta)
		a := 2 * int(r0&15)
		dst[w] ^= ta[a]
		dst[w+1] ^= ta[a+1]
		a = 2 * int(r1&15)
		dst[words+w] ^= ta[a]
		dst[words+w+1] ^= ta[a+1]
		a = 2 * int(r2&15)
		dst[2*words+w] ^= ta[a]
		dst[2*words+w+1] ^= ta[a+1]
		a = 2 * int(r3&15)
		dst[3*words+w] ^= ta[a]
		dst[3*words+w+1] ^= ta[a+1]
	}
	if w < words {
		f.addMul4Range(dst, src, words, w, c)
	}
}

// fillSubsetsPair completes a two-column interleaved subset-XOR table
// whose singleton pairs (indices 2k, 2k+1 for k in {1, 2, 4, 8}) are
// already set — the [32]uint64 analogue of fillSubsets.
func fillSubsetsPair(t *[32]uint64) {
	t[6], t[7] = t[2]^t[4], t[3]^t[5]
	t[10], t[11] = t[2]^t[8], t[3]^t[9]
	t[12], t[13] = t[4]^t[8], t[5]^t[9]
	t[14], t[15] = t[6]^t[8], t[7]^t[9]
	t[18], t[19] = t[2]^t[16], t[3]^t[17]
	t[20], t[21] = t[4]^t[16], t[5]^t[17]
	t[22], t[23] = t[6]^t[16], t[7]^t[17]
	t[24], t[25] = t[8]^t[16], t[9]^t[17]
	t[26], t[27] = t[10]^t[16], t[11]^t[17]
	t[28], t[29] = t[12]^t[16], t[13]^t[17]
	t[30], t[31] = t[14]^t[16], t[15]^t[17]
}

// addMul8Range is the scalar addMul8 column loop starting at word-column
// `start` — the tail finisher behind the wider kernels.
func (f *GF2m) addMul8Range(dst, src []uint64, words, start int, c Elem) {
	rows := &f.mulRows[c]
	r0, r1, r2, r3 := rows[0], rows[1], rows[2], rows[3]
	r4, r5, r6, r7 := rows[4], rows[5], rows[6], rows[7]
	var ta, tb [16]uint64
	for w := start; w < words; w++ {
		ta[1] = src[w]
		ta[2] = src[words+w]
		ta[4] = src[2*words+w]
		ta[8] = src[3*words+w]
		tb[1] = src[4*words+w]
		tb[2] = src[5*words+w]
		tb[4] = src[6*words+w]
		tb[8] = src[7*words+w]
		fillSubsets(&ta)
		fillSubsets(&tb)
		dst[w] ^= ta[r0&15] ^ tb[r0>>4]
		dst[words+w] ^= ta[r1&15] ^ tb[r1>>4]
		dst[2*words+w] ^= ta[r2&15] ^ tb[r2>>4]
		dst[3*words+w] ^= ta[r3&15] ^ tb[r3>>4]
		dst[4*words+w] ^= ta[r4&15] ^ tb[r4>>4]
		dst[5*words+w] ^= ta[r5&15] ^ tb[r5>>4]
		dst[6*words+w] ^= ta[r6&15] ^ tb[r6>>4]
		dst[7*words+w] ^= ta[r7&15] ^ tb[r7>>4]
	}
}

// addMul4Range is the scalar addMul4 column loop starting at `start`.
func (f *GF2m) addMul4Range(dst, src []uint64, words, start int, c Elem) {
	rows := &f.mulRows[c]
	r0, r1, r2, r3 := rows[0], rows[1], rows[2], rows[3]
	var ta [16]uint64
	for w := start; w < words; w++ {
		ta[1] = src[w]
		ta[2] = src[words+w]
		ta[4] = src[2*words+w]
		ta[8] = src[3*words+w]
		fillSubsets(&ta)
		dst[w] ^= ta[r0&15]
		dst[words+w] ^= ta[r1&15]
		dst[2*words+w] ^= ta[r2&15]
		dst[3*words+w] ^= ta[r3&15]
	}
}
