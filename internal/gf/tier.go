package gf

// Kernel tier dispatch: every streaming GF kernel (byte-row lookup
// multiply-add, in-place scale, bit-sliced plane multiply-add) exists in
// up to four implementations, selected once at package init from the CPU
// features cpufeat detects:
//
//	scalar    the original reference loops, kept verbatim — the fuzz and
//	          equivalence oracle every other tier is checked against.
//	portable  unrolled pure-Go forms of the same loops (all GOARCH).
//	avx2      amd64 assembly: 32-byte PSHUFB split-nibble lookup for the
//	          byte-row path, 4-column four-Russians subset tables for the
//	          bit-sliced path.
//	gfni      avx2 plus VGF2P8AFFINEQB for the byte-row path — one
//	          instruction computes c*x for 32 bytes via the 8x8 GF(2)
//	          matrix of "multiply by c".
//
// The environment variable ALGOSSIP_GF_TIER ∈ {auto, gfni, avx2,
// portable, scalar} overrides auto-selection; a request above what the
// host supports clamps down to the best supported tier, so forcing
// "gfni" in a heterogeneous fleet degrades gracefully instead of
// faulting. All tiers are bit-identical (pinned by TestTierEquivalence
// and the fuzz targets), so tier selection never moves a fixed-seed
// trajectory — it only moves throughput.

import (
	"fmt"
	"os"

	"algossip/internal/gf/cpufeat"
)

// Tier identifies one kernel implementation level, ordered from the
// reference oracle upwards.
type Tier uint8

const (
	// TierScalar is the original reference code — the equivalence oracle.
	TierScalar Tier = iota
	// TierPortable is the unrolled pure-Go tier (every GOARCH).
	TierPortable
	// TierAVX2 is the amd64 PSHUFB/plane-XOR assembly tier.
	TierAVX2
	// TierGFNI is TierAVX2 with VGF2P8AFFINEQB byte-row kernels.
	TierGFNI
)

// String returns the tier's ALGOSSIP_GF_TIER token.
func (t Tier) String() string {
	switch t {
	case TierScalar:
		return "scalar"
	case TierPortable:
		return "portable"
	case TierAVX2:
		return "avx2"
	case TierGFNI:
		return "gfni"
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// activeTier is the package-wide dispatch level. It is written at init
// (and by SetTier in tests/tools) and read on every kernel call; it is
// deliberately a plain variable — mutation must not race kernel use.
var activeTier = bestTier()

func init() {
	if v, ok := os.LookupEnv("ALGOSSIP_GF_TIER"); ok {
		t, err := ParseTier(v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gf: %v; using %q\n", err, activeTier)
			return
		}
		if t > bestTier() {
			// Requested above hardware support: clamp, loudly, so forced-
			// tier perf runs on the wrong machine cannot mislabel numbers.
			fmt.Fprintf(os.Stderr, "gf: ALGOSSIP_GF_TIER=%q unsupported on this CPU (%s); using %q\n",
				v, cpufeat.Summary(), bestTier())
			t = bestTier()
		}
		activeTier = t
	}
}

// bestTier returns the highest tier the host supports.
func bestTier() Tier {
	switch {
	case cpufeat.X86.HasGFNI && cpufeat.X86.HasAVX2:
		return TierGFNI
	case cpufeat.X86.HasAVX2:
		return TierAVX2
	default:
		return TierPortable
	}
}

// ParseTier maps an ALGOSSIP_GF_TIER token to a Tier; "auto" means the
// best the host supports.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "auto", "":
		return bestTier(), nil
	case "scalar":
		return TierScalar, nil
	case "portable":
		return TierPortable, nil
	case "avx2":
		return TierAVX2, nil
	case "gfni":
		return TierGFNI, nil
	}
	return TierScalar, fmt.Errorf("gf: unknown ALGOSSIP_GF_TIER %q (want auto|gfni|avx2|portable|scalar)", s)
}

// ActiveTier returns the tier the kernels currently dispatch to.
func ActiveTier() Tier { return activeTier }

// TierSupported reports whether the host can run the given tier.
func TierSupported(t Tier) bool { return t <= bestTier() }

// AvailableTiers lists every tier the host supports, lowest first —
// the set the forced-tier equivalence tests and fuzz targets sweep.
func AvailableTiers() []Tier {
	out := []Tier{TierScalar, TierPortable}
	if TierSupported(TierAVX2) {
		out = append(out, TierAVX2)
	}
	if TierSupported(TierGFNI) {
		out = append(out, TierGFNI)
	}
	return out
}

// SetTier forces the dispatch level, returning an error when the host
// cannot run it. It is intended for tests, benchmarks and tools; callers
// must serialize it against concurrent kernel use and restore the
// previous tier afterwards.
func SetTier(t Tier) error {
	if !TierSupported(t) {
		return fmt.Errorf("gf: tier %q unsupported on this CPU (%s)", t, cpufeat.Summary())
	}
	activeTier = t
	return nil
}

// TierInfo returns the active tier plus the detected CPU features, e.g.
// "gfni (avx2 gfni ssse3)" — the attribution string surfaced in timing
// footers, /status, /metrics and perf-trajectory records.
func TierInfo() string {
	return fmt.Sprintf("%s (%s)", activeTier, cpufeat.Summary())
}
