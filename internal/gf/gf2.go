package gf

// GF2 is the binary field F_2 = {0, 1}. Addition is XOR and multiplication
// is AND, so no tables are needed. It is the smallest field the paper's
// analysis permits (q >= 2, helpfulness probability at least 1/2).
type GF2 struct{}

var _ Field = GF2{}

// Order returns 2.
func (GF2) Order() int { return 2 }

// Char returns 2.
func (GF2) Char() int { return 2 }

// Name returns "GF(2)".
func (GF2) Name() string { return "GF(2)" }

// Add returns a XOR b.
func (GF2) Add(a, b Elem) Elem { return (a ^ b) & 1 }

// Sub returns a XOR b (subtraction equals addition in characteristic 2).
func (GF2) Sub(a, b Elem) Elem { return (a ^ b) & 1 }

// Neg returns a (every element is its own additive inverse).
func (GF2) Neg(a Elem) Elem { return a & 1 }

// Mul returns a AND b.
func (GF2) Mul(a, b Elem) Elem { return a & b & 1 }

// Div returns a / b. It panics if b == 0.
func (GF2) Div(a, b Elem) Elem {
	if b&1 == 0 {
		panic("gf: division by zero in GF(2)")
	}
	return a & 1
}

// Inv returns 1 for a == 1 and panics for a == 0.
func (GF2) Inv(a Elem) Elem {
	if a&1 == 0 {
		panic("gf: inverse of zero in GF(2)")
	}
	return 1
}

// AddMulSlice performs dst[i] ^= src[i] over byte rows when c == 1 (and
// nothing when c == 0): a word-wise XOR, the GF(2) fast path.
func (GF2) AddMulSlice(dst, src []byte, c Elem) {
	if c&1 == 0 || len(src) == 0 {
		return
	}
	xorSlice(dst, src)
}

// MulSlice zeroes v when c == 0 and leaves it unchanged otherwise.
func (GF2) MulSlice(v []byte, c Elem) {
	if c&1 == 0 {
		clear(v)
	}
}

// AXPY performs dst[i] ^= c & src[i] through the word-wise XOR kernel.
func (f GF2) AXPY(dst, src []Elem, c Elem) {
	f.AddMulSlice(asBytes(dst), asBytes(src), c)
}

// Scale zeroes v when c == 0 and leaves it unchanged otherwise.
func (f GF2) Scale(v []Elem, c Elem) {
	f.MulSlice(asBytes(v), c)
}

// DotProduct returns the parity of the AND of a and b.
func (GF2) DotProduct(a, b []Elem) Elem {
	var acc Elem
	for i := range a {
		acc ^= a[i] & b[i] & 1
	}
	return acc
}
