package gf

import (
	"bytes"
	"testing"

	"math/rand/v2"
)

// allOrders is every field order the package supports: GF(2), the binary
// extension fields, and a sample of primes (including the extremes).
var allOrders = []int{2, 4, 8, 16, 32, 64, 128, 256, 3, 5, 7, 101, 251}

// addMulRef is the scalar reference: dst[i] += c*src[i] one symbol at a
// time through the Field's Mul/Add — the path the bulk kernels replace.
func addMulRef(f Field, dst, src []byte, c Elem) {
	for i := range src {
		dst[i] = byte(f.Add(Elem(dst[i]), f.Mul(c, Elem(src[i]))))
	}
}

// mulRef is the scalar reference for MulSlice.
func mulRef(f Field, v []byte, c Elem) {
	for i := range v {
		v[i] = byte(f.Mul(c, Elem(v[i])))
	}
}

// randRow fills a fresh row with valid elements of f.
func randRow(f Field, n int, rng *rand.Rand) []byte {
	return RandBytes(f, n, rng)
}

// TestAddMulSliceMatchesScalar cross-checks the bulk kernel against the
// scalar reference for every supported field, every coefficient of small
// fields (sampled coefficients for large ones), and lengths straddling the
// word-wise fast-path boundaries.
func TestAddMulSliceMatchesScalar(t *testing.T) {
	lengths := []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 255, 256, 1000}
	for _, q := range allOrders {
		f := MustNew(q)
		t.Run(f.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(uint64(q), 7))
			coeffs := make([]Elem, 0, q)
			if q <= 16 {
				for c := 0; c < q; c++ {
					coeffs = append(coeffs, Elem(c))
				}
			} else {
				coeffs = append(coeffs, 0, 1, Elem(q-1))
				for i := 0; i < 8; i++ {
					coeffs = append(coeffs, Rand(f, rng))
				}
			}
			for _, n := range lengths {
				for _, c := range coeffs {
					src := randRow(f, n, rng)
					dst := randRow(f, n+3, rng) // dst longer than src is allowed
					want := append([]byte(nil), dst...)
					f.AddMulSlice(dst, src, c)
					addMulRef(f, want, src, c)
					if !bytes.Equal(dst, want) {
						t.Fatalf("AddMulSlice(len=%d, c=%d) diverges from scalar reference", n, c)
					}
				}
			}
		})
	}
}

// TestMulSliceMatchesScalar cross-checks the in-place scale kernel.
func TestMulSliceMatchesScalar(t *testing.T) {
	for _, q := range allOrders {
		f := MustNew(q)
		t.Run(f.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(uint64(q), 11))
			for _, n := range []int{0, 1, 7, 8, 17, 256} {
				for _, c := range []Elem{0, 1, Elem(q - 1), Rand(f, rng)} {
					v := randRow(f, n, rng)
					want := append([]byte(nil), v...)
					f.MulSlice(v, c)
					mulRef(f, want, c)
					if !bytes.Equal(v, want) {
						t.Fatalf("MulSlice(len=%d, c=%d) diverges from scalar reference", n, c)
					}
				}
			}
		})
	}
}

// TestAXPYMatchesAddMulSlice checks the []Elem entry points agree with the
// byte kernels they forward to (and hence with the scalar reference).
func TestAXPYMatchesAddMulSlice(t *testing.T) {
	for _, q := range allOrders {
		f := MustNew(q)
		rng := rand.New(rand.NewPCG(uint64(q), 13))
		for trial := 0; trial < 20; trial++ {
			n := rng.IntN(100)
			c := Rand(f, rng)
			src := RandVector(f, n, rng)
			dst := RandVector(f, n, rng)
			wantB := make([]byte, n)
			srcB := make([]byte, n)
			for i := range dst {
				wantB[i] = byte(dst[i])
				srcB[i] = byte(src[i])
			}
			f.AXPY(dst, src, c)
			f.AddMulSlice(wantB, srcB, c)
			for i := range dst {
				if byte(dst[i]) != wantB[i] {
					t.Fatalf("%s: AXPY diverges from AddMulSlice at %d (c=%d)", f.Name(), i, c)
				}
			}

			v := RandVector(f, n, rng)
			vB := make([]byte, n)
			for i := range v {
				vB[i] = byte(v[i])
			}
			f.Scale(v, c)
			f.MulSlice(vB, c)
			for i := range v {
				if byte(v[i]) != vB[i] {
					t.Fatalf("%s: Scale diverges from MulSlice at %d (c=%d)", f.Name(), i, c)
				}
			}
		}
	}
}

// TestAddMulSliceLinearity checks the algebra the decoder relies on:
// combining with c then eliminating with -c restores the original row.
func TestAddMulSliceLinearity(t *testing.T) {
	for _, q := range allOrders {
		f := MustNew(q)
		rng := rand.New(rand.NewPCG(uint64(q), 17))
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.IntN(300)
			c := Rand(f, rng)
			src := randRow(f, n, rng)
			dst := randRow(f, n, rng)
			orig := append([]byte(nil), dst...)
			f.AddMulSlice(dst, src, c)
			f.AddMulSlice(dst, src, f.Neg(c))
			if !bytes.Equal(dst, orig) {
				t.Fatalf("%s: dst + c*src - c*src != dst (c=%d, n=%d)", f.Name(), c, n)
			}
		}
	}
}
