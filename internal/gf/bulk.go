package gf

// Bulk coding kernels: the byte-slice combine primitives behind every hot
// RLNC path. A coded packet's payload is a row of byte-encoded field
// elements; combining packets is dst += c*src over whole rows. Doing that
// one Elem at a time through interface calls dominates encode/decode cost,
// so every Field implementation also provides AddMulSlice/MulSlice over
// []byte rows:
//
//   - GF(2^m): one 256-entry lookup row per coefficient (the
//     klauspost/reedsolomon technique), so the inner loop is a table walk
//     and XOR with no bounds checks.
//   - c == 1 in characteristic 2: word-wise XOR via subtle.XORBytes, which
//     the standard library implements with SIMD where available.
//   - Prime fields: a scalar modular loop — the generic fallback.
//
// The []Elem AXPY/Scale entry points forward to the same kernels through a
// zero-copy reinterpretation (Elem is a uint8), so the coefficient part of
// Gaussian elimination gets the fast paths too.

import (
	"crypto/subtle"
	"unsafe"
)

// asBytes reinterprets a []Elem as []byte without copying. Elem's underlying
// type is uint8, so the layouts are identical.
func asBytes(v []Elem) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v))
}

// xorSlice performs dst[i] ^= src[i] for every index of src, word-wise.
// len(dst) must be at least len(src).
func xorSlice(dst, src []byte) {
	subtle.XORBytes(dst[:len(src)], dst[:len(src)], src)
}

// mulTableSlice applies dst[i] ^= row[src[i]] with the 256-entry lookup row
// of one coefficient. The array-pointer row lets the compiler drop every
// bounds check (a byte index cannot exceed 255).
func mulTableSlice(dst, src []byte, row *[256]byte) {
	n := len(src)
	_ = dst[n-1]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] ^= row[src[i]]
		dst[i+1] ^= row[src[i+1]]
		dst[i+2] ^= row[src[i+2]]
		dst[i+3] ^= row[src[i+3]]
	}
	for ; i < n; i++ {
		dst[i] ^= row[src[i]]
	}
}

// scaleTableSlice applies v[i] = row[v[i]] in place.
func scaleTableSlice(v []byte, row *[256]byte) {
	for i, s := range v {
		v[i] = row[s]
	}
}
