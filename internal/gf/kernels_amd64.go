package gf

// amd64 assembly kernel entry points (kernels_amd64.s). All of them
// process whole 32-byte (byte path) or 4-column (sliced path) blocks;
// the Go dispatch sites run the scalar reference over any remainder, so
// short and unaligned rows are always correct. dst and src may be the
// exact same slice (read-before-write per block) but must not partially
// overlap — the same contract the scalar loops already rely on.

//go:noescape
func addMulNibAsm(dst, src *byte, n int, tab *byte)

//go:noescape
func mulNibAsm(v *byte, n int, tab *byte)

//go:noescape
func addMulGFNIAsm(dst, src *byte, n int, mat uint64)

//go:noescape
func mulGFNIAsm(v *byte, n int, mat uint64)

//go:noescape
func addMulPlanes8Asm(dst, src *uint64, words, cols int, sel uint64)

//go:noescape
func addMulPlanes4Asm(dst, src *uint64, words, cols int, sel uint64)
