package gf

import "fmt"

// Standard irreducible polynomials for GF(2^m), written with the leading
// x^m bit included (e.g. 0x11D = x^8 + x^4 + x^3 + x^2 + 1).
var _irreducible = map[int]uint{
	1: 0x3,   // x + 1
	2: 0x7,   // x^2 + x + 1
	3: 0xB,   // x^3 + x + 1
	4: 0x13,  // x^4 + x + 1
	5: 0x25,  // x^5 + x^2 + 1
	6: 0x43,  // x^6 + x + 1
	7: 0x89,  // x^7 + x^3 + 1
	8: 0x11D, // x^8 + x^4 + x^3 + x^2 + 1 (the Rijndael-adjacent classic)
}

// GF2m is the binary extension field GF(2^m) for 1 <= m <= 8, implemented
// with exponent/logarithm tables over a generator, so multiplication and
// inversion are two table lookups. Addition is XOR.
type GF2m struct {
	m     int
	order int
	mask  Elem
	// exp has length 2*order so products of logs index without a modulo.
	exp []Elem
	log []uint16
	inv []Elem
	// mulTab is the full q x q multiplication table, flattened; for q <= 256
	// this is at most 64 KiB and makes AXPY a pure table walk.
	mulTab []Elem
	// bulkTab holds one 256-entry lookup row per coefficient (row c maps any
	// byte s to c*(s & mask)), the unit the byte-slice kernels walk. For
	// q == 256 it is mulTab itself; smaller fields pad each row to 256
	// entries so a byte index can never be out of range.
	bulkTab []byte
	// mulPlanes holds, per scalar c, the m basis images c*x^j (zero-padded
	// to 8 entries) — the columns of the GF(2) matrix that multiplication
	// by c applies to a bit-sliced row (see sliced.go). mulRows is the
	// transposed table feeding the branchless subset-XOR kernels.
	mulPlanes [][8]byte
	mulRows   [][8]byte
	mulRowsU  []uint64
	selLog    []uint64
	// nibTab holds, per scalar c, the 32-byte split-nibble table of the
	// avx2 byte kernel: 16 bytes c*(x & mask) then 16 bytes
	// c*((x<<4) & mask), so c*s = lo[s&15] ^ hi[s>>4] for any byte s.
	nibTab []byte
	// gfniTab holds, per scalar c, the 8x8 GF(2) matrix of "multiply by
	// c" packed for VGF2P8AFFINEQB (matrix row i in qword byte 7-i).
	gfniTab []uint64
}

var _ Field = (*GF2m)(nil)

// NewGF2m constructs GF(2^m) for 1 <= m <= 8 using a standard irreducible
// polynomial.
func NewGF2m(m int) (*GF2m, error) {
	poly, ok := _irreducible[m]
	if !ok {
		return nil, fmt.Errorf("gf: no irreducible polynomial registered for m=%d", m)
	}
	order := 1 << m
	f := &GF2m{
		m:     m,
		order: order,
		mask:  Elem(order - 1),
		exp:   make([]Elem, 2*order),
		log:   make([]uint16, order),
		inv:   make([]Elem, order),
	}

	// Find a generator by trial: x itself (value 2) generates the
	// multiplicative group for all our polynomials except degenerate m=1.
	gen := uint(2)
	if m == 1 {
		gen = 1
	}
	if !f.buildTables(gen, poly) {
		// Fall back to scanning for a generator.
		found := false
		for g := uint(2); g < uint(order); g++ {
			if f.buildTables(g, poly) {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("gf: no generator found for GF(2^%d) with poly %#x", m, poly)
		}
	}

	// Inverses: a^-1 = g^(q-1-log a).
	for a := 1; a < order; a++ {
		f.inv[a] = f.exp[(order-1)-int(f.log[a])]
	}

	// Full multiplication table.
	f.mulTab = make([]Elem, order*order)
	for a := 0; a < order; a++ {
		for b := 0; b < order; b++ {
			if a == 0 || b == 0 {
				continue
			}
			f.mulTab[a*order+b] = f.exp[int(f.log[a])+int(f.log[b])]
		}
	}

	// Byte-kernel rows, padded to a 256-entry stride.
	if order == 256 {
		f.bulkTab = asBytes(f.mulTab)
	} else {
		f.bulkTab = make([]byte, order*256)
		for a := 0; a < order; a++ {
			for s := 0; s < 256; s++ {
				f.bulkTab[a*256+s] = byte(f.mulTab[a*order+(s&int(f.mask))])
			}
		}
	}
	f.buildMulPlanes()
	return f, nil
}

// buildTables fills exp/log from the candidate generator; it reports whether
// the candidate generates the full multiplicative group.
func (f *GF2m) buildTables(gen, poly uint) bool {
	order := f.order
	seen := make([]bool, order)
	x := uint(1)
	for i := 0; i < order-1; i++ {
		if x == 0 || x >= uint(order) || seen[x] {
			return false
		}
		seen[x] = true
		f.exp[i] = Elem(x)
		f.log[x] = uint16(i)
		// Multiply by gen with polynomial reduction.
		x = polyMul(x, gen, poly, f.m)
	}
	if x != 1 { // must cycle back to 1 after order-1 steps
		return false
	}
	for i := order - 1; i < 2*order; i++ {
		f.exp[i] = f.exp[(i)%(order-1)]
	}
	return true
}

// polyMul multiplies two elements of GF(2^m) by shift-and-add with reduction
// modulo poly. Used only during table construction.
func polyMul(a, b, poly uint, m int) uint {
	var acc uint
	for b > 0 {
		if b&1 == 1 {
			acc ^= a
		}
		b >>= 1
		a <<= 1
		if a&(1<<uint(m)) != 0 {
			a ^= poly
		}
	}
	return acc
}

// Order returns 2^m.
func (f *GF2m) Order() int { return f.order }

// Char returns 2.
func (f *GF2m) Char() int { return 2 }

// Name returns e.g. "GF(256)".
func (f *GF2m) Name() string { return fmt.Sprintf("GF(%d)", f.order) }

// Add returns a XOR b.
func (f *GF2m) Add(a, b Elem) Elem { return (a ^ b) & f.mask }

// Sub returns a XOR b.
func (f *GF2m) Sub(a, b Elem) Elem { return (a ^ b) & f.mask }

// Neg returns a.
func (f *GF2m) Neg(a Elem) Elem { return a & f.mask }

// Mul returns a * b via the multiplication table.
func (f *GF2m) Mul(a, b Elem) Elem {
	return f.mulTab[int(a)*f.order+int(b)]
}

// Div returns a / b. It panics if b == 0.
func (f *GF2m) Div(a, b Elem) Elem {
	if b == 0 {
		panic("gf: division by zero in " + f.Name())
	}
	if a == 0 {
		return 0
	}
	return f.exp[int(f.log[a])+(f.order-1)-int(f.log[b])]
}

// Inv returns a^-1. It panics if a == 0.
func (f *GF2m) Inv(a Elem) Elem {
	if a == 0 {
		panic("gf: inverse of zero in " + f.Name())
	}
	return f.inv[a]
}

// bulkRow returns coefficient c's padded 256-entry lookup row.
func (f *GF2m) bulkRow(c Elem) *[256]byte {
	return (*[256]byte)(f.bulkTab[int(c)<<8:])
}

// AddMulSlice performs dst[i] ^= c * src[i] over byte rows: a no-op for
// c == 0, a word-wise XOR for c == 1, and otherwise the table-walk
// kernel of the active tier — whole 32-byte blocks go through the asm
// kernels on the avx2/gfni tiers, with the scalar loop finishing any
// remainder, so every tier is bit-identical on every length.
func (f *GF2m) AddMulSlice(dst, src []byte, c Elem) {
	if c == 0 || len(src) == 0 {
		return
	}
	if c == 1 {
		xorSlice(dst, src)
		return
	}
	switch activeTier {
	case TierGFNI:
		if n := len(src) &^ 31; n > 0 {
			addMulGFNIAsm(&dst[0], &src[0], n, f.gfniTab[c])
			if n == len(src) {
				return
			}
			dst, src = dst[n:], src[n:]
		}
		mulTableSlice(dst, src, f.bulkRow(c))
	case TierAVX2:
		if n := len(src) &^ 31; n > 0 {
			addMulNibAsm(&dst[0], &src[0], n, &f.nibTab[int(c)*32])
			if n == len(src) {
				return
			}
			dst, src = dst[n:], src[n:]
		}
		mulTableSlice(dst, src, f.bulkRow(c))
	case TierPortable:
		mulTableSlicePortable(dst, src, f.bulkRow(c))
	default:
		mulTableSlice(dst, src, f.bulkRow(c))
	}
}

// MulSlice performs v[i] = c * v[i] in place over a byte row, tiered the
// same way as AddMulSlice.
func (f *GF2m) MulSlice(v []byte, c Elem) {
	if c == 1 {
		return
	}
	if c == 0 {
		clear(v)
		return
	}
	switch activeTier {
	case TierGFNI:
		if n := len(v) &^ 31; n > 0 {
			mulGFNIAsm(&v[0], n, f.gfniTab[c])
			if n == len(v) {
				return
			}
			v = v[n:]
		}
		scaleTableSlice(v, f.bulkRow(c))
	case TierAVX2:
		if n := len(v) &^ 31; n > 0 {
			mulNibAsm(&v[0], n, &f.nibTab[int(c)*32])
			if n == len(v) {
				return
			}
			v = v[n:]
		}
		scaleTableSlice(v, f.bulkRow(c))
	case TierPortable:
		scaleTableSlicePortable(v, f.bulkRow(c))
	default:
		scaleTableSlice(v, f.bulkRow(c))
	}
}

// AXPY performs dst[i] ^= c * src[i] through the byte kernel (Elem rows and
// byte rows share a layout).
func (f *GF2m) AXPY(dst, src []Elem, c Elem) {
	f.AddMulSlice(asBytes(dst), asBytes(src), c)
}

// Scale performs v[i] *= c in place through the byte kernel.
func (f *GF2m) Scale(v []Elem, c Elem) {
	f.MulSlice(asBytes(v), c)
}

// DotProduct returns sum_i a[i]*b[i]. It walks the padded 256-stride
// bulkTab rows — index (a[i]<<8 | b[i]) — so each element costs one
// shift/or and one load instead of a multiply-scaled mulTab gather, and
// the four-way unroll keeps independent loads in flight.
func (f *GF2m) DotProduct(a, b []Elem) Elem {
	n := len(a)
	if n == 0 {
		return 0
	}
	_ = b[n-1]
	tab := f.bulkTab
	var acc byte
	i := 0
	for ; i+4 <= n; i += 4 {
		acc ^= tab[int(a[i])<<8|int(b[i])] ^
			tab[int(a[i+1])<<8|int(b[i+1])] ^
			tab[int(a[i+2])<<8|int(b[i+2])] ^
			tab[int(a[i+3])<<8|int(b[i+3])]
	}
	for ; i < n; i++ {
		acc ^= tab[int(a[i])<<8|int(b[i])]
	}
	return Elem(acc)
}
