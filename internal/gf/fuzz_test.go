package gf

import (
	"bytes"
	"testing"
)

// fuzzFields covers every supported field class: GF(2), all binary
// extension fields (table kernels), and prime fields (scalar fallback).
var fuzzFields = []int{2, 4, 8, 16, 32, 64, 128, 256, 3, 5, 7, 11, 13, 251}

// pickField maps a fuzz byte to a supported field.
func pickField(sel byte) Field {
	return MustNew(fuzzFields[int(sel)%len(fuzzFields)])
}

// reduceRow folds arbitrary fuzz bytes into valid field elements.
func reduceRow(f Field, raw []byte) []byte {
	out := make([]byte, len(raw))
	for i, b := range raw {
		out[i] = byte(int(b) % f.Order())
	}
	return out
}

// FuzzAddMulSlice cross-checks the bulk dst += c*src kernel against the
// scalar Mul/Add path for every supported field, including the c==0,
// c==1 and dst-longer-than-src edge cases the fast paths special-case.
func FuzzAddMulSlice(f *testing.F) {
	f.Add([]byte("hello world"), []byte("abcdefghijk"), byte(3), byte(0), uint8(0))
	f.Add([]byte{0, 1, 2, 3}, []byte{255, 254, 253, 252}, byte(1), byte(7), uint8(2))
	f.Add([]byte{}, []byte{}, byte(0), byte(13), uint8(1))
	f.Add(bytes.Repeat([]byte{0xAA}, 300), bytes.Repeat([]byte{0x55}, 300), byte(200), byte(5), uint8(3))
	f.Fuzz(func(t *testing.T, dstRaw, srcRaw []byte, cRaw, sel byte, extra uint8) {
		fld := pickField(sel)
		// Trim to a common length, then give dst extra tail bytes that the
		// kernel must leave untouched.
		n := len(srcRaw)
		if len(dstRaw) < n {
			n = len(dstRaw)
		}
		src := reduceRow(fld, srcRaw[:n])
		dst := reduceRow(fld, dstRaw[:n])
		tail := reduceRow(fld, bytes.Repeat([]byte{extra}, int(extra)%8))
		dst = append(dst, tail...)
		c := Elem(int(cRaw) % fld.Order())

		want := make([]byte, len(dst))
		copy(want, dst)
		for i := 0; i < n; i++ {
			want[i] = byte(fld.Add(Elem(dst[i]), fld.Mul(c, Elem(src[i]))))
		}

		// Every available kernel tier must match the element-wise result.
		for _, tier := range AvailableTiers() {
			got := append([]byte(nil), dst...)
			withFuzzTier(t, tier, func() { fld.AddMulSlice(got, src, c) })
			if !bytes.Equal(got, want) {
				t.Fatalf("%s AddMulSlice(c=%d, n=%d) tier %v diverges from scalar path:\ngot  %v\nwant %v",
					fld.Name(), c, n, tier, got, want)
			}
		}
	})
}

// FuzzMulSlice cross-checks the in-place v *= c kernel against the
// scalar Mul path for every supported field.
func FuzzMulSlice(f *testing.F) {
	f.Add([]byte("some payload row"), byte(9), uint8(0))
	f.Add([]byte{0, 0, 0, 0}, byte(0), uint8(4))
	f.Add([]byte{1}, byte(1), uint8(9))
	f.Add(bytes.Repeat([]byte{0xFF}, 257), byte(254), uint8(7))
	f.Fuzz(func(t *testing.T, raw []byte, cRaw, sel byte) {
		fld := pickField(sel)
		v := reduceRow(fld, raw)
		c := Elem(int(cRaw) % fld.Order())

		want := make([]byte, len(v))
		for i, x := range v {
			want[i] = byte(fld.Mul(c, Elem(x)))
		}

		for _, tier := range AvailableTiers() {
			got := append([]byte(nil), v...)
			withFuzzTier(t, tier, func() { fld.MulSlice(got, c) })
			if !bytes.Equal(got, want) {
				t.Fatalf("%s MulSlice(c=%d, n=%d) tier %v diverges from scalar path:\ngot  %v\nwant %v",
					fld.Name(), c, len(v), tier, got, want)
			}
		}
	})
}

// withFuzzTier forces a dispatch tier for one kernel call inside a fuzz
// body, restoring the previous tier afterwards.
func withFuzzTier(t *testing.T, tier Tier, fn func()) {
	t.Helper()
	old := ActiveTier()
	if err := SetTier(tier); err != nil {
		t.Fatalf("SetTier(%v): %v", tier, err)
	}
	fn()
	if err := SetTier(old); err != nil {
		t.Fatalf("restore tier %v: %v", old, err)
	}
}
