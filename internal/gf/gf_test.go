package gf

import (
	"testing"
	"testing/quick"

	"algossip/internal/core"
)

// allFields returns one instance of every supported field for exhaustive
// axiom checking.
func allFields(t *testing.T) []Field {
	t.Helper()
	orders := []int{2, 4, 8, 16, 32, 64, 128, 256, 3, 5, 7, 11, 13, 101, 251}
	fields := make([]Field, 0, len(orders))
	for _, q := range orders {
		f, err := New(q)
		if err != nil {
			t.Fatalf("New(%d): %v", q, err)
		}
		fields = append(fields, f)
	}
	return fields
}

func TestNewUnsupportedOrders(t *testing.T) {
	for _, q := range []int{0, 1, 6, 9, 10, 12, 100, 255, 257, 1024} {
		if _, err := New(q); err == nil {
			t.Errorf("New(%d): expected error, got nil", q)
		}
	}
}

func TestFieldMetadata(t *testing.T) {
	tests := []struct {
		order    int
		wantChar int
		wantName string
	}{
		{2, 2, "GF(2)"},
		{4, 2, "GF(4)"},
		{16, 2, "GF(16)"},
		{256, 2, "GF(256)"},
		{7, 7, "F_7"},
		{251, 251, "F_251"},
	}
	for _, tt := range tests {
		f := MustNew(tt.order)
		if f.Order() != tt.order {
			t.Errorf("order %d: Order() = %d", tt.order, f.Order())
		}
		if f.Char() != tt.wantChar {
			t.Errorf("order %d: Char() = %d, want %d", tt.order, f.Char(), tt.wantChar)
		}
		if f.Name() != tt.wantName {
			t.Errorf("order %d: Name() = %q, want %q", tt.order, f.Name(), tt.wantName)
		}
	}
}

// TestFieldAxioms exhaustively verifies the field axioms for every supported
// field (orders are small enough for O(q^3) associativity checks up to 16,
// O(q^2) beyond).
func TestFieldAxioms(t *testing.T) {
	for _, f := range allFields(t) {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			q := f.Order()
			// Commutativity, identity, inverses: O(q^2).
			for a := 0; a < q; a++ {
				ea := Elem(a)
				if got := f.Add(ea, 0); got != ea {
					t.Fatalf("%v + 0 = %v", ea, got)
				}
				if got := f.Mul(ea, 1); got != ea {
					t.Fatalf("%v * 1 = %v", ea, got)
				}
				if got := f.Mul(ea, 0); got != 0 {
					t.Fatalf("%v * 0 = %v", ea, got)
				}
				if got := f.Add(ea, f.Neg(ea)); got != 0 {
					t.Fatalf("%v + (-%v) = %v", ea, ea, got)
				}
				if a != 0 {
					if got := f.Mul(ea, f.Inv(ea)); got != 1 {
						t.Fatalf("%v * %v^-1 = %v", ea, ea, got)
					}
				}
				for b := 0; b < q; b++ {
					eb := Elem(b)
					if f.Add(ea, eb) != f.Add(eb, ea) {
						t.Fatalf("addition not commutative at (%d,%d)", a, b)
					}
					if f.Mul(ea, eb) != f.Mul(eb, ea) {
						t.Fatalf("multiplication not commutative at (%d,%d)", a, b)
					}
					if f.Sub(f.Add(ea, eb), eb) != ea {
						t.Fatalf("(a+b)-b != a at (%d,%d)", a, b)
					}
					if b != 0 {
						if f.Div(f.Mul(ea, eb), eb) != ea {
							t.Fatalf("(a*b)/b != a at (%d,%d)", a, b)
						}
					}
				}
			}
			// Associativity and distributivity: O(q^3), restricted to small q.
			if q <= 16 {
				for a := 0; a < q; a++ {
					for b := 0; b < q; b++ {
						for c := 0; c < q; c++ {
							ea, eb, ec := Elem(a), Elem(b), Elem(c)
							if f.Add(f.Add(ea, eb), ec) != f.Add(ea, f.Add(eb, ec)) {
								t.Fatalf("addition not associative at (%d,%d,%d)", a, b, c)
							}
							if f.Mul(f.Mul(ea, eb), ec) != f.Mul(ea, f.Mul(eb, ec)) {
								t.Fatalf("multiplication not associative at (%d,%d,%d)", a, b, c)
							}
							if f.Mul(ea, f.Add(eb, ec)) != f.Add(f.Mul(ea, eb), f.Mul(ea, ec)) {
								t.Fatalf("not distributive at (%d,%d,%d)", a, b, c)
							}
						}
					}
				}
			}
		})
	}
}

// TestFieldAxiomsQuick property-checks associativity and distributivity on
// the larger fields where the exhaustive O(q^3) loop is skipped.
func TestFieldAxiomsQuick(t *testing.T) {
	for _, q := range []int{32, 64, 128, 256, 251} {
		f := MustNew(q)
		t.Run(f.Name(), func(t *testing.T) {
			mod := func(x uint8) Elem { return Elem(int(x) % q) }
			assoc := func(a, b, c uint8) bool {
				ea, eb, ec := mod(a), mod(b), mod(c)
				return f.Mul(f.Mul(ea, eb), ec) == f.Mul(ea, f.Mul(eb, ec)) &&
					f.Add(f.Add(ea, eb), ec) == f.Add(ea, f.Add(eb, ec))
			}
			distrib := func(a, b, c uint8) bool {
				ea, eb, ec := mod(a), mod(b), mod(c)
				return f.Mul(ea, f.Add(eb, ec)) == f.Add(f.Mul(ea, eb), f.Mul(ea, ec))
			}
			if err := quick.Check(assoc, nil); err != nil {
				t.Errorf("associativity: %v", err)
			}
			if err := quick.Check(distrib, nil); err != nil {
				t.Errorf("distributivity: %v", err)
			}
		})
	}
}

func TestMulMatchesPolyMul(t *testing.T) {
	// The table-driven product must agree with direct polynomial
	// multiplication for GF(256).
	f, err := NewGF2m(8)
	if err != nil {
		t.Fatal(err)
	}
	poly := _irreducible[8]
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			want := Elem(polyMul(uint(a), uint(b), poly, 8))
			if got := f.Mul(Elem(a), Elem(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestAXPY(t *testing.T) {
	for _, f := range allFields(t) {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			rng := core.NewRand(42)
			for trial := 0; trial < 50; trial++ {
				n := 1 + rng.IntN(40)
				dst := RandVector(f, n, rng)
				src := RandVector(f, n, rng)
				c := Rand(f, rng)
				want := make([]Elem, n)
				for i := range want {
					want[i] = f.Add(dst[i], f.Mul(c, src[i]))
				}
				f.AXPY(dst, src, c)
				for i := range want {
					if dst[i] != want[i] {
						t.Fatalf("AXPY mismatch at %d: got %d want %d (c=%d)", i, dst[i], want[i], c)
					}
				}
			}
		})
	}
}

func TestScale(t *testing.T) {
	for _, f := range allFields(t) {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			rng := core.NewRand(7)
			for trial := 0; trial < 50; trial++ {
				n := 1 + rng.IntN(40)
				v := RandVector(f, n, rng)
				c := Rand(f, rng)
				want := make([]Elem, n)
				for i := range want {
					want[i] = f.Mul(c, v[i])
				}
				f.Scale(v, c)
				for i := range want {
					if v[i] != want[i] {
						t.Fatalf("Scale mismatch at %d: got %d want %d (c=%d)", i, v[i], want[i], c)
					}
				}
			}
		})
	}
}

func TestDotProduct(t *testing.T) {
	for _, f := range allFields(t) {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			rng := core.NewRand(11)
			for trial := 0; trial < 50; trial++ {
				n := 1 + rng.IntN(40)
				a := RandVector(f, n, rng)
				b := RandVector(f, n, rng)
				var want Elem
				for i := range a {
					want = f.Add(want, f.Mul(a[i], b[i]))
				}
				if got := f.DotProduct(a, b); got != want {
					t.Fatalf("DotProduct = %d, want %d", got, want)
				}
			}
		})
	}
}

func TestDivByZeroPanics(t *testing.T) {
	for _, f := range allFields(t) {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			assertPanics(t, func() { f.Div(1, 0) })
			assertPanics(t, func() { f.Inv(0) })
		})
	}
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	fn()
}

func TestRandHelpers(t *testing.T) {
	f := MustNew(16)
	rng := core.NewRand(3)
	seen := make(map[Elem]bool)
	for i := 0; i < 2000; i++ {
		e := Rand(f, rng)
		if int(e) >= 16 {
			t.Fatalf("Rand out of range: %d", e)
		}
		seen[e] = true
		nz := RandNonZero(f, rng)
		if nz == 0 || int(nz) >= 16 {
			t.Fatalf("RandNonZero out of range: %d", nz)
		}
	}
	if len(seen) != 16 {
		t.Errorf("Rand did not cover the field after 2000 draws: %d/16", len(seen))
	}
	v := RandVector(f, 10, rng)
	if len(v) != 10 {
		t.Fatalf("RandVector length = %d", len(v))
	}
}

func TestIsZeroVector(t *testing.T) {
	if !IsZeroVector([]Elem{0, 0, 0}) {
		t.Error("all-zero vector not recognized")
	}
	if !IsZeroVector(nil) {
		t.Error("nil vector should be zero")
	}
	if IsZeroVector([]Elem{0, 1, 0}) {
		t.Error("nonzero vector reported zero")
	}
}

func TestDefaultIsGF256(t *testing.T) {
	if got := Default().Order(); got != 256 {
		t.Fatalf("Default().Order() = %d, want 256", got)
	}
}

func TestMustNewPanicsOnBadOrder(t *testing.T) {
	assertPanics(t, func() { MustNew(6) })
}

func BenchmarkMulGF256(b *testing.B) {
	f := MustNew(256)
	var acc Elem
	for i := 0; i < b.N; i++ {
		acc ^= f.Mul(Elem(i), Elem(i>>8))
	}
	_ = acc
}

func BenchmarkAXPYGF256(b *testing.B) {
	f := MustNew(256)
	rng := core.NewRand(1)
	dst := RandVector(f, 1024, rng)
	src := RandVector(f, 1024, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AXPY(dst, src, Elem(i|1))
	}
}
