package gf

import (
	"fmt"
	"testing"

	"math/rand/v2"
)

// The scalar-vs-bulk pair quantifies the kernel speedup the RLNC hot path
// gets: BenchmarkAddMulScalar is the per-symbol Mul/Add loop the code used
// to run, BenchmarkAddMulSlice is the table-walk/XOR kernel. The ISSUE
// acceptance bar is >= 5x on GF(256) at payloadLen >= 256.

var benchLens = []int{64, 256, 1024, 4096}

func benchRows(f Field, n int) (dst, src []byte) {
	rng := rand.New(rand.NewPCG(1, 2))
	return RandBytes(f, n, rng), RandBytes(f, n, rng)
}

func BenchmarkAddMulScalarGF256(b *testing.B) {
	f := MustNew(256)
	for _, n := range benchLens {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			dst, src := benchRows(f, n)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				addMulRef(f, dst, src, 0x53)
			}
		})
	}
}

func BenchmarkAddMulSliceGF256(b *testing.B) {
	f := MustNew(256)
	for _, n := range benchLens {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			dst, src := benchRows(f, n)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				f.AddMulSlice(dst, src, 0x53)
			}
		})
	}
}

// c == 1 takes the word-wise XOR fast path shared with GF(2).
func BenchmarkAddMulSliceGF256C1(b *testing.B) {
	f := MustNew(256)
	for _, n := range benchLens {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			dst, src := benchRows(f, n)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				f.AddMulSlice(dst, src, 1)
			}
		})
	}
}

func BenchmarkAddMulScalarGF2(b *testing.B) {
	f := MustNew(2)
	for _, n := range benchLens {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			dst, src := benchRows(f, n)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				addMulRef(f, dst, src, 1)
			}
		})
	}
}

func BenchmarkAddMulSliceGF2(b *testing.B) {
	f := MustNew(2)
	for _, n := range benchLens {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			dst, src := benchRows(f, n)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				f.AddMulSlice(dst, src, 1)
			}
		})
	}
}

func BenchmarkMulSliceGF256(b *testing.B) {
	f := MustNew(256)
	for _, n := range benchLens {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			v, _ := benchRows(f, n)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				f.MulSlice(v, 0x53)
			}
		})
	}
}

// The sliced kernel is the GF(2^m) elimination workhorse: dst += c*src as
// at most m^2 plane XORs over packed words instead of one table gather
// per symbol. Benchmarked against BenchmarkAddMulSliceGF256 above at the
// same row lengths (bytes of symbols, i.e. SetBytes matches).
func benchSlicedRows(f *GF2m, n int) (dst, src []uint64) {
	rng := rand.New(rand.NewPCG(1, 2))
	dst = make([]uint64, f.M()*SlicedWords(n))
	src = make([]uint64, f.M()*SlicedWords(n))
	f.PackSliced(dst, RandBytes(f, n, rng))
	f.PackSliced(src, RandBytes(f, n, rng))
	return dst, src
}

func BenchmarkAddMulSlicedGF256(b *testing.B) {
	f := MustNew(256).(*GF2m)
	for _, n := range benchLens {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			dst, src := benchSlicedRows(f, n)
			words := SlicedWords(n)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				f.AddMulSliced(dst, src, words, 0x53)
			}
		})
	}
}

func BenchmarkAddMulSlicedGF16(b *testing.B) {
	f := MustNew(16).(*GF2m)
	for _, n := range benchLens {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			dst, src := benchSlicedRows(f, n)
			words := SlicedWords(n)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				f.AddMulSliced(dst, src, words, 0xB)
			}
		})
	}
}

// Forced-tier variants pin the two tiers every machine has, so the
// benchdelta gate tracks them on any runner regardless of CPU features.
// (The avx2/gfni numbers live in the default benchmarks above on hosts
// that auto-select them; CI forces ALGOSSIP_GF_TIER=avx2 there for
// cross-runner determinism.)
func benchWithTier(b *testing.B, tier Tier, fn func()) {
	old := ActiveTier()
	if err := SetTier(tier); err != nil {
		b.Fatalf("SetTier(%v): %v", tier, err)
	}
	defer func() { _ = SetTier(old) }()
	fn()
}

func BenchmarkAddMulSliceGF256TierScalar(b *testing.B) {
	f := MustNew(256)
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			dst, src := benchRows(f, n)
			b.SetBytes(int64(n))
			benchWithTier(b, TierScalar, func() {
				for i := 0; i < b.N; i++ {
					f.AddMulSlice(dst, src, 0x53)
				}
			})
		})
	}
}

func BenchmarkAddMulSliceGF256TierPortable(b *testing.B) {
	f := MustNew(256)
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			dst, src := benchRows(f, n)
			b.SetBytes(int64(n))
			benchWithTier(b, TierPortable, func() {
				for i := 0; i < b.N; i++ {
					f.AddMulSlice(dst, src, 0x53)
				}
			})
		})
	}
}

func BenchmarkAddMulSlicedGF256TierPortable(b *testing.B) {
	f := MustNew(256).(*GF2m)
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			dst, src := benchSlicedRows(f, n)
			words := SlicedWords(n)
			b.SetBytes(int64(n))
			benchWithTier(b, TierPortable, func() {
				for i := 0; i < b.N; i++ {
					f.AddMulSliced(dst, src, words, 0x53)
				}
			})
		})
	}
}

// Coefficient-only inner products (WouldHelp-style queries) walk bulkTab
// rows; this pins the gather restructure.
func BenchmarkDotProductGF256(b *testing.B) {
	f := MustNew(256)
	for _, n := range benchLens {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewPCG(3, 4))
			x := RandVector(f, n, rng)
			y := RandVector(f, n, rng)
			b.SetBytes(int64(n))
			var sink Elem
			for i := 0; i < b.N; i++ {
				sink ^= f.DotProduct(x, y)
			}
			_ = sink
		})
	}
}
