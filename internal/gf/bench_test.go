package gf

import (
	"fmt"
	"testing"

	"math/rand/v2"
)

// The scalar-vs-bulk pair quantifies the kernel speedup the RLNC hot path
// gets: BenchmarkAddMulScalar is the per-symbol Mul/Add loop the code used
// to run, BenchmarkAddMulSlice is the table-walk/XOR kernel. The ISSUE
// acceptance bar is >= 5x on GF(256) at payloadLen >= 256.

var benchLens = []int{64, 256, 1024, 4096}

func benchRows(f Field, n int) (dst, src []byte) {
	rng := rand.New(rand.NewPCG(1, 2))
	return RandBytes(f, n, rng), RandBytes(f, n, rng)
}

func BenchmarkAddMulScalarGF256(b *testing.B) {
	f := MustNew(256)
	for _, n := range benchLens {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			dst, src := benchRows(f, n)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				addMulRef(f, dst, src, 0x53)
			}
		})
	}
}

func BenchmarkAddMulSliceGF256(b *testing.B) {
	f := MustNew(256)
	for _, n := range benchLens {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			dst, src := benchRows(f, n)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				f.AddMulSlice(dst, src, 0x53)
			}
		})
	}
}

// c == 1 takes the word-wise XOR fast path shared with GF(2).
func BenchmarkAddMulSliceGF256C1(b *testing.B) {
	f := MustNew(256)
	for _, n := range benchLens {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			dst, src := benchRows(f, n)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				f.AddMulSlice(dst, src, 1)
			}
		})
	}
}

func BenchmarkAddMulScalarGF2(b *testing.B) {
	f := MustNew(2)
	for _, n := range benchLens {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			dst, src := benchRows(f, n)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				addMulRef(f, dst, src, 1)
			}
		})
	}
}

func BenchmarkAddMulSliceGF2(b *testing.B) {
	f := MustNew(2)
	for _, n := range benchLens {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			dst, src := benchRows(f, n)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				f.AddMulSlice(dst, src, 1)
			}
		})
	}
}

func BenchmarkMulSliceGF256(b *testing.B) {
	f := MustNew(256)
	for _, n := range benchLens {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			v, _ := benchRows(f, n)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				f.MulSlice(v, 0x53)
			}
		})
	}
}
