// Package gf implements the finite fields F_q used by random linear network
// coding (RLNC). Algebraic gossip draws the coefficients of every random
// linear combination uniformly from F_q; the paper's bounds only need q >= 2
// (the probability that a combination from a helpful node is helpful is at
// least 1 - 1/q, Lemma 2.1 of Deb et al.), so the package provides GF(2),
// the binary extension fields GF(4), GF(16) and GF(256), a generic GF(2^m)
// constructor, and small prime fields F_p.
//
// All elements are represented as a single byte (Elem), which covers every
// field of order at most 256 — more than enough: larger fields only move the
// helpfulness probability closer to 1.
package gf

import (
	"fmt"
	"math/rand/v2"
)

// Elem is an element of a finite field of order at most 256. The zero value
// is the additive identity of every field.
type Elem uint8

// Field is a finite field F_q with q <= 256. Implementations must be
// immutable after construction and safe for concurrent use.
//
// Div and Inv panic when the divisor is zero; callers own the precondition,
// exactly as with integer division.
type Field interface {
	// Order returns q, the number of elements.
	Order() int
	// Char returns the characteristic of the field (2 for GF(2^m), p for F_p).
	Char() int
	// Name returns a short human-readable name such as "GF(256)".
	Name() string

	// Add returns a + b.
	Add(a, b Elem) Elem
	// Sub returns a - b.
	Sub(a, b Elem) Elem
	// Neg returns -a.
	Neg(a Elem) Elem
	// Mul returns a * b.
	Mul(a, b Elem) Elem
	// Div returns a / b. It panics if b == 0.
	Div(a, b Elem) Elem
	// Inv returns the multiplicative inverse of a. It panics if a == 0.
	Inv(a Elem) Elem

	// AXPY performs dst[i] += c * src[i] for every index of src.
	// len(dst) must be at least len(src).
	AXPY(dst, src []Elem, c Elem)
	// Scale performs v[i] *= c for every index of v.
	Scale(v []Elem, c Elem)
	// DotProduct returns the inner product of a and b, which must have
	// equal length.
	DotProduct(a, b []Elem) Elem

	// AddMulSlice performs dst[i] += c * src[i] over byte-encoded field
	// elements for every index of src — the bulk combine kernel of RLNC
	// encode and decode. len(dst) must be at least len(src), and every byte
	// must hold a valid field element (< Order()).
	AddMulSlice(dst, src []byte, c Elem)
	// MulSlice performs v[i] *= c in place over byte-encoded field elements.
	MulSlice(v []byte, c Elem)
}

// Rand returns an element of f drawn uniformly at random.
func Rand(f Field, rng *rand.Rand) Elem {
	return Elem(rng.IntN(f.Order()))
}

// RandNonZero returns a nonzero element of f drawn uniformly at random.
func RandNonZero(f Field, rng *rand.Rand) Elem {
	return Elem(1 + rng.IntN(f.Order()-1))
}

// RandVector fills a fresh length-n vector with uniform random elements of f.
func RandVector(f Field, n int, rng *rand.Rand) []Elem {
	v := make([]Elem, n)
	for i := range v {
		v[i] = Rand(f, rng)
	}
	return v
}

// RandBytes fills a fresh length-n byte row with uniform random elements of
// f, one element per byte — the payload-side counterpart of RandVector.
func RandBytes(f Field, n int, rng *rand.Rand) []byte {
	v := make([]byte, n)
	for i := range v {
		v[i] = byte(Rand(f, rng))
	}
	return v
}

// IsZeroVector reports whether every entry of v is zero.
func IsZeroVector(v []Elem) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// New returns the field with the given order. Supported orders are 2, 4, 8,
// 16, 32, 64, 128 and 256 (binary extension fields) and small primes up to
// 251.
func New(order int) (Field, error) {
	switch order {
	case 2:
		return GF2{}, nil
	case 4, 8, 16, 32, 64, 128, 256:
		m := 0
		for v := order; v > 1; v >>= 1 {
			m++
		}
		return NewGF2m(m)
	default:
		if order > 256 {
			return nil, fmt.Errorf("gf: order %d exceeds byte representation", order)
		}
		if !isPrime(order) {
			return nil, fmt.Errorf("gf: unsupported field order %d (not a power of two or a prime)", order)
		}
		return NewPrime(order)
	}
}

// MustNew is like New but panics on error. It is intended for package-level
// construction with known-good orders.
func MustNew(order int) Field {
	f, err := New(order)
	if err != nil {
		panic(err)
	}
	return f
}

// Default returns the field used by the paper's canonical configuration,
// GF(256): one coefficient per byte and helpfulness probability 255/256.
func Default() Field {
	return MustNew(256)
}

// FieldOrders lists every order New accepts: the binary extension fields
// GF(2^m) for m ≤ 8 plus a spread of small primes. Property tests sweep
// this list to cover all three coding backends (bit-packed GF(2),
// bit-sliced GF(2^m), generic prime).
func FieldOrders() []int {
	return []int{2, 4, 8, 16, 32, 64, 128, 256, 3, 5, 7, 11, 13, 251}
}

// Fields returns one instance of every supported field, in FieldOrders
// order.
func Fields() []Field {
	orders := FieldOrders()
	out := make([]Field, len(orders))
	for i, q := range orders {
		out[i] = MustNew(q)
	}
	return out
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}
