package runtime

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"algossip/internal/core"
	"algossip/internal/gf"
)

// transportCase builds a fresh instance of one Transport implementation.
// Every implementation shipped by the package must pass the whole
// conformance suite below (run race-enabled in CI).
type transportCase struct {
	name string
	new  func(t *testing.T) Transport
}

func transportCases() []transportCase {
	return []transportCase{
		{"chan", func(t *testing.T) Transport { return NewChanTransport() }},
		{"tcp", func(t *testing.T) Transport { return NewTCPTransport() }},
		{"udp", func(t *testing.T) Transport {
			tr, err := NewUDPTransport()
			if err != nil {
				t.Fatalf("udp transport: %v", err)
			}
			return tr
		}},
		{"lossy", func(t *testing.T) Transport {
			// Rate 0 exercises the wrapper's plumbing deterministically;
			// drop injection itself is covered by TestClusterUnderPacketLoss.
			tr, err := NewLossyTransport(NewChanTransport(), 0, 7)
			if err != nil {
				t.Fatalf("lossy transport: %v", err)
			}
			return tr
		}},
		{"chaos", func(t *testing.T) Transport {
			// Latency+jitter exercise the delay pipe under every contract
			// check; CorruptRate stays 0 because DeliveryFidelity expects
			// byte-identical envelopes (corruption is covered by the chaos
			// unit tests).
			tr, err := NewChaosTransport(NewChanTransport(), ChaosConfig{
				Latency: time.Millisecond, Jitter: time.Millisecond, Seed: 11,
			})
			if err != nil {
				t.Fatalf("chaos transport: %v", err)
			}
			return tr
		}},
	}
}

// sampleEnvelope exercises every Envelope field through the transport.
func sampleEnvelope() Envelope {
	return Envelope{
		Kind:      EnvelopePacket,
		From:      3,
		WantReply: true,
		Gen:       2,
		Coeffs:    []gf.Elem{1, 0, 7, 255},
		Payload:   []byte("conformance"),
	}
}

func envelopesEqual(a, b Envelope) bool {
	if a.Kind != b.Kind || a.From != b.From || a.WantReply != b.WantReply ||
		a.Gen != b.Gen || len(a.Coeffs) != len(b.Coeffs) || len(a.Payload) != len(b.Payload) {
		return false
	}
	for i := range a.Coeffs {
		if a.Coeffs[i] != b.Coeffs[i] {
			return false
		}
	}
	for i := range a.Payload {
		if a.Payload[i] != b.Payload[i] {
			return false
		}
	}
	return true
}

// TestTransportConformance runs every Transport implementation through the
// same contract checks: registration rules, delivery fidelity, typed
// errors, close ordering, and concurrent-send safety.
func TestTransportConformance(t *testing.T) {
	for _, tc := range transportCases() {
		t.Run(tc.name, func(t *testing.T) {
			t.Run("RegisterTwiceFails", func(t *testing.T) {
				tr := tc.new(t)
				defer func() { _ = tr.Close() }()
				if _, err := tr.Register(0); err != nil {
					t.Fatalf("first register: %v", err)
				}
				if _, err := tr.Register(0); err == nil {
					t.Fatal("second register of node 0 succeeded")
				}
			})

			t.Run("SendUnknownNode", func(t *testing.T) {
				tr := tc.new(t)
				defer func() { _ = tr.Close() }()
				err := tr.Send(context.Background(), 42, sampleEnvelope())
				if !errors.Is(err, ErrUnknownNode) {
					t.Fatalf("send to unknown node: got %v, want ErrUnknownNode", err)
				}
			})

			t.Run("SendCanceledContext", func(t *testing.T) {
				tr := tc.new(t)
				defer func() { _ = tr.Close() }()
				if _, err := tr.Register(0); err != nil {
					t.Fatal(err)
				}
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				if err := tr.Send(ctx, 0, sampleEnvelope()); !errors.Is(err, context.Canceled) {
					t.Fatalf("send on canceled ctx: got %v, want context.Canceled", err)
				}
			})

			t.Run("DeliveryFidelity", func(t *testing.T) {
				tr := tc.new(t)
				defer func() { _ = tr.Close() }()
				inbox, err := tr.Register(1)
				if err != nil {
					t.Fatal(err)
				}
				want := sampleEnvelope()
				// Send is allowed to be asynchronous (TCP enqueues); retry
				// until the envelope lands or the deadline passes.
				deadline := time.After(10 * time.Second)
				tick := time.NewTicker(20 * time.Millisecond)
				defer tick.Stop()
				if err := tr.Send(context.Background(), 1, want); err != nil {
					t.Fatalf("send: %v", err)
				}
				for {
					select {
					case got := <-inbox:
						if !envelopesEqual(got, want) {
							t.Fatalf("delivered envelope %+v != sent %+v", got, want)
						}
						return
					case <-tick.C:
						_ = tr.Send(context.Background(), 1, want)
					case <-deadline:
						t.Fatal("envelope never delivered")
					}
				}
			})

			t.Run("NoCrossDelivery", func(t *testing.T) {
				tr := tc.new(t)
				defer func() { _ = tr.Close() }()
				inbox1, err := tr.Register(1)
				if err != nil {
					t.Fatal(err)
				}
				inbox2, err := tr.Register(2)
				if err != nil {
					t.Fatal(err)
				}
				if err := tr.Send(context.Background(), 1, sampleEnvelope()); err != nil {
					t.Fatalf("send: %v", err)
				}
				select {
				case <-inbox1:
				case <-time.After(10 * time.Second):
					t.Fatal("envelope never delivered")
				}
				select {
				case env := <-inbox2:
					t.Fatalf("node 2 received an envelope addressed to node 1: %+v", env)
				default:
				}
			})

			t.Run("ConcurrentSends", func(t *testing.T) {
				tr := tc.new(t)
				inbox, err := tr.Register(0)
				if err != nil {
					t.Fatal(err)
				}
				var delivered int
				drained := make(chan struct{})
				go func() {
					defer close(drained)
					for range inbox {
						delivered++
					}
				}()
				const goroutines, perG = 8, 50
				var wg sync.WaitGroup
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						env := sampleEnvelope()
						env.From = core.NodeID(g)
						for i := 0; i < perG; i++ {
							err := tr.Send(context.Background(), 0, env)
							if err != nil && !errors.Is(err, ErrBackpressure) {
								t.Errorf("concurrent send: %v", err)
								return
							}
						}
					}(g)
				}
				wg.Wait()
				// Give asynchronous transports a moment to flush in-flight
				// frames, then close (which closes the inbox and ends the
				// drainer).
				time.Sleep(50 * time.Millisecond)
				if err := tr.Close(); err != nil {
					t.Fatalf("close: %v", err)
				}
				<-drained
				if delivered == 0 {
					t.Fatal("no envelope survived the concurrent burst")
				}
				s := tr.Stats()
				if s.Total.Sent == 0 {
					t.Fatal("Stats counted no sends")
				}
				if s.Total.Sent+s.Total.Dropped < uint64(delivered) {
					t.Fatalf("Stats account for %d envelopes, but %d were delivered",
						s.Total.Sent+s.Total.Dropped, delivered)
				}
			})

			t.Run("SendAfterClose", func(t *testing.T) {
				tr := tc.new(t)
				if _, err := tr.Register(0); err != nil {
					t.Fatal(err)
				}
				if err := tr.Close(); err != nil {
					t.Fatalf("close: %v", err)
				}
				err := tr.Send(context.Background(), 0, sampleEnvelope())
				if !errors.Is(err, ErrTransportClosed) {
					t.Fatalf("send after close: got %v, want ErrTransportClosed", err)
				}
			})

			t.Run("RegisterAfterClose", func(t *testing.T) {
				tr := tc.new(t)
				if err := tr.Close(); err != nil {
					t.Fatalf("close: %v", err)
				}
				if _, err := tr.Register(0); !errors.Is(err, ErrTransportClosed) {
					t.Fatalf("register after close: got %v, want ErrTransportClosed", err)
				}
			})

			t.Run("CloseIdempotent", func(t *testing.T) {
				tr := tc.new(t)
				if _, err := tr.Register(0); err != nil {
					t.Fatal(err)
				}
				if err := tr.Close(); err != nil {
					t.Fatalf("first close: %v", err)
				}
				if err := tr.Close(); err != nil {
					t.Fatalf("second close: %v", err)
				}
			})
		})
	}
}
