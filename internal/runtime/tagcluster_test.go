package runtime

import (
	"context"
	"testing"
	"time"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
)

func TestTAGClusterChanTransport(t *testing.T) {
	g := graph.Barbell(10)
	const k, r = 5, 6
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewTAGCluster(tr, g, 0, k, WithPayload(r), WithInterval(200*time.Microsecond), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := core.NewRand(55)
	field := gf.MustNew(256)
	msgs := make([]rlnc.Message, k)
	for i := range msgs {
		msgs[i] = rlnc.Message{Index: i, Payload: gf.RandBytes(field, r, rng)}
		if err := c.Seed(core.NodeID(i), msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if done != g.N() {
		t.Fatalf("completed %d/%d", done, g.N())
	}
	// Spanning tree must be complete and valid, with edges in the graph.
	tree, ok := c.Tree()
	if !ok {
		t.Fatal("tree incomplete after all nodes decoded")
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	for v, par := range tree.Parent {
		if par != core.NilNode && !g.HasEdge(core.NodeID(v), par) {
			t.Fatalf("tree edge (%d,%d) not in graph", v, par)
		}
	}
	// All nodes decode all messages.
	for v := 0; v < g.N(); v++ {
		got, err := c.Decode(core.NodeID(v))
		if err != nil {
			t.Fatalf("node %d: %v", v, err)
		}
		for i := range msgs {
			for j := range msgs[i].Payload {
				if got[i].Payload[j] != msgs[i].Payload[j] {
					t.Fatalf("node %d message %d mismatch", v, i)
				}
			}
		}
	}
}

func TestTAGClusterTCP(t *testing.T) {
	g := graph.CliqueChain(2, 4)
	const k, r = 4, 4
	tr := NewTCPTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewTAGCluster(tr, g, 0, k, WithPayload(r), WithInterval(500*time.Microsecond), WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	rng := core.NewRand(7)
	field := gf.MustNew(256)
	for i := 0; i < k; i++ {
		if err := c.Seed(core.NodeID(i), rlnc.Message{Index: i, Payload: gf.RandBytes(field, r, rng)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := c.Run(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestTAGClusterValidation(t *testing.T) {
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	if _, err := NewTAGCluster(tr, nil, 0, 2, WithPayload(2)); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewTAGCluster(tr, graph.Line(3), 5, 2, WithPayload(2)); err == nil {
		t.Error("out-of-range origin accepted")
	}
	if _, err := NewTAGCluster(tr, graph.Line(3), 0, 4, WithGenerations(2)); err == nil {
		t.Error("generation coding accepted by TAG")
	}
	if _, err := NewTAGCluster(tr, graph.Line(3), 0, 2, WithLocalNodes(0, 1)); err == nil {
		t.Error("local subset accepted by TAG")
	}
}

func TestTAGClusterParentAccessors(t *testing.T) {
	g := graph.Line(3)
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewTAGCluster(tr, g, 1, 2, WithPayload(2), WithInterval(time.Hour), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.Parent(0) != core.NilNode || c.Parent(1) != core.NilNode {
		t.Fatal("parents must start unset")
	}
	if _, ok := c.Tree(); ok {
		t.Fatal("tree must be incomplete initially")
	}
	if c.Rank(0) != 0 {
		t.Fatal("rank must start 0")
	}
}

// TestClusterUnderPacketLoss is the failure-injection test: 30% of all
// envelopes are dropped, and the coded cluster still completes (network
// coding needs no retransmission protocol — every surviving packet is
// equally useful).
func TestClusterUnderPacketLoss(t *testing.T) {
	g := graph.Grid(3, 3)
	const k, r = 4, 4
	base := NewChanTransport()
	lossy, err := NewLossyTransport(base, 0.3, 99)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = lossy.Close() }()
	c, err := NewCluster(lossy, g, k, WithPayload(r), WithInterval(200*time.Microsecond), WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	rng := core.NewRand(3)
	field := gf.MustNew(256)
	for i := 0; i < k; i++ {
		if err := c.Seed(core.NodeID(i), rlnc.Message{Index: i, Payload: gf.RandBytes(field, r, rng)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if done != g.N() {
		t.Fatalf("completed %d/%d under loss", done, g.N())
	}
	s := lossy.Stats()
	if s.Total.Dropped == 0 {
		t.Error("loss injection did not drop anything")
	}
	ratio := float64(s.Total.Dropped) / float64(s.Total.Sent+s.Total.Dropped)
	if ratio < 0.2 || ratio > 0.4 {
		t.Errorf("drop ratio %.2f, want ~0.3", ratio)
	}
}

func TestLossyTransportValidation(t *testing.T) {
	if _, err := NewLossyTransport(NewChanTransport(), 1.0, 1); err == nil {
		t.Error("rate 1.0 accepted")
	}
	if _, err := NewLossyTransport(NewChanTransport(), -0.1, 1); err == nil {
		t.Error("negative rate accepted")
	}
}
