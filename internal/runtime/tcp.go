package runtime

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"algossip/internal/core"
	"algossip/internal/wire"
)

// TCPOptions tunes TCPTransport's connection management. The zero value
// selects the defaults below.
type TCPOptions struct {
	// QueueSize bounds each destination's send queue (default 256). A
	// full queue drops the frame with ErrBackpressure — senders are never
	// stalled by one slow peer.
	QueueSize int
	// DialAttempts is how many times one frame's dial burst retries an
	// unreachable peer before dropping the frame (default 5). Later
	// frames start fresh bursts, so a restarting peer is re-found.
	DialAttempts int
	// DialBackoff is the first retry delay; it doubles per attempt with
	// ±50% jitter (default 5ms).
	DialBackoff time.Duration
	// SendTimeout bounds each dial and each frame write (default 2s).
	SendTimeout time.Duration
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.QueueSize <= 0 {
		o.QueueSize = inboxSize
	}
	if o.DialAttempts <= 0 {
		o.DialAttempts = 5
	}
	if o.DialBackoff <= 0 {
		o.DialBackoff = 5 * time.Millisecond
	}
	if o.SendTimeout <= 0 {
		o.SendTimeout = 2 * time.Second
	}
	return o
}

// TCPTransport carries wire-framed envelopes over TCP. Each registered
// node gets its own listener (inbound frames are demuxed by the frame's
// destination field, so one listener can also serve a whole co-located
// node set); each destination gets one persistent connection owned by a
// dedicated sender goroutine — dialing happens there, never under the
// transport mutex, so one unreachable peer cannot stall other senders
// (and concurrent Sends to the same peer coalesce onto the one dial, the
// singleflight this layer needs).
type TCPTransport struct {
	opts TCPOptions

	mu        sync.Mutex
	peers     map[core.NodeID]string // declared remote addresses
	addrs     map[core.NodeID]string // bound addresses of local listeners
	listeners map[core.NodeID]net.Listener
	inbound   map[net.Conn]struct{}
	boxes     map[core.NodeID]chan Envelope
	senders   map[core.NodeID]*tcpSender
	closed    bool

	stop   chan struct{}
	stats  *counters
	wg     sync.WaitGroup // accept + read loops
	sendWg sync.WaitGroup // sender loops
}

type tcpSender struct {
	to    core.NodeID
	queue chan Envelope
}

var _ Transport = (*TCPTransport)(nil)

// NewTCPTransport returns a TCP transport with default options; nodes
// listen on loopback ports assigned by the kernel unless SetPeers
// declared an address for them.
func NewTCPTransport() *TCPTransport {
	return NewTCPTransportOpts(TCPOptions{})
}

// NewTCPTransportOpts returns a TCP transport with explicit options.
func NewTCPTransportOpts(opts TCPOptions) *TCPTransport {
	return &TCPTransport{
		opts:      opts.withDefaults(),
		peers:     make(map[core.NodeID]string),
		addrs:     make(map[core.NodeID]string),
		listeners: make(map[core.NodeID]net.Listener),
		inbound:   make(map[net.Conn]struct{}),
		boxes:     make(map[core.NodeID]chan Envelope),
		senders:   make(map[core.NodeID]*tcpSender),
		stop:      make(chan struct{}),
		stats:     newCounters(),
	}
}

// SetPeers declares node → address routes: Sends to an unregistered node
// dial the declared address (multi-process clusters), and a subsequent
// local Register of a declared node binds that address instead of an
// ephemeral port.
func (t *TCPTransport) SetPeers(peers map[core.NodeID]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, addr := range peers {
		t.peers[id] = addr
	}
}

// AddPeer declares a single node → address route.
func (t *TCPTransport) AddPeer(id core.NodeID, addr string) {
	t.SetPeers(map[core.NodeID]string{id: addr})
}

// Register implements Transport: it starts a listener for the node and an
// accept loop funneling decoded frames into local inboxes.
func (t *TCPTransport) Register(id core.NodeID) (<-chan Envelope, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrTransportClosed
	}
	if _, ok := t.boxes[id]; ok {
		return nil, fmt.Errorf("runtime: node %d already registered", id)
	}
	bind := "127.0.0.1:0"
	if a, ok := t.peers[id]; ok {
		bind = a
	}
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("runtime: listen for node %d: %w", id, err)
	}
	ch := make(chan Envelope, t.opts.QueueSize)
	t.listeners[id] = ln
	t.addrs[id] = ln.Addr().String()
	t.boxes[id] = ch

	t.wg.Add(1)
	go t.acceptLoop(ln)
	return ch, nil
}

func (t *TCPTransport) acceptLoop(ln net.Listener) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop decodes inbound frames and demuxes them onto local inboxes by
// the frame's destination field. A malformed frame (bad magic, version,
// lengths — anything the wire screens catch) closes the connection: a
// corrupted or hostile stream costs its sender a redial, never a crash.
func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
		_ = conn.Close()
	}()
	r := wire.NewReader(conn)
	for {
		to, env, err := r.ReadFrame()
		if err != nil {
			return
		}
		t.mu.Lock()
		ch, ok := t.boxes[to]
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		if !ok {
			t.stats.dropped(to) // misrouted: not a local node
			continue
		}
		select {
		case ch <- env:
		default:
			t.stats.dropped(to)
		}
	}
}

// Addr returns the listen address of a registered node (for diagnostics
// and peer-map construction).
func (t *TCPTransport) Addr(id core.NodeID) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a, ok := t.addrs[id]
	return a, ok
}

// addrOf resolves a destination at dial time — local listener first, then
// declared peers — so peers declared after the sender spun up still take
// effect on the next dial.
func (t *TCPTransport) addrOf(to core.NodeID) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if a, ok := t.addrs[to]; ok {
		return a, true
	}
	a, ok := t.peers[to]
	return a, ok
}

// Send implements Transport: it enqueues the frame on the destination's
// sender goroutine, creating it on first use. A full queue drops the
// frame with ErrBackpressure — the caller is never blocked on a slow or
// unreachable peer.
func (t *TCPTransport) Send(ctx context.Context, to core.NodeID, env Envelope) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrTransportClosed
	}
	s, ok := t.senders[to]
	if !ok {
		if _, local := t.addrs[to]; !local {
			if _, peer := t.peers[to]; !peer {
				t.mu.Unlock()
				return fmt.Errorf("%w: %d", ErrUnknownNode, to)
			}
		}
		s = &tcpSender{to: to, queue: make(chan Envelope, t.opts.QueueSize)}
		t.senders[to] = s
		t.sendWg.Add(1)
		go t.runSender(s)
	}
	t.mu.Unlock()

	select {
	case s.queue <- env:
		return nil
	default:
		t.stats.dropped(to)
		return fmt.Errorf("%w: send queue for node %d full", ErrBackpressure, to)
	}
}

// runSender owns one destination's connection: it drains the send queue,
// (re)dialing with exponential backoff + jitter as needed and writing
// each frame under a deadline. Frames that outlive the dial burst or hit
// a write error are dropped and counted — coded gossip recovers through
// redundancy, so a sender never retries a stale frame.
func (t *TCPTransport) runSender(s *tcpSender) {
	defer t.sendWg.Done()
	var conn net.Conn
	var w *wire.Writer
	dialedOnce := false
	defer func() {
		if conn != nil {
			_ = conn.Close()
		}
	}()
	for {
		var env Envelope
		select {
		case <-t.stop:
			return
		case env = <-s.queue:
		}
		if conn == nil {
			conn = t.dialBurst(s.to, &dialedOnce)
			if conn == nil {
				t.stats.dropped(s.to)
				continue
			}
			w = wire.NewWriter(conn)
		}
		_ = conn.SetWriteDeadline(time.Now().Add(t.opts.SendTimeout))
		if err := w.WriteFrame(s.to, &env); err != nil {
			_ = conn.Close()
			conn, w = nil, nil
			t.stats.dropped(s.to)
			continue
		}
		t.stats.sent(s.to)
	}
}

// dialBurst tries DialAttempts dials with exponential backoff + jitter,
// returning nil if the peer stayed unreachable. Every attempt after the
// destination's first-ever dial counts as a redial.
func (t *TCPTransport) dialBurst(to core.NodeID, dialedOnce *bool) net.Conn {
	backoff := t.opts.DialBackoff
	for attempt := 0; attempt < t.opts.DialAttempts; attempt++ {
		addr, ok := t.addrOf(to)
		if !ok {
			return nil
		}
		if *dialedOnce {
			t.stats.redial(to)
		}
		*dialedOnce = true
		conn, err := net.DialTimeout("tcp", addr, t.opts.SendTimeout)
		if err == nil {
			return conn
		}
		// Jittered exponential backoff: sleep in [0.5, 1.5)·backoff, then
		// double. Jitter decorrelates the redial storms of many senders
		// re-finding one restarted peer.
		sleep := time.Duration((0.5 + rand.Float64()) * float64(backoff))
		select {
		case <-t.stop:
			return nil
		case <-time.After(sleep):
		}
		backoff *= 2
	}
	return nil
}

// Stats implements Transport.
func (t *TCPTransport) Stats() TransportStats { return t.stats.snapshot() }

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.stop)
	for _, ln := range t.listeners {
		_ = ln.Close()
	}
	for conn := range t.inbound {
		_ = conn.Close()
	}
	boxes := t.boxes
	t.mu.Unlock()

	t.sendWg.Wait()
	t.wg.Wait()
	for _, ch := range boxes {
		close(ch)
	}
	return nil
}
