package runtime

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"algossip/internal/core"
	"algossip/internal/gf"
)

// PartitionWindow schedules one network partition in advance: from Start
// to Stop (measured from the transport's construction), every envelope
// addressed to one of Nodes is silently dropped. Windows let a test or a
// chaos recipe script "partition at t=2s, heal at t=5s" without an
// orchestrator in the loop; for interactive control use SetPartition/Heal.
type PartitionWindow struct {
	// Start is the window's opening edge, relative to construction.
	Start time.Duration
	// Stop is the closing edge (exclusive); Stop <= Start never fires.
	Stop time.Duration
	// Nodes are the destinations cut off during the window.
	Nodes []core.NodeID
}

// ChaosConfig sets the initial degradation injected by a ChaosTransport.
// Every knob can also be changed mid-run through the Set* methods (the
// daemon's /chaos endpoint does exactly that).
type ChaosConfig struct {
	// Latency delays every delivered envelope by at least this much.
	Latency time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// CorruptRate structurally corrupts each envelope independently with
	// this probability in [0, 1]: a coefficient or payload symbol is
	// truncated or appended, so the frame stays decodable as a frame but
	// the packet fails the receiver's width screen — the transport-level
	// analogue of a polluting relay.
	CorruptRate float64
	// Seed roots the jitter and corruption randomness.
	Seed uint64
	// Partitions optionally schedules partitions in advance.
	Partitions []PartitionWindow
}

// delayed is one envelope in flight through the latency stage, stamped
// with its delivery deadline at arrival so queuing never compounds delay.
type delayed struct {
	env Envelope
	due time.Time
}

// ChaosTransport wraps another Transport with controllable degradation:
// per-envelope latency with jitter, scheduled or interactive partitions,
// and structural frame corruption. It is the failure-injection layer for
// validating that coded gossip converges when the network misbehaves —
// latency only dilates time, partitions heal, and corrupt packets die at
// the receiver's screens.
//
// Partition semantics: the transport sees only the destination of a Send,
// so a partition isolates its nodes on the inbound side — everything
// addressed to a partitioned node is dropped (counted, reported as
// success, like a real cut). A symmetric cut across processes is obtained
// by installing the same partition on every process's chaos layer, which
// is what gossipctl's partition orchestration does.
type ChaosTransport struct {
	inner Transport
	epoch time.Time

	mu      sync.Mutex
	rng     *rand.Rand
	latency time.Duration
	jitter  time.Duration
	corrupt float64
	windows []PartitionWindow
	parts   map[core.NodeID]bool
	nCut    uint64
	nMangle uint64

	stats *counters
}

var _ Transport = (*ChaosTransport)(nil)

// NewChaosTransport wraps inner with the given degradation profile.
func NewChaosTransport(inner Transport, cfg ChaosConfig) (*ChaosTransport, error) {
	if cfg.CorruptRate < 0 || cfg.CorruptRate > 1 {
		return nil, fmt.Errorf("runtime: corrupt rate %v outside [0, 1]", cfg.CorruptRate)
	}
	if cfg.Latency < 0 || cfg.Jitter < 0 {
		return nil, fmt.Errorf("runtime: negative chaos latency (%v) or jitter (%v)", cfg.Latency, cfg.Jitter)
	}
	return &ChaosTransport{
		inner:   inner,
		epoch:   time.Now(),
		rng:     core.NewRand(cfg.Seed),
		latency: cfg.Latency,
		jitter:  cfg.Jitter,
		corrupt: cfg.CorruptRate,
		windows: cfg.Partitions,
		parts:   make(map[core.NodeID]bool),
		stats:   newCounters(),
	}, nil
}

// Register implements Transport. The inner inbox is re-plumbed through a
// two-stage latency pipe: a stamper records each envelope's delivery
// deadline the moment it arrives, and a delayer sleeps until that deadline
// before forwarding. Stamping on arrival means n queued envelopes are
// delayed by one latency, not n — the wrapper models a slow link, not a
// serial one. Closing the inner transport closes its inbox, which drains
// both stages and closes the returned channel.
func (t *ChaosTransport) Register(id core.NodeID) (<-chan Envelope, error) {
	in, err := t.inner.Register(id)
	if err != nil {
		return nil, err
	}
	stamped := make(chan delayed, inboxSize)
	out := make(chan Envelope, inboxSize)
	go func() {
		for env := range in {
			stamped <- delayed{env: env, due: time.Now().Add(t.delay())}
		}
		close(stamped)
	}()
	go func() {
		for d := range stamped {
			if wait := time.Until(d.due); wait > 0 {
				time.Sleep(wait)
			}
			out <- d.env
		}
		close(out)
	}()
	return out, nil
}

// delay draws one delivery delay under the current latency profile.
func (t *ChaosTransport) delay() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.latency
	if t.jitter > 0 {
		d += time.Duration(t.rng.Int64N(int64(t.jitter)))
	}
	return d
}

// Send implements Transport. Envelopes addressed into an active partition
// are dropped silently (counted, reported as success — a cut link, not an
// error); surviving envelopes are structurally corrupted with the
// configured probability before being handed to the inner transport.
func (t *ChaosTransport) Send(ctx context.Context, to core.NodeID, env Envelope) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t.mu.Lock()
	cut := t.cutLocked(to)
	mangle := !cut && t.corrupt > 0 && t.rng.Float64() < t.corrupt
	var mr uint64
	if mangle {
		mr = t.rng.Uint64()
		t.nMangle++
	}
	if cut {
		t.nCut++
	}
	t.mu.Unlock()
	if cut {
		t.stats.dropped(to)
		return nil
	}
	if mangle {
		env = corruptEnvelope(env, mr)
	}
	t.stats.sent(to)
	return t.inner.Send(ctx, to, env)
}

// cutLocked reports whether destination to is currently partitioned,
// either interactively (SetPartition) or by a scheduled window. Callers
// hold t.mu.
func (t *ChaosTransport) cutLocked(to core.NodeID) bool {
	if t.parts[to] {
		return true
	}
	if len(t.windows) == 0 {
		return false
	}
	elapsed := time.Since(t.epoch)
	for _, w := range t.windows {
		if elapsed < w.Start || elapsed >= w.Stop {
			continue
		}
		for _, id := range w.Nodes {
			if id == to {
				return true
			}
		}
	}
	return false
}

// SetLatency replaces the latency profile for envelopes stamped from now
// on; envelopes already in the delay pipe keep their original deadline.
func (t *ChaosTransport) SetLatency(base, jitter time.Duration) error {
	if base < 0 || jitter < 0 {
		return fmt.Errorf("runtime: negative chaos latency (%v) or jitter (%v)", base, jitter)
	}
	t.mu.Lock()
	t.latency, t.jitter = base, jitter
	t.mu.Unlock()
	return nil
}

// SetCorruptRate replaces the per-envelope corruption probability.
func (t *ChaosTransport) SetCorruptRate(rate float64) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("runtime: corrupt rate %v outside [0, 1]", rate)
	}
	t.mu.Lock()
	t.corrupt = rate
	t.mu.Unlock()
	return nil
}

// SetPartition cuts the given destinations off from all senders through
// this transport until Heal (adds to any partition already in force).
func (t *ChaosTransport) SetPartition(nodes []core.NodeID) {
	t.mu.Lock()
	for _, id := range nodes {
		t.parts[id] = true
	}
	t.mu.Unlock()
}

// Heal lifts every partition: the interactive set and all scheduled
// windows (a healed partition does not reopen).
func (t *ChaosTransport) Heal() {
	t.mu.Lock()
	t.parts = make(map[core.NodeID]bool)
	t.windows = nil
	t.mu.Unlock()
}

// Latency returns the current latency profile.
func (t *ChaosTransport) Latency() (base, jitter time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.latency, t.jitter
}

// CorruptRate returns the current per-envelope corruption probability.
func (t *ChaosTransport) CorruptRate() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.corrupt
}

// Partitioned returns the interactively partitioned destinations, sorted.
func (t *ChaosTransport) Partitioned() []core.NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]core.NodeID, 0, len(t.parts))
	for id := range t.parts {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Cut returns the number of envelopes dropped by partitions so far.
func (t *ChaosTransport) Cut() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nCut
}

// Corrupted returns the number of envelopes structurally corrupted so far.
func (t *ChaosTransport) Corrupted() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nMangle
}

// Close implements Transport.
func (t *ChaosTransport) Close() error { return t.inner.Close() }

// Stats implements Transport: this layer's counters (Sent = passed
// through, Dropped = partition cuts) merged with the inner transport's
// redial counts, the same layering LossyTransport uses.
func (t *ChaosTransport) Stats() TransportStats {
	s := t.stats.snapshot()
	inner := t.inner.Stats()
	s.Total.Redials = inner.Total.Redials
	for id, ins := range inner.PerNode {
		ns := s.PerNode[id]
		ns.Redials = ins.Redials
		s.PerNode[id] = ns
	}
	return s
}

// corruptEnvelope returns a structurally corrupted copy of env: one
// coefficient or payload symbol truncated or appended, chosen by r. The
// slices are copied first — the caller's envelope may alias live protocol
// state. Length mutations (never value flips) guarantee the receiver's
// width screens reject the packet: a flipped symbol would still be a
// valid, possibly even innovative, combination, which is camouflage, not
// corruption.
func corruptEnvelope(env Envelope, r uint64) Envelope {
	env.Coeffs = append([]gf.Elem(nil), env.Coeffs...)
	env.Payload = append([]byte(nil), env.Payload...)
	switch {
	case r&1 == 0 && len(env.Coeffs) > 0:
		env.Coeffs = env.Coeffs[:len(env.Coeffs)-1]
	case r&2 == 0:
		env.Coeffs = append(env.Coeffs, 0)
	case len(env.Payload) > 0:
		env.Payload = env.Payload[:len(env.Payload)-1]
	default:
		env.Payload = append(env.Payload, 0)
	}
	return env
}
