package runtime

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
)

// Observer receives completion callbacks from a running cluster; it is
// the simulator's observer contract (internal/sim) applied to live
// deployments, with the node's tick count in the round slot — the staged
// tick loop below makes one tick comparable to one synchronous round.
type Observer = sim.Observer

// Config describes a concurrent gossip deployment — the one validated
// configuration shared by NewCluster and NewTAGCluster. Construct it
// through the functional options on those constructors; zero fields pick
// the documented defaults.
type Config struct {
	// Graph is the communication topology.
	Graph *graph.Graph
	// Field is the coefficient field (default GF(256)).
	Field gf.Field
	// K is the number of initial messages.
	K int
	// PayloadLen is the payload length in field symbols; 0 runs rank-only
	// (no payloads, no Decode — the stopping-time measurement mode).
	PayloadLen int
	// GenSize, when positive, codes the k messages in generations of this
	// size (classic whole-k coding otherwise). TAG clusters reject it.
	GenSize int
	// Interval is each node's gossip period (default 1ms). Every tick the
	// node ingests staged traffic and initiates one EXCHANGE with a
	// uniformly random neighbor.
	Interval time.Duration
	// Seed roots per-node randomness.
	Seed uint64
	// Local selects which graph nodes run in this process (default all).
	// A multi-process cluster gives each daemon a disjoint Local set and
	// routes the rest through transport peer declarations.
	Local []core.NodeID
	// Observer, when set, receives NodeDone(v, tick) as local nodes reach
	// full rank.
	Observer Observer
	// ServeAfterDone keeps node goroutines gossiping after Run's local
	// completion target is met, until the Run context is cancelled —
	// required in multi-process deployments where remote nodes still need
	// this process's packets.
	ServeAfterDone bool
	// StartGated holds every node's tick loop until Start is called
	// (inbound traffic is still served), so a controller can seed all
	// processes before any of them begins counting ticks.
	StartGated bool
}

// Option mutates a Config under construction.
type Option func(*Config)

// WithPayload enables payload mode with r symbols per message (Decode
// becomes available after completion).
func WithPayload(r int) Option { return func(c *Config) { c.PayloadLen = r } }

// WithGenerations codes the k messages in generations of size genSize.
func WithGenerations(genSize int) Option { return func(c *Config) { c.GenSize = genSize } }

// WithObserver registers a completion observer.
func WithObserver(obs Observer) Option { return func(c *Config) { c.Observer = obs } }

// WithField selects the coefficient field (default GF(256)).
func WithField(f gf.Field) Option { return func(c *Config) { c.Field = f } }

// WithInterval sets the per-node gossip period.
func WithInterval(d time.Duration) Option { return func(c *Config) { c.Interval = d } }

// WithSeed roots the deployment's randomness.
func WithSeed(seed uint64) Option { return func(c *Config) { c.Seed = seed } }

// WithLocalNodes restricts this process to the given graph nodes.
func WithLocalNodes(ids ...core.NodeID) Option {
	return func(c *Config) { c.Local = append([]core.NodeID(nil), ids...) }
}

// WithServeAfterDone keeps nodes serving peers after local completion.
func WithServeAfterDone() Option { return func(c *Config) { c.ServeAfterDone = true } }

// WithStartGate defers tick loops until Start is called.
func WithStartGate() Option { return func(c *Config) { c.StartGated = true } }

// build applies defaults and options and validates the result.
func (c Config) build(opts ...Option) (Config, error) {
	for _, opt := range opts {
		opt(&c)
	}
	if c.Graph == nil {
		return c, fmt.Errorf("runtime: nil graph")
	}
	if c.K <= 0 {
		return c, fmt.Errorf("runtime: k must be positive, got %d", c.K)
	}
	if c.Field == nil {
		c.Field = gf.MustNew(256)
	}
	if c.Interval <= 0 {
		c.Interval = time.Millisecond
	}
	if c.PayloadLen < 0 {
		return c, fmt.Errorf("runtime: negative payload length %d", c.PayloadLen)
	}
	if c.GenSize < 0 || c.GenSize > c.K {
		return c, fmt.Errorf("runtime: generation size %d outside [0, %d]", c.GenSize, c.K)
	}
	if c.Local == nil {
		c.Local = make([]core.NodeID, c.Graph.N())
		for v := range c.Local {
			c.Local[v] = core.NodeID(v)
		}
	} else {
		seen := make(map[core.NodeID]bool, len(c.Local))
		for _, id := range c.Local {
			if int(id) < 0 || int(id) >= c.Graph.N() {
				return c, fmt.Errorf("runtime: local node %d outside graph of %d", id, c.Graph.N())
			}
			if seen[id] {
				return c, fmt.Errorf("runtime: duplicate local node %d", id)
			}
			seen[id] = true
		}
		sort.Slice(c.Local, func(i, j int) bool { return c.Local[i] < c.Local[j] })
	}
	return c, nil
}

// rlncConfig derives the inner codec configuration.
func (c Config) rlncConfig() rlnc.Config {
	return rlnc.Config{Field: c.Field, K: c.K, PayloadLen: c.PayloadLen, RankOnly: c.PayloadLen == 0}
}

// codec is the cluster's view of an RLNC decoder: classic whole-k and
// generation-coded nodes behind one emit/ingest seam that speaks the
// one-coefficient-per-symbol wire format.
type codec interface {
	seed(msg rlnc.Message)
	rank() int
	canDecode() bool
	decode() ([]rlnc.Message, error)
	// emit fills env with a fresh random combination; false when the node
	// stores nothing yet.
	emit(rng *rand.Rand, env *Envelope) bool
	// ingest adapts a wire envelope to the native backend and receives
	// it, screening malformed shapes.
	ingest(env *Envelope)
}

type classicCodec struct{ n *rlnc.Node }

func (c classicCodec) seed(msg rlnc.Message)           { c.n.Seed(msg) }
func (c classicCodec) rank() int                       { return c.n.Rank() }
func (c classicCodec) canDecode() bool                 { return c.n.CanDecode() }
func (c classicCodec) decode() ([]rlnc.Message, error) { return c.n.Decode() }
func (c classicCodec) emit(rng *rand.Rand, env *Envelope) bool {
	pkt := c.n.Emit(rng)
	if pkt == nil {
		return false
	}
	cfg := c.n.Config()
	// The wire format is one coefficient per symbol regardless of the
	// codec's internal representation: bit and sliced packets expand here.
	env.Coeffs = pkt.ExpandCoeffs(cfg.K)
	env.Payload = pkt.ExpandPayload(cfg.PayloadLen)
	return true
}
func (c classicCodec) ingest(env *Envelope) {
	if len(env.Coeffs) == 0 {
		return
	}
	c.n.Receive(c.n.Adapt(&rlnc.Packet{Coeffs: env.Coeffs, Payload: env.Payload}))
}

type genCodec struct{ n *rlnc.GenNode }

func (c genCodec) seed(msg rlnc.Message)           { c.n.Seed(msg) }
func (c genCodec) rank() int                       { return c.n.Rank() }
func (c genCodec) canDecode() bool                 { return c.n.CanDecode() }
func (c genCodec) decode() ([]rlnc.Message, error) { return c.n.Decode() }
func (c genCodec) emit(rng *rand.Rand, env *Envelope) bool {
	gp := c.n.Emit(rng)
	if gp == nil {
		return false
	}
	cfg := c.n.Config()
	env.Gen = gp.Gen
	env.Coeffs = gp.Packet.ExpandCoeffs(cfg.GenK(gp.Gen))
	env.Payload = gp.Packet.ExpandPayload(cfg.Inner.PayloadLen)
	return true
}
func (c genCodec) ingest(env *Envelope) {
	if len(env.Coeffs) == 0 {
		return
	}
	c.n.Receive(c.n.Adapt(&rlnc.GenPacket{
		Gen:    env.Gen,
		Packet: &rlnc.Packet{Coeffs: env.Coeffs, Payload: env.Payload},
	}))
}

// newCodec builds the configured codec for one node.
func (c Config) newCodec() (codec, error) {
	if c.GenSize > 0 {
		gn, err := rlnc.NewGenNode(rlnc.GenConfig{Inner: c.rlncConfig(), K: c.K, GenSize: c.GenSize})
		if err != nil {
			return nil, err
		}
		return genCodec{gn}, nil
	}
	n, err := rlnc.NewNode(c.rlncConfig())
	if err != nil {
		return nil, err
	}
	return classicCodec{n}, nil
}

// NodeStatus is one local node's progress snapshot.
type NodeStatus struct {
	// ID is the node.
	ID core.NodeID
	// Rank and K are the decoder's current and target rank.
	Rank, K int
	// Done reports full rank; DoneTick is the tick at which it happened
	// (0 for nodes seeded to completion before ticking began).
	Done     bool
	DoneTick int
	// Ticks counts gossip periods elapsed at this node.
	Ticks int
}

// Cluster is a running set of gossip nodes over a Transport.
type Cluster struct {
	cfg       Config
	transport Transport
	nodes     map[core.NodeID]*clusterNode
	order     []core.NodeID
	doneCh    chan core.NodeID
	killCh    chan core.NodeID
	startCh   chan struct{}
	startOnce sync.Once
}

// clusterNode is the per-goroutine state.
type clusterNode struct {
	id        core.NodeID
	inbox     <-chan Envelope
	transport Transport
	interval  time.Duration
	seed      uint64
	observer  Observer
	k         int

	mu        sync.Mutex
	neighbors []core.NodeID // guarded by mu: ApplyTopology swaps it mid-run
	codec     codec
	rng       *rand.Rand // guarded by mu; drives packet emission
	pending   []Envelope // staged envelopes, ingested at the next tick
	ticks     int
	doneTick  int
	finished  bool

	doneCh chan<- core.NodeID
}

// NewCluster builds a cluster of k-message algebraic gossip over the
// given transport and topology. Seed initial messages with Seed before
// calling Run (or before Start when the start gate is on).
func NewCluster(transport Transport, g *graph.Graph, k int, opts ...Option) (*Cluster, error) {
	cfg, err := Config{Graph: g, K: k}.build(opts...)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:       cfg,
		transport: transport,
		nodes:     make(map[core.NodeID]*clusterNode, len(cfg.Local)),
		order:     cfg.Local,
		doneCh:    make(chan core.NodeID, len(cfg.Local)),
		killCh:    make(chan core.NodeID, len(cfg.Local)),
		startCh:   make(chan struct{}),
	}
	for _, v := range cfg.Local {
		cdc, err := cfg.newCodec()
		if err != nil {
			return nil, fmt.Errorf("runtime: node %d codec: %w", v, err)
		}
		inbox, err := transport.Register(v)
		if err != nil {
			return nil, fmt.Errorf("runtime: node %d register: %w", v, err)
		}
		seed := core.SplitSeed(cfg.Seed, uint64(v))
		c.nodes[v] = &clusterNode{
			id:        v,
			neighbors: cfg.Graph.Neighbors(v),
			inbox:     inbox,
			transport: transport,
			interval:  cfg.Interval,
			seed:      seed,
			observer:  cfg.Observer,
			k:         cfg.K,
			codec:     cdc,
			rng:       core.NewRand(core.SplitSeed(seed, 1)),
			doneCh:    c.doneCh,
		}
	}
	return c, nil
}

// Config returns the validated deployment configuration.
func (c *Cluster) Config() Config { return c.cfg }

// node fetches a local node or fails.
func (c *Cluster) node(v core.NodeID) (*clusterNode, error) {
	n, ok := c.nodes[v]
	if !ok {
		return nil, fmt.Errorf("%w: %d not local to this cluster", ErrUnknownNode, v)
	}
	return n, nil
}

// Seed places an initial message at local node v.
func (c *Cluster) Seed(v core.NodeID, msg rlnc.Message) error {
	node, err := c.node(v)
	if err != nil {
		return err
	}
	node.mu.Lock()
	node.codec.seed(msg)
	just := node.checkDoneLocked()
	node.mu.Unlock()
	node.notifyDone(just)
	return nil
}

// Rank returns local node v's current rank (-1 for non-local nodes).
func (c *Cluster) Rank(v core.NodeID) int {
	node, err := c.node(v)
	if err != nil {
		return -1
	}
	node.mu.Lock()
	defer node.mu.Unlock()
	return node.codec.rank()
}

// Decode decodes local node v's messages (payload mode, after completion).
func (c *Cluster) Decode(v core.NodeID) ([]rlnc.Message, error) {
	node, err := c.node(v)
	if err != nil {
		return nil, err
	}
	node.mu.Lock()
	defer node.mu.Unlock()
	return node.codec.decode()
}

// Status snapshots every local node's progress, in ascending node order.
func (c *Cluster) Status() []NodeStatus {
	out := make([]NodeStatus, 0, len(c.order))
	for _, v := range c.order {
		n := c.nodes[v]
		n.mu.Lock()
		out = append(out, NodeStatus{
			ID:       n.id,
			Rank:     n.codec.rank(),
			K:        n.k,
			Done:     n.finished,
			DoneTick: n.doneTick,
			Ticks:    n.ticks,
		})
		n.mu.Unlock()
	}
	return out
}

// ApplyTopology swaps the cluster's communication topology for g, which
// must have the same node count. It is safe to call while Run is active,
// which is how a graph.Dynamic schedule drives a live deployment: a
// controller goroutine materializes dyn.At(round) on its own cadence and
// applies it here. Nodes pick up the new neighbor lists on their next
// tick; packets already in flight still deliver (the transport is not
// re-wired), mirroring the simulator's drop-undeliverable-sends rule
// only approximately — real networks drain in-flight traffic too.
func (c *Cluster) ApplyTopology(g *graph.Graph) error {
	if g.N() != c.cfg.Graph.N() {
		return fmt.Errorf("runtime: topology has %d nodes, cluster graph has %d", g.N(), c.cfg.Graph.N())
	}
	for v, node := range c.nodes {
		node.mu.Lock()
		node.neighbors = g.Neighbors(v)
		node.mu.Unlock()
	}
	return nil
}

// Kill crashes local node v: its goroutine stops gossiping and the
// cluster no longer waits for it to complete (churn / failure injection).
// Any information held only by v is lost unless it already spread. Kill
// is asynchronous and only takes effect while Run is active.
func (c *Cluster) Kill(v core.NodeID) {
	select {
	case c.killCh <- v:
	default: // a node can only die once; drop redundant kills
	}
}

// Start releases the start gate (idempotent). Without WithStartGate, Run
// calls it automatically.
func (c *Cluster) Start() {
	c.startOnce.Do(func() { close(c.startCh) })
}

// Run starts all local node goroutines and blocks until every live local
// node can decode or ctx is cancelled. Nodes keep gossiping until every
// local node has finished (early finishers still serve their neighbors);
// with ServeAfterDone they keep serving until ctx is cancelled, and a
// post-completion cancellation is a clean drain, not an error. It returns
// the number of local nodes that completed.
func (c *Cluster) Run(ctx context.Context) (int, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	nodeCancels := make(map[core.NodeID]context.CancelFunc, len(c.nodes))
	for _, v := range c.order {
		nodeCtx, nodeCancel := context.WithCancel(runCtx)
		nodeCancels[v] = nodeCancel
		wg.Add(1)
		go func(n *clusterNode) {
			defer wg.Done()
			n.run(nodeCtx, c.startCh)
		}(c.nodes[v])
	}
	if !c.cfg.StartGated {
		c.Start()
	}

	finished := 0
	target := len(c.nodes)
	completed := make(map[core.NodeID]bool, target)
	dead := make(map[core.NodeID]bool)
	for finished < target {
		select {
		case v := <-c.doneCh:
			if dead[v] {
				continue // its completion was already written off
			}
			completed[v] = true
			finished++
		case v := <-c.killCh:
			if dead[v] {
				continue
			}
			cancelNode, ok := nodeCancels[v]
			if !ok {
				continue // not local
			}
			dead[v] = true
			cancelNode()
			if !completed[v] {
				target--
			}
		case <-ctx.Done():
			cancel()
			wg.Wait()
			return finished, fmt.Errorf("runtime: cluster interrupted with %d/%d nodes complete: %w",
				finished, target, ctx.Err())
		}
	}
	if c.cfg.ServeAfterDone {
		<-ctx.Done()
	}
	cancel()
	wg.Wait()
	return finished, nil
}

// run is the node's event loop: stage incoming packets, and on every tick
// ingest the staged batch then initiate an EXCHANGE with a random
// neighbor. Staged ingestion makes one tick behave like one synchronous
// simulator round — information received during a tick interval becomes
// usable at the next tick, not instantly — which is what lets live
// stopping ticks be gated against simulator round predictions (E17).
func (n *clusterNode) run(ctx context.Context, start <-chan struct{}) {
	rng := core.NewRand(n.seed)
	// Gated phase: serve inbound traffic (staging + replies) but do not
	// tick, so a controller can seed every process before time starts.
	for gated := true; gated; {
		select {
		case <-ctx.Done():
			return
		case env, ok := <-n.inbox:
			if !ok {
				return
			}
			n.handle(ctx, env)
		case <-start:
			gated = false
		}
	}
	ticker := time.NewTicker(n.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case env, ok := <-n.inbox:
			if !ok {
				return
			}
			n.handle(ctx, env)
		case <-ticker.C:
			n.tick(ctx, rng)
		}
	}
}

// handle stages an incoming packet for the next tick and serves the
// EXCHANGE reply leg immediately — the reply is drawn from pre-ingest
// state, exactly like the simulator's simultaneous exchange.
func (n *clusterNode) handle(ctx context.Context, env Envelope) {
	if env.Kind == EnvelopePacket && len(env.Coeffs) > 0 {
		n.mu.Lock()
		n.pending = append(n.pending, env)
		n.mu.Unlock()
	}
	if env.WantReply {
		n.sendPacket(ctx, env.From, false)
	}
}

// tick ingests the staged batch and initiates one EXCHANGE.
func (n *clusterNode) tick(ctx context.Context, rng *rand.Rand) {
	n.mu.Lock()
	n.ticks++
	for i := range n.pending {
		n.codec.ingest(&n.pending[i])
	}
	n.pending = n.pending[:0]
	just := n.checkDoneLocked()
	nbrs := n.neighbors
	n.mu.Unlock()
	n.notifyDone(just)
	if len(nbrs) == 0 {
		return
	}
	peer := nbrs[rng.IntN(len(nbrs))]
	n.sendPacket(ctx, peer, true)
}

// sendPacket emits one random combination toward peer. Transport errors
// (backpressure included) are ignored: gossip is redundant and the next
// tick retries elsewhere.
func (n *clusterNode) sendPacket(ctx context.Context, peer core.NodeID, wantReply bool) {
	env := Envelope{Kind: EnvelopePacket, From: n.id, WantReply: wantReply}
	n.mu.Lock()
	ok := n.codec.emit(n.rng, &env)
	n.mu.Unlock()
	if !ok && !wantReply {
		return // nothing to say and nobody waiting
	}
	if !ok {
		env.Coeffs, env.Payload = nil, nil
	}
	_ = n.transport.Send(ctx, peer, env)
}

// checkDoneLocked marks completion exactly once, reporting whether it
// just happened. Callers hold n.mu and invoke notifyDone after unlocking.
func (n *clusterNode) checkDoneLocked() bool {
	if !n.finished && n.codec.canDecode() {
		n.finished = true
		n.doneTick = n.ticks
		n.doneCh <- n.id
		return true
	}
	return false
}

// notifyDone delivers the observer callback outside the node lock.
func (n *clusterNode) notifyDone(just bool) {
	if just && n.observer != nil {
		n.observer.NodeDone(n.id, n.doneTick)
	}
}
