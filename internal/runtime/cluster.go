package runtime

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"algossip/internal/core"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
)

// ClusterConfig describes a concurrent gossip deployment.
type ClusterConfig struct {
	// Graph is the communication topology.
	Graph *graph.Graph
	// RLNC configures the codec (usually payload mode with GF(256)).
	RLNC rlnc.Config
	// Interval is each node's mean gossip period (default 1ms). Every tick
	// the node initiates one EXCHANGE with a uniformly random neighbor.
	Interval time.Duration
	// Seed roots per-node randomness.
	Seed uint64
}

// Cluster is a running set of gossip nodes over a Transport.
type Cluster struct {
	cfg       ClusterConfig
	transport Transport
	nodes     []*clusterNode
	doneCh    chan core.NodeID
	killCh    chan core.NodeID
}

// clusterNode is the per-goroutine state.
type clusterNode struct {
	id        core.NodeID
	neighbors []core.NodeID // guarded by mu: ApplyTopology swaps it mid-run
	inbox     <-chan Envelope
	transport Transport
	interval  time.Duration
	seed      uint64

	mu       sync.Mutex
	codec    *rlnc.Node
	rng      *rand.Rand // guarded by mu; drives packet emission
	finished bool

	doneCh chan<- core.NodeID
}

// NewCluster builds a cluster over the given transport. Seed initial
// messages with Seed before calling Run.
func NewCluster(cfg ClusterConfig, transport Transport) (*Cluster, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("runtime: nil graph")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Millisecond
	}
	n := cfg.Graph.N()
	c := &Cluster{
		cfg:       cfg,
		transport: transport,
		nodes:     make([]*clusterNode, n),
		doneCh:    make(chan core.NodeID, n),
		killCh:    make(chan core.NodeID, n),
	}
	for v := 0; v < n; v++ {
		codec, err := rlnc.NewNode(cfg.RLNC)
		if err != nil {
			return nil, fmt.Errorf("runtime: node %d codec: %w", v, err)
		}
		inbox, err := transport.Register(core.NodeID(v))
		if err != nil {
			return nil, fmt.Errorf("runtime: node %d register: %w", v, err)
		}
		seed := core.SplitSeed(cfg.Seed, uint64(v))
		c.nodes[v] = &clusterNode{
			id:        core.NodeID(v),
			neighbors: cfg.Graph.Neighbors(core.NodeID(v)),
			inbox:     inbox,
			transport: transport,
			interval:  cfg.Interval,
			seed:      seed,
			codec:     codec,
			rng:       core.NewRand(core.SplitSeed(seed, 1)),
			doneCh:    c.doneCh,
		}
	}
	return c, nil
}

// Seed places an initial message at node v.
func (c *Cluster) Seed(v core.NodeID, msg rlnc.Message) {
	node := c.nodes[v]
	node.mu.Lock()
	defer node.mu.Unlock()
	node.codec.Seed(msg)
	node.checkDoneLocked()
}

// Rank returns node v's current rank.
func (c *Cluster) Rank(v core.NodeID) int {
	node := c.nodes[v]
	node.mu.Lock()
	defer node.mu.Unlock()
	return node.codec.Rank()
}

// Decode decodes node v's messages (payload mode, after completion).
func (c *Cluster) Decode(v core.NodeID) ([]rlnc.Message, error) {
	node := c.nodes[v]
	node.mu.Lock()
	defer node.mu.Unlock()
	return node.codec.Decode()
}

// ApplyTopology swaps the cluster's communication topology for g, which
// must have the same node count. It is safe to call while Run is active,
// which is how a graph.Dynamic schedule drives a live deployment: a
// controller goroutine materializes dyn.At(round) on its own cadence and
// applies it here. Nodes pick up the new neighbor lists on their next
// tick; packets already in flight still deliver (the transport is not
// re-wired), mirroring the simulator's drop-undeliverable-sends rule
// only approximately — real networks drain in-flight traffic too.
func (c *Cluster) ApplyTopology(g *graph.Graph) error {
	if g.N() != len(c.nodes) {
		return fmt.Errorf("runtime: topology has %d nodes, cluster has %d", g.N(), len(c.nodes))
	}
	for v, node := range c.nodes {
		node.mu.Lock()
		node.neighbors = g.Neighbors(core.NodeID(v))
		node.mu.Unlock()
	}
	return nil
}

// Kill crashes node v: its goroutine stops gossiping and the cluster no
// longer waits for it to complete (churn / failure injection). Any
// information held only by v is lost unless it already spread. Kill is
// asynchronous and only takes effect while Run is active.
func (c *Cluster) Kill(v core.NodeID) {
	select {
	case c.killCh <- v:
	default: // a node can only die once; drop redundant kills
	}
}

// Run starts all node goroutines and blocks until every live node can
// decode or ctx is cancelled. Nodes keep gossiping until every node has
// finished (early finishers still serve their neighbors). It returns the
// number of nodes that completed.
func (c *Cluster) Run(ctx context.Context) (int, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	nodeCancels := make([]context.CancelFunc, len(c.nodes))
	for i, node := range c.nodes {
		nodeCtx, nodeCancel := context.WithCancel(runCtx)
		nodeCancels[i] = nodeCancel
		wg.Add(1)
		go func(n *clusterNode) {
			defer wg.Done()
			n.run(nodeCtx)
		}(node)
	}

	finished := 0
	target := len(c.nodes)
	completed := make(map[core.NodeID]bool, target)
	dead := make(map[core.NodeID]bool)
	for finished < target {
		select {
		case v := <-c.doneCh:
			if dead[v] {
				continue // its completion was already written off
			}
			completed[v] = true
			finished++
		case v := <-c.killCh:
			if dead[v] {
				continue
			}
			dead[v] = true
			nodeCancels[v]()
			if !completed[v] {
				target--
			}
		case <-ctx.Done():
			cancel()
			wg.Wait()
			return finished, fmt.Errorf("runtime: cluster interrupted with %d/%d nodes complete: %w",
				finished, target, ctx.Err())
		}
	}
	cancel()
	wg.Wait()
	return finished, nil
}

// run is the node's event loop: react to incoming packets, and initiate an
// EXCHANGE with a random neighbor on every tick.
func (n *clusterNode) run(ctx context.Context) {
	rng := core.NewRand(n.seed)
	ticker := time.NewTicker(n.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case env, ok := <-n.inbox:
			if !ok {
				return
			}
			n.handle(env)
		case <-ticker.C:
			n.mu.Lock()
			nbrs := n.neighbors
			n.mu.Unlock()
			if len(nbrs) == 0 {
				continue
			}
			peer := nbrs[rng.IntN(len(nbrs))]
			n.sendPacket(peer, true)
		}
	}
}

// handle ingests a packet and serves the EXCHANGE reply leg. The wire
// format carries one coefficient per symbol; Adapt re-packs it for
// bit-mode (GF(2)) and sliced (GF(2^m)) codecs and rejects malformed
// vectors as nil.
func (n *clusterNode) handle(env Envelope) {
	pkt := &rlnc.Packet{Coeffs: env.Coeffs, Payload: env.Payload}
	n.mu.Lock()
	if len(env.Coeffs) > 0 {
		n.codec.Receive(n.codec.Adapt(pkt))
		n.checkDoneLocked()
	}
	n.mu.Unlock()
	if env.WantReply {
		n.sendPacket(env.From, false)
	}
}

// sendPacket emits one random combination toward peer. Transport errors are
// ignored: gossip is redundant and the next tick retries elsewhere.
func (n *clusterNode) sendPacket(peer core.NodeID, wantReply bool) {
	n.mu.Lock()
	pkt := n.codec.Emit(n.rng)
	cfg := n.codec.Config()
	n.mu.Unlock()
	env := Envelope{From: n.id, WantReply: wantReply}
	if pkt != nil {
		// The wire format is one coefficient per symbol regardless of the
		// codec's internal representation: bit and sliced packets expand here.
		env.Coeffs = pkt.ExpandCoeffs(cfg.K)
		env.Payload = pkt.ExpandPayload(cfg.PayloadLen)
	} else if !wantReply {
		return // nothing to say and nobody waiting
	}
	_ = n.transport.Send(peer, env)
}

// checkDoneLocked signals completion exactly once. Callers hold n.mu.
func (n *clusterNode) checkDoneLocked() {
	if !n.finished && n.codec.CanDecode() {
		n.finished = true
		n.doneCh <- n.id
	}
}
