package runtime

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
)

func seedMessages(t *testing.T, c *Cluster, k, r, n int) []rlnc.Message {
	t.Helper()
	rng := core.NewRand(99)
	field := gf.MustNew(256)
	msgs := make([]rlnc.Message, k)
	for i := range msgs {
		msgs[i] = rlnc.Message{Index: i, Payload: gf.RandBytes(field, r, rng)}
		if err := c.Seed(core.NodeID(i%n), msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return msgs
}

func verifyDecode(t *testing.T, c *Cluster, msgs []rlnc.Message, n int) {
	t.Helper()
	for v := 0; v < n; v++ {
		got, err := c.Decode(core.NodeID(v))
		if err != nil {
			t.Fatalf("node %d: %v", v, err)
		}
		for i := range msgs {
			for j := range msgs[i].Payload {
				if got[i].Payload[j] != msgs[i].Payload[j] {
					t.Fatalf("node %d message %d symbol %d mismatch", v, i, j)
				}
			}
		}
	}
}

func TestClusterChanTransport(t *testing.T) {
	g := graph.Grid(3, 3)
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(tr, g, 5, WithPayload(8), WithInterval(200*time.Microsecond), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	msgs := seedMessages(t, c, 5, 8, g.N())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if done != g.N() {
		t.Fatalf("completed %d/%d nodes", done, g.N())
	}
	verifyDecode(t, c, msgs, g.N())
	// Status reflects completion for every node.
	for _, st := range c.Status() {
		if !st.Done || st.Rank != st.K {
			t.Fatalf("node %d status %+v after completed run", st.ID, st)
		}
	}
}

func TestClusterTCPTransport(t *testing.T) {
	g := graph.Ring(6)
	tr := NewTCPTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(tr, g, 4, WithPayload(6), WithInterval(500*time.Microsecond), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	msgs := seedMessages(t, c, 4, 6, g.N())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if done != g.N() {
		t.Fatalf("completed %d/%d nodes", done, g.N())
	}
	verifyDecode(t, c, msgs, g.N())
	if _, ok := tr.Addr(0); !ok {
		t.Error("Addr lookup failed for registered node")
	}
	if s := tr.Stats(); s.Total.Sent == 0 {
		t.Error("TCP transport reported zero sends after a completed run")
	}
}

func TestClusterUDPTransport(t *testing.T) {
	g := graph.Ring(6)
	tr, err := NewUDPTransport()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(tr, g, 4, WithPayload(6), WithInterval(500*time.Microsecond), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	msgs := seedMessages(t, c, 4, 6, g.N())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if done != g.N() {
		t.Fatalf("completed %d/%d nodes", done, g.N())
	}
	verifyDecode(t, c, msgs, g.N())
}

// TestClusterGenerationMode runs a generation-coded cluster end to end:
// envelopes carry per-generation coefficient vectors plus the Gen tag,
// exercising GenNode.Adapt on the receive path and full decode.
func TestClusterGenerationMode(t *testing.T) {
	g := graph.Grid(3, 3)
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(tr, g, 6, WithPayload(4), WithGenerations(2),
		WithInterval(200*time.Microsecond), WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	msgs := seedMessages(t, c, 6, 4, g.N())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if done != g.N() {
		t.Fatalf("completed %d/%d nodes", done, g.N())
	}
	verifyDecode(t, c, msgs, g.N())
}

func TestClusterContextCancel(t *testing.T) {
	g := graph.Line(4)
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(tr, g, 3, WithPayload(4), WithInterval(time.Hour), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	// Seed only one message so the cluster cannot finish; then cancel.
	if err := c.Seed(0, rlnc.Message{Index: 0, Payload: make([]byte, 4)}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done, err := c.Run(ctx)
	if err == nil {
		t.Fatal("expected interruption error")
	}
	if done == g.N() {
		t.Fatal("cluster cannot have finished")
	}
}

func TestClusterConfigValidation(t *testing.T) {
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	if _, err := NewCluster(tr, nil, 3); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewCluster(tr, graph.Ring(4), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewCluster(tr, graph.Ring(4), 3, WithGenerations(9)); err == nil {
		t.Error("generation size above k accepted")
	}
	if _, err := NewCluster(tr, graph.Ring(4), 3, WithLocalNodes(0, 9)); err == nil {
		t.Error("out-of-range local node accepted")
	}
	if _, err := NewCluster(tr, graph.Ring(4), 3, WithLocalNodes(0, 0)); err == nil {
		t.Error("duplicate local node accepted")
	}
}

// TestClusterLocalSubsetAccessors: non-local nodes are rejected by the
// per-node accessors instead of panicking.
func TestClusterLocalSubsetAccessors(t *testing.T) {
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(tr, graph.Ring(4), 2, WithPayload(2), WithLocalNodes(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Seed(3, rlnc.Message{Index: 0, Payload: make([]byte, 2)}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("seed at non-local node: %v", err)
	}
	if r := c.Rank(3); r != -1 {
		t.Errorf("rank of non-local node = %d, want -1", r)
	}
	if _, err := c.Decode(3); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("decode at non-local node: %v", err)
	}
	if got := len(c.Status()); got != 2 {
		t.Errorf("status has %d entries, want 2", got)
	}
}

func TestChanTransportErrors(t *testing.T) {
	ctx := context.Background()
	tr := NewChanTransport()
	if _, err := tr.Register(1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Register(1); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := tr.Send(ctx, 2, Envelope{}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("send to unknown node: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(ctx, 1, Envelope{}); !errors.Is(err, ErrTransportClosed) {
		t.Errorf("send after close: %v", err)
	}
	if _, err := tr.Register(3); !errors.Is(err, ErrTransportClosed) {
		t.Errorf("register after close: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Error("double close must be nil")
	}
}

// TestChanTransportBackpressureDrops forces backpressure and checks the
// typed error plus the drop counters: the inbox holds inboxSize
// envelopes, every further Send must fail fast with ErrBackpressure and
// show up in Stats.
func TestChanTransportBackpressureDrops(t *testing.T) {
	ctx := context.Background()
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	if _, err := tr.Register(0); err != nil {
		t.Fatal(err)
	}
	var backpressured int
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		for i := 0; i < inboxSize*3; i++ {
			if err := tr.Send(ctx, 0, Envelope{From: 1}); errors.Is(err, ErrBackpressure) {
				backpressured++
			} else if err != nil {
				t.Errorf("unexpected send error: %v", err)
				return
			}
		}
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("Send blocked on full inbox")
	}
	if backpressured != inboxSize*2 {
		t.Errorf("%d sends backpressured, want %d", backpressured, inboxSize*2)
	}
	s := tr.Stats()
	if s.Total.Sent != inboxSize || s.Total.Dropped != inboxSize*2 {
		t.Errorf("stats %+v, want sent=%d dropped=%d", s.Total, inboxSize, inboxSize*2)
	}
	if per := s.PerNode[0]; per.Dropped != inboxSize*2 {
		t.Errorf("per-node drops %d, want %d", per.Dropped, inboxSize*2)
	}
}

func TestTCPTransportSendUnknown(t *testing.T) {
	tr := NewTCPTransport()
	defer func() { _ = tr.Close() }()
	if err := tr.Send(context.Background(), 9, Envelope{}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("send to unknown node: %v", err)
	}
}

// TestTCPTransportPeersRoute checks the multi-process seam: two separate
// transports, each with one registered node, exchanging envelopes purely
// through declared peer addresses.
func TestTCPTransportPeersRoute(t *testing.T) {
	ctx := context.Background()
	a := NewTCPTransport()
	defer func() { _ = a.Close() }()
	b := NewTCPTransport()
	defer func() { _ = b.Close() }()
	if _, err := a.Register(0); err != nil {
		t.Fatal(err)
	}
	inboxB, err := b.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	addrB, _ := b.Addr(1)
	a.AddPeer(1, addrB)
	env := Envelope{From: 0, WantReply: true, Coeffs: []gf.Elem{7, 8, 9}}
	if err := a.Send(ctx, 1, env); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-inboxB:
		if got.From != 0 || !got.WantReply || len(got.Coeffs) != 3 || got.Coeffs[2] != 9 {
			t.Fatalf("received %+v", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cross-transport envelope never arrived")
	}
}

// TestTCPTransportUnreachablePeerDoesNotStall pins the singleflight dial
// fix: Sends toward a dead peer must return immediately (queued or
// backpressured) while Sends to healthy peers proceed — the dial happens
// in the destination's sender goroutine, not under the transport lock.
func TestTCPTransportUnreachablePeerDoesNotStall(t *testing.T) {
	ctx := context.Background()
	tr := NewTCPTransportOpts(TCPOptions{QueueSize: 4, DialAttempts: 2, DialBackoff: time.Millisecond})
	defer func() { _ = tr.Close() }()
	inbox, err := tr.Register(0)
	if err != nil {
		t.Fatal(err)
	}
	tr.AddPeer(1, "127.0.0.1:1") // reserved port: connection refused

	// Drain node 0's inbox as envelopes arrive (it is only QueueSize deep).
	var arrived atomic.Int64
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range inbox {
			arrived.Add(1)
		}
	}()

	start := time.Now()
	healthy := 0
	for i := 0; i < 32; i++ {
		_ = tr.Send(ctx, 1, Envelope{From: 0}) // dead peer: queue then drop
		// Healthy sends may backpressure while the sender is still
		// dialing (the queue is tiny), but must never block or fail
		// otherwise.
		err := tr.Send(ctx, 0, Envelope{From: 1})
		switch {
		case err == nil:
			healthy++
		case errors.Is(err, ErrBackpressure):
		default:
			t.Fatalf("send to healthy local node failed: %v", err)
		}
		time.Sleep(100 * time.Microsecond)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("sends stalled %v behind a dead peer", elapsed)
	}
	if healthy == 0 {
		t.Fatal("every healthy send backpressured")
	}
	deadline := time.Now().Add(10 * time.Second)
	for arrived.Load() < int64(healthy) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := arrived.Load(); got < int64(healthy) {
		t.Fatalf("only %d/%d local envelopes arrived", got, healthy)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	<-drained
}

func TestClusterSingleSourceAllMessagesAtOneNode(t *testing.T) {
	g := graph.Star(5)
	const k, r = 6, 4
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(tr, g, k, WithPayload(r), WithInterval(200*time.Microsecond), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	rng := core.NewRand(5)
	field := gf.MustNew(256)
	msgs := make([]rlnc.Message, k)
	for i := range msgs {
		msgs[i] = rlnc.Message{Index: i, Payload: gf.RandBytes(field, r, rng)}
		if err := c.Seed(0, msgs[i]); err != nil { // all at the hub
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.Run(ctx); err != nil {
		t.Fatal(err)
	}
	verifyDecode(t, c, msgs, g.N())
}

// TestClusterChurn kills a node mid-run (one that holds no unique
// information) and verifies the surviving nodes still all decode — gossip's
// redundancy makes single-node crashes harmless.
func TestClusterChurn(t *testing.T) {
	g := graph.Grid(3, 3) // killing corner node 8 keeps the rest connected
	const k, r = 4, 4
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(tr, g, k, WithPayload(r), WithInterval(200*time.Microsecond), WithSeed(12))
	if err != nil {
		t.Fatal(err)
	}
	rng := core.NewRand(9)
	field := gf.MustNew(256)
	msgs := make([]rlnc.Message, k)
	for i := range msgs {
		msgs[i] = rlnc.Message{Index: i, Payload: gf.RandBytes(field, r, rng)}
		if err := c.Seed(core.NodeID(i), msgs[i]); err != nil { // seeds at nodes 0..3, far from node 8
			t.Fatal(err)
		}
	}

	go func() {
		time.Sleep(2 * time.Millisecond)
		c.Kill(8)
		c.Kill(8) // redundant kill must be harmless
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Either node 8 finished before the kill landed (fast run) or the
	// cluster completed with 8 survivors; both are valid outcomes.
	if done < g.N()-1 {
		t.Fatalf("completed %d nodes, want >= %d", done, g.N()-1)
	}
	// Every survivor decodes correctly.
	for v := 0; v < g.N()-1; v++ {
		got, err := c.Decode(core.NodeID(v))
		if err != nil {
			t.Fatalf("survivor %d: %v", v, err)
		}
		for i := range msgs {
			for j := range msgs[i].Payload {
				if got[i].Payload[j] != msgs[i].Payload[j] {
					t.Fatalf("survivor %d message %d mismatch", v, i)
				}
			}
		}
	}
}

// TestClusterGF2BitMode runs a payload-carrying GF(2) cluster end to end:
// the codecs use the packed bitset backend internally while the wire
// format still carries one coefficient per symbol, so the Adapt /
// ExpandCoeffs boundary is exercised in both directions (emit → wire →
// receive), including full decode at every node.
func TestClusterGF2BitMode(t *testing.T) {
	g := graph.Grid(3, 3)
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(tr, g, 5, WithPayload(8), WithField(gf.MustNew(2)),
		WithInterval(200*time.Microsecond), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	msgs := seedMessagesField(t, c, gf.MustNew(2), 5, 8, g.N())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if done != g.N() {
		t.Fatalf("completed %d/%d nodes", done, g.N())
	}
	verifyDecode(t, c, msgs, g.N())
}

func seedMessagesField(t *testing.T, c *Cluster, field gf.Field, k, r, n int) []rlnc.Message {
	t.Helper()
	rng := core.NewRand(99)
	msgs := make([]rlnc.Message, k)
	for i := range msgs {
		msgs[i] = rlnc.Message{Index: i, Payload: gf.RandBytes(field, r, rng)}
		if err := c.Seed(core.NodeID(i%n), msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return msgs
}

// TestClusterGF16SlicedMode runs a payload-carrying GF(16) cluster end to
// end: the codecs use the bit-sliced backend internally while the wire
// format still carries one coefficient per symbol, so the Adapt /
// ExpandCoeffs / ExpandPayload boundary is exercised in both directions
// for a sub-byte symbol width, including full decode at every node.
func TestClusterGF16SlicedMode(t *testing.T) {
	g := graph.Grid(3, 3)
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(tr, g, 5, WithPayload(8), WithField(gf.MustNew(16)),
		WithInterval(200*time.Microsecond), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	msgs := seedMessagesField(t, c, gf.MustNew(16), 5, 8, g.N())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if done != g.N() {
		t.Fatalf("completed %d/%d nodes", done, g.N())
	}
	verifyDecode(t, c, msgs, g.N())
}
