package runtime

import (
	"context"
	"testing"
	"time"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
)

func testRLNC(k, r int) rlnc.Config {
	return rlnc.Config{Field: gf.MustNew(256), K: k, PayloadLen: r}
}

func seedMessages(t *testing.T, c *Cluster, cfg rlnc.Config, n int) []rlnc.Message {
	t.Helper()
	rng := core.NewRand(99)
	msgs := make([]rlnc.Message, cfg.K)
	for i := range msgs {
		msgs[i] = rlnc.Message{Index: i, Payload: gf.RandBytes(cfg.Field, cfg.PayloadLen, rng)}
		c.Seed(core.NodeID(i%n), msgs[i])
	}
	return msgs
}

func verifyDecode(t *testing.T, c *Cluster, msgs []rlnc.Message, n int) {
	t.Helper()
	for v := 0; v < n; v++ {
		got, err := c.Decode(core.NodeID(v))
		if err != nil {
			t.Fatalf("node %d: %v", v, err)
		}
		for i := range msgs {
			for j := range msgs[i].Payload {
				if got[i].Payload[j] != msgs[i].Payload[j] {
					t.Fatalf("node %d message %d symbol %d mismatch", v, i, j)
				}
			}
		}
	}
}

func TestClusterChanTransport(t *testing.T) {
	g := graph.Grid(3, 3)
	cfg := testRLNC(5, 8)
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(ClusterConfig{Graph: g, RLNC: cfg, Interval: 200 * time.Microsecond, Seed: 1}, tr)
	if err != nil {
		t.Fatal(err)
	}
	msgs := seedMessages(t, c, cfg, g.N())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if done != g.N() {
		t.Fatalf("completed %d/%d nodes", done, g.N())
	}
	verifyDecode(t, c, msgs, g.N())
}

func TestClusterTCPTransport(t *testing.T) {
	g := graph.Ring(6)
	cfg := testRLNC(4, 6)
	tr := NewTCPTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(ClusterConfig{Graph: g, RLNC: cfg, Interval: 500 * time.Microsecond, Seed: 2}, tr)
	if err != nil {
		t.Fatal(err)
	}
	msgs := seedMessages(t, c, cfg, g.N())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if done != g.N() {
		t.Fatalf("completed %d/%d nodes", done, g.N())
	}
	verifyDecode(t, c, msgs, g.N())
	if _, ok := tr.Addr(0); !ok {
		t.Error("Addr lookup failed for registered node")
	}
}

func TestClusterContextCancel(t *testing.T) {
	g := graph.Line(4)
	cfg := testRLNC(3, 4)
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(ClusterConfig{Graph: g, RLNC: cfg, Interval: time.Hour, Seed: 3}, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Seed only one message so the cluster cannot finish; then cancel.
	c.Seed(0, rlnc.Message{Index: 0, Payload: make([]byte, 4)})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done, err := c.Run(ctx)
	if err == nil {
		t.Fatal("expected interruption error")
	}
	if done == g.N() {
		t.Fatal("cluster cannot have finished")
	}
}

func TestChanTransportErrors(t *testing.T) {
	tr := NewChanTransport()
	if _, err := tr.Register(1); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Register(1); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := tr.Send(2, Envelope{}); err == nil {
		t.Error("send to unknown node accepted")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(1, Envelope{}); err == nil {
		t.Error("send after close accepted")
	}
	if _, err := tr.Register(3); err == nil {
		t.Error("register after close accepted")
	}
	if err := tr.Close(); err != nil {
		t.Error("double close must be nil")
	}
}

func TestChanTransportBackpressureDrops(t *testing.T) {
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	if _, err := tr.Register(0); err != nil {
		t.Fatal(err)
	}
	// Overfill the inbox; Send must not block.
	doneCh := make(chan struct{})
	go func() {
		for i := 0; i < inboxSize*3; i++ {
			_ = tr.Send(0, Envelope{From: 1})
		}
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("Send blocked on full inbox")
	}
}

func TestTCPTransportSendUnknown(t *testing.T) {
	tr := NewTCPTransport()
	defer func() { _ = tr.Close() }()
	if err := tr.Send(9, Envelope{}); err == nil {
		t.Error("send to unknown node accepted")
	}
}

func TestClusterSingleSourceAllMessagesAtOneNode(t *testing.T) {
	g := graph.Star(5)
	cfg := testRLNC(6, 4)
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(ClusterConfig{Graph: g, RLNC: cfg, Interval: 200 * time.Microsecond, Seed: 7}, tr)
	if err != nil {
		t.Fatal(err)
	}
	rng := core.NewRand(5)
	msgs := make([]rlnc.Message, cfg.K)
	for i := range msgs {
		msgs[i] = rlnc.Message{Index: i, Payload: gf.RandBytes(cfg.Field, cfg.PayloadLen, rng)}
		c.Seed(0, msgs[i]) // all at the hub
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.Run(ctx); err != nil {
		t.Fatal(err)
	}
	verifyDecode(t, c, msgs, g.N())
}

// TestClusterChurn kills a node mid-run (one that holds no unique
// information) and verifies the surviving nodes still all decode — gossip's
// redundancy makes single-node crashes harmless.
func TestClusterChurn(t *testing.T) {
	g := graph.Grid(3, 3) // killing corner node 8 keeps the rest connected
	cfg := testRLNC(4, 4)
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(ClusterConfig{Graph: g, RLNC: cfg, Interval: 200 * time.Microsecond, Seed: 12}, tr)
	if err != nil {
		t.Fatal(err)
	}
	rng := core.NewRand(9)
	msgs := make([]rlnc.Message, cfg.K)
	for i := range msgs {
		msgs[i] = rlnc.Message{Index: i, Payload: gf.RandBytes(cfg.Field, cfg.PayloadLen, rng)}
		c.Seed(core.NodeID(i), msgs[i]) // seeds at nodes 0..3, far from node 8
	}

	go func() {
		time.Sleep(2 * time.Millisecond)
		c.Kill(8)
		c.Kill(8) // redundant kill must be harmless
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Either node 8 finished before the kill landed (fast run) or the
	// cluster completed with 8 survivors; both are valid outcomes.
	if done < g.N()-1 {
		t.Fatalf("completed %d nodes, want >= %d", done, g.N()-1)
	}
	// Every survivor decodes correctly.
	for v := 0; v < g.N()-1; v++ {
		got, err := c.Decode(core.NodeID(v))
		if err != nil {
			t.Fatalf("survivor %d: %v", v, err)
		}
		for i := range msgs {
			for j := range msgs[i].Payload {
				if got[i].Payload[j] != msgs[i].Payload[j] {
					t.Fatalf("survivor %d message %d mismatch", v, i)
				}
			}
		}
	}
}

// TestClusterGF2BitMode runs a payload-carrying GF(2) cluster end to end:
// the codecs use the packed bitset backend internally while the wire
// format still carries one coefficient per symbol, so the Adapt /
// ExpandCoeffs boundary is exercised in both directions (emit → wire →
// receive), including full decode at every node.
func TestClusterGF2BitMode(t *testing.T) {
	g := graph.Grid(3, 3)
	cfg := rlnc.Config{Field: gf.MustNew(2), K: 5, PayloadLen: 8}
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(ClusterConfig{Graph: g, RLNC: cfg, Interval: 200 * time.Microsecond, Seed: 7}, tr)
	if err != nil {
		t.Fatal(err)
	}
	msgs := seedMessages(t, c, cfg, g.N())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if done != g.N() {
		t.Fatalf("completed %d/%d nodes", done, g.N())
	}
	verifyDecode(t, c, msgs, g.N())
}

// TestClusterGF16SlicedMode runs a payload-carrying GF(16) cluster end to
// end: the codecs use the bit-sliced backend internally while the wire
// format still carries one coefficient per symbol, so the Adapt /
// ExpandCoeffs / ExpandPayload boundary is exercised in both directions
// for a sub-byte symbol width, including full decode at every node.
func TestClusterGF16SlicedMode(t *testing.T) {
	g := graph.Grid(3, 3)
	cfg := rlnc.Config{Field: gf.MustNew(16), K: 5, PayloadLen: 8}
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(ClusterConfig{Graph: g, RLNC: cfg, Interval: 200 * time.Microsecond, Seed: 11}, tr)
	if err != nil {
		t.Fatal(err)
	}
	msgs := seedMessages(t, c, cfg, g.N())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if done != g.N() {
		t.Fatalf("completed %d/%d nodes", done, g.N())
	}
	verifyDecode(t, c, msgs, g.N())
}
