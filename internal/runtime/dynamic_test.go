package runtime

import (
	"context"
	"testing"
	"time"

	"algossip/internal/graph"
)

// TestClusterApplyTopology drives a live cluster through a graph.Dynamic
// edge-failure schedule while it gossips: a controller goroutine applies
// a new topology every few milliseconds (exercising the neighbor-swap
// locking under -race) and the cluster still completes and decodes.
func TestClusterApplyTopology(t *testing.T) {
	base := graph.Torus(3, 3)
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(tr, base, 4, WithPayload(6), WithInterval(200*time.Microsecond), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	msgs := seedMessages(t, c, 4, 6, base.N())

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Controller: materialize the schedule on a wall-clock cadence. The
	// runtime substrate is intentionally non-deterministic; the schedule
	// itself stays a pure function of its epoch.
	sched := graph.NewEdgeFailures(base, 0.3, 11)
	stop := make(chan struct{})
	go func() {
		defer close(stop)
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		for epoch := 0; ; epoch++ {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				if err := c.ApplyTopology(sched.At(epoch)); err != nil {
					t.Errorf("ApplyTopology: %v", err)
					return
				}
			}
		}
	}()

	done, err := c.Run(ctx)
	cancel()
	<-stop
	if err != nil {
		t.Fatal(err)
	}
	if done != base.N() {
		t.Fatalf("completed %d/%d nodes", done, base.N())
	}
	verifyDecode(t, c, msgs, base.N())
}

// TestApplyTopologyRejectsSizeMismatch: a schedule over a different node
// count is a caller bug and must be refused.
func TestApplyTopologyRejectsSizeMismatch(t *testing.T) {
	tr := NewChanTransport()
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(tr, graph.Ring(6), 2, WithPayload(4), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyTopology(graph.Ring(8)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}
