package runtime

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"algossip/internal/core"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
)

// TAGCluster deploys the TAG protocol (paper Section 4) as real concurrent
// processes: on alternating ticks each node either (Phase 1) broadcasts a
// spanning-tree announcement round-robin to its neighbors, or (Phase 2)
// exchanges coded packets with its spanning-tree parent. A node joins the
// tree when it receives its first announcement, adopting the sender as its
// parent — the broadcast-as-STP construction of Section 4.1.
type TAGCluster struct {
	cfg       Config
	transport Transport
	nodes     []*tagNode
	doneCh    chan core.NodeID
}

// tagNode is the per-goroutine TAG state.
type tagNode struct {
	id        core.NodeID
	neighbors []core.NodeID
	inbox     <-chan Envelope
	transport Transport
	interval  time.Duration
	isOrigin  bool

	mu       sync.Mutex
	codec    *rlnc.Node
	rng      *rand.Rand
	informed bool
	parent   core.NodeID
	rrCursor int
	tick     int
	finished bool

	doneCh chan<- core.NodeID
}

// NewTAGCluster builds a TAG deployment of k-message gossip; the spanning
// tree grows from origin. Seed initial messages with Seed before calling
// Run. TAG is single-process and classic-coded: generation and
// local-subset options are rejected.
func NewTAGCluster(transport Transport, g *graph.Graph, origin core.NodeID, k int, opts ...Option) (*TAGCluster, error) {
	cfg, err := Config{Graph: g, K: k}.build(opts...)
	if err != nil {
		return nil, err
	}
	if cfg.GenSize > 0 {
		return nil, fmt.Errorf("runtime: TAG does not support generation coding")
	}
	if len(cfg.Local) != g.N() {
		return nil, fmt.Errorf("runtime: TAG does not support local-subset deployment")
	}
	if int(origin) < 0 || int(origin) >= g.N() {
		return nil, fmt.Errorf("runtime: origin %d out of range", origin)
	}
	n := g.N()
	c := &TAGCluster{
		cfg:       cfg,
		transport: transport,
		nodes:     make([]*tagNode, n),
		doneCh:    make(chan core.NodeID, n),
	}
	for v := 0; v < n; v++ {
		codec, err := rlnc.NewNode(cfg.rlncConfig())
		if err != nil {
			return nil, fmt.Errorf("runtime: node %d codec: %w", v, err)
		}
		inbox, err := transport.Register(core.NodeID(v))
		if err != nil {
			return nil, fmt.Errorf("runtime: node %d register: %w", v, err)
		}
		seed := core.SplitSeed(cfg.Seed, uint64(v))
		nd := &tagNode{
			id:        core.NodeID(v),
			neighbors: cfg.Graph.Neighbors(core.NodeID(v)),
			inbox:     inbox,
			transport: transport,
			interval:  cfg.Interval,
			isOrigin:  core.NodeID(v) == origin,
			codec:     codec,
			rng:       core.NewRand(seed),
			parent:    core.NilNode,
			doneCh:    c.doneCh,
		}
		if nd.isOrigin {
			nd.informed = true
		}
		if len(nd.neighbors) > 0 {
			nd.rrCursor = nd.rng.IntN(len(nd.neighbors))
		}
		c.nodes[v] = nd
	}
	return c, nil
}

// Seed places an initial message at node v.
func (c *TAGCluster) Seed(v core.NodeID, msg rlnc.Message) error {
	if int(v) < 0 || int(v) >= len(c.nodes) {
		return fmt.Errorf("%w: %d", ErrUnknownNode, v)
	}
	nd := c.nodes[v]
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.codec.Seed(msg)
	nd.checkDoneLocked()
	return nil
}

// Rank returns node v's current rank.
func (c *TAGCluster) Rank(v core.NodeID) int {
	nd := c.nodes[v]
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.codec.Rank()
}

// Parent returns node v's spanning-tree parent (NilNode before Phase 1
// reaches it, and for the origin).
func (c *TAGCluster) Parent(v core.NodeID) core.NodeID {
	nd := c.nodes[v]
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.parent
}

// Tree returns the spanning tree built so far; ok is false until every
// node has a parent.
func (c *TAGCluster) Tree() (*graph.Tree, bool) {
	parent := make([]core.NodeID, len(c.nodes))
	var root core.NodeID
	for v, nd := range c.nodes {
		nd.mu.Lock()
		informed := nd.informed
		parent[v] = nd.parent
		if nd.isOrigin {
			root = nd.id
		}
		nd.mu.Unlock()
		if !informed {
			return nil, false
		}
	}
	return &graph.Tree{Root: root, Parent: parent}, true
}

// Decode decodes node v's messages (payload mode, after completion).
func (c *TAGCluster) Decode(v core.NodeID) ([]rlnc.Message, error) {
	nd := c.nodes[v]
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.codec.Decode()
}

// Run starts all node goroutines and blocks until every node can decode or
// ctx is cancelled, returning the number of completed nodes.
func (c *TAGCluster) Run(ctx context.Context) (int, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	for _, nd := range c.nodes {
		wg.Add(1)
		go func(n *tagNode) {
			defer wg.Done()
			n.run(runCtx)
		}(nd)
	}
	finished := 0
	for finished < len(c.nodes) {
		select {
		case <-c.doneCh:
			finished++
		case <-ctx.Done():
			cancel()
			wg.Wait()
			return finished, fmt.Errorf("runtime: TAG cluster interrupted with %d/%d complete: %w",
				finished, len(c.nodes), ctx.Err())
		}
	}
	cancel()
	wg.Wait()
	return finished, nil
}

// run is the node loop: odd ticks run Phase 1 (tree announcements), even
// ticks run Phase 2 (coded exchange with the parent), mirroring the
// paper's wakeup-parity pseudo-code.
func (n *tagNode) run(ctx context.Context) {
	ticker := time.NewTicker(n.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case env, ok := <-n.inbox:
			if !ok {
				return
			}
			n.handle(ctx, env)
		case <-ticker.C:
			n.onTick(ctx)
		}
	}
}

func (n *tagNode) onTick(ctx context.Context) {
	n.mu.Lock()
	n.tick++
	phase1 := n.tick%2 == 1
	informed := n.informed
	parent := n.parent
	var announceTo core.NodeID = core.NilNode
	if phase1 && informed && len(n.neighbors) > 0 {
		announceTo = n.neighbors[n.rrCursor]
		n.rrCursor = (n.rrCursor + 1) % len(n.neighbors)
	}
	n.mu.Unlock()

	if phase1 {
		if announceTo != core.NilNode {
			_ = n.transport.Send(ctx, announceTo, Envelope{Kind: EnvelopeAnnounce, From: n.id})
		}
		return
	}
	if parent != core.NilNode {
		n.sendPacket(ctx, parent, true)
	}
}

func (n *tagNode) handle(ctx context.Context, env Envelope) {
	switch env.Kind {
	case EnvelopeAnnounce:
		n.mu.Lock()
		if !n.informed {
			n.informed = true
			n.parent = env.From
		}
		n.mu.Unlock()
	case EnvelopePacket:
		n.mu.Lock()
		if len(env.Coeffs) > 0 {
			// Wire format is one coefficient per symbol; Adapt re-packs
			// for bit-mode (GF(2)) and sliced (GF(2^m)) codecs.
			n.codec.Receive(n.codec.Adapt(&rlnc.Packet{Coeffs: env.Coeffs, Payload: env.Payload}))
			n.checkDoneLocked()
		}
		n.mu.Unlock()
		if env.WantReply {
			n.sendPacket(ctx, env.From, false)
		}
	}
}

func (n *tagNode) sendPacket(ctx context.Context, peer core.NodeID, wantReply bool) {
	n.mu.Lock()
	pkt := n.codec.Emit(n.rng)
	cfg := n.codec.Config()
	n.mu.Unlock()
	env := Envelope{Kind: EnvelopePacket, From: n.id, WantReply: wantReply}
	if pkt != nil {
		// Bit and sliced packets expand to the one-coefficient-per-symbol
		// wire format here, mirroring clusterNode.sendPacket.
		env.Coeffs = pkt.ExpandCoeffs(cfg.K)
		env.Payload = pkt.ExpandPayload(cfg.PayloadLen)
	} else if !wantReply {
		return
	}
	_ = n.transport.Send(ctx, peer, env)
}

// checkDoneLocked signals completion exactly once; callers hold n.mu.
func (n *tagNode) checkDoneLocked() {
	if !n.finished && n.codec.CanDecode() {
		n.finished = true
		n.doneCh <- n.id
	}
}
