package runtime

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"algossip/internal/core"
	"algossip/internal/wire"
)

// maxDatagram is the largest frame UDPTransport will put in one datagram
// (IPv4 UDP payload ceiling, minus slack for headers).
const maxDatagram = 65000

// UDPTransport carries one wire frame per UDP datagram. Each registered
// node gets its own packet socket; all Sends share one unbound send
// socket. UDP's own loss model stacks naturally under the injected-loss
// layer (LossyTransport) — a dropped datagram is indistinguishable from
// an injected drop, which is exactly the deployment regime the coded
// protocol is built for.
type UDPTransport struct {
	sendTimeout time.Duration

	mu       sync.Mutex
	peers    map[core.NodeID]string
	addrs    map[core.NodeID]string
	resolved map[core.NodeID]*net.UDPAddr
	conns    map[core.NodeID]net.PacketConn
	boxes    map[core.NodeID]chan Envelope
	closed   bool

	send  net.PacketConn
	stats *counters
	wg    sync.WaitGroup
}

var _ Transport = (*UDPTransport)(nil)

// NewUDPTransport returns a UDP transport; nodes listen on loopback ports
// assigned by the kernel unless SetPeers declared an address for them.
func NewUDPTransport() (*UDPTransport, error) {
	send, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("runtime: udp send socket: %w", err)
	}
	return &UDPTransport{
		sendTimeout: 2 * time.Second,
		peers:       make(map[core.NodeID]string),
		addrs:       make(map[core.NodeID]string),
		resolved:    make(map[core.NodeID]*net.UDPAddr),
		conns:       make(map[core.NodeID]net.PacketConn),
		boxes:       make(map[core.NodeID]chan Envelope),
		send:        send,
		stats:       newCounters(),
	}, nil
}

// SetPeers declares node → address routes, exactly like TCPTransport's.
func (t *UDPTransport) SetPeers(peers map[core.NodeID]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, addr := range peers {
		t.peers[id] = addr
		delete(t.resolved, id)
	}
}

// AddPeer declares a single node → address route.
func (t *UDPTransport) AddPeer(id core.NodeID, addr string) {
	t.SetPeers(map[core.NodeID]string{id: addr})
}

// Register implements Transport: it binds the node's packet socket and
// starts a read loop decoding one frame per datagram. Malformed datagrams
// are screened and counted, never fatal.
func (t *UDPTransport) Register(id core.NodeID) (<-chan Envelope, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrTransportClosed
	}
	if _, ok := t.boxes[id]; ok {
		return nil, fmt.Errorf("runtime: node %d already registered", id)
	}
	bind := "127.0.0.1:0"
	if a, ok := t.peers[id]; ok {
		bind = a
	}
	pc, err := net.ListenPacket("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("runtime: udp listen for node %d: %w", id, err)
	}
	ch := make(chan Envelope, inboxSize)
	t.conns[id] = pc
	t.addrs[id] = pc.LocalAddr().String()
	t.boxes[id] = ch

	t.wg.Add(1)
	go t.readLoop(pc)
	return ch, nil
}

func (t *UDPTransport) readLoop(pc net.PacketConn) {
	defer t.wg.Done()
	buf := make([]byte, maxDatagram+64)
	for {
		n, _, err := pc.ReadFrom(buf)
		if err != nil {
			return // socket closed
		}
		to, env, _, err := wire.DecodeFrame(buf[:n])
		if err != nil {
			continue // screened: torn or hostile datagram
		}
		t.mu.Lock()
		ch, ok := t.boxes[to]
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		if !ok {
			t.stats.dropped(to)
			continue
		}
		select {
		case ch <- env:
		default:
			t.stats.dropped(to)
		}
	}
}

// Addr returns the bound address of a registered node.
func (t *UDPTransport) Addr(id core.NodeID) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a, ok := t.addrs[id]
	return a, ok
}

// resolve maps a destination to a UDP address, caching the resolution.
func (t *UDPTransport) resolve(to core.NodeID) (*net.UDPAddr, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ua, ok := t.resolved[to]; ok {
		return ua, nil
	}
	addr, ok := t.addrs[to]
	if !ok {
		addr, ok = t.peers[to]
	}
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, to)
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("runtime: resolve node %d (%s): %w", to, addr, err)
	}
	t.resolved[to] = ua
	return ua, nil
}

// Send implements Transport: one frame, one datagram, fire-and-forget.
func (t *UDPTransport) Send(ctx context.Context, to core.NodeID, env Envelope) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrTransportClosed
	}
	t.mu.Unlock()
	if wire.FrameLen(&env) > maxDatagram {
		return fmt.Errorf("runtime: frame of %d bytes exceeds one datagram (%d)", wire.FrameLen(&env), maxDatagram)
	}
	ua, err := t.resolve(to)
	if err != nil {
		return err
	}
	frame, err := wire.AppendFrame(nil, to, &env)
	if err != nil {
		return err
	}
	_ = t.send.SetWriteDeadline(time.Now().Add(t.sendTimeout))
	if _, err := t.send.WriteTo(frame, ua); err != nil {
		t.stats.dropped(to)
		return fmt.Errorf("runtime: udp send to node %d: %w", to, err)
	}
	t.stats.sent(to)
	return nil
}

// Stats implements Transport.
func (t *UDPTransport) Stats() TransportStats { return t.stats.snapshot() }

// Close implements Transport.
func (t *UDPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, pc := range t.conns {
		_ = pc.Close()
	}
	_ = t.send.Close()
	boxes := t.boxes
	t.mu.Unlock()

	t.wg.Wait()
	for _, ch := range boxes {
		close(ch)
	}
	return nil
}
