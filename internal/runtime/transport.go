// Package runtime deploys the gossip protocols as real concurrent
// processes: one goroutine per node, communicating through a pluggable
// Transport. This is the "production" face of the library — the simulator
// (internal/sim) measures round complexity deterministically, while this
// package runs the same RLNC exchange over channels or real sockets, with
// payloads, decoding, and graceful shutdown.
//
// Four transports ship with the package: ChanTransport (in-process, used
// by examples and tests), TCPTransport and UDPTransport (wire-framed
// frames over loopback or a real network, see internal/wire), and
// LossyTransport (i.i.d. drop injection wrapping any of the others).
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"algossip/internal/core"
	"algossip/internal/wire"
)

// Envelope is the wire message: one coded packet plus exchange metadata.
// It is defined in internal/wire — the codec package owns the layout —
// and aliased here so transport users need not import wire.
type Envelope = wire.Envelope

// EnvelopeKind distinguishes wire message types.
type EnvelopeKind = wire.Kind

const (
	// EnvelopePacket carries one RLNC coded packet (the default).
	EnvelopePacket = wire.KindPacket
	// EnvelopeAnnounce is a spanning-tree broadcast message: "I am part of
	// the tree; adopt me as your parent if you have none" (distributed
	// TAG's Phase 1).
	EnvelopeAnnounce = wire.KindAnnounce
)

// Typed transport errors. Wrapped with context at return sites; match
// with errors.Is.
var (
	// ErrTransportClosed reports an operation on a closed transport.
	ErrTransportClosed = errors.New("runtime: transport closed")
	// ErrUnknownNode reports a Send to a node the transport cannot route
	// to (not registered and no declared peer address).
	ErrUnknownNode = errors.New("runtime: unknown node")
	// ErrBackpressure reports an envelope dropped because a bounded inbox
	// or send queue was full. Gossip is loss-tolerant: callers on the hot
	// path treat it as a counted drop, not a failure.
	ErrBackpressure = errors.New("runtime: dropped on backpressure")
)

// Transport moves envelopes between nodes. Implementations must be safe
// for concurrent use.
type Transport interface {
	// Register allocates the inbox for node id. It must be called once per
	// node before Send targets it.
	Register(id core.NodeID) (<-chan Envelope, error)
	// Send delivers env to node to. Delivery may be asynchronous and may
	// be dropped under backpressure (reported as ErrBackpressure after
	// counting the drop); Send must not block past ctx.
	Send(ctx context.Context, to core.NodeID, env Envelope) error
	// Stats snapshots the transport's send/drop/redial counters.
	Stats() TransportStats
	// Close releases all resources; subsequent Sends fail.
	Close() error
}

// NodeStats counts one destination's traffic as seen by a sender.
type NodeStats struct {
	// Sent counts envelopes handed to the underlying medium.
	Sent uint64
	// Dropped counts envelopes discarded before delivery (full inbox or
	// send queue, injected loss, undialable peer).
	Dropped uint64
	// Redials counts connection re-establishment attempts after the
	// first dial (broken connections and backoff retries).
	Redials uint64
}

// TransportStats is a point-in-time snapshot of a transport's counters,
// totalled and broken down per destination node.
type TransportStats struct {
	Total   NodeStats
	PerNode map[core.NodeID]NodeStats
}

// counters is the shared per-destination counter set behind every
// Transport.Stats implementation.
type counters struct {
	mu  sync.Mutex
	per map[core.NodeID]*NodeStats
}

func newCounters() *counters {
	return &counters{per: make(map[core.NodeID]*NodeStats)}
}

func (c *counters) node(id core.NodeID) *NodeStats {
	ns, ok := c.per[id]
	if !ok {
		ns = &NodeStats{}
		c.per[id] = ns
	}
	return ns
}

func (c *counters) sent(id core.NodeID) {
	c.mu.Lock()
	c.node(id).Sent++
	c.mu.Unlock()
}

func (c *counters) dropped(id core.NodeID) {
	c.mu.Lock()
	c.node(id).Dropped++
	c.mu.Unlock()
}

func (c *counters) redial(id core.NodeID) {
	c.mu.Lock()
	c.node(id).Redials++
	c.mu.Unlock()
}

func (c *counters) snapshot() TransportStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := TransportStats{PerNode: make(map[core.NodeID]NodeStats, len(c.per))}
	for id, ns := range c.per {
		s.PerNode[id] = *ns
		s.Total.Sent += ns.Sent
		s.Total.Dropped += ns.Dropped
		s.Total.Redials += ns.Redials
	}
	return s
}

// inboxSize buffers bursts without unbounded growth; gossip tolerates drops
// but we prefer backpressure-free small buffers.
const inboxSize = 256

// ChanTransport is an in-process Transport backed by buffered channels.
// The zero value is not usable; construct with NewChanTransport.
type ChanTransport struct {
	mu     sync.RWMutex
	boxes  map[core.NodeID]chan Envelope
	closed bool
	stats  *counters
}

var _ Transport = (*ChanTransport)(nil)

// NewChanTransport returns an empty in-process transport.
func NewChanTransport() *ChanTransport {
	return &ChanTransport{
		boxes: make(map[core.NodeID]chan Envelope),
		stats: newCounters(),
	}
}

// Register implements Transport.
func (t *ChanTransport) Register(id core.NodeID) (<-chan Envelope, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrTransportClosed
	}
	if _, ok := t.boxes[id]; ok {
		return nil, fmt.Errorf("runtime: node %d already registered", id)
	}
	ch := make(chan Envelope, inboxSize)
	t.boxes[id] = ch
	return ch, nil
}

// Send implements Transport. When the receiver's inbox is full the
// envelope is dropped, the drop is counted, and ErrBackpressure is
// returned — gossip is loss-tolerant by design, and unhelpful packets are
// redundant anyway.
func (t *ChanTransport) Send(ctx context.Context, to core.NodeID, env Envelope) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return ErrTransportClosed
	}
	ch, ok := t.boxes[to]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, to)
	}
	select {
	case ch <- env:
		t.stats.sent(to)
		return nil
	default:
		t.stats.dropped(to)
		return fmt.Errorf("%w: inbox of node %d full", ErrBackpressure, to)
	}
}

// Stats implements Transport.
func (t *ChanTransport) Stats() TransportStats { return t.stats.snapshot() }

// Close implements Transport.
func (t *ChanTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	for _, ch := range t.boxes {
		close(ch)
	}
	return nil
}
