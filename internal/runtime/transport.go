// Package runtime deploys the gossip protocols as real concurrent
// processes: one goroutine per node, communicating through a pluggable
// Transport. This is the "production" face of the library — the simulator
// (internal/sim) measures round complexity deterministically, while this
// package runs the same RLNC exchange over channels or TCP sockets, with
// payloads, decoding, and graceful shutdown.
//
// Two transports ship with the package: ChanTransport (in-process, used by
// examples and tests) and TCPTransport (gob-framed messages over loopback
// or a real network).
package runtime

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"algossip/internal/core"
	"algossip/internal/gf"
)

// EnvelopeKind distinguishes wire message types.
type EnvelopeKind int

const (
	// EnvelopePacket carries one RLNC coded packet (the default).
	EnvelopePacket EnvelopeKind = iota
	// EnvelopeAnnounce is a spanning-tree broadcast message: "I am part of
	// the tree; adopt me as your parent if you have none" (distributed
	// TAG's Phase 1).
	EnvelopeAnnounce
)

// Envelope is the wire message: one coded packet plus exchange metadata.
type Envelope struct {
	// Kind selects the message type.
	Kind EnvelopeKind
	// From is the sending node.
	From core.NodeID
	// WantReply marks the first leg of an EXCHANGE: the receiver answers
	// with one packet of its own (with WantReply unset).
	WantReply bool
	// Coeffs is the k-length coefficient vector.
	Coeffs []gf.Elem
	// Payload is the combined payload row, one byte-encoded field symbol
	// per byte (may be empty in rank-only runs).
	Payload []byte
}

// Transport moves envelopes between nodes. Implementations must be safe
// for concurrent use.
type Transport interface {
	// Register allocates the inbox for node id. It must be called once per
	// node before Send targets it.
	Register(id core.NodeID) (<-chan Envelope, error)
	// Send delivers env to node to. Delivery may be asynchronous; Send
	// must not block indefinitely once the receiver is closed.
	Send(to core.NodeID, env Envelope) error
	// Close releases all resources; subsequent Sends fail.
	Close() error
}

// inboxSize buffers bursts without unbounded growth; gossip tolerates drops
// but we prefer backpressure-free small buffers.
const inboxSize = 256

// ChanTransport is an in-process Transport backed by buffered channels.
// The zero value is not usable; construct with NewChanTransport.
type ChanTransport struct {
	mu     sync.RWMutex
	boxes  map[core.NodeID]chan Envelope
	closed bool
}

var _ Transport = (*ChanTransport)(nil)

// NewChanTransport returns an empty in-process transport.
func NewChanTransport() *ChanTransport {
	return &ChanTransport{boxes: make(map[core.NodeID]chan Envelope)}
}

// Register implements Transport.
func (t *ChanTransport) Register(id core.NodeID) (<-chan Envelope, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, errors.New("runtime: transport closed")
	}
	if _, ok := t.boxes[id]; ok {
		return nil, fmt.Errorf("runtime: node %d already registered", id)
	}
	ch := make(chan Envelope, inboxSize)
	t.boxes[id] = ch
	return ch, nil
}

// Send implements Transport. When the receiver's inbox is full the envelope
// is dropped — gossip is loss-tolerant by design, and unhelpful packets are
// redundant anyway.
func (t *ChanTransport) Send(to core.NodeID, env Envelope) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return errors.New("runtime: transport closed")
	}
	ch, ok := t.boxes[to]
	if !ok {
		return fmt.Errorf("runtime: unknown node %d", to)
	}
	select {
	case ch <- env:
	default: // drop on backpressure
	}
	return nil
}

// Close implements Transport.
func (t *ChanTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	for _, ch := range t.boxes {
		close(ch)
	}
	return nil
}

// TCPTransport carries envelopes as gob-encoded frames over TCP. Each
// registered node gets its own listener; senders keep one persistent
// connection per destination.
type TCPTransport struct {
	mu        sync.Mutex
	addrs     map[core.NodeID]string
	listeners map[core.NodeID]net.Listener
	boxes     map[core.NodeID]chan Envelope
	conns     map[core.NodeID]*gobConn
	wg        sync.WaitGroup
	closed    bool
}

type gobConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

var _ Transport = (*TCPTransport)(nil)

// NewTCPTransport returns a TCP transport; nodes listen on loopback ports
// assigned by the kernel.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{
		addrs:     make(map[core.NodeID]string),
		listeners: make(map[core.NodeID]net.Listener),
		boxes:     make(map[core.NodeID]chan Envelope),
		conns:     make(map[core.NodeID]*gobConn),
	}
}

// Register implements Transport: it starts a listener for the node and a
// goroutine funneling decoded envelopes into the inbox.
func (t *TCPTransport) Register(id core.NodeID) (<-chan Envelope, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, errors.New("runtime: transport closed")
	}
	if _, ok := t.boxes[id]; ok {
		return nil, fmt.Errorf("runtime: node %d already registered", id)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("runtime: listen for node %d: %w", id, err)
	}
	ch := make(chan Envelope, inboxSize)
	t.listeners[id] = ln
	t.addrs[id] = ln.Addr().String()
	t.boxes[id] = ch

	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				defer func() { _ = conn.Close() }()
				dec := gob.NewDecoder(conn)
				for {
					var env Envelope
					if err := dec.Decode(&env); err != nil {
						return
					}
					select {
					case ch <- env:
					default: // drop on backpressure
					}
				}
			}()
		}
	}()
	return ch, nil
}

// Addr returns the listen address of a registered node (for diagnostics).
func (t *TCPTransport) Addr(id core.NodeID) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a, ok := t.addrs[id]
	return a, ok
}

// Send implements Transport.
func (t *TCPTransport) Send(to core.NodeID, env Envelope) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errors.New("runtime: transport closed")
	}
	gc, ok := t.conns[to]
	if !ok {
		addr, known := t.addrs[to]
		if !known {
			t.mu.Unlock()
			return fmt.Errorf("runtime: unknown node %d", to)
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.mu.Unlock()
			return fmt.Errorf("runtime: dial node %d: %w", to, err)
		}
		gc = &gobConn{conn: conn, enc: gob.NewEncoder(conn)}
		t.conns[to] = gc
	}
	t.mu.Unlock()

	gc.mu.Lock()
	defer gc.mu.Unlock()
	if err := gc.enc.Encode(env); err != nil {
		// Connection broke; forget it so the next Send redials.
		t.mu.Lock()
		if t.conns[to] == gc {
			delete(t.conns, to)
		}
		t.mu.Unlock()
		_ = gc.conn.Close()
		return fmt.Errorf("runtime: send to node %d: %w", to, err)
	}
	return nil
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, ln := range t.listeners {
		_ = ln.Close()
	}
	for _, gc := range t.conns {
		_ = gc.conn.Close()
	}
	boxes := t.boxes
	t.mu.Unlock()

	t.wg.Wait()
	for _, ch := range boxes {
		close(ch)
	}
	return nil
}
