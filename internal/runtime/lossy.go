package runtime

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"algossip/internal/core"
)

// LossyTransport wraps another Transport and drops each Send independently
// with a fixed probability — failure injection for validating that coded
// gossip completes under packet loss (every surviving combination is still
// helpful with probability at least 1-1/q, so loss only dilates time).
type LossyTransport struct {
	inner Transport
	rate  float64

	mu  sync.Mutex
	rng *rand.Rand

	dropped uint64
	sent    uint64
}

var _ Transport = (*LossyTransport)(nil)

// NewLossyTransport wraps inner with i.i.d. drop probability rate in [0,1).
func NewLossyTransport(inner Transport, rate float64, seed uint64) (*LossyTransport, error) {
	if rate < 0 || rate >= 1 {
		return nil, fmt.Errorf("runtime: loss rate %v outside [0, 1)", rate)
	}
	return &LossyTransport{inner: inner, rate: rate, rng: core.NewRand(seed)}, nil
}

// Register implements Transport.
func (t *LossyTransport) Register(id core.NodeID) (<-chan Envelope, error) {
	return t.inner.Register(id)
}

// Send implements Transport, dropping the envelope with the configured
// probability. Drops are reported as success to the caller — exactly like
// a lossy wire.
func (t *LossyTransport) Send(to core.NodeID, env Envelope) error {
	t.mu.Lock()
	drop := t.rng.Float64() < t.rate
	if drop {
		t.dropped++
	} else {
		t.sent++
	}
	t.mu.Unlock()
	if drop {
		return nil
	}
	return t.inner.Send(to, env)
}

// Close implements Transport.
func (t *LossyTransport) Close() error { return t.inner.Close() }

// Stats returns (delivered, dropped) counts.
func (t *LossyTransport) Stats() (delivered, dropped uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sent, t.dropped
}
