package runtime

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"

	"algossip/internal/core"
)

// LossyTransport wraps another Transport and drops each Send independently
// with a fixed probability — failure injection for validating that coded
// gossip completes under packet loss (every surviving combination is still
// helpful with probability at least 1-1/q, so loss only dilates time).
type LossyTransport struct {
	inner Transport
	rate  float64

	mu  sync.Mutex
	rng *rand.Rand

	stats *counters
}

var _ Transport = (*LossyTransport)(nil)

// NewLossyTransport wraps inner with i.i.d. drop probability rate in [0,1).
func NewLossyTransport(inner Transport, rate float64, seed uint64) (*LossyTransport, error) {
	if rate < 0 || rate >= 1 {
		return nil, fmt.Errorf("runtime: loss rate %v outside [0, 1)", rate)
	}
	return &LossyTransport{
		inner: inner,
		rate:  rate,
		rng:   core.NewRand(seed),
		stats: newCounters(),
	}, nil
}

// Register implements Transport.
func (t *LossyTransport) Register(id core.NodeID) (<-chan Envelope, error) {
	return t.inner.Register(id)
}

// Send implements Transport, dropping the envelope with the configured
// probability. Injected drops are reported as success to the caller —
// exactly like a lossy wire — and show up only in Stats.
func (t *LossyTransport) Send(ctx context.Context, to core.NodeID, env Envelope) error {
	t.mu.Lock()
	drop := t.rng.Float64() < t.rate
	t.mu.Unlock()
	if drop {
		t.stats.dropped(to)
		return nil
	}
	t.stats.sent(to)
	return t.inner.Send(ctx, to, env)
}

// Close implements Transport.
func (t *LossyTransport) Close() error { return t.inner.Close() }

// Stats implements Transport: this layer's own counters (Sent = passed
// through, Dropped = injected drops) merged with the inner transport's
// redial counts. Inner-layer drops (backpressure under the loss layer)
// remain visible on the inner transport's own Stats.
func (t *LossyTransport) Stats() TransportStats {
	s := t.stats.snapshot()
	inner := t.inner.Stats()
	s.Total.Redials = inner.Total.Redials
	for id, ins := range inner.PerNode {
		ns := s.PerNode[id]
		ns.Redials = ins.Redials
		s.PerNode[id] = ns
	}
	return s
}
