package runtime

import (
	"context"
	"testing"
	"time"

	"algossip/internal/core"
	"algossip/internal/graph"
)

// TestChaosLatencyDelays: with a pure latency profile every envelope
// arrives, but not before its stamped deadline.
func TestChaosLatencyDelays(t *testing.T) {
	tr, err := NewChaosTransport(NewChanTransport(), ChaosConfig{Latency: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	inbox, err := tr.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := tr.Send(context.Background(), 1, sampleEnvelope()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-inbox:
		if el := time.Since(start); el < 25*time.Millisecond {
			t.Fatalf("envelope arrived after %v, before the 30ms latency floor", el)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delayed envelope never arrived")
	}
}

// TestChaosLatencyDoesNotCompound: deadlines stamp at arrival, so a burst
// of n envelopes through one inbox is delayed by one latency, not n.
func TestChaosLatencyDoesNotCompound(t *testing.T) {
	tr, err := NewChaosTransport(NewChanTransport(), ChaosConfig{Latency: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	inbox, err := tr.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	const burst = 20
	start := time.Now()
	for i := 0; i < burst; i++ {
		if err := tr.Send(context.Background(), 1, sampleEnvelope()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < burst; i++ {
		select {
		case <-inbox:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d of %d burst envelopes arrived", i, burst)
		}
	}
	// Serial delays would take burst*50ms = 1s; stamped-at-arrival should
	// land the whole burst shortly after one latency.
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("burst of %d took %v — latency is compounding per envelope", burst, el)
	}
}

// TestChaosPartitionAndHeal: an interactive partition silently eats all
// traffic to its nodes, and Heal restores delivery.
func TestChaosPartitionAndHeal(t *testing.T) {
	tr, err := NewChaosTransport(NewChanTransport(), ChaosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	inbox, err := tr.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetPartition([]core.NodeID{1})
	for i := 0; i < 5; i++ {
		if err := tr.Send(context.Background(), 1, sampleEnvelope()); err != nil {
			t.Fatalf("partitioned send surfaced an error: %v", err)
		}
	}
	select {
	case env := <-inbox:
		t.Fatalf("partitioned node received %+v", env)
	case <-time.After(50 * time.Millisecond):
	}
	if got := tr.Cut(); got != 5 {
		t.Fatalf("Cut() = %d, want 5", got)
	}
	if s := tr.Stats(); s.Total.Dropped != 5 || s.Total.Sent != 0 {
		t.Fatalf("stats = %+v, want 5 dropped / 0 sent", s.Total)
	}

	tr.Heal()
	if err := tr.Send(context.Background(), 1, sampleEnvelope()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-inbox:
	case <-time.After(5 * time.Second):
		t.Fatal("envelope never arrived after Heal")
	}
}

// TestChaosScheduledPartition: a pre-scheduled window cuts traffic only
// while it is open, with no orchestrator in the loop.
func TestChaosScheduledPartition(t *testing.T) {
	tr, err := NewChaosTransport(NewChanTransport(), ChaosConfig{
		Partitions: []PartitionWindow{{Start: 0, Stop: 80 * time.Millisecond, Nodes: []core.NodeID{1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	inbox, err := tr.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(context.Background(), 1, sampleEnvelope()); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-inbox:
		t.Fatalf("envelope %+v crossed an open partition window", env)
	case <-time.After(20 * time.Millisecond):
	}
	time.Sleep(100 * time.Millisecond) // window closes on its own
	if err := tr.Send(context.Background(), 1, sampleEnvelope()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-inbox:
	case <-time.After(5 * time.Second):
		t.Fatal("envelope never arrived after the window closed")
	}
	if got := tr.Cut(); got != 1 {
		t.Fatalf("Cut() = %d, want 1", got)
	}
}

// TestChaosCorruptionIsStructural: at rate 1 every delivered envelope has
// a coefficient or payload length that differs from the original — the
// exact property the receiver's width screens reject on — and the
// sender's copy is never mutated.
func TestChaosCorruptionIsStructural(t *testing.T) {
	tr, err := NewChaosTransport(NewChanTransport(), ChaosConfig{CorruptRate: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	inbox, err := tr.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	orig := sampleEnvelope()
	wantCoeffs, wantPay := len(orig.Coeffs), len(orig.Payload)
	const sends = 50
	for i := 0; i < sends; i++ {
		if err := tr.Send(context.Background(), 1, orig); err != nil {
			t.Fatal(err)
		}
		select {
		case got := <-inbox:
			if len(got.Coeffs) == wantCoeffs && len(got.Payload) == wantPay {
				t.Fatalf("send %d: corrupted envelope kept its shape (%d coeffs, %d payload)",
					i, len(got.Coeffs), len(got.Payload))
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("send %d never arrived", i)
		}
		if len(orig.Coeffs) != wantCoeffs || len(orig.Payload) != wantPay {
			t.Fatal("corruption mutated the caller's envelope")
		}
	}
	if got := tr.Corrupted(); got != sends {
		t.Fatalf("Corrupted() = %d, want %d", got, sends)
	}
}

// TestChaosSetLatencyMidRun: the latency profile is hot-swappable — the
// daemon's /chaos endpoint relies on this taking effect immediately for
// envelopes stamped after the call.
func TestChaosSetLatencyMidRun(t *testing.T) {
	tr, err := NewChaosTransport(NewChanTransport(), ChaosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	inbox, err := tr.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetLatency(40*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := tr.Send(context.Background(), 1, sampleEnvelope()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-inbox:
		if el := time.Since(start); el < 35*time.Millisecond {
			t.Fatalf("envelope arrived after %v despite the 40ms hot-set latency", el)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("envelope never arrived")
	}
	if err := tr.SetLatency(-1, 0); err == nil {
		t.Fatal("negative latency accepted")
	}
	if err := tr.SetCorruptRate(1.5); err == nil {
		t.Fatal("corrupt rate > 1 accepted")
	}
}

// TestChaosConfigValidation: constructor rejects out-of-range knobs.
func TestChaosConfigValidation(t *testing.T) {
	for _, cfg := range []ChaosConfig{
		{CorruptRate: -0.1},
		{CorruptRate: 1.1},
		{Latency: -time.Second},
		{Jitter: -time.Second},
	} {
		if _, err := NewChaosTransport(NewChanTransport(), cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// TestChaosClusterConverges: a full runtime cluster converges and decodes
// through a chaos layer injecting latency, jitter and frame corruption —
// corrupt frames die at the rlnc width screens, latency only dilates time.
func TestChaosClusterConverges(t *testing.T) {
	g := graph.Grid(3, 3)
	const k, r = 4, 4
	tr, err := NewChaosTransport(NewChanTransport(), ChaosConfig{
		Latency:     time.Millisecond,
		Jitter:      2 * time.Millisecond,
		CorruptRate: 0.2,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Close() }()
	c, err := NewCluster(tr, g, k, WithPayload(r), WithInterval(200*time.Microsecond), WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	msgs := seedMessages(t, c, k, r, g.N())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	done, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if done != g.N() {
		t.Fatalf("completed %d/%d under chaos", done, g.N())
	}
	verifyDecode(t, c, msgs, g.N())
	if tr.Corrupted() == 0 {
		t.Fatal("chaos layer corrupted nothing at rate 0.2")
	}
}
