package trace

import (
	"strings"
	"sync"
	"testing"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/gossip/algebraic"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
	"algossip/internal/sim"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	if r.Len() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	r.NodeDone(3, 5)
	r.NodeDone(1, 2)
	r.NodeDone(2, 5)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	rounds := r.CompletionRounds()
	want := []float64{2, 5, 5}
	for i := range want {
		if rounds[i] != want[i] {
			t.Fatalf("CompletionRounds = %v", rounds)
		}
	}
	s, err := r.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if s.Max != 5 || s.Min != 2 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummaryEmpty(t *testing.T) {
	if _, err := NewRecorder().Summary(); err == nil {
		t.Fatal("empty summary must error")
	}
}

func TestCDF(t *testing.T) {
	r := NewRecorder()
	r.NodeDone(0, 1)
	r.NodeDone(1, 1)
	r.NodeDone(2, 4)
	cdf := r.CDF()
	if len(cdf) != 2 {
		t.Fatalf("CDF = %+v", cdf)
	}
	if cdf[0].Round != 1 || cdf[0].Fraction < 0.66 || cdf[0].Fraction > 0.67 {
		t.Fatalf("CDF[0] = %+v", cdf[0])
	}
	if cdf[1].Round != 4 || cdf[1].Fraction != 1 {
		t.Fatalf("CDF[1] = %+v", cdf[1])
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.NodeDone(7, 3)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "node,round") || !strings.Contains(out, "7,3") {
		t.Fatalf("CSV output:\n%s", out)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.NodeDone(core.NodeID(i), i)
		}(i)
	}
	wg.Wait()
	if r.Len() != 50 {
		t.Fatalf("Len = %d, want 50", r.Len())
	}
}

// TestRecorderWiredIntoProtocol runs a real simulation with the recorder as
// observer and cross-checks the recorded stopping time with the engine's.
func TestRecorderWiredIntoProtocol(t *testing.T) {
	g := graph.Grid(4, 4)
	rec := NewRecorder()
	p, err := algebraic.New(g, core.Synchronous, sim.NewUniform(g),
		algebraic.Config{RLNC: rlnc.Config{Field: gf.MustNew(2), K: 8, RankOnly: true}},
		core.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	p.SetObserver(rec)
	if err := p.SeedAll(algebraic.RoundRobinAssign(8, 16), nil); err != nil {
		t.Fatal(err)
	}
	res, err := sim.New(g, core.Synchronous, p, 2).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != g.N() {
		t.Fatalf("recorded %d completions, want %d", rec.Len(), g.N())
	}
	s, err := rec.Summary()
	if err != nil {
		t.Fatal(err)
	}
	// The engine's reported stopping time is the round after the last
	// completion lands (Done is checked at round start).
	if int(s.Max) > res.Rounds {
		t.Fatalf("last completion at round %v, engine reported %d", s.Max, res.Rounds)
	}
	cdf := r0cdf(rec)
	if cdf[len(cdf)-1].Fraction != 1 {
		t.Fatal("CDF must end at 1")
	}
}

func r0cdf(r *Recorder) []struct {
	Round    int
	Fraction float64
} {
	return r.CDF()
}
