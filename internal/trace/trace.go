// Package trace records per-node protocol progress for post-hoc analysis:
// which node completed at which round, the completion CDF, and CSV export
// for plotting the paper's per-node dissemination curves.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"algossip/internal/core"
	"algossip/internal/sim"
	"algossip/internal/stats"
)

// Event is one recorded completion.
type Event struct {
	// Node is the completing node.
	Node core.NodeID
	// Round is the round (in the protocol's time model) of completion.
	Round int
}

// Recorder collects completion events. It implements sim.Observer and is
// safe for concurrent use (the concurrent runtime may call it from many
// goroutines).
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

var _ sim.Observer = (*Recorder)(nil)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// NodeDone implements sim.Observer.
func (r *Recorder) NodeDone(v core.NodeID, round int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, Event{Node: v, Round: round})
}

// Events returns a copy of the recorded events in arrival order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// CompletionRounds returns the sorted completion rounds.
func (r *Recorder) CompletionRounds() []float64 {
	events := r.Events()
	out := make([]float64, len(events))
	for i, e := range events {
		out[i] = float64(e.Round)
	}
	sort.Float64s(out)
	return out
}

// Summary condenses the completion rounds (mean, median, p90, max — the
// max is the protocol's stopping time).
func (r *Recorder) Summary() (stats.Summary, error) {
	rounds := r.CompletionRounds()
	if len(rounds) == 0 {
		return stats.Summary{}, fmt.Errorf("trace: no events recorded")
	}
	return stats.Summarize(rounds), nil
}

// CDF returns (round, fraction-complete) pairs: after `round` rounds,
// `fraction` of the nodes had completed. Useful for plotting dissemination
// curves.
func (r *Recorder) CDF() []struct {
	Round    int
	Fraction float64
} {
	rounds := r.CompletionRounds()
	type point = struct {
		Round    int
		Fraction float64
	}
	var out []point
	n := len(rounds)
	for i, rd := range rounds {
		if len(out) > 0 && out[len(out)-1].Round == int(rd) {
			out[len(out)-1].Fraction = float64(i+1) / float64(n)
			continue
		}
		out = append(out, point{Round: int(rd), Fraction: float64(i+1) / float64(n)})
	}
	return out
}

// WriteCSV writes "node,round" rows in arrival order.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"node", "round"}); err != nil {
		return err
	}
	for _, e := range r.Events() {
		if err := cw.Write([]string{strconv.Itoa(int(e.Node)), strconv.Itoa(e.Round)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
