package stats

import (
	"math"
	"testing"
	"testing/quick"

	"algossip/internal/core"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Errorf("Mean = %v", m)
	}
	if sd := StdDev(xs); !almost(sd, 2.138089935299395, 1e-9) {
		t.Errorf("StdDev = %v", sd)
	}
	if StdDev([]float64{3}) != 0 {
		t.Error("StdDev of singleton must be 0")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	tests := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, tt := range tests {
		if got := Quantile(sorted, tt.q); !almost(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || !almost(s.Median, 3, 1e-12) {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Summarize(nil)
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b, r2 := LinearFit(x, y)
	if !almost(a, 1, 1e-9) || !almost(b, 2, 1e-9) || !almost(r2, 1, 1e-9) {
		t.Errorf("fit = (%v, %v, %v)", a, b, r2)
	}
}

func TestPowerFitRecoversExponent(t *testing.T) {
	// y = 3 x^2 with mild noise.
	rng := core.NewRand(5)
	var x, y []float64
	for n := 10.0; n <= 200; n += 10 {
		x = append(x, n)
		noise := 1 + 0.02*(rng.Float64()-0.5)
		y = append(y, 3*n*n*noise)
	}
	a, b, r2 := PowerFit(x, y)
	if !almost(b, 2, 0.05) {
		t.Errorf("exponent = %v, want ~2", b)
	}
	if !almost(a, 3, 0.5) {
		t.Errorf("prefactor = %v, want ~3", a)
	}
	if r2 < 0.99 {
		t.Errorf("r2 = %v", r2)
	}
}

func TestPowerFitRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PowerFit([]float64{1, -2}, []float64{1, 2})
}

// TestMeanQuantileEmptyAndSingleton pins the aggregation-facing
// edge-case contract: empty samples yield NaN (an all-failed worker
// range must not kill a sweep), singletons return their only element.
func TestMeanQuantileEmptyAndSingleton(t *testing.T) {
	if m := Mean(nil); !math.IsNaN(m) {
		t.Errorf("Mean(nil) = %v, want NaN", m)
	}
	if q := Quantile(nil, 0.5); !math.IsNaN(q) {
		t.Errorf("Quantile(nil, 0.5) = %v, want NaN", q)
	}
	for _, tq := range TailQuantiles(nil, 0.99, 0.999) {
		if !math.IsNaN(tq) {
			t.Errorf("TailQuantiles(nil) = %v, want NaNs", tq)
		}
	}
	if m := Mean([]float64{7}); m != 7 {
		t.Errorf("Mean singleton = %v", m)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := Quantile([]float64{7}, q); got != 7 {
			t.Errorf("Quantile(singleton, %v) = %v", q, got)
		}
	}
	if got := TailQuantiles([]float64{3, 1, 2}, 0, 1); got[0] != 1 || got[1] != 3 {
		t.Errorf("TailQuantiles sorts internally: got %v", got)
	}
}

// TestCI95CriticalValues pins both regimes of the small-sample fix: the
// Student-t critical value for n <= 31 and the z = 1.96 normal
// approximation above. Before the fix every n used 1.96, which
// under-covers the 20–200-trial experiment gates.
func TestCI95CriticalValues(t *testing.T) {
	tests := []struct {
		n    int
		want float64
	}{
		{2, 12.706}, // df=1: the worst small-sample case
		{5, 2.776},  // df=4
		{20, 2.093}, // df=19: E15/E17-gate territory
		{31, 2.042}, // df=30: last table entry
		{32, 1.96},  // df=31: normal approximation takes over
		{200, 1.96},
	}
	for _, tt := range tests {
		if got := CritValue95(tt.n); !almost(got, tt.want, 1e-9) {
			t.Errorf("CritValue95(%d) = %v, want %v", tt.n, got, tt.want)
		}
		// CI95 must be exactly crit * sd / sqrt(n).
		xs := make([]float64, tt.n)
		for i := range xs {
			xs[i] = float64(i % 5)
		}
		want := tt.want * StdDev(xs) / math.Sqrt(float64(tt.n))
		if got := CI95(xs); !almost(got, want, 1e-12) {
			t.Errorf("CI95(n=%d) = %v, want %v", tt.n, got, want)
		}
	}
	if v := CritValue95(1); !math.IsNaN(v) {
		t.Errorf("CritValue95(1) = %v, want NaN (no df)", v)
	}
	if CI95([]float64{4}) != 0 {
		t.Error("CI95 of a singleton must be 0")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	rng := core.NewRand(7)
	sample := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		return xs
	}
	small := CI95(sample(20))
	large := CI95(sample(2000))
	if large >= small {
		t.Errorf("CI did not shrink: n=20 -> %v, n=2000 -> %v", small, large)
	}
}

// Property: mean is within [min, max], and quantiles are monotone in q.
func TestQuantileMonotoneQuick(t *testing.T) {
	check := func(seed uint64) bool {
		rng := core.NewRand(seed)
		n := 2 + rng.IntN(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		s := Summarize(xs)
		if s.Mean < s.Min || s.Mean > s.Max {
			return false
		}
		return s.Min <= s.Median && s.Median <= s.P90 && s.P90 <= s.Max
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
