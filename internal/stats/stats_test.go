package stats

import (
	"math"
	"testing"
	"testing/quick"

	"algossip/internal/core"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Errorf("Mean = %v", m)
	}
	if sd := StdDev(xs); !almost(sd, 2.138089935299395, 1e-9) {
		t.Errorf("StdDev = %v", sd)
	}
	if StdDev([]float64{3}) != 0 {
		t.Error("StdDev of singleton must be 0")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	tests := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, tt := range tests {
		if got := Quantile(sorted, tt.q); !almost(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || !almost(s.Median, 3, 1e-12) {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Summarize(nil)
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b, r2 := LinearFit(x, y)
	if !almost(a, 1, 1e-9) || !almost(b, 2, 1e-9) || !almost(r2, 1, 1e-9) {
		t.Errorf("fit = (%v, %v, %v)", a, b, r2)
	}
}

func TestPowerFitRecoversExponent(t *testing.T) {
	// y = 3 x^2 with mild noise.
	rng := core.NewRand(5)
	var x, y []float64
	for n := 10.0; n <= 200; n += 10 {
		x = append(x, n)
		noise := 1 + 0.02*(rng.Float64()-0.5)
		y = append(y, 3*n*n*noise)
	}
	a, b, r2 := PowerFit(x, y)
	if !almost(b, 2, 0.05) {
		t.Errorf("exponent = %v, want ~2", b)
	}
	if !almost(a, 3, 0.5) {
		t.Errorf("prefactor = %v, want ~3", a)
	}
	if r2 < 0.99 {
		t.Errorf("r2 = %v", r2)
	}
}

func TestPowerFitRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PowerFit([]float64{1, -2}, []float64{1, 2})
}

func TestCI95ShrinksWithN(t *testing.T) {
	rng := core.NewRand(7)
	sample := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		return xs
	}
	small := CI95(sample(20))
	large := CI95(sample(2000))
	if large >= small {
		t.Errorf("CI did not shrink: n=20 -> %v, n=2000 -> %v", small, large)
	}
}

// Property: mean is within [min, max], and quantiles are monotone in q.
func TestQuantileMonotoneQuick(t *testing.T) {
	check := func(seed uint64) bool {
		rng := core.NewRand(seed)
		n := 2 + rng.IntN(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		s := Summarize(xs)
		if s.Mean < s.Min || s.Mean > s.Max {
			return false
		}
		return s.Min <= s.Median && s.Median <= s.P90 && s.P90 <= s.Max
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
