// Package stats provides the summary statistics and scaling-law fits used
// by the experiment harness: means, quantiles, confidence intervals, and
// least-squares fits (linear and power-law) for verifying that measured
// stopping times grow with the exponents the theorems predict.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary condenses a sample of measurements.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Median float64
	P90    float64
	Max    float64
}

// Summarize computes a Summary of xs. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs)}
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f sd=%.1f min=%.0f med=%.1f p90=%.1f max=%.0f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P90, s.Max)
}

// Mean returns the arithmetic mean. An empty sample yields NaN: the
// aggregation paths (worker ranges where every trial failed, filtered
// query cells) feed empty slices here, and a quiet NaN propagates into
// reports where a panic would kill the whole sweep.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator);
// 0 for samples of size < 2.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) of an already sorted
// sample, with linear interpolation. An empty sample yields NaN (see
// Mean); a singleton returns its only element for every q.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// tCrit95 holds the two-sided 95% Student-t critical values for
// degrees of freedom 1..30 (index df-1). Beyond df=30 the t distribution
// is within 2% of the normal and the z approximation takes over.
var tCrit95 = [30]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CritValue95 returns the two-sided 95% critical value for a mean
// estimated from n samples: the Student-t value for n <= 31 (df <= 30),
// the normal approximation z = 1.96 above. The experiment gates run
// 20–200 trials; at n=20 the z value under-covers by ~7%.
func CritValue95(n int) float64 {
	df := n - 1
	switch {
	case df < 1:
		return math.NaN()
	case df <= len(tCrit95):
		return tCrit95[df-1]
	default:
		return 1.96
	}
}

// CI95 returns the half-width of the 95% confidence interval for the
// mean of xs, using the Student-t critical value for small samples and
// the normal approximation above n≈30 (see CritValue95).
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return CritValue95(len(xs)) * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// TailQuantiles returns the requested quantiles of xs (unsorted; a copy
// is sorted internally), e.g. TailQuantiles(xs, 0.99, 0.999) for the
// P99/P99.9 stopping times of a result-store cell. Empty samples yield
// NaN per quantile.
func TailQuantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = Quantile(sorted, q)
	}
	return out
}

// LinearFit fits y = a + b·x by ordinary least squares and returns a, b and
// the coefficient of determination R². It panics when fewer than two
// points are supplied or all x are equal.
func LinearFit(x, y []float64) (a, b, r2 float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: need >= 2 paired points")
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stats: degenerate x values")
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		return a, b, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return a, b, r2
}

// PowerFit fits y = a·x^b by least squares in log-log space, returning a, b
// and the log-space R². All x and y must be positive. Use it to recover
// empirical scaling exponents (e.g. rounds ~ n^2 on the barbell).
func PowerFit(x, y []float64) (a, b, r2 float64) {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			panic("stats: PowerFit requires positive data")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	la, b, r2 := LinearFit(lx, ly)
	return math.Exp(la), b, r2
}
