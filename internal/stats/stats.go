// Package stats provides the summary statistics and scaling-law fits used
// by the experiment harness: means, quantiles, confidence intervals, and
// least-squares fits (linear and power-law) for verifying that measured
// stopping times grow with the exponents the theorems predict.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary condenses a sample of measurements.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Median float64
	P90    float64
	Max    float64
}

// Summarize computes a Summary of xs. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs)}
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f sd=%.1f min=%.0f med=%.1f p90=%.1f max=%.0f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P90, s.Max)
}

// Mean returns the arithmetic mean. It panics on an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator);
// 0 for samples of size < 2.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) of an already sorted
// sample, with linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean of xs.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// LinearFit fits y = a + b·x by ordinary least squares and returns a, b and
// the coefficient of determination R². It panics when fewer than two
// points are supplied or all x are equal.
func LinearFit(x, y []float64) (a, b, r2 float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: need >= 2 paired points")
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stats: degenerate x values")
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		return a, b, 1
	}
	r2 = sxy * sxy / (sxx * syy)
	return a, b, r2
}

// PowerFit fits y = a·x^b by least squares in log-log space, returning a, b
// and the log-space R². All x and y must be positive. Use it to recover
// empirical scaling exponents (e.g. rounds ~ n^2 on the barbell).
func PowerFit(x, y []float64) (a, b, r2 float64) {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			panic("stats: PowerFit requires positive data")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	la, b, r2 := LinearFit(lx, ly)
	return math.Exp(la), b, r2
}
