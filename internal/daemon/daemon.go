// Package daemon is the long-running network-runtime process behind
// cmd/gossipd: it hosts a subset of a gossip cluster's nodes over a real
// (TCP or UDP) transport and exposes an HTTP control plane — health,
// Prometheus-text metrics, seeding, start gating, topology swaps, kill
// injection, and graceful drain. A multi-process deployment is N daemons
// with disjoint Local sets and a shared peer address map; a controller
// (internal/livectl, cmd/gossipctl) drives them over HTTP.
package daemon

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"algossip/internal/core"
	"algossip/internal/gf"
	"algossip/internal/gf/cpufeat"
	"algossip/internal/graph"
	"algossip/internal/rlnc"
	"algossip/internal/runtime"
)

// Options configures one daemon process. The graph-shaped fields must be
// identical across every process of a deployment (each process rebuilds
// the same topology from the same family, size and seed).
type Options struct {
	// HTTPAddr is the control/metrics listen address ("127.0.0.1:0" picks
	// an ephemeral port; read it back from Daemon.ControlAddr).
	HTTPAddr string
	// Transport picks the wire transport: "tcp" (default) or "udp".
	Transport string
	// Local are the graph nodes hosted by this process.
	Local []core.NodeID
	// Peers maps every node of the deployment (local and remote) to its
	// gossip listen address.
	Peers map[core.NodeID]string
	// GraphName, GraphN and GraphSeed rebuild the shared topology via
	// graph.FromName (GraphSeed feeds the rng of random families).
	GraphName string
	GraphN    int
	GraphSeed uint64
	// K is the number of initial messages; Q the field order (default 256).
	K int
	Q int
	// PayloadLen is symbols per message (0 = rank-only).
	PayloadLen int
	// GenSize, when positive, enables generation coding.
	GenSize int
	// Interval is the per-node gossip period (default 1ms).
	Interval time.Duration
	// Seed roots the deployment's protocol randomness (shared by all
	// processes; per-node streams are split from it).
	Seed uint64
	// LossRate, when positive, wraps the transport with i.i.d. drop
	// injection seeded by LossSeed.
	LossRate float64
	LossSeed uint64
	// ChaosLatency/ChaosJitter/ChaosCorrupt set the initial degradation of
	// the chaos layer (see runtime.ChaosTransport). The layer itself is
	// always present — with all knobs zero it is a transparent pass-through
	// — so POST /chaos can degrade a healthy deployment mid-run.
	ChaosLatency time.Duration
	ChaosJitter  time.Duration
	ChaosCorrupt float64
	ChaosSeed    uint64
	// ShutdownTimeout bounds how long a drain waits for in-flight control
	// requests before cutting their connections (0 = the 5s default).
	// Raise it for deployments whose drains run slower than 5s under
	// load — a too-small value truncates active scrapes mid-response.
	ShutdownTimeout time.Duration
}

// defaultShutdownTimeout is the historical hardcoded drain bound.
const defaultShutdownTimeout = 5 * time.Second

// Daemon hosts a cluster slice plus its HTTP control plane.
type Daemon struct {
	opts      Options
	graph     *graph.Graph
	base      runtime.Transport // the raw socket transport (gossip addresses)
	chaos     *runtime.ChaosTransport
	transport runtime.Transport // the full stack the cluster sends through
	cluster   *runtime.Cluster
	httpLn    net.Listener
	server    *http.Server

	drainOnce sync.Once
	drainCh   chan struct{}
}

// New validates the options and builds the transport, cluster and control
// mux. The gossip and HTTP listeners are bound here, so peers can connect
// as soon as New returns; gossiping starts when Run (and then Start, or
// POST /start) is called.
func New(opts Options) (*Daemon, error) {
	if opts.Q == 0 {
		opts.Q = 256
	}
	field, err := gf.New(opts.Q)
	if err != nil {
		return nil, fmt.Errorf("daemon: field: %w", err)
	}
	if opts.HTTPAddr == "" {
		opts.HTTPAddr = "127.0.0.1:0"
	}
	g, err := graph.FromName(opts.GraphName, opts.GraphN, core.NewRand(opts.GraphSeed))
	if err != nil {
		return nil, fmt.Errorf("daemon: graph: %w", err)
	}

	var transport runtime.Transport
	switch opts.Transport {
	case "", "tcp":
		t := runtime.NewTCPTransport()
		t.SetPeers(opts.Peers)
		transport = t
	case "udp":
		t, err := runtime.NewUDPTransport()
		if err != nil {
			return nil, fmt.Errorf("daemon: %w", err)
		}
		t.SetPeers(opts.Peers)
		transport = t
	default:
		return nil, fmt.Errorf("daemon: unknown transport %q (tcp or udp)", opts.Transport)
	}
	base := transport
	if opts.LossRate > 0 {
		transport, err = runtime.NewLossyTransport(transport, opts.LossRate, opts.LossSeed)
		if err != nil {
			return nil, fmt.Errorf("daemon: %w", err)
		}
	}
	// The chaos layer wraps outermost unconditionally: with zero knobs it
	// is transparent, and its presence is what makes POST /chaos able to
	// degrade (and heal) a live deployment without a restart.
	chaos, err := runtime.NewChaosTransport(transport, runtime.ChaosConfig{
		Latency:     opts.ChaosLatency,
		Jitter:      opts.ChaosJitter,
		CorruptRate: opts.ChaosCorrupt,
		Seed:        opts.ChaosSeed,
	})
	if err != nil {
		_ = transport.Close()
		return nil, fmt.Errorf("daemon: %w", err)
	}
	transport = chaos

	clusterOpts := []runtime.Option{
		runtime.WithField(field),
		runtime.WithSeed(opts.Seed),
		runtime.WithLocalNodes(opts.Local...),
		runtime.WithStartGate(),
		runtime.WithServeAfterDone(),
	}
	if opts.PayloadLen > 0 {
		clusterOpts = append(clusterOpts, runtime.WithPayload(opts.PayloadLen))
	}
	if opts.GenSize > 0 {
		clusterOpts = append(clusterOpts, runtime.WithGenerations(opts.GenSize))
	}
	if opts.Interval > 0 {
		clusterOpts = append(clusterOpts, runtime.WithInterval(opts.Interval))
	}
	cluster, err := runtime.NewCluster(transport, g, opts.K, clusterOpts...)
	if err != nil {
		_ = transport.Close()
		return nil, fmt.Errorf("daemon: cluster: %w", err)
	}

	ln, err := net.Listen("tcp", opts.HTTPAddr)
	if err != nil {
		_ = transport.Close()
		return nil, fmt.Errorf("daemon: control listen: %w", err)
	}

	d := &Daemon{
		opts:      opts,
		graph:     g,
		base:      base,
		chaos:     chaos,
		transport: transport,
		cluster:   cluster,
		httpLn:    ln,
		drainCh:   make(chan struct{}),
	}
	d.server = &http.Server{Handler: d.mux(), ReadHeaderTimeout: 5 * time.Second}
	return d, nil
}

// ControlAddr is the bound HTTP control address.
func (d *Daemon) ControlAddr() string { return d.httpLn.Addr().String() }

// GossipAddr returns the bound gossip address of a local node.
func (d *Daemon) GossipAddr(id core.NodeID) (string, bool) {
	switch t := d.base.(type) {
	case *runtime.TCPTransport:
		return t.Addr(id)
	case *runtime.UDPTransport:
		return t.Addr(id)
	}
	return "", false
}

// Run serves gossip and the control plane until ctx is cancelled or a
// drain is requested, then shuts both down. Interruption by ctx or drain
// is the intended shutdown path and returns nil — convergence state at
// that moment is observable via Status, not the error.
func (d *Daemon) Run(ctx context.Context) error {
	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()

	httpErr := make(chan error, 1)
	go func() { httpErr <- d.server.Serve(d.httpLn) }()

	clusterErr := make(chan error, 1)
	go func() {
		_, err := d.cluster.Run(runCtx)
		clusterErr <- err
	}()

	var err error
	select {
	case <-ctx.Done():
	case <-d.drainCh:
	case err = <-clusterErr:
		clusterErr = nil
	case err = <-httpErr:
		httpErr = nil
		if err != nil {
			err = fmt.Errorf("daemon: control plane: %w", err)
		}
	}

	// Drain: stop the node goroutines, then the control plane, then the
	// sockets. A post-cancel "cluster interrupted" is the normal drain
	// path, not a failure.
	cancel()
	if clusterErr != nil {
		<-clusterErr
	}
	shutdownCtx, stop := context.WithTimeout(context.Background(), d.shutdownTimeout())
	_ = d.server.Shutdown(shutdownCtx)
	stop()
	if httpErr != nil {
		<-httpErr // http.ErrServerClosed after Shutdown
	}
	if cerr := d.transport.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("daemon: transport close: %w", cerr)
	}
	return err
}

// drain requests shutdown (idempotent).
func (d *Daemon) drain() { d.drainOnce.Do(func() { close(d.drainCh) }) }

// shutdownTimeout resolves the configured drain bound.
func (d *Daemon) shutdownTimeout() time.Duration {
	if d.opts.ShutdownTimeout > 0 {
		return d.opts.ShutdownTimeout
	}
	return defaultShutdownTimeout
}

// nodeStatusJSON is the wire form of runtime.NodeStatus.
type nodeStatusJSON struct {
	ID       int  `json:"id"`
	Rank     int  `json:"rank"`
	K        int  `json:"k"`
	Done     bool `json:"done"`
	DoneTick int  `json:"doneTick"`
	Ticks    int  `json:"ticks"`
}

// statusJSON is the GET /status response.
type statusJSON struct {
	Nodes []nodeStatusJSON `json:"nodes"`
	Done  bool             `json:"done"`
	// GFTier is the active kernel dispatch tier plus detected CPU
	// features ("gfni (avx2 gfni ssse3)"), so a fleet operator can audit
	// which kernel level each box actually runs.
	GFTier string `json:"gf_tier"`
}

func (d *Daemon) statusSnapshot() statusJSON {
	st := d.cluster.Status()
	out := statusJSON{Nodes: make([]nodeStatusJSON, 0, len(st)), Done: true, GFTier: gf.TierInfo()}
	for _, s := range st {
		out.Nodes = append(out.Nodes, nodeStatusJSON{
			ID: int(s.ID), Rank: s.Rank, K: s.K,
			Done: s.Done, DoneTick: s.DoneTick, Ticks: s.Ticks,
		})
		if !s.Done {
			out.Done = false
		}
	}
	return out
}

// seedRequest is the POST /seed body. Payload is base64-encoded symbols
// (empty in rank-only mode).
type seedRequest struct {
	Node    int    `json:"node"`
	Index   int    `json:"index"`
	Payload string `json:"payload,omitempty"`
}

// topologyRequest is the POST /topology body; the new graph must have the
// same node count and be built identically by every process.
type topologyRequest struct {
	Family string `json:"family"`
	N      int    `json:"n"`
	Seed   uint64 `json:"seed"`
}

// killRequest is the POST /kill body.
type killRequest struct {
	Node int `json:"node"`
}

// chaosRequest is the POST /chaos body. Every field is optional; only the
// fields present change state, so a controller can partition without
// touching the latency profile and vice versa. Heal applies first, which
// makes {"heal":true,"latency_ms":5} a single-request "lift the partition
// but keep the link slow".
type chaosRequest struct {
	LatencyMS   *float64 `json:"latency_ms,omitempty"`
	JitterMS    *float64 `json:"jitter_ms,omitempty"`
	CorruptRate *float64 `json:"corrupt_rate,omitempty"`
	Partition   []int    `json:"partition,omitempty"`
	Heal        bool     `json:"heal,omitempty"`
}

// chaosState is the GET /chaos (and POST /chaos) response.
type chaosState struct {
	LatencyMS   float64 `json:"latency_ms"`
	JitterMS    float64 `json:"jitter_ms"`
	CorruptRate float64 `json:"corrupt_rate"`
	Partition   []int   `json:"partition"`
	Cut         uint64  `json:"cut"`
	Corrupted   uint64  `json:"corrupted"`
}

func (d *Daemon) chaosSnapshot() chaosState {
	base, jitter := d.chaos.Latency()
	st := chaosState{
		LatencyMS:   float64(base) / float64(time.Millisecond),
		JitterMS:    float64(jitter) / float64(time.Millisecond),
		CorruptRate: d.chaos.CorruptRate(),
		Partition:   []int{},
		Cut:         d.chaos.Cut(),
		Corrupted:   d.chaos.Corrupted(),
	}
	for _, id := range d.chaos.Partitioned() {
		st.Partition = append(st.Partition, int(id))
	}
	return st
}

// applyChaos mutates the chaos layer per one request.
func (d *Daemon) applyChaos(req chaosRequest) error {
	if req.Heal {
		d.chaos.Heal()
	}
	if req.LatencyMS != nil || req.JitterMS != nil {
		base, jitter := d.chaos.Latency()
		if req.LatencyMS != nil {
			base = time.Duration(*req.LatencyMS * float64(time.Millisecond))
		}
		if req.JitterMS != nil {
			jitter = time.Duration(*req.JitterMS * float64(time.Millisecond))
		}
		if err := d.chaos.SetLatency(base, jitter); err != nil {
			return err
		}
	}
	if req.CorruptRate != nil {
		if err := d.chaos.SetCorruptRate(*req.CorruptRate); err != nil {
			return err
		}
	}
	if len(req.Partition) > 0 {
		nodes := make([]core.NodeID, 0, len(req.Partition))
		for _, id := range req.Partition {
			if id < 0 || id >= d.graph.N() {
				return fmt.Errorf("partition node %d outside [0,%d)", id, d.graph.N())
			}
			nodes = append(nodes, core.NodeID(id))
		}
		d.chaos.SetPartition(nodes)
	}
	return nil
}

func (d *Daemon) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		d.writeMetrics(w)
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(d.statusSnapshot())
	})
	mux.HandleFunc("POST /seed", func(w http.ResponseWriter, r *http.Request) {
		var req seedRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var payload []byte
		if req.Payload != "" {
			var err error
			payload, err = base64.StdEncoding.DecodeString(req.Payload)
			if err != nil {
				http.Error(w, "payload: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		if req.Index < 0 || req.Index >= d.opts.K {
			http.Error(w, fmt.Sprintf("index %d outside [0,%d)", req.Index, d.opts.K), http.StatusBadRequest)
			return
		}
		err := d.cluster.Seed(core.NodeID(req.Node), rlnc.Message{Index: req.Index, Payload: payload})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintln(w, "seeded")
	})
	mux.HandleFunc("POST /start", func(w http.ResponseWriter, r *http.Request) {
		d.cluster.Start()
		fmt.Fprintln(w, "started")
	})
	mux.HandleFunc("POST /topology", func(w http.ResponseWriter, r *http.Request) {
		var req topologyRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		g, err := graph.FromName(req.Family, req.N, core.NewRand(req.Seed))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := d.cluster.ApplyTopology(g); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fmt.Fprintln(w, "applied")
	})
	mux.HandleFunc("POST /kill", func(w http.ResponseWriter, r *http.Request) {
		var req killRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		d.cluster.Kill(core.NodeID(req.Node))
		fmt.Fprintln(w, "killed")
	})
	mux.HandleFunc("GET /chaos", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(d.chaosSnapshot())
	})
	mux.HandleFunc("POST /chaos", func(w http.ResponseWriter, r *http.Request) {
		var req chaosRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := d.applyChaos(req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(d.chaosSnapshot())
	})
	mux.HandleFunc("POST /drain", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "draining")
		d.drain()
	})
	return mux
}

// writeMetrics renders the Prometheus text exposition: transport counters
// (sends, drops, redials — totals and per destination) and per-node
// protocol progress (rank, done, ticks ≈ rounds).
func (d *Daemon) writeMetrics(w http.ResponseWriter) {
	s := d.transport.Stats()
	fmt.Fprintln(w, "# HELP algossip_sends_total Envelopes handed to the medium.")
	fmt.Fprintln(w, "# TYPE algossip_sends_total counter")
	fmt.Fprintf(w, "algossip_sends_total %d\n", s.Total.Sent)
	fmt.Fprintln(w, "# HELP algossip_drops_total Envelopes dropped (backpressure, loss, dead peers).")
	fmt.Fprintln(w, "# TYPE algossip_drops_total counter")
	fmt.Fprintf(w, "algossip_drops_total %d\n", s.Total.Dropped)
	fmt.Fprintln(w, "# HELP algossip_redials_total Connection re-establishment attempts.")
	fmt.Fprintln(w, "# TYPE algossip_redials_total counter")
	fmt.Fprintf(w, "algossip_redials_total %d\n", s.Total.Redials)
	fmt.Fprintln(w, "# HELP algossip_chaos_cut_total Envelopes dropped by injected partitions.")
	fmt.Fprintln(w, "# TYPE algossip_chaos_cut_total counter")
	fmt.Fprintf(w, "algossip_chaos_cut_total %d\n", d.chaos.Cut())
	fmt.Fprintln(w, "# HELP algossip_chaos_corrupt_total Envelopes structurally corrupted by injection.")
	fmt.Fprintln(w, "# TYPE algossip_chaos_corrupt_total counter")
	fmt.Fprintf(w, "algossip_chaos_corrupt_total %d\n", d.chaos.Corrupted())
	fmt.Fprintln(w, "# HELP algossip_gf_tier_info Active GF kernel dispatch tier (labels carry the values).")
	fmt.Fprintln(w, "# TYPE algossip_gf_tier_info gauge")
	fmt.Fprintf(w, "algossip_gf_tier_info{tier=%q,cpu=%q} 1\n", gf.ActiveTier(), cpufeat.Summary())

	ids := make([]core.NodeID, 0, len(s.PerNode))
	for id := range s.PerNode {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Fprintln(w, "# HELP algossip_peer_sends_total Envelopes sent toward one destination.")
	fmt.Fprintln(w, "# TYPE algossip_peer_sends_total counter")
	for _, id := range ids {
		fmt.Fprintf(w, "algossip_peer_sends_total{peer=%q} %d\n", fmt.Sprint(id), s.PerNode[id].Sent)
	}
	fmt.Fprintln(w, "# HELP algossip_peer_drops_total Envelopes dropped toward one destination.")
	fmt.Fprintln(w, "# TYPE algossip_peer_drops_total counter")
	for _, id := range ids {
		fmt.Fprintf(w, "algossip_peer_drops_total{peer=%q} %d\n", fmt.Sprint(id), s.PerNode[id].Dropped)
	}
	fmt.Fprintln(w, "# HELP algossip_peer_redials_total Redials toward one destination.")
	fmt.Fprintln(w, "# TYPE algossip_peer_redials_total counter")
	for _, id := range ids {
		fmt.Fprintf(w, "algossip_peer_redials_total{peer=%q} %d\n", fmt.Sprint(id), s.PerNode[id].Redials)
	}

	st := d.cluster.Status()
	fmt.Fprintln(w, "# HELP algossip_node_rank Current decoder rank of a local node.")
	fmt.Fprintln(w, "# TYPE algossip_node_rank gauge")
	for _, n := range st {
		fmt.Fprintf(w, "algossip_node_rank{node=%q} %d\n", fmt.Sprint(n.ID), n.Rank)
	}
	fmt.Fprintln(w, "# HELP algossip_node_done Whether a local node reached full rank.")
	fmt.Fprintln(w, "# TYPE algossip_node_done gauge")
	for _, n := range st {
		done := 0
		if n.Done {
			done = 1
		}
		fmt.Fprintf(w, "algossip_node_done{node=%q} %d\n", fmt.Sprint(n.ID), done)
	}
	fmt.Fprintln(w, "# HELP algossip_node_rounds Gossip ticks elapsed at a local node (one tick approximates one synchronous round).")
	fmt.Fprintln(w, "# TYPE algossip_node_rounds counter")
	for _, n := range st {
		fmt.Fprintf(w, "algossip_node_rounds{node=%q} %d\n", fmt.Sprint(n.ID), n.Ticks)
	}
}

// ParseNodeList parses "0,3,17" into node ids.
func ParseNodeList(s string) ([]core.NodeID, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("daemon: empty node list")
	}
	var out []core.NodeID
	for _, part := range strings.Split(s, ",") {
		var id int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &id); err != nil || id < 0 {
			return nil, fmt.Errorf("daemon: bad node id %q", part)
		}
		out = append(out, core.NodeID(id))
	}
	return out, nil
}

// ParsePeerMap parses "0=127.0.0.1:9000,1=127.0.0.1:9001" into the peer
// address map.
func ParsePeerMap(s string) (map[core.NodeID]string, error) {
	out := make(map[core.NodeID]string)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("daemon: bad peer entry %q (want id=addr)", part)
		}
		var v int
		if _, err := fmt.Sscanf(id, "%d", &v); err != nil || v < 0 {
			return nil, fmt.Errorf("daemon: bad peer id %q", id)
		}
		out[core.NodeID(v)] = addr
	}
	return out, nil
}
