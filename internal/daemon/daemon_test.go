package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"algossip/internal/core"
)

// reserveAddrs grabs n loopback addresses, holding the listeners open
// until all are assigned.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		_ = ln.Close()
	}
	return addrs
}

func post(t *testing.T, ctl, path string, body any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post("http://"+ctl+path, "application/json", &buf)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		_, _ = msg.ReadFrom(resp.Body)
		t.Fatalf("POST %s: %s: %s", path, resp.Status, msg.String())
	}
}

func getJSON(t *testing.T, ctl, path string, out any) {
	t.Helper()
	resp, err := http.Get("http://" + ctl + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", path, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}

// TestDaemonConvergeAndDrain runs a two-daemon six-node deployment fully
// in-process (so -race sees every goroutine), drives it over the HTTP
// control plane, and checks that cancellation drains cleanly with no
// leaked goroutines — the in-process twin of gossipd's SIGTERM path.
func TestDaemonConvergeAndDrain(t *testing.T) {
	const n, k = 6, 3
	gossip := reserveAddrs(t, n)
	peers := make(map[core.NodeID]string, n)
	for v, a := range gossip {
		peers[core.NodeID(v)] = a
	}

	mk := func(local []core.NodeID) *Daemon {
		d, err := New(Options{
			Local: local, Peers: peers,
			GraphName: "ring", GraphN: n, GraphSeed: 1,
			K: k, Interval: 2 * time.Millisecond, Seed: 7,
			LossRate: 0.05, LossSeed: 3,
		})
		if err != nil {
			t.Fatalf("daemon: %v", err)
		}
		return d
	}
	d1 := mk([]core.NodeID{0, 1, 2})
	d2 := mk([]core.NodeID{3, 4, 5})

	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 2)
	go func() { errs <- d1.Run(ctx) }()
	go func() { errs <- d2.Run(ctx) }()

	// Seed round-robin (message i at node i), release both start gates.
	for i := 0; i < k; i++ {
		d := d1
		if i >= 3 {
			d = d2
		}
		post(t, d.ControlAddr(), "/seed", map[string]any{"node": i, "index": i})
	}
	post(t, d1.ControlAddr(), "/start", nil)
	post(t, d2.ControlAddr(), "/start", nil)

	// Poll both control planes until every node reports full rank.
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for _, d := range []*Daemon{d1, d2} {
			var st struct {
				Done bool `json:"done"`
			}
			getJSON(t, d.ControlAddr(), "/status", &st)
			done = done && st.Done
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("deployment never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Metrics exposition sanity.
	resp, err := http.Get("http://" + d1.ControlAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	_, _ = metrics.ReadFrom(resp.Body)
	_ = resp.Body.Close()
	for _, want := range []string{"algossip_sends_total", "algossip_node_rank", "algossip_node_rounds"} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("metrics missing %s:\n%s", want, metrics.String())
		}
	}

	// Drain: post-convergence cancellation must be clean on both daemons.
	cancel()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Errorf("daemon run: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never drained")
		}
	}
	checkNoRuntimeGoroutines(t)
}

// TestDaemonDrainEndpoint covers POST /drain: the daemon shuts itself
// down without external cancellation.
func TestDaemonDrainEndpoint(t *testing.T) {
	gossip := reserveAddrs(t, 2)
	d, err := New(Options{
		Local:     []core.NodeID{0, 1},
		Peers:     map[core.NodeID]string{0: gossip[0], 1: gossip[1]},
		GraphName: "ring", GraphN: 2, GraphSeed: 1,
		K: 1, Interval: 2 * time.Millisecond, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- d.Run(context.Background()) }()
	post(t, d.ControlAddr(), "/seed", map[string]any{"node": 0, "index": 0})
	post(t, d.ControlAddr(), "/start", nil)
	post(t, d.ControlAddr(), "/drain", nil)
	select {
	case err := <-errCh:
		if err != nil {
			t.Errorf("drain was not clean: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never drained")
	}
	checkNoRuntimeGoroutines(t)
}

// TestDaemonShutdownTimeoutPlumbed is the slow-drain regression test for
// the hardcoded 5s shutdown bound: a connection that has sent part of a
// request is "active" to net/http, so Shutdown waits for it until the
// drain deadline. With the bound plumbed through Options, a drain against
// such a connection must take about the configured timeout — neither
// cutting it instantly nor sitting out the old hardcoded 5s.
func TestDaemonShutdownTimeoutPlumbed(t *testing.T) {
	for _, timeout := range []time.Duration{300 * time.Millisecond, 1200 * time.Millisecond} {
		gossip := reserveAddrs(t, 2)
		d, err := New(Options{
			Local:     []core.NodeID{0, 1},
			Peers:     map[core.NodeID]string{0: gossip[0], 1: gossip[1]},
			GraphName: "ring", GraphN: 2, GraphSeed: 1,
			K: 1, Interval: 2 * time.Millisecond, Seed: 7,
			ShutdownTimeout: timeout,
		})
		if err != nil {
			t.Fatal(err)
		}
		errCh := make(chan error, 1)
		go func() { errCh <- d.Run(context.Background()) }()

		// A half-sent request parks the connection in the active state:
		// the server has read bytes but cannot answer, the slow-drain
		// shape that used to be cut (or stall) at exactly 5s.
		conn, err := net.Dial("tcp", d.ControlAddr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write([]byte("GET /status HTTP/1.1\r\nHost: x\r\n")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(50 * time.Millisecond) // let the server read the partial request

		start := time.Now()
		post(t, d.ControlAddr(), "/drain", nil)
		select {
		case err := <-errCh:
			if err != nil {
				t.Errorf("drain was not clean: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never drained")
		}
		elapsed := time.Since(start)
		if elapsed < timeout-50*time.Millisecond {
			t.Errorf("drain with a stuck connection returned after %v, before the %v bound", elapsed, timeout)
		}
		if elapsed > timeout+2*time.Second {
			t.Errorf("drain took %v, far beyond the configured %v bound (hardcoded timeout regression?)", elapsed, timeout)
		}
		_ = conn.Close()
		checkNoRuntimeGoroutines(t)
	}
}

// TestDaemonChaosEndpoint drives the /chaos control surface end to end on
// a live single-process deployment: degrade (latency + corruption) before
// start, converge through the degradation, partition mid-flight, heal,
// and check that every state change round-trips through GET /chaos and
// that injection counters reach the metrics exposition.
func TestDaemonChaosEndpoint(t *testing.T) {
	gossip := reserveAddrs(t, 4)
	peers := make(map[core.NodeID]string, 4)
	for v, a := range gossip {
		peers[core.NodeID(v)] = a
	}
	d, err := New(Options{
		Local: []core.NodeID{0, 1, 2, 3}, Peers: peers,
		GraphName: "ring", GraphN: 4, GraphSeed: 1,
		K: 2, Interval: 2 * time.Millisecond, Seed: 7,
		ChaosSeed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- d.Run(ctx) }()
	ctl := d.ControlAddr()

	// The zero-knob layer is transparent and reports as such.
	var st struct {
		LatencyMS   float64 `json:"latency_ms"`
		JitterMS    float64 `json:"jitter_ms"`
		CorruptRate float64 `json:"corrupt_rate"`
		Partition   []int   `json:"partition"`
		Cut         uint64  `json:"cut"`
		Corrupted   uint64  `json:"corrupted"`
	}
	getJSON(t, ctl, "/chaos", &st)
	if st.LatencyMS != 0 || st.CorruptRate != 0 || len(st.Partition) != 0 {
		t.Fatalf("fresh daemon reports degradation: %+v", st)
	}

	// Degrade, then converge through it.
	post(t, ctl, "/chaos", map[string]any{"latency_ms": 1.0, "jitter_ms": 0.5, "corrupt_rate": 0.3})
	getJSON(t, ctl, "/chaos", &st)
	if st.LatencyMS != 1 || st.JitterMS != 0.5 || st.CorruptRate != 0.3 {
		t.Fatalf("chaos state did not round-trip: %+v", st)
	}
	for i := 0; i < 2; i++ {
		post(t, ctl, "/seed", map[string]any{"node": i, "index": i})
	}
	post(t, ctl, "/start", nil)
	deadline := time.Now().Add(30 * time.Second)
	for {
		var status struct {
			Done bool `json:"done"`
		}
		getJSON(t, ctl, "/status", &status)
		if status.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("deployment never converged under chaos")
		}
		time.Sleep(5 * time.Millisecond)
	}
	getJSON(t, ctl, "/chaos", &st)
	if st.Corrupted == 0 {
		t.Error("corrupt_rate 0.3 corrupted nothing during convergence")
	}

	// Partition, observe cuts, heal.
	post(t, ctl, "/chaos", map[string]any{"partition": []int{1, 2}})
	getJSON(t, ctl, "/chaos", &st)
	if len(st.Partition) != 2 || st.Partition[0] != 1 || st.Partition[1] != 2 {
		t.Fatalf("partition did not round-trip: %+v", st)
	}
	cutDeadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, ctl, "/chaos", &st)
		if st.Cut > 0 {
			break
		}
		if time.Now().After(cutDeadline) {
			t.Fatal("partition cut no traffic (post-done serving keeps gossiping)")
		}
		time.Sleep(5 * time.Millisecond)
	}
	post(t, ctl, "/chaos", map[string]any{"heal": true})
	getJSON(t, ctl, "/chaos", &st)
	if len(st.Partition) != 0 {
		t.Fatalf("heal left a partition: %+v", st)
	}

	// Bad requests are rejected with 400.
	for _, bad := range []map[string]any{
		{"corrupt_rate": 1.5},
		{"latency_ms": -1.0},
		{"partition": []int{99}},
	} {
		var buf bytes.Buffer
		_ = json.NewEncoder(&buf).Encode(bad)
		resp, err := http.Post("http://"+ctl+"/chaos", "application/json", &buf)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad chaos request %v: status %s, want 400", bad, resp.Status)
		}
	}

	// The injection counters surface in /metrics.
	resp, err := http.Get("http://" + ctl + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	_, _ = metrics.ReadFrom(resp.Body)
	_ = resp.Body.Close()
	for _, want := range []string{"algossip_chaos_cut_total", "algossip_chaos_corrupt_total"} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("metrics missing %s", want)
		}
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Errorf("drain was not clean: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never drained")
	}
	checkNoRuntimeGoroutines(t)
}

// checkNoRuntimeGoroutines fails if gossip goroutines (node loops,
// transport senders, accept/read loops, daemon runners) outlive the
// drain. HTTP keep-alive and test goroutines are not counted.
func checkNoRuntimeGoroutines(t *testing.T) {
	t.Helper()
	markers := []string{
		"algossip/internal/runtime.(*",
		"algossip/internal/daemon.(*Daemon).Run",
	}
	deadline := time.Now().Add(5 * time.Second)
	var leaked []string
	for {
		leaked = leaked[:0]
		buf := make([]byte, 1<<20)
		stacks := string(buf[:runtime.Stack(buf, true)])
		for _, g := range strings.Split(stacks, "\n\n") {
			for _, m := range markers {
				if strings.Contains(g, m) {
					leaked = append(leaked, g)
					break
				}
			}
		}
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d gossip goroutines leaked after drain:\n%s",
				len(leaked), strings.Join(leaked, "\n\n"))
		}
		time.Sleep(20 * time.Millisecond)
	}
}
