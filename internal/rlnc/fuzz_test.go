package rlnc

import (
	"bytes"
	"testing"

	"algossip/internal/core"
	"algossip/internal/gf"
)

// FuzzSplitJoinBytes fuzzes the byte chunking layer: for any input that
// fits the declared capacity, split followed by join must reproduce it
// exactly, and out-of-capacity inputs must be rejected, never mangled.
func FuzzSplitJoinBytes(f *testing.F) {
	f.Add([]byte("hello"), uint8(4), uint8(8))
	f.Add([]byte{}, uint8(1), uint8(9))
	f.Add(bytes.Repeat([]byte{0xFF}, 300), uint8(16), uint8(32))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, rRaw uint8) {
		k := 1 + int(kRaw)%32
		r := 1 + int(rRaw)%64
		msgs, err := SplitBytes(data, k, r)
		if err != nil {
			if k*r-8 >= len(data) {
				t.Fatalf("rejected fitting input: k=%d r=%d len=%d: %v", k, r, len(data), err)
			}
			return
		}
		got, err := JoinBytes(msgs)
		if err != nil {
			t.Fatalf("join failed: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch: %d bytes in, %d out", len(data), len(got))
		}
	})
}

// FuzzDecoderNeverPanics throws arbitrary coefficient/payload bytes at a
// node and requires graceful handling: rank stays within [0, k], and a
// full-rank node decodes without error. Wire bytes enter through Adapt,
// the boundary every transport uses — which also covers the sliced
// backend's pack path (GF(256) selects it by default).
func FuzzDecoderNeverPanics(f *testing.F) {
	f.Add(uint64(1), []byte{1, 2, 3, 4, 5, 6})
	f.Add(uint64(2), []byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, seed uint64, raw []byte) {
		const k, r = 4, 2
		cfg := Config{Field: gf.MustNew(256), K: k, PayloadLen: r}
		n := MustNewNode(cfg)
		// Feed raw bytes as wire packets, k+r bytes at a time.
		for i := 0; i+k+r <= len(raw); i += k + r {
			pkt := &Packet{
				Coeffs:  bytesToElems(raw[i : i+k]),
				Payload: append([]byte(nil), raw[i+k:i+k+r]...),
			}
			n.Receive(n.Adapt(pkt))
			if n.Rank() < 0 || n.Rank() > k {
				t.Fatalf("rank %d out of range", n.Rank())
			}
		}
		// Top up with well-formed packets from a full source and decode.
		rng := core.NewRand(seed)
		src := MustNewNode(cfg)
		for i := 0; i < k; i++ {
			src.Seed(Message{Index: i, Payload: gf.RandBytes(cfg.Field, r, rng)})
		}
		for guard := 0; !n.CanDecode() && guard < 1000; guard++ {
			n.Receive(src.Emit(rng))
		}
		if !n.CanDecode() {
			t.Fatal("node never reached full rank")
		}
		if _, err := n.Decode(); err != nil {
			t.Fatalf("decode at full rank failed: %v", err)
		}
	})
}

// FuzzGenerationPacket throws malformed generation packets at a GenNode:
// arbitrary generation tags (including negative and far out of range) and
// arbitrary coefficient/payload lengths must be screened as unhelpful,
// never panicked on — generation tags arrive from the wire. After the
// garbage, a well-formed feed must still bring the node to a clean
// decode, and a node on a different backend must screen the same packet.
func FuzzGenerationPacket(f *testing.F) {
	f.Add(int64(0), []byte{1, 2, 3})
	f.Add(int64(-1), []byte{})
	f.Add(int64(1<<40), []byte{7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, gen int64, raw []byte) {
		const k, genSize, r = 6, 4, 2
		// A prime field keeps the sub-decoders on the generic element
		// backend, so arbitrary-length Coeffs/Payload arrays reach the
		// inner length screening instead of the backend-shape screen.
		cfg := GenConfig{Inner: Config{Field: gf.MustNew(251), PayloadLen: r}, K: k, GenSize: genSize}
		n, err := NewGenNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		split := len(raw) / 2
		coeffs := make([]gf.Elem, split)
		for i := range coeffs {
			coeffs[i] = gf.Elem(raw[i] % 251)
		}
		payload := append([]byte(nil), raw[split:]...)
		for i := range payload {
			payload[i] %= 251
		}
		pkt := &GenPacket{Gen: int(gen), Packet: &Packet{Coeffs: coeffs, Payload: payload}}
		n.Receive(pkt)
		if n.Rank() < 0 || n.Rank() > k {
			t.Fatalf("rank %d out of range after malformed packet", n.Rank())
		}
		if n.Receive(nil) {
			t.Fatal("nil packet reported helpful")
		}
		if n.Receive(&GenPacket{Gen: int(gen)}) {
			t.Fatal("packet with nil inner reported helpful")
		}
		// Top up from a full source: the garbage must not have corrupted
		// any generation's decoder state.
		rng := core.NewRand(uint64(len(raw)) + 1)
		src, err := NewGenNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			src.Seed(Message{Index: i, Payload: gf.RandBytes(cfg.Inner.Field, r, rng)})
		}
		for guard := 0; !n.CanDecode() && guard < 5000; guard++ {
			n.Receive(src.Emit(rng))
		}
		if !n.CanDecode() {
			t.Fatal("node never reached full rank after screening garbage")
		}
		if _, err := n.Decode(); err != nil {
			t.Fatalf("decode at full rank failed: %v", err)
		}
		// Backend-shape screen: GF(256) generations run the sliced backend,
		// so a generic-element packet must bounce even with a valid tag.
		sliced, err := NewGenNode(GenConfig{Inner: Config{Field: gf.MustNew(256), PayloadLen: r}, K: k, GenSize: genSize})
		if err != nil {
			t.Fatal(err)
		}
		if sliced.Receive(pkt) {
			t.Fatal("generic-backend packet reported helpful on a sliced-backend node")
		}
	})
}

func bytesToElems(b []byte) []gf.Elem {
	out := make([]gf.Elem, len(b))
	for i, x := range b {
		out[i] = gf.Elem(x)
	}
	return out
}
