package rlnc

import (
	"bytes"
	"testing"

	"algossip/internal/core"
	"algossip/internal/gf"
)

// FuzzSplitJoinBytes fuzzes the byte chunking layer: for any input that
// fits the declared capacity, split followed by join must reproduce it
// exactly, and out-of-capacity inputs must be rejected, never mangled.
func FuzzSplitJoinBytes(f *testing.F) {
	f.Add([]byte("hello"), uint8(4), uint8(8))
	f.Add([]byte{}, uint8(1), uint8(9))
	f.Add(bytes.Repeat([]byte{0xFF}, 300), uint8(16), uint8(32))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, rRaw uint8) {
		k := 1 + int(kRaw)%32
		r := 1 + int(rRaw)%64
		msgs, err := SplitBytes(data, k, r)
		if err != nil {
			if k*r-8 >= len(data) {
				t.Fatalf("rejected fitting input: k=%d r=%d len=%d: %v", k, r, len(data), err)
			}
			return
		}
		got, err := JoinBytes(msgs)
		if err != nil {
			t.Fatalf("join failed: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch: %d bytes in, %d out", len(data), len(got))
		}
	})
}

// FuzzDecoderNeverPanics throws arbitrary coefficient/payload bytes at a
// node and requires graceful handling: rank stays within [0, k], and a
// full-rank node decodes without error. Wire bytes enter through Adapt,
// the boundary every transport uses — which also covers the sliced
// backend's pack path (GF(256) selects it by default).
func FuzzDecoderNeverPanics(f *testing.F) {
	f.Add(uint64(1), []byte{1, 2, 3, 4, 5, 6})
	f.Add(uint64(2), []byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, seed uint64, raw []byte) {
		const k, r = 4, 2
		cfg := Config{Field: gf.MustNew(256), K: k, PayloadLen: r}
		n := MustNewNode(cfg)
		// Feed raw bytes as wire packets, k+r bytes at a time.
		for i := 0; i+k+r <= len(raw); i += k + r {
			pkt := &Packet{
				Coeffs:  bytesToElems(raw[i : i+k]),
				Payload: append([]byte(nil), raw[i+k:i+k+r]...),
			}
			n.Receive(n.Adapt(pkt))
			if n.Rank() < 0 || n.Rank() > k {
				t.Fatalf("rank %d out of range", n.Rank())
			}
		}
		// Top up with well-formed packets from a full source and decode.
		rng := core.NewRand(seed)
		src := MustNewNode(cfg)
		for i := 0; i < k; i++ {
			src.Seed(Message{Index: i, Payload: gf.RandBytes(cfg.Field, r, rng)})
		}
		for guard := 0; !n.CanDecode() && guard < 1000; guard++ {
			n.Receive(src.Emit(rng))
		}
		if !n.CanDecode() {
			t.Fatal("node never reached full rank")
		}
		if _, err := n.Decode(); err != nil {
			t.Fatalf("decode at full rank failed: %v", err)
		}
	})
}

func bytesToElems(b []byte) []gf.Elem {
	out := make([]gf.Elem, len(b))
	for i, x := range b {
		out[i] = gf.Elem(x)
	}
	return out
}
